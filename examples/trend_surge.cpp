// Trend surge scenario: a 10-minute trace with Google-Trends-style traffic
// spikes (each trending topic drags correlated follow-up topics with it).
// Shows how the staticity-aware LCFU policy self-cleans after each wave and
// how Markov prefetching absorbs the correlated follow-ups.
//
//   ./build/examples/trend_surge [--ratio=0.3] [--no-prefetch]
#include <iostream>

#include "core/resolvers.h"
#include "embedding/hashed_embedder.h"
#include "sim/driver.h"
#include "util/flags.h"
#include "util/table.h"
#include "workload/workload_stats.h"
#include "workload/workloads.h"

using namespace cortex;

namespace {

RunMetrics Serve(const WorkloadBundle& bundle, double ratio,
                 bool prefetch_enabled, std::uint64_t* prefetches) {
  HashedEmbedder embedder;
  const auto corpus = bundle.AllQueries();
  embedder.FitIdf(corpus);
  JudgerModel judger(bundle.oracle.get());
  AgentModel agent;
  ColocationSimulator gpu(DeploymentConfig::Colocated80_20());
  RemoteDataService service(RemoteDataService::GoogleSearchApi());

  CortexEngineOptions opts;
  opts.cache.capacity_tokens = ratio * bundle.TotalKnowledgeTokens();
  opts.prefetch_enabled = prefetch_enabled;
  CortexEngine engine(&embedder, &judger, opts);

  ResolverEnvironment env{&gpu, &service, bundle.oracle.get()};
  CortexResolver resolver(env, &engine);

  DriverOptions driver_opts;
  driver_opts.explicit_arrivals = bundle.arrivals;
  ServingDriver driver(agent, gpu, resolver, driver_opts);
  RunMetrics metrics = driver.Run(bundle.tasks);
  if (prefetches != nullptr) *prefetches = resolver.prefetch_issued();
  return metrics;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const double ratio = flags.GetDouble("ratio", 0.3);
  const bool prefetch = !flags.GetBool("no-prefetch", false);

  TrendProfile profile;
  const WorkloadBundle bundle = BuildTrendWorkload(profile);
  std::cout << "trace: " << bundle.tasks.size() << " tasks over "
            << profile.duration_sec << "s, " << profile.num_trend_topics
            << " trending topics (+" << profile.related_per_trend
            << " correlated each)\n\n";

  // Show the burst structure the trace carries (Fig. 3's phenomenon).
  const std::size_t group = 1 + profile.related_per_trend;
  const auto series = TopicTimeSeries(bundle, 30.0,
                                      profile.num_trend_topics * group);
  TextTable bursts({"trend topic", "burstiness (peak/mean)",
                    "corr. with its related topic"});
  for (std::size_t s = 0; s < profile.num_trend_topics; ++s) {
    bursts.AddRow({"trend-" + std::to_string(s),
                   TextTable::Num(Burstiness(series[s * group])),
                   TextTable::Num(PearsonCorrelation(series[s * group],
                                                     series[s * group + 1]),
                                  3)});
  }
  std::cout << bursts.Render() << '\n';

  std::uint64_t prefetches = 0;
  const RunMetrics metrics = Serve(bundle, ratio, prefetch, &prefetches);

  TextTable result({"metric", "value"});
  result.AddRow({"prefetching", prefetch ? "on" : "off"});
  result.AddRow({"throughput (req/s)", TextTable::Num(metrics.Throughput())});
  result.AddRow({"cache hit rate", TextTable::Percent(metrics.CacheHitRate())});
  result.AddRow({"mean latency (s)", TextTable::Num(metrics.MeanLatency(), 3)});
  result.AddRow({"p99 latency (s)", TextTable::Num(metrics.P99Latency(), 3)});
  result.AddRow({"EM accuracy", TextTable::Percent(metrics.Accuracy())});
  result.AddRow({"prefetches issued", std::to_string(prefetches)});
  std::cout << result.Render();
  return 0;
}
