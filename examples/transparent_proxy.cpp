// Transparent interception: the paper's Fig. 4 data-client wiring.
//
// The "agent" here is raw tagged text — exactly what an LLM serving stack
// streams out.  The DataClient parses each turn, lifts the <search> call,
// serves it semantically, and returns the <info> observation, with no
// agent-side integration.  Run it to watch the same question asked three
// ways cost exactly one remote fetch.
//
//   ./build/examples/transparent_proxy
#include <iomanip>
#include <iostream>

#include "core/data_client.h"
#include "embedding/hashed_embedder.h"
#include "workload/workloads.h"

using namespace cortex;

int main() {
  // Knowledge world + side models (see DESIGN.md: these stand in for the
  // search API and the Qwen3-0.6B judger/embedder).
  auto profile = SearchDatasetProfile::HotpotQa();
  profile.num_tasks = 1;  // we only need the universe + oracle
  const WorkloadBundle bundle = BuildSkewedSearchWorkload(profile);
  HashedEmbedder embedder;
  const auto corpus = bundle.AllQueries();
  embedder.FitIdf(corpus);
  JudgerModel judger(bundle.oracle.get());

  CortexEngineOptions options;
  options.cache.capacity_tokens = 100000;
  options.recalibration_enabled = false;
  CortexEngine engine(&embedder, &judger, options);

  int remote_fetches = 0;
  DataClient client(&engine, [&](std::string_view query, double) {
    ++remote_fetches;
    std::cout << "      [remote fetch #" << remote_fetches << " for \""
              << query << "\"]\n";
    return DataClient::FetchResultView{bundle.oracle->ExpectedInfo(query),
                                       0.42, 0.005};
  });

  // Three agent turns asking for the same knowledge in different words,
  // then an unrelated one, then the final answer turn.
  const auto& topic = bundle.universe->topic(0);
  const auto& other = bundle.universe->topic(10);
  const std::vector<std::string> turns = {
      WrapTag(TagKind::kThink, "I need this fact.") +
          WrapTag(TagKind::kSearch, topic.paraphrases[0]),
      WrapTag(TagKind::kThink, "Let me double check.") +
          WrapTag(TagKind::kSearch, topic.paraphrases[4]),
      WrapTag(TagKind::kThink, "Once more, differently phrased.") +
          WrapTag(TagKind::kSearch, topic.paraphrases[9]),
      WrapTag(TagKind::kThink, "Now something else entirely.") +
          WrapTag(TagKind::kSearch, other.paraphrases[2]),
      WrapTag(TagKind::kThink, "Enough evidence.") +
          WrapTag(TagKind::kAnswer, "final answer"),
  };

  double now = 0.0;
  for (const auto& turn : turns) {
    now += 1.0;
    std::cout << "agent> " << turn.substr(0, 96)
              << (turn.size() > 96 ? "..." : "") << '\n';
    const auto result = client.InterceptTurn(turn, now, /*session=*/1);
    if (!result.tool_call) {
      std::cout << "      [no tool call - passed through]\n\n";
      continue;
    }
    std::cout << "      -> " << (result.from_cache ? "CACHE HIT " : "MISS      ")
              << result.observation->substr(0, 72) << "...\n\n";
  }

  std::cout << "summary: " << client.tool_calls_seen() << " tool calls, "
            << client.served_from_cache() << " served from cache, "
            << remote_fetches << " remote fetches\n";
  return 0;
}
