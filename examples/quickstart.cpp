// Quickstart: build a skewed search workload, serve it three ways
// (no cache / exact-match cache / Cortex), and compare throughput, hit
// rate, latency, accuracy, and API cost.
//
//   ./build/examples/quickstart [--tasks=400] [--ratio=0.4] [--rate=2.0]
#include <iostream>

#include "core/resolvers.h"
#include "embedding/hashed_embedder.h"
#include "sim/driver.h"
#include "util/flags.h"
#include "util/table.h"
#include "workload/workloads.h"

using namespace cortex;

namespace {

struct RunOutput {
  RunMetrics metrics;
  double hit_rate = 0.0;
  std::uint64_t service_calls = 0;
  double service_cost = 0.0;
};

RunOutput RunOnce(const std::string& system, const WorkloadBundle& bundle,
                  double cache_ratio, double request_rate) {
  // Fresh components per run so systems do not share state.
  HashedEmbedder embedder;
  const auto corpus = bundle.AllQueries();
  embedder.FitIdf(corpus);
  JudgerModel judger(bundle.oracle.get());
  AgentModel agent;
  ColocationSimulator gpu(DeploymentConfig::Colocated80_20());
  RemoteDataService service(RemoteDataService::GoogleSearchApi());

  const double capacity = cache_ratio * bundle.TotalKnowledgeTokens();
  ResolverEnvironment env{&gpu, &service, bundle.oracle.get()};

  DriverOptions driver_opts;
  driver_opts.request_rate = request_rate;

  std::unique_ptr<ToolResolver> resolver;
  std::unique_ptr<CortexEngine> engine;
  if (system == "vanilla") {
    resolver = std::make_unique<VanillaResolver>(env);
  } else if (system == "exact") {
    resolver = std::make_unique<ExactCacheResolver>(
        env, ExactCacheOptions{.capacity_tokens = capacity});
  } else {
    CortexEngineOptions opts;
    opts.cache.capacity_tokens = capacity;
    engine = std::make_unique<CortexEngine>(&embedder, &judger, opts);
    resolver = std::make_unique<CortexResolver>(env, engine.get());
  }

  ServingDriver driver(agent, gpu, *resolver, driver_opts);
  RunOutput out;
  out.metrics = driver.Run(bundle.tasks);
  out.hit_rate = out.metrics.CacheHitRate();
  out.service_calls = service.total_calls();
  out.service_cost = service.total_cost_dollars();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const auto tasks = static_cast<std::size_t>(flags.GetInt("tasks", 400));
  const double ratio = flags.GetDouble("ratio", 0.4);
  const double rate = flags.GetDouble("rate", 2.0);

  auto profile = SearchDatasetProfile::HotpotQa();
  profile.num_tasks = tasks;
  const WorkloadBundle bundle = BuildSkewedSearchWorkload(profile);
  std::cout << "workload: " << bundle.name << ", " << bundle.tasks.size()
            << " tasks over " << bundle.universe->size() << " topics ("
            << bundle.TotalKnowledgeTokens() << " knowledge tokens)\n\n";

  TextTable table({"system", "throughput (req/s)", "mean latency (s)",
                   "p99 (s)", "hit rate", "accuracy", "API calls",
                   "API cost ($)"});
  for (const std::string system : {"vanilla", "exact", "cortex"}) {
    const RunOutput out = RunOnce(system, bundle, ratio, rate);
    table.AddRow({system, TextTable::Num(out.metrics.Throughput()),
                  TextTable::Num(out.metrics.MeanLatency(), 3),
                  TextTable::Num(out.metrics.P99Latency(), 3),
                  TextTable::Percent(out.metrics.CacheHitRate()),
                  TextTable::Percent(out.metrics.Accuracy()),
                  std::to_string(out.service_calls),
                  TextTable::Num(out.service_cost, 3)});
  }
  std::cout << table.Render();
  return 0;
}
