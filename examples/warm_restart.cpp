// Warm restart: demonstrates cache snapshots (core/snapshot.h).
//
// Phase 1 serves half the workload cold and saves the cache to disk.
// Phase 2 simulates a process restart: a brand-new engine loads the
// snapshot and serves the second half, compared against a cold restart.
// The warm instance skips the cold-start misses — exactly what a real
// deployment wants after a rolling upgrade.
//
//   ./build/examples/warm_restart [--tasks=600] [--ratio=0.5]
#include <cstdio>
#include <iostream>

#include "core/resolvers.h"
#include "core/snapshot.h"
#include "embedding/hashed_embedder.h"
#include "sim/driver.h"
#include "util/flags.h"
#include "util/table.h"
#include "workload/workloads.h"

using namespace cortex;

namespace {

struct Phase {
  RunMetrics metrics;
  std::uint64_t api_calls = 0;
};

Phase ServeSlice(const WorkloadBundle& bundle,
                 std::vector<AgentTask> tasks, double ratio,
                 const std::string& snapshot_in,
                 const std::string& snapshot_out) {
  HashedEmbedder embedder;
  const auto corpus = bundle.AllQueries();
  embedder.FitIdf(corpus);
  JudgerModel judger(bundle.oracle.get());
  AgentModel agent;
  ColocationSimulator gpu(DeploymentConfig::Colocated80_20());
  RemoteDataService service(RemoteDataService::GoogleSearchApi());

  CortexEngineOptions opts;
  opts.cache.capacity_tokens = ratio * bundle.TotalKnowledgeTokens();
  CortexEngine engine(&embedder, &judger, opts);

  if (!snapshot_in.empty()) {
    const auto stats = LoadCacheSnapshotFile(engine.cache(), snapshot_in, 0.0);
    std::cout << "  loaded snapshot: " << stats.entries_restored
              << " restored, " << stats.entries_expired << " expired, "
              << stats.entries_rejected << " rejected\n";
  }

  ResolverEnvironment env{&gpu, &service, bundle.oracle.get()};
  CortexResolver resolver(env, &engine);
  DriverOptions driver_opts;
  driver_opts.request_rate = 2.0;
  ServingDriver driver(agent, gpu, resolver, driver_opts);

  Phase phase;
  phase.metrics = driver.Run(std::move(tasks));
  phase.api_calls = service.total_calls();

  if (!snapshot_out.empty()) {
    const auto stats = SaveCacheSnapshotFile(engine.cache(), snapshot_out);
    std::cout << "  saved snapshot: " << stats.entries_written
              << " entries\n";
  }
  return phase;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  auto profile = SearchDatasetProfile::HotpotQa();
  profile.num_tasks = static_cast<std::size_t>(flags.GetInt("tasks", 600));
  const double ratio = flags.GetDouble("ratio", 0.5);
  const WorkloadBundle bundle = BuildSkewedSearchWorkload(profile);

  const auto half = bundle.tasks.size() / 2;
  std::vector<AgentTask> first(bundle.tasks.begin(),
                               bundle.tasks.begin() + half);
  std::vector<AgentTask> second(bundle.tasks.begin() + half,
                                bundle.tasks.end());
  const std::string snapshot = "/tmp/cortex_warm_restart.snapshot";

  std::cout << "phase 1: cold start, " << first.size()
            << " tasks, snapshot on exit\n";
  const Phase p1 = ServeSlice(bundle, first, ratio, "", snapshot);

  std::cout << "\nphase 2a: restart COLD (no snapshot), " << second.size()
            << " tasks\n";
  const Phase cold = ServeSlice(bundle, second, ratio, "", "");

  std::cout << "\nphase 2b: restart WARM (snapshot loaded)\n";
  const Phase warm = ServeSlice(bundle, second, ratio, snapshot, "");
  std::remove(snapshot.c_str());

  TextTable table({"phase", "hit rate", "throughput (req/s)",
                   "mean latency (s)", "API calls"});
  auto row = [&](const char* name, const Phase& p) {
    table.AddRow({name, TextTable::Percent(p.metrics.CacheHitRate()),
                  TextTable::Num(p.metrics.Throughput()),
                  TextTable::Num(p.metrics.MeanLatency(), 2),
                  std::to_string(p.api_calls)});
  };
  std::cout << '\n';
  row("1: cold start", p1);
  row("2a: restart cold", cold);
  row("2b: restart warm", warm);
  std::cout << table.Render()
            << "\nwarm restart skips the cold-start miss burst: higher hit"
               " rate, fewer remote calls, lower latency from request one.\n";
  return 0;
}
