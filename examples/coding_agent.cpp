// Coding agent scenario: a SWE-bench-style stream of GitHub issues against
// one repository.  Issues repeatedly pull the same core files through the
// remote RAG service with different phrasings; Cortex's semantic matching
// recognises the shared file context where an exact-match cache cannot.
//
//   ./build/examples/coding_agent [--issues=300] [--ratio=0.4] [--concurrency=8]
#include <iostream>

#include "core/resolvers.h"
#include "embedding/hashed_embedder.h"
#include "sim/driver.h"
#include "util/flags.h"
#include "util/table.h"
#include "workload/workload_stats.h"
#include "workload/workloads.h"

using namespace cortex;

namespace {

struct Row {
  RunMetrics metrics;
  std::uint64_t api_calls = 0;
};

Row Serve(const std::string& system, const WorkloadBundle& bundle,
          double ratio, double rate) {
  HashedEmbedder embedder;
  const auto corpus = bundle.AllQueries();
  embedder.FitIdf(corpus);
  JudgerModel judger(bundle.oracle.get());
  AgentModel agent(ModelSpec::Coder8B());
  ColocationSimulator gpu(DeploymentConfig::Colocated80_20());
  // Coding uses the self-hosted RAG backend (~300 ms RTT, no hard quota).
  RemoteDataService service(RemoteDataService::SelfHostedRag());

  const double capacity = ratio * bundle.TotalKnowledgeTokens();
  ResolverEnvironment env{&gpu, &service, bundle.oracle.get()};

  std::unique_ptr<ToolResolver> resolver;
  std::unique_ptr<CortexEngine> engine;
  if (system == "vanilla") {
    resolver = std::make_unique<VanillaResolver>(env);
  } else if (system == "exact") {
    resolver = std::make_unique<ExactCacheResolver>(
        env, ExactCacheOptions{.capacity_tokens = capacity});
  } else {
    CortexEngineOptions opts;
    opts.cache.capacity_tokens = capacity;
    engine = std::make_unique<CortexEngine>(&embedder, &judger, opts);
    resolver = std::make_unique<CortexResolver>(env, engine.get());
  }

  DriverOptions driver_opts;
  // Closed loop: a fixed pool of concurrent issues, as an agent fleet
  // working through a backlog — per-request latency then translates
  // directly into throughput.
  driver_opts.arrival = DriverOptions::Arrival::kClosedLoop;
  driver_opts.concurrency = static_cast<std::size_t>(rate);
  ServingDriver driver(agent, gpu, *resolver, driver_opts);
  Row row;
  row.metrics = driver.Run(bundle.tasks);
  row.api_calls = service.total_calls();
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  SweBenchProfile profile;
  profile.num_issues = static_cast<std::size_t>(flags.GetInt("issues", 300));
  const double ratio = flags.GetDouble("ratio", 0.4);
  const double rate = flags.GetDouble("concurrency", 8.0);

  const WorkloadBundle bundle = BuildSweBenchWorkload(profile);

  // Table-2 style: how often each head file is needed across issues.
  const auto freqs = FileAccessFrequencies(bundle);
  TextTable table2({"file-id", "access freq."});
  for (std::size_t f = 0; f < profile.head_frequencies.size(); ++f) {
    table2.AddRow({std::to_string(f + 1), TextTable::Num(freqs[f])});
  }
  std::cout << "file access frequency across " << bundle.tasks.size()
            << " issues (cf. paper Table 2):\n"
            << table2.Render() << '\n';

  TextTable results({"system", "throughput (req/s)", "hit rate",
                     "mean latency (s)", "accuracy", "RAG calls"});
  for (const std::string system : {"vanilla", "exact", "cortex"}) {
    const Row row = Serve(system, bundle, ratio, rate);
    results.AddRow({system, TextTable::Num(row.metrics.Throughput()),
                    TextTable::Percent(row.metrics.CacheHitRate()),
                    TextTable::Num(row.metrics.MeanLatency(), 3),
                    TextTable::Percent(row.metrics.Accuracy()),
                    std::to_string(row.api_calls)});
  }
  std::cout << results.Render();
  return 0;
}
