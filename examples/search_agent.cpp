// Search agent walkthrough: serves a multi-hop Musique-style workload with
// the full Cortex engine and prints a deep-dive of what the cache did —
// two-stage retrieval telemetry, eviction/prefetch activity, threshold
// recalibration, and the per-request latency anatomy.
//
//   ./build/examples/search_agent [--tasks=600] [--ratio=0.5] [--rate=3]
#include <iostream>

#include "core/resolvers.h"
#include "embedding/hashed_embedder.h"
#include "sim/driver.h"
#include "util/flags.h"
#include "util/table.h"
#include "workload/workloads.h"

using namespace cortex;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  auto profile = SearchDatasetProfile::Musique();
  profile.num_tasks = static_cast<std::size_t>(flags.GetInt("tasks", 600));
  const double ratio = flags.GetDouble("ratio", 0.5);
  const double rate = flags.GetDouble("rate", 3.0);

  const WorkloadBundle bundle = BuildSkewedSearchWorkload(profile);

  HashedEmbedder embedder;
  const auto corpus = bundle.AllQueries();
  embedder.FitIdf(corpus);
  JudgerModel judger(bundle.oracle.get());
  AgentModel agent;
  ColocationSimulator gpu(DeploymentConfig::Colocated80_20());
  RemoteDataService service(RemoteDataService::GoogleSearchApi());

  CortexEngineOptions opts;
  opts.cache.capacity_tokens = ratio * bundle.TotalKnowledgeTokens();
  opts.decision_trace_size = 5;  // keep the last lookups for the deep dive
  CortexEngine engine(&embedder, &judger, opts);

  ResolverEnvironment env{&gpu, &service, bundle.oracle.get()};
  CortexResolver resolver(env, &engine);

  DriverOptions driver_opts;
  driver_opts.request_rate = rate;
  ServingDriver driver(agent, gpu, resolver, driver_opts);
  const RunMetrics metrics = driver.Run(bundle.tasks);

  std::cout << "=== serving summary (" << bundle.name << ") ===\n";
  TextTable summary({"metric", "value"});
  summary.AddRow({"tasks completed", std::to_string(metrics.completed_tasks())});
  summary.AddRow({"throughput (req/s)", TextTable::Num(metrics.Throughput())});
  summary.AddRow({"mean latency (s)", TextTable::Num(metrics.MeanLatency(), 3)});
  summary.AddRow({"p99 latency (s)", TextTable::Num(metrics.P99Latency(), 3)});
  summary.AddRow({"cache hit rate", TextTable::Percent(metrics.CacheHitRate())});
  summary.AddRow({"EM accuracy", TextTable::Percent(metrics.Accuracy())});
  summary.AddRow(
      {"mean agent inference (s)", TextTable::Num(metrics.MeanAgentSeconds(), 3)});
  summary.AddRow({"mean cache check (s)",
                  TextTable::Num(metrics.MeanCacheCheckSeconds(), 3)});
  summary.AddRow(
      {"mean remote fetch (s)", TextTable::Num(metrics.MeanToolSeconds(), 3)});
  std::cout << summary.Render() << '\n';

  std::cout << "=== cache engine internals ===\n";
  const auto& c = engine.cache().counters();
  TextTable internals({"counter", "value"});
  internals.AddRow({"lookups", std::to_string(c.lookups)});
  internals.AddRow({"semantic hits", std::to_string(c.hits)});
  internals.AddRow({"insertions", std::to_string(c.insertions)});
  internals.AddRow({"evictions (LCFU)", std::to_string(c.evictions)});
  internals.AddRow({"TTL expirations", std::to_string(c.expirations)});
  internals.AddRow({"resident SEs", std::to_string(engine.cache().size())});
  internals.AddRow({"usage (tokens)",
                    TextTable::Num(engine.cache().usage_tokens(), 0) + " / " +
                        TextTable::Num(engine.cache().capacity_tokens(), 0)});
  internals.AddRow({"prefetches issued",
                    std::to_string(resolver.prefetch_issued())});
  internals.AddRow({"recalibration rounds",
                    std::to_string(resolver.recalibration_rounds())});
  internals.AddRow({"live tau_lsm",
                    TextTable::Num(
                        engine.cache().sine().options().tau_lsm, 3)});
  internals.AddRow({"judger deferrals (GPU guardrail)",
                    std::to_string(gpu.judger_deferrals())});
  std::cout << internals.Render() << '\n';

  std::cout << "=== last lookup decisions (ring buffer) ===\n";
  TextTable decisions({"t (s)", "query (truncated)", "ANN cands",
                       "judged", "outcome", "best sim", "best score"});
  for (const auto& d : engine.decision_trace()) {
    decisions.AddRow({TextTable::Num(d.time, 1), d.query.substr(0, 36),
                      std::to_string(d.ann_candidates),
                      std::to_string(d.judger_calls),
                      d.hit ? "HIT" : "miss",
                      TextTable::Num(d.best_similarity, 2),
                      TextTable::Num(d.best_judger_score, 2)});
  }
  std::cout << decisions.Render() << '\n';

  std::cout << "=== remote service ===\n";
  TextTable remote({"counter", "value"});
  remote.AddRow({"API calls", std::to_string(service.total_calls())});
  remote.AddRow({"retries", std::to_string(service.total_retries())});
  remote.AddRow({"retry ratio", TextTable::Percent(service.RetryRatio())});
  remote.AddRow({"API cost ($)", TextTable::Num(service.total_cost_dollars(), 3)});
  std::cout << remote.Render();
  return 0;
}
