#include "core/resolvers.h"

#include <gtest/gtest.h>

#include "test_helpers.h"

namespace cortex {
namespace {

using cortex::testing::MiniWorld;

class ResolverTest : public ::testing::Test {
 protected:
  ResolverTest()
      : gpu_(DeploymentConfig::Colocated80_20()),
        service_(RemoteDataService::SelfHostedRag()) {}

  ResolverEnvironment Env() {
    return {&gpu_, &service_, world_.oracle.get()};
  }

  ToolStep StepFor(std::size_t topic, std::size_t paraphrase = 0) {
    return {"think", world_.query(topic, paraphrase), world_.answer(topic)};
  }

  // Runs a single resolve to completion and returns the outcome.
  ResolveOutcome RunOne(ToolResolver& resolver, const ToolStep& step,
                        double start = 0.0, std::uint64_t task_id = 1) {
    Simulation sim;
    std::optional<ResolveOutcome> result;
    sim.ScheduleAt(start, [&] {
      resolver.Resolve(sim, step, task_id,
                       [&](ResolveOutcome out) { result = std::move(out); });
    });
    sim.Run();
    EXPECT_TRUE(result.has_value());
    return std::move(*result);
  }

  MiniWorld world_;
  ColocationSimulator gpu_;
  RemoteDataService service_;
};

// --- VanillaResolver ---

TEST_F(ResolverTest, VanillaAlwaysFetchesRemotely) {
  VanillaResolver resolver(Env());
  EXPECT_EQ(resolver.name(), "vanilla");
  for (int i = 0; i < 3; ++i) {
    const auto out = RunOne(resolver, StepFor(0), i * 10.0);
    EXPECT_FALSE(out.from_cache);
    EXPECT_TRUE(out.info_correct);
    EXPECT_EQ(out.info, world_.answer(0));
    EXPECT_EQ(out.api_calls, 1u);
    EXPECT_GT(out.tool_seconds, 0.2);
    EXPECT_DOUBLE_EQ(out.cache_check_seconds, 0.0);
  }
  EXPECT_EQ(service_.total_calls(), 3u);
}

// --- ExactCacheResolver ---

TEST_F(ResolverTest, ExactCachesIdenticalStringsOnly) {
  ExactCacheResolver resolver(Env(), {.capacity_tokens = 1e9});
  const auto first = RunOne(resolver, StepFor(0, 0), 0.0);
  EXPECT_FALSE(first.from_cache);

  const auto repeat = RunOne(resolver, StepFor(0, 0), 10.0);
  EXPECT_TRUE(repeat.from_cache);
  EXPECT_TRUE(repeat.info_correct);
  EXPECT_EQ(repeat.api_calls, 0u);
  EXPECT_DOUBLE_EQ(repeat.tool_seconds, 0.0);

  const auto paraphrase = RunOne(resolver, StepFor(0, 1), 20.0);
  EXPECT_FALSE(paraphrase.from_cache);  // rephrasing defeats exact match
  EXPECT_EQ(service_.total_calls(), 2u);
}

TEST_F(ResolverTest, ExactHitIsFastLocalLookup) {
  ExactCacheResolver resolver(Env(), {.capacity_tokens = 1e9});
  RunOne(resolver, StepFor(0, 0), 0.0);
  Simulation sim;
  double completed_at = -1.0;
  sim.ScheduleAt(100.0, [&] {
    resolver.Resolve(sim, StepFor(0, 0), 1,
                     [&](ResolveOutcome) { completed_at = sim.now(); });
  });
  sim.Run();
  EXPECT_NEAR(completed_at, 100.0, 0.01);  // ~1 ms local lookup
}

// --- CortexResolver ---

struct CortexHarness {
  explicit CortexHarness(MiniWorld& world, CortexEngineOptions opts = {}) {
    if (opts.cache.capacity_tokens == SemanticCacheOptions{}.capacity_tokens) {
      opts.cache.capacity_tokens = 1e6;
    }
    engine = std::make_unique<CortexEngine>(&world.embedder,
                                            world.judger.get(), opts);
  }
  std::unique_ptr<CortexEngine> engine;
};

TEST_F(ResolverTest, CortexMissFetchesAndAdmits) {
  CortexHarness harness(world_);
  CortexResolver resolver(Env(), harness.engine.get());
  EXPECT_EQ(resolver.name(), "cortex");
  const auto out = RunOne(resolver, StepFor(0, 0), 0.0);
  EXPECT_FALSE(out.from_cache);
  EXPECT_TRUE(out.info_correct);
  EXPECT_GE(out.api_calls, 1u);
  EXPECT_GT(out.cache_check_seconds, 0.0);  // embedding + ANN ran
  EXPECT_EQ(harness.engine->cache().size(), 1u);
}

TEST_F(ResolverTest, CortexServesParaphraseFromCache) {
  CortexHarness harness(world_);
  CortexResolver resolver(Env(), harness.engine.get());
  RunOne(resolver, StepFor(0, 0), 0.0);
  const auto out = RunOne(resolver, StepFor(0, 3), 10.0);
  EXPECT_TRUE(out.from_cache);
  EXPECT_TRUE(out.info_correct);
  EXPECT_EQ(out.info, world_.answer(0));
  EXPECT_EQ(out.api_calls, 0u);
  EXPECT_DOUBLE_EQ(out.tool_seconds, 0.0);
  EXPECT_GT(out.cache_check_seconds, 0.0);
  EXPECT_LT(out.cache_check_seconds, 0.15);  // far cheaper than the fetch
}

TEST_F(ResolverTest, CortexHitIsFasterThanRemoteFetch) {
  CortexHarness harness(world_);
  CortexResolver resolver(Env(), harness.engine.get());
  const auto miss = RunOne(resolver, StepFor(0, 0), 0.0);
  const auto hit = RunOne(resolver, StepFor(0, 2), 10.0);
  EXPECT_LT(hit.cache_check_seconds,
            miss.tool_seconds);  // the paper's core trade (Fig. 11)
}

TEST_F(ResolverTest, AnnOnlyVariantReportsItsName) {
  CortexEngineOptions opts;
  opts.cache.sine.use_judger = false;
  // Accept any stage-1 survivor so the hit path is deterministic.
  opts.cache.sine.ann_only_threshold = opts.cache.sine.tau_sim;
  CortexHarness harness(world_, opts);
  CortexResolver resolver(Env(), harness.engine.get());
  EXPECT_EQ(resolver.name(), "ann-only");
  // And it still serves paraphrase hits, without judger latency.
  RunOne(resolver, StepFor(0, 0), 0.0);
  const auto out = RunOne(resolver, StepFor(0, 1), 10.0);
  EXPECT_TRUE(out.from_cache);
}

TEST_F(ResolverTest, RecalibrationRunsOnScheduleAndCountsCalls) {
  CortexEngineOptions opts;
  opts.recalibration_enabled = true;
  opts.recalibration_interval_sec = 5.0;
  CortexHarness harness(world_, opts);
  CortexResolver resolver(Env(), harness.engine.get());
  for (int i = 0; i < 8; ++i) {
    RunOne(resolver, StepFor(i % 3, i % 5), i * 3.0);
  }
  EXPECT_GE(resolver.recalibration_rounds(), 2u);
}

TEST_F(ResolverTest, PrefetchIssuesBackgroundFetches) {
  CortexEngineOptions opts;
  opts.prefetch.min_observations = 2;
  opts.prefetch.confidence_threshold = 0.5;
  opts.recalibration_enabled = false;
  // Tiny capacity would complicate things; keep it large but evict topic 1
  // manually to create a prefetch opportunity.
  CortexHarness harness(world_, opts);
  CortexResolver resolver(Env(), harness.engine.get());
  // Teach transition q(0) -> q(1) across sessions, then remove topic 1.
  for (std::uint64_t s = 0; s < 4; ++s) {
    RunOne(resolver, StepFor(0, 0), s * 20.0, /*task=*/s);
    RunOne(resolver, StepFor(1, 0), s * 20.0 + 1.0, /*task=*/s);
  }
  // Evict topic 1's entry so the next prediction is actionable.
  std::vector<SeId> to_remove;
  for (const auto& [id, se] : harness.engine->cache().entries()) {
    if (world_.oracle->TopicOf(se.key) == 1u) to_remove.push_back(id);
  }
  for (SeId id : to_remove) harness.engine->cache().Remove(id);

  const auto before = resolver.prefetch_issued();
  RunOne(resolver, StepFor(0, 1), 200.0, /*task=*/77);
  EXPECT_GT(resolver.prefetch_issued(), before);
  // The prefetched knowledge landed in the cache under topic 1's key.
  EXPECT_TRUE(harness.engine->cache().ContainsKey(world_.query(1, 0)));
}

TEST_F(ResolverTest, BackgroundCallAccountingCanBeDisabled) {
  CortexEngineOptions opts;
  opts.recalibration_enabled = true;
  opts.recalibration_interval_sec = 1.0;
  CortexHarness harness(world_, opts);
  CortexResolverOptions ropts;
  ropts.count_background_calls = false;
  CortexResolver resolver(Env(), harness.engine.get(), ropts);
  RunOne(resolver, StepFor(0, 0), 0.0);
  const auto out = RunOne(resolver, StepFor(1, 0), 100.0);
  // Only the foreground fetch is attributed.
  EXPECT_EQ(out.api_calls, 1u);
}

TEST_F(ResolverTest, SingleFlightCoalescesIdenticalConcurrentMisses) {
  CortexHarness harness(world_);
  CortexResolver resolver(Env(), harness.engine.get());
  Simulation sim;
  int completed = 0;
  std::string info_a, info_b;
  const ToolStep step = StepFor(0, 0);
  sim.ScheduleAt(0.0, [&] {
    resolver.Resolve(sim, step, 1, [&](ResolveOutcome out) {
      ++completed;
      info_a = out.info;
    });
    // Second identical request before the first fetch returns.
    resolver.Resolve(sim, step, 2, [&](ResolveOutcome out) {
      ++completed;
      info_b = out.info;
    });
  });
  sim.Run();
  EXPECT_EQ(completed, 2);
  EXPECT_EQ(resolver.coalesced_requests(), 1u);
  EXPECT_EQ(info_a, world_.answer(0));
  EXPECT_EQ(info_b, world_.answer(0));
  // Only ONE remote fetch went out for the two concurrent misses.
  EXPECT_EQ(service_.total_calls(), 1u);
}

TEST_F(ResolverTest, CoalescingCanBeDisabled) {
  CortexHarness harness(world_);
  CortexResolverOptions ropts;
  ropts.coalesce_inflight = false;
  CortexResolver resolver(Env(), harness.engine.get(), ropts);
  Simulation sim;
  const ToolStep step = StepFor(0, 0);
  int completed = 0;
  sim.ScheduleAt(0.0, [&] {
    resolver.Resolve(sim, step, 1, [&](ResolveOutcome) { ++completed; });
    resolver.Resolve(sim, step, 2, [&](ResolveOutcome) { ++completed; });
  });
  sim.Run();
  EXPECT_EQ(completed, 2);
  EXPECT_EQ(resolver.coalesced_requests(), 0u);
  EXPECT_EQ(service_.total_calls(), 2u);
}

TEST_F(ResolverTest, CoalescedWaiterAfterCompletionStartsFreshFetch) {
  CortexHarness harness(world_);
  // Disable insertion confusions: use a paraphrase whose repeat would hit.
  CortexResolver resolver(Env(), harness.engine.get());
  const auto first = RunOne(resolver, StepFor(0, 0), 0.0);
  EXPECT_FALSE(first.from_cache);
  // Sequential (not concurrent) repeat: the in-flight entry was cleaned up,
  // and the cache now serves it — no stale registry entry.
  const auto repeat = RunOne(resolver, StepFor(0, 0), 100.0);
  EXPECT_TRUE(repeat.from_cache);
  EXPECT_EQ(resolver.coalesced_requests(), 0u);
}

TEST_F(ResolverTest, SemanticCoalescingJoinsEquivalentInflightFetch) {
  CortexHarness harness(world_);
  CortexResolver resolver(Env(), harness.engine.get());
  Simulation sim;
  int completed = 0;
  std::string info_b;
  sim.ScheduleAt(0.0, [&] {
    // Two *different paraphrases* of the same topic miss concurrently.
    resolver.Resolve(sim, StepFor(0, 0), 1,
                     [&](ResolveOutcome) { ++completed; });
    resolver.Resolve(sim, StepFor(0, 2), 2, [&](ResolveOutcome out) {
      ++completed;
      info_b = out.info;
      EXPECT_TRUE(out.info_correct);
    });
  });
  sim.Run();
  EXPECT_EQ(completed, 2);
  EXPECT_EQ(resolver.coalesced_requests(), 1u);
  EXPECT_EQ(info_b, world_.answer(0));
  EXPECT_EQ(service_.total_calls(), 1u);  // one fetch served both
}

TEST_F(ResolverTest, SemanticCoalescingDisabledStillCoalescesExact) {
  CortexHarness harness(world_);
  CortexResolverOptions ropts;
  ropts.semantic_coalescing = false;
  CortexResolver resolver(Env(), harness.engine.get(), ropts);
  Simulation sim;
  int completed = 0;
  sim.ScheduleAt(0.0, [&] {
    resolver.Resolve(sim, StepFor(0, 0), 1,
                     [&](ResolveOutcome) { ++completed; });
    // Different paraphrase: no semantic coalescing, so a second fetch.
    resolver.Resolve(sim, StepFor(0, 2), 2,
                     [&](ResolveOutcome) { ++completed; });
    // Exact repeat still coalesces.
    resolver.Resolve(sim, StepFor(0, 0), 3,
                     [&](ResolveOutcome) { ++completed; });
  });
  sim.Run();
  EXPECT_EQ(completed, 3);
  EXPECT_EQ(resolver.coalesced_requests(), 1u);
  EXPECT_EQ(service_.total_calls(), 2u);
}

TEST_F(ResolverTest, UnrelatedConcurrentMissesDoNotCoalesce) {
  CortexHarness harness(world_);
  CortexResolver resolver(Env(), harness.engine.get());
  // Find a topic with a different entity than topic 0.
  std::size_t other = 1;
  while (world_.topic(other).entity == world_.topic(0).entity) ++other;
  Simulation sim;
  int completed = 0;
  sim.ScheduleAt(0.0, [&] {
    resolver.Resolve(sim, StepFor(0, 0), 1,
                     [&](ResolveOutcome) { ++completed; });
    resolver.Resolve(sim, StepFor(other, 0), 2, [&](ResolveOutcome out) {
      ++completed;
      EXPECT_EQ(out.info, world_.answer(other));  // its own fetch
    });
  });
  sim.Run();
  EXPECT_EQ(completed, 2);
  EXPECT_EQ(resolver.coalesced_requests(), 0u);
  EXPECT_EQ(service_.total_calls(), 2u);
}

}  // namespace
}  // namespace cortex
