#include <gtest/gtest.h>

#include "net/cost_model.h"
#include "net/latency.h"
#include "net/rate_limiter.h"
#include "net/remote_service.h"
#include "util/stats.h"

namespace cortex {
namespace {

// --- LatencyDistribution ---

TEST(LatencyDistribution, SamplesWithinBounds) {
  auto dist = LatencyDistribution::CrossRegionSearchApi();
  Rng rng(1);
  for (int i = 0; i < 5000; ++i) {
    const double s = dist.Sample(rng);
    EXPECT_GE(s, dist.params().min_sec);
    EXPECT_LE(s, dist.params().max_sec);
  }
}

TEST(LatencyDistribution, CrossRegionMatchesPaperBand) {
  // Paper §6.1: 300-500 ms per-request average depending on response.
  auto dist = LatencyDistribution::CrossRegionSearchApi();
  Rng rng(2);
  StreamingStats stats;
  for (int i = 0; i < 20000; ++i) stats.Add(dist.Sample(rng));
  EXPECT_GT(stats.mean(), 0.30);
  EXPECT_LT(stats.mean(), 0.50);
  EXPECT_NEAR(stats.mean(), dist.mean_estimate(), 0.02);
}

TEST(LatencyDistribution, RagAveragesThreeHundredMs) {
  auto dist = LatencyDistribution::SelfHostedRag();
  Rng rng(3);
  StreamingStats stats;
  for (int i = 0; i < 20000; ++i) stats.Add(dist.Sample(rng));
  EXPECT_NEAR(stats.mean(), 0.30, 0.03);
}

TEST(LatencyDistribution, LocalIsMilliseconds) {
  auto dist = LatencyDistribution::LocalService();
  Rng rng(4);
  for (int i = 0; i < 100; ++i) EXPECT_LT(dist.Sample(rng), 0.05);
}

// --- TokenBucket ---

TEST(TokenBucket, BurstThenThrottle) {
  TokenBucket bucket(1.0, 5.0);  // 1/s, burst 5
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(bucket.TryAcquire(0.0));
  EXPECT_FALSE(bucket.TryAcquire(0.0));
  EXPECT_EQ(bucket.accepted(), 5u);
  EXPECT_EQ(bucket.rejected(), 1u);
}

TEST(TokenBucket, RefillsAtRate) {
  TokenBucket bucket(2.0, 2.0);
  EXPECT_TRUE(bucket.TryAcquire(0.0));
  EXPECT_TRUE(bucket.TryAcquire(0.0));
  EXPECT_FALSE(bucket.TryAcquire(0.0));
  EXPECT_FALSE(bucket.TryAcquire(0.4));  // only 0.8 tokens accrued
  EXPECT_TRUE(bucket.TryAcquire(0.6));   // 1.2 accrued
}

TEST(TokenBucket, NextAvailablePredictsAcquireTime) {
  TokenBucket bucket(1.0, 1.0);
  EXPECT_TRUE(bucket.TryAcquire(0.0));
  const double next = bucket.NextAvailable(0.0);
  EXPECT_NEAR(next, 1.0, 1e-9);
  EXPECT_FALSE(bucket.TryAcquire(next - 0.01));
  EXPECT_TRUE(bucket.TryAcquire(next));
}

TEST(TokenBucket, NextAvailableIsNowWhenTokensExist) {
  TokenBucket bucket(1.0, 3.0);
  EXPECT_DOUBLE_EQ(bucket.NextAvailable(5.0), 5.0);
}

TEST(TokenBucket, CapsAtBurst) {
  TokenBucket bucket(100.0, 3.0);
  EXPECT_NEAR(bucket.TokensAt(1000.0), 3.0, 1e-9);
}

TEST(TokenBucket, UnlimitedNeverRejects) {
  auto bucket = UnlimitedBucket();
  for (int i = 0; i < 10000; ++i) EXPECT_TRUE(bucket.TryAcquire(0.0));
}

TEST(TokenBucket, SustainedRateConvergesToLimit) {
  TokenBucket bucket(100.0 / 60.0, 10.0);  // the paper's 100/min quota
  int accepted = 0;
  for (int i = 0; i < 6000; ++i) {
    if (bucket.TryAcquire(i * 0.1)) ++accepted;  // offered 10/s for 600 s
  }
  EXPECT_NEAR(accepted, 1010, 30);  // ~100/min x 10 min + burst
}

// --- RetryPolicy ---

TEST(RetryPolicy, BackoffGrowsGeometricallyAndCaps) {
  RetryPolicy policy;
  policy.jitter_fraction = 0.0;
  Rng rng(5);
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(1, rng), 0.5);
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(2, rng), 1.0);
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(3, rng), 2.0);
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(10, rng), policy.max_backoff_sec);
}

TEST(RetryPolicy, JitterStaysWithinFraction) {
  RetryPolicy policy;
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    const double b = policy.BackoffSeconds(2, rng);
    EXPECT_GE(b, 1.0 * (1 - policy.jitter_fraction) - 1e-9);
    EXPECT_LE(b, 1.0 * (1 + policy.jitter_fraction) + 1e-9);
  }
}

// --- CostModel ---

TEST(CostModel, Table1Prices) {
  const auto pricing = StandardApiPricing();
  ASSERT_EQ(pricing.size(), 3u);
  EXPECT_EQ(pricing[0].provider, "Google");
  EXPECT_DOUBLE_EQ(pricing[0].dollars_per_1k_calls, 5.0);
  EXPECT_DOUBLE_EQ(GoogleSearchPricing().PerCall(), 0.005);
  EXPECT_DOUBLE_EQ(SelfHostedPricing().PerCall(), 0.0);
}

TEST(CostModel, TrackerAccumulates) {
  CostTracker tracker;
  tracker.AddApiCall(GoogleSearchPricing(), 1000);
  tracker.AddGpuSeconds(3600.0, 2.0);
  EXPECT_DOUBLE_EQ(tracker.api_dollars(), 5.0);
  EXPECT_DOUBLE_EQ(tracker.gpu_dollars(), 2.0 * kGpuDollarsPerHour);
  EXPECT_DOUBLE_EQ(tracker.total_dollars(),
                   5.0 + 2.0 * kGpuDollarsPerHour);
  EXPECT_EQ(tracker.api_calls(), 1000u);
  tracker.Reset();
  EXPECT_DOUBLE_EQ(tracker.total_dollars(), 0.0);
}

// --- RemoteDataService ---

TEST(RemoteService, UnthrottledFetchSucceedsFirstAttempt) {
  auto opts = RemoteDataService::SelfHostedRag();
  RemoteDataService service(opts);
  const auto r = service.Fetch(0.0, "query", "the info");
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.attempts, 1u);
  EXPECT_EQ(r.retries, 0u);
  EXPECT_EQ(r.info, "the info");
  EXPECT_GT(r.Latency(), 0.2);
  EXPECT_DOUBLE_EQ(r.cost_dollars, 0.0);
  EXPECT_EQ(service.total_calls(), 1u);
}

TEST(RemoteService, GoogleFetchIsBilled) {
  RemoteDataService service(RemoteDataService::GoogleSearchApi());
  const auto r = service.Fetch(0.0, "q", "info");
  EXPECT_DOUBLE_EQ(r.cost_dollars, 0.005);
  EXPECT_DOUBLE_EQ(service.total_cost_dollars(), 0.005);
}

TEST(RemoteService, ThrottlingCausesRetriesAndDelays) {
  auto opts = RemoteDataService::GoogleSearchApi();
  opts.burst = 1.0;
  RemoteDataService service(opts);
  ASSERT_TRUE(service.Fetch(0.0, "a", "x").success);
  const auto r = service.Fetch(0.0, "b", "y");  // bucket empty now
  EXPECT_TRUE(r.success);
  EXPECT_GT(r.retries, 0u);
  EXPECT_GT(r.Latency(), 0.5);  // rejection RTT + backoff + service time
  EXPECT_GT(service.RetryRatio(), 0.0);
}

TEST(RemoteService, RetryRatioGrowsWithOfferedLoad) {
  auto opts = RemoteDataService::GoogleSearchApi();
  RemoteDataService light(opts), heavy(opts);
  for (int i = 0; i < 200; ++i) {
    light.Fetch(i * 2.0, "q", "v");   // 0.5 req/s < 1.67/s quota
    heavy.Fetch(i * 0.25, "q", "v");  // 4 req/s  > quota
  }
  EXPECT_LT(light.RetryRatio(), 0.01);
  EXPECT_GT(heavy.RetryRatio(), 0.3);
}

TEST(RemoteService, DisabledLimiterNeverRetries) {
  auto opts = RemoteDataService::SelfHostedRag(/*rate_limited=*/false);
  RemoteDataService service(opts);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(service.Fetch(i * 0.01, "q", "v").retries, 0u);
  }
  EXPECT_FALSE(service.rate_limited());
}

TEST(RemoteService, RateLimitedRagPreset) {
  auto opts = RemoteDataService::SelfHostedRag(/*rate_limited=*/true);
  RemoteDataService service(opts);
  EXPECT_TRUE(service.rate_limited());
}

TEST(RemoteService, CountersResetCleanly) {
  RemoteDataService service(RemoteDataService::GoogleSearchApi());
  service.Fetch(0.0, "q", "v");
  service.ResetCounters();
  EXPECT_EQ(service.total_calls(), 0u);
  EXPECT_DOUBLE_EQ(service.total_cost_dollars(), 0.0);
}

TEST(RemoteService, InjectedTransientFailuresAreRetriedToSuccess) {
  auto opts = RemoteDataService::SelfHostedRag();
  opts.transient_failure_probability = 0.3;
  RemoteDataService service(opts);
  int successes = 0;
  for (int i = 0; i < 200; ++i) {
    const auto r = service.Fetch(i * 2.0, "q", "v");
    if (r.success) ++successes;
  }
  EXPECT_EQ(successes, 200);  // retries absorb every injected failure
  EXPECT_GT(service.total_transient_failures(), 30u);
  // ~30% of attempts fail -> mean attempts ~1/0.7.
  EXPECT_NEAR(static_cast<double>(service.total_calls()) / 200.0, 1.43, 0.2);
}

TEST(RemoteService, FailedAttemptsAreStillBilled) {
  auto opts = RemoteDataService::GoogleSearchApi();
  opts.rate_limit_per_min = -1.0;
  opts.transient_failure_probability = 0.5;
  RemoteDataService service(opts);
  const auto r = service.Fetch(0.0, "q", "v");
  EXPECT_TRUE(r.success);
  // Every admitted attempt consumed a round trip and its fee.
  EXPECT_DOUBLE_EQ(r.cost_dollars, 0.005 * static_cast<double>(r.attempts));
}

TEST(RemoteService, FailureInjectionInflatesTailLatency) {
  auto reliable_opts = RemoteDataService::SelfHostedRag();
  auto flaky_opts = RemoteDataService::SelfHostedRag();
  flaky_opts.transient_failure_probability = 0.25;
  RemoteDataService reliable(reliable_opts), flaky(flaky_opts);
  Histogram h_reliable, h_flaky;
  for (int i = 0; i < 500; ++i) {
    h_reliable.Add(reliable.Fetch(i * 2.0, "q", "v").Latency());
    h_flaky.Add(flaky.Fetch(i * 2.0, "q", "v").Latency());
  }
  EXPECT_GT(h_flaky.p99(), h_reliable.p99() + 0.3);  // backoff in the tail
}

}  // namespace
}  // namespace cortex
