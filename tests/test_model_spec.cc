#include "llm/model_spec.h"

#include <gtest/gtest.h>

namespace cortex {
namespace {

TEST(ModelSpec, PresetsAreOrderedBySize) {
  EXPECT_GT(ModelSpec::Coder8B().params_billions,
            ModelSpec::Agent7B().params_billions);
  EXPECT_LT(ModelSpec::Judger06B().params_billions, 1.0);
}

TEST(InferenceSeconds, IncludesFixedOverhead) {
  const auto spec = ModelSpec::Agent7B();
  EXPECT_DOUBLE_EQ(InferenceSeconds(spec, 0, 0), spec.fixed_overhead_sec);
}

TEST(InferenceSeconds, MonotoneInTokens) {
  const auto spec = ModelSpec::Agent7B();
  double prev = 0.0;
  for (std::size_t tokens = 0; tokens <= 1000; tokens += 100) {
    const double t = InferenceSeconds(spec, tokens, tokens / 10);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(InferenceSeconds, DecodeDominatesPrefillPerToken) {
  const auto spec = ModelSpec::Agent7B();
  const double prefill_only = InferenceSeconds(spec, 100, 0);
  const double decode_only = InferenceSeconds(spec, 0, 100);
  EXPECT_GT(decode_only, prefill_only);
}

TEST(InferenceSeconds, ScalesInverselyWithComputeFraction) {
  const auto spec = ModelSpec::Agent7B();
  const double full = InferenceSeconds(spec, 1000, 100, 1.0);
  const double fifth = InferenceSeconds(spec, 1000, 100, 0.2);
  // Token time scales 5x; the fixed overhead does not.
  EXPECT_NEAR(fifth - spec.fixed_overhead_sec,
              5.0 * (full - spec.fixed_overhead_sec), 1e-9);
}

TEST(InferenceSeconds, JudgerCallIsMilliseconds) {
  const auto spec = ModelSpec::Judger06B();
  // ~150 prompt tokens + 1 output token at full GPU.
  const double t = InferenceSeconds(spec, 150, 1);
  EXPECT_LT(t, 0.01);
  EXPECT_GT(t, 0.001);
}

TEST(InferenceSeconds, AgentRequestIsHundredsOfMilliseconds) {
  const auto spec = ModelSpec::Agent7B();
  // A Search-R1-like turn: ~200-token prompt, ~120 generated tokens.
  const double t = InferenceSeconds(spec, 200, 120);
  EXPECT_GT(t, 0.3);
  EXPECT_LT(t, 1.0);
}

TEST(InferenceSeconds, EncoderWithZeroDecodeRateIgnoresOutput) {
  const auto spec = ModelSpec::Embedder06B();
  EXPECT_DOUBLE_EQ(InferenceSeconds(spec, 100, 0),
                   InferenceSeconds(spec, 100, 50));
}

TEST(KvBytes, LinearInContext) {
  const auto spec = ModelSpec::Agent7B();
  EXPECT_DOUBLE_EQ(KvBytes(spec, 0), 0.0);
  EXPECT_DOUBLE_EQ(KvBytes(spec, 200), 2.0 * KvBytes(spec, 100));
}

TEST(KvBytes, JudgerFootprintMuchSmallerThanAgent) {
  EXPECT_LT(KvBytes(ModelSpec::Judger06B(), 1000),
            KvBytes(ModelSpec::Agent7B(), 1000) / 4.0);
}

}  // namespace
}  // namespace cortex
