#include "llm/judger_model.h"

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "util/stats.h"

namespace cortex {
namespace {

// A scripted oracle: queries are equivalent iff they share the value in the
// map; staticity comes from the same map.
class FakeOracle final : public EquivalenceOracle {
 public:
  void Set(std::string query, int topic, double staticity = 5.0) {
    topics_[std::move(query)] = {topic, staticity};
  }
  bool Equivalent(std::string_view a, std::string_view b) const override {
    const auto ia = topics_.find(std::string(a));
    const auto ib = topics_.find(std::string(b));
    return ia != topics_.end() && ib != topics_.end() &&
           ia->second.first == ib->second.first;
  }
  double Staticity(std::string_view q) const override {
    const auto it = topics_.find(std::string(q));
    return it == topics_.end() ? 5.0 : it->second.second;
  }

 private:
  std::map<std::string, std::pair<int, double>> topics_;
};

class JudgerTest : public ::testing::Test {
 protected:
  JudgerTest() : judger_(&oracle_) {
    oracle_.Set("q1 painter mona lisa", 1, 9.5);
    oracle_.Set("q1b who painted mona lisa", 1, 9.5);
    oracle_.Set("q2 weather tokyo", 2, 1.5);
  }
  FakeOracle oracle_;
  JudgerModel judger_;
};

TEST_F(JudgerTest, EquivalentPairsScoreAboveDifferentPairs) {
  JudgeRequest same{"q1 painter mona lisa", "q1b who painted mona lisa",
                    "da vinci", 0.8};
  JudgeRequest diff{"q1 painter mona lisa", "q2 weather tokyo", "rainy", 0.8};
  EXPECT_GT(judger_.Judge(same), judger_.Judge(diff));
  EXPECT_GT(judger_.Judge(same), 0.5);
  EXPECT_LT(judger_.Judge(diff), 0.5);
}

TEST_F(JudgerTest, ScoresAreDeterministic) {
  JudgeRequest req{"q1 painter mona lisa", "q1b who painted mona lisa",
                   "da vinci", 0.8};
  EXPECT_DOUBLE_EQ(judger_.Judge(req), judger_.Judge(req));
}

TEST_F(JudgerTest, ScoresAreProbabilities) {
  for (const char* cached :
       {"q1b who painted mona lisa", "q2 weather tokyo", "unknown text"}) {
    JudgeRequest req{"q1 painter mona lisa", cached, "v", 0.5};
    const double s = judger_.Judge(req);
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST_F(JudgerTest, EmbeddingSimilarityShiftsEvidence) {
  JudgeRequest low{"q1 painter mona lisa", "q1b who painted mona lisa",
                   "da vinci", 0.4};
  JudgeRequest high = low;
  high.embedding_similarity = 0.95;
  EXPECT_GT(judger_.Judge(high), judger_.Judge(low));
}

TEST_F(JudgerTest, ClassifierIsImperfectButCalibrated) {
  // Across many synthetic pairs, positives overlap negatives (so threshold
  // choice matters) while remaining separable on average.
  FakeOracle oracle;
  JudgerModel judger(&oracle);
  StreamingStats pos, neg;
  for (int i = 0; i < 500; ++i) {
    const std::string a = "query alpha " + std::to_string(i);
    const std::string b = "query beta " + std::to_string(i);
    oracle.Set(a, i);
    oracle.Set(b, i % 2 ? i : i + 10000);  // half equivalent, half not
    const double s = judger.Judge({a, b, "value", 0.7});
    (i % 2 ? pos : neg).Add(s);
  }
  EXPECT_GT(pos.mean(), 0.8);
  EXPECT_LT(neg.mean(), 0.2);
  // Overlap exists: the best positive is not separated from the worst
  // negative by a hard margin.
  EXPECT_GT(neg.max(), pos.min());
}

TEST_F(JudgerTest, StaticityTracksOracleWithBoundedNoise) {
  const double stable =
      judger_.ScoreStaticity("q1 painter mona lisa", "da vinci");
  const double ephemeral = judger_.ScoreStaticity("q2 weather tokyo", "rainy");
  EXPECT_GT(stable, ephemeral);
  EXPECT_GE(stable, 1.0);
  EXPECT_LE(stable, 10.0);
  EXPECT_GE(ephemeral, 1.0);
  EXPECT_LE(ephemeral, 10.0);
}

TEST_F(JudgerTest, StaticityIsDeterministic) {
  EXPECT_DOUBLE_EQ(judger_.ScoreStaticity("q2 weather tokyo", "rainy"),
                   judger_.ScoreStaticity("q2 weather tokyo", "rainy"));
}

TEST_F(JudgerTest, JudgeSecondsGrowsWithPayloadAndShrinksWithCompute) {
  JudgeRequest small{"q", "cq", "short", 0.5};
  JudgeRequest big{"q", "cq",
                   "a much longer cached result with many more words to "
                   "prefill through the judger model attention stack",
                   0.5};
  EXPECT_GT(judger_.JudgeSeconds(big), judger_.JudgeSeconds(small));
  EXPECT_GT(judger_.JudgeSeconds(small, 0.2), judger_.JudgeSeconds(small, 1.0));
}

TEST_F(JudgerTest, DifferentSeedsGiveDifferentJudgers) {
  JudgerOptions opts;
  opts.seed = 999;
  JudgerModel other(&oracle_, opts);
  JudgeRequest req{"q1 painter mona lisa", "q1b who painted mona lisa",
                   "da vinci", 0.8};
  EXPECT_NE(judger_.Judge(req), other.Judge(req));
}

TEST_F(JudgerTest, ThresholdSweepTradesPrecisionForRecall) {
  FakeOracle oracle;
  JudgerModel judger(&oracle);
  // Build a labelled pool.
  std::vector<std::pair<double, bool>> scored;
  for (int i = 0; i < 400; ++i) {
    const std::string a = "lhs " + std::to_string(i);
    const std::string b = "rhs " + std::to_string(i);
    oracle.Set(a, i);
    const bool equivalent = i % 2 == 0;
    oracle.Set(b, equivalent ? i : i + 5000);
    scored.emplace_back(judger.Judge({a, b, "v", 0.7}), equivalent);
  }
  auto metrics = [&](double tau) {
    int tp = 0, fp = 0, fn = 0;
    for (const auto& [s, label] : scored) {
      if (s >= tau) {
        label ? ++tp : ++fp;
      } else if (label) {
        ++fn;
      }
    }
    const double precision = tp + fp ? tp / double(tp + fp) : 1.0;
    const double recall = tp + fn ? tp / double(tp + fn) : 0.0;
    return std::make_pair(precision, recall);
  };
  const auto [p_low, r_low] = metrics(0.2);
  const auto [p_high, r_high] = metrics(0.9);
  EXPECT_GE(p_high, p_low);
  EXPECT_LE(r_high, r_low);
  EXPECT_GT(r_low, 0.95);
}

TEST_F(JudgerTest, FinetuneImprovesSeparationWithBounds) {
  JudgerModel judger(&oracle_);
  const auto before = judger.options();
  // Too few examples: no effect.
  const auto noop = judger.Finetune(JudgerModel::kMinFinetuneExamples - 1);
  EXPECT_EQ(noop.examples_used, 0u);
  EXPECT_DOUBLE_EQ(judger.options().mu_equivalent, before.mu_equivalent);

  // A real annotated set widens the margins and shrinks the noise.
  const auto report = judger.Finetune(512);
  EXPECT_EQ(report.examples_used, 512u);
  EXPECT_GT(judger.options().mu_equivalent, before.mu_equivalent);
  EXPECT_LT(judger.options().mu_different, before.mu_different);
  EXPECT_LT(judger.options().noise_sigma, before.noise_sigma);

  // Repeated rounds converge to the hard bounds instead of diverging.
  for (int i = 0; i < 200; ++i) judger.Finetune(4096);
  EXPECT_LE(judger.options().mu_equivalent, JudgerModel::kMaxMuEquivalent);
  EXPECT_GE(judger.options().mu_different, JudgerModel::kMinMuDifferent);
  EXPECT_GE(judger.options().noise_sigma, JudgerModel::kMinNoiseSigma);
}

TEST_F(JudgerTest, FinetunedJudgerMakesFewerMistakes) {
  FakeOracle oracle;
  JudgerModel base(&oracle), tuned(&oracle);
  tuned.Finetune(100000);
  int base_errors = 0, tuned_errors = 0;
  for (int i = 0; i < 1000; ++i) {
    const std::string a = "q lhs " + std::to_string(i);
    const std::string b = "q rhs " + std::to_string(i);
    oracle.Set(a, i);
    const bool equivalent = i % 2 == 0;
    oracle.Set(b, equivalent ? i : i + 50000);
    const bool base_says = base.Judge({a, b, "v", 0.7}) >= 0.6;
    const bool tuned_says = tuned.Judge({a, b, "v", 0.7}) >= 0.6;
    if (base_says != equivalent) ++base_errors;
    if (tuned_says != equivalent) ++tuned_errors;
  }
  EXPECT_LT(tuned_errors, base_errors);
}

}  // namespace
}  // namespace cortex
