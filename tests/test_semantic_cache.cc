#include "core/semantic_cache.h"

#include <gtest/gtest.h>

#include "ann/flat_index.h"
#include <algorithm>
#include <limits>

#include "llm/tags.h"
#include "test_helpers.h"

namespace cortex {
namespace {

using cortex::testing::MiniWorld;

class SemanticCacheTest : public ::testing::Test {
 protected:
  SemanticCacheTest() { Rebuild({}); }

  void Rebuild(SemanticCacheOptions options) {
    if (options.capacity_tokens == SemanticCacheOptions{}.capacity_tokens) {
      options.capacity_tokens = 1e6;  // default: effectively unbounded
    }
    cache_ = std::make_unique<SemanticCache>(
        &world_.embedder,
        std::make_unique<FlatIndex>(world_.embedder.dimension()),
        world_.judger.get(), std::make_unique<LcfuPolicy>(), options);
  }

  InsertRequest RequestFor(std::size_t topic_id, std::size_t paraphrase = 0,
                           std::uint64_t freq = 1) {
    InsertRequest req;
    req.key = world_.query(topic_id, paraphrase);
    req.value = world_.answer(topic_id);
    req.staticity = world_.topic(topic_id).staticity;
    req.retrieval_latency_sec = 0.4;
    req.retrieval_cost_dollars = 0.005;
    req.initial_frequency = freq;
    return req;
  }

  MiniWorld world_;
  std::unique_ptr<SemanticCache> cache_;
};

TEST_F(SemanticCacheTest, MissOnEmptyThenHitAfterInsert) {
  auto miss = cache_->Lookup(world_.query(0, 1), 0.0);
  EXPECT_FALSE(miss.hit.has_value());
  EXPECT_EQ(miss.query_embedding.size(), world_.embedder.dimension());

  ASSERT_TRUE(cache_->Insert(RequestFor(0), 1.0).has_value());
  auto hit = cache_->Lookup(world_.query(0, 2), 2.0);
  ASSERT_TRUE(hit.hit.has_value());
  EXPECT_EQ(hit.hit->value, world_.answer(0));
  EXPECT_EQ(hit.hit->matched_key, world_.query(0, 0));
  EXPECT_EQ(cache_->counters().hits, 1u);
  EXPECT_EQ(cache_->counters().lookups, 2u);
}

TEST_F(SemanticCacheTest, HitIncrementsFrequencyAndRecency) {
  const auto id = cache_->Insert(RequestFor(0), 0.0);
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(cache_->Get(*id)->frequency, 1u);
  cache_->Lookup(world_.query(0, 3), 5.0);
  const SemanticElement* se = cache_->Get(*id);
  EXPECT_EQ(se->frequency, 2u);
  EXPECT_DOUBLE_EQ(se->last_access, 5.0);
}

TEST_F(SemanticCacheTest, ContainsKeyIsExact) {
  cache_->Insert(RequestFor(0, 0), 0.0);
  EXPECT_TRUE(cache_->ContainsKey(world_.query(0, 0)));
  EXPECT_FALSE(cache_->ContainsKey(world_.query(0, 1)));  // paraphrase
}

TEST_F(SemanticCacheTest, TtlScalesWithStaticity) {
  SemanticCacheOptions opts;
  opts.min_ttl_sec = 100;
  opts.max_ttl_sec = 1000;
  Rebuild(opts);
  InsertRequest ephemeral = RequestFor(0);
  ephemeral.staticity = 1.0;
  InsertRequest stable = RequestFor(1);
  stable.staticity = 10.0;
  const auto id_e = cache_->Insert(std::move(ephemeral), 0.0);
  const auto id_s = cache_->Insert(std::move(stable), 0.0);
  EXPECT_DOUBLE_EQ(cache_->Get(*id_e)->expiration_time, 100.0);
  EXPECT_DOUBLE_EQ(cache_->Get(*id_s)->expiration_time, 1000.0);
}

TEST_F(SemanticCacheTest, ExpiredEntriesDoNotServeHits) {
  SemanticCacheOptions opts;
  opts.min_ttl_sec = 10;
  opts.max_ttl_sec = 20;
  Rebuild(opts);
  cache_->Insert(RequestFor(0), 0.0);
  auto hit = cache_->Lookup(world_.query(0, 1), 5.0);
  EXPECT_TRUE(hit.hit.has_value());
  auto stale = cache_->Lookup(world_.query(0, 1), 50.0);
  EXPECT_FALSE(stale.hit.has_value());
  EXPECT_EQ(cache_->counters().expirations, 1u);
  EXPECT_EQ(cache_->size(), 0u);
}

TEST_F(SemanticCacheTest, RemoveExpiredPurgesOnlyExpired) {
  SemanticCacheOptions opts;
  opts.min_ttl_sec = 10;
  opts.max_ttl_sec = 1000;
  Rebuild(opts);
  InsertRequest short_lived = RequestFor(0);
  short_lived.staticity = 1.0;
  InsertRequest long_lived = RequestFor(1);
  long_lived.staticity = 10.0;
  cache_->Insert(std::move(short_lived), 0.0);
  cache_->Insert(std::move(long_lived), 0.0);
  EXPECT_EQ(cache_->RemoveExpired(500.0), 1u);
  EXPECT_EQ(cache_->size(), 1u);
}

TEST_F(SemanticCacheTest, TtlDisabledMeansImmortalEntries) {
  SemanticCacheOptions opts;
  opts.ttl_enabled = false;
  Rebuild(opts);
  cache_->Insert(RequestFor(0), 0.0);
  EXPECT_EQ(cache_->RemoveExpired(1e12), 0u);
  EXPECT_TRUE(cache_->Lookup(world_.query(0, 1), 1e12).hit.has_value());
}

TEST_F(SemanticCacheTest, CapacityEnforcedByEviction) {
  // Room for roughly two answers.
  const double two_answers =
      static_cast<double>(ApproxTokenCount(world_.answer(0)) +
                          ApproxTokenCount(world_.answer(1))) +
      4.0;
  SemanticCacheOptions opts;
  opts.capacity_tokens = two_answers;
  Rebuild(opts);
  cache_->Insert(RequestFor(0), 0.0);
  cache_->Insert(RequestFor(1), 1.0);
  cache_->Insert(RequestFor(2), 2.0);
  EXPECT_LE(cache_->usage_tokens(), cache_->capacity_tokens());
  EXPECT_GE(cache_->counters().evictions, 1u);
  EXPECT_LE(cache_->size(), 2u);
}

TEST_F(SemanticCacheTest, LcfuEvictsLowestValueItem) {
  SemanticCacheOptions opts;
  opts.capacity_tokens = 3.0 * 80.0;  // answers are ~60 tokens
  Rebuild(opts);
  const auto hot = cache_->Insert(RequestFor(0, 0, /*freq=*/1), 0.0);
  cache_->Insert(RequestFor(1, 0, /*freq=*/1), 0.0);
  ASSERT_TRUE(hot.has_value());
  // Make topic 0 hot via confirmed hits.
  for (int i = 0; i < 5; ++i) cache_->Lookup(world_.query(0, 1), 1.0 + i);
  // Fill past capacity: the cold entry (topic 1) should go first.
  cache_->Insert(RequestFor(2), 10.0);
  cache_->Insert(RequestFor(3), 11.0);
  EXPECT_TRUE(cache_->Lookup(world_.query(0, 2), 20.0).hit.has_value());
}

TEST_F(SemanticCacheTest, OversizedValueIsRejected) {
  SemanticCacheOptions opts;
  opts.capacity_tokens = 10.0;
  Rebuild(opts);
  EXPECT_FALSE(cache_->Insert(RequestFor(0), 0.0).has_value());
  EXPECT_EQ(cache_->counters().rejected_too_large, 1u);
  EXPECT_EQ(cache_->size(), 0u);
}

TEST_F(SemanticCacheTest, ExactKeyReinsertReplaces) {
  const auto id1 = cache_->Insert(RequestFor(0, 0), 0.0);
  InsertRequest replacement = RequestFor(0, 0);
  replacement.value = "fresh replacement value";
  const auto id2 = cache_->Insert(std::move(replacement), 1.0);
  ASSERT_TRUE(id2.has_value());
  EXPECT_NE(*id1, *id2);
  EXPECT_EQ(cache_->size(), 1u);
  EXPECT_EQ(cache_->Get(*id2)->value, "fresh replacement value");
  EXPECT_EQ(cache_->Get(*id1), nullptr);
}

TEST_F(SemanticCacheTest, ValueDedupRefreshesInsteadOfDuplicating) {
  const auto id1 = cache_->Insert(RequestFor(0, 0), 0.0);
  // Same knowledge fetched under a different paraphrase key.
  const auto id2 = cache_->Insert(RequestFor(0, 1), 50.0);
  ASSERT_TRUE(id1.has_value() && id2.has_value());
  EXPECT_EQ(*id1, *id2);
  EXPECT_EQ(cache_->size(), 1u);
  EXPECT_EQ(cache_->counters().dedup_refreshes, 1u);
  const SemanticElement* se = cache_->Get(*id1);
  EXPECT_EQ(se->frequency, 2u);  // credit accumulated
  EXPECT_DOUBLE_EQ(se->last_access, 50.0);
}

TEST_F(SemanticCacheTest, DedupRenewsTtl) {
  SemanticCacheOptions opts;
  opts.min_ttl_sec = 100;
  opts.max_ttl_sec = 100;
  Rebuild(opts);
  const auto id = cache_->Insert(RequestFor(0, 0), 0.0);
  cache_->Insert(RequestFor(0, 1), 80.0);  // re-fetch renews lifetime
  EXPECT_DOUBLE_EQ(cache_->Get(*id)->expiration_time, 180.0);
}

TEST_F(SemanticCacheTest, RemoveDeletesEverywhere) {
  const auto id = cache_->Insert(RequestFor(0), 0.0);
  ASSERT_TRUE(cache_->Remove(*id));
  EXPECT_FALSE(cache_->Remove(*id));
  EXPECT_FALSE(cache_->ContainsKey(world_.query(0, 0)));
  EXPECT_EQ(cache_->sine().size(), 0u);
  EXPECT_DOUBLE_EQ(cache_->usage_tokens(), 0.0);
  // Value-identical re-insert must not resurrect the removed id.
  const auto id2 = cache_->Insert(RequestFor(0), 1.0);
  EXPECT_NE(*id2, *id);
}

TEST_F(SemanticCacheTest, UsageTracksInsertAndEvict) {
  EXPECT_DOUBLE_EQ(cache_->usage_tokens(), 0.0);
  cache_->Insert(RequestFor(0), 0.0);
  const double after_one = cache_->usage_tokens();
  EXPECT_GT(after_one, 0.0);
  cache_->Insert(RequestFor(1), 0.0);
  EXPECT_GT(cache_->usage_tokens(), after_one);
}

// Capacity sweep: usage never exceeds capacity under sustained churn.
class CacheCapacityTest : public SemanticCacheTest,
                          public ::testing::WithParamInterface<double> {};

TEST_P(CacheCapacityTest, InvariantUnderChurn) {
  SemanticCacheOptions opts;
  opts.capacity_tokens = GetParam();
  Rebuild(opts);
  Rng rng(1);
  for (int i = 0; i < 300; ++i) {
    const auto topic = rng.NextBelow(world_.universe->size());
    const auto para = rng.NextBelow(6);
    const double now = i * 0.5;
    auto lookup = cache_->Lookup(world_.query(topic, para), now);
    if (!lookup.hit) {
      cache_->Insert(RequestFor(topic, para), now);
    }
    ASSERT_LE(cache_->usage_tokens(), opts.capacity_tokens + 1e-9);
    // Book-keeping invariant: usage equals the sum over entries.
    double sum = 0.0;
    for (const auto& [id, se] : cache_->entries()) sum += se.size_tokens;
    ASSERT_NEAR(sum, cache_->usage_tokens(), 1e-6);
  }
  EXPECT_GT(cache_->counters().hits, 0u);
}

INSTANTIATE_TEST_SUITE_P(Capacities, CacheCapacityTest,
                         ::testing::Values(150.0, 400.0, 1200.0, 5000.0));

TEST_F(SemanticCacheTest, EvictionAlwaysRemovesTheLowestScoredEntry) {
  SemanticCacheOptions opts;
  opts.capacity_tokens = 6.0 * 80.0;
  Rebuild(opts);
  Rng rng(9);
  const LcfuPolicy policy;
  double now = 0.0;
  for (int i = 0; i < 120; ++i) {
    now += 1.0;
    const auto topic = rng.NextBelow(world_.universe->size());
    // Random metadata so scores differ meaningfully.
    InsertRequest req = RequestFor(topic, rng.NextBelow(6));
    req.retrieval_latency_sec = rng.Uniform(0.1, 2.0);
    req.retrieval_cost_dollars = rng.Uniform(0.0, 0.05);
    req.initial_frequency = rng.NextBelow(5);

    // Reference model: predicted victim set = entries with the minimum
    // policy score before the insert.
    std::vector<SeId> before_ids;
    double min_score = std::numeric_limits<double>::infinity();
    for (const auto& [id, se] : cache_->entries()) {
      before_ids.push_back(id);
      min_score = std::min(min_score, policy.Score(se, now));
    }
    std::vector<SeId> min_ids;
    for (const auto& [id, se] : cache_->entries()) {
      if (policy.Score(se, now) == min_score) min_ids.push_back(id);
    }
    const auto evictions_before = cache_->counters().evictions;
    cache_->Insert(std::move(req), now);
    if (cache_->counters().evictions == evictions_before + 1) {
      // Exactly one entry was evicted: it must be one of the minimum-score
      // candidates from the reference model.
      for (SeId id : before_ids) {
        if (cache_->Get(id) == nullptr) {
          EXPECT_NE(std::find(min_ids.begin(), min_ids.end(), id),
                    min_ids.end())
              << "evicted entry was not a minimum-score candidate";
        }
      }
    }
  }
  EXPECT_GT(cache_->counters().evictions, 10u);
}

}  // namespace
}  // namespace cortex
