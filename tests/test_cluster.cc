// Cluster-tier integration tests: an in-process 3-node cortexd cluster
// behind a ClusterRouter, all over Unix-domain sockets.  Covers ownership
// routing, semantic (anchor) placement stability, replica failover on a
// dead node, the live-migration handoff (zero dropped requests, zero false
// misses under concurrent traffic), migration abort, the HELLO handshake,
// and metric visibility via STATS + Prometheus rendering.
#include "cluster/router.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.h"
#include "serve/concurrent_engine.h"
#include "serve/server.h"
#include "tenant/tenant.h"
#include "test_helpers.h"

namespace cortex {
namespace {

using cortex::testing::MiniWorld;
using serve::BlockingClient;
using serve::Request;
using serve::RequestType;
using serve::Response;
using serve::ResponseType;

class ClusterTest : public ::testing::Test {
 protected:
  struct Node {
    std::string name;
    std::string socket;
    std::unique_ptr<serve::ConcurrentShardedEngine> engine;
    std::unique_ptr<serve::CortexServer> server;
  };

  ClusterTest() : world_(48, /*seed=*/47) {}

  std::string SocketPath(const std::string& tag) {
    return ::testing::TempDir() + "cluster-" + tag + "-" +
           std::to_string(::getpid()) + ".sock";
  }

  // cortexd serves thread-per-connection, and the router's pools hold
  // persistent connections: size each node's worker pool to cover every
  // router worker plus the migration stream plus direct test probes
  // (DESIGN.md §10 sizing rule).
  Node* StartNode(const std::string& name) {
    auto node = std::make_unique<Node>();
    node->name = name;
    node->socket = SocketPath(name);
    serve::ConcurrentEngineOptions eopts;
    eopts.num_shards = 2;
    eopts.cache.capacity_tokens = 1e6;
    eopts.housekeeping_interval_sec = 0.0;
    node->engine = std::make_unique<serve::ConcurrentShardedEngine>(
        &world_.embedder, world_.judger.get(), eopts);
    serve::ServerOptions sopts;
    sopts.unix_path = node->socket;
    sopts.num_workers = 8;
    sopts.max_frame_bytes = std::size_t{64} << 20;
    node->server = std::make_unique<serve::CortexServer>(node->engine.get(),
                                                         sopts);
    std::string error;
    if (!node->server->Start(&error)) {
      ADD_FAILURE() << "node " << name << " failed to start: " << error;
      return nullptr;
    }
    nodes_.push_back(std::move(node));
    return nodes_.back().get();
  }

  Node* FindNode(const std::string& name) {
    for (auto& node : nodes_) {
      if (node->name == name) return node.get();
    }
    return nullptr;
  }

  // A 3-node router on a Unix socket; nodes node0..node2 started here.
  std::unique_ptr<cluster::ClusterRouter> StartCluster(
      std::size_t replication) {
    cluster::RouterOptions ropts;
    ropts.unix_path = SocketPath("router");
    ropts.num_workers = 4;
    ropts.ring.replication = replication;
    ropts.embedder = &world_.embedder;
    auto router = std::make_unique<cluster::ClusterRouter>(ropts);
    std::string error;
    for (int i = 0; i < 3; ++i) {
      Node* node = StartNode("node" + std::to_string(i));
      if (node == nullptr) return nullptr;
      if (!router->AddNode(node->name, "unix:" + node->socket, &error)) {
        ADD_FAILURE() << error;
        return nullptr;
      }
    }
    if (!router->Start(&error)) {
      ADD_FAILURE() << "router failed to start: " << error;
      return nullptr;
    }
    router_socket_ = ropts.unix_path;
    return router;
  }

  bool Connect(BlockingClient& client) {
    std::string error;
    const bool ok = client.ConnectUnix(router_socket_, &error);
    if (!ok) ADD_FAILURE() << "router connect failed: " << error;
    return ok;
  }

  Request LookupFor(std::size_t topic, std::size_t paraphrase = 0) {
    Request req;
    req.type = RequestType::kLookup;
    req.query = world_.query(topic, paraphrase);
    return req;
  }

  Request InsertFor(std::size_t topic, std::size_t paraphrase = 0) {
    Request req;
    req.type = RequestType::kInsert;
    req.key = world_.query(topic, paraphrase);
    req.value = world_.answer(topic);
    req.staticity = world_.topic(topic).staticity;
    return req;
  }

  // Inserts paraphrase 0 of topics [0, n) through the router.
  void WarmThroughRouter(BlockingClient& client, std::size_t n) {
    std::string error;
    for (std::size_t topic = 0; topic < n; ++topic) {
      const auto response = client.Call(InsertFor(topic), &error);
      ASSERT_TRUE(response.has_value()) << error;
      ASSERT_EQ(response->type, ResponseType::kOk) << "topic " << topic;
    }
  }

  std::uint64_t Counter(cluster::ClusterRouter& router, const char* name) {
    return router.registry()->GetCounter(name)->Value();
  }

  MiniWorld world_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::string router_socket_;
};

TEST_F(ClusterTest, RoutingDeliversEveryKeyToItsOwningNode) {
  auto router = StartCluster(/*replication=*/1);
  ASSERT_NE(router, nullptr);
  BlockingClient client;
  ASSERT_TRUE(Connect(client));
  WarmThroughRouter(client, world_.universe->size());

  for (std::size_t topic = 0; topic < world_.universe->size(); ++topic) {
    const std::string& key = world_.query(topic, 0);
    const auto owners = router->OwnersFor(key);
    ASSERT_EQ(owners.size(), 1u);
    for (const auto& node : nodes_) {
      EXPECT_EQ(node->engine->ContainsKey(key), node->name == owners[0])
          << "topic " << topic << " key should live on " << owners[0]
          << " only, checked " << node->name;
    }
  }
  // Every node owns a share of a 48-topic universe.
  std::set<std::string> used;
  for (std::size_t topic = 0; topic < world_.universe->size(); ++topic) {
    used.insert(router->OwnersFor(world_.query(topic, 0)).front());
  }
  EXPECT_EQ(used.size(), 3u);
  // And lookups through the router find what inserts placed.
  std::string error;
  for (std::size_t topic = 0; topic < world_.universe->size(); ++topic) {
    const auto response = client.Call(LookupFor(topic), &error);
    ASSERT_TRUE(response.has_value()) << error;
    EXPECT_EQ(response->type, ResponseType::kHit) << "topic " << topic;
  }
}

TEST_F(ClusterTest, SemanticPlacementKeepsParaphrasesTogether) {
  auto router = StartCluster(/*replication=*/1);
  ASSERT_NE(router, nullptr);
  int stable = 0;
  for (std::size_t topic = 0; topic < world_.universe->size(); ++topic) {
    std::set<std::string> keys;
    for (const auto& q : world_.topic(topic).paraphrases) {
      keys.insert(router->PlacementKey(q));
    }
    if (keys.size() == 1) ++stable;
  }
  // IDF anchoring keeps the overwhelming majority of topics owner-stable
  // (same bound as the sharded-cache routing test).
  EXPECT_GE(stable, static_cast<int>(world_.universe->size() * 9 / 10));
  // Tenant prefixes override the anchor entirely.
  EXPECT_EQ(router->PlacementKey("tenant:acme|what is the capital"),
            router->PlacementKey("tenant:acme|how tall is everest"));
  EXPECT_NE(router->PlacementKey("tenant:acme|what is the capital"),
            router->PlacementKey("tenant:zeta|what is the capital"));
}

TEST_F(ClusterTest, TenantNamespaceCoLocatesOnOneOwnerSet) {
  auto router = StartCluster(/*replication=*/1);
  ASSERT_NE(router, nullptr);
  BlockingClient client;
  ASSERT_TRUE(Connect(client));

  // TINSERT topics 0-7 for one tenant: wildly different queries, but the
  // tenant:<id> ring prefix must pin every one to the same owner set.
  std::string error;
  for (std::size_t topic = 0; topic < 8; ++topic) {
    Request req = InsertFor(topic);
    req.type = RequestType::kTenantInsert;
    req.tenant = "acme";
    const auto response = client.Call(req, &error);
    ASSERT_TRUE(response.has_value()) << error;
    ASSERT_EQ(response->type, ResponseType::kOk) << "topic " << topic;
  }

  const auto owners = router->OwnersFor(tenant::PlacementKeyFor("acme"));
  ASSERT_EQ(owners.size(), 1u);
  for (std::size_t topic = 0; topic < 8; ++topic) {
    const std::string& key = world_.query(topic, 0);
    for (const auto& node : nodes_) {
      EXPECT_EQ(node->engine->ContainsKey(key, "acme"),
                node->name == owners[0])
          << "topic " << topic << " should live on " << owners[0]
          << " only, checked " << node->name;
    }
  }

  // TLOOKUP through the router finds them for the owning tenant...
  for (std::size_t topic = 0; topic < 8; ++topic) {
    Request req = LookupFor(topic, /*paraphrase=*/1);
    req.type = RequestType::kTenantLookup;
    req.tenant = "acme";
    const auto response = client.Call(req, &error);
    ASSERT_TRUE(response.has_value()) << error;
    EXPECT_EQ(response->type, ResponseType::kHit) << "topic " << topic;
  }
  // ...and another tenant routes to its own (possibly different) owner
  // set and sees none of acme's entries.
  for (std::size_t topic = 0; topic < 8; ++topic) {
    Request req = LookupFor(topic, /*paraphrase=*/2);
    req.type = RequestType::kTenantLookup;
    req.tenant = "zeta";
    const auto response = client.Call(req, &error);
    ASSERT_TRUE(response.has_value()) << error;
    EXPECT_EQ(response->type, ResponseType::kMiss) << "topic " << topic;
  }
}

TEST_F(ClusterTest, LookupFailsOverToReplicaWhenPrimaryDies) {
  auto router = StartCluster(/*replication=*/2);
  ASSERT_NE(router, nullptr);
  BlockingClient client;
  ASSERT_TRUE(Connect(client));
  constexpr std::size_t kTopics = 12;
  WarmThroughRouter(client, kTopics);

  // Both owners hold every replicated insert.
  for (std::size_t topic = 0; topic < kTopics; ++topic) {
    const auto owners = router->OwnersFor(world_.query(topic, 0));
    ASSERT_EQ(owners.size(), 2u);
    for (const auto& name : owners) {
      EXPECT_TRUE(FindNode(name)->engine->ContainsKey(world_.query(topic, 0)))
          << "replica " << name << " missing topic " << topic;
    }
  }

  // Kill topic 0's primary; the router must serve the HIT from the replica.
  const auto owners = router->OwnersFor(world_.query(0, 0));
  FindNode(owners[0])->server->Stop();

  std::string error;
  const auto response = client.Call(LookupFor(0), &error);
  ASSERT_TRUE(response.has_value()) << error;
  EXPECT_EQ(response->type, ResponseType::kHit);
  EXPECT_GE(Counter(*router, "cortex_router_failovers"), 1u);

  // Every key the dead node owned (as primary or replica) stays servable.
  for (std::size_t topic = 0; topic < kTopics; ++topic) {
    const auto r = client.Call(LookupFor(topic), &error);
    ASSERT_TRUE(r.has_value()) << error;
    EXPECT_EQ(r->type, ResponseType::kHit) << "topic " << topic;
  }
}

TEST_F(ClusterTest, LiveMigrationMovesStateWithoutDroppingRequests) {
  auto router = StartCluster(/*replication=*/1);
  ASSERT_NE(router, nullptr);
  BlockingClient client;
  ASSERT_TRUE(Connect(client));
  WarmThroughRouter(client, world_.universe->size());
  const auto v_before = router->ring_version();

  // Concurrent traffic: every thread loops exact-key lookups over the whole
  // warmed universe.  Exact-key lookups are deterministic hits, so ANY miss
  // or transport error during the handoff is a correctness failure.
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> traffic_hits{0}, traffic_wrong{0};
  std::vector<std::thread> traffic;
  for (int t = 0; t < 3; ++t) {
    traffic.emplace_back([&] {
      BlockingClient c;
      std::string err;
      if (!c.ConnectUnix(router_socket_, &err)) {
        ++traffic_wrong;
        return;
      }
      while (!stop.load(std::memory_order_relaxed)) {
        for (std::size_t topic = 0; topic < world_.universe->size();
             ++topic) {
          const auto r = c.Call(LookupFor(topic), &err);
          if (r.has_value() && r->type == ResponseType::kHit) {
            ++traffic_hits;
          } else {
            ++traffic_wrong;
          }
        }
      }
    });
  }

  // node3 joins live.
  Node* joiner = StartNode("node3");
  ASSERT_NE(joiner, nullptr);
  Request migrate;
  migrate.type = RequestType::kMigrate;
  migrate.node_name = "node3";
  migrate.endpoint = "unix:" + joiner->socket;
  std::string error;
  const auto response = client.Call(migrate, &error);
  ASSERT_TRUE(response.has_value()) << error;
  ASSERT_EQ(response->type, ResponseType::kOk) << response->message;
  const std::uint64_t moved = response->id;

  // Let post-commit traffic exercise the new ring before stopping.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : traffic) t.join();

  EXPECT_GT(traffic_hits.load(), 0u);
  EXPECT_EQ(traffic_wrong.load(), 0u)
      << "requests dropped or falsely missed during live migration";

  EXPECT_FALSE(router->migrating());
  EXPECT_EQ(router->num_nodes(), 4u);
  EXPECT_GT(router->ring_version(), v_before);
  EXPECT_GT(moved, 0u);
  EXPECT_EQ(Counter(*router, "cortex_router_migrations"), 1u);
  EXPECT_EQ(Counter(*router, "cortex_router_migration_entries"), moved);

  // The joiner physically owns its share now, and post-commit lookups for
  // those keys hit (data moved, not just the ring).
  std::size_t owned_by_joiner = 0;
  for (std::size_t topic = 0; topic < world_.universe->size(); ++topic) {
    const std::string& key = world_.query(topic, 0);
    if (router->OwnersFor(key).front() != "node3") continue;
    ++owned_by_joiner;
    EXPECT_TRUE(joiner->engine->ContainsKey(key)) << "topic " << topic;
    const auto r = client.Call(LookupFor(topic), &error);
    ASSERT_TRUE(r.has_value()) << error;
    EXPECT_EQ(r->type, ResponseType::kHit) << "topic " << topic;
  }
  EXPECT_GT(owned_by_joiner, 0u);
  EXPECT_EQ(moved, owned_by_joiner);
}

TEST_F(ClusterTest, MigrationToUnreachableNodeAbortsCleanly) {
  auto router = StartCluster(/*replication=*/1);
  ASSERT_NE(router, nullptr);
  BlockingClient client;
  ASSERT_TRUE(Connect(client));
  WarmThroughRouter(client, 8);
  const auto v_before = router->ring_version();

  Request migrate;
  migrate.type = RequestType::kMigrate;
  migrate.node_name = "ghost";
  migrate.endpoint = "unix:" + SocketPath("never-started");
  std::string error;
  const auto response = client.Call(migrate, &error);
  ASSERT_TRUE(response.has_value()) << error;
  EXPECT_EQ(response->type, ResponseType::kError);

  // The abort leaves the ring and serving path untouched.
  EXPECT_FALSE(router->migrating());
  EXPECT_EQ(router->num_nodes(), 3u);
  EXPECT_EQ(router->ring_version(), v_before);
  for (std::size_t topic = 0; topic < 8; ++topic) {
    const auto r = client.Call(LookupFor(topic), &error);
    ASSERT_TRUE(r.has_value()) << error;
    EXPECT_EQ(r->type, ResponseType::kHit) << "topic " << topic;
  }
}

TEST_F(ClusterTest, HelloHandshakeAcceptsMatchRejectsMismatch) {
  auto router = StartCluster(/*replication=*/1);
  ASSERT_NE(router, nullptr);

  // Version match → WELCOME with the router role.
  BlockingClient good;
  ASSERT_TRUE(Connect(good));
  std::string error;
  Request hello;
  hello.type = RequestType::kHello;
  hello.version = serve::kProtocolVersion;
  hello.role = "client";
  auto response = good.Call(hello, &error);
  ASSERT_TRUE(response.has_value()) << error;
  EXPECT_EQ(response->type, ResponseType::kWelcome);
  EXPECT_EQ(response->id, serve::kProtocolVersion);

  // Version mismatch → ERR (fail fast instead of desynchronizing later).
  BlockingClient bad;
  ASSERT_TRUE(Connect(bad));
  const auto raw = bad.CallRaw("HELLO\t999\tclient", &error);
  ASSERT_TRUE(raw.has_value()) << error;
  const auto parsed = serve::ParseResponse(*raw);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->type, ResponseType::kError);

  // Pre-cluster clients that skip HELLO keep working unchanged.
  BlockingClient plain;
  ASSERT_TRUE(Connect(plain));
  Request ping;
  ping.type = RequestType::kPing;
  response = plain.Call(ping, &error);
  ASSERT_TRUE(response.has_value()) << error;
  EXPECT_EQ(response->type, ResponseType::kPong);
}

TEST_F(ClusterTest, RouterMetricsVisibleViaStatsClusterAndPrometheus) {
  auto router = StartCluster(/*replication=*/2);
  ASSERT_NE(router, nullptr);
  BlockingClient client;
  ASSERT_TRUE(Connect(client));
  WarmThroughRouter(client, 6);
  std::string error;
  for (std::size_t topic = 0; topic < 6; ++topic) {
    const auto r = client.Call(LookupFor(topic), &error);
    ASSERT_TRUE(r.has_value()) << error;
    ASSERT_EQ(r->type, ResponseType::kHit);
  }

  // STATS dumps the router registry over the wire.
  Request stats;
  stats.type = RequestType::kStats;
  auto response = client.Call(stats, &error);
  ASSERT_TRUE(response.has_value()) << error;
  ASSERT_EQ(response->type, ResponseType::kStats);
  std::uint64_t lookups = 0, inserts = 0;
  bool saw_node_counter = false;
  for (const auto& [key, value] : response->stats) {
    if (key == "cortex_router_lookups") lookups = std::stoull(value);
    if (key == "cortex_router_inserts") inserts = std::stoull(value);
    if (key.rfind("cortex_cluster_node_", 0) == 0) saw_node_counter = true;
  }
  EXPECT_EQ(lookups, 6u);
  EXPECT_EQ(inserts, 6u);
  EXPECT_TRUE(saw_node_counter);

  // CLUSTER reports ring + per-node health.
  Request cluster_req;
  cluster_req.type = RequestType::kCluster;
  response = client.Call(cluster_req, &error);
  ASSERT_TRUE(response.has_value()) << error;
  ASSERT_EQ(response->type, ResponseType::kStats);
  std::set<std::string> keys;
  for (const auto& [key, value] : response->stats) keys.insert(key);
  EXPECT_TRUE(keys.count("ring_version"));
  EXPECT_TRUE(keys.count("nodes"));
  EXPECT_TRUE(keys.count("replication"));
  EXPECT_TRUE(keys.count("node0_healthy"));

  // Prometheus text rendering carries the same instruments.
  const std::string prom =
      router->registry()->Snapshot().RenderText();
  EXPECT_NE(prom.find("cortex_router_lookups"), std::string::npos);
  EXPECT_NE(prom.find("cortex_router_requests_served"), std::string::npos);

  // Node-only verbs are refused at the router.
  Request snapshot;
  snapshot.type = RequestType::kSnapshot;
  response = client.Call(snapshot, &error);
  ASSERT_TRUE(response.has_value()) << error;
  EXPECT_EQ(response->type, ResponseType::kError);
}

}  // namespace
}  // namespace cortex
