#include "workload/trace_io.h"

#include <gtest/gtest.h>

#include <sstream>

namespace cortex {
namespace {

WorkloadBundle SmallBundle() {
  auto profile = SearchDatasetProfile::HotpotQa();
  profile.num_tasks = 60;
  profile.universe.num_topics = 40;
  return BuildSkewedSearchWorkload(profile);
}

TEST(TraceIo, RoundTripPreservesUniverse) {
  const auto original = SmallBundle();
  std::stringstream stream;
  SaveWorkloadTrace(original, stream);
  const auto loaded = LoadWorkloadTrace(stream);

  EXPECT_EQ(loaded.name, original.name);
  ASSERT_EQ(loaded.universe->size(), original.universe->size());
  for (std::size_t i = 0; i < original.universe->size(); ++i) {
    const auto& a = original.universe->topic(i);
    const auto& b = loaded.universe->topic(i);
    EXPECT_EQ(a.entity, b.entity);
    EXPECT_EQ(a.aspect, b.aspect);
    EXPECT_EQ(a.qualifier, b.qualifier);
    EXPECT_EQ(a.answer, b.answer);
    EXPECT_DOUBLE_EQ(a.staticity, b.staticity);
    EXPECT_DOUBLE_EQ(a.fetch_cost_scale, b.fetch_cost_scale);
    EXPECT_DOUBLE_EQ(a.fetch_latency_scale, b.fetch_latency_scale);
    EXPECT_EQ(a.trap_of, b.trap_of);
    EXPECT_EQ(a.next_topic, b.next_topic);
    EXPECT_EQ(a.paraphrases, b.paraphrases);
  }
}

TEST(TraceIo, RoundTripPreservesTasks) {
  const auto original = SmallBundle();
  std::stringstream stream;
  SaveWorkloadTrace(original, stream);
  const auto loaded = LoadWorkloadTrace(stream);

  ASSERT_EQ(loaded.tasks.size(), original.tasks.size());
  for (std::size_t i = 0; i < original.tasks.size(); ++i) {
    const auto& a = original.tasks[i];
    const auto& b = loaded.tasks[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.description, b.description);
    EXPECT_EQ(a.final_answer, b.final_answer);
    EXPECT_DOUBLE_EQ(a.base_correctness, b.base_correctness);
    ASSERT_EQ(a.steps.size(), b.steps.size());
    for (std::size_t s = 0; s < a.steps.size(); ++s) {
      EXPECT_EQ(a.steps[s].query, b.steps[s].query);
      EXPECT_EQ(a.steps[s].expected_info, b.steps[s].expected_info);
    }
  }
}

TEST(TraceIo, LoadedOracleIsFullyRegistered) {
  const auto original = SmallBundle();
  std::stringstream stream;
  SaveWorkloadTrace(original, stream);
  const auto loaded = LoadWorkloadTrace(stream);

  EXPECT_EQ(loaded.oracle->registered_queries(),
            original.oracle->registered_queries());
  for (const auto& task : loaded.tasks) {
    for (const auto& step : task.steps) {
      const auto topic = loaded.oracle->TopicOf(step.query);
      ASSERT_TRUE(topic.has_value());
      EXPECT_EQ(loaded.oracle->ExpectedInfo(step.query), step.expected_info);
    }
  }
}

TEST(TraceIo, ArrivalsSurviveForTraceShapedWorkloads) {
  TrendProfile profile;
  profile.duration_sec = 60.0;
  const auto original = BuildTrendWorkload(profile);
  ASSERT_FALSE(original.arrivals.empty());
  std::stringstream stream;
  SaveWorkloadTrace(original, stream);
  const auto loaded = LoadWorkloadTrace(stream);
  EXPECT_EQ(loaded.arrivals, original.arrivals);
}

TEST(TraceIo, BadMagicAndTruncationThrow) {
  std::stringstream garbage;
  garbage << "definitely not a trace";
  EXPECT_THROW(LoadWorkloadTrace(garbage), std::runtime_error);

  const auto original = SmallBundle();
  std::stringstream stream;
  SaveWorkloadTrace(original, stream);
  const std::string bytes = stream.str();
  std::stringstream cut(bytes.substr(0, bytes.size() / 3));
  EXPECT_THROW(LoadWorkloadTrace(cut), std::runtime_error);
}

TEST(TraceIo, FileRoundTrip) {
  const auto original = SmallBundle();
  const std::string path = ::testing::TempDir() + "/cortex_trace.bin";
  SaveWorkloadTraceFile(original, path);
  const auto loaded = LoadWorkloadTraceFile(path);
  EXPECT_EQ(loaded.tasks.size(), original.tasks.size());
  EXPECT_NEAR(loaded.TotalKnowledgeTokens(), original.TotalKnowledgeTokens(),
              1e-9);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cortex
