#include "core/sine.h"

#include <gtest/gtest.h>

#include <unordered_map>

#include "ann/flat_index.h"
#include "test_helpers.h"

namespace cortex {
namespace {

using cortex::testing::MiniWorld;

class SineTest : public ::testing::Test {
 protected:
  SineTest() { Rebuild({}); }

  void Rebuild(SineOptions options) {
    sine_ = std::make_unique<Sine>(
        &world_.embedder, std::make_unique<FlatIndex>(world_.embedder.dimension()),
        world_.judger.get(), options);
  }

  // Inserts topic's first paraphrase as an SE; returns the id used.
  SeId InsertTopic(std::size_t topic_id, SeId id) {
    SemanticElement se;
    se.id = id;
    se.key = world_.query(topic_id, 0);
    se.value = world_.answer(topic_id);
    se.embedding = world_.embedder.Embed(se.key);
    store_[id] = se;
    sine_->Insert(se);
    return id;
  }

  Sine::SeAccessor Accessor() {
    return [this](SeId id) -> const SemanticElement* {
      const auto it = store_.find(id);
      return it == store_.end() ? nullptr : &it->second;
    };
  }

  SineLookupResult Lookup(const std::string& query) {
    return sine_->Lookup(query, sine_->EmbedQuery(query), Accessor());
  }

  MiniWorld world_;
  std::unique_ptr<Sine> sine_;
  std::unordered_map<SeId, SemanticElement> store_;
};

TEST_F(SineTest, EmptyIndexNeverMatches) {
  const auto result = Lookup(world_.query(0, 1));
  EXPECT_FALSE(result.match.has_value());
  EXPECT_EQ(result.ann_candidates, 0u);
  EXPECT_EQ(result.judger_calls, 0u);
}

TEST_F(SineTest, ParaphraseOfCachedTopicMatches) {
  InsertTopic(0, 1);
  const auto result = Lookup(world_.query(0, /*paraphrase=*/3));
  ASSERT_TRUE(result.match.has_value());
  EXPECT_EQ(result.match->id, 1u);
  EXPECT_GE(result.match->judger_score,
            sine_->options().tau_lsm);
  EXPECT_GE(result.match->similarity, sine_->options().tau_sim);
}

TEST_F(SineTest, UnrelatedQueryDoesNotMatch) {
  InsertTopic(0, 1);
  // Pick a topic with a different entity (topic 0's traps share entities,
  // so search for one that differs).
  std::size_t other = 1;
  while (world_.topic(other).entity == world_.topic(0).entity) ++other;
  const auto result = Lookup(world_.query(other, 0));
  EXPECT_FALSE(result.match.has_value());
}

TEST_F(SineTest, JudgerRejectsTrapSiblings) {
  // Find a trap topic and insert its parent.
  for (const auto& t : world_.universe->topics()) {
    if (!t.trap_of) continue;
    InsertTopic(*t.trap_of, 10);
    const auto result = Lookup(t.paraphrases[0]);
    // The ANN stage may surface the parent, but the judger must refuse it.
    EXPECT_FALSE(result.match.has_value())
        << "trap " << t.paraphrases[0] << " matched parent";
    return;
  }
  GTEST_SKIP() << "universe generated no traps";
}

TEST_F(SineTest, ShortCircuitsAfterAcceptance) {
  InsertTopic(0, 1);
  InsertTopic(1, 2);
  const auto result = Lookup(world_.query(0, 2));
  ASSERT_TRUE(result.match.has_value());
  // Accepted on the first (best) candidate: exactly one judger call.
  EXPECT_EQ(result.judger_calls, 1u);
}

TEST_F(SineTest, MissingSeIsSkipped) {
  InsertTopic(0, 1);
  store_.clear();  // simulate concurrent eviction losing the payload
  const auto result = Lookup(world_.query(0, 2));
  EXPECT_FALSE(result.match.has_value());
  EXPECT_EQ(result.judger_calls, 0u);
}

TEST_F(SineTest, RemoveMakesEntryUnmatchable) {
  InsertTopic(0, 1);
  sine_->Remove(1);
  EXPECT_FALSE(Lookup(world_.query(0, 2)).match.has_value());
  EXPECT_EQ(sine_->size(), 0u);
}

TEST_F(SineTest, AnnOnlyModeSkipsJudger) {
  SineOptions opts;
  opts.use_judger = false;
  // This test is about the judger being skipped, not about the default
  // operating point: accept any stage-1 survivor.
  opts.ann_only_threshold = opts.tau_sim;
  Rebuild(opts);
  InsertTopic(0, 1);
  const auto result = Lookup(world_.query(0, 2));
  EXPECT_EQ(result.judger_calls, 0u);
  ASSERT_TRUE(result.match.has_value());
  EXPECT_EQ(result.match->judger_score, 0.0);
}

TEST_F(SineTest, AnnOnlyModeAcceptsTraps) {
  // The Fig. 13 failure mode: without the judger, a confusable sibling can
  // serve the wrong knowledge.
  SineOptions opts;
  opts.use_judger = false;
  opts.ann_only_threshold = 0.55;
  Rebuild(opts);
  int trap_hits = 0, traps = 0;
  SeId next_id = 1;
  for (const auto& t : world_.universe->topics()) {
    if (!t.trap_of) continue;
    ++traps;
    store_.clear();
    Rebuild(opts);
    InsertTopic(*t.trap_of, next_id++);
    if (Lookup(t.paraphrases[0]).match.has_value()) ++trap_hits;
  }
  ASSERT_GT(traps, 0);
  EXPECT_GT(trap_hits, 0) << "expected some ANN-only false positives";
}

TEST_F(SineTest, HigherTauLsmIsStricter) {
  InsertTopic(0, 1);
  const auto before = Lookup(world_.query(0, 2));
  ASSERT_TRUE(before.match.has_value());
  sine_->set_tau_lsm(0.999999);
  const auto after = Lookup(world_.query(0, 2));
  EXPECT_FALSE(after.match.has_value());
}

TEST_F(SineTest, TopKBoundsJudgerWork) {
  SineOptions opts;
  opts.top_k = 2;
  opts.tau_lsm = 0.999999;  // force exhaustive judging of all candidates
  Rebuild(opts);
  // Insert several topics sharing an entity so stage 1 yields candidates.
  SeId id = 1;
  for (const auto& t : world_.universe->topics()) {
    if (t.trap_of) {
      InsertTopic(t.id, id++);
      InsertTopic(*t.trap_of, id++);
    }
  }
  if (sine_->size() < 3) GTEST_SKIP() << "not enough confusable topics";
  for (const auto& t : world_.universe->topics()) {
    if (t.trap_of) {
      const auto result = Lookup(t.paraphrases[1]);
      EXPECT_LE(result.judger_calls, 2u);
      break;
    }
  }
}

}  // namespace
}  // namespace cortex
