#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace cortex {
namespace {

TEST(Simulation, RunsEventsInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.ScheduleAt(3.0, [&] { order.push_back(3); });
  sim.ScheduleAt(1.0, [&] { order.push_back(1); });
  sim.ScheduleAt(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(sim.Run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulation, EqualTimesRunFifo) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.ScheduleAt(5.0, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulation, ReentrantSchedulingWorks) {
  Simulation sim;
  int chain = 0;
  std::function<void()> step = [&] {
    if (++chain < 5) sim.ScheduleAfter(1.0, step);
  };
  sim.ScheduleAt(0.0, step);
  sim.Run();
  EXPECT_EQ(chain, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 4.0);
}

TEST(Simulation, PastTimesClampToNow) {
  Simulation sim;
  double seen = -1.0;
  sim.ScheduleAt(10.0, [&] {
    sim.ScheduleAt(1.0, [&] { seen = sim.now(); });  // in the past
  });
  sim.Run();
  EXPECT_DOUBLE_EQ(seen, 10.0);
}

TEST(Simulation, RunUntilStopsEarly) {
  Simulation sim;
  int executed = 0;
  sim.ScheduleAt(1.0, [&] { ++executed; });
  sim.ScheduleAt(100.0, [&] { ++executed; });
  EXPECT_EQ(sim.Run(50.0), 1u);
  EXPECT_EQ(executed, 1);
  EXPECT_EQ(sim.pending(), 1u);
  EXPECT_EQ(sim.Run(), 1u);
  EXPECT_EQ(executed, 2);
}

TEST(Simulation, ScheduleAfterIsRelative) {
  Simulation sim;
  double when = 0.0;
  sim.ScheduleAt(7.0, [&] {
    sim.ScheduleAfter(2.5, [&] { when = sim.now(); });
  });
  sim.Run();
  EXPECT_DOUBLE_EQ(when, 9.5);
}

TEST(Simulation, EmptyQueueRunsZeroEvents) {
  Simulation sim;
  EXPECT_TRUE(sim.empty());
  EXPECT_EQ(sim.Run(), 0u);
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
}

TEST(Simulation, ManyInterleavedEventsKeepClockMonotone) {
  Simulation sim;
  double last = -1.0;
  bool monotone = true;
  for (int i = 0; i < 1000; ++i) {
    const double t = (i * 37 % 100) / 10.0;
    sim.ScheduleAt(t, [&, t] {
      if (sim.now() < last) monotone = false;
      last = sim.now();
    });
  }
  sim.Run();
  EXPECT_TRUE(monotone);
}

}  // namespace
}  // namespace cortex
