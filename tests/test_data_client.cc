#include "core/data_client.h"

#include <gtest/gtest.h>

#include "llm/agent_model.h"
#include "test_helpers.h"

namespace cortex {
namespace {

using cortex::testing::MiniWorld;

class DataClientTest : public ::testing::Test {
 protected:
  DataClientTest() {
    CortexEngineOptions opts;
    opts.cache.capacity_tokens = 1e6;
    opts.recalibration_enabled = false;
    engine_ = std::make_unique<CortexEngine>(&world_.embedder,
                                             world_.judger.get(), opts);
    client_ = std::make_unique<DataClient>(
        engine_.get(),
        [this](std::string_view query, double) -> DataClient::FetchResultView {
          ++remote_fetches_;
          return {world_.oracle->ExpectedInfo(query), 0.4, 0.005};
        });
  }

  std::string AgentTurnFor(std::size_t topic, std::size_t paraphrase = 0) {
    return WrapTag(TagKind::kThink, "I should look this up.") +
           WrapTag(TagKind::kSearch, world_.query(topic, paraphrase));
  }

  MiniWorld world_;
  std::unique_ptr<CortexEngine> engine_;
  std::unique_ptr<DataClient> client_;
  int remote_fetches_ = 0;
};

TEST_F(DataClientTest, InterceptsToolCallAndReturnsWrappedInfo) {
  const auto result = client_->InterceptTurn(AgentTurnFor(0), 0.0);
  EXPECT_TRUE(result.tool_call);
  EXPECT_EQ(result.query, world_.query(0, 0));
  EXPECT_FALSE(result.from_cache);
  ASSERT_TRUE(result.observation.has_value());
  EXPECT_EQ(*result.observation, WrapTag(TagKind::kInfo, world_.answer(0)));
  EXPECT_EQ(remote_fetches_, 1);
}

TEST_F(DataClientTest, SecondParaphraseServedFromCacheTransparently) {
  client_->InterceptTurn(AgentTurnFor(0, 0), 0.0, /*session=*/1);
  const auto result = client_->InterceptTurn(AgentTurnFor(0, 3), 1.0, 2);
  EXPECT_TRUE(result.from_cache);
  EXPECT_EQ(*result.observation, WrapTag(TagKind::kInfo, world_.answer(0)));
  EXPECT_EQ(remote_fetches_, 1);  // no second remote trip
  EXPECT_EQ(client_->served_from_cache(), 1u);
  EXPECT_EQ(client_->tool_calls_seen(), 2u);
}

TEST_F(DataClientTest, NonToolTurnsPassThroughUntouched) {
  const std::string final_turn =
      WrapTag(TagKind::kThink, "done") + WrapTag(TagKind::kAnswer, "42");
  const auto result = client_->InterceptTurn(final_turn, 0.0);
  EXPECT_FALSE(result.tool_call);
  EXPECT_FALSE(result.observation.has_value());
  EXPECT_EQ(remote_fetches_, 0);
  EXPECT_EQ(client_->turns_seen(), 1u);
}

TEST_F(DataClientTest, GenericToolTagIsAlsoIntercepted) {
  const std::string turn = WrapTag(TagKind::kTool, world_.query(1, 0));
  const auto result = client_->InterceptTurn(turn, 0.0);
  EXPECT_TRUE(result.tool_call);
  EXPECT_EQ(*result.observation, WrapTag(TagKind::kInfo, world_.answer(1)));
}

TEST_F(DataClientTest, FailedFetchIsReportedNotCached) {
  DataClient failing(engine_.get(),
                     [](std::string_view, double) {
                       return DataClient::FetchResultView{};
                     });
  const auto result = failing.InterceptTurn(AgentTurnFor(2), 0.0);
  EXPECT_TRUE(result.fetch_failed);
  EXPECT_EQ(engine_->cache().size(), 0u);
  // A later fetch through the working client succeeds and caches.
  const auto retry = client_->InterceptTurn(AgentTurnFor(2), 1.0);
  EXPECT_FALSE(retry.fetch_failed);
  EXPECT_EQ(engine_->cache().size(), 1u);
}

TEST_F(DataClientTest, PrefetchProposalsSurfaceAndExecute) {
  // Teach the transition topic0 -> topic1 across sessions.
  for (std::uint64_t session = 1; session <= 4; ++session) {
    client_->InterceptTurn(AgentTurnFor(0, 0), session * 10.0, session);
    client_->InterceptTurn(AgentTurnFor(1, 0), session * 10.0 + 1, session);
  }
  // Evict topic 1 so the prediction is actionable.
  std::vector<SeId> to_remove;
  for (const auto& [id, se] : engine_->cache().entries()) {
    if (world_.oracle->TopicOf(se.key) == 1u) to_remove.push_back(id);
  }
  for (SeId id : to_remove) engine_->cache().Remove(id);

  client_->InterceptTurn(AgentTurnFor(0, 1), 100.0, 99);
  ASSERT_FALSE(client_->pending_prefetches().empty());
  const auto fetched = client_->RunPendingPrefetches(100.5);
  EXPECT_GE(fetched, 1u);
  EXPECT_TRUE(engine_->cache().ContainsKey(world_.query(1, 0)));
  EXPECT_TRUE(client_->pending_prefetches().empty());
}

TEST_F(DataClientTest, DrivesAFullAgentLoopEndToEnd) {
  // The integration the paper's Fig. 1b sketches: agent emits tagged turns,
  // the data client feeds observations back, the loop converges.
  AgentTask task;
  task.id = 7;
  task.description = "two hop task";
  task.base_correctness = 1.0;
  task.steps.push_back({"hop one", world_.query(3, 1), world_.answer(3)});
  task.steps.push_back({"hop two", world_.query(4, 2), world_.answer(4)});
  task.final_think = "done";
  task.final_answer = "final";

  AgentModel agent;
  AgentSession session(task);
  std::optional<std::string> info;
  int loops = 0;
  while (!session.finished() && loops++ < 10) {
    const AgentTurn turn = agent.Next(session, info);
    const auto intercepted =
        client_->InterceptTurn(turn.text, loops * 1.0, task.id);
    if (intercepted.observation) {
      // Strip the <info> wrapper the way the serving stack would when
      // appending to context.
      const auto segments = ParseTagged(*intercepted.observation);
      ASSERT_EQ(segments.size(), 1u);
      info = segments[0].content;
    } else {
      info = std::nullopt;
    }
  }
  EXPECT_TRUE(session.finished());
  EXPECT_EQ(session.observations().size(), 2u);
  EXPECT_EQ(session.observations()[0], world_.answer(3));
  EXPECT_EQ(session.observations()[1], world_.answer(4));
}

}  // namespace
}  // namespace cortex
