// Torture tests for the epoch-based reclamation primitive
// (src/util/epoch.h): readers racing retirement (the TSan leg runs this
// binary), deferred-free ordering, and abort-on-misuse death tests.
#include "util/epoch.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "util/ranked_mutex.h"

namespace cortex {
namespace {

TEST(EpochTest, FlushWithoutReadersRunsRetiredCallbacksAfterGrace) {
  EpochDomain domain;
  int freed = 0;
  domain.Retire([&] { ++freed; });
  EXPECT_EQ(domain.pending_retired(), 1u);
  // With no readers the epoch advances freely; one flush covers the full
  // two-epoch grace period.
  EXPECT_EQ(domain.Flush(), 1u);
  EXPECT_EQ(freed, 1);
  EXPECT_EQ(domain.pending_retired(), 0u);
}

TEST(EpochTest, ActiveReaderDefersReclamation) {
  EpochDomain domain;
  int freed = 0;
  std::atomic<bool> entered{false};
  std::atomic<bool> release{false};
  std::thread reader([&] {
    EpochReadGuard guard(domain);
    entered.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  while (!entered.load()) std::this_thread::yield();

  domain.Retire([&] { ++freed; });
  // The reader entered before (or at) the retire epoch, so no number of
  // flushes may run the callback while it is still inside the section.
  for (int i = 0; i < 4; ++i) domain.Flush();
  EXPECT_EQ(freed, 0);
  EXPECT_EQ(domain.pending_retired(), 1u);

  release.store(true);
  reader.join();
  domain.DrainBlocking();
  EXPECT_EQ(freed, 1);
}

TEST(EpochTest, RetireOrderIsPreservedAcrossGracePeriods) {
  EpochDomain domain;
  std::vector<int> order;
  domain.Retire([&] { order.push_back(1); });
  domain.Flush();
  domain.Retire([&] { order.push_back(2); });
  domain.DrainBlocking();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
}

TEST(EpochTest, DestructorRunsPendingCallbacks) {
  int freed = 0;
  {
    EpochDomain domain;
    domain.Retire([&] { ++freed; });
    // No flush: the destructor must not leak the deferred free.
  }
  EXPECT_EQ(freed, 1);
}

TEST(EpochTest, CallbackMayRetireMoreGarbage) {
  EpochDomain domain;
  int second = 0;
  domain.Retire([&] { domain.Retire([&] { ++second; }); });
  domain.DrainBlocking();
  EXPECT_EQ(second, 1);
}

TEST(EpochTest, GuardsNestAcrossDistinctDomains) {
  EpochDomain a;
  EpochDomain b;
  EpochReadGuard ga(a);
  EpochReadGuard gb(b);
}

TEST(EpochTest, SlotIsReusedAcrossSequentialGuards) {
  EpochDomain domain;
  // Thousands of guard entries from one thread must consume one slot,
  // not exhaust the domain.
  for (int i = 0; i < 10000; ++i) {
    EpochReadGuard guard(domain);
  }
  domain.Flush();
}

// The canonical usage pattern: an atomic snapshot pointer swapped by a
// writer while readers dereference it lock-free.  Under TSan this is the
// proof that the slot-word release/acquire edges publish the deferred
// free correctly — no fence reasoning involved.
TEST(EpochTest, ReadersRacingRetirementNeverSeeFreedState) {
  struct State {
    std::uint64_t generation;
    std::uint64_t check;
  };
  EpochDomain domain;
  std::atomic<State*> current{new State{0, ~std::uint64_t{0}}};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        EpochReadGuard guard(domain);
        // seq_cst per the epoch.h protected-pointer contract.
        const State* s = current.load(std::memory_order_seq_cst);
        // A freed-and-poisoned state would fail this invariant (and TSan
        // would flag the read-after-free as a race with the deleter).
        ASSERT_EQ(s->generation ^ s->check, ~std::uint64_t{0});
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::thread flusher([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      domain.Flush();
      std::this_thread::yield();
    }
  });

  for (std::uint64_t g = 1; g <= 500; ++g) {
    State* fresh = new State{g, g ^ ~std::uint64_t{0}};
    State* old = current.exchange(fresh, std::memory_order_seq_cst);
    domain.Retire([old] {
      // Poison before freeing so a reader still holding the pointer
      // trips the invariant deterministically, not just under ASan.
      old->check = old->generation;
      delete old;
    });
    std::this_thread::yield();
  }

  stop.store(true);
  for (auto& r : readers) r.join();
  flusher.join();
  domain.DrainBlocking();
  EXPECT_EQ(domain.pending_retired(), 0u);
  EXPECT_GT(reads.load(), 0u);
  delete current.load();
}

TEST(EpochTest, DrainBlockingWaitsOutAReader) {
  EpochDomain domain;
  int freed = 0;
  std::atomic<bool> entered{false};
  std::thread reader([&] {
    EpochReadGuard guard(domain);
    entered.store(true);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  });
  while (!entered.load()) std::this_thread::yield();
  domain.Retire([&] { ++freed; });
  domain.DrainBlocking();  // must block past the reader's exit, not abort
  EXPECT_EQ(freed, 1);
  reader.join();
}

class EpochDeathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    SetLockOrderChecksForTesting(true);
  }
  void TearDown() override { SetLockOrderChecksForTesting(false); }
};

TEST_F(EpochDeathTest, NestedGuardOnSameDomainAborts) {
  EpochDomain domain;
  EXPECT_DEATH(
      {
        EpochReadGuard outer(domain);
        EpochReadGuard inner(domain);
      },
      "nested EpochReadGuard");
}

TEST_F(EpochDeathTest, AcquiringAMutexInsideAnEpochSectionAborts) {
  EpochDomain domain;
  RankedMutex mu(LockRank::kLeaf, "leaf.mu");
  EXPECT_DEATH(
      {
        EpochReadGuard guard(domain);
        MutexLock lock(mu);
      },
      "lock-order inversion");
}

TEST_F(EpochDeathTest, RetireInsideAnEpochSectionAborts) {
  EpochDomain domain;
  // Retire takes the internal kEpochRetire mutex, which ranks below the
  // kEpochCritical pseudo-rank the guard pushed.
  EXPECT_DEATH(
      {
        EpochReadGuard guard(domain);
        domain.Retire([] {});
      },
      "lock-order inversion");
}

TEST_F(EpochDeathTest, DestroyingDomainWithActiveReaderAborts) {
  auto domain = std::make_unique<EpochDomain>();
  EXPECT_DEATH(
      {
        EpochReadGuard guard(*domain);
        domain.reset();
      },
      "destroyed while a reader");
}

}  // namespace
}  // namespace cortex
