#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "util/stats.h"
#include "workload/workload_stats.h"
#include "workload/workloads.h"

namespace cortex {
namespace {

// --- TopicUniverse ---

TEST(TopicUniverse, GeneratesRequestedTopicCount) {
  TopicUniverseOptions opts;
  opts.num_topics = 50;
  TopicUniverse u(opts);
  EXPECT_EQ(u.size(), 50u);
  for (std::size_t i = 0; i < 50; ++i) EXPECT_EQ(u.topic(i).id, i);
}

TEST(TopicUniverse, TriplesAreUnique) {
  TopicUniverseOptions opts;
  opts.num_topics = 300;
  opts.trap_fraction = 0.3;
  TopicUniverse u(opts);
  std::set<std::tuple<std::string, std::string, std::string>> triples;
  for (const auto& t : u.topics()) {
    EXPECT_TRUE(triples.insert({t.entity, t.aspect, t.qualifier}).second)
        << "duplicate topic " << t.entity << "/" << t.aspect << "/"
        << t.qualifier;
  }
}

TEST(TopicUniverse, QueriesAreGloballyUnique) {
  TopicUniverseOptions opts;
  opts.num_topics = 200;
  TopicUniverse u(opts);
  std::unordered_set<std::string> queries;
  for (const auto& t : u.topics()) {
    for (const auto& q : t.paraphrases) {
      EXPECT_TRUE(queries.insert(q).second) << "duplicate query: " << q;
    }
  }
}

TEST(TopicUniverse, TrapsShareEntityAndAspectWithParent) {
  TopicUniverseOptions opts;
  opts.num_topics = 200;
  opts.trap_fraction = 0.4;
  TopicUniverse u(opts);
  int traps = 0;
  for (const auto& t : u.topics()) {
    if (!t.trap_of) continue;
    ++traps;
    const auto& parent = u.topic(*t.trap_of);
    EXPECT_EQ(t.entity, parent.entity);
    EXPECT_EQ(t.aspect, parent.aspect);
    EXPECT_FALSE(t.qualifier.empty());
    EXPECT_NE(t.answer, parent.answer);
  }
  EXPECT_GT(traps, 40);
}

TEST(TopicUniverse, StaticityWithinBoundsAndMixed) {
  TopicUniverseOptions opts;
  opts.num_topics = 300;
  TopicUniverse u(opts);
  int stable = 0, ephemeral = 0;
  for (const auto& t : u.topics()) {
    EXPECT_GE(t.staticity, 1.0);
    EXPECT_LE(t.staticity, 10.0);
    if (t.staticity >= 8.0) ++stable;
    if (t.staticity <= 4.0) ++ephemeral;
  }
  EXPECT_GT(stable, 60);
  EXPECT_GT(ephemeral, 20);
}

TEST(TopicUniverse, ParaphraseCountCanExceedTemplatePool) {
  TopicUniverseOptions opts;
  opts.num_topics = 10;
  opts.paraphrases_per_topic = 20;
  TopicUniverse u(opts);
  for (const auto& t : u.topics()) {
    EXPECT_EQ(t.paraphrases.size(), 20u);
    std::unordered_set<std::string> distinct(t.paraphrases.begin(),
                                             t.paraphrases.end());
    EXPECT_EQ(distinct.size(), 20u);
  }
}

TEST(TopicUniverse, DeterministicForSeed) {
  TopicUniverseOptions opts;
  opts.num_topics = 30;
  TopicUniverse a(opts), b(opts);
  for (std::size_t i = 0; i < 30; ++i) {
    EXPECT_EQ(a.topic(i).entity, b.topic(i).entity);
    EXPECT_EQ(a.topic(i).paraphrases, b.topic(i).paraphrases);
  }
}

TEST(TopicUniverse, ExplicitTopicConstructor) {
  std::vector<Topic> topics(2);
  topics[0].id = 0;
  topics[0].answer = "a0";
  topics[1].id = 1;
  topics[1].answer = "a1";
  TopicUniverse u(std::move(topics));
  EXPECT_EQ(u.size(), 2u);
  EXPECT_EQ(u.topic(1).answer, "a1");
}

// --- GroundTruthOracle ---

TEST(Oracle, RegistersAndResolvesQueries) {
  TopicUniverseOptions opts;
  opts.num_topics = 20;
  TopicUniverse u(opts);
  GroundTruthOracle oracle(&u);
  RegisterAllParaphrases(oracle, u);
  EXPECT_GT(oracle.registered_queries(), 100u);
  const auto& t = u.topic(3);
  for (const auto& q : t.paraphrases) {
    EXPECT_EQ(oracle.TopicOf(q), t.id);
    EXPECT_EQ(oracle.ExpectedInfo(q), t.answer);
    EXPECT_TRUE(oracle.InfoCorrect(q, t.answer));
    EXPECT_FALSE(oracle.InfoCorrect(q, u.topic(4).answer));
    EXPECT_NEAR(oracle.Staticity(q), t.staticity, 1e-12);
  }
}

TEST(Oracle, EquivalenceIsTopicIdentity) {
  TopicUniverseOptions opts;
  opts.num_topics = 20;
  TopicUniverse u(opts);
  GroundTruthOracle oracle(&u);
  RegisterAllParaphrases(oracle, u);
  const auto& a = u.topic(0);
  const auto& b = u.topic(1);
  EXPECT_TRUE(oracle.Equivalent(a.paraphrases[0], a.paraphrases[1]));
  EXPECT_FALSE(oracle.Equivalent(a.paraphrases[0], b.paraphrases[0]));
}

TEST(Oracle, UnknownQueriesAreNeutral) {
  TopicUniverseOptions opts;
  opts.num_topics = 5;
  TopicUniverse u(opts);
  GroundTruthOracle oracle(&u);
  EXPECT_FALSE(oracle.TopicOf("never seen").has_value());
  EXPECT_TRUE(oracle.ExpectedInfo("never seen").empty());
  EXPECT_FALSE(oracle.Equivalent("never seen", "also unknown"));
  EXPECT_DOUBLE_EQ(oracle.Staticity("never seen"), 5.0);
}

// --- Skewed search workload ---

TEST(SkewedWorkload, BuildsRequestedTaskCount) {
  auto profile = SearchDatasetProfile::HotpotQa();
  profile.num_tasks = 200;
  const auto bundle = BuildSkewedSearchWorkload(profile);
  EXPECT_EQ(bundle.tasks.size(), 200u);
  EXPECT_EQ(bundle.name, "hotpotqa");
  EXPECT_TRUE(bundle.arrivals.empty());
  EXPECT_GT(bundle.TotalKnowledgeTokens(), 1000.0);
}

TEST(SkewedWorkload, EveryStepQueryIsRegistered) {
  auto profile = SearchDatasetProfile::Musique();
  profile.num_tasks = 100;
  const auto bundle = BuildSkewedSearchWorkload(profile);
  for (const auto& task : bundle.tasks) {
    EXPECT_FALSE(task.steps.empty());
    for (const auto& step : task.steps) {
      const auto topic = bundle.oracle->TopicOf(step.query);
      ASSERT_TRUE(topic.has_value()) << step.query;
      EXPECT_EQ(step.expected_info, bundle.universe->topic(*topic).answer);
    }
  }
}

TEST(SkewedWorkload, MultiHopProbabilityShapesStepCount) {
  auto single = SearchDatasetProfile::ZillizGpt();   // multi_hop 0.1
  auto multi = SearchDatasetProfile::Musique();      // multi_hop 0.8
  single.num_tasks = multi.num_tasks = 300;
  const auto sb = BuildSkewedSearchWorkload(single);
  const auto mb = BuildSkewedSearchWorkload(multi);
  auto mean_steps = [](const WorkloadBundle& b) {
    double total = 0;
    for (const auto& t : b.tasks) total += static_cast<double>(t.steps.size());
    return total / static_cast<double>(b.tasks.size());
  };
  EXPECT_LT(mean_steps(sb), 1.3);
  EXPECT_GT(mean_steps(mb), 1.6);
}

TEST(SkewedWorkload, PopularityIsHeadHeavy) {
  auto profile = SearchDatasetProfile::HotpotQa();
  profile.num_tasks = 1000;
  const auto bundle = BuildSkewedSearchWorkload(profile);
  const auto pop = ComputePopularity(bundle);
  EXPECT_GT(pop.total_queries, 1000u);
  // Top 10% of topics draw well over 10% of traffic.
  EXPECT_GT(pop.HeadShare(25), 0.3);
  // Log-log slope is negative (Zipf-like decay).
  EXPECT_LT(pop.zipf_slope, -0.5);
}

// --- Trend workload ---

TEST(TrendWorkload, ArrivalsCoverDurationAndAreSorted) {
  TrendProfile profile;
  profile.duration_sec = 120;
  const auto bundle = BuildTrendWorkload(profile);
  ASSERT_EQ(bundle.tasks.size(), bundle.arrivals.size());
  ASSERT_GT(bundle.tasks.size(), 50u);
  for (std::size_t i = 1; i < bundle.arrivals.size(); ++i) {
    EXPECT_LE(bundle.arrivals[i - 1], bundle.arrivals[i]);
  }
  EXPECT_LT(bundle.arrivals.back(), 120.0);
}

TEST(TrendWorkload, TrendTopicsAreEphemeralAndBursty) {
  TrendProfile profile;
  const auto bundle = BuildTrendWorkload(profile);
  const std::size_t group = 1 + profile.related_per_trend;
  for (std::size_t s = 0; s < profile.num_trend_topics * group; ++s) {
    EXPECT_LE(bundle.universe->topic(s).staticity, 3.0);
  }
  const auto series =
      TopicTimeSeries(bundle, 30.0, profile.num_trend_topics * group);
  for (std::size_t s = 0; s < profile.num_trend_topics; ++s) {
    EXPECT_GT(Burstiness(series[s * group]), 2.0) << "trend " << s;
  }
}

TEST(TrendWorkload, RelatedTopicsSpikeTogether) {
  TrendProfile profile;
  const auto bundle = BuildTrendWorkload(profile);
  const std::size_t group = 1 + profile.related_per_trend;
  const auto series =
      TopicTimeSeries(bundle, 30.0, profile.num_trend_topics * group);
  for (std::size_t s = 0; s < profile.num_trend_topics; ++s) {
    EXPECT_GT(PearsonCorrelation(series[s * group], series[s * group + 1]),
              0.5)
        << "trend " << s;
  }
}

// --- SWE-bench workload ---

TEST(SweBenchWorkload, FileFrequenciesFollowTable2) {
  SweBenchProfile profile;
  profile.num_issues = 2000;  // large sample to beat sampling noise
  const auto bundle = BuildSweBenchWorkload(profile);
  const auto freqs = FileAccessFrequencies(bundle);
  // File 1 is needed by essentially every issue; the head decays like the
  // paper's measurement (1.0, 0.28, 0.22, ...).
  EXPECT_GT(freqs[0], 0.97);
  for (std::size_t f = 1; f < profile.head_frequencies.size(); ++f) {
    EXPECT_NEAR(freqs[f], profile.head_frequencies[f], 0.05) << "file " << f;
  }
}

TEST(SweBenchWorkload, FilesAreStableKnowledge) {
  SweBenchProfile profile;
  profile.num_issues = 50;
  const auto bundle = BuildSweBenchWorkload(profile);
  for (const auto& t : bundle.universe->topics()) {
    EXPECT_GE(t.staticity, 8.0);
    EXPECT_GT(ApproxTokenCount(t.answer), 50u);  // file-sized payloads
  }
}

TEST(SweBenchWorkload, IssuesTouchHeadAndTailFiles) {
  SweBenchProfile profile;
  profile.num_issues = 200;
  const auto bundle = BuildSweBenchWorkload(profile);
  std::unordered_set<std::uint64_t> touched;
  for (const auto& task : bundle.tasks) {
    EXPECT_GE(task.steps.size(), 1u);
    for (const auto& step : task.steps) {
      const auto topic = bundle.oracle->TopicOf(step.query);
      ASSERT_TRUE(topic.has_value());
      touched.insert(*topic);
    }
  }
  EXPECT_GT(touched.size(), 30u);  // both head and a spread of tail files
}

TEST(TopicUniverse, PremiumTopicsCarryHeterogeneousCosts) {
  TopicUniverseOptions opts;
  opts.num_topics = 300;
  opts.premium_fraction = 0.3;
  TopicUniverse u(opts);
  int premium = 0;
  for (const auto& t : u.topics()) {
    EXPECT_GT(t.fetch_latency_scale, 0.0);
    if (t.fetch_cost_scale > 1.0) {
      ++premium;
      EXPECT_DOUBLE_EQ(t.fetch_cost_scale, opts.premium_cost_scale);
    }
  }
  EXPECT_NEAR(premium, 90, 30);
}

TEST(Oracle, FetchScalesComeFromTheTopic) {
  TopicUniverseOptions opts;
  opts.num_topics = 50;
  opts.premium_fraction = 1.0;  // everything premium
  TopicUniverse u(opts);
  GroundTruthOracle oracle(&u);
  RegisterAllParaphrases(oracle, u);
  const auto& q = u.topic(0).paraphrases[0];
  EXPECT_DOUBLE_EQ(oracle.FetchCostScale(q), u.topic(0).fetch_cost_scale);
  EXPECT_DOUBLE_EQ(oracle.FetchLatencyScale(q),
                   u.topic(0).fetch_latency_scale);
  // Unknown queries fall back to neutral scales.
  EXPECT_DOUBLE_EQ(oracle.FetchCostScale("unknown"), 1.0);
  EXPECT_DOUBLE_EQ(oracle.FetchLatencyScale("unknown"), 1.0);
}

TEST(WorkloadBundle, AllQueriesCoversEveryParaphrase) {
  auto profile = SearchDatasetProfile::HotpotQa();
  profile.num_tasks = 10;
  const auto bundle = BuildSkewedSearchWorkload(profile);
  const auto queries = bundle.AllQueries();
  std::size_t expected = 0;
  for (const auto& t : bundle.universe->topics()) {
    expected += t.paraphrases.size();
  }
  EXPECT_EQ(queries.size(), expected);
}

// --- Trace statistics helpers ---

TEST(WorkloadStats, BurstinessOfFlatSeriesIsOne) {
  EXPECT_DOUBLE_EQ(Burstiness({2, 2, 2, 2}), 1.0);
  EXPECT_DOUBLE_EQ(Burstiness({}), 1.0);
  EXPECT_GT(Burstiness({0, 0, 10, 0}), 3.9);
}

}  // namespace
}  // namespace cortex
