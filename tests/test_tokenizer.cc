#include "util/tokenizer.h"

#include <gtest/gtest.h>

namespace cortex {
namespace {

TEST(Tokenizer, LowercasesAndSplits) {
  Tokenizer t;
  const auto tokens = t.Tokenize("Mona-Lisa PAINTER!");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "mona");
  EXPECT_EQ(tokens[1], "lisa");
  EXPECT_EQ(tokens[2], "painter");
}

TEST(Tokenizer, DropsStopwords) {
  Tokenizer t;
  const auto tokens = t.Tokenize("what is the height of everest");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "height");
  EXPECT_EQ(tokens[1], "everest");
}

TEST(Tokenizer, KeepsStopwordsWhenDisabled) {
  TokenizerOptions opts;
  opts.drop_stopwords = false;
  Tokenizer t(opts);
  EXPECT_EQ(t.Tokenize("the cat").size(), 2u);
}

TEST(Tokenizer, UnderscoreIsPartOfToken) {
  Tokenizer t;
  const auto tokens = t.Tokenize("stock_price of apple");
  ASSERT_GE(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "stock_price");
}

TEST(Tokenizer, EmptyAndPunctuationOnly) {
  Tokenizer t;
  EXPECT_TRUE(t.Tokenize("").empty());
  EXPECT_TRUE(t.Tokenize("?!,. ::").empty());
}

TEST(Tokenizer, StemmingRules) {
  EXPECT_EQ(Tokenizer::Stem("running"), "runn");  // suffix strip, not porter
  EXPECT_EQ(Tokenizer::Stem("cities"), "city");
  EXPECT_EQ(Tokenizer::Stem("painted"), "paint");
  EXPECT_EQ(Tokenizer::Stem("boxes"), "box");
  EXPECT_EQ(Tokenizer::Stem("cats"), "cat");
  EXPECT_EQ(Tokenizer::Stem("grass"), "grass");   // -ss preserved
  EXPECT_EQ(Tokenizer::Stem("red"), "red");       // too short for -ed
  EXPECT_EQ(Tokenizer::Stem("einstein's"), "einstein");
}

TEST(Tokenizer, StemmingUnifiesInflections) {
  Tokenizer t;
  EXPECT_EQ(t.Tokenize("paintings")[0], t.Tokenize("painting")[0]);
}

TEST(Tokenizer, IsStopword) {
  Tokenizer t;
  EXPECT_TRUE(t.IsStopword("the"));
  EXPECT_TRUE(t.IsStopword("please"));
  EXPECT_FALSE(t.IsStopword("everest"));
}

TEST(LexicalOverlap, IdenticalTextsAreOne) {
  Tokenizer t;
  EXPECT_DOUBLE_EQ(t.LexicalOverlap("apple nutrition", "apple nutrition"),
                   1.0);
}

TEST(LexicalOverlap, StopwordDecorationIsInvisible) {
  Tokenizer t;
  EXPECT_DOUBLE_EQ(
      t.LexicalOverlap("apple nutrition", "the apple nutrition please"), 1.0);
}

TEST(LexicalOverlap, DisjointTextsAreZero) {
  Tokenizer t;
  EXPECT_DOUBLE_EQ(t.LexicalOverlap("apple nutrition", "everest height"),
                   0.0);
}

TEST(LexicalOverlap, PartialOverlapIsJaccard) {
  Tokenizer t;
  // {apple, nutrition} vs {apple, stock_price}: 1 shared of 3 union.
  EXPECT_NEAR(t.LexicalOverlap("apple nutrition", "apple stock_price"),
              1.0 / 3.0, 1e-12);
}

TEST(LexicalOverlap, BothEmptyIsOneOneEmptyIsZero) {
  Tokenizer t;
  EXPECT_DOUBLE_EQ(t.LexicalOverlap("", ""), 1.0);
  EXPECT_DOUBLE_EQ(t.LexicalOverlap("apple", ""), 0.0);
}

TEST(LexicalOverlap, IsSymmetric) {
  Tokenizer t;
  const auto a = t.LexicalOverlap("apple nutrition facts", "apple stock");
  const auto b = t.LexicalOverlap("apple stock", "apple nutrition facts");
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(Tokenizer, MinTokenLengthFilters) {
  TokenizerOptions opts;
  opts.min_token_length = 3;
  opts.drop_stopwords = false;
  Tokenizer t(opts);
  const auto tokens = t.Tokenize("go to mars");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0], "mar");  // stemmed
}

}  // namespace
}  // namespace cortex
