// End-to-end integration tests: full workloads served through the full
// stack, asserting the paper's qualitative claims hold in miniature.
#include <gtest/gtest.h>

#include "core/resolvers.h"
#include "embedding/hashed_embedder.h"
#include "sim/driver.h"
#include "workload/workloads.h"

namespace cortex {
namespace {

struct RunResult {
  RunMetrics metrics;
  std::uint64_t api_calls = 0;
  double api_cost = 0.0;
};

RunResult Serve(const std::string& system, const WorkloadBundle& bundle,
                double cache_ratio, DriverOptions driver_opts,
                RemoteServiceOptions service_opts =
                    RemoteDataService::GoogleSearchApi()) {
  HashedEmbedder embedder;
  const auto corpus = bundle.AllQueries();
  embedder.FitIdf(corpus);
  JudgerModel judger(bundle.oracle.get());
  AgentModel agent;
  ColocationSimulator gpu(DeploymentConfig::Colocated80_20());
  RemoteDataService service(service_opts);
  const double capacity = cache_ratio * bundle.TotalKnowledgeTokens();
  ResolverEnvironment env{&gpu, &service, bundle.oracle.get()};

  std::unique_ptr<ToolResolver> resolver;
  std::unique_ptr<CortexEngine> engine;
  if (system == "vanilla") {
    resolver = std::make_unique<VanillaResolver>(env);
  } else if (system == "exact") {
    resolver = std::make_unique<ExactCacheResolver>(
        env, ExactCacheOptions{.capacity_tokens = capacity});
  } else {
    CortexEngineOptions opts;
    opts.cache.capacity_tokens = capacity;
    if (system == "ann-only") opts.cache.sine.use_judger = false;
    engine = std::make_unique<CortexEngine>(&embedder, &judger, opts);
    resolver = std::make_unique<CortexResolver>(env, engine.get());
  }

  ServingDriver driver(agent, gpu, *resolver, driver_opts);
  RunResult result;
  result.metrics = driver.Run(bundle.tasks);
  result.api_calls = service.total_calls();
  result.api_cost = service.total_cost_dollars();
  return result;
}

WorkloadBundle SmallSearchBundle(std::size_t tasks = 300) {
  auto profile = SearchDatasetProfile::HotpotQa();
  profile.num_tasks = tasks;
  return BuildSkewedSearchWorkload(profile);
}

DriverOptions Rate(double r) {
  DriverOptions opts;
  opts.request_rate = r;
  return opts;
}

TEST(Integration, CortexBeatsBaselinesOnSkewedSearch) {
  const auto bundle = SmallSearchBundle();
  const auto vanilla = Serve("vanilla", bundle, 0.5, Rate(4.0));
  const auto exact = Serve("exact", bundle, 0.5, Rate(4.0));
  const auto cortex = Serve("cortex", bundle, 0.5, Rate(4.0));

  // Throughput ordering (Fig. 7): cortex > exact >= vanilla.
  EXPECT_GT(cortex.metrics.Throughput(), 1.3 * exact.metrics.Throughput());
  EXPECT_GT(cortex.metrics.Throughput(), 1.3 * vanilla.metrics.Throughput());
  // Hit rates: semantic >> exact >> none.
  EXPECT_DOUBLE_EQ(vanilla.metrics.CacheHitRate(), 0.0);
  EXPECT_GT(cortex.metrics.CacheHitRate(),
            exact.metrics.CacheHitRate() + 0.25);
  // Latency collapses (Fig. 11).
  EXPECT_LT(cortex.metrics.MeanLatency(), vanilla.metrics.MeanLatency() / 2);
  // Remote traffic and cost collapse (Fig. 12, Table 5).
  EXPECT_LT(cortex.api_calls, vanilla.api_calls / 3);
  EXPECT_LT(cortex.api_cost, vanilla.api_cost / 3);
}

TEST(Integration, JudgerPreservesAccuracyWhereAnnOnlyDegrades) {
  // Low rate so rate limiting does not confound accuracy (Fig. 13 setup).
  const auto bundle = SmallSearchBundle(400);
  const auto vanilla = Serve("vanilla", bundle, 0.6, Rate(0.8));
  const auto cortex = Serve("cortex", bundle, 0.6, Rate(0.8));
  const auto ann_only = Serve("ann-only", bundle, 0.6, Rate(0.8));

  // Cortex matches the no-cache baseline.
  EXPECT_NEAR(cortex.metrics.Accuracy(), vanilla.metrics.Accuracy(), 0.03);
  // The ablation serves wrong answers.
  EXPECT_LT(ann_only.metrics.Accuracy(), vanilla.metrics.Accuracy() - 0.03);
}

TEST(Integration, HitRateGrowsWithCacheRatio) {
  const auto bundle = SmallSearchBundle();
  double prev = -1.0;
  for (const double ratio : {0.1, 0.4, 0.8}) {
    const auto r = Serve("cortex", bundle, ratio, Rate(2.0));
    EXPECT_GT(r.metrics.CacheHitRate(), prev) << "ratio " << ratio;
    prev = r.metrics.CacheHitRate() - 0.02;  // small tolerance for noise
  }
}

TEST(Integration, RateLimitDominatesBaselineUnderLoad) {
  const auto bundle = SmallSearchBundle();
  // Offered load far above the 100/min quota.
  const auto vanilla = Serve("vanilla", bundle, 0.5, Rate(6.0));
  // The baseline plateaus near quota/calls-per-task (paper Fig. 10).
  EXPECT_LT(vanilla.metrics.Throughput(), 1.5);
  EXPECT_GT(vanilla.metrics.RetryRatio(), 0.2);
}

TEST(Integration, TrendWorkloadSustainsHighHitRate) {
  TrendProfile profile;
  profile.duration_sec = 240.0;
  const auto bundle = BuildTrendWorkload(profile);
  DriverOptions opts;
  opts.explicit_arrivals = bundle.arrivals;
  const auto cortex = Serve("cortex", bundle, 0.3, opts);
  EXPECT_GT(cortex.metrics.CacheHitRate(), 0.7);  // Fig. 8's ~95% at scale
}

TEST(Integration, SweBenchGainsAreModestButReal) {
  SweBenchProfile profile;
  profile.num_issues = 150;
  const auto bundle = BuildSweBenchWorkload(profile);
  DriverOptions opts;
  opts.arrival = DriverOptions::Arrival::kClosedLoop;
  opts.concurrency = 6;
  const auto service = RemoteDataService::SelfHostedRag();
  const auto vanilla = Serve("vanilla", bundle, 0.4, opts, service);
  const auto cortex = Serve("cortex", bundle, 0.4, opts, service);
  // Fig. 9's shape: ~45% hit rate, single-digit-to-20% throughput gain.
  EXPECT_GT(cortex.metrics.CacheHitRate(), 0.3);
  EXPECT_LT(cortex.metrics.CacheHitRate(), 0.75);
  EXPECT_GE(cortex.metrics.Throughput(),
            0.98 * vanilla.metrics.Throughput());
}

TEST(Integration, RunsAreDeterministic) {
  const auto bundle = SmallSearchBundle(150);
  const auto a = Serve("cortex", bundle, 0.4, Rate(2.0));
  const auto b = Serve("cortex", bundle, 0.4, Rate(2.0));
  EXPECT_DOUBLE_EQ(a.metrics.Throughput(), b.metrics.Throughput());
  EXPECT_DOUBLE_EQ(a.metrics.CacheHitRate(), b.metrics.CacheHitRate());
  EXPECT_DOUBLE_EQ(a.metrics.Accuracy(), b.metrics.Accuracy());
  EXPECT_EQ(a.api_calls, b.api_calls);
}

TEST(Integration, ColocationCostsLittleThroughput) {
  // Table 7's shape: co-located MPS 80/20 retains most of the dedicated
  // two-GPU throughput.
  const auto bundle = SmallSearchBundle(250);
  auto serve_with = [&](DeploymentConfig cfg) {
    HashedEmbedder embedder;
    JudgerModel judger(bundle.oracle.get());
    AgentModel agent;
    ColocationSimulator gpu(cfg);
    RemoteDataService service(RemoteDataService::GoogleSearchApi());
    CortexEngineOptions opts;
    opts.cache.capacity_tokens = 0.6 * bundle.TotalKnowledgeTokens();
    CortexEngine engine(&embedder, &judger, opts);
    ResolverEnvironment env{&gpu, &service, bundle.oracle.get()};
    CortexResolver resolver(env, &engine);
    ServingDriver driver(agent, gpu, resolver, Rate(3.0));
    return driver.Run(bundle.tasks);
  };
  const auto colocated = serve_with(DeploymentConfig::Colocated80_20());
  const auto dedicated = serve_with(DeploymentConfig::DedicatedTwoGpu());
  EXPECT_GT(colocated.Throughput(), 0.85 * dedicated.Throughput());
}

}  // namespace
}  // namespace cortex
