// Shared fixtures for the core-layer tests: a small topic universe with a
// ground-truth oracle, plus embedder/judger instances wired to it.
#pragma once

#include <memory>

#include "embedding/hashed_embedder.h"
#include "llm/judger_model.h"
#include "workload/oracle.h"
#include "workload/topic_universe.h"

namespace cortex::testing {

struct MiniWorld {
  explicit MiniWorld(std::size_t num_topics = 40, std::uint64_t seed = 7) {
    TopicUniverseOptions opts;
    opts.num_topics = num_topics;
    opts.paraphrases_per_topic = 6;
    opts.trap_fraction = 0.2;
    opts.seed = seed;
    universe = std::make_unique<TopicUniverse>(opts);
    oracle = std::make_unique<GroundTruthOracle>(universe.get());
    RegisterAllParaphrases(*oracle, *universe);
    // Fit the embedder's IDF weights on the query corpus, as every serving
    // stack does — Sine's default thresholds are calibrated for this.
    std::vector<std::string> corpus;
    for (const auto& t : universe->topics()) {
      corpus.insert(corpus.end(), t.paraphrases.begin(),
                    t.paraphrases.end());
    }
    embedder.FitIdf(corpus);
    // Unit tests want per-pair decisions to be predictable, so the fixture
    // judger uses less evidence noise than the default (integration tests
    // exercise the noisy default).
    JudgerOptions jopts;
    jopts.noise_sigma = 0.5;
    judger = std::make_unique<JudgerModel>(oracle.get(), jopts);
  }

  const Topic& topic(std::size_t i) const { return universe->topic(i); }
  const std::string& query(std::size_t topic_id, std::size_t i = 0) const {
    return universe->topic(topic_id).paraphrases.at(i);
  }
  const std::string& answer(std::size_t topic_id) const {
    return universe->topic(topic_id).answer;
  }

  std::unique_ptr<TopicUniverse> universe;
  std::unique_ptr<GroundTruthOracle> oracle;
  HashedEmbedder embedder;
  std::unique_ptr<JudgerModel> judger;
};

}  // namespace cortex::testing
