#include <gtest/gtest.h>

#include "ann/flat_index.h"
#include "core/semantic_cache.h"
#include "test_helpers.h"
#include "util/count_min.h"

namespace cortex {
namespace {

using cortex::testing::MiniWorld;

// --- CountMinSketch ---

TEST(CountMinSketch, NeverUndercounts) {
  CountMinSketch sketch(256, 4);
  for (int i = 0; i < 100; ++i) {
    sketch.Add("item " + std::to_string(i % 10));
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_GE(sketch.Estimate("item " + std::to_string(i)), 10u);
  }
}

TEST(CountMinSketch, UnseenItemsEstimateNearZero) {
  CountMinSketch sketch(1024, 4);
  for (int i = 0; i < 50; ++i) sketch.Add("seen " + std::to_string(i));
  // With 50 additions spread over 1024 counters, collisions are unlikely.
  int zero = 0;
  for (int i = 0; i < 50; ++i) {
    if (sketch.Estimate("unseen " + std::to_string(i)) == 0) ++zero;
  }
  EXPECT_GE(zero, 45);
}

TEST(CountMinSketch, AccurateForHeavyHitters) {
  CountMinSketch sketch(2048, 4);
  for (int i = 0; i < 1000; ++i) sketch.Add("hot");
  for (int i = 0; i < 2000; ++i) sketch.Add("noise " + std::to_string(i));
  const auto estimate = sketch.Estimate("hot");
  EXPECT_GE(estimate, 1000u);
  EXPECT_LE(estimate, 1020u);  // small over-count from collisions
}

TEST(CountMinSketch, HalveAgesCounters) {
  CountMinSketch sketch(256, 4);
  for (int i = 0; i < 8; ++i) sketch.Add("x");
  EXPECT_GE(sketch.Estimate("x"), 8u);
  sketch.Halve();
  EXPECT_LE(sketch.Estimate("x"), 4u);
  EXPECT_GE(sketch.Estimate("x"), 4u);
  EXPECT_EQ(sketch.total_additions(), 4u);
}

TEST(CountMinSketch, ResetClears) {
  CountMinSketch sketch;
  sketch.Add("x", 100);
  sketch.Reset();
  EXPECT_EQ(sketch.Estimate("x"), 0u);
  EXPECT_EQ(sketch.total_additions(), 0u);
}

TEST(CountMinSketch, SaturatesInsteadOfOverflowing) {
  CountMinSketch sketch(16, 2);
  sketch.Add("x", 0xFFFFFFFFu);
  sketch.Add("x", 10);
  EXPECT_EQ(sketch.Estimate("x"), 0xFFFFFFFFu);
}

// --- Admission doorkeeper ---

class AdmissionTest : public ::testing::Test {
 protected:
  std::unique_ptr<SemanticCache> MakeCache(bool admission,
                                           double capacity) {
    SemanticCacheOptions opts;
    opts.capacity_tokens = capacity;
    opts.admission_enabled = admission;
    opts.admission_threshold = 2;
    opts.admission_pressure = 0.0;  // always under pressure (simpler tests)
    return std::make_unique<SemanticCache>(
        &world_.embedder,
        std::make_unique<FlatIndex>(world_.embedder.dimension()),
        world_.judger.get(), std::make_unique<LcfuPolicy>(), opts);
  }

  InsertRequest RequestFor(std::size_t topic, std::size_t paraphrase = 0) {
    InsertRequest req;
    req.key = world_.query(topic, paraphrase);
    req.value = world_.answer(topic);
    req.staticity = 5.0;
    req.retrieval_latency_sec = 0.4;
    req.retrieval_cost_dollars = 0.005;
    req.initial_frequency = 1;
    return req;
  }

  MiniWorld world_;
};

TEST_F(AdmissionTest, FirstFetchIsRejectedSecondAdmitted) {
  auto cache = MakeCache(/*admission=*/true, /*capacity=*/1e6);
  EXPECT_FALSE(cache->Insert(RequestFor(0), 0.0).has_value());
  EXPECT_EQ(cache->counters().admission_rejects, 1u);
  // The second fetch of the same knowledge passes the doorkeeper.
  EXPECT_TRUE(cache->Insert(RequestFor(0), 1.0).has_value());
  EXPECT_EQ(cache->size(), 1u);
}

TEST_F(AdmissionTest, ParaphrasesPoolTheirEvidence) {
  auto cache = MakeCache(true, 1e6);
  // Two different phrasings fetching the SAME knowledge count together.
  EXPECT_FALSE(cache->Insert(RequestFor(0, 0), 0.0).has_value());
  EXPECT_TRUE(cache->Insert(RequestFor(0, 3), 1.0).has_value());
}

TEST_F(AdmissionTest, ResidentValuesBypassTheDoorkeeper) {
  auto cache = MakeCache(true, 1e6);
  cache->Insert(RequestFor(0), 0.0);
  ASSERT_TRUE(cache->Insert(RequestFor(0), 1.0).has_value());
  // A re-fetch of resident knowledge dedups (no admission question at all).
  const auto id = cache->Insert(RequestFor(0, 2), 2.0);
  ASSERT_TRUE(id.has_value());
  EXPECT_GE(cache->counters().dedup_refreshes, 1u);
}

TEST_F(AdmissionTest, DisabledDoorkeeperAdmitsEverything) {
  auto cache = MakeCache(false, 1e6);
  EXPECT_TRUE(cache->Insert(RequestFor(0), 0.0).has_value());
  EXPECT_EQ(cache->counters().admission_rejects, 0u);
}

TEST_F(AdmissionTest, UnderfullCacheAdmitsWhenPressureGateIsSet) {
  SemanticCacheOptions opts;
  opts.capacity_tokens = 1e6;
  opts.admission_enabled = true;
  opts.admission_threshold = 2;
  opts.admission_pressure = 0.9;  // realistic gate
  SemanticCache cache(&world_.embedder,
                      std::make_unique<FlatIndex>(world_.embedder.dimension()),
                      world_.judger.get(), std::make_unique<LcfuPolicy>(),
                      opts);
  // Far below 90% full: everything is admitted on first sight.
  EXPECT_TRUE(cache.Insert(RequestFor(0), 0.0).has_value());
  EXPECT_EQ(cache.counters().admission_rejects, 0u);
}

TEST_F(AdmissionTest, DoorkeeperReducesChurnUnderScanPressure) {
  // Tight cache holding ~4 answers; a hot working set of 3 topics is
  // scanned over by a long parade of one-hit wonders.
  const double capacity = 4.5 * 70.0;
  auto guarded = MakeCache(true, capacity);
  auto open = MakeCache(false, capacity);
  auto run = [&](SemanticCache& cache) {
    double now = 0.0;
    // Establish the hot set (each value fetched twice to pass the gate).
    for (int round = 0; round < 2; ++round) {
      for (std::size_t topic = 0; topic < 3; ++topic) {
        cache.Insert(RequestFor(topic, round), now += 1.0);
      }
    }
    // Scan: 20 distinct one-hit wonders.
    for (std::size_t topic = 5; topic < 25; ++topic) {
      cache.Insert(RequestFor(topic), now += 1.0);
    }
    // How much of the hot set survived?
    int survivors = 0;
    for (std::size_t topic = 0; topic < 3; ++topic) {
      if (cache.ContainsValue(world_.answer(topic))) ++survivors;
    }
    return survivors;
  };
  const int guarded_survivors = run(*guarded);
  const int open_survivors = run(*open);
  // The doorkeeper keeps the proven hot set resident through the scan.
  EXPECT_EQ(guarded_survivors, 3);
  EXPECT_GE(guarded_survivors, open_survivors);
  EXPECT_GT(guarded->counters().admission_rejects, 10u);
  EXPECT_LT(guarded->counters().evictions, open->counters().evictions);
}

}  // namespace
}  // namespace cortex
