#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.h"

namespace cortex {
namespace {

TEST(StreamingStats, EmptyIsZero) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(StreamingStats, MatchesClosedForm) {
  StreamingStats s;
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (double x : xs) s.Add(x);
  EXPECT_EQ(s.count(), xs.size());
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(StreamingStats, MergeEqualsCombinedStream) {
  Rng rng(1);
  StreamingStats a, b, all;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.Normal(3.0, 2.0);
    (i % 2 ? a : b).Add(x);
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(StreamingStats, MergeWithEmptyIsIdentity) {
  StreamingStats a, empty;
  a.Add(1.0);
  a.Add(2.0);
  const double mean = a.mean();
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), mean);
}

TEST(Histogram, QuantilesOnKnownDistribution) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Add(static_cast<double>(i));
  // ~2% relative resolution from the geometric buckets.
  EXPECT_NEAR(h.p50(), 500.0, 500.0 * 0.03);
  EXPECT_NEAR(h.p99(), 990.0, 990.0 * 0.03);
  EXPECT_NEAR(h.Quantile(0.1), 100.0, 100.0 * 0.03);
  EXPECT_EQ(h.max(), 1000.0);
  EXPECT_EQ(h.min(), 1.0);
  EXPECT_NEAR(h.mean(), 500.5, 1e-9);
}

TEST(Histogram, QuantileNeverExceedsMax) {
  Histogram h;
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) h.Add(rng.LogNormal(0.0, 2.0));
  EXPECT_LE(h.Quantile(1.0), h.max());
  EXPECT_GE(h.Quantile(0.0), 0.0);
}

TEST(Histogram, HandlesZeroAndNegativeByClamping) {
  Histogram h;
  h.Add(0.0);
  h.Add(-5.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.min(), 0.0);
}

TEST(Histogram, MergePreservesTotals) {
  Histogram a, b;
  Rng rng(3);
  for (int i = 0; i < 500; ++i) a.Add(rng.Uniform(0, 10));
  for (int i = 0; i < 300; ++i) b.Add(rng.Uniform(5, 20));
  const double max_before = std::max(a.max(), b.max());
  a.Merge(b);
  EXPECT_EQ(a.count(), 800u);
  EXPECT_EQ(a.max(), max_before);
}

TEST(HistogramDeathTest, MergeRejectsMismatchedGeometry) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Histogram fine(1e-6, 1.02);
  Histogram coarse(1e-6, 2.0);
  fine.Add(1.0);
  coarse.Add(1.0);
  EXPECT_DEATH(fine.Merge(coarse), "different bucket layouts");
}

TEST(Histogram, ResetClears) {
  Histogram h;
  h.Add(1.0);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
}

TEST(Histogram, SummaryMentionsCount) {
  Histogram h;
  h.Add(2.0);
  EXPECT_NE(h.Summary().find("n=1"), std::string::npos);
}

TEST(RatioCounter, BasicRatios) {
  RatioCounter r;
  EXPECT_EQ(r.ratio(), 0.0);
  r.AddHit();
  r.AddMiss();
  r.AddMiss();
  r.Add(true);
  EXPECT_EQ(r.hits(), 2u);
  EXPECT_EQ(r.misses(), 2u);
  EXPECT_DOUBLE_EQ(r.ratio(), 0.5);
  r.Reset();
  EXPECT_EQ(r.total(), 0u);
}

TEST(PearsonCorrelation, PerfectAndInverse) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {2, 4, 6, 8, 10};
  std::vector<double> inv(y.rbegin(), y.rend());
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation(x, inv), -1.0, 1e-12);
}

TEST(PearsonCorrelation, ConstantSeriesIsZero) {
  const std::vector<double> x = {1, 2, 3};
  const std::vector<double> c = {5, 5, 5};
  EXPECT_EQ(PearsonCorrelation(x, c), 0.0);
}

TEST(LogLogSlope, RecoversPowerLawExponent) {
  std::vector<double> x, y;
  for (int r = 1; r <= 100; ++r) {
    x.push_back(r);
    y.push_back(1000.0 / std::pow(r, 0.99));
  }
  EXPECT_NEAR(LogLogSlope(x, y), -0.99, 1e-6);
}

TEST(LogLogSlope, IgnoresNonPositivePoints) {
  const std::vector<double> x = {0.0, 1.0, 2.0, 4.0};
  const std::vector<double> y = {5.0, 1.0, 2.0, 4.0};
  EXPECT_NEAR(LogLogSlope(x, y), 1.0, 1e-9);
}

}  // namespace
}  // namespace cortex
