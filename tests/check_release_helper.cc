// Compiled with DCHECK forced OFF regardless of build type, so
// test_check.cc can verify release-mode DCHECK semantics even in a debug
// build.  Must include check.h before any header that includes it
// normally (per-TU macro, pragma once).
#define CORTEX_DCHECK_IS_ON 0
#include "util/check.h"

namespace cortex_test {

// Returns true iff DCHECK(false) does not abort when compiled out.
bool ReleaseDcheckSurvivesFalse() {
  DCHECK(false) << "compiled out — must not fire";
  return true;
}

// Returns whether the disabled DCHECK evaluated its condition (must not).
bool ReleaseDcheckEvaluatesCondition() {
  bool evaluated = false;
  DCHECK([&evaluated] {
    evaluated = true;
    return true;
  }());
  return evaluated;
}

// Returns true iff DCHECK_EQ on unequal values does not abort either.
bool ReleaseDcheckOpSurvivesMismatch() {
  DCHECK_EQ(1, 2) << "compiled out — must not fire";
  return true;
}

}  // namespace cortex_test
