#include "ann/flat_index.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/rng.h"

namespace cortex {
namespace {

Vector UnitVec(std::initializer_list<float> vals) {
  Vector v(vals);
  Normalize(v);
  return v;
}

TEST(FlatIndex, EmptySearchReturnsNothing) {
  FlatIndex idx(4);
  const Vector q = UnitVec({1, 0, 0, 0});
  EXPECT_TRUE(idx.Search(q, 5, -1.0).empty());
  EXPECT_EQ(idx.size(), 0u);
}

TEST(FlatIndex, AddContainsGet) {
  FlatIndex idx(3);
  const Vector v = UnitVec({1, 2, 3});
  idx.Add(7, v);
  EXPECT_TRUE(idx.Contains(7));
  EXPECT_FALSE(idx.Contains(8));
  ASSERT_TRUE(idx.Get(7).has_value());
  EXPECT_EQ(*idx.Get(7), v);
  EXPECT_FALSE(idx.Get(8).has_value());
}

TEST(FlatIndex, SearchReturnsSortedTopK) {
  FlatIndex idx(2);
  idx.Add(1, UnitVec({1, 0}));
  idx.Add(2, UnitVec({0.9f, 0.1f}));
  idx.Add(3, UnitVec({0, 1}));
  const auto results = idx.Search(UnitVec({1, 0}), 2, -1.0);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].id, 1u);
  EXPECT_EQ(results[1].id, 2u);
  EXPECT_GE(results[0].similarity, results[1].similarity);
}

TEST(FlatIndex, MinSimilarityFilters) {
  FlatIndex idx(2);
  idx.Add(1, UnitVec({1, 0}));
  idx.Add(2, UnitVec({0, 1}));
  const auto results = idx.Search(UnitVec({1, 0}), 10, 0.5);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].id, 1u);
}

TEST(FlatIndex, KZeroReturnsEmpty) {
  FlatIndex idx(2);
  idx.Add(1, UnitVec({1, 0}));
  EXPECT_TRUE(idx.Search(UnitVec({1, 0}), 0, -1.0).empty());
}

TEST(FlatIndex, RemoveSwapsLastSlot) {
  FlatIndex idx(2);
  idx.Add(1, UnitVec({1, 0}));
  idx.Add(2, UnitVec({0, 1}));
  idx.Add(3, UnitVec({-1, 0}));
  EXPECT_TRUE(idx.Remove(2));
  EXPECT_FALSE(idx.Remove(2));
  EXPECT_EQ(idx.size(), 2u);
  // The remaining vectors are still searchable and correct.
  const auto r1 = idx.Search(UnitVec({1, 0}), 1, -1.0);
  ASSERT_EQ(r1.size(), 1u);
  EXPECT_EQ(r1[0].id, 1u);
  const auto r3 = idx.Search(UnitVec({-1, 0}), 1, -1.0);
  EXPECT_EQ(r3[0].id, 3u);
}

TEST(FlatIndex, ReAddReplacesVector) {
  FlatIndex idx(2);
  idx.Add(1, UnitVec({1, 0}));
  idx.Add(1, UnitVec({0, 1}));
  EXPECT_EQ(idx.size(), 1u);
  const auto r = idx.Search(UnitVec({0, 1}), 1, -1.0);
  EXPECT_EQ(r[0].id, 1u);
  EXPECT_NEAR(r[0].similarity, 1.0, 1e-6);
}

TEST(FlatIndex, DistanceComputationCounterAdvances) {
  FlatIndex idx(2);
  idx.Add(1, UnitVec({1, 0}));
  idx.Add(2, UnitVec({0, 1}));
  const auto before = idx.distance_computations();
  idx.Search(UnitVec({1, 0}), 1, -1.0);
  EXPECT_EQ(idx.distance_computations(), before + 2);
}

TEST(FlatIndex, ManyVectorsTopKMatchesBruteForce) {
  constexpr std::size_t kDim = 16, kN = 300;
  FlatIndex idx(kDim);
  Rng rng(3);
  std::vector<Vector> vecs(kN, Vector(kDim));
  for (std::size_t i = 0; i < kN; ++i) {
    for (auto& x : vecs[i]) x = static_cast<float>(rng.Normal());
    Normalize(vecs[i]);
    idx.Add(i, vecs[i]);
  }
  Vector q(kDim);
  for (auto& x : q) x = static_cast<float>(rng.Normal());
  Normalize(q);

  const auto results = idx.Search(q, 10, -1.0);
  ASSERT_EQ(results.size(), 10u);
  std::vector<std::pair<double, std::size_t>> truth;
  for (std::size_t i = 0; i < kN; ++i) {
    truth.emplace_back(CosineSimilarity(q, vecs[i]), i);
  }
  std::sort(truth.rbegin(), truth.rend());
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(results[i].id, truth[i].second);
  }
}

}  // namespace
}  // namespace cortex
