// Telemetry subsystem tests (DESIGN.md §8): counter/gauge/histogram
// correctness under concurrency (run under TSan via scripts/tsan.sh),
// snapshot merge + quantile behaviour, registry contracts, flight-recorder
// wraparound and seqlock consistency, text exposition golden output, and
// an end-to-end pass showing a served LOOKUP populating engine + server
// metrics visible through the extended STATS / DUMPTRACE wire commands.
#include "telemetry/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "serve/client.h"
#include "serve/concurrent_engine.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "telemetry/trace.h"
#include "test_helpers.h"
#include "util/stats.h"

namespace cortex {
namespace {

using namespace cortex::serve;
using namespace cortex::telemetry;
using cortex::testing::MiniWorld;

class TelemetryDeathTest : public ::testing::Test {
 protected:
  TelemetryDeathTest() {
    // Re-exec the binary for death tests instead of bare fork(): the
    // suite spawns threads, and fork-from-multithreaded is unreliable.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  }
};

// ---------------------------------------------------------------------------
// Counter

TEST(TelemetryCounterTest, SingleThreadIncrements) {
  MetricRegistry registry;
  Counter* c = registry.GetCounter("cortex_test_events");
  EXPECT_EQ(c->Value(), 0u);
  c->Inc();
  c->Inc(41);
  EXPECT_EQ(c->Value(), 42u);
}

TEST(TelemetryCounterTest, EightThreadsSumExactly) {
  MetricRegistry registry;
  Counter* c = registry.GetCounter("cortex_test_events");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c->Inc();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c->Value(), kThreads * kPerThread);
}

TEST(TelemetryCounterTest, DisabledRegistryDropsUpdates) {
  MetricRegistry registry;
  Counter* c = registry.GetCounter("cortex_test_events");
  Gauge* g = registry.GetGauge("cortex_test_depth");
  AtomicHistogram* h = registry.GetHistogram("cortex_test_seconds");
  c->Inc(3);
  registry.set_enabled(false);
  c->Inc(100);
  g->Set(7.0);
  g->Add(1.0);
  h->Observe(0.5);
  EXPECT_EQ(c->Value(), 3u);
  EXPECT_EQ(g->Value(), 0.0);
  EXPECT_EQ(h->Snapshot().count, 0u);
  registry.set_enabled(true);
  c->Inc();
  EXPECT_EQ(c->Value(), 4u);
}

// ---------------------------------------------------------------------------
// Gauge

TEST(TelemetryGaugeTest, SetAndAdd) {
  MetricRegistry registry;
  Gauge* g = registry.GetGauge("cortex_test_depth");
  g->Set(5.0);
  g->Add(-2.5);
  EXPECT_DOUBLE_EQ(g->Value(), 2.5);
  g->Set(1.0);
  EXPECT_DOUBLE_EQ(g->Value(), 1.0);
}

TEST(TelemetryGaugeTest, ConcurrentAddsBalanceToZero) {
  MetricRegistry registry;
  Gauge* g = registry.GetGauge("cortex_test_depth");
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([g] {
      for (int i = 0; i < kIters; ++i) {
        g->Add(1.0);
        g->Add(-1.0);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_DOUBLE_EQ(g->Value(), 0.0);
}

// ---------------------------------------------------------------------------
// AtomicHistogram

TEST(TelemetryHistogramTest, MatchesUtilStatsHistogramGeometry) {
  // Same samples into the lock-free histogram and the offline util/stats
  // one (identical min_value/growth): counts identical, quantiles equal
  // to bucket resolution.
  MetricRegistry registry;
  AtomicHistogram* ah = registry.GetHistogram("cortex_test_seconds");
  Histogram reference(1e-6, 1.02);
  std::vector<double> samples;
  for (int i = 1; i <= 1000; ++i) samples.push_back(1e-4 * i);  // 0.1ms..100ms
  for (const double s : samples) {
    ah->Observe(s);
    reference.Add(s);
  }
  const HistogramSnapshot snap = ah->Snapshot();
  EXPECT_EQ(snap.count, reference.count());
  EXPECT_DOUBLE_EQ(snap.min, reference.min());
  EXPECT_DOUBLE_EQ(snap.max, reference.max());
  EXPECT_NEAR(snap.mean(), reference.mean(), 1e-12);
  for (const double q : {0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(snap.Quantile(q), reference.Quantile(q)) << "q=" << q;
  }
}

TEST(TelemetryHistogramTest, EightThreadsObserveExactCount) {
  MetricRegistry registry;
  AtomicHistogram* h = registry.GetHistogram("cortex_test_seconds");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h->Observe(1e-4 * static_cast<double>(t + 1));
      }
    });
  }
  for (auto& th : threads) th.join();
  const HistogramSnapshot snap = h->Snapshot();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(snap.min, 1e-4);
  EXPECT_DOUBLE_EQ(snap.max, 8e-4);
}

TEST(TelemetryHistogramTest, ValuesAboveMaxClampIntoLastBucket) {
  MetricRegistry registry;
  AtomicHistogram* h = registry.GetHistogram("cortex_test_seconds");
  h->Observe(5000.0);  // above the 3600s default ceiling
  const HistogramSnapshot snap = h->Snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_DOUBLE_EQ(snap.max, 5000.0);
  // The quantile lands in the clamp bucket: at least the ceiling, at most
  // the recorded max.
  EXPECT_GE(snap.Quantile(1.0), 3600.0);
  EXPECT_LE(snap.Quantile(1.0), 5000.0);
}

TEST(TelemetryHistogramTest, SnapshotMergeAccumulates) {
  MetricRegistry registry;
  AtomicHistogram* a = registry.GetHistogram("cortex_test_a_seconds");
  AtomicHistogram* b = registry.GetHistogram("cortex_test_b_seconds");
  for (int i = 0; i < 100; ++i) a->Observe(0.001);
  for (int i = 0; i < 300; ++i) b->Observe(0.1);
  HistogramSnapshot merged = a->Snapshot();
  merged.Merge(b->Snapshot());
  EXPECT_EQ(merged.count, 400u);
  EXPECT_DOUBLE_EQ(merged.min, 0.001);
  EXPECT_DOUBLE_EQ(merged.max, 0.1);
  EXPECT_NEAR(merged.sum, 100 * 0.001 + 300 * 0.1, 1e-9);
  // 75% of the mass is at 0.1: the median moved to the upper mode.
  EXPECT_NEAR(merged.Quantile(0.5), 0.1, 0.1 * 0.03);
}

TEST_F(TelemetryDeathTest, SnapshotMergeRejectsMismatchedGeometry) {
  MetricRegistry registry;
  AtomicHistogram* a = registry.GetHistogram("cortex_test_a_seconds");
  HistogramOptions coarse;
  coarse.growth = 2.0;
  AtomicHistogram* b =
      registry.GetHistogram("cortex_test_b_seconds", coarse);
  a->Observe(0.5);
  b->Observe(0.5);
  HistogramSnapshot snap = a->Snapshot();
  EXPECT_DEATH(snap.Merge(b->Snapshot()),
               "different bucket layouts");
}

// ---------------------------------------------------------------------------
// MetricRegistry

TEST(TelemetryRegistryTest, GetIsIdempotent) {
  MetricRegistry registry;
  EXPECT_EQ(registry.GetCounter("cortex_test_events"),
            registry.GetCounter("cortex_test_events"));
  EXPECT_EQ(registry.GetGauge("cortex_test_depth"),
            registry.GetGauge("cortex_test_depth"));
  EXPECT_EQ(registry.GetHistogram("cortex_test_seconds"),
            registry.GetHistogram("cortex_test_seconds"));
}

TEST_F(TelemetryDeathTest, RegistryRejectsKindMismatch) {
  MetricRegistry registry;
  registry.GetCounter("cortex_test_events");
  EXPECT_DEATH(registry.GetGauge("cortex_test_events"),
               "already registered as a different kind");
}

TEST_F(TelemetryDeathTest, RegistryRejectsBadNames) {
  MetricRegistry registry;
  EXPECT_DEATH(registry.GetCounter("has space"), "bad metric name");
  EXPECT_DEATH(registry.GetCounter("has=equals"), "bad metric name");
  EXPECT_DEATH(registry.GetCounter(""), "bad metric name");
}

// ---------------------------------------------------------------------------
// Exposition

TEST(TelemetryExpositionTest, RenderTextGolden) {
  MetricRegistry registry;
  registry.GetCounter("a_counter")->Inc(3);
  registry.GetGauge("b_gauge")->Set(2.5);
  AtomicHistogram* h = registry.GetHistogram("c_seconds");
  // Two samples in bucket 0 (<= min_value): every quantile is the
  // recorded max, so the whole rendering is deterministic.
  h->Observe(1e-7);
  h->Observe(1e-7);
  EXPECT_EQ(registry.Snapshot().RenderText(),
            "# TYPE a_counter counter\n"
            "a_counter 3\n"
            "# TYPE b_gauge gauge\n"
            "b_gauge 2.5\n"
            "# TYPE c_seconds histogram\n"
            "c_seconds_count 2\n"
            "c_seconds_sum 2e-07\n"
            "c_seconds{quantile=\"0.5\"} 1e-07\n"
            "c_seconds{quantile=\"0.9\"} 1e-07\n"
            "c_seconds{quantile=\"0.99\"} 1e-07\n"
            "c_seconds_min 1e-07\n"
            "c_seconds_max 1e-07\n");
}

TEST(TelemetryExpositionTest, AppendKeyValuesExpandsHistograms) {
  MetricRegistry registry;
  registry.GetCounter("a_counter")->Inc(3);
  registry.GetGauge("b_gauge")->Set(2.5);
  registry.GetHistogram("c_seconds")->Observe(0.25);
  std::vector<std::pair<std::string, std::string>> kv;
  registry.Snapshot().AppendKeyValues(&kv);
  std::vector<std::string> keys;
  for (const auto& [k, v] : kv) keys.push_back(k);
  EXPECT_EQ(keys, (std::vector<std::string>{
                      "a_counter", "b_gauge", "c_seconds_count",
                      "c_seconds_mean", "c_seconds_p50", "c_seconds_p99",
                      "c_seconds_max"}));
  EXPECT_EQ(kv[0].second, "3");
  EXPECT_EQ(kv[2].second, "1");
}

// ---------------------------------------------------------------------------
// RequestTrace

TEST(RequestTraceTest, SpanOverflowKeepsTrueCount) {
  RequestTrace trace;
  for (int i = 0; i < 12; ++i) {
    trace.AddSpan(TracePhase::kEmbed, 0.1 * i, 0.01);
  }
  EXPECT_EQ(trace.span_count, 12u);  // attempted count survives
  // Only the first kMaxTraceSpans are stored.
  EXPECT_DOUBLE_EQ(trace.spans[kMaxTraceSpans - 1].start,
                   0.1 * (kMaxTraceSpans - 1));
}

TEST(RequestTraceTest, QueryTruncatesToFixedBytes) {
  RequestTrace trace;
  const std::string long_query(100, 'q');
  trace.SetQuery(long_query);
  EXPECT_EQ(trace.query_len, kTraceQueryBytes);
  EXPECT_EQ(trace.query_view(), long_query.substr(0, kTraceQueryBytes));
  trace.SetQuery("short");
  EXPECT_EQ(trace.query_view(), "short");
}

TEST(RequestTraceTest, RenderTraceTextFormat) {
  RequestTrace trace;
  trace.seq = 7;
  trace.op = TraceOp::kLookup;
  trace.outcome = TraceOutcome::kHit;
  trace.shard = 2;
  trace.start = 1.5;
  trace.total = 0.002;
  trace.AddSpan(TracePhase::kEmbed, 1.5, 0.001);
  trace.AddSpan(TracePhase::kAnnProbe, 1.501, 0.0005);
  trace.SetQuery("everest height");
  const std::string text = RenderTraceText({trace});
  EXPECT_EQ(text,
            "#7 LOOKUP hit shard=2 t=1.500s total=2.000ms "
            "spans[embed=1.000ms ann_probe=0.500ms] q=\"everest height\"\n");
}

// ---------------------------------------------------------------------------
// FlightRecorder

RequestTrace MakeTrace(TraceOp op, std::uint32_t shard, double total) {
  RequestTrace trace;
  trace.op = op;
  trace.outcome = TraceOutcome::kOk;
  trace.shard = shard;
  trace.total = total;
  trace.AddSpan(TracePhase::kCommit, 0.0, total);
  trace.SetQuery("q" + std::to_string(shard));
  return trace;
}

TEST(FlightRecorderTest, SnapshotIsNewestFirst) {
  FlightRecorder recorder(4);
  EXPECT_EQ(recorder.capacity(), 4u);
  recorder.Record(MakeTrace(TraceOp::kLookup, 0, 0.1));
  recorder.Record(MakeTrace(TraceOp::kInsert, 1, 0.2));
  recorder.Record(MakeTrace(TraceOp::kPing, 2, 0.3));
  const auto traces = recorder.Snapshot();
  ASSERT_EQ(traces.size(), 3u);
  EXPECT_EQ(traces[0].seq, 2u);
  EXPECT_EQ(traces[0].op, TraceOp::kPing);
  EXPECT_EQ(traces[1].seq, 1u);
  EXPECT_EQ(traces[2].seq, 0u);
  EXPECT_EQ(traces[2].query_view(), "q0");
  EXPECT_EQ(recorder.recorded(), 3u);
  EXPECT_EQ(recorder.dropped(), 0u);
  // max_entries truncates after the newest-first sort.
  EXPECT_EQ(recorder.Snapshot(1).size(), 1u);
  EXPECT_EQ(recorder.Snapshot(1)[0].seq, 2u);
}

TEST(FlightRecorderTest, WraparoundKeepsNewestTraces) {
  FlightRecorder recorder(4);
  for (std::uint32_t i = 0; i < 10; ++i) {
    recorder.Record(MakeTrace(TraceOp::kLookup, i, 0.001 * i));
  }
  const auto traces = recorder.Snapshot();
  ASSERT_EQ(traces.size(), 4u);
  for (std::size_t i = 0; i < traces.size(); ++i) {
    EXPECT_EQ(traces[i].seq, 9u - i);
    EXPECT_EQ(traces[i].shard, 9u - i);
  }
  EXPECT_EQ(recorder.recorded(), 10u);
  EXPECT_EQ(recorder.dropped(), 0u);
}

TEST(FlightRecorderTest, ZeroCapacityIsClampedToOne) {
  FlightRecorder recorder(0);
  EXPECT_EQ(recorder.capacity(), 1u);
  recorder.Record(MakeTrace(TraceOp::kPing, 0, 0.1));
  EXPECT_EQ(recorder.Snapshot().size(), 1u);
}

TEST(FlightRecorderTest, ConcurrentRecordsStayInternallyConsistent) {
  // Writers publish traces whose fields are correlated (total == shard);
  // concurrent snapshots must never observe a torn mix.  Run under TSan.
  FlightRecorder recorder(64);
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 5000;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};

  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (const RequestTrace& t : recorder.Snapshot()) {
        if (t.total != static_cast<double>(t.shard) ||
            t.query_view() != "q" + std::to_string(t.shard)) {
          torn.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&recorder, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        recorder.Record(MakeTrace(TraceOp::kLookup,
                                  static_cast<std::uint32_t>(w),
                                  static_cast<double>(w)));
      }
    });
  }
  for (auto& th : writers) th.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(torn.load(), 0u);
  EXPECT_EQ(recorder.recorded() + recorder.dropped(),
            static_cast<std::uint64_t>(kWriters) * kPerWriter);
  const auto traces = recorder.Snapshot();
  EXPECT_GT(traces.size(), 0u);
  EXPECT_LE(traces.size(), recorder.capacity());
}

// ---------------------------------------------------------------------------
// Engine instrumentation

class EngineTelemetryTest : public ::testing::Test {
 protected:
  EngineTelemetryTest() : world_(48, /*seed=*/47) {}

  std::unique_ptr<ConcurrentShardedEngine> MakeEngine() {
    ConcurrentEngineOptions opts;
    opts.num_shards = 4;
    opts.cache.capacity_tokens = 1e6;
    opts.housekeeping_interval_sec = 0.0;
    return std::make_unique<ConcurrentShardedEngine>(
        &world_.embedder, world_.judger.get(), opts);
  }

  MiniWorld world_;
};

TEST_F(EngineTelemetryTest, LookupAndInsertPopulateRegistry) {
  auto engine = MakeEngine();
  MetricRegistry* registry = engine->registry();
  ASSERT_NE(registry, nullptr);

  RequestTrace miss_trace;
  EXPECT_FALSE(engine->Lookup(world_.query(0, 0), &miss_trace).has_value());
  InsertRequest insert;
  insert.key = world_.query(0, 0);
  insert.value = world_.answer(0);
  insert.staticity = world_.topic(0).staticity;
  RequestTrace insert_trace;
  ASSERT_TRUE(engine->Insert(std::move(insert), &insert_trace).has_value());
  RequestTrace hit_trace;
  ASSERT_TRUE(engine->Lookup(world_.query(0, 2), &hit_trace).has_value());

  EXPECT_EQ(registry->GetCounter("cortex_engine_lookups")->Value(), 2u);
  EXPECT_EQ(registry->GetCounter("cortex_engine_hits")->Value(), 1u);
  EXPECT_EQ(registry->GetCounter("cortex_engine_misses")->Value(), 1u);
  EXPECT_EQ(registry->GetCounter("cortex_engine_inserts")->Value(), 1u);
  EXPECT_EQ(
      registry->GetHistogram("cortex_engine_probe_seconds")->Snapshot().count,
      2u);
  EXPECT_EQ(
      registry->GetHistogram("cortex_engine_insert_seconds")->Snapshot().count,
      1u);
  EXPECT_GT(registry->GetGauge("cortex_cache_entries")->Value(), 0.0);
  EXPECT_GT(registry->GetGauge("cortex_cache_tokens_resident")->Value(), 0.0);

  // The legacy Stats() view reads the same instruments.
  const ConcurrentEngineStats stats = engine->Stats();
  EXPECT_EQ(stats.lookups, 2u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.inserts, 1u);

  // Per-shard flat keys: exactly one shard saw the hit.
  std::uint64_t shard_hits = 0;
  for (std::size_t i = 0; i < engine->num_shards(); ++i) {
    shard_hits += registry
                      ->GetCounter("cortex_engine_shard" + std::to_string(i) +
                                   "_hits")
                      ->Value();
  }
  EXPECT_EQ(shard_hits, 1u);

  // Traces carry the probe spans and the owning shard.
  EXPECT_GT(hit_trace.span_count, 0u);
  bool saw_embed = false, saw_probe = false;
  for (std::uint32_t i = 0; i < hit_trace.span_count; ++i) {
    saw_embed |= hit_trace.spans[i].phase == TracePhase::kEmbed;
    saw_probe |= hit_trace.spans[i].phase == TracePhase::kAnnProbe;
  }
  EXPECT_TRUE(saw_embed);
  EXPECT_TRUE(saw_probe);
  EXPECT_EQ(hit_trace.shard,
            static_cast<std::uint32_t>(engine->ShardFor(world_.query(0, 2))));
  EXPECT_GT(insert_trace.span_count, 0u);
  EXPECT_EQ(insert_trace.spans[0].phase, TracePhase::kInsert);
}

TEST_F(EngineTelemetryTest, InjectedRegistryIsShared) {
  MetricRegistry registry;
  ConcurrentEngineOptions opts;
  opts.num_shards = 2;
  opts.cache.capacity_tokens = 1e6;
  opts.housekeeping_interval_sec = 0.0;
  opts.registry = &registry;
  ConcurrentShardedEngine engine(&world_.embedder, world_.judger.get(), opts);
  EXPECT_EQ(engine.registry(), &registry);
  engine.Lookup(world_.query(3, 0));
  EXPECT_EQ(registry.GetCounter("cortex_engine_lookups")->Value(), 1u);
}

// ---------------------------------------------------------------------------
// End-to-end over a live server

class ServerTelemetryTest : public ::testing::Test {
 protected:
  ServerTelemetryTest() : world_(48, /*seed=*/47) {}

  std::string SocketPath(const char* tag) {
    return ::testing::TempDir() + "cortex-telemetry-" + tag + "-" +
           std::to_string(::getpid()) + ".sock";
  }

  std::unique_ptr<ConcurrentShardedEngine> MakeEngine() {
    ConcurrentEngineOptions opts;
    opts.num_shards = 4;
    opts.cache.capacity_tokens = 1e6;
    opts.housekeeping_interval_sec = 0.0;
    return std::make_unique<ConcurrentShardedEngine>(
        &world_.embedder, world_.judger.get(), opts);
  }

  MiniWorld world_;
};

TEST_F(ServerTelemetryTest, ServedLookupShowsUpInExtendedStats) {
  auto engine = MakeEngine();
  ServerOptions opts;
  opts.unix_path = SocketPath("stats");
  opts.num_workers = 2;
  CortexServer server(engine.get(), opts);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  EXPECT_EQ(server.registry(), engine->registry());

  BlockingClient client;
  ASSERT_TRUE(client.ConnectUnix(opts.unix_path, &error)) << error;

  Request lookup;
  lookup.type = RequestType::kLookup;
  lookup.query = world_.query(0, 0);
  auto response = client.Call(lookup, &error);
  ASSERT_TRUE(response.has_value()) << error;
  EXPECT_EQ(response->type, ResponseType::kMiss);

  Request insert;
  insert.type = RequestType::kInsert;
  insert.key = world_.query(0, 0);
  insert.value = world_.answer(0);
  insert.staticity = world_.topic(0).staticity;
  response = client.Call(insert, &error);
  ASSERT_TRUE(response.has_value()) << error;
  ASSERT_EQ(response->type, ResponseType::kOk);

  lookup.query = world_.query(0, 2);
  response = client.Call(lookup, &error);
  ASSERT_TRUE(response.has_value()) << error;
  ASSERT_EQ(response->type, ResponseType::kHit);

  Request stats;
  stats.type = RequestType::kStats;
  response = client.Call(stats, &error);
  ASSERT_TRUE(response.has_value()) << error;
  ASSERT_EQ(response->type, ResponseType::kStats);

  std::map<std::string, std::string> kv(response->stats.begin(),
                                        response->stats.end());
  // Legacy flat keys survive unchanged...
  EXPECT_EQ(kv.at("lookups"), "2");
  EXPECT_EQ(kv.at("hits"), "1");
  // ...and the registry's namespaced keys ride along in the same frame.
  EXPECT_EQ(kv.at("cortex_engine_lookups"), "2");
  EXPECT_EQ(kv.at("cortex_engine_hits"), "1");
  EXPECT_EQ(kv.at("cortex_engine_misses"), "1");
  EXPECT_EQ(kv.at("cortex_engine_inserts"), "1");
  EXPECT_EQ(kv.at("cortex_engine_probe_seconds_count"), "2");
  EXPECT_TRUE(kv.count("cortex_engine_probe_seconds_p50"));
  EXPECT_TRUE(kv.count("cortex_engine_probe_seconds_p99"));
  EXPECT_TRUE(kv.count("cortex_server_request_seconds_p99"));
  EXPECT_TRUE(kv.count("cortex_server_queue_depth"));
  EXPECT_TRUE(kv.count("cortex_cache_evictions"));
  // 3 requests executed so far (the STATS frame itself races the count).
  EXPECT_GE(std::stoull(kv.at("cortex_server_requests_served")), 3ull);
  EXPECT_GE(std::stoull(kv.at("cortex_server_request_seconds_count")), 3ull);
  EXPECT_GE(std::stoull(kv.at("flight_recorder_recorded")), 3ull);

  // The ServerStats view and the registry agree.
  const ServerStats view = server.stats();
  EXPECT_EQ(view.requests_served,
            server.registry()
                ->GetCounter("cortex_server_requests_served")
                ->Value());
  EXPECT_EQ(view.connections_accepted, 1u);

  server.Stop();
}

TEST_F(ServerTelemetryTest, DumpTraceReturnsRecentRequests) {
  auto engine = MakeEngine();
  ServerOptions opts;
  opts.unix_path = SocketPath("dump");
  opts.num_workers = 1;
  opts.flight_recorder_capacity = 8;
  CortexServer server(engine.get(), opts);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  BlockingClient client;
  ASSERT_TRUE(client.ConnectUnix(opts.unix_path, &error)) << error;

  Request lookup;
  lookup.type = RequestType::kLookup;
  for (int i = 0; i < 3; ++i) {
    lookup.query = world_.query(static_cast<std::size_t>(i), 0);
    ASSERT_TRUE(client.Call(lookup, &error).has_value()) << error;
  }

  Request dump;
  dump.type = RequestType::kDumpTrace;
  dump.max_traces = 16;
  const auto response = client.Call(dump, &error);
  ASSERT_TRUE(response.has_value()) << error;
  ASSERT_EQ(response->type, ResponseType::kTraces);
  EXPECT_GE(response->id, 3u);  // id carries the trace count
  EXPECT_NE(response->message.find("LOOKUP miss"), std::string::npos);
  EXPECT_NE(response->message.find("queue_wait="), std::string::npos);
  EXPECT_NE(response->message.find("ann_probe="), std::string::npos);

  // A bounded dump returns exactly that many traces, newest first.
  dump.max_traces = 2;
  const auto bounded = client.Call(dump, &error);
  ASSERT_TRUE(bounded.has_value()) << error;
  ASSERT_EQ(bounded->type, ResponseType::kTraces);
  EXPECT_EQ(bounded->id, 2u);

  server.Stop();
}

}  // namespace
}  // namespace cortex
