#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

namespace cortex {
namespace {

TEST(SplitMix64, DeterministicSequence) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Mix64, AvalanchesSingleBitFlips) {
  // Flipping one input bit should flip roughly half the output bits.
  const std::uint64_t base = Mix64(0x123456789abcdef0ULL);
  int total_flips = 0;
  for (int bit = 0; bit < 64; ++bit) {
    const std::uint64_t flipped = Mix64(0x123456789abcdef0ULL ^ (1ULL << bit));
    total_flips += __builtin_popcountll(base ^ flipped);
  }
  const double avg = total_flips / 64.0;
  EXPECT_GT(avg, 24.0);
  EXPECT_LT(avg, 40.0);
}

TEST(Rng, ReproducibleAfterReseed) {
  Rng rng(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 50; ++i) first.push_back(rng.NextU64());
  rng.Reseed(7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.NextU64(), first[i]);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(5);
  for (std::uint64_t n : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBelow(n), n);
    }
  }
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng rng(11);
  constexpr std::uint64_t kBuckets = 10;
  constexpr int kSamples = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) {
    ++counts[rng.NextBelow(kBuckets)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kSamples / kBuckets, 500);
  }
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NormalMatchesMoments) {
  Rng rng(17);
  double sum = 0, sumsq = 0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.Normal(2.0, 3.0);
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / kN;
  const double var = sumsq / kN - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  Rng rng(19);
  double sum = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.Exponential(4.0);
  EXPECT_NEAR(sum / kN, 0.25, 0.01);
}

TEST(Rng, LogNormalIsPositive) {
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(rng.LogNormal(-1.0, 0.8), 0.0);
  }
}

TEST(Rng, ParetoRespectsScaleFloor) {
  Rng rng(29);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.Pareto(1.5, 2.0), 1.5);
  }
}

TEST(Rng, BernoulliFrequencyTracksP) {
  Rng rng(31);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / static_cast<double>(kN), 0.3, 0.01);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(37);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.Shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, WeightedIndexFollowsWeights) {
  Rng rng(41);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  constexpr int kN = 40000;
  for (int i = 0; i < kN; ++i) ++counts[rng.WeightedIndex(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(kN), 0.25, 0.02);
  EXPECT_NEAR(counts[2] / static_cast<double>(kN), 0.75, 0.02);
}

// --- ZipfSampler ---

TEST(ZipfSampler, PmfSumsToOne) {
  const ZipfSampler zipf(100, 0.99);
  double total = 0;
  for (std::size_t r = 0; r < 100; ++r) total += zipf.Pmf(r);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfSampler, PmfIsDecreasingInRank) {
  const ZipfSampler zipf(50, 1.2);
  for (std::size_t r = 1; r < 50; ++r) {
    EXPECT_GT(zipf.Pmf(r - 1), zipf.Pmf(r));
  }
}

TEST(ZipfSampler, SingleItemUniverse) {
  const ZipfSampler zipf(1, 0.99);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.Sample(rng), 0u);
  EXPECT_NEAR(zipf.Pmf(0), 1.0, 1e-12);
}

TEST(ZipfSampler, EmpiricalFrequenciesMatchPmf) {
  const ZipfSampler zipf(20, 0.99);
  Rng rng(43);
  std::vector<int> counts(20, 0);
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) ++counts[zipf.Sample(rng)];
  for (std::size_t r = 0; r < 20; ++r) {
    EXPECT_NEAR(counts[r] / static_cast<double>(kN), zipf.Pmf(r), 0.01)
        << "rank " << r;
  }
}

// Parameterized sweep: Zipf head share grows with the exponent.
class ZipfSkewTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfSkewTest, HeadShareGrowsWithSkew) {
  const double s = GetParam();
  const ZipfSampler zipf(1000, s);
  double head = 0;
  for (std::size_t r = 0; r < 10; ++r) head += zipf.Pmf(r);
  // Reference: head share at s=0.5 is ~0.09; at 1.5 it is ~0.86.
  if (s >= 1.5) {
    EXPECT_GT(head, 0.7);
  }
  if (s <= 0.5) {
    EXPECT_LT(head, 0.15);
  }
  // Always more concentrated than uniform.
  EXPECT_GT(head, 10.0 / 1000.0);
}

INSTANTIATE_TEST_SUITE_P(Skews, ZipfSkewTest,
                         ::testing::Values(0.5, 0.8, 0.99, 1.2, 1.5));

}  // namespace
}  // namespace cortex
