// Tests for the ranked-mutex lock-order checker (src/util/ranked_mutex.h).
//
// The checker defaults to on only in debug builds; SetLockOrderChecksForTesting
// forces it on here so the inversion death-tests work in every build type.
#include "util/ranked_mutex.h"

#include <gtest/gtest.h>

#include <thread>

namespace cortex {
namespace {

class RankedMutexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Re-exec the binary for death tests instead of bare fork(): the
    // fork-only default misbehaves under TSan's background threads.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    SetLockOrderChecksForTesting(true);
  }
  void TearDown() override { SetLockOrderChecksForTesting(false); }
};

using RankedMutexDeathTest = RankedMutexTest;

TEST_F(RankedMutexTest, IncreasingRankOrderIsAccepted) {
  RankedMutex low(LockRank::kServerQueue, "low");
  RankedMutex mid(LockRank::kEngineHousekeeping, "mid");
  RankedSharedMutex leaf(LockRank::kEngineShard, "leaf");
  MutexLock l1(low);
  MutexLock l2(mid);
  ReaderLock l3(leaf);
}

TEST_F(RankedMutexTest, ReacquireAfterReleaseIsAccepted) {
  // The serving tier's hot pattern: shared probe, release, exclusive
  // commit on the SAME rank — legal because nothing is held in between.
  RankedSharedMutex shard(LockRank::kEngineShard, "shard.mu");
  {
    ReaderLock probe(shard);
  }
  {
    WriterLock commit(shard);
  }
}

TEST_F(RankedMutexTest, TryLockParticipatesInTracking) {
  RankedMutex low(LockRank::kServerQueue, "low");
  ASSERT_TRUE(low.try_lock());
  low.unlock();
}

TEST_F(RankedMutexTest, IndependentThreadsHaveIndependentStacks) {
  RankedMutex low(LockRank::kServerQueue, "low");
  RankedMutex high(LockRank::kEngineShard, "high");
  MutexLock hold_high(high);
  // Another thread may take the low-ranked lock: held-lock stacks are
  // per-thread, and the mutexes themselves still synchronise as usual.
  std::thread other([&] { MutexLock l(low); });
  other.join();
}

TEST_F(RankedMutexDeathTest, RankInversionAborts) {
  RankedMutex low(LockRank::kServerQueue, "server.queue_mu");
  RankedSharedMutex shard(LockRank::kEngineShard, "shard.mu");
  EXPECT_DEATH(
      {
        WriterLock hold_shard(shard);
        MutexLock inversion(low);  // 10 after 50: deadlock-shaped
      },
      "lock-order inversion: acquiring 'server.queue_mu' \\(rank 10\\) "
      "while holding 'shard.mu' \\(rank 50\\)");
}

TEST_F(RankedMutexDeathTest, SameRankReacquisitionAborts) {
  // Two shard mutexes at once — the documented "at most one shard lock"
  // invariant — must trip the checker even though the ranks are equal.
  RankedSharedMutex shard_a(LockRank::kEngineShard, "shard_a.mu");
  RankedSharedMutex shard_b(LockRank::kEngineShard, "shard_b.mu");
  EXPECT_DEATH(
      {
        ReaderLock hold_a(shard_a);
        ReaderLock hold_b(shard_b);
      },
      "lock-order inversion: acquiring 'shard_b.mu' \\(rank 50\\) "
      "while holding 'shard_a.mu' \\(rank 50\\)");
}

TEST_F(RankedMutexDeathTest, ReleasingUnheldRankAborts) {
  RankedMutex low(LockRank::kServerQueue, "low");
  EXPECT_DEATH(low.unlock(), "releasing rank 10");
}

TEST_F(RankedMutexTest, CheckerOffIgnoresInversion) {
  SetLockOrderChecksForTesting(false);
  RankedMutex low(LockRank::kServerQueue, "low");
  RankedSharedMutex shard(LockRank::kEngineShard, "shard.mu");
  WriterLock hold_shard(shard);
  MutexLock inversion(low);  // tolerated (release-build default)
}

}  // namespace
}  // namespace cortex
