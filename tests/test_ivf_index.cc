#include "ann/ivf_index.h"

#include <gtest/gtest.h>

#include "ann/flat_index.h"
#include "util/rng.h"

namespace cortex {
namespace {

Vector RandomUnit(std::size_t dim, Rng& rng) {
  Vector v(dim);
  for (auto& x : v) x = static_cast<float>(rng.Normal());
  Normalize(v);
  return v;
}

TEST(IvfIndex, UntrainedFallsBackToExactScan) {
  IvfIndex idx(8);
  Rng rng(1);
  for (VectorId i = 0; i < 10; ++i) idx.Add(i, RandomUnit(8, rng));
  EXPECT_FALSE(idx.is_trained());
  const auto q = *idx.Get(3);
  const auto r = idx.Search(q, 1, -1.0);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].id, 3u);
  EXPECT_NEAR(r[0].similarity, 1.0, 1e-6);
}

TEST(IvfIndex, TrainsAutomaticallyAtThreshold) {
  IvfOptions opts;
  opts.num_lists = 4;
  opts.train_points_per_list = 4;
  IvfIndex idx(8, opts);
  Rng rng(2);
  for (VectorId i = 0; i < 16; ++i) idx.Add(i, RandomUnit(8, rng));
  EXPECT_TRUE(idx.is_trained());
}

TEST(IvfIndex, SelfQueryFindsSelfAfterTraining) {
  IvfOptions opts;
  opts.num_lists = 4;
  opts.num_probes = 4;  // probe everything: recall must be exact
  IvfIndex idx(8, opts);
  Rng rng(3);
  for (VectorId i = 0; i < 64; ++i) idx.Add(i, RandomUnit(8, rng));
  ASSERT_TRUE(idx.is_trained());
  for (VectorId i = 0; i < 64; ++i) {
    const auto r = idx.Search(*idx.Get(i), 1, -1.0);
    ASSERT_FALSE(r.empty());
    EXPECT_EQ(r[0].id, i);
  }
}

TEST(IvfIndex, RecallCloseToFlatWithPartialProbes) {
  constexpr std::size_t kDim = 16, kN = 400;
  IvfOptions opts;
  opts.num_lists = 16;
  opts.num_probes = 6;
  IvfIndex ivf(kDim, opts);
  FlatIndex flat(kDim);
  Rng rng(4);
  for (VectorId i = 0; i < kN; ++i) {
    const auto v = RandomUnit(kDim, rng);
    ivf.Add(i, v);
    flat.Add(i, v);
  }
  ASSERT_TRUE(ivf.is_trained());
  int found = 0, total = 0;
  for (int t = 0; t < 50; ++t) {
    const auto q = RandomUnit(kDim, rng);
    const auto truth = flat.Search(q, 5, -1.0);
    const auto approx = ivf.Search(q, 5, -1.0);
    for (const auto& tr : truth) {
      ++total;
      for (const auto& ap : approx) {
        if (ap.id == tr.id) {
          ++found;
          break;
        }
      }
    }
  }
  EXPECT_GT(static_cast<double>(found) / total, 0.6);
}

TEST(IvfIndex, ProbingFewerListsDoesLessWork) {
  constexpr std::size_t kDim = 16, kN = 400;
  IvfOptions narrow, wide;
  narrow.num_lists = wide.num_lists = 16;
  narrow.num_probes = 1;
  wide.num_probes = 16;
  IvfIndex a(kDim, narrow), b(kDim, wide);
  Rng rng(5);
  for (VectorId i = 0; i < kN; ++i) {
    const auto v = RandomUnit(kDim, rng);
    a.Add(i, v);
    b.Add(i, v);
  }
  const auto q = RandomUnit(kDim, rng);
  const auto da0 = a.distance_computations();
  const auto db0 = b.distance_computations();
  a.Search(q, 5, -1.0);
  b.Search(q, 5, -1.0);
  EXPECT_LT(a.distance_computations() - da0, b.distance_computations() - db0);
}

TEST(IvfIndex, RemoveWorksBeforeAndAfterTraining) {
  IvfOptions opts;
  opts.num_lists = 4;
  opts.train_points_per_list = 8;
  IvfIndex idx(8, opts);
  Rng rng(6);
  idx.Add(100, RandomUnit(8, rng));
  EXPECT_TRUE(idx.Remove(100));
  EXPECT_FALSE(idx.Remove(100));
  for (VectorId i = 0; i < 40; ++i) idx.Add(i, RandomUnit(8, rng));
  ASSERT_TRUE(idx.is_trained());
  EXPECT_TRUE(idx.Remove(5));
  EXPECT_FALSE(idx.Contains(5));
  const auto r = idx.Search(RandomUnit(8, rng), 40, -1.0);
  for (const auto& res : r) EXPECT_NE(res.id, 5u);
}

TEST(IvfIndex, ReAddReplacesAndRelists) {
  IvfOptions opts;
  opts.num_lists = 2;
  opts.train_points_per_list = 2;
  IvfIndex idx(4, opts);
  Rng rng(7);
  for (VectorId i = 0; i < 8; ++i) idx.Add(i, RandomUnit(4, rng));
  ASSERT_TRUE(idx.is_trained());
  const auto v = RandomUnit(4, rng);
  idx.Add(3, v);
  EXPECT_EQ(idx.size(), 8u);
  const auto r = idx.Search(v, 1, -1.0);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].id, 3u);
}

TEST(IvfIndex, ManualTrainOnSmallCorpusIsSafe) {
  IvfIndex idx(4);
  Rng rng(8);
  idx.Add(0, RandomUnit(4, rng));
  idx.Train();  // fewer points than lists: stays untrained
  EXPECT_FALSE(idx.is_trained());
}

}  // namespace
}  // namespace cortex
