#include "llm/agent_model.h"

#include <gtest/gtest.h>

namespace cortex {
namespace {

AgentTask TwoStepTask() {
  AgentTask task;
  task.id = 42;
  task.description = "find the painter and the museum";
  task.steps.push_back({"I need the painter.", "who painted the mona lisa",
                        "Leonardo da Vinci painted it."});
  task.steps.push_back({"Now the museum.", "where is the mona lisa displayed",
                        "The Louvre, Paris."});
  task.final_think = "I can answer now.";
  task.final_answer = "Leonardo da Vinci; the Louvre";
  return task;
}

TEST(AgentModel, WalksThinkActObserveLoop) {
  AgentModel model;
  AgentSession session(TwoStepTask());

  const AgentTurn t1 = model.Next(session);
  ASSERT_TRUE(t1.tool_query.has_value());
  EXPECT_EQ(*t1.tool_query, "who painted the mona lisa");
  EXPECT_FALSE(t1.answer.has_value());
  EXPECT_FALSE(session.finished());

  const AgentTurn t2 = model.Next(session, "Leonardo da Vinci painted it.");
  ASSERT_TRUE(t2.tool_query.has_value());
  EXPECT_EQ(*t2.tool_query, "where is the mona lisa displayed");

  const AgentTurn t3 = model.Next(session, "The Louvre, Paris.");
  EXPECT_FALSE(t3.tool_query.has_value());
  ASSERT_TRUE(t3.answer.has_value());
  EXPECT_EQ(*t3.answer, "Leonardo da Vinci; the Louvre");
  EXPECT_TRUE(session.finished());
  EXPECT_EQ(session.observations().size(), 2u);
}

TEST(AgentModel, OutputIsWellFormedTaggedText) {
  AgentModel model;
  AgentSession session(TwoStepTask());
  const AgentTurn t1 = model.Next(session);
  const auto segs = ParseTagged(t1.text);
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0].kind, TagKind::kThink);
  EXPECT_EQ(segs[1].kind, TagKind::kSearch);
  const auto tool = FirstToolCall(segs);
  ASSERT_TRUE(tool.has_value());
  EXPECT_EQ(tool->content, *t1.tool_query);
}

TEST(AgentModel, ContextGrowsMonotonically) {
  AgentModel model;
  AgentSession session(TwoStepTask());
  const std::size_t c0 = session.context_tokens();
  EXPECT_GT(c0, 0u);  // task description is in context
  model.Next(session);
  const std::size_t c1 = session.context_tokens();
  EXPECT_GT(c1, c0);
  model.Next(session, "observation one");
  EXPECT_GT(session.context_tokens(), c1);
}

TEST(AgentModel, PromptTokensReflectAccumulatedContext) {
  AgentModel model;
  AgentSession session(TwoStepTask());
  const AgentTurn t1 = model.Next(session);
  const AgentTurn t2 = model.Next(session, "some retrieved info");
  EXPECT_GT(t2.prompt_tokens, t1.prompt_tokens);
  EXPECT_GT(t1.output_tokens, 0u);
}

TEST(AgentModel, ZeroStepTaskAnswersImmediately) {
  AgentTask task;
  task.id = 1;
  task.description = "trivial";
  task.final_answer = "42";
  AgentModel model;
  AgentSession session(std::move(task));
  const AgentTurn t = model.Next(session);
  EXPECT_FALSE(t.tool_query.has_value());
  ASSERT_TRUE(t.answer.has_value());
  EXPECT_TRUE(session.finished());
}

TEST(AgentModel, TurnSecondsScaleWithComputeShare) {
  AgentModel model;
  AgentSession session(TwoStepTask());
  const AgentTurn t = model.Next(session);
  EXPECT_GT(model.TurnSeconds(t, 0.5), model.TurnSeconds(t, 1.0));
}

TEST(AnswerIsCorrect, WrongObservationForcesIncorrect) {
  AgentTask task = TwoStepTask();
  task.base_correctness = 1.0;
  EXPECT_TRUE(AnswerIsCorrect(task, true));
  EXPECT_FALSE(AnswerIsCorrect(task, false));
}

TEST(AnswerIsCorrect, DeterministicPerTaskId) {
  AgentTask task = TwoStepTask();
  task.base_correctness = 0.5;
  const bool first = AnswerIsCorrect(task, true);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(AnswerIsCorrect(task, true), first);
  }
}

TEST(AnswerIsCorrect, RateTracksBaseCorrectness) {
  int correct = 0;
  constexpr int kN = 2000;
  for (int i = 0; i < kN; ++i) {
    AgentTask task;
    task.id = static_cast<std::uint64_t>(i);
    task.base_correctness = 0.7;
    correct += AnswerIsCorrect(task, true) ? 1 : 0;
  }
  EXPECT_NEAR(correct / static_cast<double>(kN), 0.7, 0.03);
}

}  // namespace
}  // namespace cortex
