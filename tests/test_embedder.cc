#include "embedding/hashed_embedder.h"

#include <gtest/gtest.h>

#include "util/stats.h"

namespace cortex {
namespace {

TEST(HashedEmbedder, OutputIsUnitLength) {
  HashedEmbedder e;
  for (const char* text :
       {"who painted the mona lisa", "apple", "a", "tokyo weather forecast"}) {
    EXPECT_NEAR(L2Norm(e.Embed(text)), 1.0, 1e-5) << text;
  }
}

TEST(HashedEmbedder, Deterministic) {
  HashedEmbedder e;
  EXPECT_EQ(e.Embed("everest height"), e.Embed("everest height"));
}

TEST(HashedEmbedder, DimensionIsConfigurable) {
  HashedEmbedderOptions opts;
  opts.dimension = 64;
  HashedEmbedder e(opts);
  EXPECT_EQ(e.dimension(), 64u);
  EXPECT_EQ(e.Embed("x").size(), 64u);
}

TEST(HashedEmbedder, DifferentSeedIsADifferentModel) {
  HashedEmbedderOptions a_opts, b_opts;
  b_opts.hash_seed = 12345;
  HashedEmbedder a(a_opts), b(b_opts);
  EXPECT_LT(CosineSimilarity(a.Embed("everest height"),
                             b.Embed("everest height")),
            0.9);
}

TEST(HashedEmbedder, StopwordsDoNotMoveTheVector) {
  HashedEmbedder e;
  const auto base = e.Embed("everest height");
  const auto decorated = e.Embed("what is the everest height please");
  EXPECT_NEAR(CosineSimilarity(base, decorated), 1.0, 1e-5);
}

TEST(HashedEmbedder, WordOrderBarelyMatters) {
  HashedEmbedder e;
  const double sim = CosineSimilarity(e.Embed("apple nutrition facts"),
                                      e.Embed("facts nutrition apple"));
  EXPECT_GT(sim, 0.9);
}

TEST(HashedEmbedder, SharedContentWordsIncreaseSimilarity) {
  HashedEmbedder e;
  const auto apple_nutrition = e.Embed("apple nutrition");
  const double trap = CosineSimilarity(apple_nutrition,
                                       e.Embed("apple stock price"));
  const double unrelated = CosineSimilarity(apple_nutrition,
                                            e.Embed("everest height"));
  EXPECT_GT(trap, unrelated);
  EXPECT_GT(trap, 0.2);
  EXPECT_LT(unrelated, 0.2);
}

TEST(HashedEmbedder, ParaphraseAboveTrapAboveRandomOnAverage) {
  HashedEmbedder e;
  // The calibrated ordering that Sine's thresholds rely on.
  StreamingStats para, trap, rnd;
  const char* entities[] = {"everest", "louvre", "bitcoin", "tokyo",
                            "beethoven"};
  const char* aspects[] = {"height", "history", "forecast", "origin",
                           "biography"};
  for (const char* ent : entities) {
    for (const char* asp : aspects) {
      const std::string q1 = std::string("what is the ") + asp + " of " + ent;
      const std::string q2 = std::string(ent) + " " + asp + " details";
      const std::string tq = std::string(ent) + " " + asp + " myths";
      para.Add(CosineSimilarity(e.Embed(q1), e.Embed(q2)));
      trap.Add(CosineSimilarity(e.Embed(q1), e.Embed(tq)));
      rnd.Add(CosineSimilarity(e.Embed(q1),
                               e.Embed("unrelated quantum banana")));
    }
  }
  EXPECT_GT(para.mean(), trap.mean());
  EXPECT_GT(trap.mean(), rnd.mean());
  EXPECT_GT(para.mean(), 0.6);
  EXPECT_LT(rnd.mean(), 0.2);
}

TEST(HashedEmbedder, DegenerateInputStillEmbedsConsistently) {
  HashedEmbedder e;
  // All-stopword input hashes the raw text instead of collapsing to zero.
  const auto a = e.Embed("the of and");
  EXPECT_NEAR(L2Norm(a), 1.0, 1e-5);
  EXPECT_EQ(a, e.Embed("the of and"));
  // And differs from another degenerate input.
  EXPECT_LT(CosineSimilarity(a, e.Embed("is it so")), 0.99);
}

TEST(HashedEmbedder, BigramWeightAddsOrderSensitivity) {
  HashedEmbedderOptions heavy;
  heavy.bigram_weight = 1.0;
  HashedEmbedderOptions none;
  none.bigram_weight = 0.0;
  HashedEmbedder with_bigrams(heavy), without(none);
  const double sim_with =
      CosineSimilarity(with_bigrams.Embed("red apple pie tin"),
                       with_bigrams.Embed("tin pie apple red"));
  const double sim_without = CosineSimilarity(
      without.Embed("red apple pie tin"), without.Embed("tin pie apple red"));
  EXPECT_NEAR(sim_without, 1.0, 1e-5);
  EXPECT_LT(sim_with, sim_without);
}

TEST(HashedEmbedder, SublinearTfDampensRepetition) {
  HashedEmbedder e;
  const double sim = CosineSimilarity(
      e.Embed("apple"), e.Embed("apple apple apple apple apple"));
  // Repetition only perturbs via self-bigrams; direction barely moves.
  EXPECT_GT(sim, 0.9);
}

TEST(HashedEmbedder, IdfWeightsSeparateContentFromBoilerplate) {
  HashedEmbedder e;
  EXPECT_DOUBLE_EQ(e.IdfWeight("anything"), 1.0);  // unfitted: neutral
  std::vector<std::string> corpus;
  for (int i = 0; i < 100; ++i) {
    corpus.push_back("find the height of entity_" + std::to_string(i));
  }
  e.FitIdf(corpus);
  ASSERT_TRUE(e.has_idf());
  // "find"/"height" appear in every document; entity tokens in one.
  EXPECT_LT(e.IdfWeight("find"), e.IdfWeight("entity_3"));
  // Unseen tokens are treated as maximally rare.
  EXPECT_GE(e.IdfWeight("neverseen"), e.IdfWeight("entity_3"));
}

TEST(HashedEmbedder, IdfImprovesParaphraseVsTemplateSeparation) {
  std::vector<std::string> corpus;
  const char* entities[] = {"everest", "louvre", "bitcoin", "tokyo"};
  const char* aspects[] = {"height", "history", "forecast", "origin"};
  for (const char* ent : entities) {
    for (const char* asp : aspects) {
      corpus.push_back(std::string("what is the ") + asp + " of " + ent);
      corpus.push_back(std::string("give me ") + ent + " " + asp + " facts");
      corpus.push_back(std::string("search ") + ent + " " + asp);
    }
  }
  HashedEmbedder plain;
  HashedEmbedder fitted;
  fitted.FitIdf(corpus);
  // Same topic, different templates vs same template, different topic.
  auto sep = [](const HashedEmbedder& e) {
    const double same_topic = CosineSimilarity(
        e.Embed("give me everest height facts"),
        e.Embed("search everest height"));
    const double same_template = CosineSimilarity(
        e.Embed("give me everest height facts"),
        e.Embed("give me bitcoin forecast facts"));
    return same_topic - same_template;
  };
  EXPECT_GT(sep(fitted), sep(plain));
}

}  // namespace
}  // namespace cortex
