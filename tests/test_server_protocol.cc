// Wire-protocol tests: frame encode/decode round-trips, truncated and
// oversized frame rejection, request/response grammar, and an in-process
// server end-to-end pass including the BUSY backpressure path.
#include "serve/protocol.h"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.h"
#include "serve/server.h"
#include "test_helpers.h"

namespace cortex {
namespace {

using namespace cortex::serve;
using cortex::testing::MiniWorld;

// ---------------------------------------------------------------------------
// Framing

TEST(FrameTest, RoundTripSingleFrame) {
  std::string wire;
  const std::string payload_in = "LOOKUP\thello world";
  AppendFrame(payload_in, wire);
  ASSERT_EQ(wire.size(), kFrameHeaderBytes + payload_in.size());

  FrameDecoder decoder;
  decoder.Feed(wire);
  std::string payload;
  ASSERT_EQ(decoder.Next(&payload), FrameDecoder::Status::kFrame);
  EXPECT_EQ(payload, "LOOKUP\thello world");
  EXPECT_EQ(decoder.Next(&payload), FrameDecoder::Status::kNeedMore);
  EXPECT_FALSE(decoder.MidFrame());
}

TEST(FrameTest, ByteAtATimeFeedingReassembles) {
  std::string wire;
  AppendFrame("PING", wire);
  AppendFrame("STATS", wire);

  FrameDecoder decoder;
  std::string payload;
  std::vector<std::string> frames;
  for (const char c : wire) {
    decoder.Feed(std::string_view(&c, 1));
    while (decoder.Next(&payload) == FrameDecoder::Status::kFrame) {
      frames.push_back(payload);
    }
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0], "PING");
  EXPECT_EQ(frames[1], "STATS");
}

TEST(FrameTest, TruncatedFrameIsDetectable) {
  std::string wire;
  AppendFrame("LOOKUP\tsome query", wire);
  FrameDecoder decoder;
  decoder.Feed(std::string_view(wire).substr(0, wire.size() - 3));
  std::string payload;
  EXPECT_EQ(decoder.Next(&payload), FrameDecoder::Status::kNeedMore);
  // At connection EOF this state means the peer truncated mid-frame.
  EXPECT_TRUE(decoder.MidFrame());
}

TEST(FrameTest, OversizedFrameIsRejectedAndSticky) {
  FrameDecoder decoder(/*max_frame_bytes=*/16);
  std::string wire;
  AppendFrame(std::string(17, 'x'), wire);
  decoder.Feed(wire);
  std::string payload;
  EXPECT_EQ(decoder.Next(&payload), FrameDecoder::Status::kOversized);
  // Poisoned: even a well-formed follow-up frame is not decoded.
  std::string good;
  AppendFrame("PING", good);
  decoder.Feed(good);
  EXPECT_EQ(decoder.Next(&payload), FrameDecoder::Status::kOversized);
}

TEST(FrameTest, EmptyPayloadRoundTrips) {
  std::string wire;
  AppendFrame("", wire);
  FrameDecoder decoder;
  decoder.Feed(wire);
  std::string payload = "sentinel";
  ASSERT_EQ(decoder.Next(&payload), FrameDecoder::Status::kFrame);
  EXPECT_TRUE(payload.empty());
}

// ---------------------------------------------------------------------------
// Request grammar

TEST(RequestGrammarTest, LookupRoundTrip) {
  Request request;
  request.type = RequestType::kLookup;
  request.query = "what is the height of everest";
  const auto parsed = ParseRequest(EncodePayload(request));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->type, RequestType::kLookup);
  EXPECT_EQ(parsed->query, request.query);
}

TEST(RequestGrammarTest, InsertRoundTripPreservesTabsInValue) {
  Request request;
  request.type = RequestType::kInsert;
  request.staticity = 7.25;
  request.key = "everest height";
  request.value = "8849 m\tfirst measured 1856";  // value may contain tabs
  const auto parsed = ParseRequest(EncodePayload(request));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->type, RequestType::kInsert);
  EXPECT_DOUBLE_EQ(parsed->staticity, 7.25);
  EXPECT_EQ(parsed->key, request.key);
  EXPECT_EQ(parsed->value, request.value);
}

TEST(RequestGrammarTest, PingAndStatsRoundTrip) {
  for (const RequestType type : {RequestType::kPing, RequestType::kStats}) {
    Request request;
    request.type = type;
    const auto parsed = ParseRequest(EncodePayload(request));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->type, type);
  }
}

TEST(RequestGrammarTest, MalformedRequestsAreRejected) {
  std::string error;
  EXPECT_FALSE(ParseRequest("", &error).has_value());
  EXPECT_FALSE(ParseRequest("NOPE\tx", &error).has_value());
  EXPECT_FALSE(ParseRequest("LOOKUP", &error).has_value());
  EXPECT_FALSE(ParseRequest("LOOKUP\t", &error).has_value());
  EXPECT_FALSE(ParseRequest("INSERT\tnotanumber\tk\tv", &error).has_value());
  EXPECT_FALSE(ParseRequest("INSERT\t5", &error).has_value());
  EXPECT_FALSE(ParseRequest("INSERT\t5\tkey", &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(RequestGrammarTest, TenantLookupRoundTrip) {
  Request request;
  request.type = RequestType::kTenantLookup;
  request.tenant = "acme";
  request.query = "what is the height of everest";
  const auto parsed = ParseRequest(EncodePayload(request));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->type, RequestType::kTenantLookup);
  EXPECT_EQ(parsed->tenant, "acme");
  EXPECT_EQ(parsed->query, request.query);
}

TEST(RequestGrammarTest, TenantInsertRoundTrip) {
  Request request;
  request.type = RequestType::kTenantInsert;
  request.tenant = "acme";
  request.shareable = false;
  request.staticity = 7.25;
  request.key = "everest height";
  request.value = "8849 m\tfirst measured 1856";  // value may contain tabs
  const auto parsed = ParseRequest(EncodePayload(request));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->type, RequestType::kTenantInsert);
  EXPECT_EQ(parsed->tenant, "acme");
  EXPECT_FALSE(parsed->shareable);
  EXPECT_DOUBLE_EQ(parsed->staticity, 7.25);
  EXPECT_EQ(parsed->key, request.key);
  EXPECT_EQ(parsed->value, request.value);

  request.shareable = true;
  const auto shared = ParseRequest(EncodePayload(request));
  ASSERT_TRUE(shared.has_value());
  EXPECT_TRUE(shared->shareable);
}

TEST(RequestGrammarTest, MalformedTenantRequestsAreRejected) {
  std::string error;
  // Missing / invalid tenant ids (empty, reserved bytes, oversized).
  EXPECT_FALSE(ParseRequest("TLOOKUP", &error).has_value());
  EXPECT_FALSE(ParseRequest("TLOOKUP\t\tquery", &error).has_value());
  EXPECT_FALSE(ParseRequest("TLOOKUP\ta|b\tquery", &error).has_value());
  EXPECT_FALSE(ParseRequest("TLOOKUP\ta=b\tquery", &error).has_value());
  EXPECT_FALSE(
      ParseRequest("TLOOKUP\t" + std::string(65, 'a') + "\tquery", &error)
          .has_value());
  // Missing query / fields.
  EXPECT_FALSE(ParseRequest("TLOOKUP\tacme", &error).has_value());
  EXPECT_FALSE(ParseRequest("TLOOKUP\tacme\t", &error).has_value());
  // Bad shareable literal and truncated TINSERT forms.
  EXPECT_FALSE(
      ParseRequest("TINSERT\tacme\tyes\t5\tk\tv", &error).has_value());
  EXPECT_FALSE(ParseRequest("TINSERT\tacme\t1\tNaNish\tk\tv", &error)
                   .has_value());
  EXPECT_FALSE(ParseRequest("TINSERT\tacme\t1\t5", &error).has_value());
  EXPECT_FALSE(ParseRequest("TINSERT\tacme\t1\t5\tkey", &error).has_value());
  EXPECT_FALSE(error.empty());
}

// ---------------------------------------------------------------------------
// Response grammar

TEST(ResponseGrammarTest, HitRoundTrip) {
  Response response;
  response.type = ResponseType::kHit;
  response.similarity = 0.875;
  response.judger_score = 0.96875;
  response.matched_key = "everest height";
  response.value = "8849 m";
  const auto parsed = ParseResponse(EncodePayload(response));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->type, ResponseType::kHit);
  EXPECT_DOUBLE_EQ(parsed->similarity, 0.875);
  EXPECT_DOUBLE_EQ(parsed->judger_score, 0.96875);
  EXPECT_EQ(parsed->matched_key, "everest height");
  EXPECT_EQ(parsed->value, "8849 m");
}

TEST(ResponseGrammarTest, SimpleKindsRoundTrip) {
  for (const ResponseType type :
       {ResponseType::kMiss, ResponseType::kReject, ResponseType::kPong,
        ResponseType::kBusy}) {
    Response response;
    response.type = type;
    const auto parsed = ParseResponse(EncodePayload(response));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->type, type);
  }
  Response ok;
  ok.type = ResponseType::kOk;
  ok.id = 12345678901ULL;
  const auto parsed = ParseResponse(EncodePayload(ok));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->id, 12345678901ULL);
}

TEST(ResponseGrammarTest, StatsRoundTrip) {
  Response response;
  response.type = ResponseType::kStats;
  response.stats = {{"lookups", "10"}, {"hit_rate", "0.5"}};
  const auto parsed = ParseResponse(EncodePayload(response));
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->stats.size(), 2u);
  EXPECT_EQ(parsed->stats[0].first, "lookups");
  EXPECT_EQ(parsed->stats[1].second, "0.5");
}

TEST(ResponseGrammarTest, MalformedResponsesAreRejected) {
  EXPECT_FALSE(ParseResponse("").has_value());
  EXPECT_FALSE(ParseResponse("WHAT").has_value());
  EXPECT_FALSE(ParseResponse("OK\tnotanumber").has_value());
  EXPECT_FALSE(ParseResponse("HIT\t0.5").has_value());
  EXPECT_FALSE(ParseResponse("STATS\tnoequals").has_value());
}

// ---------------------------------------------------------------------------
// End-to-end over a live server (Unix-domain socket)

class ServerEndToEndTest : public ::testing::Test {
 protected:
  ServerEndToEndTest() : world_(48, /*seed=*/47) {}

  std::string SocketPath(const char* tag) {
    return ::testing::TempDir() + "cortexd-test-" + tag + "-" +
           std::to_string(::getpid()) + ".sock";
  }

  std::unique_ptr<serve::ConcurrentShardedEngine> MakeEngine() {
    serve::ConcurrentEngineOptions opts;
    opts.num_shards = 4;
    opts.cache.capacity_tokens = 1e6;
    opts.housekeeping_interval_sec = 0.0;
    return std::make_unique<serve::ConcurrentShardedEngine>(
        &world_.embedder, world_.judger.get(), opts);
  }

  MiniWorld world_;
};

TEST_F(ServerEndToEndTest, LookupInsertStatsOverTheWire) {
  auto engine = MakeEngine();
  ServerOptions opts;
  opts.unix_path = SocketPath("e2e");
  opts.num_workers = 2;
  CortexServer server(engine.get(), opts);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  BlockingClient client;
  ASSERT_TRUE(client.ConnectUnix(opts.unix_path, &error)) << error;

  Request ping;
  ping.type = RequestType::kPing;
  auto response = client.Call(ping, &error);
  ASSERT_TRUE(response.has_value()) << error;
  EXPECT_EQ(response->type, ResponseType::kPong);

  // Cold lookup misses; insert; paraphrase lookup hits.
  Request lookup;
  lookup.type = RequestType::kLookup;
  lookup.query = world_.query(0, 0);
  response = client.Call(lookup, &error);
  ASSERT_TRUE(response.has_value()) << error;
  EXPECT_EQ(response->type, ResponseType::kMiss);

  Request insert;
  insert.type = RequestType::kInsert;
  insert.key = world_.query(0, 0);
  insert.value = world_.answer(0);
  insert.staticity = world_.topic(0).staticity;
  response = client.Call(insert, &error);
  ASSERT_TRUE(response.has_value()) << error;
  ASSERT_EQ(response->type, ResponseType::kOk);
  EXPECT_GT(response->id, 0u);

  lookup.query = world_.query(0, 2);
  response = client.Call(lookup, &error);
  ASSERT_TRUE(response.has_value()) << error;
  ASSERT_EQ(response->type, ResponseType::kHit);
  EXPECT_EQ(response->value, world_.answer(0));
  EXPECT_EQ(response->matched_key, world_.query(0, 0));

  Request stats;
  stats.type = RequestType::kStats;
  response = client.Call(stats, &error);
  ASSERT_TRUE(response.has_value()) << error;
  ASSERT_EQ(response->type, ResponseType::kStats);
  bool saw_lookups = false;
  for (const auto& [key, value] : response->stats) {
    if (key == "lookups") {
      saw_lookups = true;
      EXPECT_EQ(value, "2");
    }
  }
  EXPECT_TRUE(saw_lookups);

  server.Stop();
  EXPECT_FALSE(server.running());
}

TEST_F(ServerEndToEndTest, MalformedFrameGetsErrNotDisconnect) {
  auto engine = MakeEngine();
  ServerOptions opts;
  opts.unix_path = SocketPath("err");
  opts.num_workers = 1;
  CortexServer server(engine.get(), opts);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  BlockingClient client;
  ASSERT_TRUE(client.ConnectUnix(opts.unix_path, &error)) << error;
  const auto raw = client.CallRaw("GARBAGE\tframe", &error);
  ASSERT_TRUE(raw.has_value()) << error;
  const auto parsed = ParseResponse(*raw);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->type, ResponseType::kError);

  // The connection survives a parse error; a valid request still works.
  Request ping;
  ping.type = RequestType::kPing;
  const auto response = client.Call(ping, &error);
  ASSERT_TRUE(response.has_value()) << error;
  EXPECT_EQ(response->type, ResponseType::kPong);
  EXPECT_GE(server.stats().protocol_errors, 1u);
}

TEST_F(ServerEndToEndTest, RateLimitOverloadAnswersBusy) {
  auto engine = MakeEngine();
  ServerOptions opts;
  opts.unix_path = SocketPath("busy");
  opts.num_workers = 1;
  // One token, refilled at a glacial rate: the second lookup must be BUSY.
  opts.max_requests_per_sec = 1e-6;
  opts.rate_burst = 1.0;
  CortexServer server(engine.get(), opts);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  BlockingClient client;
  ASSERT_TRUE(client.ConnectUnix(opts.unix_path, &error)) << error;

  Request lookup;
  lookup.type = RequestType::kLookup;
  lookup.query = world_.query(1, 0);
  auto response = client.Call(lookup, &error);
  ASSERT_TRUE(response.has_value()) << error;
  EXPECT_EQ(response->type, ResponseType::kMiss);

  response = client.Call(lookup, &error);
  ASSERT_TRUE(response.has_value()) << error;
  EXPECT_EQ(response->type, ResponseType::kBusy);

  // PING is never rate limited — the control plane stays responsive.
  Request ping;
  ping.type = RequestType::kPing;
  response = client.Call(ping, &error);
  ASSERT_TRUE(response.has_value()) << error;
  EXPECT_EQ(response->type, ResponseType::kPong);
  EXPECT_GE(server.stats().requests_busy, 1u);
}

TEST_F(ServerEndToEndTest, TenantVerbsIsolateNamespacesOverTheWire) {
  auto engine = MakeEngine();
  ServerOptions opts;
  opts.unix_path = SocketPath("tenant");
  opts.num_workers = 2;
  CortexServer server(engine.get(), opts);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  BlockingClient client;
  ASSERT_TRUE(client.ConnectUnix(opts.unix_path, &error)) << error;

  Request insert;
  insert.type = RequestType::kTenantInsert;
  insert.tenant = "acme";
  insert.key = world_.query(0, 0);
  insert.value = world_.answer(0);
  insert.staticity = world_.topic(0).staticity;
  auto response = client.Call(insert, &error);
  ASSERT_TRUE(response.has_value()) << error;
  EXPECT_EQ(response->type, ResponseType::kOk);

  // The owning tenant hits under a paraphrase...
  Request lookup;
  lookup.type = RequestType::kTenantLookup;
  lookup.tenant = "acme";
  lookup.query = world_.query(0, 1);
  response = client.Call(lookup, &error);
  ASSERT_TRUE(response.has_value()) << error;
  ASSERT_EQ(response->type, ResponseType::kHit);
  EXPECT_EQ(response->value, world_.answer(0));

  // ...another tenant and the untenanted verb both miss.
  lookup.tenant = "zeta";
  response = client.Call(lookup, &error);
  ASSERT_TRUE(response.has_value()) << error;
  EXPECT_EQ(response->type, ResponseType::kMiss);

  Request untenanted;
  untenanted.type = RequestType::kLookup;
  untenanted.query = world_.query(0, 2);
  response = client.Call(untenanted, &error);
  ASSERT_TRUE(response.has_value()) << error;
  EXPECT_EQ(response->type, ResponseType::kMiss);
}

TEST_F(ServerEndToEndTest, PerTenantQuotaAnswersBusyWithoutStarvingOthers) {
  serve::ConcurrentEngineOptions eopts;
  eopts.num_shards = 4;
  eopts.cache.capacity_tokens = 1e6;
  eopts.housekeeping_interval_sec = 0.0;
  // One token, refilled at a glacial rate, for every tenant.
  eopts.tenants.default_quota.rate_per_sec = 1e-6;
  eopts.tenants.default_quota.rate_burst = 1.0;
  auto engine = std::make_unique<serve::ConcurrentShardedEngine>(
      &world_.embedder, world_.judger.get(), eopts);
  ServerOptions opts;
  opts.unix_path = SocketPath("tenant-busy");
  opts.num_workers = 1;
  CortexServer server(engine.get(), opts);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  BlockingClient client;
  ASSERT_TRUE(client.ConnectUnix(opts.unix_path, &error)) << error;

  Request lookup;
  lookup.type = RequestType::kTenantLookup;
  lookup.tenant = "hot";
  lookup.query = world_.query(1, 0);
  auto response = client.Call(lookup, &error);
  ASSERT_TRUE(response.has_value()) << error;
  EXPECT_EQ(response->type, ResponseType::kMiss);

  response = client.Call(lookup, &error);
  ASSERT_TRUE(response.has_value()) << error;
  EXPECT_EQ(response->type, ResponseType::kBusy);

  // The hot tenant's exhausted bucket does not throttle anyone else:
  // another tenant and the untenanted verb still get through.
  lookup.tenant = "cold";
  response = client.Call(lookup, &error);
  ASSERT_TRUE(response.has_value()) << error;
  EXPECT_EQ(response->type, ResponseType::kMiss);

  Request untenanted;
  untenanted.type = RequestType::kLookup;
  untenanted.query = world_.query(1, 1);
  response = client.Call(untenanted, &error);
  ASSERT_TRUE(response.has_value()) << error;
  EXPECT_EQ(response->type, ResponseType::kMiss);
  EXPECT_GE(server.stats().requests_busy, 1u);
}

TEST_F(ServerEndToEndTest, PipelineOverflowAnswersBusyInOrder) {
  auto engine = MakeEngine();
  ServerOptions opts;
  opts.unix_path = SocketPath("pipe");
  opts.num_workers = 1;
  opts.max_pipeline = 2;  // tiny per-connection request queue
  CortexServer server(engine.get(), opts);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  // Write 6 pipelined PINGs in ONE syscall so the server decodes them all
  // in one read batch: 2 fit the pipeline bound, 4 overflow.  Responses
  // must come back in request order: PONG PONG BUSY BUSY BUSY BUSY.
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  ASSERT_LT(opts.unix_path.size(), sizeof addr.sun_path);
  std::memcpy(addr.sun_path, opts.unix_path.c_str(),
              opts.unix_path.size() + 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0)
      << std::strerror(errno);

  constexpr std::size_t kBurst = 6;
  std::string burst;
  for (std::size_t i = 0; i < kBurst; ++i) AppendFrame("PING", burst);
  ASSERT_EQ(::send(fd, burst.data(), burst.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(burst.size()));

  FrameDecoder decoder;
  std::vector<ResponseType> kinds;
  char buf[4096];
  while (kinds.size() < kBurst) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    ASSERT_GT(n, 0) << "connection closed before all responses arrived";
    decoder.Feed(std::string_view(buf, static_cast<std::size_t>(n)));
    std::string payload;
    while (decoder.Next(&payload) == FrameDecoder::Status::kFrame) {
      const auto response = ParseResponse(payload);
      ASSERT_TRUE(response.has_value());
      kinds.push_back(response->type);
    }
  }
  ::close(fd);

  ASSERT_EQ(kinds.size(), kBurst);
  EXPECT_EQ(kinds[0], ResponseType::kPong);
  EXPECT_EQ(kinds[1], ResponseType::kPong);
  for (std::size_t i = 2; i < kBurst; ++i) {
    EXPECT_EQ(kinds[i], ResponseType::kBusy) << "frame " << i;
  }
  EXPECT_EQ(server.stats().requests_busy, 4u);
}

TEST_F(ServerEndToEndTest, BatchingPipelineServesConcurrentLookupsOverTheWire) {
  auto engine = MakeEngine();
  ServerOptions opts;
  opts.unix_path = SocketPath("batch");
  opts.num_workers = 4;
  opts.max_pipeline_batch = 4;  // cross-request batching on (DESIGN.md §14)
  opts.batch_window_us = 2000;
  opts.pipeline_threads = 2;
  CortexServer server(engine.get(), opts);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  // Seed a few topics so every batched lookup has a sequential-known answer.
  {
    BlockingClient seeder;
    ASSERT_TRUE(seeder.ConnectUnix(opts.unix_path, &error)) << error;
    for (std::size_t t = 0; t < 4; ++t) {
      Request insert;
      insert.type = RequestType::kInsert;
      insert.key = world_.query(t, 0);
      insert.value = world_.answer(t);
      insert.staticity = world_.topic(t).staticity;
      const auto response = seeder.Call(insert, &error);
      ASSERT_TRUE(response.has_value()) << error;
      ASSERT_EQ(response->type, ResponseType::kOk);
    }
  }

  // Concurrent clients drive lookups through the batching pipeline; every
  // answer must be what a sequential lookup would have returned.
  constexpr std::size_t kClients = 4;
  constexpr std::size_t kPerClient = 12;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::string err;
      BlockingClient client;
      if (!client.ConnectUnix(opts.unix_path, &err)) {
        ++failures;
        return;
      }
      for (std::size_t i = 0; i < kPerClient; ++i) {
        const std::size_t topic = (c + i) % 4;
        Request lookup;
        lookup.type = RequestType::kLookup;
        lookup.query = world_.query(topic, 1 + (i % 2));
        const auto response = client.Call(lookup, &err);
        if (!response.has_value() ||
            response->type != ResponseType::kHit ||
            response->value != world_.answer(topic)) {
          ++failures;
          return;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);

  // The pipeline actually coalesced: STATS carries the batching digest.
  BlockingClient client;
  ASSERT_TRUE(client.ConnectUnix(opts.unix_path, &error)) << error;
  Request stats;
  stats.type = RequestType::kStats;
  const auto response = client.Call(stats, &error);
  ASSERT_TRUE(response.has_value()) << error;
  ASSERT_EQ(response->type, ResponseType::kStats);
  double pipeline_requests = 0.0, pipeline_batches = 0.0;
  for (const auto& [key, value] : response->stats) {
    if (key == "cortex_pipeline_requests") pipeline_requests = std::stod(value);
    if (key == "cortex_pipeline_batches") pipeline_batches = std::stod(value);
  }
  EXPECT_EQ(pipeline_requests, kClients * kPerClient);
  EXPECT_GE(pipeline_batches, 1.0);
  EXPECT_LE(pipeline_batches, pipeline_requests);

  server.Stop();
}

TEST_F(ServerEndToEndTest, TruncatedFrameAtEofCountsAsProtocolError) {
  auto engine = MakeEngine();
  ServerOptions opts;
  opts.unix_path = SocketPath("trunc");
  opts.num_workers = 1;
  CortexServer server(engine.get(), opts);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, opts.unix_path.c_str(),
              opts.unix_path.size() + 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0)
      << std::strerror(errno);

  // Send a frame cut off mid-payload, then hang up.
  std::string wire;
  AppendFrame("LOOKUP\tsome long query that never finishes", wire);
  wire.resize(wire.size() / 2);
  ASSERT_EQ(::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(wire.size()));
  ::close(fd);

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server.stats().protocol_errors == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(server.stats().protocol_errors, 1u);
}

TEST_F(ServerEndToEndTest, OversizedFrameDisconnectsWithErr) {
  auto engine = MakeEngine();
  ServerOptions opts;
  opts.unix_path = SocketPath("big");
  opts.num_workers = 1;
  opts.max_frame_bytes = 64;
  CortexServer server(engine.get(), opts);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  BlockingClient client;
  ASSERT_TRUE(client.ConnectUnix(opts.unix_path, &error)) << error;
  const auto raw = client.CallRaw("LOOKUP\t" + std::string(100, 'q'), &error);
  ASSERT_TRUE(raw.has_value()) << error;
  const auto parsed = ParseResponse(*raw);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->type, ResponseType::kError);
  EXPECT_GE(server.stats().protocol_errors, 1u);

  // The stream is unrecoverable after a bad length prefix: the server hangs
  // up, so the next call fails at the transport layer.
  Request ping;
  ping.type = RequestType::kPing;
  EXPECT_FALSE(client.Call(ping, &error).has_value());
}

}  // namespace
}  // namespace cortex
