#include "core/snapshot.h"

#include <gtest/gtest.h>

#include <sstream>

#include "ann/flat_index.h"
#include "core/eviction.h"
#include "test_helpers.h"

namespace cortex {
namespace {

using cortex::testing::MiniWorld;

class SnapshotTest : public ::testing::Test {
 protected:
  std::unique_ptr<SemanticCache> MakeCache(double capacity = 1e6,
                                           double min_ttl = 1e5,
                                           double max_ttl = 1e6) {
    SemanticCacheOptions opts;
    opts.capacity_tokens = capacity;
    opts.min_ttl_sec = min_ttl;
    opts.max_ttl_sec = max_ttl;
    return std::make_unique<SemanticCache>(
        &world_.embedder,
        std::make_unique<FlatIndex>(world_.embedder.dimension()),
        world_.judger.get(), std::make_unique<LcfuPolicy>(), opts);
  }

  void FillTopics(SemanticCache& cache, std::size_t n, double now = 0.0) {
    for (std::size_t i = 0; i < n; ++i) {
      InsertRequest req;
      req.key = world_.query(i, 0);
      req.value = world_.answer(i);
      req.staticity = world_.topic(i).staticity;
      req.retrieval_latency_sec = 0.4;
      req.retrieval_cost_dollars = 0.005;
      ASSERT_TRUE(cache.Insert(std::move(req), now).has_value());
    }
  }

  MiniWorld world_;
};

TEST_F(SnapshotTest, RoundTripRestoresEverything) {
  auto cache = MakeCache();
  FillTopics(*cache, 10);
  // Accumulate some history.
  cache->Lookup(world_.query(3, 2), 5.0);
  cache->Lookup(world_.query(3, 4), 6.0);

  std::stringstream stream;
  const auto saved = SaveCacheSnapshot(*cache, stream);
  EXPECT_EQ(saved.entries_written, 10u);

  auto fresh = MakeCache();
  const auto loaded = LoadCacheSnapshot(*fresh, stream, /*now=*/10.0);
  EXPECT_EQ(loaded.entries_restored, 10u);
  EXPECT_EQ(loaded.entries_expired, 0u);
  EXPECT_EQ(fresh->size(), 10u);

  // Semantic lookups work immediately on the restored cache.
  const auto hit = fresh->Lookup(world_.query(3, 5), 11.0);
  ASSERT_TRUE(hit.hit.has_value());
  EXPECT_EQ(hit.hit->value, world_.answer(3));

  // Accumulated frequency survived the round trip (insert credit + at
  // least one confirmed pre-save hit + the hit above).
  const SemanticElement* se = fresh->Get(hit.hit->id);
  EXPECT_GE(se->frequency, 3u);
  EXPECT_DOUBLE_EQ(se->retrieval_latency_sec, 0.4);
}

TEST_F(SnapshotTest, ExpiredEntriesDroppedAtLoad) {
  auto cache = MakeCache(1e6, /*min_ttl=*/10.0, /*max_ttl=*/20.0);
  FillTopics(*cache, 5, /*now=*/0.0);
  std::stringstream stream;
  SaveCacheSnapshot(*cache, stream);

  auto fresh = MakeCache();
  const auto loaded = LoadCacheSnapshot(*fresh, stream, /*now=*/1000.0);
  EXPECT_EQ(loaded.entries_restored, 0u);
  EXPECT_EQ(loaded.entries_expired, 5u);
  EXPECT_EQ(fresh->size(), 0u);
}

TEST_F(SnapshotTest, LoadIntoSmallerCacheRespectsCapacity) {
  auto cache = MakeCache();
  FillTopics(*cache, 12);
  std::stringstream stream;
  SaveCacheSnapshot(*cache, stream);

  // Room for roughly three answers.
  auto tiny = MakeCache(3.2 * 70.0);
  const auto loaded = LoadCacheSnapshot(*tiny, stream, 0.0);
  EXPECT_EQ(loaded.entries_restored + loaded.entries_rejected, 12u);
  EXPECT_LE(tiny->usage_tokens(), tiny->capacity_tokens());
}

TEST_F(SnapshotTest, LoadMergesWithExistingContents) {
  auto a = MakeCache();
  FillTopics(*a, 4);
  std::stringstream stream;
  SaveCacheSnapshot(*a, stream);

  auto b = MakeCache();
  FillTopics(*b, 8);  // topics 0-7 already resident, values identical 0-3
  const auto loaded = LoadCacheSnapshot(*b, stream, 0.0);
  EXPECT_EQ(loaded.entries_restored, 4u);  // dedup refreshes count as restored
  EXPECT_EQ(b->size(), 8u);                // no duplicates created
}

TEST_F(SnapshotTest, BadMagicThrows) {
  std::stringstream stream;
  stream << "not a snapshot at all";
  auto cache = MakeCache();
  EXPECT_THROW(LoadCacheSnapshot(*cache, stream, 0.0), std::runtime_error);
}

TEST_F(SnapshotTest, TruncatedStreamThrows) {
  auto cache = MakeCache();
  FillTopics(*cache, 6);
  std::stringstream stream;
  SaveCacheSnapshot(*cache, stream);
  const std::string full = stream.str();
  std::stringstream cut(full.substr(0, full.size() / 2));
  auto fresh = MakeCache();
  EXPECT_THROW(LoadCacheSnapshot(*fresh, cut, 0.0), std::runtime_error);
}

TEST_F(SnapshotTest, FileRoundTrip) {
  auto cache = MakeCache();
  FillTopics(*cache, 6);
  const std::string path = ::testing::TempDir() + "/cortex_snapshot.bin";
  SaveCacheSnapshotFile(*cache, path);
  auto fresh = MakeCache();
  const auto loaded = LoadCacheSnapshotFile(*fresh, path, 0.0);
  EXPECT_EQ(loaded.entries_restored, 6u);
  EXPECT_TRUE(fresh->Lookup(world_.query(2, 3), 1.0).hit.has_value());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Version compatibility (DESIGN.md §12): v1 blobs predate tenancy; they
// must load as shared-pool entries on a tenant-aware node.

TEST_F(SnapshotTest, V1BlobLoadsIntoSharedPool) {
  // A v1 writer cannot express tenancy: even if the in-memory SE carries
  // a tenant, the v1 layout drops it on the wire and the reader restores
  // the pre-tenant defaults (shared pool, shareable).
  SemanticElement se;
  se.key = world_.query(0, 0);
  se.value = world_.answer(0);
  se.tenant = "dropped-by-v1-layout";
  se.shareable = false;
  se.staticity = world_.topic(0).staticity;
  se.frequency = 2;
  se.expiration_time = 1e9;
  std::stringstream stream;
  WriteSnapshotHeader(stream, 1, /*version=*/1);
  WriteSnapshotElement(stream, se, /*version=*/1);

  auto cache = MakeCache();
  const auto loaded = LoadCacheSnapshot(*cache, stream, 0.0);
  EXPECT_EQ(loaded.entries_restored, 1u);
  ASSERT_EQ(cache->size(), 1u);
  for (const auto& [id, restored] : cache->entries()) {
    EXPECT_EQ(restored.tenant, "");
    EXPECT_TRUE(restored.shareable);
  }
  // Shared-pool entries answer every tenant's lookups.
  EXPECT_TRUE(cache->Lookup(world_.query(0, 1), 1.0, "any").hit.has_value());
  EXPECT_TRUE(cache->Lookup(world_.query(0, 2), 2.0).hit.has_value());
}

TEST_F(SnapshotTest, V2RoundTripPreservesTenantAndShareable) {
  auto cache = MakeCache();
  InsertRequest req;
  req.key = world_.query(0, 0);
  req.value = world_.answer(0);
  req.staticity = world_.topic(0).staticity;
  req.tenant = "acme";
  req.shareable = false;
  ASSERT_TRUE(cache->Insert(std::move(req), 0.0).has_value());

  std::stringstream stream;
  SaveCacheSnapshot(*cache, stream);

  auto fresh = MakeCache();
  const auto loaded = LoadCacheSnapshot(*fresh, stream, 0.0);
  EXPECT_EQ(loaded.entries_restored, 1u);
  ASSERT_EQ(fresh->size(), 1u);
  for (const auto& [id, restored] : fresh->entries()) {
    EXPECT_EQ(restored.tenant, "acme");
    EXPECT_FALSE(restored.shareable);
  }
  // The namespace boundary survived the restart.
  EXPECT_TRUE(fresh->ContainsKey(world_.query(0, 0), "acme"));
  EXPECT_FALSE(fresh->ContainsKey(world_.query(0, 0)));
  EXPECT_TRUE(fresh->Lookup(world_.query(0, 1), 1.0, "acme").hit.has_value());
  EXPECT_FALSE(fresh->Lookup(world_.query(0, 2), 2.0, "other").hit.has_value());
}

TEST_F(SnapshotTest, MixedVersionStreamsConcatenate) {
  // The cluster migration path: a v1 node's SNAPSHOT blob followed by a
  // v2 node's blob on one stream, RESTOREd sequentially on the target.
  SemanticElement old_se;
  old_se.key = world_.query(1, 0);
  old_se.value = world_.answer(1);
  old_se.staticity = world_.topic(1).staticity;
  old_se.expiration_time = 1e9;
  std::stringstream stream;
  WriteSnapshotHeader(stream, 1, /*version=*/1);
  WriteSnapshotElement(stream, old_se, /*version=*/1);

  auto modern = MakeCache();
  InsertRequest req;
  req.key = world_.query(2, 0);
  req.value = world_.answer(2);
  req.staticity = world_.topic(2).staticity;
  req.tenant = "acme";
  ASSERT_TRUE(modern->Insert(std::move(req), 0.0).has_value());
  SaveCacheSnapshot(*modern, stream);

  auto target = MakeCache();
  EXPECT_EQ(LoadCacheSnapshot(*target, stream, 0.0).entries_restored, 1u);
  EXPECT_EQ(LoadCacheSnapshot(*target, stream, 0.0).entries_restored, 1u);
  EXPECT_EQ(target->size(), 2u);
  // The v1 entry landed in the shared pool; the v2 entry kept its tenant.
  EXPECT_TRUE(target->Lookup(world_.query(1, 1), 1.0, "other").hit.has_value());
  EXPECT_TRUE(target->ContainsKey(world_.query(2, 0), "acme"));
  EXPECT_FALSE(
      target->Lookup(world_.query(2, 1), 2.0, "other").hit.has_value());
}

TEST_F(SnapshotTest, RestoreElementRecomputesMissingEmbedding) {
  auto cache = MakeCache();
  SemanticElement se;
  se.key = world_.query(0, 0);
  se.value = world_.answer(0);
  se.staticity = 8.0;
  se.frequency = 3;
  se.expiration_time = 1e9;
  // No embedding supplied: RestoreElement must recompute it.
  const auto id = cache->RestoreElement(std::move(se), 0.0);
  ASSERT_TRUE(id.has_value());
  EXPECT_TRUE(cache->Lookup(world_.query(0, 2), 1.0).hit.has_value());
}

}  // namespace
}  // namespace cortex
