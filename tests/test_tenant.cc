// Multi-tenant isolation tests (DESIGN.md §12): tenant-id validation and
// derived keys, TenantRegistry quotas / rate admission / bounded-cardinality
// telemetry, SemanticCache namespace visibility, per-tenant budget eviction
// (property: a tenant under quota pressure never spills onto a bystander),
// cross-tenant promotion (property: graduation requires K *distinct*
// confirming tenants), and an engine-level hot-tenant flood that must not
// degrade a victim tenant's resident set.
#include "tenant/tenant.h"

#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <string>
#include <vector>

#include "ann/flat_index.h"
#include "core/semantic_cache.h"
#include "llm/tags.h"
#include "serve/concurrent_engine.h"
#include "telemetry/metrics.h"
#include "tenant/registry.h"
#include "test_helpers.h"

namespace cortex {
namespace {

using cortex::testing::MiniWorld;
namespace tenant = cortex::tenant;

// ---------------------------------------------------------------------------
// Tenant-id utilities

TEST(TenantIdTest, AcceptsOrdinaryIds) {
  EXPECT_TRUE(tenant::ValidTenantId("acme"));
  EXPECT_TRUE(tenant::ValidTenantId("team-7_prod.us"));
  EXPECT_TRUE(tenant::ValidTenantId(std::string(tenant::kMaxTenantIdLength,
                                                'a')));
}

TEST(TenantIdTest, RejectsEmptyOversizedAndReservedBytes) {
  EXPECT_FALSE(tenant::ValidTenantId(""));
  EXPECT_FALSE(tenant::ValidTenantId(
      std::string(tenant::kMaxTenantIdLength + 1, 'a')));
  EXPECT_FALSE(tenant::ValidTenantId("a b"));       // whitespace
  EXPECT_FALSE(tenant::ValidTenantId("a|b"));       // placement separator
  EXPECT_FALSE(tenant::ValidTenantId("a=b"));       // STATS separator
  EXPECT_FALSE(tenant::ValidTenantId("a\tb"));      // control / whitespace
  EXPECT_FALSE(tenant::ValidTenantId(std::string("a\x01b", 3)));
}

TEST(TenantIdTest, PlacementKeyMatchesRingPrefixConvention) {
  // Must equal the prefix ClusterRouter::PlacementKey() extracts from
  // legacy "tenant:<id>|query" keys, so both conventions co-locate.
  EXPECT_EQ(tenant::PlacementKeyFor("acme"), "tenant:acme");
}

TEST(TenantIdTest, MetricPartSanitizesNonIdentifierBytes) {
  EXPECT_EQ(tenant::MetricPartFor("acme"), "acme");
  EXPECT_EQ(tenant::MetricPartFor("team-7.us"), "team_7_us");
}

// ---------------------------------------------------------------------------
// TenantRegistry: quotas, rate admission, bounded metric cardinality

TEST(TenantRegistryTest, DefaultQuotaIsUnlimited) {
  tenant::TenantRegistry registry;
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(registry.AdmitRequest("t", static_cast<double>(i) * 1e-3));
  }
  EXPECT_EQ(registry.BudgetTokens("t", 1000.0), 0.0);
  // The shared pool is never budgeted or rate limited.
  EXPECT_EQ(registry.BudgetTokens("", 1000.0), 0.0);
  EXPECT_TRUE(registry.AdmitRequest("", 1.0));
  EXPECT_EQ(registry.quota_rejects(), 0u);
}

TEST(TenantRegistryTest, BudgetTokensAppliesFraction) {
  tenant::TenantRegistry registry;
  tenant::TenantQuota quota;
  quota.budget_fraction = 0.25;
  registry.SetQuota("a", quota);
  EXPECT_DOUBLE_EQ(registry.BudgetTokens("a", 1000.0), 250.0);
  // Fractions outside (0, 1) mean "whole shard" = unlimited.
  quota.budget_fraction = 1.0;
  registry.SetQuota("b", quota);
  EXPECT_EQ(registry.BudgetTokens("b", 1000.0), 0.0);
  quota.budget_fraction = 0.0;
  registry.SetQuota("c", quota);
  EXPECT_EQ(registry.BudgetTokens("c", 1000.0), 0.0);
}

TEST(TenantRegistryTest, RateQuotaAdmitsBurstThenRejectsThenRefills) {
  tenant::TenantRegistry registry;
  tenant::TenantQuota quota;
  quota.rate_per_sec = 10.0;
  quota.rate_burst = 2.0;
  registry.SetQuota("hot", quota);

  // Bucket starts full at `burst`.
  EXPECT_TRUE(registry.AdmitRequest("hot", 0.0));
  EXPECT_TRUE(registry.AdmitRequest("hot", 0.0));
  EXPECT_FALSE(registry.AdmitRequest("hot", 0.0));
  EXPECT_EQ(registry.quota_rejects(), 1u);

  // Another tenant under the (unlimited) default quota is unaffected.
  EXPECT_TRUE(registry.AdmitRequest("cold", 0.0));

  // 0.1s refills one token at 10/s.
  EXPECT_TRUE(registry.AdmitRequest("hot", 0.1));
  EXPECT_FALSE(registry.AdmitRequest("hot", 0.1));
  EXPECT_EQ(registry.quota_rejects(), 2u);
}

TEST(TenantRegistryTest, DefaultQuotaAppliesToUnconfiguredTenants) {
  tenant::TenantRegistryOptions options;
  options.default_quota.rate_per_sec = 1.0;
  options.default_quota.rate_burst = 1.0;
  tenant::TenantRegistry registry(nullptr, options);
  EXPECT_TRUE(registry.AdmitRequest("anybody", 0.0));
  EXPECT_FALSE(registry.AdmitRequest("anybody", 0.0));
}

TEST(TenantRegistryTest, MetricCardinalityIsBounded) {
  telemetry::MetricRegistry metrics;
  tenant::TenantRegistryOptions options;
  options.max_instrumented_tenants = 2;
  tenant::TenantRegistry registry(&metrics, options);

  registry.OnLookup("t0", /*hit=*/true);
  registry.OnLookup("t1", /*hit=*/true);
  registry.OnLookup("t2", /*hit=*/true);
  registry.OnLookup("t3", /*hit=*/true);

  const auto snapshot = metrics.Snapshot();
  bool t0_dedicated = false, t1_dedicated = false;
  bool overflow_present = false;
  std::uint64_t overflow_hits = 0;
  for (const auto& entry : snapshot.entries) {
    if (entry.name == "cortex_tenant_t0_hits") t0_dedicated = true;
    if (entry.name == "cortex_tenant_t1_hits") t1_dedicated = true;
    // Tenants past the cap must never mint their own instruments.
    EXPECT_NE(entry.name, "cortex_tenant_t2_hits");
    EXPECT_NE(entry.name, "cortex_tenant_t3_hits");
    if (entry.name == "cortex_tenants_overflow_hits") {
      overflow_present = true;
      overflow_hits = entry.counter_value;
    }
  }
  EXPECT_TRUE(t0_dedicated);
  EXPECT_TRUE(t1_dedicated);
  EXPECT_TRUE(overflow_present);
  EXPECT_EQ(overflow_hits, 2u);  // t2 + t3 aggregate

  // Quota state itself stays exact per tenant, uncapped.
  EXPECT_EQ(registry.KnownTenantCount(), 4u);
  EXPECT_EQ(registry.KnownTenants().size(), 4u);
}

// ---------------------------------------------------------------------------
// SemanticCache: namespace visibility

class TenantCacheTest : public ::testing::Test {
 protected:
  TenantCacheTest() { Rebuild({}); }

  void Rebuild(SemanticCacheOptions options) {
    if (options.capacity_tokens == SemanticCacheOptions{}.capacity_tokens) {
      options.capacity_tokens = 1e6;  // default: effectively unbounded
    }
    cache_ = std::make_unique<SemanticCache>(
        &world_.embedder,
        std::make_unique<FlatIndex>(world_.embedder.dimension()),
        world_.judger.get(), std::make_unique<LcfuPolicy>(), options);
  }

  // Oracle-backed request for `tenant` (hits require the true answer —
  // the judger is oracle-driven).
  InsertRequest RequestFor(std::size_t topic_id, std::size_t paraphrase,
                           std::string tenant) {
    InsertRequest req;
    req.key = world_.query(topic_id, paraphrase);
    req.value = world_.answer(topic_id);
    req.staticity = world_.topic(topic_id).staticity;
    req.retrieval_latency_sec = 0.4;
    req.retrieval_cost_dollars = 0.005;
    req.initial_frequency = 1;
    req.tenant = std::move(tenant);
    return req;
  }

  // Arbitrary payload of `words` words tagged for uniqueness (dedup is by
  // byte-identical value).  Token size follows ApproxTokenCount.
  static std::string Payload(const std::string& tag, std::size_t words) {
    std::string value = tag;
    for (std::size_t i = 1; i < words; ++i) value += " w";
    return value;
  }

  MiniWorld world_;
  std::unique_ptr<SemanticCache> cache_;
};

TEST_F(TenantCacheTest, PrivateNamespaceIsInvisibleToOtherTenants) {
  ASSERT_TRUE(cache_->Insert(RequestFor(0, 0, "a"), 1.0).has_value());

  // Owner sees it under any paraphrase.
  auto own = cache_->Lookup(world_.query(0, 1), 2.0, "a");
  ASSERT_TRUE(own.hit.has_value());
  EXPECT_EQ(own.hit->value, world_.answer(0));

  // Another tenant and the shared pool both miss.
  EXPECT_FALSE(cache_->Lookup(world_.query(0, 1), 3.0, "b").hit.has_value());
  EXPECT_FALSE(cache_->Lookup(world_.query(0, 1), 4.0).hit.has_value());
}

TEST_F(TenantCacheTest, SharedPoolIsVisibleToEveryTenant) {
  ASSERT_TRUE(cache_->Insert(RequestFor(1, 0, ""), 1.0).has_value());
  EXPECT_TRUE(cache_->Lookup(world_.query(1, 1), 2.0, "a").hit.has_value());
  EXPECT_TRUE(cache_->Lookup(world_.query(1, 2), 3.0, "b").hit.has_value());
  EXPECT_TRUE(cache_->Lookup(world_.query(1, 3), 4.0).hit.has_value());
}

TEST_F(TenantCacheTest, ContainsKeyIsScopedPerNamespace) {
  InsertRequest a;
  a.key = "shared question";
  a.value = Payload("a-answer", 8);
  a.tenant = "a";
  InsertRequest b;
  b.key = "shared question";
  b.value = Payload("b-answer", 8);
  b.tenant = "b";
  ASSERT_TRUE(cache_->Insert(std::move(a), 1.0).has_value());
  ASSERT_TRUE(cache_->Insert(std::move(b), 2.0).has_value());

  // Same exact key coexists in both namespaces without collision.
  EXPECT_EQ(cache_->size(), 2u);
  EXPECT_TRUE(cache_->ContainsKey("shared question", "a"));
  EXPECT_TRUE(cache_->ContainsKey("shared question", "b"));
  EXPECT_FALSE(cache_->ContainsKey("shared question"));
  EXPECT_FALSE(cache_->ContainsKey("shared question", "c"));
}

TEST_F(TenantCacheTest, NoCrossTenantValueDedup) {
  // Identical bytes from two tenants must stay two private copies when
  // promotion is off — dedup across namespaces would leak existence.
  InsertRequest a;
  a.key = "ka";
  a.value = Payload("same-bytes", 8);
  a.tenant = "a";
  InsertRequest b;
  b.key = "kb";
  b.value = Payload("same-bytes", 8);
  b.tenant = "b";
  ASSERT_TRUE(cache_->Insert(std::move(a), 1.0).has_value());
  ASSERT_TRUE(cache_->Insert(std::move(b), 2.0).has_value());
  EXPECT_EQ(cache_->size(), 2u);
  EXPECT_EQ(cache_->counters().dedup_refreshes, 0u);
}

TEST_F(TenantCacheTest, SameTenantValueDedupStillWorks) {
  InsertRequest first;
  first.key = "k1";
  first.value = Payload("same-bytes", 8);
  first.tenant = "a";
  InsertRequest second;
  second.key = "k2";
  second.value = Payload("same-bytes", 8);
  second.tenant = "a";
  const auto id1 = cache_->Insert(std::move(first), 1.0);
  const auto id2 = cache_->Insert(std::move(second), 2.0);
  ASSERT_TRUE(id1.has_value());
  ASSERT_TRUE(id2.has_value());
  EXPECT_EQ(*id1, *id2);
  EXPECT_EQ(cache_->size(), 1u);
  EXPECT_EQ(cache_->counters().dedup_refreshes, 1u);
}

// ---------------------------------------------------------------------------
// SemanticCache: per-tenant token budgets

TEST_F(TenantCacheTest, OversizedValueIsBudgetRejected) {
  InsertRequest req;
  req.key = "big";
  req.value = Payload("big-value", 30);  // ~40 tokens
  req.tenant = "a";
  req.budget_tokens = 4.0;
  EXPECT_FALSE(cache_->Insert(std::move(req), 1.0).has_value());
  EXPECT_EQ(cache_->counters().budget_rejects, 1u);
  EXPECT_EQ(cache_->size(), 0u);
}

TEST_F(TenantCacheTest, BudgetEvictsWithinTheOffendingTenantOnly) {
  // Victim resident first, no budget of its own.
  for (int i = 0; i < 2; ++i) {
    InsertRequest req;
    req.key = "victim-k" + std::to_string(i);
    req.value = Payload("victim-v" + std::to_string(i), 30);
    req.tenant = "victim";
    ASSERT_TRUE(cache_->Insert(std::move(req), 1.0).has_value());
  }

  // Hog inserts 5 x ~40 tokens against a 100-token budget: each insert
  // past the budget evicts the hog's own oldest entries.
  const double size =
      static_cast<double>(ApproxTokenCount(Payload("hog-v0", 30)));
  ASSERT_GT(2.0 * size, 100.0 - size);  // budget really binds on insert 3+
  for (int i = 0; i < 5; ++i) {
    InsertRequest req;
    req.key = "hog-k" + std::to_string(i);
    req.value = Payload("hog-v" + std::to_string(i), 30);
    req.tenant = "hog";
    req.budget_tokens = 100.0;
    ASSERT_TRUE(
        cache_->Insert(std::move(req), 2.0 + static_cast<double>(i))
            .has_value());
  }

  EXPECT_LE(cache_->TenantUsageFor("hog").tokens, 100.0);
  EXPECT_GE(cache_->TenantUsageFor("hog").evictions, 1u);
  // The bystander was never touched.
  EXPECT_EQ(cache_->TenantUsageFor("victim").evictions, 0u);
  EXPECT_TRUE(cache_->ContainsKey("victim-k0", "victim"));
  EXPECT_TRUE(cache_->ContainsKey("victim-k1", "victim"));
  // The hog's newest entry survived its own budget eviction.
  EXPECT_TRUE(cache_->ContainsKey("hog-k4", "hog"));
}

TEST_F(TenantCacheTest, CapacityPressureEvictsOffenderBeforeBystander) {
  SemanticCacheOptions options;
  options.capacity_tokens = 150.0;
  options.ttl_enabled = false;
  Rebuild(options);

  InsertRequest b;
  b.key = "b-k";
  b.value = Payload("b-v", 30);  // ~40 tokens
  b.tenant = "b";
  ASSERT_TRUE(cache_->Insert(std::move(b), 1.0).has_value());

  // "a" fills the remainder, then overflows capacity: the eviction tier
  // order must pick a's own entries, not b's.
  for (int i = 0; i < 3; ++i) {
    InsertRequest req;
    req.key = "a-k" + std::to_string(i);
    req.value = Payload("a-v" + std::to_string(i), 30);
    req.tenant = "a";
    ASSERT_TRUE(
        cache_->Insert(std::move(req), 2.0 + static_cast<double>(i))
            .has_value());
  }

  EXPECT_GE(cache_->counters().evictions, 1u);
  EXPECT_EQ(cache_->TenantUsageFor("b").evictions, 0u);
  EXPECT_TRUE(cache_->ContainsKey("b-k", "b"));
  EXPECT_GE(cache_->TenantUsageFor("a").evictions, 1u);
}

TEST_F(TenantCacheTest, PropertyBudgetedTenantsNeverSpillOntoBystanders) {
  // Randomized: two budgeted tenants churn inserts; a bystander with
  // resident entries must never lose one, and neither budgeted tenant may
  // ever exceed its share.  Capacity >= sum of budgets + bystander usage,
  // so any bystander eviction would be a tier-selection bug.
  for (int i = 0; i < 2; ++i) {
    InsertRequest req;
    req.key = "bystander-k" + std::to_string(i);
    req.value = Payload("bystander-v" + std::to_string(i), 30);
    req.tenant = "bystander";
    ASSERT_TRUE(cache_->Insert(std::move(req), 0.5).has_value());
  }

  std::mt19937 rng(20260807);
  std::uniform_int_distribution<int> pick_tenant(0, 1);
  std::uniform_int_distribution<std::size_t> pick_words(10, 50);
  const double kBudget = 300.0;
  for (int step = 0; step < 200; ++step) {
    const std::string who = pick_tenant(rng) == 0 ? "a" : "b";
    InsertRequest req;
    req.key = who + "-k" + std::to_string(step);
    req.value = Payload(who + "-v" + std::to_string(step), pick_words(rng));
    req.tenant = who;
    req.budget_tokens = kBudget;
    cache_->Insert(std::move(req), 1.0 + static_cast<double>(step));

    ASSERT_LE(cache_->TenantUsageFor("a").tokens, kBudget) << "step " << step;
    ASSERT_LE(cache_->TenantUsageFor("b").tokens, kBudget) << "step " << step;
    ASSERT_EQ(cache_->TenantUsageFor("bystander").evictions, 0u)
        << "step " << step;
  }
  EXPECT_TRUE(cache_->ContainsKey("bystander-k0", "bystander"));
  EXPECT_TRUE(cache_->ContainsKey("bystander-k1", "bystander"));
}

// ---------------------------------------------------------------------------
// Cross-tenant promotion to the shared pool

class TenantPromotionTest : public TenantCacheTest {
 protected:
  void RebuildWithPromotion(std::size_t k, double min_staticity = 0.0) {
    SemanticCacheOptions options;
    options.promote_distinct_tenants = k;
    options.promote_min_staticity = min_staticity;
    Rebuild(options);
  }
};

TEST_F(TenantPromotionTest, KDistinctTenantsGraduateValueToSharedPool) {
  RebuildWithPromotion(2);

  ASSERT_TRUE(cache_->Insert(RequestFor(0, 0, "a"), 1.0).has_value());
  // One confirming tenant is not enough: a third party still misses.
  EXPECT_FALSE(cache_->Lookup(world_.query(0, 1), 2.0, "c").hit.has_value());
  EXPECT_EQ(cache_->counters().promotions, 0u);

  // Second distinct tenant fetches the same value: graduation.
  ASSERT_TRUE(cache_->Insert(RequestFor(0, 1, "b"), 3.0).has_value());
  EXPECT_EQ(cache_->counters().promotions, 1u);

  // Now visible to everyone, including the untenanted path.
  EXPECT_TRUE(cache_->Lookup(world_.query(0, 2), 4.0, "c").hit.has_value());
  EXPECT_TRUE(cache_->Lookup(world_.query(0, 3), 5.0).hit.has_value());

  // The promoted copy was retagged in place — one entry, shared tenant.
  ASSERT_EQ(cache_->size(), 1u);
  for (const auto& [id, se] : cache_->entries()) {
    EXPECT_EQ(se.tenant, "");
  }
}

TEST_F(TenantPromotionTest, PropertySingleTenantNeverGraduates) {
  RebuildWithPromotion(2);
  // The same tenant re-fetching the same value under many phrasings
  // accumulates no cross-tenant evidence.
  for (std::size_t p = 0; p < 5; ++p) {
    cache_->Insert(RequestFor(0, p, "a"), 1.0 + static_cast<double>(p));
    ASSERT_EQ(cache_->counters().promotions, 0u) << "paraphrase " << p;
    ASSERT_FALSE(
        cache_->Lookup(world_.query(0, p), 10.0 + static_cast<double>(p), "b")
            .hit.has_value())
        << "paraphrase " << p;
  }
}

TEST_F(TenantPromotionTest, NonShareableValuesNeverGraduate) {
  RebuildWithPromotion(2);
  auto a = RequestFor(0, 0, "a");
  a.shareable = false;
  auto b = RequestFor(0, 1, "b");
  b.shareable = false;
  ASSERT_TRUE(cache_->Insert(std::move(a), 1.0).has_value());
  ASSERT_TRUE(cache_->Insert(std::move(b), 2.0).has_value());
  EXPECT_EQ(cache_->counters().promotions, 0u);
  EXPECT_FALSE(cache_->Lookup(world_.query(0, 2), 3.0, "c").hit.has_value());
}

TEST_F(TenantPromotionTest, LowStaticityValuesNeverGraduate) {
  RebuildWithPromotion(2, /*min_staticity=*/11.0);  // unreachable floor
  ASSERT_TRUE(cache_->Insert(RequestFor(0, 0, "a"), 1.0).has_value());
  ASSERT_TRUE(cache_->Insert(RequestFor(0, 1, "b"), 2.0).has_value());
  EXPECT_EQ(cache_->counters().promotions, 0u);
  EXPECT_FALSE(cache_->Lookup(world_.query(0, 2), 3.0, "c").hit.has_value());
}

// ---------------------------------------------------------------------------
// Engine level: a hot tenant flooding inserts cannot evict a victim
// tenant's resident SEs or degrade its hit rate.

TEST(TenantEngineTest, HotTenantFloodDoesNotEvictVictimNamespace) {
  MiniWorld world;
  serve::ConcurrentEngineOptions options;
  options.num_shards = 2;
  options.cache.capacity_tokens = 2000.0;  // 1000/shard
  options.housekeeping_interval_sec = 0.0;
  options.tenants.default_quota.budget_fraction = 0.3;  // 300/shard
  serve::ConcurrentShardedEngine engine(&world.embedder, world.judger.get(),
                                        options);

  const std::size_t kVictimTopics = 5;
  for (std::size_t t = 0; t < kVictimTopics; ++t) {
    InsertRequest req;
    req.key = world.query(t, 0);
    req.value = world.answer(t);
    req.staticity = world.topic(t).staticity;
    req.initial_frequency = 1;
    req.tenant = "victim";
    ASSERT_TRUE(engine.Insert(std::move(req)).has_value());
    ASSERT_TRUE(
        engine.Lookup(world.query(t, 1), nullptr, "victim").has_value());
  }

  // The hog floods far more bytes than the whole cache holds; its 0.3
  // budget share must absorb the churn.
  std::string filler = "hog-flood";
  for (int w = 0; w < 74; ++w) filler += " w";  // ~100 tokens
  for (int i = 0; i < 40; ++i) {
    InsertRequest req;
    req.key = "hog query " + std::to_string(i);
    req.value = "hog-" + std::to_string(i) + " " + filler;
    req.initial_frequency = 1;
    req.tenant = "hog";
    engine.Insert(std::move(req));
  }

  // Every victim entry is still resident and still serves hits.
  std::size_t victim_hits = 0;
  for (std::size_t t = 0; t < kVictimTopics; ++t) {
    EXPECT_TRUE(engine.ContainsKey(world.query(t, 0), "victim"))
        << "topic " << t;
    if (engine.Lookup(world.query(t, 2), nullptr, "victim").has_value()) {
      ++victim_hits;
    }
  }
  EXPECT_EQ(victim_hits, kVictimTopics);

  // The flood never spends beyond budget + victim residency.
  EXPECT_LT(engine.TotalUsageTokens(), 2000.0);

  // Per-tenant instruments exist under the dynamic cortex_tenant_ prefix.
  const auto snapshot = engine.registry()->Snapshot();
  bool victim_hits_metric = false, hog_inserts_metric = false;
  for (const auto& entry : snapshot.entries) {
    if (entry.name == "cortex_tenant_victim_hits" && entry.counter_value > 0) {
      victim_hits_metric = true;
    }
    if (entry.name == "cortex_tenant_hog_inserts" && entry.counter_value > 0) {
      hog_inserts_metric = true;
    }
  }
  EXPECT_TRUE(victim_hits_metric);
  EXPECT_TRUE(hog_inserts_metric);
}

}  // namespace
}  // namespace cortex
