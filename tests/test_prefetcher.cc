#include "core/prefetcher.h"

#include <gtest/gtest.h>

namespace cortex {
namespace {

PrefetcherOptions Loose() {
  PrefetcherOptions opts;
  opts.confidence_threshold = 0.5;
  opts.min_observations = 2;
  return opts;
}

TEST(MarkovPrefetcher, LearnsRepeatedTransition) {
  MarkovPrefetcher p(Loose());
  for (int i = 0; i < 5; ++i) {
    p.Record("query a");
    p.Record("query b");
  }
  const auto preds = p.Predict("query a");
  ASSERT_EQ(preds.size(), 1u);
  EXPECT_EQ(preds[0].query, "query b");
  EXPECT_GT(preds[0].probability, 0.9);
}

TEST(MarkovPrefetcher, NoPredictionBelowSupport) {
  MarkovPrefetcher p(Loose());
  p.Record("a");
  p.Record("b");  // a->b observed once; min_observations = 2
  EXPECT_TRUE(p.Predict("a").empty());
}

TEST(MarkovPrefetcher, ThresholdFiltersWeakTransitions) {
  PrefetcherOptions opts = Loose();
  opts.confidence_threshold = 0.6;
  MarkovPrefetcher p(opts);
  // a -> b twice, a -> c twice, a -> d once: no successor reaches 0.6.
  for (const char* next : {"b", "c", "b", "c", "d"}) {
    p.Record("a");
    p.Record(next);
  }
  EXPECT_TRUE(p.Predict("a").empty());
}

TEST(MarkovPrefetcher, TransitionProbabilityNormalises) {
  MarkovPrefetcher p(Loose());
  for (const char* next : {"b", "b", "b", "c"}) {
    p.Record("a");
    p.Record(next);
  }
  const double pb = p.TransitionProbability("a", "b");
  const double pc = p.TransitionProbability("a", "c");
  EXPECT_GT(pb, pc);
  EXPECT_NEAR(pb + pc, 1.0, 0.05);  // decay makes this approximate
  EXPECT_DOUBLE_EQ(p.TransitionProbability("a", "zzz"), 0.0);
  EXPECT_DOUBLE_EQ(p.TransitionProbability("unknown", "b"), 0.0);
}

TEST(MarkovPrefetcher, SelfTransitionsAreIgnored) {
  MarkovPrefetcher p(Loose());
  for (int i = 0; i < 5; ++i) p.Record("same");
  EXPECT_EQ(p.num_states(), 0u);
}

TEST(MarkovPrefetcher, SessionStreamsDoNotInterleave) {
  MarkovPrefetcher p(Loose());
  // Two sessions interleaved in real time; transitions must be learned
  // within each session only.
  for (int i = 0; i < 4; ++i) {
    p.Record(1, "s1 first");
    p.Record(2, "s2 first");
    p.Record(1, "s1 second");
    p.Record(2, "s2 second");
  }
  const auto preds1 = p.Predict("s1 first");
  ASSERT_EQ(preds1.size(), 1u);
  EXPECT_EQ(preds1[0].query, "s1 second");
  // No cross-session transition learned.
  EXPECT_DOUBLE_EQ(p.TransitionProbability("s1 first", "s2 first"), 0.0);
}

TEST(MarkovPrefetcher, GlobalStreamWouldInterleave) {
  // Demonstrates why the keyed overload exists: the same interleaving fed
  // through the global stream learns the wrong transitions.
  MarkovPrefetcher p(Loose());
  for (int i = 0; i < 4; ++i) {
    p.Record("s1 first");
    p.Record("s2 first");
    p.Record("s1 second");
    p.Record("s2 second");
  }
  EXPECT_GT(p.TransitionProbability("s1 first", "s2 first"), 0.5);
}

TEST(MarkovPrefetcher, DecayFadesStaleSuccessors) {
  PrefetcherOptions opts = Loose();
  opts.decay_factor = 0.5;
  MarkovPrefetcher p(opts);
  // Old regime: a -> b.
  for (int i = 0; i < 6; ++i) {
    p.Record("a");
    p.Record("b");
  }
  // New regime: a -> c.
  for (int i = 0; i < 6; ++i) {
    p.Record("a");
    p.Record("c");
  }
  EXPECT_GT(p.TransitionProbability("a", "c"),
            p.TransitionProbability("a", "b"));
}

TEST(MarkovPrefetcher, SuccessorFanOutIsCapped) {
  PrefetcherOptions opts = Loose();
  opts.max_successors_per_state = 3;
  MarkovPrefetcher p(opts);
  for (int i = 0; i < 20; ++i) {
    p.Record("hub");
    p.Record("spoke " + std::to_string(i));
  }
  // Internal cap: predictions can never exceed the fan-out cap.
  EXPECT_LE(p.Predict("hub").size(), 3u);
}

TEST(MarkovPrefetcher, MaxPredictionsLimitsOutput) {
  PrefetcherOptions opts = Loose();
  opts.confidence_threshold = 0.1;
  opts.max_predictions = 1;
  MarkovPrefetcher p(opts);
  for (int i = 0; i < 10; ++i) {
    p.Record("a");
    p.Record(i % 2 ? "b" : "c");
  }
  EXPECT_LE(p.Predict("a").size(), 1u);
}

TEST(MarkovPrefetcher, PredictionsAreSortedByProbability) {
  PrefetcherOptions opts = Loose();
  opts.confidence_threshold = 0.05;
  opts.max_predictions = 5;
  MarkovPrefetcher p(opts);
  for (int i = 0; i < 30; ++i) {
    p.Record("a");
    p.Record(i % 3 == 0 ? "rare" : "common");
  }
  const auto preds = p.Predict("a");
  ASSERT_GE(preds.size(), 2u);
  EXPECT_EQ(preds[0].query, "common");
  EXPECT_GE(preds[0].probability, preds[1].probability);
}

TEST(MarkovPrefetcher, ResetForgetsEverything) {
  MarkovPrefetcher p(Loose());
  for (int i = 0; i < 5; ++i) {
    p.Record("a");
    p.Record("b");
  }
  p.Reset();
  EXPECT_EQ(p.num_states(), 0u);
  EXPECT_TRUE(p.Predict("a").empty());
}

}  // namespace
}  // namespace cortex
