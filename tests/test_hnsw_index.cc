#include "ann/hnsw_index.h"

#include <gtest/gtest.h>

#include "ann/flat_index.h"
#include "util/rng.h"

namespace cortex {
namespace {

Vector RandomUnit(std::size_t dim, Rng& rng) {
  Vector v(dim);
  for (auto& x : v) x = static_cast<float>(rng.Normal());
  Normalize(v);
  return v;
}

TEST(HnswIndex, EmptyAndSingle) {
  HnswIndex idx(8);
  Rng rng(1);
  EXPECT_TRUE(idx.Search(RandomUnit(8, rng), 3, -1.0).empty());
  const auto v = RandomUnit(8, rng);
  idx.Add(9, v);
  const auto r = idx.Search(v, 3, -1.0);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].id, 9u);
  EXPECT_NEAR(r[0].similarity, 1.0, 1e-6);
}

TEST(HnswIndex, SelfQueriesFindSelf) {
  HnswIndex idx(16);
  Rng rng(2);
  std::vector<Vector> vecs;
  for (VectorId i = 0; i < 200; ++i) {
    vecs.push_back(RandomUnit(16, rng));
    idx.Add(i, vecs.back());
  }
  int correct = 0;
  for (VectorId i = 0; i < 200; ++i) {
    const auto r = idx.Search(vecs[i], 1, -1.0);
    if (!r.empty() && r[0].id == i) ++correct;
  }
  EXPECT_GE(correct, 195);  // graph search is approximate but near-exact here
}

TEST(HnswIndex, RecallAtTenVsFlat) {
  constexpr std::size_t kDim = 24, kN = 500;
  HnswIndex hnsw(kDim);
  FlatIndex flat(kDim);
  Rng rng(3);
  for (VectorId i = 0; i < kN; ++i) {
    const auto v = RandomUnit(kDim, rng);
    hnsw.Add(i, v);
    flat.Add(i, v);
  }
  int found = 0, total = 0;
  for (int t = 0; t < 40; ++t) {
    const auto q = RandomUnit(kDim, rng);
    const auto truth = flat.Search(q, 10, -1.0);
    const auto approx = hnsw.Search(q, 10, -1.0);
    for (const auto& tr : truth) {
      ++total;
      for (const auto& ap : approx) {
        if (ap.id == tr.id) {
          ++found;
          break;
        }
      }
    }
  }
  EXPECT_GT(static_cast<double>(found) / total, 0.8);
}

TEST(HnswIndex, RemoveTombstonesAndFiltersResults) {
  HnswIndex idx(8);
  Rng rng(4);
  std::vector<Vector> vecs;
  for (VectorId i = 0; i < 50; ++i) {
    vecs.push_back(RandomUnit(8, rng));
    idx.Add(i, vecs.back());
  }
  EXPECT_TRUE(idx.Remove(7));
  EXPECT_FALSE(idx.Remove(7));
  EXPECT_FALSE(idx.Contains(7));
  EXPECT_FALSE(idx.Get(7).has_value());
  EXPECT_EQ(idx.size(), 49u);
  const auto r = idx.Search(vecs[7], 10, -1.0);
  for (const auto& res : r) EXPECT_NE(res.id, 7u);
}

TEST(HnswIndex, RebuildCompactsTombstones) {
  HnswOptions opts;
  opts.tombstone_rebuild_ratio = 0.3;
  HnswIndex idx(8, opts);
  Rng rng(5);
  for (VectorId i = 0; i < 60; ++i) idx.Add(i, RandomUnit(8, rng));
  for (VectorId i = 0; i < 25; ++i) idx.Remove(i);
  // Compaction keeps the tombstone ratio below the configured bound.
  EXPECT_EQ(idx.size(), 35u);
  EXPECT_LT(static_cast<double>(idx.tombstone_count()),
            0.3 * static_cast<double>(idx.graph_size()) + 1.0);
  EXPECT_LT(idx.graph_size(), 60u);  // at least one rebuild happened
  // Survivors remain searchable.
  const auto v = *idx.Get(40);
  const auto r = idx.Search(v, 1, -1.0);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].id, 40u);
}

TEST(HnswIndex, ReAddAfterRemoveWorks) {
  HnswIndex idx(8);
  Rng rng(6);
  const auto v1 = RandomUnit(8, rng);
  const auto v2 = RandomUnit(8, rng);
  idx.Add(1, v1);
  idx.Remove(1);
  idx.Add(1, v2);
  EXPECT_TRUE(idx.Contains(1));
  const auto r = idx.Search(v2, 1, -1.0);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_NEAR(r[0].similarity, 1.0, 1e-6);
}

TEST(HnswIndex, ReAddLiveIdReplacesVector) {
  HnswIndex idx(8);
  Rng rng(7);
  const auto v1 = RandomUnit(8, rng);
  const auto v2 = RandomUnit(8, rng);
  idx.Add(1, v1);
  idx.Add(1, v2);
  EXPECT_EQ(idx.size(), 1u);
  ASSERT_TRUE(idx.Get(1).has_value());
  EXPECT_EQ(*idx.Get(1), v2);
}

TEST(HnswIndex, MinSimilarityFilters) {
  HnswIndex idx(2);
  Vector a = {1, 0}, b = {0, 1};
  idx.Add(1, a);
  idx.Add(2, b);
  const auto r = idx.Search(a, 10, 0.5);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].id, 1u);
}

TEST(HnswIndex, SurvivesHeavyChurn) {
  HnswIndex idx(8);
  Rng rng(8);
  for (int round = 0; round < 10; ++round) {
    for (VectorId i = 0; i < 30; ++i) {
      idx.Add(round * 100 + i, RandomUnit(8, rng));
    }
    for (VectorId i = 0; i < 20; ++i) {
      idx.Remove(round * 100 + i);
    }
  }
  EXPECT_EQ(idx.size(), 100u);
  // All survivors findable by self query.
  int correct = 0;
  for (int round = 0; round < 10; ++round) {
    for (VectorId i = 20; i < 30; ++i) {
      const VectorId id = round * 100 + i;
      const auto r = idx.Search(*idx.Get(id), 1, -1.0);
      if (!r.empty() && r[0].id == id) ++correct;
    }
  }
  EXPECT_GE(correct, 95);
}

TEST(HnswIndex, HeuristicSelectionHelpsOnClusteredData) {
  // Tight clusters with a few bridge points: plain top-M linking tends to
  // point every edge into the local clump, hurting cross-cluster recall.
  constexpr std::size_t kDim = 16, kClusters = 8, kPerCluster = 60;
  Rng rng(11);
  std::vector<Vector> centres;
  for (std::size_t c = 0; c < kClusters; ++c) {
    centres.push_back(RandomUnit(kDim, rng));
  }
  std::vector<Vector> data;
  for (std::size_t c = 0; c < kClusters; ++c) {
    for (std::size_t i = 0; i < kPerCluster; ++i) {
      Vector v = centres[c];
      for (auto& x : v) x += static_cast<float>(rng.Normal(0, 0.08));
      Normalize(v);
      data.push_back(std::move(v));
    }
  }

  auto recall = [&](bool heuristic) {
    HnswOptions opts;
    opts.heuristic_selection = heuristic;
    HnswIndex idx(kDim, opts);
    FlatIndex flat(kDim);
    for (VectorId i = 0; i < data.size(); ++i) {
      idx.Add(i, data[i]);
      flat.Add(i, data[i]);
    }
    int found = 0, total = 0;
    Rng qrng(12);
    for (int t = 0; t < 60; ++t) {
      Vector q = centres[qrng.NextBelow(kClusters)];
      for (auto& x : q) x += static_cast<float>(qrng.Normal(0, 0.1));
      Normalize(q);
      const auto truth = flat.Search(q, 10, -1.0);
      const auto approx = idx.Search(q, 10, -1.0);
      for (const auto& tr : truth) {
        ++total;
        for (const auto& ap : approx) {
          if (ap.id == tr.id) {
            ++found;
            break;
          }
        }
      }
    }
    return static_cast<double>(found) / total;
  };

  const double with_heuristic = recall(true);
  const double without = recall(false);
  EXPECT_GE(with_heuristic + 0.02, without);  // never meaningfully worse
  EXPECT_GT(with_heuristic, 0.85);
}

}  // namespace
}  // namespace cortex
