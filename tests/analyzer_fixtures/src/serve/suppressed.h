// Suppression fixture: the unannotated field opts out, so the guarded-by
// finding lands in the suppressed bucket and the annotation is not stale.
#pragma once

#include "util/ranked_mutex.h"

namespace mini {

class Quiet {
 private:
  RankedMutex mu_{LockRank::kLeaf, "quiet.mu"};
  int scratch_ = 0;  // cortex-analyzer: allow(guarded-by)
};

}  // namespace mini
