// metric-contract fixture: cortex_widget_hits is registered twice;
// cortex_widget_misses is used but never registered.
#include "telemetry/metrics.h"

namespace mini {

void RegisterAll(MetricRegistry* registry) {
  registry->GetCounter("cortex_widget_hits");
  registry->GetCounter("cortex_widget_hits");
}

const char* MissName() { return "cortex_widget_misses"; }

}  // namespace mini
