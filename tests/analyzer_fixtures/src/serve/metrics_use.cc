// metric-contract fixture: cortex_widget_hits is registered twice;
// cortex_widget_misses is used but never registered.
#include "telemetry/metrics.h"

namespace mini {

void RegisterAll(MetricRegistry* registry) {
  registry->GetCounter("cortex_widget_hits");
  registry->GetCounter("cortex_widget_hits");
}

const char* MissName() { return "cortex_widget_misses"; }

// Per-tenant instruments: the static registration under the
// "cortex_tenant_" prefix is flagged (bypasses the cardinality cap); the
// dynamic-prefix registration is the sanctioned path and is not.
void RegisterTenant(MetricRegistry* registry, const std::string& id) {
  registry->GetCounter("cortex_tenant_bad_hits");
  registry->GetCounter("cortex_tenant_" + id);
}

}  // namespace mini
