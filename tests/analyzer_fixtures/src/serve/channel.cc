// io-under-lock fixture: a blocking ::send directly under a guard
// (Publish) and one reached through a free function (Flush -> SendAll).
#include "util/ranked_mutex.h"

namespace mini {

int SendAll(int fd) {
  return static_cast<int>(::send(fd, nullptr, 0, 0));
}

class Channel {
 public:
  void Publish(int fd);
  void Flush(int fd);

 private:
  RankedMutex mu_{LockRank::kEngineShard, "channel.mu"};
  int pending_ GUARDED_BY(mu_) = 0;
};

void Channel::Publish(int fd) {
  MutexLock lock(mu_);
  pending_ = fd;
  ::send(fd, nullptr, 0, 0);
}

void Channel::Flush(int fd) {
  MutexLock lock(mu_);
  SendAll(fd);
}

}  // namespace mini
