// verb-contract fixture: dispatch switch that forgot kLookup.
#include "serve/protocol.h"

namespace mini {

int Handle(const Request& request) {
  switch (request.type) {
    case RequestType::kPing:
      return 1;
    default:
      return 0;
  }
}

}  // namespace mini
