// Epoch-section fixtures: an EpochReadGuard is modeled as a synthetic
// guard at rank 2000 ("epoch.read"), so a ranked mutex acquired inside
// the section is a lock-rank inversion (LockedProbe) and a blocking
// syscall inside one is io-under-lock (BlockingProbe).  CleanProbe shows
// the legal shape — guard scope closes before the lock is taken.
#include "util/epoch.h"
#include "util/ranked_mutex.h"

namespace mini {

class Reader {
 public:
  int LockedProbe();
  void BlockingProbe(int fd);
  int CleanProbe();

 private:
  EpochDomain epoch_;
  RankedSharedMutex mu_{LockRank::kEngineShard, "reader.mu"};
  int hits_ GUARDED_BY(mu_) = 0;
};

int Reader::LockedProbe() {
  EpochReadGuard guard(epoch_);
  ReaderLock lock(mu_);
  return hits_;
}

void Reader::BlockingProbe(int fd) {
  EpochReadGuard guard(epoch_);
  ::recv(fd, nullptr, 0, 0);
}

int Reader::CleanProbe() {
  {
    EpochReadGuard guard(epoch_);
  }
  ReaderLock lock(mu_);
  return hits_;
}

}  // namespace mini
