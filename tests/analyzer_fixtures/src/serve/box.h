// guarded-by fixture: one unannotated mutable field in a mutex-owning
// class; the annotated, const, and atomic siblings are all exempt.
#pragma once

#include <atomic>

#include "util/ranked_mutex.h"

namespace mini {

class Box {
 public:
  int value() const;

 private:
  RankedMutex mu_{LockRank::kLeaf, "box.mu"};
  int value_ = 0;
  int annotated_ GUARDED_BY(mu_) = 0;
  const int limit_ = 8;
  std::atomic<int> epoch_{0};
};

}  // namespace mini
