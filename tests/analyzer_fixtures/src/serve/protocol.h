// verb-contract fixture: the wire verb enum the dispatch switch in
// handler.cc is checked against.
#pragma once

namespace mini {

enum class RequestType {
  kLookup = 0,
  kPing = 1,
  kTenantLookup = 2,  // newly-added verb handler.cc does not dispatch
};

struct Request {
  RequestType type = RequestType::kPing;
};

}  // namespace mini
