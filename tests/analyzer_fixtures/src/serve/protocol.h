// verb-contract fixture: the wire verb enum the dispatch switch in
// handler.cc is checked against.
#pragma once

namespace mini {

enum class RequestType {
  kLookup = 0,
  kPing = 1,
};

struct Request {
  RequestType type = RequestType::kPing;
};

}  // namespace mini
