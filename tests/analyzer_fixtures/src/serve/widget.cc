// lock-rank fixture: one direct inversion (Direct acquires rank 10 under
// rank 50) and one transitive inversion (High holds rank 50 and calls
// Low, which acquires rank 10).
#include "util/ranked_mutex.h"

namespace mini {

class Widget {
 public:
  void High();
  void Low();
  void Direct();

 private:
  RankedMutex high_mu_{LockRank::kEngineShard, "widget.high_mu"};
  RankedMutex low_mu_{LockRank::kServerQueue, "widget.low_mu"};
  int guarded_value_ GUARDED_BY(low_mu_) = 0;
};

void Widget::Low() {
  MutexLock lock(low_mu_);
  guarded_value_ += 1;
}

void Widget::High() {
  MutexLock lock(high_mu_);
  Low();
}

void Widget::Direct() {
  MutexLock outer(high_mu_);
  MutexLock inner(low_mu_);
  guarded_value_ = 2;
}

}  // namespace mini
