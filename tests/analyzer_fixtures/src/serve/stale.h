// stale-allow fixture: one annotation naming a known check that
// suppresses nothing, and one naming a check that does not exist.
#pragma once

namespace mini {

// cortex-analyzer: allow(layering)
inline int Identity(int v) { return v; }

inline int Twice(int v) { return v + v; }  // cortex-analyzer: allow(bogus-check)

}  // namespace mini
