// layering fixture: core/ must not include telemetry/ (the util include
// is legal and proves the check is edge-specific, not file-wide).
#pragma once

#include "telemetry/metrics.h"
#include "util/ranked_mutex.h"

namespace mini {

inline int Plan() { return 1; }

}  // namespace mini
