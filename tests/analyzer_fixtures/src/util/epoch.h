// Fixture mirror of src/util/epoch.h — just enough surface for
// cortex_analyzer's parser: the domain type and the read-guard idiom it
// recognizes as a synthetic rank-2000 guard.  Never compiled; read as
// data by test_analyzer.
#pragma once

namespace mini {

class EpochDomain {
 public:
  void Retire();
  void Flush();
};

class EpochReadGuard {
 public:
  explicit EpochReadGuard(EpochDomain& domain);
  ~EpochReadGuard();
};

}  // namespace mini
