// Fixture mirror of src/util/ranked_mutex.h — just enough surface for
// cortex_analyzer's parser: the LockRank enum, ranked mutex classes, and
// the guard idioms.  Never compiled; read as data by test_analyzer.
#pragma once

#include <mutex>
#include <shared_mutex>

namespace mini {

enum class LockRank : int {
  kServerQueue = 10,
  kEngineShard = 50,
  kLeaf = 1000,
};

class RankedMutex {
 public:
  RankedMutex(LockRank rank, const char* name) : rank_(rank), name_(name) {}
  void lock();
  void unlock();

 private:
  std::mutex mu_;
  const LockRank rank_;
  const char* const name_;
};

class RankedSharedMutex {
 public:
  RankedSharedMutex(LockRank rank, const char* name)
      : rank_(rank), name_(name) {}
  void lock();
  void unlock();
  void lock_shared();
  void unlock_shared();

 private:
  std::shared_mutex mu_;
  const LockRank rank_;
  const char* const name_;
};

class MutexLock {
 public:
  explicit MutexLock(RankedMutex& mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() { mu_.unlock(); }

 private:
  RankedMutex& mu_;
};

class WriterLock {
 public:
  explicit WriterLock(RankedSharedMutex& mu) : mu_(mu) { mu_.lock(); }
  ~WriterLock() { mu_.unlock(); }

 private:
  RankedSharedMutex& mu_;
};

class ReaderLock {
 public:
  explicit ReaderLock(RankedSharedMutex& mu) : mu_(mu) { mu_.lock_shared(); }
  ~ReaderLock() { mu_.unlock_shared(); }

 private:
  RankedSharedMutex& mu_;
};

}  // namespace mini
