// Fixture mirror of the telemetry registry surface.  Mutex-free on
// purpose: this file exists to be the *target* of a forbidden include and
// the provider of GetCounter for the metric-contract fixture.
#pragma once

namespace mini {

class Counter {
 public:
  void Inc();
};

class MetricRegistry {
 public:
  Counter* GetCounter(const char* name);
};

}  // namespace mini
