#include "ann/pq.h"

#include <gtest/gtest.h>

#include "ann/flat_index.h"
#include "util/rng.h"

namespace cortex {
namespace {

Vector RandomUnit(std::size_t dim, Rng& rng) {
  Vector v(dim);
  for (auto& x : v) x = static_cast<float>(rng.Normal());
  Normalize(v);
  return v;
}

std::vector<float> RandomCorpus(std::size_t n, std::size_t dim, Rng& rng) {
  std::vector<float> data;
  data.reserve(n * dim);
  for (std::size_t i = 0; i < n; ++i) {
    const auto v = RandomUnit(dim, rng);
    data.insert(data.end(), v.begin(), v.end());
  }
  return data;
}

PqOptions SmallPq() {
  PqOptions opts;
  opts.num_subspaces = 8;
  opts.codebook_size = 32;
  opts.train_points = 64;
  return opts;
}

// --- ProductQuantizer ---

TEST(ProductQuantizer, EncodeDecodeRoundTripApproximates) {
  constexpr std::size_t kDim = 32, kN = 300;
  Rng rng(1);
  const auto data = RandomCorpus(kN, kDim, rng);
  ProductQuantizer pq(kDim, SmallPq());
  pq.Train(data, kN);
  ASSERT_TRUE(pq.trained());
  // Reconstruction error well below the squared norm (=1) of the inputs.
  EXPECT_LT(pq.ReconstructionError(data, kN), 0.6);
}

TEST(ProductQuantizer, CodesAreCompact) {
  constexpr std::size_t kDim = 32;
  Rng rng(2);
  const auto data = RandomCorpus(128, kDim, rng);
  ProductQuantizer pq(kDim, SmallPq());
  pq.Train(data, 128);
  const auto code = pq.Encode(std::span<const float>(data).first(kDim));
  EXPECT_EQ(code.size(), 8u);  // M bytes for a 32-float vector
  for (auto c : code) EXPECT_LT(c, pq.codebook_size());
}

TEST(ProductQuantizer, AdcTableMatchesDecodedDot) {
  constexpr std::size_t kDim = 32;
  Rng rng(3);
  const auto data = RandomCorpus(128, kDim, rng);
  ProductQuantizer pq(kDim, SmallPq());
  pq.Train(data, 128);
  const auto q = RandomUnit(kDim, rng);
  const auto table = pq.BuildDotTable(q);
  for (int i = 0; i < 10; ++i) {
    const auto row = std::span<const float>(data).subspan(i * kDim, kDim);
    const auto code = pq.Encode(row);
    const double via_table = pq.DotFromTable(table, code);
    const double via_decode = Dot(q, pq.Decode(code));
    EXPECT_NEAR(via_table, via_decode, 1e-5);
  }
}

TEST(ProductQuantizer, TinyCorpusShrinksCodebook) {
  constexpr std::size_t kDim = 16;
  Rng rng(4);
  const auto data = RandomCorpus(10, kDim, rng);
  PqOptions opts;
  opts.num_subspaces = 4;
  opts.codebook_size = 256;
  ProductQuantizer pq(kDim, opts);
  pq.Train(data, 10);
  EXPECT_TRUE(pq.trained());
  EXPECT_LE(pq.codebook_size(), 10u);
}

// --- PqIndex ---

TEST(PqIndex, ExactScanBeforeTraining) {
  PqIndex idx(16, SmallPq());
  Rng rng(5);
  const auto v = RandomUnit(16, rng);
  idx.Add(1, v);
  EXPECT_FALSE(idx.is_trained());
  const auto r = idx.Search(v, 1, -1.0);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_NEAR(r[0].similarity, 1.0, 1e-6);
}

TEST(PqIndex, TrainsAtThresholdAndStillFindsSelf) {
  PqIndex idx(32, SmallPq());
  Rng rng(6);
  std::vector<Vector> vecs;
  for (VectorId i = 0; i < 100; ++i) {
    vecs.push_back(RandomUnit(32, rng));
    idx.Add(i, vecs.back());
  }
  ASSERT_TRUE(idx.is_trained());
  int correct = 0;
  for (VectorId i = 0; i < 100; ++i) {
    const auto r = idx.Search(vecs[i], 1, -1.0);
    if (!r.empty() && r[0].id == i) ++correct;
  }
  // ADC is approximate, but self-queries should mostly win.
  EXPECT_GE(correct, 70);
}

TEST(PqIndex, RecallAtFiveVsFlat) {
  constexpr std::size_t kDim = 32, kN = 400;
  PqIndex pq(kDim, SmallPq());
  FlatIndex flat(kDim);
  Rng rng(7);
  for (VectorId i = 0; i < kN; ++i) {
    const auto v = RandomUnit(kDim, rng);
    pq.Add(i, v);
    flat.Add(i, v);
  }
  int found = 0, total = 0;
  for (int t = 0; t < 40; ++t) {
    const auto q = RandomUnit(kDim, rng);
    const auto truth = flat.Search(q, 5, -1.0);
    const auto approx = pq.Search(q, 5, -1.0);
    for (const auto& tr : truth) {
      ++total;
      for (const auto& ap : approx) {
        if (ap.id == tr.id) {
          ++found;
          break;
        }
      }
    }
  }
  // Random gaussian unit vectors are PQ's worst case (no cluster
  // structure for the codebooks to exploit); real embedding corpora fare
  // far better (see bench_ann).
  EXPECT_GT(static_cast<double>(found) / total, 0.35);
}

TEST(PqIndex, RemoveAndContains) {
  PqIndex idx(16, SmallPq());
  Rng rng(8);
  for (VectorId i = 0; i < 80; ++i) idx.Add(i, RandomUnit(16, rng));
  EXPECT_TRUE(idx.Contains(3));
  EXPECT_TRUE(idx.Remove(3));
  EXPECT_FALSE(idx.Remove(3));
  EXPECT_FALSE(idx.Contains(3));
  EXPECT_EQ(idx.size(), 79u);
  const auto r = idx.Search(RandomUnit(16, rng), 79, -1.0);
  for (const auto& res : r) EXPECT_NE(res.id, 3u);
}

TEST(PqIndex, GetReturnsExactVector) {
  PqIndex idx(16, SmallPq());
  Rng rng(9);
  const auto v = RandomUnit(16, rng);
  idx.Add(42, v);
  ASSERT_TRUE(idx.Get(42).has_value());
  EXPECT_EQ(*idx.Get(42), v);  // exact, not the decoded approximation
}

TEST(PqIndex, CompressedFootprintIsSmall) {
  PqIndex idx(256, SmallPq());
  EXPECT_EQ(idx.bytes_per_vector(), 8u);  // vs 1024 bytes of float32
}

TEST(PqIndex, MinSimilarityFilterHolds) {
  PqIndex idx(32, SmallPq());
  Rng rng(10);
  for (VectorId i = 0; i < 120; ++i) idx.Add(i, RandomUnit(32, rng));
  const auto r = idx.Search(RandomUnit(32, rng), 120, 0.4);
  for (const auto& res : r) EXPECT_GE(res.similarity, 0.4);
}

}  // namespace
}  // namespace cortex
