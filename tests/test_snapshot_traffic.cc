// Snapshot-under-traffic: SaveSnapshot/LoadSnapshot racing live writers,
// readers (whose hit commits upgrade to the exclusive lock), and the
// background housekeeping thread purging aggressive TTLs.  The assertions
// are deliberately coarse — the real check is that the TSan leg
// (scripts/tsan.sh) sees no data race between the snapshot reader's
// per-shard shared locks and the mutating paths.
#include "serve/concurrent_engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "test_helpers.h"

namespace cortex {
namespace {

using cortex::testing::MiniWorld;

class SnapshotTrafficTest : public ::testing::Test {
 protected:
  SnapshotTrafficTest() : world_(48, /*seed=*/47) {}

  InsertRequest RequestFor(std::size_t topic) {
    InsertRequest req;
    req.key = world_.query(topic, 0);
    req.value = world_.answer(topic);
    req.staticity = world_.topic(topic).staticity;
    req.initial_frequency = 1;
    return req;
  }

  MiniWorld world_;
};

TEST_F(SnapshotTrafficTest, SaveAndLoadRaceWritersReadersAndTtlPurge) {
  serve::ConcurrentEngineOptions opts;
  opts.num_shards = 4;
  opts.cache.capacity_tokens = 1e6;
  // Aggressive wall-clock TTLs + a hot housekeeping cadence so expiry
  // purges genuinely interleave with the snapshot stream.
  opts.cache.min_ttl_sec = 0.01;
  opts.cache.max_ttl_sec = 0.05;
  opts.housekeeping_interval_sec = 0.001;
  serve::ConcurrentShardedEngine engine(&world_.embedder,
                                        world_.judger.get(), opts);

  std::atomic<bool> stop{false};

  // Writer: keeps the topic entries populated (dedup refresh renews their
  // TTLs), and interleaves unique one-shot keys at the minimum staticity —
  // those are never renewed, so the TTL reaper has real work to do while
  // snapshots stream.
  std::thread writer([&] {
    std::size_t n = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      engine.Insert(RequestFor(n % world_.universe->size()));
      InsertRequest churn;
      churn.key = "one-shot churn key " + std::to_string(n);
      churn.value = "short-lived filler value " + std::to_string(n);
      churn.staticity = 1.0;  // min TTL: expires in 10ms
      churn.initial_frequency = 1;
      engine.Insert(std::move(churn));
      ++n;
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  });

  // Readers: paraphrase lookups — a hit's frequency commit takes the
  // exclusive shard lock, racing the snapshot's shared lock.
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      std::size_t i = static_cast<std::size_t>(r);
      while (!stop.load(std::memory_order_relaxed)) {
        engine.Lookup(world_.query(i % world_.universe->size(), 1 + r));
        ++i;
      }
    });
  }

  // Main thread: snapshot out and restore back, repeatedly, mid-traffic.
  std::uint64_t saved_total = 0, restored_total = 0;
  for (int round = 0; round < 8; ++round) {
    std::stringstream buffer;
    const SnapshotStats saved = engine.SaveSnapshot(buffer);
    saved_total += saved.entries_written;
    const SnapshotStats loaded = engine.LoadSnapshot(buffer);
    restored_total += loaded.entries_restored;
    // Everything written is accounted for on restore: re-admitted, expired
    // in transit (tiny TTLs), or deduped against a concurrent re-insert.
    EXPECT_EQ(loaded.entries_restored + loaded.entries_expired +
                  loaded.entries_rejected,
              saved.entries_written)
        << "round " << round;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  stop.store(true, std::memory_order_relaxed);
  writer.join();
  for (auto& t : readers) t.join();

  // The writer keeps ~48 live topics flowing, so snapshots were non-trivial.
  EXPECT_GT(saved_total, 0u);
  EXPECT_GT(restored_total, 0u);

  // Housekeeping really purged TTLs while the snapshots streamed.
  const auto stats = engine.Stats();
  EXPECT_GT(stats.expired_removed, 0u);
  EXPECT_GT(stats.housekeeping_runs, 0u);
  EXPECT_GT(stats.inserts, 0u);

  // The engine is still fully serviceable after the churn.
  engine.StopHousekeeping();
  auto req = RequestFor(0);
  req.key += " (post-churn)";
  ASSERT_TRUE(engine.Insert(std::move(req)).has_value());
  EXPECT_TRUE(engine.ContainsKey(world_.query(0, 0) + " (post-churn)"));
}

TEST_F(SnapshotTrafficTest, SnapshotIsPerShardConsistentUnderChurn) {
  // Narrower variant: one writer hammering a single hot topic (dedup
  // refresh path) while snapshots stream — catches torn per-element state.
  serve::ConcurrentEngineOptions opts;
  opts.num_shards = 2;
  opts.cache.capacity_tokens = 1e6;
  opts.housekeeping_interval_sec = 0.0;
  serve::ConcurrentShardedEngine engine(&world_.embedder,
                                        world_.judger.get(), opts);
  for (std::size_t topic = 0; topic < 16; ++topic) {
    ASSERT_TRUE(engine.Insert(RequestFor(topic)).has_value());
  }

  std::atomic<bool> stop{false};
  std::thread churner([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      engine.Insert(RequestFor(3));  // dedup-refresh the same entry
      engine.RemoveExpired();
    }
  });

  for (int round = 0; round < 20; ++round) {
    std::stringstream buffer;
    const SnapshotStats saved = engine.SaveSnapshot(buffer);
    EXPECT_GE(saved.entries_written, 16u) << "round " << round;
    // Each element in the stream parses back intact.
    std::uint64_t seen = 0;
    buffer.seekg(0);
    EXPECT_NO_THROW(seen = serve::ForEachEngineSnapshotElement(
                        buffer, [](SemanticElement se) {
                          EXPECT_FALSE(se.key.empty());
                          EXPECT_FALSE(se.value.empty());
                        }));
    EXPECT_EQ(seen, saved.entries_written) << "round " << round;
  }
  stop.store(true, std::memory_order_relaxed);
  churner.join();
}

}  // namespace
}  // namespace cortex
