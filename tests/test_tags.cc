#include "llm/tags.h"

#include <gtest/gtest.h>

namespace cortex {
namespace {

TEST(Tags, WrapProducesCanonicalForm) {
  EXPECT_EQ(WrapTag(TagKind::kSearch, "who painted the mona lisa"),
            "<search>who painted the mona lisa</search>");
  EXPECT_EQ(WrapTag(TagKind::kThink, ""), "<think></think>");
}

TEST(Tags, ParseSingleBlock) {
  const auto segs = ParseTagged("<think>plan the query</think>");
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].kind, TagKind::kThink);
  EXPECT_EQ(segs[0].content, "plan the query");
}

TEST(Tags, ParseAgentTurnSequence) {
  const auto segs = ParseTagged(
      "<think>I need the painter.</think>"
      "<search>who painted the mona lisa</search>");
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0].kind, TagKind::kThink);
  EXPECT_EQ(segs[1].kind, TagKind::kSearch);
  EXPECT_EQ(segs[1].content, "who painted the mona lisa");
}

TEST(Tags, RoundTripThroughWrapAndParse) {
  for (TagKind kind : {TagKind::kThink, TagKind::kSearch, TagKind::kTool,
                       TagKind::kInfo, TagKind::kAnswer}) {
    const auto segs = ParseTagged(WrapTag(kind, "payload text"));
    ASSERT_EQ(segs.size(), 1u);
    EXPECT_EQ(segs[0].kind, kind);
    EXPECT_EQ(segs[0].content, "payload text");
  }
}

TEST(Tags, TextBetweenBlocksIsPreserved) {
  const auto segs =
      ParseTagged("preamble <info>data</info> trailing words");
  ASSERT_EQ(segs.size(), 3u);
  EXPECT_EQ(segs[0].kind, TagKind::kText);
  EXPECT_EQ(segs[0].content, "preamble");
  EXPECT_EQ(segs[1].kind, TagKind::kInfo);
  EXPECT_EQ(segs[2].content, "trailing words");
}

TEST(Tags, UnknownTagsBecomeText) {
  const auto segs = ParseTagged("<bold>x</bold>");
  ASSERT_FALSE(segs.empty());
  for (const auto& s : segs) EXPECT_EQ(s.kind, TagKind::kText);
}

TEST(Tags, UnterminatedTagRunsToEnd) {
  const auto segs = ParseTagged("<answer>truncated generation");
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].kind, TagKind::kAnswer);
  EXPECT_EQ(segs[0].content, "truncated generation");
}

TEST(Tags, WhitespaceOnlyGlueIsDropped) {
  const auto segs = ParseTagged("<think>a</think>\n  <search>b</search>");
  ASSERT_EQ(segs.size(), 2u);
}

TEST(Tags, FirstToolCallFindsSearchOrTool) {
  const auto segs = ParseTagged(
      "<think>t</think><tool>api call</tool><search>s</search>");
  const auto tool = FirstToolCall(segs);
  ASSERT_TRUE(tool.has_value());
  EXPECT_EQ(tool->kind, TagKind::kTool);
  EXPECT_EQ(tool->content, "api call");
}

TEST(Tags, FirstToolCallEmptyWhenAbsent) {
  EXPECT_FALSE(FirstToolCall(ParseTagged("<think>only</think>")).has_value());
}

TEST(Tags, FinalAnswerExtracted) {
  const auto segs =
      ParseTagged("<think>done</think><answer>Leonardo da Vinci</answer>");
  const auto answer = FinalAnswer(segs);
  ASSERT_TRUE(answer.has_value());
  EXPECT_EQ(*answer, "Leonardo da Vinci");
  EXPECT_FALSE(FinalAnswer(ParseTagged("<think>x</think>")).has_value());
}

TEST(Tags, NestedUnknownAngleBracketsDoNotCrash) {
  const auto segs = ParseTagged("a < b and c > d <info>ok</info>");
  bool found_info = false;
  for (const auto& s : segs) {
    if (s.kind == TagKind::kInfo) {
      found_info = true;
      EXPECT_EQ(s.content, "ok");
    }
  }
  EXPECT_TRUE(found_info);
}

TEST(Tags, TagNameLookup) {
  EXPECT_EQ(TagName(TagKind::kSearch), "search");
  EXPECT_EQ(TagName(TagKind::kText), "text");
}

TEST(ApproxTokenCount, ScalesWithWords) {
  EXPECT_EQ(ApproxTokenCount(""), 0u);
  EXPECT_EQ(ApproxTokenCount("word"), 2u);       // ceil(4/3)
  EXPECT_EQ(ApproxTokenCount("two words"), 3u);  // ceil(8/3)
  EXPECT_EQ(ApproxTokenCount("a b c d e f"), 8u);
  EXPECT_GE(ApproxTokenCount("   "), 1u);  // non-empty but no words
}

TEST(ApproxTokenCount, MonotoneInWordCount) {
  std::string text;
  std::size_t prev = 0;
  for (int i = 0; i < 50; ++i) {
    text += "tok ";
    const auto count = ApproxTokenCount(text);
    EXPECT_GE(count, prev);
    prev = count;
  }
}

}  // namespace
}  // namespace cortex
