#include <gtest/gtest.h>

#include "gpu/batching_server.h"
#include "gpu/colocation.h"
#include "gpu/memory_pool.h"

namespace cortex {
namespace {

// --- KvMemoryPool ---

TEST(KvMemoryPool, StaticPartitionFirst) {
  KvMemoryPool pool(10.0, 2.0, 5.0);
  EXPECT_TRUE(pool.TryReserve(PoolClient::kAgent, 8.0));
  EXPECT_DOUBLE_EQ(pool.static_free_gb(PoolClient::kAgent), 2.0);
  EXPECT_DOUBLE_EQ(pool.dynamic_free_gb(), 5.0);
}

TEST(KvMemoryPool, OverflowSpillsToDynamic) {
  KvMemoryPool pool(10.0, 2.0, 5.0);
  EXPECT_TRUE(pool.TryReserve(PoolClient::kAgent, 13.0));
  EXPECT_DOUBLE_EQ(pool.static_free_gb(PoolClient::kAgent), 0.0);
  EXPECT_DOUBLE_EQ(pool.dynamic_free_gb(), 2.0);
  EXPECT_DOUBLE_EQ(pool.used_gb(PoolClient::kAgent), 13.0);
}

TEST(KvMemoryPool, RejectsWhenDynamicExhausted) {
  KvMemoryPool pool(4.0, 1.0, 2.0);
  EXPECT_TRUE(pool.TryReserve(PoolClient::kAgent, 6.0));  // 4 static + 2 dyn
  EXPECT_FALSE(pool.TryReserve(PoolClient::kJudger, 2.0));  // 1 static + 1 dyn?
  EXPECT_EQ(pool.rejections(), 1u);
}

TEST(KvMemoryPool, SharedDynamicPoolIsContended) {
  KvMemoryPool pool(1.0, 1.0, 3.0);
  EXPECT_TRUE(pool.TryReserve(PoolClient::kAgent, 3.0));   // 1 + 2 dyn
  EXPECT_TRUE(pool.TryReserve(PoolClient::kJudger, 2.0));  // 1 + 1 dyn
  EXPECT_DOUBLE_EQ(pool.dynamic_free_gb(), 0.0);
  EXPECT_FALSE(pool.TryReserve(PoolClient::kAgent, 0.5));
}

TEST(KvMemoryPool, ReleaseReturnsDynamicFirst) {
  KvMemoryPool pool(4.0, 1.0, 4.0);
  ASSERT_TRUE(pool.TryReserve(PoolClient::kAgent, 6.0));  // 4 static, 2 dyn
  pool.Release(PoolClient::kAgent, 2.0);
  EXPECT_DOUBLE_EQ(pool.dynamic_free_gb(), 4.0);
  EXPECT_DOUBLE_EQ(pool.static_free_gb(PoolClient::kAgent), 0.0);
  pool.Release(PoolClient::kAgent, 4.0);
  EXPECT_DOUBLE_EQ(pool.static_free_gb(PoolClient::kAgent), 4.0);
}

TEST(KvMemoryPool, WouldUseDynamicPredicts) {
  KvMemoryPool pool(4.0, 1.0, 4.0);
  EXPECT_FALSE(pool.WouldUseDynamic(PoolClient::kJudger, 1.0));
  EXPECT_TRUE(pool.WouldUseDynamic(PoolClient::kJudger, 1.5));
}

// --- BatchingServer ---

TEST(BatchingServer, EmptyServerRunsImmediately) {
  BatchingServer server;
  const auto r = server.Dispatch(10.0, 0.5);
  EXPECT_DOUBLE_EQ(r.start_time, 10.0);
  EXPECT_DOUBLE_EQ(r.queue_delay, 0.0);
  EXPECT_EQ(r.batch_occupancy, 1u);
  EXPECT_NEAR(r.completion_time, 10.5, 1e-9);
}

TEST(BatchingServer, ComputeFractionInflatesService) {
  BatchingServerOptions opts;
  opts.compute_fraction = 0.2;
  BatchingServer server(opts);
  const auto r = server.Dispatch(0.0, 1.0);
  EXPECT_NEAR(r.completion_time, 5.0, 1e-9);
}

TEST(BatchingServer, ConcurrentRequestsShareTheBatch) {
  BatchingServerOptions opts;
  opts.max_batch = 4;
  opts.slowdown_alpha = 0.1;
  BatchingServer server(opts);
  const auto r1 = server.Dispatch(0.0, 1.0);
  const auto r2 = server.Dispatch(0.0, 1.0);
  EXPECT_EQ(r1.batch_occupancy, 1u);
  EXPECT_EQ(r2.batch_occupancy, 2u);
  EXPECT_DOUBLE_EQ(r2.queue_delay, 0.0);  // still admitted immediately
  EXPECT_GT(r2.completion_time, r1.completion_time);  // slowdown
}

TEST(BatchingServer, QueuesBeyondMaxBatch) {
  BatchingServerOptions opts;
  opts.max_batch = 2;
  opts.slowdown_alpha = 0.0;
  BatchingServer server(opts);
  server.Dispatch(0.0, 1.0);
  server.Dispatch(0.0, 1.0);
  const auto r3 = server.Dispatch(0.0, 1.0);
  EXPECT_GT(r3.queue_delay, 0.0);
  EXPECT_NEAR(r3.start_time, 1.0, 1e-9);  // waits for a slot
  EXPECT_NEAR(r3.completion_time, 2.0, 1e-9);
}

TEST(BatchingServer, CompletedWorkFreesSlots) {
  BatchingServerOptions opts;
  opts.max_batch = 1;
  BatchingServer server(opts);
  server.Dispatch(0.0, 1.0);
  const auto r = server.Dispatch(5.0, 1.0);  // previous long finished
  EXPECT_DOUBLE_EQ(r.queue_delay, 0.0);
  EXPECT_EQ(server.InFlightAt(5.0), 1u);
}

TEST(BatchingServer, BusyTimeDoesNotDoubleCountOverlap) {
  BatchingServer server;
  server.Dispatch(0.0, 1.0);
  server.Dispatch(0.0, 1.0);  // overlapping
  EXPECT_LT(server.busy_seconds(), 1.5);
  EXPECT_GT(server.busy_seconds(), 0.9);
}

TEST(BatchingServer, TracksDispatchCountAndDelays) {
  BatchingServer server;
  for (int i = 0; i < 5; ++i) server.Dispatch(i * 10.0, 0.1);
  EXPECT_EQ(server.dispatched(), 5u);
  EXPECT_EQ(server.queue_delays().count(), 5u);
}

// --- ColocationSimulator ---

TEST(Colocation, AgentSlowerUnderMpsPartitionThanDedicated) {
  ColocationSimulator shared(DeploymentConfig::Colocated80_20());
  ColocationSimulator dedicated(DeploymentConfig::DedicatedTwoGpu());
  const double t_shared = shared.RunAgentTurn(0.0, 200, 100);
  const double t_dedicated = dedicated.RunAgentTurn(0.0, 200, 100);
  EXPECT_GT(t_shared, t_dedicated);
  // Bandwidth-bound decode: an 80% SM share costs ~8%, not 25%
  // (share^0.35 efficiency model).
  EXPECT_NEAR(t_shared / t_dedicated, 1.08, 0.04);
}

TEST(Colocation, JudgerCallIsFastEvenColocated) {
  ColocationSimulator gpu(DeploymentConfig::Colocated80_20());
  const double done = gpu.RunJudgerCall(0.0, 150);
  EXPECT_LT(done, 0.05);
}

TEST(Colocation, GpuCountMatchesMode) {
  EXPECT_EQ(ColocationSimulator(DeploymentConfig::Colocated80_20()).NumGpus(),
            1);
  EXPECT_EQ(ColocationSimulator(DeploymentConfig::DedicatedTwoGpu()).NumGpus(),
            2);
  EXPECT_EQ(ColocationSimulator(DeploymentConfig::AgentOnly()).NumGpus(), 1);
}

TEST(Colocation, EmbeddingSharesJudgerPartition) {
  ColocationSimulator gpu(DeploymentConfig::Colocated80_20());
  const double t1 = gpu.RunEmbedding(0.0, 30);
  EXPECT_GT(t1, 0.0);
  EXPECT_LT(t1, 0.02);
  EXPECT_GT(gpu.judger_busy_seconds(), 0.0);
}

TEST(Colocation, PriorityGuardrailDefersJudgerUnderMemoryPressure) {
  DeploymentConfig cfg = DeploymentConfig::Colocated80_20();
  cfg.judger_static_kv_gb = 0.000001;  // force every judger call dynamic
  ColocationSimulator gpu(cfg);
  // Put agent work in flight, then issue a judger call at the same time.
  const double agent_done = gpu.RunAgentTurn(0.0, 2000, 200);
  const double judger_done = gpu.RunJudgerCall(0.0, 200);
  EXPECT_GT(gpu.judger_deferrals(), 0u);
  EXPECT_GE(judger_done, agent_done);  // deferred behind the agent batch
}

TEST(Colocation, NoDeferralWhenStaticPartitionSuffices) {
  ColocationSimulator gpu(DeploymentConfig::Colocated80_20());
  gpu.RunAgentTurn(0.0, 2000, 200);
  gpu.RunJudgerCall(0.0, 200);
  EXPECT_EQ(gpu.judger_deferrals(), 0u);
}

TEST(Colocation, BusyTimeAccumulates) {
  ColocationSimulator gpu(DeploymentConfig::Colocated80_20());
  gpu.RunAgentTurn(0.0, 200, 100);
  gpu.RunAgentTurn(10.0, 200, 100);
  EXPECT_GT(gpu.agent_busy_seconds(), 0.5);
}

}  // namespace
}  // namespace cortex
