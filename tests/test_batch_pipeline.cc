// Batched-lookup parity and pipeline lifecycle tests (DESIGN.md §14).
//
// The parity property here is the load-bearing one: LookupBatch must be
// BIT-identical to sequential Lookup — same hits, same exact similarities,
// same judger verdicts, same tenant visibility — for every batch size,
// slab format, and SIMD variant.  Run the churn tests under
// ThreadSanitizer via scripts/tsan.sh (CORTEX_SANITIZE=thread).
#include "serve/batch_pipeline.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "embedding/simd_kernels.h"
#include "serve/concurrent_engine.h"
#include "telemetry/metrics.h"
#include "test_helpers.h"

namespace cortex {
namespace {

using cortex::testing::MiniWorld;
using serve::BatchLookupRequest;
using serve::BatchPipeline;
using serve::BatchPipelineOptions;
using serve::ConcurrentEngineOptions;
using serve::ConcurrentShardedEngine;

// Restores the previously active kernel variant on scope exit.
class ScopedVariant {
 public:
  explicit ScopedVariant(simd::Variant v) : prev_(simd::ActiveVariant()) {
    forced_ = simd::ForceVariant(v);
  }
  ~ScopedVariant() { simd::ForceVariant(prev_); }
  ScopedVariant(const ScopedVariant&) = delete;
  ScopedVariant& operator=(const ScopedVariant&) = delete;
  bool forced() const noexcept { return forced_; }

 private:
  simd::Variant prev_;
  bool forced_ = false;
};

std::uint64_t CounterValue(const telemetry::TelemetrySnapshot& snap,
                           std::string_view name) {
  for (const auto& e : snap.entries) {
    if (e.name == name) return e.counter_value;
  }
  return 0;
}

class BatchPipelineTest : public ::testing::Test {
 protected:
  BatchPipelineTest() : world_(48, /*seed=*/47) {}

  // Both engines in a parity pair share this clock, which the test steps
  // by hand: every lookup in a comparison round runs at the same instant
  // on both sides, exactly like LookupBatch's single per-batch `now`.
  ConcurrentEngineOptions BaseOptions(RowFormat format) {
    ConcurrentEngineOptions opts;
    opts.num_shards = 2;  // batches must span shards
    opts.cache.capacity_tokens = 1e7;
    opts.housekeeping_interval_sec = 0.0;
    opts.probe_scan_format = format;
    opts.clock = [this] { return now_; };
    return opts;
  }

  // Seeds an engine with the even topics (some tenant-private) so lookups
  // see a mix of hits, misses, and tenant-masked entries.
  void WarmUp(ConcurrentShardedEngine& engine) {
    const std::size_t topics = world_.universe->size();
    for (std::size_t topic = 0; topic < topics; topic += 2) {
      InsertRequest req;
      req.key = world_.query(topic, 0);
      req.value = world_.answer(topic);
      req.staticity = world_.topic(topic).staticity;
      req.initial_frequency = 1;
      if (topic % 6 == 0) req.tenant = "acme";  // private namespace
      ASSERT_TRUE(engine.Insert(std::move(req)).has_value())
          << "warmup insert failed for topic " << topic;
    }
  }

  // The query stream: every topic under several paraphrases, alternating
  // tenants so per-tenant visibility is part of the property.
  struct Probe {
    std::string query;
    std::string tenant;
  };
  std::vector<Probe> ProbeStream() const {
    std::vector<Probe> probes;
    const std::size_t topics = world_.universe->size();
    for (std::size_t round = 0; round < 3; ++round) {
      for (std::size_t topic = 0; topic < topics; ++topic) {
        Probe p;
        p.query = world_.query(topic, (topic + round) % 6);
        if (topic % 3 == 0) p.tenant = "acme";
        if (topic % 3 == 1) p.tenant = "globex";  // sees shared pool only
        probes.push_back(std::move(p));
      }
    }
    return probes;
  }

  MiniWorld world_;
  double now_ = 100.0;
};

// The tentpole property: for every batch size, slab format, and compiled
// SIMD variant, LookupBatch returns results bit-identical to sequential
// Lookup calls — ids, values, exact similarities, judger scores, and
// tenant visibility all EXPECT_EQ, never EXPECT_NEAR.
TEST_F(BatchPipelineTest, LookupBatchBitIdenticalToSequentialLookups) {
  const auto probes = ProbeStream();
  for (const auto variant : simd::SupportedVariants()) {
    ScopedVariant forced(variant);
    ASSERT_TRUE(forced.forced());
    for (const RowFormat format :
         {RowFormat::kF32, RowFormat::kF16, RowFormat::kI8}) {
      for (const std::size_t batch_size : {std::size_t{1}, std::size_t{3},
                                           std::size_t{16}}) {
        SCOPED_TRACE(std::string(simd::VariantName(variant)) + "/" +
                     RowFormatName(format) + "/batch " +
                     std::to_string(batch_size));
        now_ = 100.0;
        ConcurrentShardedEngine seq(&world_.embedder, world_.judger.get(),
                                    BaseOptions(format));
        ConcurrentShardedEngine bat(&world_.embedder, world_.judger.get(),
                                    BaseOptions(format));
        WarmUp(seq);
        WarmUp(bat);

        for (std::size_t base = 0; base < probes.size();
             base += batch_size) {
          const std::size_t n = std::min(batch_size, probes.size() - base);
          now_ += 0.25;  // both sides run this round at the same instant

          std::vector<std::optional<CacheHit>> want(n);
          for (std::size_t i = 0; i < n; ++i) {
            want[i] = seq.Lookup(probes[base + i].query, nullptr,
                                 probes[base + i].tenant);
          }

          std::vector<BatchLookupRequest> reqs(n);
          for (std::size_t i = 0; i < n; ++i) {
            reqs[i].query = probes[base + i].query;
            reqs[i].tenant = probes[base + i].tenant;
          }
          bat.LookupBatch(reqs);

          for (std::size_t i = 0; i < n; ++i) {
            SCOPED_TRACE("probe " + std::to_string(base + i));
            ASSERT_EQ(reqs[i].hit.has_value(), want[i].has_value());
            if (!want[i]) continue;
            EXPECT_EQ(reqs[i].hit->id, want[i]->id);
            EXPECT_EQ(reqs[i].hit->value, want[i]->value);
            EXPECT_EQ(reqs[i].hit->matched_key, want[i]->matched_key);
            // Exact, not approximate: both paths rerank fp32 originals
            // with the scalar double kernel.
            EXPECT_EQ(reqs[i].hit->similarity, want[i]->similarity);
            EXPECT_EQ(reqs[i].hit->judger_score, want[i]->judger_score);
          }
        }

        // Commits were identical too, so the engines' counters agree.
        const auto s = seq.Stats();
        const auto b = bat.Stats();
        EXPECT_EQ(s.lookups, b.lookups);
        EXPECT_EQ(s.hits, b.hits);
      }
    }
  }
}

// The pipeline front door returns exactly what a direct engine call
// would, and its counters account for every staged request.
TEST_F(BatchPipelineTest, PipelineLookupMatchesDirectEngine) {
  ConcurrentShardedEngine reference(&world_.embedder, world_.judger.get(),
                                    BaseOptions(RowFormat::kI8));
  ConcurrentShardedEngine engine(&world_.embedder, world_.judger.get(),
                                 BaseOptions(RowFormat::kI8));
  WarmUp(reference);
  WarmUp(engine);

  BatchPipelineOptions popts;
  popts.max_batch = 4;
  popts.batch_window_us = 100;
  popts.num_threads = 2;
  BatchPipeline pipeline(&engine, popts);
  ASSERT_TRUE(pipeline.enabled());

  const auto probes = ProbeStream();
  constexpr std::size_t kThreads = 4;
  std::vector<std::thread> pool;
  std::atomic<std::uint64_t> hits{0};
  for (std::size_t tid = 0; tid < kThreads; ++tid) {
    pool.emplace_back([&, tid] {
      for (std::size_t i = tid; i < probes.size(); i += kThreads) {
        const auto hit =
            pipeline.Lookup(probes[i].query, nullptr, probes[i].tenant);
        // Visibility sanity: the "globex" tenant can never receive an
        // acme-private value (the shared fixture makes those disjoint).
        if (hit) hits.fetch_add(1);
      }
    });
  }
  for (auto& t : pool) t.join();
  pipeline.Drain();

  EXPECT_EQ(engine.Stats().lookups, probes.size());
  // Hit/miss per probe matches the reference engine run sequentially at
  // the same (fixed) clock.
  std::uint64_t want_hits = 0;
  for (const auto& p : probes) {
    if (reference.Lookup(p.query, nullptr, p.tenant)) ++want_hits;
  }
  EXPECT_EQ(hits.load(), want_hits);

  const auto snap = engine.registry()->Snapshot();
  EXPECT_EQ(CounterValue(snap, "cortex_pipeline_requests"), probes.size());
  EXPECT_GE(CounterValue(snap, "cortex_pipeline_batches"), 1u);
  EXPECT_EQ(CounterValue(snap, "cortex_pipeline_full_flushes") +
                CounterValue(snap, "cortex_pipeline_window_flushes"),
            CounterValue(snap, "cortex_pipeline_batches"));
}

// A lone request must not wait for a batch to fill: the window deadline
// flushes it.
TEST_F(BatchPipelineTest, SingleRequestFlushesOnWindowDeadline) {
  ConcurrentShardedEngine engine(&world_.embedder, world_.judger.get(),
                                 BaseOptions(RowFormat::kI8));
  WarmUp(engine);
  BatchPipelineOptions popts;
  popts.max_batch = 64;  // never fills
  popts.batch_window_us = 200;
  BatchPipeline pipeline(&engine, popts);

  // Topic 2 is in the shared pool (WarmUp gives topic 0 to "acme"),
  // and paraphrase 0 is the inserted key itself — a guaranteed hit.
  const auto hit = pipeline.Lookup(world_.query(2, 0));
  EXPECT_TRUE(hit.has_value());
  pipeline.Drain();
  const auto snap = engine.registry()->Snapshot();
  EXPECT_EQ(CounterValue(snap, "cortex_pipeline_requests"), 1u);
  EXPECT_EQ(CounterValue(snap, "cortex_pipeline_full_flushes"), 0u);
  EXPECT_GE(CounterValue(snap, "cortex_pipeline_window_flushes"), 1u);
}

// max_batch <= 1 disables the pipeline: no threads, direct engine calls.
TEST_F(BatchPipelineTest, DisabledPipelinePassesThrough) {
  ConcurrentShardedEngine engine(&world_.embedder, world_.judger.get(),
                                 BaseOptions(RowFormat::kI8));
  WarmUp(engine);
  BatchPipelineOptions popts;
  popts.max_batch = 1;
  BatchPipeline pipeline(&engine, popts);
  EXPECT_FALSE(pipeline.enabled());
  EXPECT_TRUE(pipeline.Lookup(world_.query(2, 0)).has_value());
  EXPECT_EQ(engine.Stats().lookups, 1u);
  pipeline.Drain();  // no-op, must not hang
  EXPECT_TRUE(pipeline.Lookup(world_.query(4, 0)).has_value());
}

// TSan churn: lookups racing inserts racing Drain().  Every submitted
// lookup must complete (in-flight batches finish during Drain; later
// lookups fall back to the synchronous path), and nothing may deadlock
// or race.
TEST_F(BatchPipelineTest, ChurnSubmitFlushInsertAndDrain) {
  ConcurrentEngineOptions eopts = BaseOptions(RowFormat::kI8);
  eopts.clock = {};  // wall clock: inserts and lookups interleave freely
  ConcurrentShardedEngine engine(&world_.embedder, world_.judger.get(),
                                 eopts);
  WarmUp(engine);

  BatchPipelineOptions popts;
  popts.max_batch = 8;
  popts.batch_window_us = 50;
  popts.num_threads = 2;
  BatchPipeline pipeline(&engine, popts);

  constexpr std::size_t kLookupThreads = 4;
  constexpr std::size_t kLookupsPerThread = 120;
  const std::size_t topics = world_.universe->size();

  std::atomic<std::uint64_t> completed{0};
  std::vector<std::thread> pool;
  for (std::size_t tid = 0; tid < kLookupThreads; ++tid) {
    pool.emplace_back([&, tid] {
      for (std::size_t i = 0; i < kLookupsPerThread; ++i) {
        const std::size_t topic = (tid * 31 + i) % topics;
        pipeline.Lookup(world_.query(topic, i % 6), nullptr,
                        topic % 3 == 0 ? "acme" : "");
        completed.fetch_add(1);
      }
    });
  }
  // Concurrent inserts churn the shards (snapshot republish) while
  // batches are scanning them.
  pool.emplace_back([&] {
    for (std::size_t topic = 1; topic < topics; topic += 2) {
      InsertRequest req;
      req.key = world_.query(topic, 0);
      req.value = world_.answer(topic);
      req.staticity = world_.topic(topic).staticity;
      engine.Insert(std::move(req));
    }
  });
  // Drain while lookups are still being submitted: in-flight batches
  // complete, later lookups take the synchronous fallback.
  pool.emplace_back([&] { pipeline.Drain(); });

  for (auto& t : pool) t.join();
  EXPECT_EQ(completed.load(), kLookupThreads * kLookupsPerThread);
  EXPECT_EQ(engine.Stats().lookups, kLookupThreads * kLookupsPerThread);

  // Drained pipeline still serves (synchronously).
  EXPECT_TRUE(pipeline.Lookup(world_.query(2, 0)).has_value());
}

}  // namespace
}  // namespace cortex
