// Serving-layer concurrency tests: N real threads doing mixed
// lookup/insert against the same shard set.  Run these under
// ThreadSanitizer via scripts/tsan.sh (CORTEX_SANITIZE=thread).
#include "serve/concurrent_engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "test_helpers.h"

namespace cortex {
namespace {

using cortex::testing::MiniWorld;
using serve::ConcurrentEngineOptions;
using serve::ConcurrentShardedEngine;

class ConcurrentEngineTest : public ::testing::Test {
 protected:
  ConcurrentEngineTest() : world_(64, /*seed=*/43) {}

  ConcurrentEngineOptions BaseOptions() {
    ConcurrentEngineOptions opts;
    opts.num_shards = 4;
    opts.cache.capacity_tokens = 1e7;        // no capacity evictions
    opts.housekeeping_interval_sec = 0.0;    // tests drive purges by hand
    return opts;
  }

  InsertRequest RequestFor(std::size_t topic, std::size_t paraphrase = 0) {
    InsertRequest req;
    req.key = world_.query(topic, paraphrase);
    req.value = world_.answer(topic);
    req.staticity = world_.topic(topic).staticity;
    req.initial_frequency = 1;
    return req;
  }

  MiniWorld world_;
};

TEST_F(ConcurrentEngineTest, MixedLookupInsertKeepsCountersConsistent) {
  ConcurrentShardedEngine engine(&world_.embedder, world_.judger.get(),
                                 BaseOptions());
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kRounds = 3;
  const std::size_t topics = world_.universe->size();

  std::atomic<std::uint64_t> lookups_issued{0};
  std::atomic<std::uint64_t> inserts_accepted{0};
  std::atomic<std::uint64_t> inserts_rejected{0};

  std::vector<std::thread> pool;
  for (std::size_t tid = 0; tid < kThreads; ++tid) {
    pool.emplace_back([&, tid] {
      for (std::size_t round = 0; round < kRounds; ++round) {
        for (std::size_t topic = 0; topic < topics; ++topic) {
          // Every thread inserts its "own" topics and looks up everything,
          // so the same shards see concurrent reads and writes.
          if (topic % kThreads == tid) {
            if (engine.Insert(RequestFor(topic, round))) {
              inserts_accepted.fetch_add(1);
            } else {
              inserts_rejected.fetch_add(1);
            }
          }
          engine.Lookup(world_.query(topic, (round + tid) % 6));
          lookups_issued.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : pool) t.join();

  const auto stats = engine.Stats();
  const auto totals = engine.TotalCounters();
  // Engine atomics and per-shard counters must agree exactly with the
  // offered load: no lost or double-counted operations.
  EXPECT_EQ(stats.lookups, lookups_issued.load());
  EXPECT_EQ(totals.lookups, lookups_issued.load());
  EXPECT_EQ(stats.hits, totals.hits);
  EXPECT_LE(totals.hits, totals.lookups);
  EXPECT_EQ(stats.inserts, inserts_accepted.load());
  EXPECT_EQ(stats.insert_rejects, inserts_rejected.load());
  // Accepted inserts are either fresh insertions or value-dedup refreshes.
  EXPECT_EQ(totals.insertions + totals.dedup_refreshes,
            inserts_accepted.load());
}

TEST_F(ConcurrentEngineTest, NoLostInsertsAcrossThreads) {
  ConcurrentShardedEngine engine(&world_.embedder, world_.judger.get(),
                                 BaseOptions());
  constexpr std::size_t kThreads = 8;
  const std::size_t topics = world_.universe->size();

  std::vector<std::thread> pool;
  for (std::size_t tid = 0; tid < kThreads; ++tid) {
    pool.emplace_back([&, tid] {
      for (std::size_t topic = tid; topic < topics; topic += kThreads) {
        ASSERT_TRUE(engine.Insert(RequestFor(topic)).has_value());
      }
    });
  }
  for (auto& t : pool) t.join();

  // Capacity is huge and every topic has a distinct value, so nothing may
  // be dropped: every inserted key must still be resident.
  for (std::size_t topic = 0; topic < topics; ++topic) {
    EXPECT_TRUE(engine.ContainsKey(world_.query(topic, 0)))
        << "lost insert for topic " << topic;
  }
  EXPECT_EQ(engine.TotalSize(), topics);
  EXPECT_EQ(engine.Stats().inserts, topics);
}

TEST_F(ConcurrentEngineTest, ParallelLookupsServeHitsAfterWarmup) {
  ConcurrentShardedEngine engine(&world_.embedder, world_.judger.get(),
                                 BaseOptions());
  const std::size_t topics = world_.universe->size();
  for (std::size_t topic = 0; topic < topics; ++topic) {
    ASSERT_TRUE(engine.Insert(RequestFor(topic)).has_value());
  }

  constexpr std::size_t kThreads = 8;
  std::atomic<std::uint64_t> hits{0};
  std::vector<std::thread> pool;
  for (std::size_t tid = 0; tid < kThreads; ++tid) {
    pool.emplace_back([&, tid] {
      for (std::size_t topic = 0; topic < topics; ++topic) {
        const auto hit = engine.Lookup(world_.query(topic, 1 + tid % 5));
        if (hit) {
          hits.fetch_add(1);
          EXPECT_FALSE(hit->value.empty());
        }
      }
    });
  }
  for (auto& t : pool) t.join();

  // Paraphrase lookups of resident topics hit at the usual (noisy-judger)
  // rate; concurrency must not change that materially.
  EXPECT_GE(hits.load(), kThreads * topics * 6 / 10);
  EXPECT_EQ(engine.Stats().hits, hits.load());
}

TEST_F(ConcurrentEngineTest, HousekeepingThreadPurgesExpiredEntries) {
  std::atomic<double> fake_now{0.0};
  ConcurrentEngineOptions opts = BaseOptions();
  opts.cache.min_ttl_sec = 10.0;
  opts.cache.max_ttl_sec = 20.0;
  opts.housekeeping_interval_sec = 0.5;  // engine-clock seconds
  opts.clock = [&fake_now] { return fake_now.load(); };
  ConcurrentShardedEngine engine(&world_.embedder, world_.judger.get(),
                                 opts);

  for (std::size_t topic = 0; topic < 16; ++topic) {
    ASSERT_TRUE(engine.Insert(RequestFor(topic)).has_value());
  }
  EXPECT_EQ(engine.TotalSize(), 16u);

  // Jump the engine clock past every TTL; the housekeeping thread (polling
  // wall-clock, triggering on the engine clock) must purge everything.
  fake_now.store(1000.0);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (engine.TotalSize() > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(engine.TotalSize(), 0u);
  EXPECT_GE(engine.Stats().expired_removed, 16u);
  EXPECT_GE(engine.Stats().housekeeping_runs, 1u);
  EXPECT_EQ(engine.TotalCounters().expirations, 16u);
}

TEST_F(ConcurrentEngineTest, RecalibrationTickRunsOnEveryShard) {
  ConcurrentEngineOptions opts = BaseOptions();
  opts.recalibration.samples_per_round = 4;
  ConcurrentShardedEngine engine(&world_.embedder, world_.judger.get(),
                                 opts);
  engine.SetGroundTruthFetcher([this](std::string_view query) {
    return world_.oracle->ExpectedInfo(query);
  });

  // Warm the judgment logs: inserts + paraphrase lookups generate judged
  // candidates on every shard.
  const std::size_t topics = world_.universe->size();
  for (std::size_t topic = 0; topic < topics; ++topic) {
    ASSERT_TRUE(engine.Insert(RequestFor(topic)).has_value());
  }
  for (std::size_t round = 0; round < 4; ++round) {
    for (std::size_t topic = 0; topic < topics; ++topic) {
      engine.Lookup(world_.query(topic, round + 1));
    }
  }

  engine.RecalibrateAllShards();
  EXPECT_EQ(engine.Stats().recalibrations, engine.num_shards());
  for (std::size_t shard = 0; shard < engine.num_shards(); ++shard) {
    const double tau = engine.tau_lsm(shard);
    EXPECT_GE(tau, opts.recalibration.min_tau);
    EXPECT_LE(tau, opts.recalibration.max_tau);
  }
}

// ---------------------------------------------------------------------------
// Lock-free probe (DESIGN.md §13) vs the locked fallback.  Under the
// default kFlat index the epoch path's exact quantized scan + fp32 rerank
// must reproduce the locked path bit for bit — same hits, same ids, same
// similarities and judger scores, same counters — whatever scan format.

TEST_F(ConcurrentEngineTest, LockFreeProbeMatchesLockedPathExactly) {
  for (const RowFormat format :
       {RowFormat::kF32, RowFormat::kF16, RowFormat::kI8}) {
    ConcurrentEngineOptions locked_opts = BaseOptions();
    locked_opts.lock_free_probe = false;
    ConcurrentEngineOptions epoch_opts = BaseOptions();
    epoch_opts.lock_free_probe = true;
    epoch_opts.probe_scan_format = format;
    ConcurrentShardedEngine locked(&world_.embedder, world_.judger.get(),
                                   locked_opts);
    ConcurrentShardedEngine epoch(&world_.embedder, world_.judger.get(),
                                  epoch_opts);

    const std::size_t topics = world_.universe->size();
    for (std::size_t topic = 0; topic < topics; ++topic) {
      const auto a = locked.Insert(RequestFor(topic));
      const auto b = epoch.Insert(RequestFor(topic));
      ASSERT_EQ(a, b);
    }

    for (std::size_t round = 0; round < 3; ++round) {
      for (std::size_t topic = 0; topic < topics; ++topic) {
        const auto& q = world_.query(topic, round + 1);
        const auto a = locked.Lookup(q);
        const auto b = epoch.Lookup(q);
        ASSERT_EQ(a.has_value(), b.has_value())
            << "format=" << RowFormatName(format) << " topic=" << topic
            << " round=" << round;
        if (a) {
          EXPECT_EQ(a->id, b->id);
          EXPECT_EQ(a->value, b->value);
          EXPECT_EQ(a->matched_key, b->matched_key);
          EXPECT_EQ(a->similarity, b->similarity);  // bit-exact, not near
          EXPECT_EQ(a->judger_score, b->judger_score);
        }
      }
    }

    const auto sa = locked.Stats();
    const auto sb = epoch.Stats();
    EXPECT_EQ(sa.lookups, sb.lookups);
    EXPECT_EQ(sa.hits, sb.hits);
    const auto ca = locked.TotalCounters();
    const auto cb = epoch.TotalCounters();
    EXPECT_EQ(ca.lookups, cb.lookups);
    EXPECT_EQ(ca.hits, cb.hits);
  }
}

TEST_F(ConcurrentEngineTest, LockFreeProbeHonoursTtlWithoutPurge) {
  std::atomic<double> fake_now{0.0};
  ConcurrentEngineOptions opts = BaseOptions();
  opts.cache.min_ttl_sec = 10.0;
  opts.cache.max_ttl_sec = 20.0;
  opts.clock = [&fake_now] { return fake_now.load(); };
  ConcurrentShardedEngine engine(&world_.embedder, world_.judger.get(), opts);

  ASSERT_TRUE(engine.Insert(RequestFor(0)).has_value());
  EXPECT_TRUE(engine.Lookup(world_.query(0, 0)).has_value());

  // Jump past the TTL without purging: the snapshot still references the
  // record, so the probe's visibility filter alone must turn it away.
  fake_now.store(1000.0);
  EXPECT_FALSE(engine.Lookup(world_.query(0, 0)).has_value());

  // The purge then rebuilds the snapshot without the entry; a re-insert
  // republishes and serves hits again.
  EXPECT_EQ(engine.RemoveExpired(), 1u);
  EXPECT_FALSE(engine.Lookup(world_.query(0, 0)).has_value());
  ASSERT_TRUE(engine.Insert(RequestFor(0)).has_value());
  EXPECT_TRUE(engine.Lookup(world_.query(0, 0)).has_value());
}

TEST_F(ConcurrentEngineTest, LockFreeProbeKeepsTenantsInvisible) {
  ConcurrentShardedEngine engine(&world_.embedder, world_.judger.get(),
                                 BaseOptions());
  InsertRequest req = RequestFor(3);
  req.tenant = "acme";
  ASSERT_TRUE(engine.Insert(std::move(req)).has_value());

  EXPECT_TRUE(engine.Lookup(world_.query(3, 0), nullptr, "acme").has_value());
  EXPECT_FALSE(engine.Lookup(world_.query(3, 0), nullptr, "rival").has_value());
  EXPECT_FALSE(engine.Lookup(world_.query(3, 0)).has_value());
}

TEST_F(ConcurrentEngineTest, LookupsRaceChurnUnderLockFreeProbe) {
  // Readers race inserts, TTL churn, and housekeeping: epoch reclamation
  // must keep every snapshot readable (run under TSan via scripts/tsan.sh).
  std::atomic<double> fake_now{0.0};
  ConcurrentEngineOptions opts = BaseOptions();
  opts.cache.min_ttl_sec = 1.0;
  opts.cache.max_ttl_sec = 2.0;
  opts.housekeeping_interval_sec = 0.01;
  opts.clock = [&fake_now] { return fake_now.load(); };
  ConcurrentShardedEngine engine(&world_.embedder, world_.judger.get(), opts);

  const std::size_t topics = world_.universe->size();
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> lookups{0};
  std::vector<std::thread> readers;
  for (std::size_t tid = 0; tid < 4; ++tid) {
    readers.emplace_back([&, tid] {
      std::size_t i = tid;
      while (!stop.load(std::memory_order_relaxed)) {
        engine.Lookup(world_.query(i % topics, i % 6));
        lookups.fetch_add(1, std::memory_order_relaxed);
        ++i;
      }
    });
  }
  // Writer: keep inserting while the clock marches entries over their
  // TTLs, so snapshots churn continuously.
  for (std::size_t round = 0; round < 40; ++round) {
    for (std::size_t topic = 0; topic < topics; topic += 4) {
      engine.Insert(RequestFor(topic, round % 6));
    }
    fake_now.store(fake_now.load() + 0.25);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  stop.store(true);
  for (auto& t : readers) t.join();

  EXPECT_EQ(engine.Stats().lookups, lookups.load());
  EXPECT_GT(lookups.load(), 0u);
}

TEST_F(ConcurrentEngineTest, RoutingMatchesShardedCache) {
  // The serving tier must agree with ShardedSemanticCache on where every
  // query lives (snapshots and sim results stay comparable).
  ConcurrentShardedEngine engine(&world_.embedder, world_.judger.get(),
                                 BaseOptions());
  ShardedCacheOptions sopts;
  sopts.num_shards = 4;
  ShardedSemanticCache reference(&world_.embedder, world_.judger.get(),
                                 sopts);
  for (std::size_t topic = 0; topic < world_.universe->size(); ++topic) {
    for (std::size_t p = 0; p < 3; ++p) {
      const auto& q = world_.query(topic, p);
      EXPECT_EQ(engine.ShardFor(q), reference.ShardFor(q));
    }
  }
}

}  // namespace
}  // namespace cortex
