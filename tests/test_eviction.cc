#include "core/eviction.h"

#include <gtest/gtest.h>

#include <cmath>

namespace cortex {
namespace {

SemanticElement MakeSe(std::uint64_t freq, double cost, double lat,
                       double stat, double size, double expiration = 1e9) {
  SemanticElement se;
  se.frequency = freq;
  se.retrieval_cost_dollars = cost;
  se.retrieval_latency_sec = lat;
  se.staticity = stat;
  se.size_tokens = size;
  se.expiration_time = expiration;
  return se;
}

TEST(LcfuPolicy, MatchesAlgorithmTwoFormula) {
  LcfuPolicy policy;
  const auto se = MakeSe(9, 0.005, 0.4, 8.0, 50.0);
  const double expected = std::log(10.0) * std::log(0.005 * 1e3 + 1.0) *
                          std::log(1.4) * std::log(9.0) / 50.0;
  EXPECT_NEAR(policy.Score(se, 0.0), expected, 1e-12);
}

TEST(LcfuPolicy, ExpiredOrEmptyScoresZero) {
  LcfuPolicy policy;
  EXPECT_DOUBLE_EQ(policy.Score(MakeSe(5, 0.01, 0.4, 8, 50, /*exp=*/10.0),
                                /*now=*/10.0),
                   0.0);
  EXPECT_DOUBLE_EQ(policy.Score(MakeSe(5, 0.01, 0.4, 8, /*size=*/0.0), 0.0),
                   0.0);
}

TEST(LcfuPolicy, ZeroFrequencyScoresZero) {
  // log(0+1) = 0: a prefetched-but-never-used SE is the first victim (§4.3).
  LcfuPolicy policy;
  EXPECT_DOUBLE_EQ(policy.Score(MakeSe(0, 0.01, 0.4, 8, 50), 0.0), 0.0);
}

TEST(LcfuPolicy, MonotoneInEachFactor) {
  LcfuPolicy policy;
  const auto base = MakeSe(4, 0.005, 0.4, 5.0, 50.0);
  const double s0 = policy.Score(base, 0.0);
  EXPECT_GT(policy.Score(MakeSe(8, 0.005, 0.4, 5.0, 50.0), 0.0), s0);
  EXPECT_GT(policy.Score(MakeSe(4, 0.025, 0.4, 5.0, 50.0), 0.0), s0);
  EXPECT_GT(policy.Score(MakeSe(4, 0.005, 0.9, 5.0, 50.0), 0.0), s0);
  EXPECT_GT(policy.Score(MakeSe(4, 0.005, 0.4, 9.0, 50.0), 0.0), s0);
  EXPECT_LT(policy.Score(MakeSe(4, 0.005, 0.4, 5.0, 100.0), 0.0), s0);
}

TEST(LcfuPolicy, SubDollarCostsStillContributePositively) {
  // The x1e3 shift exists because per-call cost < $1 would otherwise log to
  // a negative factor (§4.3's normalisation note).
  LcfuPolicy policy;
  const double score = policy.Score(MakeSe(1, 0.001, 0.3, 5.0, 10.0), 0.0);
  EXPECT_GT(score, 0.0);
}

TEST(LcfuPolicy, EphemeralPopularLosesToStableExpensive) {
  // The paper's design intent: transient-but-popular data must not displace
  // enduring high-cost content.
  LcfuPolicy policy;
  const auto ephemeral_popular = MakeSe(30, 0.001, 0.1, 1.2, 60.0);
  const auto stable_expensive = MakeSe(4, 0.025, 0.5, 9.5, 60.0);
  EXPECT_GT(policy.Score(stable_expensive, 0.0),
            policy.Score(ephemeral_popular, 0.0));
}

TEST(LruPolicy, OrdersByRecency) {
  LruPolicy policy;
  auto old_item = MakeSe(100, 0.01, 0.4, 9, 50);
  auto fresh = MakeSe(1, 0.0, 0.0, 1, 50);
  old_item.last_access = 10.0;
  fresh.last_access = 90.0;
  EXPECT_GT(policy.Score(fresh, 100.0), policy.Score(old_item, 100.0));
}

TEST(LruPolicy, IgnoresFrequencyAndCost) {
  LruPolicy policy;
  auto a = MakeSe(1000, 0.05, 2.0, 10, 10);
  auto b = MakeSe(0, 0.0, 0.0, 1, 500);
  a.last_access = b.last_access = 5.0;
  EXPECT_DOUBLE_EQ(policy.Score(a, 10.0), policy.Score(b, 10.0));
}

TEST(LfuPolicy, OrdersByFrequency) {
  LfuPolicy policy;
  EXPECT_GT(policy.Score(MakeSe(10, 0, 0, 5, 50), 0.0),
            policy.Score(MakeSe(2, 0, 0, 5, 50), 0.0));
}

TEST(AllPolicies, ExpiredItemsScoreZero) {
  auto expired = MakeSe(50, 0.01, 0.5, 9, 50, /*expiration=*/1.0);
  expired.last_access = 0.5;
  const double now = 2.0;
  EXPECT_DOUBLE_EQ(LcfuPolicy().Score(expired, now), 0.0);
  EXPECT_DOUBLE_EQ(LruPolicy().Score(expired, now), 0.0);
  EXPECT_DOUBLE_EQ(LfuPolicy().Score(expired, now), 0.0);
}

TEST(AllPolicies, NamesAreStable) {
  EXPECT_EQ(LcfuPolicy().name(), "lcfu");
  EXPECT_EQ(LruPolicy().name(), "lru");
  EXPECT_EQ(LfuPolicy().name(), "lfu");
}

}  // namespace
}  // namespace cortex
