// Consistent-hash ring unit tests: endpoint parsing, deterministic
// placement, replication distinctness, vnode load smoothing, and the
// minimal-movement property (adding a node steals ~1/N of the keyspace)
// that live migration depends on.
#include "cluster/hash_ring.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

namespace cortex::cluster {
namespace {

NodeEndpoint Tcp(int port) {
  NodeEndpoint ep;
  ep.host = "127.0.0.1";
  ep.port = port;
  return ep;
}

std::vector<std::string> Keys(std::size_t n) {
  std::vector<std::string> keys;
  keys.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys.push_back("placement-key-" + std::to_string(i * 2654435761u));
  }
  return keys;
}

TEST(ParseEndpointTest, TcpAndUnixRoundTrip) {
  auto ep = ParseEndpoint("10.0.0.7:8400");
  ASSERT_TRUE(ep.has_value());
  EXPECT_EQ(ep->host, "10.0.0.7");
  EXPECT_EQ(ep->port, 8400);
  EXPECT_TRUE(ep->unix_path.empty());
  EXPECT_EQ(ep->ToString(), "10.0.0.7:8400");

  ep = ParseEndpoint("unix:/tmp/cortexd.sock");
  ASSERT_TRUE(ep.has_value());
  EXPECT_EQ(ep->unix_path, "/tmp/cortexd.sock");
  EXPECT_EQ(ep->ToString(), "unix:/tmp/cortexd.sock");
}

TEST(ParseEndpointTest, MalformedInputsRejected) {
  std::string error;
  EXPECT_FALSE(ParseEndpoint("", &error).has_value());
  EXPECT_FALSE(ParseEndpoint("no-port", &error).has_value());
  EXPECT_FALSE(ParseEndpoint("host:", &error).has_value());
  EXPECT_FALSE(ParseEndpoint(":8400", &error).has_value());
  EXPECT_FALSE(ParseEndpoint("host:notaport", &error).has_value());
  EXPECT_FALSE(ParseEndpoint("host:70000", &error).has_value());
  EXPECT_FALSE(ParseEndpoint("host:0", &error).has_value());
  EXPECT_FALSE(ParseEndpoint("unix:", &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(HashRingTest, PlacementIsDeterministicAcrossInstances) {
  HashRingOptions opts;
  opts.replication = 2;
  HashRing a(opts), b(opts);
  for (int i = 0; i < 4; ++i) {
    a.AddNode("node" + std::to_string(i), Tcp(9000 + i));
    b.AddNode("node" + std::to_string(i), Tcp(9000 + i));
  }
  for (const auto& key : Keys(200)) {
    EXPECT_EQ(a.OwnersFor(key), b.OwnersFor(key)) << key;
    EXPECT_EQ(a.PrimaryFor(key), a.OwnersFor(key).front());
  }
}

TEST(HashRingTest, OwnersAreDistinctAndClampedToRingSize) {
  HashRingOptions opts;
  opts.replication = 3;
  HashRing ring(opts);
  EXPECT_TRUE(ring.OwnersFor("anything").empty());

  ring.AddNode("solo", Tcp(9000));
  EXPECT_EQ(ring.OwnersFor("anything").size(), 1u);

  ring.AddNode("duo", Tcp(9001));
  auto owners = ring.OwnersFor("anything");
  ASSERT_EQ(owners.size(), 2u);
  EXPECT_NE(owners[0], owners[1]);

  for (int i = 0; i < 3; ++i) {
    ring.AddNode("extra" + std::to_string(i), Tcp(9100 + i));
  }
  for (const auto& key : Keys(100)) {
    owners = ring.OwnersFor(key);
    ASSERT_EQ(owners.size(), 3u) << key;
    EXPECT_EQ(std::set<std::string>(owners.begin(), owners.end()).size(), 3u)
        << "replicas must be distinct nodes for " << key;
  }
}

TEST(HashRingTest, VirtualNodesSmoothTheLoadSplit) {
  HashRing ring;
  constexpr int kNodes = 5;
  for (int i = 0; i < kNodes; ++i) {
    ring.AddNode("node" + std::to_string(i), Tcp(9000 + i));
  }
  std::map<std::string, int> per_node;
  const auto keys = Keys(5000);
  for (const auto& key : keys) ++per_node[ring.PrimaryFor(key)];
  ASSERT_EQ(per_node.size(), static_cast<std::size_t>(kNodes));
  // Perfect split is 20%; 64 vnodes/node keeps every node within a loose
  // [8%, 36%] band (the test guards against gross imbalance, not variance).
  for (const auto& [name, count] : per_node) {
    const double share = static_cast<double>(count) / keys.size();
    EXPECT_GT(share, 0.08) << name;
    EXPECT_LT(share, 0.36) << name;
  }
}

TEST(HashRingTest, AddingANodeStealsAboutOneNth) {
  HashRing ring;
  for (int i = 0; i < 4; ++i) {
    ring.AddNode("node" + std::to_string(i), Tcp(9000 + i));
  }
  const auto keys = Keys(4000);
  std::vector<std::string> before;
  before.reserve(keys.size());
  for (const auto& key : keys) before.push_back(ring.PrimaryFor(key));

  ring.AddNode("joiner", Tcp(9100));
  std::size_t moved = 0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const std::string after = ring.PrimaryFor(keys[i]);
    if (after != before[i]) {
      ++moved;
      // Minimal movement: a key only ever moves TO the joiner — never
      // between surviving nodes.
      EXPECT_EQ(after, "joiner") << keys[i];
    }
  }
  // Expected steal is 1/5 = 20%; allow a wide band.
  const double frac = static_cast<double>(moved) / keys.size();
  EXPECT_GT(frac, 0.08);
  EXPECT_LT(frac, 0.36);
}

TEST(HashRingTest, RemoveNodeRedistributesOnlyItsKeys) {
  HashRing ring;
  for (int i = 0; i < 4; ++i) {
    ring.AddNode("node" + std::to_string(i), Tcp(9000 + i));
  }
  const auto keys = Keys(1000);
  std::vector<std::string> before;
  before.reserve(keys.size());
  for (const auto& key : keys) before.push_back(ring.PrimaryFor(key));

  ASSERT_TRUE(ring.RemoveNode("node2"));
  EXPECT_FALSE(ring.RemoveNode("node2"));
  EXPECT_FALSE(ring.HasNode("node2"));
  EXPECT_EQ(ring.num_nodes(), 3u);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (before[i] != "node2") {
      EXPECT_EQ(ring.PrimaryFor(keys[i]), before[i]) << keys[i];
    } else {
      EXPECT_NE(ring.PrimaryFor(keys[i]), "node2") << keys[i];
    }
  }
}

TEST(HashRingTest, VersionBumpsOnEveryMutation) {
  HashRing ring;
  const auto v0 = ring.version();
  ring.AddNode("a", Tcp(9000));
  const auto v1 = ring.version();
  EXPECT_GT(v1, v0);
  ring.AddNode("b", Tcp(9001));
  const auto v2 = ring.version();
  EXPECT_GT(v2, v1);
  ring.RemoveNode("a");
  EXPECT_GT(ring.version(), v2);
}

TEST(HashRingTest, EndpointLookupAndNames) {
  HashRing ring;
  ring.AddNode("beta", Tcp(9001));
  ring.AddNode("alpha", Tcp(9000));
  const auto names = ring.NodeNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "alpha");  // sorted for stable exposition
  EXPECT_EQ(names[1], "beta");
  ASSERT_NE(ring.EndpointOf("beta"), nullptr);
  EXPECT_EQ(ring.EndpointOf("beta")->port, 9001);
  EXPECT_EQ(ring.EndpointOf("nope"), nullptr);
}

}  // namespace
}  // namespace cortex::cluster
