#include "core/sharded_cache.h"

#include <gtest/gtest.h>

#include <set>

#include "test_helpers.h"

namespace cortex {
namespace {

using cortex::testing::MiniWorld;

class ShardedCacheTest : public ::testing::Test {
 protected:
  ShardedCacheTest() : world_(60, /*seed=*/41) {}

  std::unique_ptr<ShardedSemanticCache> MakeCache(std::size_t shards,
                                                  double capacity = 1e6) {
    ShardedCacheOptions opts;
    opts.num_shards = shards;
    opts.cache.capacity_tokens = capacity;
    return std::make_unique<ShardedSemanticCache>(&world_.embedder,
                                                  world_.judger.get(), opts);
  }

  InsertRequest RequestFor(std::size_t topic, std::size_t paraphrase = 0) {
    InsertRequest req;
    req.key = world_.query(topic, paraphrase);
    req.value = world_.answer(topic);
    req.staticity = world_.topic(topic).staticity;
    req.retrieval_latency_sec = 0.4;
    req.retrieval_cost_dollars = 0.005;
    req.initial_frequency = 1;
    return req;
  }

  MiniWorld world_;
};

TEST_F(ShardedCacheTest, ParaphrasesRouteToTheSameShard) {
  auto cache = MakeCache(8);
  int stable_topics = 0;
  for (std::size_t topic = 0; topic < world_.universe->size(); ++topic) {
    std::set<std::size_t> shards;
    for (const auto& q : world_.topic(topic).paraphrases) {
      shards.insert(cache->ShardFor(q));
    }
    if (shards.size() == 1) ++stable_topics;
  }
  // IDF-anchored routing keeps the overwhelming majority of topics
  // shard-stable (an occasional template word can out-weigh the entity).
  EXPECT_GE(stable_topics,
            static_cast<int>(world_.universe->size() * 9 / 10));
}

TEST_F(ShardedCacheTest, RoutingIsDeterministic) {
  auto cache = MakeCache(4);
  for (std::size_t topic = 0; topic < 10; ++topic) {
    const auto& q = world_.query(topic, 0);
    EXPECT_EQ(cache->ShardFor(q), cache->ShardFor(q));
  }
}

TEST_F(ShardedCacheTest, LookupFindsParaphraseAcrossTheShardedTier) {
  auto cache = MakeCache(4);
  int hits = 0, attempts = 0;
  for (std::size_t topic = 0; topic < 30; ++topic) {
    ASSERT_TRUE(cache->Insert(RequestFor(topic, 0), 0.0).has_value());
    ++attempts;
    if (cache->Lookup(world_.query(topic, 3), 1.0).hit) ++hits;
  }
  // Same semantic behaviour as a monolithic cache for shard-stable topics.
  EXPECT_GE(hits, attempts * 8 / 10);
}

TEST_F(ShardedCacheTest, ShardsSplitTheCapacityBudget) {
  auto cache = MakeCache(4, /*capacity=*/1000.0);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(cache->shard(i).capacity_tokens(), 250.0);
  }
}

TEST_F(ShardedCacheTest, LoadSpreadsAcrossShards) {
  auto cache = MakeCache(4);
  for (std::size_t topic = 0; topic < world_.universe->size(); ++topic) {
    cache->Insert(RequestFor(topic), 0.0);
  }
  // No shard should hold everything (routing is roughly balanced).
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_LT(cache->shard(i).size(), world_.universe->size());
    EXPECT_GT(cache->shard(i).size(), 0u);
  }
  EXPECT_EQ(cache->TotalSize(), cache->shard(0).size() +
                                    cache->shard(1).size() +
                                    cache->shard(2).size() +
                                    cache->shard(3).size());
}

TEST_F(ShardedCacheTest, AggregatedCountersSumShards) {
  auto cache = MakeCache(2);
  cache->Insert(RequestFor(0), 0.0);
  cache->Insert(RequestFor(1), 0.0);
  cache->Lookup(world_.query(0, 1), 1.0);
  cache->Lookup(world_.query(1, 1), 1.0);
  const auto totals = cache->TotalCounters();
  EXPECT_EQ(totals.insertions, 2u);
  EXPECT_EQ(totals.lookups, 2u);
  EXPECT_GE(totals.hits, 1u);
  EXPECT_GT(cache->TotalUsageTokens(), 0.0);
}

TEST_F(ShardedCacheTest, ContainsKeyAndExpiryWorkThroughTheRouter) {
  ShardedCacheOptions opts;
  opts.num_shards = 4;
  opts.cache.capacity_tokens = 1e6;
  opts.cache.min_ttl_sec = 10.0;
  opts.cache.max_ttl_sec = 20.0;
  ShardedSemanticCache cache(&world_.embedder, world_.judger.get(), opts);
  cache.Insert(RequestFor(0), 0.0);
  EXPECT_TRUE(cache.ContainsKey(world_.query(0, 0)));
  EXPECT_EQ(cache.RemoveExpired(100.0), 1u);
  EXPECT_FALSE(cache.ContainsKey(world_.query(0, 0)));
}

TEST_F(ShardedCacheTest, SingleShardDegeneratesToMonolith) {
  auto sharded = MakeCache(1);
  for (std::size_t topic = 0; topic < 20; ++topic) {
    sharded->Insert(RequestFor(topic), 0.0);
  }
  EXPECT_EQ(sharded->shard(0).size(), sharded->TotalSize());
  EXPECT_TRUE(sharded->Lookup(world_.query(5, 2), 1.0).hit.has_value());
}

}  // namespace
}  // namespace cortex
