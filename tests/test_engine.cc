#include "core/engine.h"

#include <gtest/gtest.h>

#include "test_helpers.h"

namespace cortex {
namespace {

using cortex::testing::MiniWorld;

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() { Rebuild({}); }

  void Rebuild(CortexEngineOptions options) {
    if (options.cache.capacity_tokens ==
        SemanticCacheOptions{}.capacity_tokens) {
      options.cache.capacity_tokens = 1e6;
    }
    options.recalibration_enabled = false;  // exercised separately
    engine_ = std::make_unique<CortexEngine>(&world_.embedder,
                                             world_.judger.get(), options);
  }

  MiniWorld world_;
  std::unique_ptr<CortexEngine> engine_;
};

TEST_F(EngineTest, FactoriesProduceAllVariants) {
  EXPECT_NE(MakeIndex(IndexType::kFlat, 16), nullptr);
  EXPECT_NE(MakeIndex(IndexType::kIvf, 16), nullptr);
  EXPECT_NE(MakeIndex(IndexType::kHnsw, 16), nullptr);
  EXPECT_EQ(MakeEviction(EvictionKind::kLcfu)->name(), "lcfu");
  EXPECT_EQ(MakeEviction(EvictionKind::kLru)->name(), "lru");
  EXPECT_EQ(MakeEviction(EvictionKind::kLfu)->name(), "lfu");
}

TEST_F(EngineTest, MissThenInsertThenSemanticHit) {
  auto miss = engine_->Lookup(world_.query(0, 0), 0.0);
  EXPECT_FALSE(miss.cache.hit.has_value());

  const auto id = engine_->InsertFetched(
      world_.query(0, 0), world_.answer(0),
      std::move(miss.cache.query_embedding), 0.4, 0.005, 0.5);
  ASSERT_TRUE(id.has_value());

  const auto hit = engine_->Lookup(world_.query(0, 3), 1.0, /*session=*/1);
  ASSERT_TRUE(hit.cache.hit.has_value());
  EXPECT_EQ(hit.cache.hit->value, world_.answer(0));
}

TEST_F(EngineTest, InsertFetchedScoresStaticityViaJudger) {
  engine_->InsertFetched(world_.query(0, 0), world_.answer(0), std::nullopt,
                         0.4, 0.005, 0.0);
  const auto& entries = engine_->cache().entries();
  ASSERT_EQ(entries.size(), 1u);
  const auto& se = entries.begin()->second;
  // The judger estimates staticity near the oracle truth (bounded noise).
  EXPECT_NEAR(se.staticity, world_.topic(0).staticity, 4.0);
  EXPECT_EQ(se.frequency, 1u);
  EXPECT_DOUBLE_EQ(se.retrieval_latency_sec, 0.4);
}

TEST_F(EngineTest, PrefetchedEntersWithZeroFrequency) {
  const auto id = engine_->InsertPrefetched(world_.query(1, 0),
                                            world_.answer(1), 0.3, 0.005, 0.0);
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(engine_->cache().Get(*id)->frequency, 0u);
}

TEST_F(EngineTest, LookupLogsJudgmentsForRecalibration) {
  engine_->InsertFetched(world_.query(0, 0), world_.answer(0), std::nullopt,
                         0.4, 0.005, 0.0);
  EXPECT_EQ(engine_->recalibrator().log_size(), 0u);
  engine_->Lookup(world_.query(0, 2), 1.0);
  EXPECT_GE(engine_->recalibrator().log_size(), 1u);
}

TEST_F(EngineTest, PrefetchProposalsAfterLearnedTransitions) {
  CortexEngineOptions opts;
  opts.prefetch.min_observations = 2;
  opts.prefetch.confidence_threshold = 0.5;
  Rebuild(opts);
  // Teach the engine q0 -> q1 through repeated sessions, with topic 1
  // evicted/absent so a prefetch is actually useful.
  const std::string q0 = world_.query(0, 0);
  const std::string q1 = world_.query(1, 0);
  for (std::uint64_t session = 0; session < 4; ++session) {
    engine_->Lookup(q0, session * 10.0, session);
    engine_->Lookup(q1, session * 10.0 + 1.0, session);
  }
  // Next session: after q0, the engine should propose prefetching q1
  // (q1 was never inserted, so it is not cached).
  const auto outcome = engine_->Lookup(q0, 100.0, /*session=*/99);
  ASSERT_FALSE(outcome.prefetches.empty());
  EXPECT_EQ(outcome.prefetches[0].query, q1);
  EXPECT_GE(outcome.prefetches[0].probability, 0.5);
}

TEST_F(EngineTest, NoPrefetchProposalWhenTargetCached) {
  CortexEngineOptions opts;
  opts.prefetch.min_observations = 2;
  Rebuild(opts);
  const std::string q0 = world_.query(0, 0);
  const std::string q1 = world_.query(1, 0);
  engine_->InsertFetched(q1, world_.answer(1), std::nullopt, 0.3, 0.005, 0.0);
  for (std::uint64_t session = 0; session < 4; ++session) {
    engine_->Lookup(q0, session * 10.0, session);
    engine_->Lookup(q1, session * 10.0 + 1.0, session);
  }
  const auto outcome = engine_->Lookup(q0, 100.0, /*session=*/99);
  EXPECT_TRUE(outcome.prefetches.empty());
}

TEST_F(EngineTest, PrefetchDisabledProposesNothing) {
  CortexEngineOptions opts;
  opts.prefetch_enabled = false;
  Rebuild(opts);
  const std::string q0 = world_.query(0, 0);
  const std::string q1 = world_.query(1, 0);
  for (std::uint64_t session = 0; session < 6; ++session) {
    engine_->Lookup(q0, session * 10.0, session);
    engine_->Lookup(q1, session * 10.0 + 1.0, session);
  }
  EXPECT_TRUE(engine_->Lookup(q0, 100.0, 99).prefetches.empty());
}

TEST_F(EngineTest, RecalibrateAppliesNewThreshold) {
  // Seed the log with clearly-separated judgments.
  engine_->InsertFetched(world_.query(0, 0), world_.answer(0), std::nullopt,
                         0.4, 0.005, 0.0);
  for (int i = 0; i < 30; ++i) {
    engine_->Lookup(world_.query(0, i % 6), static_cast<double>(i));
  }
  ASSERT_GT(engine_->recalibrator().log_size(), 0u);
  Rng rng(1);
  auto fetch_gt = [&](std::string_view q) {
    return world_.oracle->ExpectedInfo(q);
  };
  std::optional<double> applied;
  for (int round = 0; round < 10 && !applied; ++round) {
    applied = engine_->Recalibrate(fetch_gt, rng).new_tau;
  }
  ASSERT_TRUE(applied.has_value());
  EXPECT_DOUBLE_EQ(engine_->cache().sine().options().tau_lsm, *applied);
}

TEST_F(EngineTest, DecisionTraceRecordsHitsAndMisses) {
  CortexEngineOptions opts;
  opts.decision_trace_size = 3;
  Rebuild(opts);
  engine_->Lookup(world_.query(0, 0), 0.0);  // miss on empty cache
  engine_->InsertFetched(world_.query(0, 0), world_.answer(0), std::nullopt,
                         0.4, 0.005, 0.5);
  engine_->Lookup(world_.query(0, 2), 1.0);  // hit

  const auto& trace = engine_->decision_trace();
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_FALSE(trace[0].hit);
  EXPECT_EQ(trace[0].query, world_.query(0, 0));
  EXPECT_TRUE(trace[1].hit);
  EXPECT_EQ(trace[1].matched_key, world_.query(0, 0));
  EXPECT_GE(trace[1].best_judger_score, 0.6);
}

TEST_F(EngineTest, DecisionTraceIsBoundedRing) {
  CortexEngineOptions opts;
  opts.decision_trace_size = 4;
  Rebuild(opts);
  for (int i = 0; i < 12; ++i) {
    engine_->Lookup(world_.query(i % 8, 0), i * 1.0);
  }
  const auto& trace = engine_->decision_trace();
  EXPECT_EQ(trace.size(), 4u);
  // The retained entries are the most recent lookups, oldest first.
  EXPECT_DOUBLE_EQ(trace.front().time, 8.0);
  EXPECT_DOUBLE_EQ(trace.back().time, 11.0);
}

TEST_F(EngineTest, TracingDisabledByDefault) {
  engine_->Lookup(world_.query(0, 0), 0.0);
  EXPECT_TRUE(engine_->decision_trace().empty());
}

// The engine behaves equivalently across index backends.
class EngineIndexTest : public ::testing::TestWithParam<IndexType> {};

TEST_P(EngineIndexTest, HitRateComparableAcrossIndexes) {
  MiniWorld world(60, /*seed=*/21);
  CortexEngineOptions opts;
  opts.cache.capacity_tokens = 1e6;
  opts.index_type = GetParam();
  opts.recalibration_enabled = false;
  CortexEngine engine(&world.embedder, world.judger.get(), opts);
  Rng rng(5);
  int hits = 0, lookups = 0;
  for (int i = 0; i < 400; ++i) {
    const auto topic = rng.NextBelow(world.universe->size());
    const auto para = rng.NextBelow(6);
    const auto& q = world.query(topic, para);
    ++lookups;
    auto out = engine.Lookup(q, i * 1.0);
    if (out.cache.hit) {
      ++hits;
    } else {
      engine.InsertFetched(q, world.answer(topic), std::nullopt, 0.4, 0.005,
                           i * 1.0);
    }
  }
  // Uniform popularity over 60 topics, 400 lookups: most topics cached
  // quickly, so hit rate should be substantial for every index type.
  EXPECT_GT(static_cast<double>(hits) / lookups, 0.5);
}

INSTANTIATE_TEST_SUITE_P(Indexes, EngineIndexTest,
                         ::testing::Values(IndexType::kFlat, IndexType::kIvf,
                                           IndexType::kHnsw, IndexType::kPq),
                         [](const auto& info) {
                           switch (info.param) {
                             case IndexType::kFlat: return "flat";
                             case IndexType::kIvf: return "ivf";
                             case IndexType::kHnsw: return "hnsw";
                             case IndexType::kPq: return "pq";
                           }
                           return "unknown";
                         });

}  // namespace
}  // namespace cortex
