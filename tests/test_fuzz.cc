// Randomized robustness tests: feed the text-facing components adversarial
// and random input and check they never crash, never violate their
// invariants, and stay deterministic.
#include <gtest/gtest.h>

#include <string>

#include "ann/flat_index.h"
#include "core/exact_cache.h"
#include "core/semantic_cache.h"
#include "embedding/hashed_embedder.h"
#include "llm/tags.h"
#include "test_helpers.h"
#include "util/config.h"
#include "util/rng.h"
#include "util/tokenizer.h"

namespace cortex {
namespace {

std::string RandomText(Rng& rng, std::size_t max_len) {
  // Mix of printable ASCII, angle brackets, and the tag alphabet so the tag
  // parser's state machine actually gets exercised.
  static constexpr std::string_view kAlphabet =
      "abcdefghijklmnopqrstuvwxyz <>/ниș\t\n'_0123456789<think></think>"
      "<search><info><answer><tool>";
  const std::size_t len = rng.NextBelow(max_len + 1);
  std::string out;
  out.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    out.push_back(kAlphabet[rng.NextBelow(kAlphabet.size())]);
  }
  return out;
}

TEST(Fuzz, TagParserNeverCrashesAndPreservesTaggedContent) {
  Rng rng(0xF022);
  for (int trial = 0; trial < 2000; ++trial) {
    const std::string text = RandomText(rng, 200);
    const auto segments = ParseTagged(text);
    // Invariants: no segment has an impossible kind; tagged round trip of a
    // sanitized payload survives embedding in random noise.
    for (const auto& seg : segments) {
      EXPECT_LE(static_cast<int>(seg.kind), static_cast<int>(TagKind::kText));
    }
  }
}

TEST(Fuzz, WrappedPayloadAlwaysRecoverable) {
  Rng rng(0xF023);
  for (int trial = 0; trial < 500; ++trial) {
    // Payload without the closing-tag substring.
    std::string payload = RandomText(rng, 60);
    for (std::string_view closing :
         {"</think>", "</search>", "</info>", "</answer>", "</tool>"}) {
      std::size_t pos;
      while ((pos = payload.find(closing)) != std::string::npos) {
        payload.erase(pos, 2);  // break the "</" prefix
      }
    }
    const std::string text = WrapTag(TagKind::kSearch, payload);
    const auto segments = ParseTagged(text);
    bool found = false;
    for (const auto& seg : segments) {
      if (seg.kind == TagKind::kSearch) {
        found = true;
        EXPECT_EQ(seg.content, payload);
      }
    }
    EXPECT_TRUE(found) << text;
  }
}

TEST(Fuzz, TokenizerNeverCrashesOnArbitraryBytes) {
  Rng rng(0xF024);
  Tokenizer tokenizer;
  for (int trial = 0; trial < 2000; ++trial) {
    std::string bytes;
    const std::size_t len = rng.NextBelow(120);
    for (std::size_t i = 0; i < len; ++i) {
      bytes.push_back(static_cast<char>(rng.NextBelow(256)));
    }
    const auto tokens = tokenizer.Tokenize(bytes);
    for (const auto& t : tokens) EXPECT_FALSE(t.empty());
    const double overlap = tokenizer.LexicalOverlap(bytes, bytes);
    EXPECT_GE(overlap, 0.0);
    EXPECT_LE(overlap, 1.0);
  }
}

TEST(Fuzz, EmbedderIsTotalAndUnitNorm) {
  Rng rng(0xF025);
  HashedEmbedder embedder;
  for (int trial = 0; trial < 1000; ++trial) {
    std::string bytes;
    const std::size_t len = rng.NextBelow(100);
    for (std::size_t i = 0; i < len; ++i) {
      bytes.push_back(static_cast<char>(1 + rng.NextBelow(255)));
    }
    const auto v = embedder.Embed(bytes);
    EXPECT_EQ(v.size(), embedder.dimension());
    EXPECT_NEAR(L2Norm(v), 1.0, 1e-4);
  }
}

TEST(Fuzz, ConfigParserRejectsOrAcceptsNeverCrashes) {
  Rng rng(0xF026);
  for (int trial = 0; trial < 1000; ++trial) {
    const std::string text = RandomText(rng, 150);
    try {
      const auto config = Config::FromString(text);
      (void)config.Keys();
    } catch (const std::invalid_argument&) {
      // Rejection is fine; crashing is not.
    }
  }
}

TEST(Fuzz, SemanticCacheInvariantsUnderRandomOperations) {
  cortex::testing::MiniWorld world(30, 0xF027);
  SemanticCacheOptions opts;
  opts.capacity_tokens = 800.0;
  opts.min_ttl_sec = 20.0;
  opts.max_ttl_sec = 200.0;
  SemanticCache cache(&world.embedder,
                      std::make_unique<FlatIndex>(world.embedder.dimension()),
                      world.judger.get(), std::make_unique<LcfuPolicy>(),
                      opts);
  Rng rng(0xF028);
  double now = 0.0;
  std::vector<SeId> live_ids;
  for (int op = 0; op < 2000; ++op) {
    now += rng.Uniform(0.0, 2.0);
    const auto topic = rng.NextBelow(world.universe->size());
    const auto para = rng.NextBelow(6);
    switch (rng.NextBelow(4)) {
      case 0:
      case 1: {  // lookup (insert on miss)
        auto result = cache.Lookup(world.query(topic, para), now);
        if (!result.hit) {
          InsertRequest req;
          req.key = world.query(topic, para);
          req.value = world.answer(topic);
          req.embedding = std::move(result.query_embedding);
          req.staticity = world.topic(topic).staticity;
          req.retrieval_latency_sec = rng.Uniform(0.1, 1.0);
          req.retrieval_cost_dollars = rng.Uniform(0.0, 0.03);
          if (auto id = cache.Insert(std::move(req), now)) {
            live_ids.push_back(*id);
          }
        }
        break;
      }
      case 2: {  // random removal
        if (!live_ids.empty()) {
          const auto idx = rng.NextBelow(live_ids.size());
          cache.Remove(live_ids[idx]);
          live_ids.erase(live_ids.begin() +
                         static_cast<std::ptrdiff_t>(idx));
        }
        break;
      }
      case 3:  // TTL purge
        cache.RemoveExpired(now);
        break;
    }
    // Invariants after every operation.
    ASSERT_LE(cache.usage_tokens(), opts.capacity_tokens + 1e-9);
    ASSERT_EQ(cache.sine().size(), cache.size());
    double sum = 0.0;
    for (const auto& [id, se] : cache.entries()) {
      sum += se.size_tokens;
      ASSERT_FALSE(se.ExpiredAt(now - 1e9));  // sanity: not absurdly expired
    }
    ASSERT_NEAR(sum, cache.usage_tokens(), 1e-6);
  }
  EXPECT_GT(cache.counters().hits, 0u);
  EXPECT_GT(cache.counters().evictions + cache.counters().expirations, 0u);
}

TEST(Fuzz, ExactCacheNeverExceedsCapacityUnderRandomOps) {
  ExactCacheOptions opts;
  opts.capacity_tokens = 60.0;
  opts.ttl_sec = 50.0;
  ExactCache cache(opts);
  Rng rng(0xF029);
  double now = 0.0;
  for (int op = 0; op < 3000; ++op) {
    now += rng.Uniform(0.0, 1.0);
    const std::string key = "key " + std::to_string(rng.NextBelow(40));
    if (rng.Bernoulli(0.5)) {
      cache.Insert(key, "value payload " + std::to_string(rng.NextBelow(8)),
                   now);
    } else {
      cache.Lookup(key, now);
    }
    ASSERT_LE(cache.usage_tokens(), opts.capacity_tokens);
  }
  EXPECT_GT(cache.hits(), 0u);
}

TEST(Fuzz, DeterministicAcrossIdenticalRuns) {
  auto run = [] {
    cortex::testing::MiniWorld world(25, 0xF030);
    SemanticCacheOptions opts;
    opts.capacity_tokens = 600.0;
    SemanticCache cache(
        &world.embedder,
        std::make_unique<FlatIndex>(world.embedder.dimension()),
        world.judger.get(), std::make_unique<LcfuPolicy>(), opts);
    Rng rng(0xF031);
    std::uint64_t hits = 0;
    for (int op = 0; op < 500; ++op) {
      const auto topic = rng.NextBelow(world.universe->size());
      auto result = cache.Lookup(world.query(topic, rng.NextBelow(6)),
                                 op * 0.7);
      if (result.hit) {
        ++hits;
      } else {
        InsertRequest req;
        req.key = world.query(topic, 0);
        req.value = world.answer(topic);
        req.staticity = 5.0;
        cache.Insert(std::move(req), op * 0.7);
      }
    }
    return hits;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace cortex
