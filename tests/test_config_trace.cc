#include <gtest/gtest.h>

#include <sstream>

#include "sim/trace_export.h"
#include "util/config.h"

namespace cortex {
namespace {

// --- Config ---

TEST(Config, ParsesSectionsAndKeys) {
  const auto config = Config::FromString(
      "# comment\n"
      "top = 1\n"
      "[workload]\n"
      "type = skewed\n"
      "tasks = 1000\n"
      "\n"
      "[cache]\n"
      "ratio = 0.4\n"
      "prefetch = true\n");
  EXPECT_EQ(config.GetInt("top", 0), 1);
  EXPECT_EQ(config.GetString("workload.type"), "skewed");
  EXPECT_EQ(config.GetInt("workload.tasks", 0), 1000);
  EXPECT_DOUBLE_EQ(config.GetDouble("cache.ratio", 0.0), 0.4);
  EXPECT_TRUE(config.GetBool("cache.prefetch", false));
  EXPECT_EQ(config.size(), 5u);
}

TEST(Config, WhitespaceAndCommentsIgnored) {
  const auto config = Config::FromString(
      "  [ s ]  \n"
      "  key   =   spaced value  \n"
      "; semicolon comment\n");
  EXPECT_EQ(config.GetString("s.key"), "spaced value");
}

TEST(Config, MissingKeysFallBackToDefaults) {
  const auto config = Config::FromString("");
  EXPECT_EQ(config.GetString("nope", "fallback"), "fallback");
  EXPECT_EQ(config.GetInt("nope", 7), 7);
  EXPECT_DOUBLE_EQ(config.GetDouble("nope", 1.5), 1.5);
  EXPECT_TRUE(config.GetBool("nope", true));
  EXPECT_FALSE(config.Has("nope"));
}

TEST(Config, BooleanSpellings) {
  const auto config = Config::FromString(
      "a = true\nb = yes\nc = on\nd = 1\ne = false\nf = off\n");
  for (const char* key : {"a", "b", "c", "d"}) {
    EXPECT_TRUE(config.GetBool(key, false)) << key;
  }
  EXPECT_FALSE(config.GetBool("e", true));
  EXPECT_FALSE(config.GetBool("f", true));
}

TEST(Config, MalformedInputThrowsWithLineNumber) {
  try {
    Config::FromString("ok = 1\nthis line has no equals\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
  EXPECT_THROW(Config::FromString("[unterminated\n"), std::invalid_argument);
  EXPECT_THROW(Config::FromString("= value\n"), std::invalid_argument);
}

TEST(Config, TypeErrorsThrow) {
  const auto config = Config::FromString("n = abc\nb = maybe\n");
  EXPECT_THROW(config.GetInt("n", 0), std::invalid_argument);
  EXPECT_THROW(config.GetDouble("n", 0.0), std::invalid_argument);
  EXPECT_THROW(config.GetBool("b", false), std::invalid_argument);
}

TEST(Config, SetOverrides) {
  auto config = Config::FromString("[cache]\nratio = 0.4\n");
  config.Set("cache.ratio", "0.8");
  EXPECT_DOUBLE_EQ(config.GetDouble("cache.ratio", 0.0), 0.8);
}

TEST(Config, KeysAreSorted) {
  const auto config = Config::FromString("b = 1\na = 2\n[z]\nc = 3\n");
  const auto keys = config.Keys();
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_EQ(keys[0], "a");
  EXPECT_EQ(keys[1], "b");
  EXPECT_EQ(keys[2], "z.c");
}

TEST(Config, MissingFileThrows) {
  EXPECT_THROW(Config::FromFile("/nonexistent/cortex.conf"),
               std::runtime_error);
}

// --- Trace export ---

RunMetrics MakeMetrics() {
  RunMetrics metrics;
  for (int i = 0; i < 5; ++i) {
    TaskRecord r;
    r.task_id = 100 + i;
    r.arrival_time = i;
    r.completion_time = i + 1.5;
    r.agent_seconds = 0.5;
    r.tool_seconds = 0.8;
    r.tool_calls = 2;
    r.cache_hits = 1;
    r.api_calls = 1;
    r.cost_dollars = 0.005;
    r.answer_correct = i % 2 == 0;
    metrics.Record(r);
  }
  return metrics;
}

TEST(TraceExport, RecordsCsvHasHeaderAndRows) {
  const auto metrics = MakeMetrics();
  std::ostringstream out;
  WriteTaskRecordsCsv(metrics, out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("task_id,arrival,completion"), std::string::npos);
  // Header + 5 rows.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 6);
  EXPECT_NE(csv.find("100,0,1.5,1.5,0.5,0,0.8,2,1,1,0,0.005,1"),
            std::string::npos);
}

TEST(TraceExport, LatencyCdfIsMonotone) {
  const auto metrics = MakeMetrics();
  std::ostringstream out;
  WriteLatencyCdfCsv(metrics, out, 20);
  std::istringstream in(out.str());
  std::string line;
  std::getline(in, line);  // header
  double prev_latency = -1.0;
  int rows = 0;
  while (std::getline(in, line)) {
    const auto comma = line.find(',');
    const double latency = std::stod(line.substr(comma + 1));
    EXPECT_GE(latency, prev_latency);
    prev_latency = latency;
    ++rows;
  }
  EXPECT_EQ(rows, 20);
}

TEST(TraceExport, SummaryCsvRoundTripsValues) {
  const auto metrics = MakeMetrics();
  std::ostringstream out;
  WriteSummaryCsv(metrics, out, "unit-test");
  const std::string csv = out.str();
  EXPECT_NE(csv.find("label,tasks,throughput"), std::string::npos);
  EXPECT_NE(csv.find("unit-test,5,"), std::string::npos);
  // Header suppression for appends.
  std::ostringstream no_header;
  WriteSummaryCsv(metrics, no_header, "x", /*include_header=*/false);
  EXPECT_EQ(no_header.str().find("label,"), std::string::npos);
}

TEST(TraceExport, FileWriteFailsLoudly) {
  const auto metrics = MakeMetrics();
  EXPECT_THROW(WriteTaskRecordsCsvFile(metrics, "/nonexistent/dir/x.csv"),
               std::runtime_error);
}

}  // namespace
}  // namespace cortex
