#include "embedding/vector_ops.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "embedding/simd_kernels.h"
#include "util/rng.h"

namespace cortex {
namespace {

// Restores the previously active kernel variant on scope exit so a failing
// assertion cannot leak a forced variant into later tests.
class ScopedVariant {
 public:
  explicit ScopedVariant(simd::Variant v) : prev_(simd::ActiveVariant()) {
    forced_ = simd::ForceVariant(v);
  }
  ~ScopedVariant() { simd::ForceVariant(prev_); }
  ScopedVariant(const ScopedVariant&) = delete;
  ScopedVariant& operator=(const ScopedVariant&) = delete;
  bool forced() const noexcept { return forced_; }

 private:
  simd::Variant prev_;
  bool forced_ = false;
};

TEST(VectorOps, DotProduct) {
  const Vector a = {1, 2, 3};
  const Vector b = {4, -5, 6};
  EXPECT_DOUBLE_EQ(Dot(a, b), 12.0);
}

TEST(VectorOps, L2NormAndDistance) {
  const Vector a = {3, 4};
  EXPECT_DOUBLE_EQ(L2Norm(a), 5.0);
  const Vector b = {0, 0};
  EXPECT_DOUBLE_EQ(L2DistanceSquared(a, b), 25.0);
}

TEST(VectorOps, CosineOfParallelVectorsIsOne) {
  const Vector a = {1, 2, 3};
  const Vector b = {2, 4, 6};
  EXPECT_NEAR(CosineSimilarity(a, b), 1.0, 1e-12);
}

TEST(VectorOps, CosineOfOrthogonalVectorsIsZero) {
  const Vector a = {1, 0};
  const Vector b = {0, 1};
  EXPECT_DOUBLE_EQ(CosineSimilarity(a, b), 0.0);
}

TEST(VectorOps, CosineOfOppositeVectorsIsMinusOne) {
  const Vector a = {1, 1};
  const Vector b = {-1, -1};
  EXPECT_NEAR(CosineSimilarity(a, b), -1.0, 1e-12);
}

TEST(VectorOps, CosineWithZeroVectorIsZero) {
  const Vector a = {0, 0};
  const Vector b = {1, 2};
  EXPECT_DOUBLE_EQ(CosineSimilarity(a, b), 0.0);
}

TEST(VectorOps, NormalizeProducesUnitLength) {
  Vector v = {3, 4, 12};
  Normalize(v);
  EXPECT_NEAR(L2Norm(v), 1.0, 1e-6);
}

TEST(VectorOps, NormalizeZeroVectorIsNoop) {
  Vector v = {0, 0, 0};
  Normalize(v);
  EXPECT_EQ(v, (Vector{0, 0, 0}));
}

TEST(VectorOps, AddAndScaleInPlace) {
  Vector a = {1, 2};
  const Vector b = {3, 4};
  AddInPlace(a, b);
  EXPECT_EQ(a, (Vector{4, 6}));
  ScaleInPlace(a, 0.5f);
  EXPECT_EQ(a, (Vector{2, 3}));
}

TEST(VectorOps, CosineBoundedForRandomVectors) {
  Rng rng(1);
  for (int trial = 0; trial < 100; ++trial) {
    Vector a(32), b(32);
    for (auto& x : a) x = static_cast<float>(rng.Normal());
    for (auto& x : b) x = static_cast<float>(rng.Normal());
    const double c = CosineSimilarity(a, b);
    EXPECT_GE(c, -1.0 - 1e-9);
    EXPECT_LE(c, 1.0 + 1e-9);
  }
}

TEST(VectorOps, TriangleConsistency) {
  // ||a-b||^2 = ||a||^2 + ||b||^2 - 2<a,b>.  Tolerance follows the kernel
  // numerics policy (simd_kernels.h): SIMD variants accumulate in float
  // lanes, so the identity holds to ~1e-5 relative, not double precision.
  Rng rng(2);
  Vector a(16), b(16);
  for (auto& x : a) x = static_cast<float>(rng.Normal());
  for (auto& x : b) x = static_cast<float>(rng.Normal());
  const double lhs = L2DistanceSquared(a, b);
  const double rhs = Dot(a, a) + Dot(b, b) - 2 * Dot(a, b);
  EXPECT_NEAR(lhs, rhs, 1e-5 * (std::abs(rhs) + 1.0));
}

// ---------------------------------------------------------------------------
// SIMD kernel layer

TEST(SimdKernels, ScalarAlwaysSupportedAndNamed) {
  EXPECT_TRUE(simd::VariantSupported(simd::Variant::kScalar));
  const auto variants = simd::SupportedVariants();
  ASSERT_FALSE(variants.empty());
  EXPECT_EQ(variants.front(), simd::Variant::kScalar);
  for (const auto v : variants) {
    EXPECT_STRNE(simd::VariantName(v), "");
  }
  // The resolved dispatch must itself be a supported variant.
  EXPECT_TRUE(simd::VariantSupported(simd::ActiveVariant()));
}

TEST(SimdKernels, ForceVariantSwapsAndRestores) {
  const auto original = simd::ActiveVariant();
  {
    ScopedVariant forced(simd::Variant::kScalar);
    ASSERT_TRUE(forced.forced());
    EXPECT_EQ(simd::ActiveVariant(), simd::Variant::kScalar);
  }
  EXPECT_EQ(simd::ActiveVariant(), original);
  // Unsupported variants are rejected without changing the dispatch.
#if !defined(__aarch64__)
  EXPECT_FALSE(simd::ForceVariant(simd::Variant::kNeon));
  EXPECT_EQ(simd::ActiveVariant(), original);
#endif
}

// Every compiled-and-runnable variant must agree with the scalar reference
// within 1e-5 relative tolerance, across dims that exercise every tail path
// (non-multiples of 8/16 lanes) and deliberately misaligned spans.
TEST(SimdKernels, AllVariantsMatchScalarReference) {
  Rng rng(7);
  const auto& scalar = simd::KernelsFor(simd::Variant::kScalar);
  const auto variants = simd::SupportedVariants();
  const std::size_t dims[] = {1,  2,  3,   5,   7,   8,   9,    15,  16,
                              17, 31, 32,  33,  63,  64,  65,   100, 127,
                              128, 129, 255, 256, 257, 768, 1000, 1536, 1537};
  for (const std::size_t dim : dims) {
    // +1 slack so the offset-1 pass reads in-bounds but misaligned.
    std::vector<float> abuf(dim + 1), bbuf(dim + 1);
    for (auto& x : abuf) x = static_cast<float>(rng.Normal());
    for (auto& x : bbuf) x = static_cast<float>(rng.Normal());
    for (const std::size_t offset : {std::size_t{0}, std::size_t{1}}) {
      const float* a = abuf.data() + offset;
      const float* b = bbuf.data() + offset;
      const double ref_dot = scalar.dot(a, b, dim);
      const double ref_l2 = scalar.l2sq(a, b, dim);
      for (const auto v : variants) {
        const auto& ks = simd::KernelsFor(v);
        EXPECT_NEAR(ks.dot(a, b, dim), ref_dot,
                    1e-5 * (std::abs(ref_dot) + 1.0))
            << simd::VariantName(v) << " dot dim=" << dim
            << " offset=" << offset;
        EXPECT_NEAR(ks.l2sq(a, b, dim), ref_l2, 1e-5 * (ref_l2 + 1.0))
            << simd::VariantName(v) << " l2sq dim=" << dim
            << " offset=" << offset;
      }
    }
  }
}

// Batched kernels (contiguous strided, gather, and L2) must agree with the
// scalar single-pair reference row by row, including padded strides.
TEST(SimdKernels, BatchKernelsMatchSingleQueryReference) {
  Rng rng(11);
  const auto& scalar = simd::KernelsFor(simd::Variant::kScalar);
  const auto variants = simd::SupportedVariants();
  for (const std::size_t dim : {std::size_t{5}, std::size_t{64},
                                std::size_t{257}, std::size_t{768}}) {
    const std::size_t n = 37;           // not a multiple of the 4-row block
    const std::size_t stride = dim + 3;  // padded, misaligns every row
    std::vector<float> rows(n * stride), query(dim);
    for (auto& x : rows) x = static_cast<float>(rng.Normal());
    for (auto& x : query) x = static_cast<float>(rng.Normal());
    std::vector<const float*> ptrs(n);
    for (std::size_t i = 0; i < n; ++i) ptrs[i] = rows.data() + i * stride;
    // Scatter the gather order so dot_rows cannot rely on contiguity.
    std::reverse(ptrs.begin(), ptrs.end());

    std::vector<float> dots(n), gathers(n), l2s(n);
    for (const auto v : variants) {
      const auto& ks = simd::KernelsFor(v);
      ks.dot_batch(query.data(), rows.data(), n, stride, dim, dots.data());
      ks.dot_rows(query.data(), ptrs.data(), n, dim, gathers.data());
      ks.l2sq_batch(query.data(), rows.data(), n, stride, dim, l2s.data());
      for (std::size_t i = 0; i < n; ++i) {
        const double ref =
            scalar.dot(query.data(), rows.data() + i * stride, dim);
        const double ref_g = scalar.dot(query.data(), ptrs[i], dim);
        const double ref_l2 =
            scalar.l2sq(query.data(), rows.data() + i * stride, dim);
        EXPECT_NEAR(dots[i], ref, 1e-5 * (std::abs(ref) + 1.0))
            << simd::VariantName(v) << " dot_batch dim=" << dim << " i=" << i;
        EXPECT_NEAR(gathers[i], ref_g, 1e-5 * (std::abs(ref_g) + 1.0))
            << simd::VariantName(v) << " dot_rows dim=" << dim << " i=" << i;
        EXPECT_NEAR(l2s[i], ref_l2, 1e-5 * (ref_l2 + 1.0))
            << simd::VariantName(v) << " l2sq_batch dim=" << dim
            << " i=" << i;
      }
    }
  }
}

TEST(SimdKernels, NearlyUnitNormAcceptsUnitRejectsOthers) {
  Rng rng(13);
  Vector v(128);
  for (auto& x : v) x = static_cast<float>(rng.Normal());
  Normalize(v);
  EXPECT_TRUE(NearlyUnitNorm(v));
  ScaleInPlace(v, 2.0f);
  EXPECT_FALSE(NearlyUnitNorm(v));
  const Vector zero(128, 0.0f);
  EXPECT_FALSE(NearlyUnitNorm(zero));
}

}  // namespace
}  // namespace cortex
