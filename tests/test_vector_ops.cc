#include "embedding/vector_ops.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "embedding/simd_kernels.h"
#include "embedding/vector_slab.h"
#include "util/rng.h"

namespace cortex {
namespace {

// Restores the previously active kernel variant on scope exit so a failing
// assertion cannot leak a forced variant into later tests.
class ScopedVariant {
 public:
  explicit ScopedVariant(simd::Variant v) : prev_(simd::ActiveVariant()) {
    forced_ = simd::ForceVariant(v);
  }
  ~ScopedVariant() { simd::ForceVariant(prev_); }
  ScopedVariant(const ScopedVariant&) = delete;
  ScopedVariant& operator=(const ScopedVariant&) = delete;
  bool forced() const noexcept { return forced_; }

 private:
  simd::Variant prev_;
  bool forced_ = false;
};

TEST(VectorOps, DotProduct) {
  const Vector a = {1, 2, 3};
  const Vector b = {4, -5, 6};
  EXPECT_DOUBLE_EQ(Dot(a, b), 12.0);
}

TEST(VectorOps, L2NormAndDistance) {
  const Vector a = {3, 4};
  EXPECT_DOUBLE_EQ(L2Norm(a), 5.0);
  const Vector b = {0, 0};
  EXPECT_DOUBLE_EQ(L2DistanceSquared(a, b), 25.0);
}

TEST(VectorOps, CosineOfParallelVectorsIsOne) {
  const Vector a = {1, 2, 3};
  const Vector b = {2, 4, 6};
  EXPECT_NEAR(CosineSimilarity(a, b), 1.0, 1e-12);
}

TEST(VectorOps, CosineOfOrthogonalVectorsIsZero) {
  const Vector a = {1, 0};
  const Vector b = {0, 1};
  EXPECT_DOUBLE_EQ(CosineSimilarity(a, b), 0.0);
}

TEST(VectorOps, CosineOfOppositeVectorsIsMinusOne) {
  const Vector a = {1, 1};
  const Vector b = {-1, -1};
  EXPECT_NEAR(CosineSimilarity(a, b), -1.0, 1e-12);
}

TEST(VectorOps, CosineWithZeroVectorIsZero) {
  const Vector a = {0, 0};
  const Vector b = {1, 2};
  EXPECT_DOUBLE_EQ(CosineSimilarity(a, b), 0.0);
}

TEST(VectorOps, NormalizeProducesUnitLength) {
  Vector v = {3, 4, 12};
  Normalize(v);
  EXPECT_NEAR(L2Norm(v), 1.0, 1e-6);
}

TEST(VectorOps, NormalizeZeroVectorIsNoop) {
  Vector v = {0, 0, 0};
  Normalize(v);
  EXPECT_EQ(v, (Vector{0, 0, 0}));
}

TEST(VectorOps, AddAndScaleInPlace) {
  Vector a = {1, 2};
  const Vector b = {3, 4};
  AddInPlace(a, b);
  EXPECT_EQ(a, (Vector{4, 6}));
  ScaleInPlace(a, 0.5f);
  EXPECT_EQ(a, (Vector{2, 3}));
}

TEST(VectorOps, CosineBoundedForRandomVectors) {
  Rng rng(1);
  for (int trial = 0; trial < 100; ++trial) {
    Vector a(32), b(32);
    for (auto& x : a) x = static_cast<float>(rng.Normal());
    for (auto& x : b) x = static_cast<float>(rng.Normal());
    const double c = CosineSimilarity(a, b);
    EXPECT_GE(c, -1.0 - 1e-9);
    EXPECT_LE(c, 1.0 + 1e-9);
  }
}

TEST(VectorOps, TriangleConsistency) {
  // ||a-b||^2 = ||a||^2 + ||b||^2 - 2<a,b>.  Tolerance follows the kernel
  // numerics policy (simd_kernels.h): SIMD variants accumulate in float
  // lanes, so the identity holds to ~1e-5 relative, not double precision.
  Rng rng(2);
  Vector a(16), b(16);
  for (auto& x : a) x = static_cast<float>(rng.Normal());
  for (auto& x : b) x = static_cast<float>(rng.Normal());
  const double lhs = L2DistanceSquared(a, b);
  const double rhs = Dot(a, a) + Dot(b, b) - 2 * Dot(a, b);
  EXPECT_NEAR(lhs, rhs, 1e-5 * (std::abs(rhs) + 1.0));
}

// ---------------------------------------------------------------------------
// SIMD kernel layer

TEST(SimdKernels, ScalarAlwaysSupportedAndNamed) {
  EXPECT_TRUE(simd::VariantSupported(simd::Variant::kScalar));
  const auto variants = simd::SupportedVariants();
  ASSERT_FALSE(variants.empty());
  EXPECT_EQ(variants.front(), simd::Variant::kScalar);
  for (const auto v : variants) {
    EXPECT_STRNE(simd::VariantName(v), "");
  }
  // The resolved dispatch must itself be a supported variant.
  EXPECT_TRUE(simd::VariantSupported(simd::ActiveVariant()));
}

TEST(SimdKernels, ForceVariantSwapsAndRestores) {
  const auto original = simd::ActiveVariant();
  {
    ScopedVariant forced(simd::Variant::kScalar);
    ASSERT_TRUE(forced.forced());
    EXPECT_EQ(simd::ActiveVariant(), simd::Variant::kScalar);
  }
  EXPECT_EQ(simd::ActiveVariant(), original);
  // Unsupported variants are rejected without changing the dispatch.
#if !defined(__aarch64__)
  EXPECT_FALSE(simd::ForceVariant(simd::Variant::kNeon));
  EXPECT_EQ(simd::ActiveVariant(), original);
#endif
}

// Every compiled-and-runnable variant must agree with the scalar reference
// within 1e-5 relative tolerance, across dims that exercise every tail path
// (non-multiples of 8/16 lanes) and deliberately misaligned spans.
TEST(SimdKernels, AllVariantsMatchScalarReference) {
  Rng rng(7);
  const auto& scalar = simd::KernelsFor(simd::Variant::kScalar);
  const auto variants = simd::SupportedVariants();
  const std::size_t dims[] = {1,  2,  3,   5,   7,   8,   9,    15,  16,
                              17, 31, 32,  33,  63,  64,  65,   100, 127,
                              128, 129, 255, 256, 257, 768, 1000, 1536, 1537};
  for (const std::size_t dim : dims) {
    // +1 slack so the offset-1 pass reads in-bounds but misaligned.
    std::vector<float> abuf(dim + 1), bbuf(dim + 1);
    for (auto& x : abuf) x = static_cast<float>(rng.Normal());
    for (auto& x : bbuf) x = static_cast<float>(rng.Normal());
    for (const std::size_t offset : {std::size_t{0}, std::size_t{1}}) {
      const float* a = abuf.data() + offset;
      const float* b = bbuf.data() + offset;
      const double ref_dot = scalar.dot(a, b, dim);
      const double ref_l2 = scalar.l2sq(a, b, dim);
      for (const auto v : variants) {
        const auto& ks = simd::KernelsFor(v);
        EXPECT_NEAR(ks.dot(a, b, dim), ref_dot,
                    1e-5 * (std::abs(ref_dot) + 1.0))
            << simd::VariantName(v) << " dot dim=" << dim
            << " offset=" << offset;
        EXPECT_NEAR(ks.l2sq(a, b, dim), ref_l2, 1e-5 * (ref_l2 + 1.0))
            << simd::VariantName(v) << " l2sq dim=" << dim
            << " offset=" << offset;
      }
    }
  }
}

// Batched kernels (contiguous strided, gather, and L2) must agree with the
// scalar single-pair reference row by row, including padded strides.
TEST(SimdKernels, BatchKernelsMatchSingleQueryReference) {
  Rng rng(11);
  const auto& scalar = simd::KernelsFor(simd::Variant::kScalar);
  const auto variants = simd::SupportedVariants();
  for (const std::size_t dim : {std::size_t{5}, std::size_t{64},
                                std::size_t{257}, std::size_t{768}}) {
    const std::size_t n = 37;           // not a multiple of the 4-row block
    const std::size_t stride = dim + 3;  // padded, misaligns every row
    std::vector<float> rows(n * stride), query(dim);
    for (auto& x : rows) x = static_cast<float>(rng.Normal());
    for (auto& x : query) x = static_cast<float>(rng.Normal());
    std::vector<const float*> ptrs(n);
    for (std::size_t i = 0; i < n; ++i) ptrs[i] = rows.data() + i * stride;
    // Scatter the gather order so dot_rows cannot rely on contiguity.
    std::reverse(ptrs.begin(), ptrs.end());

    std::vector<float> dots(n), gathers(n), l2s(n);
    for (const auto v : variants) {
      const auto& ks = simd::KernelsFor(v);
      ks.dot_batch(query.data(), rows.data(), n, stride, dim, dots.data());
      ks.dot_rows(query.data(), ptrs.data(), n, dim, gathers.data());
      ks.l2sq_batch(query.data(), rows.data(), n, stride, dim, l2s.data());
      for (std::size_t i = 0; i < n; ++i) {
        const double ref =
            scalar.dot(query.data(), rows.data() + i * stride, dim);
        const double ref_g = scalar.dot(query.data(), ptrs[i], dim);
        const double ref_l2 =
            scalar.l2sq(query.data(), rows.data() + i * stride, dim);
        EXPECT_NEAR(dots[i], ref, 1e-5 * (std::abs(ref) + 1.0))
            << simd::VariantName(v) << " dot_batch dim=" << dim << " i=" << i;
        EXPECT_NEAR(gathers[i], ref_g, 1e-5 * (std::abs(ref_g) + 1.0))
            << simd::VariantName(v) << " dot_rows dim=" << dim << " i=" << i;
        EXPECT_NEAR(l2s[i], ref_l2, 1e-5 * (ref_l2 + 1.0))
            << simd::VariantName(v) << " l2sq_batch dim=" << dim
            << " i=" << i;
      }
    }
  }
}

TEST(SimdKernels, NearlyUnitNormAcceptsUnitRejectsOthers) {
  Rng rng(13);
  Vector v(128);
  for (auto& x : v) x = static_cast<float>(rng.Normal());
  Normalize(v);
  EXPECT_TRUE(NearlyUnitNorm(v));
  ScaleInPlace(v, 2.0f);
  EXPECT_FALSE(NearlyUnitNorm(v));
  const Vector zero(128, 0.0f);
  EXPECT_FALSE(NearlyUnitNorm(zero));
}

// ---------------------------------------------------------------------------
// Quantized scan tier (DESIGN.md §13): fp16/int8 row encoding and kernels.

TEST(F16Conversion, KnownEncodingsAndExactDecode) {
  // Spot values with known IEEE binary16 encodings.
  EXPECT_EQ(simd::F32ToF16(0.0f), 0x0000);
  EXPECT_EQ(simd::F32ToF16(-0.0f), 0x8000);
  EXPECT_EQ(simd::F32ToF16(1.0f), 0x3C00);
  EXPECT_EQ(simd::F32ToF16(-2.0f), 0xC000);
  EXPECT_EQ(simd::F32ToF16(0.5f), 0x3800);
  EXPECT_EQ(simd::F32ToF16(65504.0f), 0x7BFF);   // f16 max normal
  EXPECT_EQ(simd::F32ToF16(65536.0f), 0x7C00);   // overflow -> +inf
  EXPECT_EQ(simd::F32ToF16(-65536.0f), 0xFC00);  // overflow -> -inf
  EXPECT_EQ(simd::F32ToF16(5.9604645e-8f), 0x0001);  // smallest subnormal
  // Decode of every encodable half is exact in fp32.
  EXPECT_EQ(simd::F16ToF32(0x3C00), 1.0f);
  EXPECT_EQ(simd::F16ToF32(0x0001), 5.9604645e-8f);
  EXPECT_EQ(simd::F16ToF32(0x8000), -0.0f);
  EXPECT_TRUE(std::signbit(simd::F16ToF32(0x8000)));
}

TEST(F16Conversion, RoundTripErrorBoundedForRandomFloats) {
  // binary16 has 11 significand bits: RNE roundtrip of any value in the
  // normal range errs by at most 2^-11 relative.
  Rng rng(19);
  for (int trial = 0; trial < 2000; ++trial) {
    const float x = static_cast<float>(rng.Normal());
    const float rt = simd::F16ToF32(simd::F32ToF16(x));
    EXPECT_NEAR(rt, x, std::abs(x) * 0x1p-11f + 1e-7f) << "x=" << x;
  }
}

TEST(F16Conversion, RoundsToNearestEven) {
  // 1 + 2^-11 is exactly half way between 1.0 and the next half
  // (1 + 2^-10); RNE must pick the even significand (1.0).
  EXPECT_EQ(simd::F32ToF16(1.0f + 0x1p-11f), 0x3C00);
  // Just above the tie rounds up.
  EXPECT_EQ(simd::F32ToF16(1.0f + 0x1p-11f + 0x1p-20f), 0x3C01);
  // 1 + 3*2^-11 is half way between 0x3C01 and 0x3C02: even wins again.
  EXPECT_EQ(simd::F32ToF16(1.0f + 3 * 0x1p-11f), 0x3C02);
}

TEST(QuantizeRowI8, BoundsScaleAndZeroRow) {
  Rng rng(23);
  Vector v(97);
  for (auto& x : v) x = static_cast<float>(rng.Normal());
  std::vector<std::int8_t> q(v.size());
  const float scale = simd::QuantizeRowI8(v, q.data());
  float amax = 0.0f;
  for (const float x : v) amax = std::max(amax, std::abs(x));
  EXPECT_FLOAT_EQ(scale, amax / 127.0f);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_GE(q[i], -127);
    EXPECT_LE(q[i], 127);
    // Symmetric quantization reconstruction error is at most scale/2.
    EXPECT_NEAR(scale * static_cast<float>(q[i]), v[i], scale * 0.5f + 1e-7f);
  }
  const Vector zero(16, 0.0f);
  std::vector<std::int8_t> qz(16, 42);
  EXPECT_EQ(simd::QuantizeRowI8(zero, qz.data()), 0.0f);
  for (const auto b : qz) EXPECT_EQ(b, 0);
}

// int8 kernels accumulate the integer dot exactly, so every variant must
// return BIT-IDENTICAL floats, not merely close ones.
TEST(SimdKernels, I8KernelsBitIdenticalAcrossVariants) {
  Rng rng(29);
  const auto& scalar = simd::KernelsFor(simd::Variant::kScalar);
  const auto variants = simd::SupportedVariants();
  for (const std::size_t dim : {std::size_t{3}, std::size_t{31},
                                std::size_t{64}, std::size_t{257},
                                std::size_t{768}}) {
    const std::size_t n = 23;
    const std::size_t stride = (dim + 63) / 64 * 64;  // slab i8 stride
    std::vector<std::int8_t> rows(n * stride);
    std::vector<float> scales(n);
    Vector fp_row(dim);
    for (std::size_t i = 0; i < n; ++i) {
      for (auto& x : fp_row) x = static_cast<float>(rng.Normal());
      scales[i] = simd::QuantizeRowI8(fp_row, rows.data() + i * stride);
    }
    Vector query(dim);
    for (auto& x : query) x = static_cast<float>(rng.Normal());
    std::vector<std::int8_t> q8(dim);
    const float q_scale = simd::QuantizeRowI8(query, q8.data());

    std::vector<const std::int8_t*> ptrs(n);
    for (std::size_t i = 0; i < n; ++i) ptrs[i] = rows.data() + i * stride;
    std::reverse(ptrs.begin(), ptrs.end());
    std::vector<float> ref_batch(n), ref_rows(n);
    scalar.dot_batch_i8(q8.data(), q_scale, rows.data(), scales.data(), n,
                        stride, dim, ref_batch.data());
    std::vector<float> rev_scales(scales.rbegin(), scales.rend());
    scalar.dot_rows_i8(q8.data(), q_scale, ptrs.data(), rev_scales.data(), n,
                       dim, ref_rows.data());
    for (const auto v : variants) {
      const auto& ks = simd::KernelsFor(v);
      std::vector<float> got_batch(n), got_rows(n);
      ks.dot_batch_i8(q8.data(), q_scale, rows.data(), scales.data(), n,
                      stride, dim, got_batch.data());
      ks.dot_rows_i8(q8.data(), q_scale, ptrs.data(), rev_scales.data(), n,
                     dim, got_rows.data());
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(got_batch[i], ref_batch[i])
            << simd::VariantName(v) << " dot_batch_i8 dim=" << dim
            << " i=" << i;
        EXPECT_EQ(got_rows[i], ref_rows[i])
            << simd::VariantName(v) << " dot_rows_i8 dim=" << dim
            << " i=" << i;
      }
    }
  }
}

TEST(SimdKernels, F16KernelsMatchScalarReference) {
  Rng rng(31);
  const auto& scalar = simd::KernelsFor(simd::Variant::kScalar);
  const auto variants = simd::SupportedVariants();
  for (const std::size_t dim : {std::size_t{7}, std::size_t{64},
                                std::size_t{129}, std::size_t{768}}) {
    const std::size_t n = 19;
    const std::size_t stride = (dim + 31) / 32 * 32;  // slab f16 stride
    std::vector<std::uint16_t> rows(n * stride);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < dim; ++j) {
        rows[i * stride + j] =
            simd::F32ToF16(static_cast<float>(rng.Normal()));
      }
    }
    Vector query(dim);
    for (auto& x : query) x = static_cast<float>(rng.Normal());
    std::vector<const std::uint16_t*> ptrs(n);
    for (std::size_t i = 0; i < n; ++i) ptrs[i] = rows.data() + i * stride;
    std::reverse(ptrs.begin(), ptrs.end());

    std::vector<float> ref_batch(n), ref_rows(n);
    scalar.dot_batch_f16(query.data(), rows.data(), n, stride, dim,
                         ref_batch.data());
    scalar.dot_rows_f16(query.data(), ptrs.data(), n, dim, ref_rows.data());
    for (const auto v : variants) {
      const auto& ks = simd::KernelsFor(v);
      std::vector<float> got_batch(n), got_rows(n);
      ks.dot_batch_f16(query.data(), rows.data(), n, stride, dim,
                       got_batch.data());
      ks.dot_rows_f16(query.data(), ptrs.data(), n, dim, got_rows.data());
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(got_batch[i], ref_batch[i],
                    1e-5 * (std::abs(ref_batch[i]) + 1.0))
            << simd::VariantName(v) << " dot_batch_f16 dim=" << dim
            << " i=" << i;
        EXPECT_NEAR(got_rows[i], ref_rows[i],
                    1e-5 * (std::abs(ref_rows[i]) + 1.0))
            << simd::VariantName(v) << " dot_rows_f16 dim=" << dim
            << " i=" << i;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// VectorSlab row formats.

TEST(VectorSlabFormats, EncodesDecodesAndReportsRowBytes) {
  Rng rng(37);
  const std::size_t dim = 70;
  Vector v(dim);
  for (auto& x : v) x = static_cast<float>(rng.Normal());
  Normalize(v);

  VectorSlab f32(dim, RowFormat::kF32);
  VectorSlab f16(dim, RowFormat::kF16);
  VectorSlab i8(dim, RowFormat::kI8);
  const auto r32 = f32.Add(v);
  const auto r16 = f16.Add(v);
  const auto r8 = i8.Add(v);

  Vector d(dim);
  f32.DecodeRow(r32, d);
  EXPECT_EQ(d, v);  // fp32 storage is lossless
  f16.DecodeRow(r16, d);
  for (std::size_t i = 0; i < dim; ++i) {
    EXPECT_NEAR(d[i], v[i], std::abs(v[i]) * 0x1p-11f + 1e-7f);
  }
  i8.DecodeRow(r8, d);
  const float scale = i8.RowScale(r8);
  for (std::size_t i = 0; i < dim; ++i) {
    EXPECT_NEAR(d[i], v[i], scale * 0.5f + 1e-7f);
  }

  // The scan-tier bandwidth win the bench reports: int8 rows must be at
  // least 3x smaller than fp32 (dim 70: 280 vs 70+4 bytes).
  EXPECT_EQ(f32.row_bytes(), dim * 4);
  EXPECT_EQ(f16.row_bytes(), dim * 2);
  EXPECT_EQ(i8.row_bytes(), dim + sizeof(float));
  EXPECT_GE(static_cast<double>(f32.row_bytes()) /
                static_cast<double>(i8.row_bytes()),
            3.0);

  // Rows stay 64-byte aligned in every format.
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(f16.RowF16(r16)) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(i8.RowI8(r8)) % 64, 0u);
}

TEST(VectorSlabFormats, FreeListReuseKeepsScalesPerSlot) {
  const std::size_t dim = 8;
  VectorSlab slab(dim, RowFormat::kI8);
  const Vector small(dim, 0.125f);
  const Vector big(dim, 100.0f);
  const auto r0 = slab.Add(small);
  const auto r1 = slab.Add(big);
  EXPECT_NE(slab.RowScale(r0), slab.RowScale(r1));
  slab.Free(r0);
  const auto r2 = slab.Add(big);  // reuses r0's slot
  EXPECT_EQ(r2, r0);
  EXPECT_FLOAT_EQ(slab.RowScale(r2), 100.0f / 127.0f);
  EXPECT_EQ(slab.size(), 2u);
}

// ---------------------------------------------------------------------------
// The two-phase rerank contract (DESIGN.md §13): a quantized scan feeding
// a pool into the fp32 scalar rerank must produce top-k ids AND exact
// similarities identical to a full-precision scan, for every compiled
// variant and every row format.  This is the property the serving tier's
// lock-free probe relies on.

TEST(QuantizedScanProperty, ScanPlusRerankMatchesF32TopKAcrossVariants) {
  Rng rng(41);
  const std::size_t dim = 96;
  const std::size_t n = 400;
  const std::size_t top_k = 6;
  const double tau = 0.55;
  const double slack = 0.02;

  // A query plus rows at graded distances from it, so similarities spread
  // across [0, 1] and several land near the tau boundary.
  Vector query(dim);
  for (auto& x : query) x = static_cast<float>(rng.Normal());
  Normalize(query);
  std::vector<Vector> rows(n);
  for (std::size_t i = 0; i < n; ++i) {
    const float sigma =
        0.05f + 2.0f * static_cast<float>(i) / static_cast<float>(n);
    Vector v(dim);
    for (std::size_t j = 0; j < dim; ++j) {
      v[j] = query[j] + sigma * static_cast<float>(rng.Normal());
    }
    Normalize(v);
    rows[i] = std::move(v);
  }

  // Reference: exact double-precision scan over every row.
  const auto& scalar = simd::KernelsFor(simd::Variant::kScalar);
  struct Ref {
    double sim;
    std::size_t id;
  };
  std::vector<Ref> ref;
  for (std::size_t i = 0; i < n; ++i) {
    const double sim = scalar.dot(query.data(), rows[i].data(), dim);
    if (sim >= tau) ref.push_back({sim, i});
  }
  std::sort(ref.begin(), ref.end(), [](const Ref& a, const Ref& b) {
    return a.sim != b.sim ? a.sim > b.sim : a.id < b.id;
  });
  if (ref.size() > top_k) ref.resize(top_k);
  ASSERT_GE(ref.size(), 3u) << "degenerate fixture: too few candidates";

  for (const auto variant : simd::SupportedVariants()) {
    ScopedVariant forced(variant);
    ASSERT_TRUE(forced.forced());
    for (const RowFormat format :
         {RowFormat::kF32, RowFormat::kF16, RowFormat::kI8}) {
      VectorSlab slab(dim, format);
      std::vector<std::uint32_t> slot(n);
      for (std::size_t i = 0; i < n; ++i) slot[i] = slab.Add(rows[i]);

      // Phase 1: scan in the slab's format via the gather kernels.
      std::vector<float> sims(n);
      switch (format) {
        case RowFormat::kF32: {
          std::vector<const float*> ptrs(n);
          for (std::size_t i = 0; i < n; ++i) ptrs[i] = slab.Row(slot[i]);
          simd::DotRows(query, ptrs.data(), n, sims.data());
          break;
        }
        case RowFormat::kF16: {
          std::vector<const std::uint16_t*> ptrs(n);
          for (std::size_t i = 0; i < n; ++i) ptrs[i] = slab.RowF16(slot[i]);
          simd::DotRowsF16(query, ptrs.data(), n, sims.data());
          break;
        }
        case RowFormat::kI8: {
          std::vector<const std::int8_t*> ptrs(n);
          std::vector<float> scales(n);
          for (std::size_t i = 0; i < n; ++i) {
            ptrs[i] = slab.RowI8(slot[i]);
            scales[i] = slab.RowScale(slot[i]);
          }
          std::vector<std::int8_t> q8(dim);
          const float q_scale = simd::QuantizeRowI8(query, q8.data());
          simd::DotRowsI8(q8.data(), q_scale, ptrs.data(), scales.data(), n,
                          dim, sims.data());
          break;
        }
      }

      // Pool selection at tau minus the quantization slack, then phase 2:
      // exact fp32 rerank (the serving tier's SnapshotScan/Validate
      // pipeline in miniature).
      const double floor = format == RowFormat::kF32 ? tau : tau - slack;
      std::vector<std::size_t> keep;
      for (std::size_t i = 0; i < n; ++i) {
        if (static_cast<double>(sims[i]) >= floor) keep.push_back(i);
      }
      const std::size_t pool =
          std::min(keep.size(), std::max<std::size_t>(4 * top_k, 32));
      std::partial_sort(keep.begin(),
                        keep.begin() + static_cast<std::ptrdiff_t>(pool),
                        keep.end(), [&](std::size_t a, std::size_t b) {
                          return sims[a] != sims[b] ? sims[a] > sims[b]
                                                    : a < b;
                        });
      keep.resize(pool);
      std::vector<Ref> got;
      for (const std::size_t i : keep) {
        const double sim = scalar.dot(query.data(), rows[i].data(), dim);
        if (sim >= tau) got.push_back({sim, i});
      }
      std::sort(got.begin(), got.end(), [](const Ref& a, const Ref& b) {
        return a.sim != b.sim ? a.sim > b.sim : a.id < b.id;
      });
      if (got.size() > top_k) got.resize(top_k);

      ASSERT_EQ(got.size(), ref.size())
          << simd::VariantName(variant) << "/" << RowFormatName(format);
      for (std::size_t i = 0; i < ref.size(); ++i) {
        EXPECT_EQ(got[i].id, ref[i].id)
            << simd::VariantName(variant) << "/" << RowFormatName(format)
            << " rank " << i;
        // Exact similarities, not merely close: the rerank reads fp32
        // originals with the scalar double kernel in both paths.
        EXPECT_EQ(got[i].sim, ref[i].sim)
            << simd::VariantName(variant) << "/" << RowFormatName(format)
            << " rank " << i;
      }
    }
  }
}

// The mq contract (simd_kernels.h): every score an mq kernel writes is
// BITWISE identical to the corresponding single-query kernel on the same
// variant — the batching pipeline's parity guarantee rests on this, so the
// comparisons below are EXPECT_EQ, never EXPECT_NEAR.

TEST(SimdKernels, MqKernelsBitIdenticalToSequentialPerVariant) {
  Rng rng(53);
  for (const std::size_t dim : {std::size_t{7}, std::size_t{96},
                                std::size_t{257}}) {
    const std::size_t n = 37;        // not a multiple of the 4-row block
    const std::size_t nq = 5;        // odd, exercises queries-inner tails
    const std::size_t stride = dim + 3;
    const std::size_t qstride = dim + 2;

    std::vector<float> rows(n * stride, -1.0f);
    std::vector<float> queries(nq * qstride, -1.0f);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < dim; ++j) {
        rows[i * stride + j] = static_cast<float>(rng.Normal());
      }
    }
    for (std::size_t q = 0; q < nq; ++q) {
      for (std::size_t j = 0; j < dim; ++j) {
        queries[q * qstride + j] = static_cast<float>(rng.Normal());
      }
    }

    // Scattered-row views in reversed order so the gather kernels cannot
    // shortcut to the contiguous path.
    std::vector<const float*> ptrs(n);
    for (std::size_t i = 0; i < n; ++i) {
      ptrs[i] = rows.data() + (n - 1 - i) * stride;
    }

    // int8 rows + per-row scales, and per-query quantizations.
    std::vector<std::int8_t> rows_i8(n * dim);
    std::vector<float> row_scales(n);
    for (std::size_t i = 0; i < n; ++i) {
      row_scales[i] = simd::QuantizeRowI8(
          std::span<const float>(rows.data() + i * stride, dim),
          rows_i8.data() + i * dim);
    }
    std::vector<const std::int8_t*> ptrs_i8(n);
    std::vector<float> scales_scattered(n);
    for (std::size_t i = 0; i < n; ++i) {
      ptrs_i8[i] = rows_i8.data() + (n - 1 - i) * dim;
      scales_scattered[i] = row_scales[n - 1 - i];
    }
    const std::size_t qstride_i8 = dim + 5;
    std::vector<std::int8_t> queries_i8(nq * qstride_i8, 0);
    std::vector<float> query_scales(nq);
    for (std::size_t q = 0; q < nq; ++q) {
      query_scales[q] = simd::QuantizeRowI8(
          std::span<const float>(queries.data() + q * qstride, dim),
          queries_i8.data() + q * qstride_i8);
    }

    // fp16 rows, scattered like the fp32 gather path.
    std::vector<std::uint16_t> rows_f16(n * dim);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < dim; ++j) {
        rows_f16[i * dim + j] = simd::F32ToF16(rows[i * stride + j]);
      }
    }
    std::vector<const std::uint16_t*> ptrs_f16(n);
    for (std::size_t i = 0; i < n; ++i) {
      ptrs_f16[i] = rows_f16.data() + (n - 1 - i) * dim;
    }

    std::vector<float> mq(nq * n), seq(n);
    for (const auto variant : simd::SupportedVariants()) {
      const auto& ks = simd::KernelsFor(variant);

      ks.dot_batch_mq(queries.data(), nq, qstride, rows.data(), n, stride,
                      dim, mq.data());
      for (std::size_t q = 0; q < nq; ++q) {
        ks.dot_batch(queries.data() + q * qstride, rows.data(), n, stride,
                     dim, seq.data());
        for (std::size_t i = 0; i < n; ++i) {
          EXPECT_EQ(mq[q * n + i], seq[i])
              << simd::VariantName(variant) << "/dot_batch_mq dim " << dim
              << " query " << q << " row " << i;
        }
      }

      ks.l2sq_batch_mq(queries.data(), nq, qstride, rows.data(), n, stride,
                       dim, mq.data());
      for (std::size_t q = 0; q < nq; ++q) {
        ks.l2sq_batch(queries.data() + q * qstride, rows.data(), n, stride,
                      dim, seq.data());
        for (std::size_t i = 0; i < n; ++i) {
          EXPECT_EQ(mq[q * n + i], seq[i])
              << simd::VariantName(variant) << "/l2sq_batch_mq dim " << dim
              << " query " << q << " row " << i;
        }
      }

      ks.dot_rows_mq(queries.data(), nq, qstride, ptrs.data(), n, dim,
                     mq.data());
      for (std::size_t q = 0; q < nq; ++q) {
        ks.dot_rows(queries.data() + q * qstride, ptrs.data(), n, dim,
                    seq.data());
        for (std::size_t i = 0; i < n; ++i) {
          EXPECT_EQ(mq[q * n + i], seq[i])
              << simd::VariantName(variant) << "/dot_rows_mq dim " << dim
              << " query " << q << " row " << i;
        }
      }

      ks.dot_rows_i8_mq(queries_i8.data(), query_scales.data(), nq,
                        qstride_i8, ptrs_i8.data(), scales_scattered.data(),
                        n, dim, mq.data());
      for (std::size_t q = 0; q < nq; ++q) {
        ks.dot_rows_i8(queries_i8.data() + q * qstride_i8, query_scales[q],
                       ptrs_i8.data(), scales_scattered.data(), n, dim,
                       seq.data());
        for (std::size_t i = 0; i < n; ++i) {
          EXPECT_EQ(mq[q * n + i], seq[i])
              << simd::VariantName(variant) << "/dot_rows_i8_mq dim " << dim
              << " query " << q << " row " << i;
        }
      }

      ks.dot_rows_f16_mq(queries.data(), nq, qstride, ptrs_f16.data(), n,
                         dim, mq.data());
      for (std::size_t q = 0; q < nq; ++q) {
        ks.dot_rows_f16(queries.data() + q * qstride, ptrs_f16.data(), n,
                        dim, seq.data());
        for (std::size_t i = 0; i < n; ++i) {
          EXPECT_EQ(mq[q * n + i], seq[i])
              << simd::VariantName(variant) << "/dot_rows_f16_mq dim "
              << dim << " query " << q << " row " << i;
        }
      }
    }
  }
}

// int8 mq scores must additionally be bit-identical ACROSS variants (the
// integer dot is exact), mirroring I8KernelsBitIdenticalAcrossVariants.
TEST(SimdKernels, I8MqKernelsBitIdenticalAcrossVariants) {
  Rng rng(59);
  const std::size_t dim = 192;
  const std::size_t n = 23;
  const std::size_t nq = 4;
  std::vector<float> rows(n * dim), queries(nq * dim);
  for (auto& x : rows) x = static_cast<float>(rng.Normal());
  for (auto& x : queries) x = static_cast<float>(rng.Normal());

  std::vector<std::int8_t> rows_i8(n * dim), queries_i8(nq * dim);
  std::vector<float> row_scales(n), query_scales(nq);
  for (std::size_t i = 0; i < n; ++i) {
    row_scales[i] = simd::QuantizeRowI8(
        std::span<const float>(rows.data() + i * dim, dim),
        rows_i8.data() + i * dim);
  }
  for (std::size_t q = 0; q < nq; ++q) {
    query_scales[q] = simd::QuantizeRowI8(
        std::span<const float>(queries.data() + q * dim, dim),
        queries_i8.data() + q * dim);
  }
  std::vector<const std::int8_t*> ptrs(n);
  for (std::size_t i = 0; i < n; ++i) ptrs[i] = rows_i8.data() + i * dim;

  const auto& scalar = simd::KernelsFor(simd::Variant::kScalar);
  std::vector<float> ref(nq * n), got(nq * n);
  scalar.dot_rows_i8_mq(queries_i8.data(), query_scales.data(), nq, dim,
                        ptrs.data(), row_scales.data(), n, dim, ref.data());
  for (const auto variant : simd::SupportedVariants()) {
    const auto& ks = simd::KernelsFor(variant);
    ks.dot_rows_i8_mq(queries_i8.data(), query_scales.data(), nq, dim,
                      ptrs.data(), row_scales.data(), n, dim, got.data());
    for (std::size_t k = 0; k < ref.size(); ++k) {
      EXPECT_EQ(got[k], ref[k])
          << simd::VariantName(variant) << " element " << k;
    }
  }
}

}  // namespace
}  // namespace cortex
