#include "embedding/vector_ops.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace cortex {
namespace {

TEST(VectorOps, DotProduct) {
  const Vector a = {1, 2, 3};
  const Vector b = {4, -5, 6};
  EXPECT_DOUBLE_EQ(Dot(a, b), 12.0);
}

TEST(VectorOps, L2NormAndDistance) {
  const Vector a = {3, 4};
  EXPECT_DOUBLE_EQ(L2Norm(a), 5.0);
  const Vector b = {0, 0};
  EXPECT_DOUBLE_EQ(L2DistanceSquared(a, b), 25.0);
}

TEST(VectorOps, CosineOfParallelVectorsIsOne) {
  const Vector a = {1, 2, 3};
  const Vector b = {2, 4, 6};
  EXPECT_NEAR(CosineSimilarity(a, b), 1.0, 1e-12);
}

TEST(VectorOps, CosineOfOrthogonalVectorsIsZero) {
  const Vector a = {1, 0};
  const Vector b = {0, 1};
  EXPECT_DOUBLE_EQ(CosineSimilarity(a, b), 0.0);
}

TEST(VectorOps, CosineOfOppositeVectorsIsMinusOne) {
  const Vector a = {1, 1};
  const Vector b = {-1, -1};
  EXPECT_NEAR(CosineSimilarity(a, b), -1.0, 1e-12);
}

TEST(VectorOps, CosineWithZeroVectorIsZero) {
  const Vector a = {0, 0};
  const Vector b = {1, 2};
  EXPECT_DOUBLE_EQ(CosineSimilarity(a, b), 0.0);
}

TEST(VectorOps, NormalizeProducesUnitLength) {
  Vector v = {3, 4, 12};
  Normalize(v);
  EXPECT_NEAR(L2Norm(v), 1.0, 1e-6);
}

TEST(VectorOps, NormalizeZeroVectorIsNoop) {
  Vector v = {0, 0, 0};
  Normalize(v);
  EXPECT_EQ(v, (Vector{0, 0, 0}));
}

TEST(VectorOps, AddAndScaleInPlace) {
  Vector a = {1, 2};
  const Vector b = {3, 4};
  AddInPlace(a, b);
  EXPECT_EQ(a, (Vector{4, 6}));
  ScaleInPlace(a, 0.5f);
  EXPECT_EQ(a, (Vector{2, 3}));
}

TEST(VectorOps, CosineBoundedForRandomVectors) {
  Rng rng(1);
  for (int trial = 0; trial < 100; ++trial) {
    Vector a(32), b(32);
    for (auto& x : a) x = static_cast<float>(rng.Normal());
    for (auto& x : b) x = static_cast<float>(rng.Normal());
    const double c = CosineSimilarity(a, b);
    EXPECT_GE(c, -1.0 - 1e-9);
    EXPECT_LE(c, 1.0 + 1e-9);
  }
}

TEST(VectorOps, TriangleConsistency) {
  // ||a-b||^2 = ||a||^2 + ||b||^2 - 2<a,b>
  Rng rng(2);
  Vector a(16), b(16);
  for (auto& x : a) x = static_cast<float>(rng.Normal());
  for (auto& x : b) x = static_cast<float>(rng.Normal());
  const double lhs = L2DistanceSquared(a, b);
  const double rhs = Dot(a, a) + Dot(b, b) - 2 * Dot(a, b);
  EXPECT_NEAR(lhs, rhs, 1e-6);
}

}  // namespace
}  // namespace cortex
