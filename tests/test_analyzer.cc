// cortex_analyzer end-to-end tests over the seeded fixture tree in
// tests/analyzer_fixtures/ (path injected as CORTEX_ANALYZER_FIXTURE_DIR).
// Each check in the catalogue must fire with exactly the expected
// diagnostic — no more, no fewer — and the suppression, stale-allow, and
// baseline paths are exercised against the same model.
#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "cortex_analyzer/analyzer.h"
#include "cortex_analyzer/lexer.h"
#include "cortex_analyzer/model.h"
#include "gtest/gtest.h"

namespace cortex::analyzer {
namespace {

Model& FixtureModel() {
  static Model* model = [] {
    auto* m = new Model();
    std::string error;
    if (!LoadTree(CORTEX_ANALYZER_FIXTURE_DIR, m, &error)) {
      ADD_FAILURE() << "LoadTree failed: " << error;
    }
    return m;
  }();
  return *model;
}

const AnalysisResult& Result() {
  static const AnalysisResult* result =
      new AnalysisResult(Analyze(FixtureModel(), {}));
  return *result;
}

std::vector<Finding> ActiveOf(const std::string& check) {
  std::vector<Finding> out;
  for (const auto& f : Result().active) {
    if (f.check == check) out.push_back(f);
  }
  return out;
}

TEST(AnalyzerFixtures, EveryCheckFiresExactlyAsSeeded) {
  EXPECT_EQ(Result().active.size(), 15u);
  EXPECT_EQ(Result().suppressed.size(), 1u);
  EXPECT_EQ(Result().baselined.size(), 0u);
}

TEST(AnalyzerFixtures, LockRankDirectInversion) {
  const auto findings = ActiveOf("lock-rank");
  ASSERT_EQ(findings.size(), 3u);
  const auto direct =
      std::find_if(findings.begin(), findings.end(), [](const Finding& f) {
        return f.message.find("Widget::Direct") != std::string::npos;
      });
  ASSERT_NE(direct, findings.end());
  EXPECT_EQ(direct->file, "src/serve/widget.cc");
  EXPECT_EQ(direct->message,
            "Widget::Direct acquires 'widget.low_mu' (rank 10) while holding "
            "'widget.high_mu' (rank 50); ranks must be strictly increasing");
}

TEST(AnalyzerFixtures, LockRankTransitiveChain) {
  const auto findings = ActiveOf("lock-rank");
  ASSERT_EQ(findings.size(), 3u);
  const auto transitive =
      std::find_if(findings.begin(), findings.end(), [](const Finding& f) {
        return f.message.find("Widget::High") != std::string::npos;
      });
  ASSERT_NE(transitive, findings.end());
  EXPECT_EQ(transitive->file, "src/serve/widget.cc");
  EXPECT_EQ(transitive->message,
            "Widget::High calls Widget::Low while holding 'widget.high_mu' "
            "(rank 50), which may acquire 'widget.low_mu' (rank 10); "
            "path: Widget::High -> Widget::Low");
}

TEST(AnalyzerFixtures, IoUnderLockDirectAndTransitive) {
  const auto findings = ActiveOf("io-under-lock");
  ASSERT_EQ(findings.size(), 3u);
  EXPECT_EQ(findings[0].file, "src/serve/channel.cc");
  EXPECT_EQ(findings[1].file, "src/serve/channel.cc");
  EXPECT_EQ(findings[0].message,
            "Channel::Publish performs blocking ::send while holding "
            "'channel.mu' (rank 50)");
  EXPECT_EQ(findings[1].message,
            "Channel::Flush calls SendAll while holding 'channel.mu' "
            "(rank 50), which may block on ::send");
}

TEST(AnalyzerFixtures, EpochReadSectionIsASyntheticRank2000Guard) {
  const auto lock_rank = ActiveOf("lock-rank");
  const auto under_epoch = std::find_if(
      lock_rank.begin(), lock_rank.end(), [](const Finding& f) {
        return f.message.find("Reader::LockedProbe") != std::string::npos;
      });
  ASSERT_NE(under_epoch, lock_rank.end());
  EXPECT_EQ(under_epoch->file, "src/serve/reader.cc");
  EXPECT_EQ(under_epoch->message,
            "Reader::LockedProbe acquires 'reader.mu' (rank 50) while "
            "holding 'epoch.read' (rank 2000); ranks must be strictly "
            "increasing");

  const auto io = ActiveOf("io-under-lock");
  ASSERT_EQ(io.size(), 3u);
  EXPECT_EQ(io[2].file, "src/serve/reader.cc");
  EXPECT_EQ(io[2].message,
            "Reader::BlockingProbe performs blocking ::recv while holding "
            "'epoch.read' (rank 2000)");

  // CleanProbe closes the epoch scope before locking: no finding names it.
  for (const auto& f : Result().active)
    EXPECT_EQ(f.message.find("CleanProbe"), std::string::npos) << f.message;
}

TEST(AnalyzerFixtures, GuardedByFlagsOnlyTheUnannotatedField) {
  const auto findings = ActiveOf("guarded-by");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].file, "src/serve/box.h");
  EXPECT_EQ(findings[0].message,
            "field 'value_' of mutex-owning class 'Box' has no GUARDED_BY "
            "annotation (use GUARDED_BY, make it const/atomic, or opt out "
            "with cortex-analyzer: allow(guarded-by))");
}

TEST(AnalyzerFixtures, AllowAnnotationSuppresses) {
  ASSERT_EQ(Result().suppressed.size(), 1u);
  const Finding& f = Result().suppressed[0];
  EXPECT_EQ(f.check, "guarded-by");
  EXPECT_EQ(f.file, "src/serve/suppressed.h");
  EXPECT_NE(f.message.find("'scratch_'"), std::string::npos) << f.message;
}

TEST(AnalyzerFixtures, StaleAllowAnnotationsAreFindings) {
  const auto findings = ActiveOf("stale-allow");
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].file, "src/serve/stale.h");
  EXPECT_EQ(findings[0].message,
            "stale suppression: allow(layering) matches no finding on its "
            "line; remove the comment");
  EXPECT_EQ(findings[1].file, "src/serve/stale.h");
  EXPECT_EQ(findings[1].message,
            "suppression names unknown check 'bogus-check'");
}

TEST(AnalyzerFixtures, LayeringFlagsCoreToTelemetryEdge) {
  const auto findings = ActiveOf("layering");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].file, "src/core/planner.h");
  // The legal util include in the same file must not be flagged — the
  // single finding names the telemetry edge.
  EXPECT_NE(findings[0].message.find(
                "layer 'core' must not include 'telemetry/metrics.h' "
                "(layer 'telemetry')"),
            std::string::npos)
      << findings[0].message;
}

TEST(AnalyzerFixtures, MetricContractDuplicateAndUnregistered) {
  const auto findings = ActiveOf("metric-contract");
  ASSERT_EQ(findings.size(), 3u);
  EXPECT_EQ(findings[0].file, "src/serve/metrics_use.cc");
  EXPECT_EQ(findings[0].message,
            "metric 'cortex_widget_hits' registered 2 times (first at "
            "src/serve/metrics_use.cc); each cortex_* metric must be "
            "registered exactly once");
  EXPECT_EQ(findings[1].message,
            "metric literal 'cortex_widget_misses' matches no registration "
            "(GetCounter/GetGauge/GetHistogram with a literal name) and no "
            "dynamic prefix");
  // The static registration under the per-tenant prefix is flagged; the
  // adjacent dynamic-prefix registration ("cortex_tenant_" + id) is not.
  EXPECT_EQ(findings[2].message,
            "metric 'cortex_tenant_bad_hits' statically registers under the "
            "per-tenant prefix 'cortex_tenant_'; per-tenant instruments must "
            "use dynamic-prefix registration (\"cortex_tenant_\" + id) so "
            "the registry's cardinality cap applies");
}

TEST(AnalyzerFixtures, VerbContractFlagsMissingEnumerator) {
  const auto findings = ActiveOf("verb-contract");
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].file, "src/serve/handler.cc");
  EXPECT_EQ(findings[0].message,
            "dispatch Handle does not handle RequestType::kLookup; every "
            "wire verb must be dispatched");
  // A verb appended to the fixture enum is picked up without any analyzer
  // change — the contract is derived from the RequestType enum itself.
  EXPECT_EQ(findings[1].file, "src/serve/handler.cc");
  EXPECT_EQ(findings[1].message,
            "dispatch Handle does not handle RequestType::kTenantLookup; "
            "every wire verb must be dispatched");
}

TEST(AnalyzerFixtures, BaselineSilencesCheckerFindingsButNotStaleAllows) {
  // Baseline every checker finding (stale-allow findings are synthesized
  // after suppression and are never baselineable — they must stay red
  // until the comment is deleted).
  std::vector<Finding> checker_findings;
  for (const auto& f : Result().active) {
    if (f.check != "stale-allow") checker_findings.push_back(f);
  }
  const std::set<std::string> keys =
      ParseBaseline(FormatBaseline(checker_findings));
  EXPECT_EQ(keys.size(), checker_findings.size());

  const AnalysisResult rerun = Analyze(FixtureModel(), keys);
  EXPECT_EQ(rerun.baselined.size(), checker_findings.size());
  ASSERT_EQ(rerun.active.size(), 2u);
  EXPECT_EQ(rerun.active[0].check, "stale-allow");
  EXPECT_EQ(rerun.active[1].check, "stale-allow");
}

TEST(AnalyzerFixtures, StaleBaselineEntryIsAFinding) {
  const Finding ghost{"guarded-by", "src/serve/nonexistent.h", 7,
                      "field 'gone_' of mutex-owning class 'Ghost' has no "
                      "GUARDED_BY annotation"};
  std::set<std::string> keys = {FindingKey(ghost)};
  const AnalysisResult rerun = Analyze(FixtureModel(), keys);
  const auto stale =
      std::find_if(rerun.active.begin(), rerun.active.end(),
                   [](const Finding& f) { return f.check == "stale-baseline"; });
  ASSERT_NE(stale, rerun.active.end());
  EXPECT_EQ(stale->file, "src/serve/nonexistent.h");
  EXPECT_NE(stale->message.find("matches no current finding"),
            std::string::npos);
}

TEST(AnalyzerFixtures, ModelSeesRanksAndEnumOrder) {
  Model& m = FixtureModel();
  const ClassInfo* widget = m.FindClass("Widget");
  ASSERT_NE(widget, nullptr);
  const MutexMember* high = widget->FindMutex("high_mu_");
  const MutexMember* low = widget->FindMutex("low_mu_");
  ASSERT_NE(high, nullptr);
  ASSERT_NE(low, nullptr);
  EXPECT_EQ(high->rank, 50);
  EXPECT_EQ(low->rank, 10);
  EXPECT_TRUE(high->ranked);

  const auto order = m.enums.order.find("RequestType");
  ASSERT_NE(order, m.enums.order.end());
  EXPECT_EQ(order->second,
            (std::vector<std::string>{"kLookup", "kPing", "kTenantLookup"}));
}

TEST(AnalyzerLexer, AllowAnnotationsCoverOwnLineAndNextLine) {
  const LexedFile lexed = Lex(
      "int a = 0;  // cortex-analyzer: allow(guarded-by)\n"
      "// cortex-analyzer: allow(lock-rank, layering)\n"
      "int b = 0;\n");
  // Trailing comment covers its own line.
  auto line1 = lexed.allows.find(1);
  ASSERT_NE(line1, lexed.allows.end());
  EXPECT_TRUE(line1->second.count("guarded-by"));
  // A comment alone on a line also covers the next line, with both checks.
  auto line3 = lexed.allows.find(3);
  ASSERT_NE(line3, lexed.allows.end());
  EXPECT_TRUE(line3->second.count("lock-rank"));
  EXPECT_TRUE(line3->second.count("layering"));
  EXPECT_EQ(lexed.allow_sites.size(), 3u);
}

TEST(AnalyzerBaseline, ParserSkipsCommentsAndBlankLines) {
  const std::set<std::string> keys = ParseBaseline(
      "# comment\n"
      "\n"
      "guarded-by\tsrc/a.h\tfield 'x_' unannotated\n");
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(*keys.begin(), "guarded-by\tsrc/a.h\tfield 'x_' unannotated");
}

}  // namespace
}  // namespace cortex::analyzer
