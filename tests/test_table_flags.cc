#include <gtest/gtest.h>

#include <stdexcept>

#include "util/flags.h"
#include "util/table.h"

namespace cortex {
namespace {

// --- TextTable ---

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.AddRow({"a", "1"});
  t.AddRow({"longer-name", "2"});
  const std::string out = t.Render();
  EXPECT_NE(out.find("| name        | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer-name | 2     |"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("|------"), std::string::npos);
}

TEST(TextTable, ShortRowsArePadded) {
  TextTable t({"a", "b", "c"});
  t.AddRow({"x"});
  EXPECT_EQ(t.num_cols(), 3u);
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_NO_THROW(t.Render());
}

TEST(TextTable, CsvQuotesSpecialCharacters) {
  TextTable t({"k", "v"});
  t.AddRow({"with,comma", "with\"quote"});
  const std::string csv = t.RenderCsv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
}

TEST(TextTable, NumFormatsPrecision) {
  EXPECT_EQ(TextTable::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::Num(2.0, 0), "2");
  EXPECT_EQ(TextTable::Percent(0.856, 1), "85.6%");
}

// --- Flags ---

TEST(Flags, ParsesEqualsForm) {
  const char* argv[] = {"prog", "--tasks=100", "--ratio=0.5"};
  Flags f(3, argv);
  EXPECT_EQ(f.GetInt("tasks", 0), 100);
  EXPECT_DOUBLE_EQ(f.GetDouble("ratio", 0.0), 0.5);
}

TEST(Flags, ParsesSpaceForm) {
  const char* argv[] = {"prog", "--name", "cortex"};
  Flags f(3, argv);
  EXPECT_EQ(f.GetString("name"), "cortex");
}

TEST(Flags, BareFlagIsTrue) {
  const char* argv[] = {"prog", "--verbose"};
  Flags f(2, argv);
  EXPECT_TRUE(f.GetBool("verbose", false));
  EXPECT_TRUE(f.Has("verbose"));
  EXPECT_FALSE(f.Has("quiet"));
}

TEST(Flags, FalseSpellings) {
  const char* argv[] = {"prog", "--a=false", "--b=0", "--c=no", "--d=yes"};
  Flags f(5, argv);
  EXPECT_FALSE(f.GetBool("a", true));
  EXPECT_FALSE(f.GetBool("b", true));
  EXPECT_FALSE(f.GetBool("c", true));
  EXPECT_TRUE(f.GetBool("d", false));
}

TEST(Flags, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  Flags f(1, argv);
  EXPECT_EQ(f.GetInt("n", 42), 42);
  EXPECT_EQ(f.GetString("s", "x"), "x");
  EXPECT_DOUBLE_EQ(f.GetDouble("d", 1.5), 1.5);
}

TEST(Flags, PositionalArgumentsCollected) {
  const char* argv[] = {"prog", "input.txt", "--k=1", "more"};
  Flags f(4, argv);
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "input.txt");
  EXPECT_EQ(f.positional()[1], "more");
}

TEST(Flags, MalformedInputThrows) {
  const char* bare[] = {"prog", "--"};
  EXPECT_THROW(Flags(2, bare), std::invalid_argument);
  const char* empty_name[] = {"prog", "--=v"};
  EXPECT_THROW(Flags(2, empty_name), std::invalid_argument);
}

TEST(Flags, NonNumericValueThrowsOnTypedGet) {
  const char* argv[] = {"prog", "--n=abc"};
  Flags f(2, argv);
  EXPECT_THROW(f.GetInt("n", 0), std::invalid_argument);
  EXPECT_THROW(f.GetDouble("n", 0.0), std::invalid_argument);
  EXPECT_EQ(f.GetString("n"), "abc");  // string access still fine
}

TEST(Flags, LastOccurrenceWins) {
  const char* argv[] = {"prog", "--n=1", "--n=2"};
  Flags f(3, argv);
  EXPECT_EQ(f.GetInt("n", 0), 2);
}

}  // namespace
}  // namespace cortex
