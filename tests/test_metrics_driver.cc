#include <gtest/gtest.h>

#include <algorithm>

#include "sim/driver.h"
#include "sim/metrics.h"

namespace cortex {
namespace {

// --- RunMetrics ---

TaskRecord MakeRecord(double arrival, double completion, bool correct,
                      std::uint64_t tool_calls = 1,
                      std::uint64_t cache_hits = 0) {
  TaskRecord r;
  r.arrival_time = arrival;
  r.completion_time = completion;
  r.answer_correct = correct;
  r.tool_calls = tool_calls;
  r.cache_hits = cache_hits;
  r.agent_seconds = 0.5;
  r.tool_seconds = 0.4;
  r.api_calls = tool_calls - cache_hits;
  return r;
}

TEST(RunMetrics, ThroughputOverSpan) {
  RunMetrics m;
  m.Record(MakeRecord(0.0, 1.0, true));
  m.Record(MakeRecord(1.0, 4.0, true));
  // 2 tasks over [0, 4].
  EXPECT_DOUBLE_EQ(m.Throughput(), 0.5);
  EXPECT_EQ(m.completed_tasks(), 2u);
}

TEST(RunMetrics, HitRateAggregatesToolCalls) {
  RunMetrics m;
  m.Record(MakeRecord(0, 1, true, /*tool_calls=*/4, /*cache_hits=*/3));
  m.Record(MakeRecord(1, 2, true, /*tool_calls=*/2, /*cache_hits=*/0));
  EXPECT_DOUBLE_EQ(m.CacheHitRate(), 0.5);
  EXPECT_EQ(m.total_tool_calls(), 6u);
}

TEST(RunMetrics, AccuracyIsFractionCorrect) {
  RunMetrics m;
  m.Record(MakeRecord(0, 1, true));
  m.Record(MakeRecord(0, 1, false));
  m.Record(MakeRecord(0, 1, true));
  EXPECT_NEAR(m.Accuracy(), 2.0 / 3.0, 1e-12);
}

TEST(RunMetrics, LatencyPercentiles) {
  RunMetrics m;
  for (int i = 1; i <= 100; ++i) {
    m.Record(MakeRecord(0.0, static_cast<double>(i), true));
  }
  EXPECT_NEAR(m.P99Latency(), 99.0, 3.0);
  EXPECT_NEAR(m.MeanLatency(), 50.5, 0.01);
}

TEST(RunMetrics, RetryRatio) {
  RunMetrics m;
  TaskRecord r = MakeRecord(0, 1, true);
  r.api_calls = 4;
  r.retries = 1;
  m.Record(r);
  EXPECT_DOUBLE_EQ(m.RetryRatio(), 0.25);
}

TEST(RunMetrics, EmptyMetricsAreZero) {
  RunMetrics m;
  EXPECT_DOUBLE_EQ(m.Throughput(), 0.0);
  EXPECT_DOUBLE_EQ(m.CacheHitRate(), 0.0);
  EXPECT_DOUBLE_EQ(m.Accuracy(), 0.0);
}

// --- ServingDriver with a scripted resolver ---

class ScriptedResolver final : public ToolResolver {
 public:
  explicit ScriptedResolver(double delay) : delay_(delay) {}

  void Resolve(Simulation& sim, const ToolStep& step, std::uint64_t task_id,
               ResolveCallback done) override {
    ++calls_;
    last_task_id_ = task_id;
    ResolveOutcome out;
    out.info = step.expected_info;
    out.from_cache = false;
    out.tool_seconds = delay_;
    out.api_calls = 1;
    sim.ScheduleAfter(delay_, [done = std::move(done), out] { done(out); });
  }
  std::string name() const override { return "scripted"; }

  int calls() const { return calls_; }
  std::uint64_t last_task_id() const { return last_task_id_; }

 private:
  double delay_;
  int calls_ = 0;
  std::uint64_t last_task_id_ = 0;
};

std::vector<AgentTask> MakeTasks(std::size_t n, std::size_t steps) {
  std::vector<AgentTask> tasks;
  for (std::size_t i = 0; i < n; ++i) {
    AgentTask t;
    t.id = 1000 + i;
    t.description = "task " + std::to_string(i);
    t.base_correctness = 1.0;
    for (std::size_t s = 0; s < steps; ++s) {
      t.steps.push_back({"think", "query " + std::to_string(s),
                         "info " + std::to_string(s)});
    }
    t.final_answer = "answer";
    tasks.push_back(std::move(t));
  }
  return tasks;
}

TEST(ServingDriver, CompletesAllTasksOpenLoop) {
  AgentModel agent;
  ColocationSimulator gpu(DeploymentConfig::Colocated80_20());
  ScriptedResolver resolver(0.1);
  DriverOptions opts;
  opts.request_rate = 5.0;
  ServingDriver driver(agent, gpu, resolver, opts);
  const auto metrics = driver.Run(MakeTasks(20, 2));
  EXPECT_EQ(metrics.completed_tasks(), 20u);
  EXPECT_EQ(resolver.calls(), 40);
  EXPECT_EQ(metrics.total_tool_calls(), 40u);
  EXPECT_DOUBLE_EQ(metrics.Accuracy(), 1.0);  // base_correctness = 1
}

TEST(ServingDriver, TaskIdReachesResolver) {
  AgentModel agent;
  ColocationSimulator gpu(DeploymentConfig::Colocated80_20());
  ScriptedResolver resolver(0.01);
  ServingDriver driver(agent, gpu, resolver, {});
  driver.Run(MakeTasks(1, 1));
  EXPECT_EQ(resolver.last_task_id(), 1000u);
}

TEST(ServingDriver, OpenLoopPacedArrivalsAreSpaced) {
  AgentModel agent;
  ColocationSimulator gpu(DeploymentConfig::Colocated80_20());
  ScriptedResolver resolver(0.0);
  DriverOptions opts;
  opts.request_rate = 2.0;
  opts.poisson_arrivals = false;  // fixed 0.5 s spacing
  ServingDriver driver(agent, gpu, resolver, opts);
  const auto metrics = driver.Run(MakeTasks(10, 1));
  std::vector<double> arrivals;
  for (const auto& r : metrics.records()) arrivals.push_back(r.arrival_time);
  std::sort(arrivals.begin(), arrivals.end());
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    EXPECT_NEAR(arrivals[i] - arrivals[i - 1], 0.5, 1e-9);
  }
}

TEST(ServingDriver, ClosedLoopBoundsConcurrency) {
  AgentModel agent;
  ColocationSimulator gpu(DeploymentConfig::Colocated80_20());
  ScriptedResolver resolver(0.5);
  DriverOptions opts;
  opts.arrival = DriverOptions::Arrival::kClosedLoop;
  opts.concurrency = 2;
  ServingDriver driver(agent, gpu, resolver, opts);
  const auto metrics = driver.Run(MakeTasks(12, 1));
  EXPECT_EQ(metrics.completed_tasks(), 12u);
  // With 2 in flight, at most 2 tasks share any arrival time; later tasks
  // arrive only as earlier ones finish.
  std::size_t at_zero = 0;
  for (const auto& r : metrics.records()) {
    if (r.arrival_time == 0.0) ++at_zero;
  }
  EXPECT_EQ(at_zero, 2u);
}

TEST(ServingDriver, ExplicitArrivalsAreHonoured) {
  AgentModel agent;
  ColocationSimulator gpu(DeploymentConfig::Colocated80_20());
  ScriptedResolver resolver(0.01);
  DriverOptions opts;
  opts.explicit_arrivals = {0.0, 2.5, 7.0};
  ServingDriver driver(agent, gpu, resolver, opts);
  const auto metrics = driver.Run(MakeTasks(3, 1));
  std::vector<double> arrivals;
  for (const auto& r : metrics.records()) arrivals.push_back(r.arrival_time);
  std::sort(arrivals.begin(), arrivals.end());
  EXPECT_DOUBLE_EQ(arrivals[0], 0.0);
  EXPECT_DOUBLE_EQ(arrivals[1], 2.5);
  EXPECT_DOUBLE_EQ(arrivals[2], 7.0);
}

TEST(ServingDriver, RecordsContainComponentBreakdown) {
  AgentModel agent;
  ColocationSimulator gpu(DeploymentConfig::Colocated80_20());
  ScriptedResolver resolver(0.25);
  ServingDriver driver(agent, gpu, resolver, {});
  const auto metrics = driver.Run(MakeTasks(1, 2));
  ASSERT_EQ(metrics.records().size(), 1u);
  const auto& r = metrics.records()[0];
  EXPECT_GT(r.agent_seconds, 0.0);
  EXPECT_NEAR(r.tool_seconds, 0.5, 1e-9);  // two resolves at 0.25 each
  EXPECT_EQ(r.api_calls, 2u);
  EXPECT_GT(r.completion_time, r.arrival_time);
  // Latency covers agent + tool time.
  EXPECT_GE(r.Latency(), r.agent_seconds + r.tool_seconds - 1e-9);
}

}  // namespace
}  // namespace cortex
