// Death-tests for the CHECK/DCHECK framework (src/util/check.h).
//
// This translation unit exercises whatever CORTEX_DCHECK_IS_ON resolved
// to for the build type; check_release_helper.cc force-compiles a second
// TU with CORTEX_DCHECK_IS_ON=0 so the release-mode semantics (DCHECK
// vanishes, condition NOT evaluated) are covered in every build.
#include "util/check.h"

#include <gtest/gtest.h>

#include <string>

// Implemented in check_release_helper.cc with CORTEX_DCHECK_IS_ON=0.
namespace cortex_test {
bool ReleaseDcheckSurvivesFalse();
bool ReleaseDcheckEvaluatesCondition();
bool ReleaseDcheckOpSurvivesMismatch();
}  // namespace cortex_test

namespace {

class DeathStyle : public ::testing::Environment {
 public:
  // Re-exec the binary for death tests instead of bare fork(): the
  // fork-only default misbehaves under TSan's background threads.
  void SetUp() override {
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  }
};
[[maybe_unused]] const auto* const kDeathStyle =
    ::testing::AddGlobalTestEnvironment(new DeathStyle);

TEST(CheckTest, PassingChecksAreSilent) {
  CHECK(true);
  CHECK(1 + 1 == 2) << "arithmetic still works";
  CHECK_EQ(4, 4);
  CHECK_NE(4, 5);
  CHECK_LT(4, 5);
  CHECK_LE(5, 5);
  CHECK_GT(5, 4);
  CHECK_GE(5, 5);
}

TEST(CheckDeathTest, CheckFailureAbortsWithFileLineAndCondition) {
  EXPECT_DEATH(CHECK(false), "test_check.cc:.*CHECK failed: false");
}

TEST(CheckDeathTest, CheckFailureIncludesStreamedMessage) {
  EXPECT_DEATH(CHECK(1 == 2) << "the sky is falling",
               "CHECK failed: 1 == 2.*the sky is falling");
}

TEST(CheckDeathTest, CheckOpPrintsBothValues) {
  const int lookups = 3;
  const int hits = 7;
  EXPECT_DEATH(CHECK_GE(lookups, hits),
               "CHECK failed: lookups >= hits \\(3 vs. 7\\)");
}

TEST(CheckDeathTest, CheckEqPrintsValuesAndMessage) {
  const std::size_t dim_a = 16;
  const std::size_t dim_b = 32;
  EXPECT_DEATH(CHECK_EQ(dim_a, dim_b) << "dimension mismatch",
               "dim_a == dim_b \\(16 vs. 32\\).*dimension mismatch");
}

TEST(CheckTest, CheckOpEvaluatesOperandsExactlyOnce) {
  int evals = 0;
  const auto bump = [&evals] { return ++evals; };
  CHECK_GE(bump(), 1);  // passes: 1 >= 1
  EXPECT_EQ(evals, 1);
  CHECK_LE(2, bump());  // passes: 2 <= 2
  EXPECT_EQ(evals, 2);
}

TEST(CheckTest, CheckOpIsAStatementInUnbracedIf) {
  // Compile-time shape test: CHECK_EQ must nest under if/else without
  // stealing the else branch.
  bool took_else = false;
  if (false)
    CHECK_EQ(1, 1);
  else
    took_else = true;
  EXPECT_TRUE(took_else);
}

#if CORTEX_DCHECK_IS_ON

TEST(CheckDeathTest, DcheckFiresInDebugMode) {
  EXPECT_DEATH(DCHECK(false), "CHECK failed: false");
  EXPECT_DEATH(DCHECK_EQ(1, 2), "CHECK failed: 1 == 2");
}

TEST(CheckTest, DcheckEvaluatesConditionInDebugMode) {
  int evals = 0;
  DCHECK([&evals] {
    ++evals;
    return true;
  }());
  EXPECT_EQ(evals, 1);
}

#else  // !CORTEX_DCHECK_IS_ON

TEST(CheckTest, DcheckIsCompiledOutInReleaseMode) {
  DCHECK(false) << "must not fire";
  DCHECK_EQ(1, 2) << "must not fire";
  int evals = 0;
  DCHECK([&evals] {
    ++evals;
    return false;
  }());
  EXPECT_EQ(evals, 0) << "disabled DCHECK must not evaluate its condition";
}

#endif  // CORTEX_DCHECK_IS_ON

// Release-mode semantics, independent of this TU's build type.
TEST(CheckTest, ReleaseModeDcheckNeverFiresAndNeverEvaluates) {
  EXPECT_TRUE(cortex_test::ReleaseDcheckSurvivesFalse());
  EXPECT_FALSE(cortex_test::ReleaseDcheckEvaluatesCondition());
  EXPECT_TRUE(cortex_test::ReleaseDcheckOpSurvivesMismatch());
}

}  // namespace
