// Property tests that every VectorIndex implementation must satisfy,
// parameterised over index type — the cache treats them interchangeably.
#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "ann/flat_index.h"
#include "ann/hnsw_index.h"
#include "ann/ivf_index.h"
#include "ann/pq.h"
#include "embedding/simd_kernels.h"
#include "util/rng.h"

namespace cortex {
namespace {

enum class Kind { kFlat, kIvf, kHnsw };

std::unique_ptr<VectorIndex> Make(Kind kind, std::size_t dim) {
  switch (kind) {
    case Kind::kFlat:
      return std::make_unique<FlatIndex>(dim);
    case Kind::kIvf: {
      IvfOptions opts;
      opts.num_lists = 8;
      opts.num_probes = 8;  // full probing for deterministic recall
      return std::make_unique<IvfIndex>(dim, opts);
    }
    case Kind::kHnsw:
      return std::make_unique<HnswIndex>(dim);
  }
  return nullptr;
}

std::string KindName(Kind k) {
  switch (k) {
    case Kind::kFlat: return "flat";
    case Kind::kIvf: return "ivf";
    case Kind::kHnsw: return "hnsw";
  }
  return "?";
}

Vector RandomUnit(std::size_t dim, Rng& rng) {
  Vector v(dim);
  for (auto& x : v) x = static_cast<float>(rng.Normal());
  Normalize(v);
  return v;
}

class IndexPropertyTest : public ::testing::TestWithParam<Kind> {};

TEST_P(IndexPropertyTest, InsertThenContainsAndGet) {
  auto idx = Make(GetParam(), 8);
  Rng rng(1);
  const auto v = RandomUnit(8, rng);
  idx->Add(5, v);
  EXPECT_TRUE(idx->Contains(5));
  ASSERT_TRUE(idx->Get(5).has_value());
  EXPECT_EQ(*idx->Get(5), v);
  EXPECT_EQ(idx->size(), 1u);
  EXPECT_EQ(idx->dimension(), 8u);
}

TEST_P(IndexPropertyTest, RemoveMakesIdInvisible) {
  auto idx = Make(GetParam(), 8);
  Rng rng(2);
  for (VectorId i = 0; i < 40; ++i) idx->Add(i, RandomUnit(8, rng));
  EXPECT_TRUE(idx->Remove(11));
  EXPECT_FALSE(idx->Contains(11));
  EXPECT_FALSE(idx->Get(11).has_value());
  EXPECT_EQ(idx->size(), 39u);
  const auto results = idx->Search(RandomUnit(8, rng), 39, -1.0);
  for (const auto& r : results) EXPECT_NE(r.id, 11u);
}

TEST_P(IndexPropertyTest, RemoveMissingIdReturnsFalse) {
  auto idx = Make(GetParam(), 4);
  EXPECT_FALSE(idx->Remove(123));
}

TEST_P(IndexPropertyTest, ResultsSortedByDescendingSimilarity) {
  auto idx = Make(GetParam(), 12);
  Rng rng(3);
  for (VectorId i = 0; i < 100; ++i) idx->Add(i, RandomUnit(12, rng));
  const auto results = idx->Search(RandomUnit(12, rng), 10, -1.0);
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_GE(results[i - 1].similarity, results[i].similarity);
  }
}

TEST_P(IndexPropertyTest, ResultsRespectMinSimilarity) {
  auto idx = Make(GetParam(), 12);
  Rng rng(4);
  for (VectorId i = 0; i < 100; ++i) idx->Add(i, RandomUnit(12, rng));
  const auto results = idx->Search(RandomUnit(12, rng), 100, 0.3);
  for (const auto& r : results) EXPECT_GE(r.similarity, 0.3);
}

TEST_P(IndexPropertyTest, ResultsNeverExceedK) {
  auto idx = Make(GetParam(), 8);
  Rng rng(5);
  for (VectorId i = 0; i < 64; ++i) idx->Add(i, RandomUnit(8, rng));
  EXPECT_LE(idx->Search(RandomUnit(8, rng), 7, -1.0).size(), 7u);
}

TEST_P(IndexPropertyTest, SelfQueryRecall) {
  auto idx = Make(GetParam(), 16);
  Rng rng(6);
  std::vector<Vector> vecs;
  for (VectorId i = 0; i < 128; ++i) {
    vecs.push_back(RandomUnit(16, rng));
    idx->Add(i, vecs.back());
  }
  int correct = 0;
  for (VectorId i = 0; i < 128; ++i) {
    const auto r = idx->Search(vecs[i], 1, -1.0);
    if (!r.empty() && r[0].id == i) ++correct;
  }
  EXPECT_GE(correct, 120);  // >= 94% even for approximate indexes
}

TEST_P(IndexPropertyTest, ChurnKeepsIndexConsistent) {
  auto idx = Make(GetParam(), 8);
  Rng rng(7);
  // Interleave adds and removes; size bookkeeping must stay exact.
  std::size_t expected = 0;
  for (VectorId i = 0; i < 200; ++i) {
    idx->Add(i, RandomUnit(8, rng));
    ++expected;
    if (i % 3 == 0) {
      if (idx->Remove(i / 2)) --expected;
    }
    ASSERT_EQ(idx->size(), expected) << "at step " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllIndexes, IndexPropertyTest,
                         ::testing::Values(Kind::kFlat, Kind::kIvf,
                                           Kind::kHnsw),
                         [](const auto& info) { return KindName(info.param); });

// ---------------------------------------------------------------------------
// Dispatch independence: every index must return the same top-k ids no
// matter which SIMD variant is active (scalar vs native), on a fixed seed.
// Build AND search run under the forced variant, mirroring a process pinned
// via CORTEX_SIMD.

class ScopedVariant {
 public:
  explicit ScopedVariant(simd::Variant v) { simd::ForceVariant(v); }
  ~ScopedVariant() { simd::ForceVariant(prev_); }
  ScopedVariant(const ScopedVariant&) = delete;
  ScopedVariant& operator=(const ScopedVariant&) = delete;

 private:
  simd::Variant prev_ = simd::ActiveVariant();
};

constexpr std::size_t kDim = 32;
constexpr std::size_t kN = 200;
constexpr std::size_t kTopK = 10;
constexpr std::size_t kQueries = 5;

TEST(DispatchIndependence, TopKIdsIdenticalAcrossVariants) {
  const auto variants = simd::SupportedVariants();
  if (variants.size() < 2) GTEST_SKIP() << "only the scalar kernel compiled";

  struct Impl {
    const char* name;
    std::function<std::unique_ptr<VectorIndex>()> make;
  };
  const Impl impls[] = {
      {"flat", [] { return std::unique_ptr<VectorIndex>(
                        std::make_unique<FlatIndex>(kDim)); }},
      {"ivf", [] {
         IvfOptions opts;
         opts.num_lists = 8;
         opts.num_probes = 8;  // full probing: candidate set is exact
         return std::unique_ptr<VectorIndex>(
             std::make_unique<IvfIndex>(kDim, opts));
       }},
      {"hnsw", [] { return std::unique_ptr<VectorIndex>(
                        std::make_unique<HnswIndex>(kDim)); }},
      {"pq", [] { return std::unique_ptr<VectorIndex>(
                      std::make_unique<PqIndex>(kDim)); }},
  };

  for (const auto& impl : impls) {
    std::vector<std::vector<VectorId>> per_variant;
    for (const auto v : variants) {
      ScopedVariant forced(v);
      auto idx = impl.make();
      Rng rng(99);
      for (VectorId i = 0; i < kN; ++i) idx->Add(i, RandomUnit(kDim, rng));
      std::vector<VectorId> ids;
      for (std::size_t q = 0; q < kQueries; ++q) {
        for (const auto& r : idx->Search(RandomUnit(kDim, rng), kTopK, -1.0)) {
          ids.push_back(r.id);
        }
      }
      per_variant.push_back(std::move(ids));
    }
    for (std::size_t i = 1; i < per_variant.size(); ++i) {
      EXPECT_EQ(per_variant[i], per_variant[0])
          << impl.name << ": " << simd::VariantName(variants[i])
          << " disagrees with " << simd::VariantName(variants[0]);
    }
  }
}

}  // namespace
}  // namespace cortex
