#include "core/recalibrator.h"

#include <gtest/gtest.h>

#include <map>

namespace cortex {
namespace {

// --- ThresholdForPrecision (Algorithm 1 lines 7-9) ---

TEST(ThresholdForPrecision, EmptyInputHasNoThreshold) {
  EXPECT_FALSE(
      Recalibrator::ThresholdForPrecision({}, 0.9).has_value());
}

TEST(ThresholdForPrecision, AllCorrectPicksLowestScore) {
  std::vector<LabeledSample> samples = {
      {0.9, true}, {0.7, true}, {0.5, true}};
  const auto tau = Recalibrator::ThresholdForPrecision(samples, 0.99);
  ASSERT_TRUE(tau.has_value());
  EXPECT_DOUBLE_EQ(*tau, 0.5);  // most permissive while meeting the target
}

TEST(ThresholdForPrecision, ExcludesWrongLowScoredAnswers) {
  std::vector<LabeledSample> samples = {
      {0.95, true}, {0.9, true}, {0.8, true}, {0.4, false}, {0.3, false}};
  const auto tau = Recalibrator::ThresholdForPrecision(samples, 0.99);
  ASSERT_TRUE(tau.has_value());
  EXPECT_DOUBLE_EQ(*tau, 0.8);
}

TEST(ThresholdForPrecision, RelaxedTargetAdmitsSomeErrors) {
  std::vector<LabeledSample> samples = {
      {0.9, true}, {0.8, true}, {0.7, true}, {0.6, false}, {0.5, true}};
  // At tau=0.5: precision 4/5 = 0.8.
  const auto strict = Recalibrator::ThresholdForPrecision(samples, 0.99);
  const auto relaxed = Recalibrator::ThresholdForPrecision(samples, 0.8);
  ASSERT_TRUE(strict.has_value());
  ASSERT_TRUE(relaxed.has_value());
  EXPECT_DOUBLE_EQ(*strict, 0.7);
  EXPECT_DOUBLE_EQ(*relaxed, 0.5);
}

TEST(ThresholdForPrecision, UnreachableTargetReturnsNothing) {
  std::vector<LabeledSample> samples = {{0.9, false}, {0.5, false}};
  EXPECT_FALSE(
      Recalibrator::ThresholdForPrecision(samples, 0.9).has_value());
}

TEST(ThresholdForPrecision, TiedScoresAreNotSplit) {
  // Both 0.7 samples sit on one side of any threshold; the cutoff cannot
  // separate the correct one from the incorrect one.
  std::vector<LabeledSample> samples = {
      {0.9, true}, {0.7, true}, {0.7, false}};
  const auto tau = Recalibrator::ThresholdForPrecision(samples, 0.95);
  ASSERT_TRUE(tau.has_value());
  EXPECT_DOUBLE_EQ(*tau, 0.9);
}

// --- Full recalibration rounds ---

class ScriptedGt {
 public:
  void Set(std::string query, std::string truth) {
    truth_[std::move(query)] = std::move(truth);
  }
  std::string operator()(std::string_view query) const {
    const auto it = truth_.find(std::string(query));
    return it == truth_.end() ? std::string{} : it->second;
  }

 private:
  std::map<std::string, std::string> truth_;
};

TEST(Recalibrator, EmptyLogRoundIsNoop) {
  Recalibrator recal;
  Rng rng(1);
  const auto round = recal.RunRound([](std::string_view) { return ""; }, rng);
  EXPECT_FALSE(round.new_tau.has_value());
  EXPECT_EQ(round.gt_fetches, 0u);
}

TEST(Recalibrator, RoundAnnotatesSampledJudgments) {
  RecalibratorOptions opts;
  opts.samples_per_round = 3;
  Recalibrator recal(opts);
  ScriptedGt gt;
  for (int i = 0; i < 10; ++i) {
    const std::string q = "q" + std::to_string(i);
    gt.Set(q, "truth");
    recal.LogJudgment({q, "cached-q", i % 2 ? "truth" : "wrong", 0.5 + i * 0.04});
  }
  Rng rng(2);
  const auto round = recal.RunRound(gt, rng);
  EXPECT_EQ(round.gt_fetches, 3u);
  EXPECT_EQ(round.annotated, 3u);
  EXPECT_EQ(recal.validation_size(), 3u);
}

TEST(Recalibrator, FailedGtFetchesAreSkippedNotMislabelled) {
  RecalibratorOptions opts;
  opts.samples_per_round = 5;
  Recalibrator recal(opts);
  for (int i = 0; i < 5; ++i) {
    recal.LogJudgment({"q" + std::to_string(i), "k", "correct value", 0.9});
  }
  Rng rng(3);
  // Ground truth unavailable: fetches happen, nothing is annotated.
  const auto round =
      recal.RunRound([](std::string_view) { return ""; }, rng);
  EXPECT_EQ(round.gt_fetches, 5u);
  EXPECT_EQ(round.annotated, 0u);
  EXPECT_EQ(recal.validation_size(), 0u);
}

TEST(Recalibrator, ConvergesToThresholdSeparatingGoodFromBad) {
  RecalibratorOptions opts;
  opts.samples_per_round = 10;
  opts.target_precision = 0.999;  // strict: no labelled error admissible
  Recalibrator recal(opts);
  ScriptedGt gt;
  // Judger behaviour: correct answers score ~0.8+, wrong ones ~0.4-.
  for (int i = 0; i < 60; ++i) {
    const std::string q = "q" + std::to_string(i);
    gt.Set(q, "truth");
    const bool good = i % 3 != 0;
    recal.LogJudgment({q, "k", good ? "truth" : "stale",
                       good ? 0.8 + (i % 10) * 0.01 : 0.4 - (i % 10) * 0.01});
  }
  Rng rng(4);
  std::optional<double> tau;
  for (int round = 0; round < 6; ++round) {
    const auto r = recal.RunRound(gt, rng);
    if (r.new_tau) tau = r.new_tau;
  }
  ASSERT_TRUE(tau.has_value());
  EXPECT_GE(*tau, 0.4);   // excludes the bad cluster (scores <= 0.40)
  EXPECT_LE(*tau, 0.85);  // keeps the good cluster (scores >= 0.80)
}

TEST(Recalibrator, ThresholdClampedToConfiguredRange) {
  RecalibratorOptions opts;
  opts.samples_per_round = 10;
  opts.min_tau = 0.3;
  opts.max_tau = 0.9;
  opts.target_precision = 0.5;
  Recalibrator recal(opts);
  ScriptedGt gt;
  for (int i = 0; i < 40; ++i) {
    const std::string q = "q" + std::to_string(i);
    gt.Set(q, "truth");
    // Everything correct with tiny scores: unclamped threshold would be ~0.01.
    recal.LogJudgment({q, "k", "truth", 0.01 + i * 0.001});
  }
  Rng rng(5);
  std::optional<double> tau;
  for (int round = 0; round < 4; ++round) {
    if (auto r = recal.RunRound(gt, rng); r.new_tau) tau = r.new_tau;
  }
  ASSERT_TRUE(tau.has_value());
  EXPECT_GE(*tau, 0.3);
}

TEST(Recalibrator, LogIsBounded) {
  RecalibratorOptions opts;
  opts.max_log = 10;
  Recalibrator recal(opts);
  for (int i = 0; i < 100; ++i) {
    recal.LogJudgment({"q", "k", "v", 0.5});
  }
  EXPECT_EQ(recal.log_size(), 10u);
}

TEST(Recalibrator, ValidationSetIsBounded) {
  RecalibratorOptions opts;
  opts.samples_per_round = 10;
  opts.max_validation_set = 15;
  Recalibrator recal(opts);
  ScriptedGt gt;
  for (int i = 0; i < 30; ++i) {
    const std::string q = "q" + std::to_string(i);
    gt.Set(q, "t");
    recal.LogJudgment({q, "k", "t", 0.5});
  }
  Rng rng(6);
  for (int round = 0; round < 5; ++round) recal.RunRound(gt, rng);
  EXPECT_LE(recal.validation_size(), 15u);
}

TEST(Recalibrator, AnnotationsExposeTheValidationSet) {
  RecalibratorOptions opts;
  opts.samples_per_round = 4;
  Recalibrator recal(opts);
  ScriptedGt gt;
  for (int i = 0; i < 8; ++i) {
    const std::string q = "q" + std::to_string(i);
    gt.Set(q, "truth");
    recal.LogJudgment({q, "k", i % 2 ? "truth" : "wrong", 0.5});
  }
  Rng rng(7);
  recal.RunRound(gt, rng);
  const auto annotations = recal.Annotations();
  EXPECT_EQ(annotations.size(), recal.validation_size());
  EXPECT_EQ(annotations.size(), 4u);
}

}  // namespace
}  // namespace cortex
