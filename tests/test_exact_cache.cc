#include "core/exact_cache.h"

#include <gtest/gtest.h>

namespace cortex {
namespace {

ExactCacheOptions Unbounded() {
  ExactCacheOptions opts;
  opts.capacity_tokens = 1e9;
  return opts;
}

TEST(ExactCache, HitRequiresExactKey) {
  ExactCache cache(Unbounded());
  cache.Insert("who painted the mona lisa", "da vinci", 0.0);
  EXPECT_TRUE(cache.Lookup("who painted the mona lisa", 1.0).has_value());
  // Any rephrasing misses — the paper's core criticism of storage caches.
  EXPECT_FALSE(cache.Lookup("mona lisa painter", 1.0).has_value());
  EXPECT_FALSE(cache.Lookup("who painted the mona lisa ", 1.0).has_value());
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.lookups(), 3u);
}

TEST(ExactCache, ValueRoundTrips) {
  ExactCache cache(Unbounded());
  cache.Insert("k", "the value", 0.0);
  EXPECT_EQ(*cache.Lookup("k", 1.0), "the value");
}

TEST(ExactCache, TtlExpiresEntries) {
  ExactCacheOptions opts = Unbounded();
  opts.ttl_sec = 10.0;
  ExactCache cache(opts);
  cache.Insert("k", "v", 0.0);
  EXPECT_TRUE(cache.Lookup("k", 9.0).has_value());
  EXPECT_FALSE(cache.Lookup("k", 11.0).has_value());
  EXPECT_EQ(cache.size(), 0u);  // expired entry removed on access
}

TEST(ExactCache, TtlDisabled) {
  ExactCacheOptions opts = Unbounded();
  opts.ttl_enabled = false;
  ExactCache cache(opts);
  cache.Insert("k", "v", 0.0);
  EXPECT_TRUE(cache.Lookup("k", 1e12).has_value());
}

TEST(ExactCache, LruEvictionOrder) {
  ExactCacheOptions opts;
  // Each "value x" is 3 tokens; room for exactly 2 entries.
  opts.capacity_tokens = 6.0;
  ExactCache cache(opts);
  cache.Insert("a", "value a", 0.0);
  cache.Insert("b", "value b", 1.0);
  // Touch "a" so "b" becomes least recent.
  EXPECT_TRUE(cache.Lookup("a", 2.0).has_value());
  cache.Insert("c", "value c", 3.0);
  EXPECT_TRUE(cache.Contains("a"));
  EXPECT_FALSE(cache.Contains("b"));
  EXPECT_TRUE(cache.Contains("c"));
}

TEST(ExactCache, ReinsertUpdatesValueAndRecency) {
  ExactCache cache(Unbounded());
  cache.Insert("k", "old", 0.0);
  cache.Insert("k", "new", 1.0);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(*cache.Lookup("k", 2.0), "new");
}

TEST(ExactCache, OversizedValueNotInserted) {
  ExactCacheOptions opts;
  opts.capacity_tokens = 3.0;
  ExactCache cache(opts);
  cache.Insert("k", "this value is far too large to fit in three tokens",
               0.0);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ExactCache, UsageNeverExceedsCapacity) {
  ExactCacheOptions opts;
  opts.capacity_tokens = 50.0;
  ExactCache cache(opts);
  for (int i = 0; i < 100; ++i) {
    cache.Insert("key " + std::to_string(i),
                 "some cached value number " + std::to_string(i),
                 static_cast<double>(i));
    ASSERT_LE(cache.usage_tokens(), opts.capacity_tokens);
  }
  EXPECT_GT(cache.size(), 0u);
}

TEST(ExactCache, HitRefreshesLruPosition) {
  ExactCacheOptions opts;
  opts.capacity_tokens = 9.0;  // three 3-token entries fit
  ExactCache cache(opts);
  cache.Insert("a", "va x", 0.0);
  cache.Insert("b", "vb x", 1.0);
  cache.Insert("c", "vc x", 2.0);
  // Keep touching "a": it must survive repeated insertions.
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(cache.Lookup("a", 3.0 + i).has_value());
    cache.Insert("new" + std::to_string(i), "vn x", 4.0 + i);
  }
  EXPECT_TRUE(cache.Contains("a"));
}

TEST(ExactCache, HitRateAccounting) {
  ExactCache cache(Unbounded());
  cache.Insert("k", "v", 0.0);
  cache.Lookup("k", 1.0);
  cache.Lookup("miss", 1.0);
  EXPECT_DOUBLE_EQ(cache.HitRate(), 0.5);
}

}  // namespace
}  // namespace cortex
