#include "ann/kmeans.h"

#include <gtest/gtest.h>

#include <set>

#include "util/rng.h"

namespace cortex {
namespace {

// Three well-separated 2D blobs.
std::vector<float> MakeBlobs(std::size_t per_blob, Rng& rng) {
  const float centers[3][2] = {{0, 0}, {10, 10}, {-10, 10}};
  std::vector<float> data;
  data.reserve(per_blob * 3 * 2);
  for (const auto& c : centers) {
    for (std::size_t i = 0; i < per_blob; ++i) {
      data.push_back(c[0] + static_cast<float>(rng.Normal(0, 0.5)));
      data.push_back(c[1] + static_cast<float>(rng.Normal(0, 0.5)));
    }
  }
  return data;
}

TEST(KMeans, RecoversSeparatedBlobs) {
  Rng rng(1);
  const auto data = MakeBlobs(50, rng);
  const auto result = KMeans(data, 150, 2, 3);
  EXPECT_EQ(result.k, 3u);
  EXPECT_EQ(result.assignments.size(), 150u);
  // Each blob's points share one cluster, and the three clusters differ.
  std::set<std::size_t> blob_clusters;
  for (int blob = 0; blob < 3; ++blob) {
    const std::size_t c0 = result.assignments[blob * 50];
    for (int i = 0; i < 50; ++i) {
      EXPECT_EQ(result.assignments[blob * 50 + i], c0);
    }
    blob_clusters.insert(c0);
  }
  EXPECT_EQ(blob_clusters.size(), 3u);
}

TEST(KMeans, InertiaIsLowForTightBlobs) {
  Rng rng(2);
  const auto data = MakeBlobs(40, rng);
  const auto result = KMeans(data, 120, 2, 3);
  // Variance 0.25 per axis -> expected inertia ~ 120 * 0.5.
  EXPECT_LT(result.inertia, 120.0);
}

TEST(KMeans, KEqualsNPutsEachPointAlone) {
  Rng rng(3);
  std::vector<float> data;
  for (int i = 0; i < 5; ++i) {
    data.push_back(static_cast<float>(i * 10));
    data.push_back(0.0f);
  }
  const auto result = KMeans(data, 5, 2, 5);
  std::set<std::size_t> clusters(result.assignments.begin(),
                                 result.assignments.end());
  EXPECT_EQ(clusters.size(), 5u);
  EXPECT_NEAR(result.inertia, 0.0, 1e-9);
}

TEST(KMeans, SingleCluster) {
  Rng rng(4);
  const auto data = MakeBlobs(20, rng);
  const auto result = KMeans(data, 60, 2, 1);
  for (auto a : result.assignments) EXPECT_EQ(a, 0u);
}

TEST(KMeans, DeterministicForFixedSeed) {
  Rng rng(5);
  const auto data = MakeBlobs(30, rng);
  KMeansOptions opts;
  opts.seed = 99;
  const auto a = KMeans(data, 90, 2, 3, opts);
  const auto b = KMeans(data, 90, 2, 3, opts);
  EXPECT_EQ(a.assignments, b.assignments);
  EXPECT_EQ(a.centroids, b.centroids);
}

TEST(KMeans, DuplicatePointsDoNotCrash) {
  // All-identical points force empty clusters; the reseed path must cope.
  std::vector<float> data(40, 1.0f);  // 20 identical 2D points
  const auto result = KMeans(data, 20, 2, 4);
  EXPECT_EQ(result.assignments.size(), 20u);
  EXPECT_NEAR(result.inertia, 0.0, 1e-9);
}

TEST(KMeans, StopsEarlyOnConvergence) {
  Rng rng(6);
  const auto data = MakeBlobs(50, rng);
  KMeansOptions opts;
  opts.max_iterations = 50;
  const auto result = KMeans(data, 150, 2, 3, opts);
  EXPECT_LT(result.iterations_run, 50u);
}

TEST(NearestCentroid, PicksClosest) {
  const std::vector<float> centroids = {0, 0, 10, 10};
  const std::vector<float> p1 = {1, 1};
  const std::vector<float> p2 = {9, 9};
  EXPECT_EQ(NearestCentroid(p1, centroids, 2, 2), 0u);
  EXPECT_EQ(NearestCentroid(p2, centroids, 2, 2), 1u);
}

TEST(KMeans, CentroidAccessorReturnsRows) {
  Rng rng(7);
  const auto data = MakeBlobs(10, rng);
  const auto result = KMeans(data, 30, 2, 2);
  EXPECT_EQ(result.Centroid(0).size(), 2u);
  EXPECT_EQ(result.Centroid(1).size(), 2u);
}

}  // namespace
}  // namespace cortex
