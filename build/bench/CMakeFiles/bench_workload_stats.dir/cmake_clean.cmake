file(REMOVE_RECURSE
  "CMakeFiles/bench_workload_stats.dir/bench_workload_stats.cc.o"
  "CMakeFiles/bench_workload_stats.dir/bench_workload_stats.cc.o.d"
  "bench_workload_stats"
  "bench_workload_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_workload_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
