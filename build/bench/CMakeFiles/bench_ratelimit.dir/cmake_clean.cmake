file(REMOVE_RECURSE
  "CMakeFiles/bench_ratelimit.dir/bench_ratelimit.cc.o"
  "CMakeFiles/bench_ratelimit.dir/bench_ratelimit.cc.o.d"
  "bench_ratelimit"
  "bench_ratelimit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ratelimit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
