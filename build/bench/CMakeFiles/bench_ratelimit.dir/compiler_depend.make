# Empty compiler generated dependencies file for bench_ratelimit.
# This may be replaced when dependencies are built.
