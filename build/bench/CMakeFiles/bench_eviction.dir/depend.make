# Empty dependencies file for bench_eviction.
# This may be replaced when dependencies are built.
