file(REMOVE_RECURSE
  "CMakeFiles/bench_ann.dir/bench_ann.cc.o"
  "CMakeFiles/bench_ann.dir/bench_ann.cc.o.d"
  "bench_ann"
  "bench_ann.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ann.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
