# Empty compiler generated dependencies file for cortex_bench_common.
# This may be replaced when dependencies are built.
