file(REMOVE_RECURSE
  "libcortex_bench_common.a"
)
