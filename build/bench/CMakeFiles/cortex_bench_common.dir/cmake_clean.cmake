file(REMOVE_RECURSE
  "CMakeFiles/cortex_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/cortex_bench_common.dir/bench_common.cc.o.d"
  "libcortex_bench_common.a"
  "libcortex_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cortex_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
