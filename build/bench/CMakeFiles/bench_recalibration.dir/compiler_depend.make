# Empty compiler generated dependencies file for bench_recalibration.
# This may be replaced when dependencies are built.
