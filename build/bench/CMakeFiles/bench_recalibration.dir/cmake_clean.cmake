file(REMOVE_RECURSE
  "CMakeFiles/bench_recalibration.dir/bench_recalibration.cc.o"
  "CMakeFiles/bench_recalibration.dir/bench_recalibration.cc.o.d"
  "bench_recalibration"
  "bench_recalibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_recalibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
