# Empty compiler generated dependencies file for bench_swebench.
# This may be replaced when dependencies are built.
