file(REMOVE_RECURSE
  "CMakeFiles/bench_swebench.dir/bench_swebench.cc.o"
  "CMakeFiles/bench_swebench.dir/bench_swebench.cc.o.d"
  "bench_swebench"
  "bench_swebench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_swebench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
