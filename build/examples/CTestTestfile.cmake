# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "--tasks=60" "--rate=4")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_search_agent "/root/repo/build/examples/search_agent" "--tasks=60" "--rate=3")
set_tests_properties(example_search_agent PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_coding_agent "/root/repo/build/examples/coding_agent" "--issues=40")
set_tests_properties(example_coding_agent PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_warm_restart "/root/repo/build/examples/warm_restart" "--tasks=80")
set_tests_properties(example_warm_restart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_transparent_proxy "/root/repo/build/examples/transparent_proxy")
set_tests_properties(example_transparent_proxy PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
