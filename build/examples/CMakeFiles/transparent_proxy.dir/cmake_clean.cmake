file(REMOVE_RECURSE
  "CMakeFiles/transparent_proxy.dir/transparent_proxy.cpp.o"
  "CMakeFiles/transparent_proxy.dir/transparent_proxy.cpp.o.d"
  "transparent_proxy"
  "transparent_proxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transparent_proxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
