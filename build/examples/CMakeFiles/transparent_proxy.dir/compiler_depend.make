# Empty compiler generated dependencies file for transparent_proxy.
# This may be replaced when dependencies are built.
