# Empty compiler generated dependencies file for trend_surge.
# This may be replaced when dependencies are built.
