file(REMOVE_RECURSE
  "CMakeFiles/trend_surge.dir/trend_surge.cpp.o"
  "CMakeFiles/trend_surge.dir/trend_surge.cpp.o.d"
  "trend_surge"
  "trend_surge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trend_surge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
