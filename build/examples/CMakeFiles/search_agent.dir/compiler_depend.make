# Empty compiler generated dependencies file for search_agent.
# This may be replaced when dependencies are built.
