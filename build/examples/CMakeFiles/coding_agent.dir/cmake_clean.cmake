file(REMOVE_RECURSE
  "CMakeFiles/coding_agent.dir/coding_agent.cpp.o"
  "CMakeFiles/coding_agent.dir/coding_agent.cpp.o.d"
  "coding_agent"
  "coding_agent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coding_agent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
