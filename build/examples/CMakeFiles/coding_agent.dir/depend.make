# Empty dependencies file for coding_agent.
# This may be replaced when dependencies are built.
