file(REMOVE_RECURSE
  "CMakeFiles/cortex_driver.dir/cortex_sim.cpp.o"
  "CMakeFiles/cortex_driver.dir/cortex_sim.cpp.o.d"
  "cortex_driver"
  "cortex_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cortex_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
