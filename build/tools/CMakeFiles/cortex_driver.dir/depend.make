# Empty dependencies file for cortex_driver.
# This may be replaced when dependencies are built.
