file(REMOVE_RECURSE
  "libcortex_llm.a"
)
