file(REMOVE_RECURSE
  "CMakeFiles/cortex_llm.dir/agent_model.cc.o"
  "CMakeFiles/cortex_llm.dir/agent_model.cc.o.d"
  "CMakeFiles/cortex_llm.dir/judger_model.cc.o"
  "CMakeFiles/cortex_llm.dir/judger_model.cc.o.d"
  "CMakeFiles/cortex_llm.dir/model_spec.cc.o"
  "CMakeFiles/cortex_llm.dir/model_spec.cc.o.d"
  "CMakeFiles/cortex_llm.dir/tags.cc.o"
  "CMakeFiles/cortex_llm.dir/tags.cc.o.d"
  "libcortex_llm.a"
  "libcortex_llm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cortex_llm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
