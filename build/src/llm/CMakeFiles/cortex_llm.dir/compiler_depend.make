# Empty compiler generated dependencies file for cortex_llm.
# This may be replaced when dependencies are built.
