
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/llm/agent_model.cc" "src/llm/CMakeFiles/cortex_llm.dir/agent_model.cc.o" "gcc" "src/llm/CMakeFiles/cortex_llm.dir/agent_model.cc.o.d"
  "/root/repo/src/llm/judger_model.cc" "src/llm/CMakeFiles/cortex_llm.dir/judger_model.cc.o" "gcc" "src/llm/CMakeFiles/cortex_llm.dir/judger_model.cc.o.d"
  "/root/repo/src/llm/model_spec.cc" "src/llm/CMakeFiles/cortex_llm.dir/model_spec.cc.o" "gcc" "src/llm/CMakeFiles/cortex_llm.dir/model_spec.cc.o.d"
  "/root/repo/src/llm/tags.cc" "src/llm/CMakeFiles/cortex_llm.dir/tags.cc.o" "gcc" "src/llm/CMakeFiles/cortex_llm.dir/tags.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/embedding/CMakeFiles/cortex_embedding.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cortex_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
