file(REMOVE_RECURSE
  "libcortex_embedding.a"
)
