# Empty dependencies file for cortex_embedding.
# This may be replaced when dependencies are built.
