file(REMOVE_RECURSE
  "CMakeFiles/cortex_embedding.dir/hashed_embedder.cc.o"
  "CMakeFiles/cortex_embedding.dir/hashed_embedder.cc.o.d"
  "CMakeFiles/cortex_embedding.dir/vector_ops.cc.o"
  "CMakeFiles/cortex_embedding.dir/vector_ops.cc.o.d"
  "libcortex_embedding.a"
  "libcortex_embedding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cortex_embedding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
