# Empty dependencies file for cortex_util.
# This may be replaced when dependencies are built.
