file(REMOVE_RECURSE
  "CMakeFiles/cortex_util.dir/config.cc.o"
  "CMakeFiles/cortex_util.dir/config.cc.o.d"
  "CMakeFiles/cortex_util.dir/count_min.cc.o"
  "CMakeFiles/cortex_util.dir/count_min.cc.o.d"
  "CMakeFiles/cortex_util.dir/flags.cc.o"
  "CMakeFiles/cortex_util.dir/flags.cc.o.d"
  "CMakeFiles/cortex_util.dir/rng.cc.o"
  "CMakeFiles/cortex_util.dir/rng.cc.o.d"
  "CMakeFiles/cortex_util.dir/stats.cc.o"
  "CMakeFiles/cortex_util.dir/stats.cc.o.d"
  "CMakeFiles/cortex_util.dir/table.cc.o"
  "CMakeFiles/cortex_util.dir/table.cc.o.d"
  "CMakeFiles/cortex_util.dir/tokenizer.cc.o"
  "CMakeFiles/cortex_util.dir/tokenizer.cc.o.d"
  "libcortex_util.a"
  "libcortex_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cortex_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
