file(REMOVE_RECURSE
  "libcortex_util.a"
)
