file(REMOVE_RECURSE
  "CMakeFiles/cortex_ann.dir/flat_index.cc.o"
  "CMakeFiles/cortex_ann.dir/flat_index.cc.o.d"
  "CMakeFiles/cortex_ann.dir/hnsw_index.cc.o"
  "CMakeFiles/cortex_ann.dir/hnsw_index.cc.o.d"
  "CMakeFiles/cortex_ann.dir/ivf_index.cc.o"
  "CMakeFiles/cortex_ann.dir/ivf_index.cc.o.d"
  "CMakeFiles/cortex_ann.dir/kmeans.cc.o"
  "CMakeFiles/cortex_ann.dir/kmeans.cc.o.d"
  "CMakeFiles/cortex_ann.dir/pq.cc.o"
  "CMakeFiles/cortex_ann.dir/pq.cc.o.d"
  "libcortex_ann.a"
  "libcortex_ann.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cortex_ann.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
