file(REMOVE_RECURSE
  "libcortex_ann.a"
)
