# Empty compiler generated dependencies file for cortex_ann.
# This may be replaced when dependencies are built.
