file(REMOVE_RECURSE
  "libcortex_net.a"
)
