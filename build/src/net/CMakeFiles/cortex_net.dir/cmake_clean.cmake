file(REMOVE_RECURSE
  "CMakeFiles/cortex_net.dir/cost_model.cc.o"
  "CMakeFiles/cortex_net.dir/cost_model.cc.o.d"
  "CMakeFiles/cortex_net.dir/latency.cc.o"
  "CMakeFiles/cortex_net.dir/latency.cc.o.d"
  "CMakeFiles/cortex_net.dir/rate_limiter.cc.o"
  "CMakeFiles/cortex_net.dir/rate_limiter.cc.o.d"
  "CMakeFiles/cortex_net.dir/remote_service.cc.o"
  "CMakeFiles/cortex_net.dir/remote_service.cc.o.d"
  "libcortex_net.a"
  "libcortex_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cortex_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
