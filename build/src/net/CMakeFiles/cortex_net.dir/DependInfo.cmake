
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/cost_model.cc" "src/net/CMakeFiles/cortex_net.dir/cost_model.cc.o" "gcc" "src/net/CMakeFiles/cortex_net.dir/cost_model.cc.o.d"
  "/root/repo/src/net/latency.cc" "src/net/CMakeFiles/cortex_net.dir/latency.cc.o" "gcc" "src/net/CMakeFiles/cortex_net.dir/latency.cc.o.d"
  "/root/repo/src/net/rate_limiter.cc" "src/net/CMakeFiles/cortex_net.dir/rate_limiter.cc.o" "gcc" "src/net/CMakeFiles/cortex_net.dir/rate_limiter.cc.o.d"
  "/root/repo/src/net/remote_service.cc" "src/net/CMakeFiles/cortex_net.dir/remote_service.cc.o" "gcc" "src/net/CMakeFiles/cortex_net.dir/remote_service.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cortex_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
