# Empty dependencies file for cortex_net.
# This may be replaced when dependencies are built.
