# Empty dependencies file for cortex_core.
# This may be replaced when dependencies are built.
