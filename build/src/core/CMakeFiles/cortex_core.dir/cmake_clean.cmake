file(REMOVE_RECURSE
  "CMakeFiles/cortex_core.dir/data_client.cc.o"
  "CMakeFiles/cortex_core.dir/data_client.cc.o.d"
  "CMakeFiles/cortex_core.dir/engine.cc.o"
  "CMakeFiles/cortex_core.dir/engine.cc.o.d"
  "CMakeFiles/cortex_core.dir/eviction.cc.o"
  "CMakeFiles/cortex_core.dir/eviction.cc.o.d"
  "CMakeFiles/cortex_core.dir/exact_cache.cc.o"
  "CMakeFiles/cortex_core.dir/exact_cache.cc.o.d"
  "CMakeFiles/cortex_core.dir/prefetcher.cc.o"
  "CMakeFiles/cortex_core.dir/prefetcher.cc.o.d"
  "CMakeFiles/cortex_core.dir/recalibrator.cc.o"
  "CMakeFiles/cortex_core.dir/recalibrator.cc.o.d"
  "CMakeFiles/cortex_core.dir/resolvers.cc.o"
  "CMakeFiles/cortex_core.dir/resolvers.cc.o.d"
  "CMakeFiles/cortex_core.dir/semantic_cache.cc.o"
  "CMakeFiles/cortex_core.dir/semantic_cache.cc.o.d"
  "CMakeFiles/cortex_core.dir/sharded_cache.cc.o"
  "CMakeFiles/cortex_core.dir/sharded_cache.cc.o.d"
  "CMakeFiles/cortex_core.dir/sine.cc.o"
  "CMakeFiles/cortex_core.dir/sine.cc.o.d"
  "CMakeFiles/cortex_core.dir/snapshot.cc.o"
  "CMakeFiles/cortex_core.dir/snapshot.cc.o.d"
  "libcortex_core.a"
  "libcortex_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cortex_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
