file(REMOVE_RECURSE
  "libcortex_core.a"
)
