
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/data_client.cc" "src/core/CMakeFiles/cortex_core.dir/data_client.cc.o" "gcc" "src/core/CMakeFiles/cortex_core.dir/data_client.cc.o.d"
  "/root/repo/src/core/engine.cc" "src/core/CMakeFiles/cortex_core.dir/engine.cc.o" "gcc" "src/core/CMakeFiles/cortex_core.dir/engine.cc.o.d"
  "/root/repo/src/core/eviction.cc" "src/core/CMakeFiles/cortex_core.dir/eviction.cc.o" "gcc" "src/core/CMakeFiles/cortex_core.dir/eviction.cc.o.d"
  "/root/repo/src/core/exact_cache.cc" "src/core/CMakeFiles/cortex_core.dir/exact_cache.cc.o" "gcc" "src/core/CMakeFiles/cortex_core.dir/exact_cache.cc.o.d"
  "/root/repo/src/core/prefetcher.cc" "src/core/CMakeFiles/cortex_core.dir/prefetcher.cc.o" "gcc" "src/core/CMakeFiles/cortex_core.dir/prefetcher.cc.o.d"
  "/root/repo/src/core/recalibrator.cc" "src/core/CMakeFiles/cortex_core.dir/recalibrator.cc.o" "gcc" "src/core/CMakeFiles/cortex_core.dir/recalibrator.cc.o.d"
  "/root/repo/src/core/resolvers.cc" "src/core/CMakeFiles/cortex_core.dir/resolvers.cc.o" "gcc" "src/core/CMakeFiles/cortex_core.dir/resolvers.cc.o.d"
  "/root/repo/src/core/semantic_cache.cc" "src/core/CMakeFiles/cortex_core.dir/semantic_cache.cc.o" "gcc" "src/core/CMakeFiles/cortex_core.dir/semantic_cache.cc.o.d"
  "/root/repo/src/core/sharded_cache.cc" "src/core/CMakeFiles/cortex_core.dir/sharded_cache.cc.o" "gcc" "src/core/CMakeFiles/cortex_core.dir/sharded_cache.cc.o.d"
  "/root/repo/src/core/sine.cc" "src/core/CMakeFiles/cortex_core.dir/sine.cc.o" "gcc" "src/core/CMakeFiles/cortex_core.dir/sine.cc.o.d"
  "/root/repo/src/core/snapshot.cc" "src/core/CMakeFiles/cortex_core.dir/snapshot.cc.o" "gcc" "src/core/CMakeFiles/cortex_core.dir/snapshot.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ann/CMakeFiles/cortex_ann.dir/DependInfo.cmake"
  "/root/repo/build/src/embedding/CMakeFiles/cortex_embedding.dir/DependInfo.cmake"
  "/root/repo/build/src/llm/CMakeFiles/cortex_llm.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cortex_net.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/cortex_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cortex_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/cortex_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cortex_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
