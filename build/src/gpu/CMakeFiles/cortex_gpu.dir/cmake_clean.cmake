file(REMOVE_RECURSE
  "CMakeFiles/cortex_gpu.dir/batching_server.cc.o"
  "CMakeFiles/cortex_gpu.dir/batching_server.cc.o.d"
  "CMakeFiles/cortex_gpu.dir/colocation.cc.o"
  "CMakeFiles/cortex_gpu.dir/colocation.cc.o.d"
  "CMakeFiles/cortex_gpu.dir/gpu_spec.cc.o"
  "CMakeFiles/cortex_gpu.dir/gpu_spec.cc.o.d"
  "CMakeFiles/cortex_gpu.dir/memory_pool.cc.o"
  "CMakeFiles/cortex_gpu.dir/memory_pool.cc.o.d"
  "libcortex_gpu.a"
  "libcortex_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cortex_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
