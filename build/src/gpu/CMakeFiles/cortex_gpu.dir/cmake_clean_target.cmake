file(REMOVE_RECURSE
  "libcortex_gpu.a"
)
