# Empty dependencies file for cortex_gpu.
# This may be replaced when dependencies are built.
