
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpu/batching_server.cc" "src/gpu/CMakeFiles/cortex_gpu.dir/batching_server.cc.o" "gcc" "src/gpu/CMakeFiles/cortex_gpu.dir/batching_server.cc.o.d"
  "/root/repo/src/gpu/colocation.cc" "src/gpu/CMakeFiles/cortex_gpu.dir/colocation.cc.o" "gcc" "src/gpu/CMakeFiles/cortex_gpu.dir/colocation.cc.o.d"
  "/root/repo/src/gpu/gpu_spec.cc" "src/gpu/CMakeFiles/cortex_gpu.dir/gpu_spec.cc.o" "gcc" "src/gpu/CMakeFiles/cortex_gpu.dir/gpu_spec.cc.o.d"
  "/root/repo/src/gpu/memory_pool.cc" "src/gpu/CMakeFiles/cortex_gpu.dir/memory_pool.cc.o" "gcc" "src/gpu/CMakeFiles/cortex_gpu.dir/memory_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/llm/CMakeFiles/cortex_llm.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cortex_util.dir/DependInfo.cmake"
  "/root/repo/build/src/embedding/CMakeFiles/cortex_embedding.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
