# Empty dependencies file for cortex_workload.
# This may be replaced when dependencies are built.
