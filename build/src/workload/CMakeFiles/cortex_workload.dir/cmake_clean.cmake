file(REMOVE_RECURSE
  "CMakeFiles/cortex_workload.dir/oracle.cc.o"
  "CMakeFiles/cortex_workload.dir/oracle.cc.o.d"
  "CMakeFiles/cortex_workload.dir/task_factory.cc.o"
  "CMakeFiles/cortex_workload.dir/task_factory.cc.o.d"
  "CMakeFiles/cortex_workload.dir/topic_universe.cc.o"
  "CMakeFiles/cortex_workload.dir/topic_universe.cc.o.d"
  "CMakeFiles/cortex_workload.dir/trace_io.cc.o"
  "CMakeFiles/cortex_workload.dir/trace_io.cc.o.d"
  "CMakeFiles/cortex_workload.dir/vocab.cc.o"
  "CMakeFiles/cortex_workload.dir/vocab.cc.o.d"
  "CMakeFiles/cortex_workload.dir/workload_stats.cc.o"
  "CMakeFiles/cortex_workload.dir/workload_stats.cc.o.d"
  "CMakeFiles/cortex_workload.dir/workloads.cc.o"
  "CMakeFiles/cortex_workload.dir/workloads.cc.o.d"
  "libcortex_workload.a"
  "libcortex_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cortex_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
