
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/oracle.cc" "src/workload/CMakeFiles/cortex_workload.dir/oracle.cc.o" "gcc" "src/workload/CMakeFiles/cortex_workload.dir/oracle.cc.o.d"
  "/root/repo/src/workload/task_factory.cc" "src/workload/CMakeFiles/cortex_workload.dir/task_factory.cc.o" "gcc" "src/workload/CMakeFiles/cortex_workload.dir/task_factory.cc.o.d"
  "/root/repo/src/workload/topic_universe.cc" "src/workload/CMakeFiles/cortex_workload.dir/topic_universe.cc.o" "gcc" "src/workload/CMakeFiles/cortex_workload.dir/topic_universe.cc.o.d"
  "/root/repo/src/workload/trace_io.cc" "src/workload/CMakeFiles/cortex_workload.dir/trace_io.cc.o" "gcc" "src/workload/CMakeFiles/cortex_workload.dir/trace_io.cc.o.d"
  "/root/repo/src/workload/vocab.cc" "src/workload/CMakeFiles/cortex_workload.dir/vocab.cc.o" "gcc" "src/workload/CMakeFiles/cortex_workload.dir/vocab.cc.o.d"
  "/root/repo/src/workload/workload_stats.cc" "src/workload/CMakeFiles/cortex_workload.dir/workload_stats.cc.o" "gcc" "src/workload/CMakeFiles/cortex_workload.dir/workload_stats.cc.o.d"
  "/root/repo/src/workload/workloads.cc" "src/workload/CMakeFiles/cortex_workload.dir/workloads.cc.o" "gcc" "src/workload/CMakeFiles/cortex_workload.dir/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/llm/CMakeFiles/cortex_llm.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cortex_util.dir/DependInfo.cmake"
  "/root/repo/build/src/embedding/CMakeFiles/cortex_embedding.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
