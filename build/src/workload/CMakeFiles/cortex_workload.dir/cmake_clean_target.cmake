file(REMOVE_RECURSE
  "libcortex_workload.a"
)
