# Empty compiler generated dependencies file for cortex_sim.
# This may be replaced when dependencies are built.
