file(REMOVE_RECURSE
  "CMakeFiles/cortex_sim.dir/driver.cc.o"
  "CMakeFiles/cortex_sim.dir/driver.cc.o.d"
  "CMakeFiles/cortex_sim.dir/event_queue.cc.o"
  "CMakeFiles/cortex_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/cortex_sim.dir/metrics.cc.o"
  "CMakeFiles/cortex_sim.dir/metrics.cc.o.d"
  "CMakeFiles/cortex_sim.dir/trace_export.cc.o"
  "CMakeFiles/cortex_sim.dir/trace_export.cc.o.d"
  "libcortex_sim.a"
  "libcortex_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cortex_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
