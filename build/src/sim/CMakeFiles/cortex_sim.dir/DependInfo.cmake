
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/driver.cc" "src/sim/CMakeFiles/cortex_sim.dir/driver.cc.o" "gcc" "src/sim/CMakeFiles/cortex_sim.dir/driver.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/sim/CMakeFiles/cortex_sim.dir/event_queue.cc.o" "gcc" "src/sim/CMakeFiles/cortex_sim.dir/event_queue.cc.o.d"
  "/root/repo/src/sim/metrics.cc" "src/sim/CMakeFiles/cortex_sim.dir/metrics.cc.o" "gcc" "src/sim/CMakeFiles/cortex_sim.dir/metrics.cc.o.d"
  "/root/repo/src/sim/trace_export.cc" "src/sim/CMakeFiles/cortex_sim.dir/trace_export.cc.o" "gcc" "src/sim/CMakeFiles/cortex_sim.dir/trace_export.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gpu/CMakeFiles/cortex_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/llm/CMakeFiles/cortex_llm.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cortex_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cortex_util.dir/DependInfo.cmake"
  "/root/repo/build/src/embedding/CMakeFiles/cortex_embedding.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
