file(REMOVE_RECURSE
  "libcortex_sim.a"
)
