# Empty dependencies file for test_judger.
# This may be replaced when dependencies are built.
