file(REMOVE_RECURSE
  "CMakeFiles/test_judger.dir/test_judger.cc.o"
  "CMakeFiles/test_judger.dir/test_judger.cc.o.d"
  "test_judger"
  "test_judger.pdb"
  "test_judger[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_judger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
