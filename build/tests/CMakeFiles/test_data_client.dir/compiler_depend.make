# Empty compiler generated dependencies file for test_data_client.
# This may be replaced when dependencies are built.
