file(REMOVE_RECURSE
  "CMakeFiles/test_data_client.dir/test_data_client.cc.o"
  "CMakeFiles/test_data_client.dir/test_data_client.cc.o.d"
  "test_data_client"
  "test_data_client.pdb"
  "test_data_client[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_data_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
