file(REMOVE_RECURSE
  "CMakeFiles/test_table_flags.dir/test_table_flags.cc.o"
  "CMakeFiles/test_table_flags.dir/test_table_flags.cc.o.d"
  "test_table_flags"
  "test_table_flags.pdb"
  "test_table_flags[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_table_flags.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
