
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_model_spec.cc" "tests/CMakeFiles/test_model_spec.dir/test_model_spec.cc.o" "gcc" "tests/CMakeFiles/test_model_spec.dir/test_model_spec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cortex_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ann/CMakeFiles/cortex_ann.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cortex_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cortex_net.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/cortex_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/cortex_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/llm/CMakeFiles/cortex_llm.dir/DependInfo.cmake"
  "/root/repo/build/src/embedding/CMakeFiles/cortex_embedding.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cortex_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
