file(REMOVE_RECURSE
  "CMakeFiles/test_metrics_driver.dir/test_metrics_driver.cc.o"
  "CMakeFiles/test_metrics_driver.dir/test_metrics_driver.cc.o.d"
  "test_metrics_driver"
  "test_metrics_driver.pdb"
  "test_metrics_driver[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_metrics_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
