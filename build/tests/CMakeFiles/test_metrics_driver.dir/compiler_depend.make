# Empty compiler generated dependencies file for test_metrics_driver.
# This may be replaced when dependencies are built.
