file(REMOVE_RECURSE
  "CMakeFiles/test_ivf_index.dir/test_ivf_index.cc.o"
  "CMakeFiles/test_ivf_index.dir/test_ivf_index.cc.o.d"
  "test_ivf_index"
  "test_ivf_index.pdb"
  "test_ivf_index[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ivf_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
