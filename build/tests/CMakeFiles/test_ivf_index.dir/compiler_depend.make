# Empty compiler generated dependencies file for test_ivf_index.
# This may be replaced when dependencies are built.
