# Empty compiler generated dependencies file for test_recalibrator.
# This may be replaced when dependencies are built.
