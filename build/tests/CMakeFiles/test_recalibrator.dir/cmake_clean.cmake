file(REMOVE_RECURSE
  "CMakeFiles/test_recalibrator.dir/test_recalibrator.cc.o"
  "CMakeFiles/test_recalibrator.dir/test_recalibrator.cc.o.d"
  "test_recalibrator"
  "test_recalibrator.pdb"
  "test_recalibrator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_recalibrator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
