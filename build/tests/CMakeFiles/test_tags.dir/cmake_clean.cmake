file(REMOVE_RECURSE
  "CMakeFiles/test_tags.dir/test_tags.cc.o"
  "CMakeFiles/test_tags.dir/test_tags.cc.o.d"
  "test_tags"
  "test_tags.pdb"
  "test_tags[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tags.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
