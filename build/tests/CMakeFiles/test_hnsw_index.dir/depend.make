# Empty dependencies file for test_hnsw_index.
# This may be replaced when dependencies are built.
