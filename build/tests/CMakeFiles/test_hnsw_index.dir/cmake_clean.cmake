file(REMOVE_RECURSE
  "CMakeFiles/test_hnsw_index.dir/test_hnsw_index.cc.o"
  "CMakeFiles/test_hnsw_index.dir/test_hnsw_index.cc.o.d"
  "test_hnsw_index"
  "test_hnsw_index.pdb"
  "test_hnsw_index[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hnsw_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
