file(REMOVE_RECURSE
  "CMakeFiles/test_sine.dir/test_sine.cc.o"
  "CMakeFiles/test_sine.dir/test_sine.cc.o.d"
  "test_sine"
  "test_sine.pdb"
  "test_sine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
