# Empty compiler generated dependencies file for test_sine.
# This may be replaced when dependencies are built.
