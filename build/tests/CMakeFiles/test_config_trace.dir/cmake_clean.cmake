file(REMOVE_RECURSE
  "CMakeFiles/test_config_trace.dir/test_config_trace.cc.o"
  "CMakeFiles/test_config_trace.dir/test_config_trace.cc.o.d"
  "test_config_trace"
  "test_config_trace.pdb"
  "test_config_trace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_config_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
