# Empty compiler generated dependencies file for test_config_trace.
# This may be replaced when dependencies are built.
