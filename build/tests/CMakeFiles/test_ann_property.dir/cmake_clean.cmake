file(REMOVE_RECURSE
  "CMakeFiles/test_ann_property.dir/test_ann_property.cc.o"
  "CMakeFiles/test_ann_property.dir/test_ann_property.cc.o.d"
  "test_ann_property"
  "test_ann_property.pdb"
  "test_ann_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ann_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
