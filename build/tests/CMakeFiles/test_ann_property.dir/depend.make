# Empty dependencies file for test_ann_property.
# This may be replaced when dependencies are built.
