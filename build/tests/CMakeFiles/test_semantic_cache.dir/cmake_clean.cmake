file(REMOVE_RECURSE
  "CMakeFiles/test_semantic_cache.dir/test_semantic_cache.cc.o"
  "CMakeFiles/test_semantic_cache.dir/test_semantic_cache.cc.o.d"
  "test_semantic_cache"
  "test_semantic_cache.pdb"
  "test_semantic_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_semantic_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
