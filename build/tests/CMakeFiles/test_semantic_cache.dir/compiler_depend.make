# Empty compiler generated dependencies file for test_semantic_cache.
# This may be replaced when dependencies are built.
