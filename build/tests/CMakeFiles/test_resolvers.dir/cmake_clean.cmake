file(REMOVE_RECURSE
  "CMakeFiles/test_resolvers.dir/test_resolvers.cc.o"
  "CMakeFiles/test_resolvers.dir/test_resolvers.cc.o.d"
  "test_resolvers"
  "test_resolvers.pdb"
  "test_resolvers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_resolvers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
