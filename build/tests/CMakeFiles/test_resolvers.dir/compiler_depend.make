# Empty compiler generated dependencies file for test_resolvers.
# This may be replaced when dependencies are built.
