# Empty compiler generated dependencies file for test_exact_cache.
# This may be replaced when dependencies are built.
