file(REMOVE_RECURSE
  "CMakeFiles/test_exact_cache.dir/test_exact_cache.cc.o"
  "CMakeFiles/test_exact_cache.dir/test_exact_cache.cc.o.d"
  "test_exact_cache"
  "test_exact_cache.pdb"
  "test_exact_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exact_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
