# Empty dependencies file for test_sharded_cache.
# This may be replaced when dependencies are built.
