file(REMOVE_RECURSE
  "CMakeFiles/test_sharded_cache.dir/test_sharded_cache.cc.o"
  "CMakeFiles/test_sharded_cache.dir/test_sharded_cache.cc.o.d"
  "test_sharded_cache"
  "test_sharded_cache.pdb"
  "test_sharded_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sharded_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
