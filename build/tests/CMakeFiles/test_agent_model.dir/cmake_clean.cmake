file(REMOVE_RECURSE
  "CMakeFiles/test_agent_model.dir/test_agent_model.cc.o"
  "CMakeFiles/test_agent_model.dir/test_agent_model.cc.o.d"
  "test_agent_model"
  "test_agent_model.pdb"
  "test_agent_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_agent_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
