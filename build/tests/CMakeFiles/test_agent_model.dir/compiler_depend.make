# Empty compiler generated dependencies file for test_agent_model.
# This may be replaced when dependencies are built.
