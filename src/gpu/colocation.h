// ColocationSimulator: one (or two) GPUs serving the agent LLM and the
// judger/embedder side models (paper §4.4, Fig. 6).
//
// Combines three mechanisms:
//   1. static asymmetric compute partitioning (MPS): the agent and judger
//      BatchingServers hold fixed fractions of the device;
//   2. KV memory plan: static per-model partitions + unified dynamic pool;
//   3. priority-aware admission: judger work is deferrable — a judger call
//      that would need dynamic memory while agent work is in flight waits
//      until the agent frees the device.
#pragma once

#include <cstdint>

#include "gpu/batching_server.h"
#include "gpu/gpu_spec.h"
#include "gpu/memory_pool.h"

namespace cortex {

class ColocationSimulator {
 public:
  explicit ColocationSimulator(DeploymentConfig config = {});

  // Runs an agent turn arriving at `now`; returns its completion time.
  double RunAgentTurn(double now, std::size_t prompt_tokens,
                      std::size_t output_tokens);

  // Runs one judger validation (prefill-only, single output token).
  double RunJudgerCall(double now, std::size_t prompt_tokens);

  // Runs one embedding encode.
  double RunEmbedding(double now, std::size_t tokens);

  const DeploymentConfig& config() const noexcept { return config_; }
  int NumGpus() const noexcept { return config_.NumGpus(); }

  // GPU-seconds consumed so far across all devices (for cost accounting,
  // billed as wall-clock x device count by callers; this is busy time).
  double agent_busy_seconds() const noexcept { return agent_.busy_seconds(); }
  double judger_busy_seconds() const noexcept {
    return judger_.busy_seconds();
  }
  std::uint64_t judger_deferrals() const noexcept {
    return judger_deferrals_;
  }
  const BatchingServer& agent_server() const noexcept { return agent_; }
  const BatchingServer& judger_server() const noexcept { return judger_; }

 private:
  DeploymentConfig config_;
  BatchingServer agent_;
  BatchingServer judger_;
  KvMemoryPool memory_;
  std::uint64_t judger_deferrals_ = 0;
  double last_agent_completion_ = 0.0;
};

}  // namespace cortex
