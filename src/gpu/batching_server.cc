#include "gpu/batching_server.h"

#include <algorithm>

#include "util/check.h"

namespace cortex {

BatchingServer::BatchingServer(BatchingServerOptions options)
    : options_(options) {
  CHECK_GT(options_.compute_fraction, 0.0);
  CHECK_LE(options_.compute_fraction, 1.0);
  CHECK_GE(options_.max_batch, 1u);
}

void BatchingServer::Prune(double now) noexcept {
  completions_.erase(
      std::remove_if(completions_.begin(), completions_.end(),
                     [now](double t) { return t <= now; }),
      completions_.end());
}

std::size_t BatchingServer::InFlightAt(double now) const noexcept {
  return static_cast<std::size_t>(
      std::count_if(completions_.begin(), completions_.end(),
                    [now](double t) { return t > now; }));
}

DispatchResult BatchingServer::Dispatch(double now, double base_service_sec) {
  DCHECK_GE(base_service_sec, 0.0);
  Prune(now);

  DispatchResult r;
  double start = now;
  if (completions_.size() >= options_.max_batch) {
    // Queue until a slot frees: start at the k-th earliest completion where
    // k = (in-flight - max_batch + 1).
    std::vector<double> sorted = completions_;
    std::sort(sorted.begin(), sorted.end());
    const std::size_t k = sorted.size() - options_.max_batch;
    start = std::max(start, sorted[k]);
    // Requests that complete before `start` no longer occupy the batch.
    completions_.erase(
        std::remove_if(completions_.begin(), completions_.end(),
                       [start](double t) { return t <= start; }),
        completions_.end());
  }

  const std::size_t occupancy = completions_.size() + 1;
  const double slowdown =
      1.0 + options_.slowdown_alpha * static_cast<double>(occupancy - 1);
  const double service =
      base_service_sec / options_.compute_fraction * slowdown;

  r.start_time = start;
  r.completion_time = start + service;
  r.queue_delay = start - now;
  r.batch_occupancy = occupancy;
  completions_.push_back(r.completion_time);

  // Busy-time accounting: approximate the partition as busy from start to
  // completion for the marginal request, without double counting overlap.
  const double busy_from = std::max(start, last_completion_);
  if (r.completion_time > busy_from) {
    busy_seconds_ += r.completion_time - busy_from;
  }
  last_completion_ = std::max(last_completion_, r.completion_time);
  ++dispatched_;
  queue_delays_.Add(r.queue_delay);
  return r;
}

}  // namespace cortex
