#include "gpu/memory_pool.h"

#include <algorithm>

#include "util/check.h"

namespace cortex {

KvMemoryPool::KvMemoryPool(double agent_static_gb, double judger_static_gb,
                           double dynamic_gb)
    : dynamic_total_(dynamic_gb) {
  agent_.static_total = agent_static_gb;
  judger_.static_total = judger_static_gb;
}

bool KvMemoryPool::WouldUseDynamic(PoolClient client,
                                   double gb) const noexcept {
  const auto& s = State(client);
  return s.static_used + gb > s.static_total;
}

bool KvMemoryPool::TryReserve(PoolClient client, double gb) noexcept {
  DCHECK_GE(gb, 0.0);
  auto& s = State(client);
  const double static_room = s.static_total - s.static_used;
  const double from_static = std::min(gb, static_room);
  const double from_dynamic = gb - from_static;
  if (from_dynamic > dynamic_total_ - dynamic_used_) {
    ++rejections_;
    return false;
  }
  s.static_used += from_static;
  s.dynamic_used += from_dynamic;
  dynamic_used_ += from_dynamic;
  return true;
}

void KvMemoryPool::Release(PoolClient client, double gb) noexcept {
  auto& s = State(client);
  // Release dynamic first (LIFO of how we acquired).
  const double from_dynamic = std::min(gb, s.dynamic_used);
  s.dynamic_used -= from_dynamic;
  dynamic_used_ -= from_dynamic;
  s.static_used = std::max(0.0, s.static_used - (gb - from_dynamic));
}

double KvMemoryPool::static_free_gb(PoolClient client) const noexcept {
  const auto& s = State(client);
  return s.static_total - s.static_used;
}

double KvMemoryPool::used_gb(PoolClient client) const noexcept {
  const auto& s = State(client);
  return s.static_used + s.dynamic_used;
}

}  // namespace cortex
