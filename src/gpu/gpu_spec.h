// GPU hardware and deployment configuration for the co-location simulator
// (paper §4.4, §6.5, Table 7).
#pragma once

#include <cstddef>

#include "llm/model_spec.h"

namespace cortex {

struct GpuSpec {
  double memory_gb = 80.0;       // H100 SXM
  double dollars_per_hour = 1.49;

  static GpuSpec H100() { return {}; }
};

// How the agent and judger models are placed on hardware.
enum class PlacementMode {
  kColocated,     // one GPU, MPS-style static compute partition (the paper's
                  // design: e.g. 80% agent / 20% judger)
  kDedicated,     // two GPUs, each model gets a full device
  kAgentOnly,     // one GPU, no judger (vanilla / exact-match baselines)
};

struct DeploymentConfig {
  GpuSpec gpu = GpuSpec::H100();
  PlacementMode mode = PlacementMode::kColocated;
  ModelSpec agent = ModelSpec::Agent7B();
  ModelSpec judger = ModelSpec::Judger06B();
  ModelSpec embedder = ModelSpec::Embedder06B();

  // MPS static compute partition (used when colocated).
  double agent_compute_fraction = 0.8;
  double judger_compute_fraction = 0.2;
  // LLM decode is memory-bandwidth bound, so capping the SM share costs
  // less than linearly: effective speed = share^exponent.  0.35 reproduces
  // Table 7's observation that an 80% partition retains ~94% of dedicated
  // throughput while a 20% judger slice stays serviceable.
  double mps_efficiency_exponent = 0.35;

  // Continuous-batching limits per partition.
  std::size_t agent_max_batch = 16;
  std::size_t judger_max_batch = 8;
  // Per-extra-request throughput degradation inside a batch (decode is
  // memory-bandwidth bound, so batching is cheap but not free).
  double batch_slowdown_alpha = 0.06;

  // Memory plan (GB): model weights are resident; the rest is KV space
  // split into static per-model partitions plus a unified dynamic pool
  // managed by the priority-aware admission controller.
  double agent_weights_gb = 15.0;   // ~7B at fp16 + activations
  double judger_weights_gb = 1.4;   // ~0.6B
  double agent_static_kv_gb = 40.0;
  double judger_static_kv_gb = 2.0;
  double dynamic_pool_gb = 12.0;

  int NumGpus() const noexcept {
    return mode == PlacementMode::kDedicated ? 2 : 1;
  }
  double EffectiveShare(double share) const noexcept;
  double AgentFraction() const noexcept {
    return mode == PlacementMode::kColocated
               ? EffectiveShare(agent_compute_fraction)
               : 1.0;
  }
  double JudgerFraction() const noexcept {
    return mode == PlacementMode::kColocated
               ? EffectiveShare(judger_compute_fraction)
               : 1.0;
  }

  static DeploymentConfig Colocated80_20();
  static DeploymentConfig DedicatedTwoGpu();
  static DeploymentConfig AgentOnly();
};

}  // namespace cortex
