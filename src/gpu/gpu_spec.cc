#include "gpu/gpu_spec.h"

#include <algorithm>
#include <cmath>

namespace cortex {

double DeploymentConfig::EffectiveShare(double share) const noexcept {
  share = std::clamp(share, 0.01, 1.0);
  return std::pow(share, mps_efficiency_exponent);
}

DeploymentConfig DeploymentConfig::Colocated80_20() {
  DeploymentConfig c;
  c.mode = PlacementMode::kColocated;
  c.agent_compute_fraction = 0.8;
  c.judger_compute_fraction = 0.2;
  return c;
}

DeploymentConfig DeploymentConfig::DedicatedTwoGpu() {
  DeploymentConfig c;
  c.mode = PlacementMode::kDedicated;
  return c;
}

DeploymentConfig DeploymentConfig::AgentOnly() {
  DeploymentConfig c;
  c.mode = PlacementMode::kAgentOnly;
  return c;
}

}  // namespace cortex
