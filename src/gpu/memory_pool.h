// KvMemoryPool: the two-tier KV-cache memory plan of paper §4.4 / Fig. 6.
//
// Each model owns a static KV partition sized for its common case; a
// unified dynamic pool absorbs overflow.  The priority-aware admission
// controller grants the agent dynamic memory unconditionally, while judger
// overflow is admitted only when the pool has headroom — judger work is
// deferrable, agent work is latency-critical.
#pragma once

#include <cstdint>

namespace cortex {

enum class PoolClient { kAgent, kJudger };

class KvMemoryPool {
 public:
  KvMemoryPool(double agent_static_gb, double judger_static_gb,
               double dynamic_gb);

  // Attempts to reserve `gb` for the client.  Static partition first, then
  // the dynamic pool.  Returns false (reserving nothing) if neither fits.
  bool TryReserve(PoolClient client, double gb) noexcept;
  // Releases a previous reservation of exactly `gb`.
  void Release(PoolClient client, double gb) noexcept;

  // Would a reservation of `gb` need to dip into the dynamic pool?
  bool WouldUseDynamic(PoolClient client, double gb) const noexcept;
  double dynamic_free_gb() const noexcept {
    return dynamic_total_ - dynamic_used_;
  }
  double static_free_gb(PoolClient client) const noexcept;
  double used_gb(PoolClient client) const noexcept;

  std::uint64_t rejections() const noexcept { return rejections_; }

 private:
  struct ClientState {
    double static_total = 0.0;
    double static_used = 0.0;
    double dynamic_used = 0.0;
  };
  ClientState& State(PoolClient c) noexcept {
    return c == PoolClient::kAgent ? agent_ : judger_;
  }
  const ClientState& State(PoolClient c) const noexcept {
    return c == PoolClient::kAgent ? agent_ : judger_;
  }

  ClientState agent_;
  ClientState judger_;
  double dynamic_total_;
  double dynamic_used_ = 0.0;
  std::uint64_t rejections_ = 0;
};

}  // namespace cortex
