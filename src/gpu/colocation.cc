#include "gpu/colocation.h"

#include <algorithm>

#include "llm/model_spec.h"

namespace cortex {

namespace {

BatchingServerOptions AgentServerOptions(const DeploymentConfig& c) {
  return {.compute_fraction = c.AgentFraction(),
          .max_batch = c.agent_max_batch,
          .slowdown_alpha = c.batch_slowdown_alpha};
}

BatchingServerOptions JudgerServerOptions(const DeploymentConfig& c) {
  return {.compute_fraction = c.JudgerFraction(),
          .max_batch = c.judger_max_batch,
          .slowdown_alpha = c.batch_slowdown_alpha};
}

}  // namespace

ColocationSimulator::ColocationSimulator(DeploymentConfig config)
    : config_(config),
      agent_(AgentServerOptions(config)),
      judger_(JudgerServerOptions(config)),
      memory_(config.agent_static_kv_gb, config.judger_static_kv_gb,
              config.dynamic_pool_gb) {}

double ColocationSimulator::RunAgentTurn(double now, std::size_t prompt_tokens,
                                         std::size_t output_tokens) {
  const double base =
      InferenceSeconds(config_.agent, prompt_tokens, output_tokens, 1.0);
  const double kv_gb =
      KvBytes(config_.agent, prompt_tokens + output_tokens) / (1024.0 * 1024.0 * 1024.0);
  // The agent has absolute priority: it reserves memory unconditionally
  // (the admission controller sheds judger load, never agent load).  If the
  // pool is truly exhausted the reservation falls through to static
  // accounting — we still run, as vLLM would after preempting background
  // work.
  const bool reserved = memory_.TryReserve(PoolClient::kAgent, kv_gb);
  const DispatchResult r = agent_.Dispatch(now, base);
  if (reserved) memory_.Release(PoolClient::kAgent, kv_gb);
  last_agent_completion_ = std::max(last_agent_completion_, r.completion_time);
  return r.completion_time;
}

double ColocationSimulator::RunJudgerCall(double now,
                                          std::size_t prompt_tokens) {
  const double base = InferenceSeconds(config_.judger, prompt_tokens, 1, 1.0);
  double dispatch_at = now;
  if (config_.mode == PlacementMode::kColocated) {
    const double kv_gb = KvBytes(config_.judger, prompt_tokens) /
                         (1024.0 * 1024.0 * 1024.0);
    // Priority guardrail: if this call would dip into the dynamic pool
    // while agent work is in flight, defer it behind the agent's current
    // batch (paper: the scheduler services Q_A exhaustively and admits Q_J
    // only when the agent queue is empty or lacks memory pressure).
    if (memory_.WouldUseDynamic(PoolClient::kJudger, kv_gb) &&
        agent_.InFlightAt(now) > 0) {
      dispatch_at = std::max(dispatch_at, last_agent_completion_);
      ++judger_deferrals_;
    }
    const bool reserved = memory_.TryReserve(PoolClient::kJudger, kv_gb);
    const DispatchResult r = judger_.Dispatch(dispatch_at, base);
    if (reserved) memory_.Release(PoolClient::kJudger, kv_gb);
    return r.completion_time;
  }
  return judger_.Dispatch(dispatch_at, base).completion_time;
}

double ColocationSimulator::RunEmbedding(double now, std::size_t tokens) {
  // The embedder shares the judger's partition (both are the 0.6B side
  // models); encoding is prefill-only.
  const double base = InferenceSeconds(config_.embedder, tokens, 0, 1.0);
  return judger_.Dispatch(now, base).completion_time;
}

}  // namespace cortex
