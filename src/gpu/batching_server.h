// BatchingServer: a continuous-batching inference partition.
//
// Models a vLLM-style engine holding a (possibly fractional, under MPS) slice
// of a GPU.  Up to `max_batch` requests run concurrently; each additional
// in-flight request degrades per-request token rate slightly (decode is
// bandwidth-bound, so batching is cheap but not free).  Requests beyond the
// batch limit queue FIFO.  Arrival times must be non-decreasing — the
// discrete-event simulation guarantees this.
#pragma once

#include <cstdint>
#include <vector>

#include "util/stats.h"

namespace cortex {

struct BatchingServerOptions {
  double compute_fraction = 1.0;  // MPS share of the device
  std::size_t max_batch = 16;
  double slowdown_alpha = 0.06;   // per-extra-request service inflation
};

struct DispatchResult {
  double start_time = 0.0;       // when execution began (after queueing)
  double completion_time = 0.0;  // when the request finished
  double queue_delay = 0.0;      // start_time - arrival
  std::size_t batch_occupancy = 0;  // in-flight count at start (incl. this)
};

class BatchingServer {
 public:
  explicit BatchingServer(BatchingServerOptions options = {});

  // Dispatches a request arriving at `now` whose service time at an empty
  // server and full device would be `base_service_sec`.  Returns timing.
  DispatchResult Dispatch(double now, double base_service_sec);

  // In-flight requests at time `now` (completions before `now` are dropped).
  std::size_t InFlightAt(double now) const noexcept;

  double busy_seconds() const noexcept { return busy_seconds_; }
  std::uint64_t dispatched() const noexcept { return dispatched_; }
  const Histogram& queue_delays() const noexcept { return queue_delays_; }

  const BatchingServerOptions& options() const noexcept { return options_; }

 private:
  void Prune(double now) noexcept;

  BatchingServerOptions options_;
  // Completion times of in-flight requests, unordered (small: <= max_batch
  // plus queued tail).
  std::vector<double> completions_;
  double busy_seconds_ = 0.0;
  double last_completion_ = 0.0;
  std::uint64_t dispatched_ = 0;
  Histogram queue_delays_;
};

}  // namespace cortex
