// Token-bucket rate limiter modelling commercial API quotas (paper §2.2:
// Google Cloud Search caps at 100 queries/minute and throttles beyond it).
// Operates on simulation time passed in by the caller.
//
// NOT internally synchronized: concurrent users wrap it in a mutex and
// annotate the instance GUARDED_BY that mutex (CortexServer::bucket_ is
// the canonical example).
#pragma once

#include <cstdint>

#include "telemetry/metrics.h"

namespace cortex {

class TokenBucket {
 public:
  // rate: sustained tokens per second; burst: bucket capacity.
  TokenBucket(double rate_per_sec, double burst);

  // Attempts to take one token at time `now` (seconds).  Returns true and
  // consumes a token on success.  `now` must be monotonically non-decreasing
  // across calls.
  bool TryAcquire(double now) noexcept;

  // Earliest time >= now at which a token would be available (does not
  // consume).  Equals `now` if one is available immediately.
  double NextAvailable(double now) const noexcept;

  // Current token count after refilling to `now` (observational).
  double TokensAt(double now) const noexcept;

  double rate() const noexcept { return rate_; }
  double burst() const noexcept { return burst_; }

  std::uint64_t accepted() const noexcept { return accepted_; }
  std::uint64_t rejected() const noexcept { return rejected_; }

  // Optional live telemetry: `tokens` mirrors the bucket level after each
  // TryAcquire, `throttled` counts rejections.  Either may be null.  Called
  // under the same external lock as TryAcquire; the instruments themselves
  // are thread-safe.
  void BindTelemetry(telemetry::Gauge* tokens,
                     telemetry::Counter* throttled) noexcept {
    tokens_gauge_ = tokens;
    throttled_counter_ = throttled;
  }

 private:
  void Refill(double now) noexcept;

  double rate_;
  double burst_;
  double tokens_;
  double last_refill_ = 0.0;
  std::uint64_t accepted_ = 0;
  std::uint64_t rejected_ = 0;
  telemetry::Gauge* tokens_gauge_ = nullptr;
  telemetry::Counter* throttled_counter_ = nullptr;
};

// An "unlimited" limiter for services without quotas.
TokenBucket UnlimitedBucket();

}  // namespace cortex
