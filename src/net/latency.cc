#include "net/latency.h"

#include <algorithm>
#include <cmath>

namespace cortex {

double LatencyDistribution::Sample(Rng& rng) const noexcept {
  const double tail = rng.LogNormal(params_.lognorm_mu, params_.lognorm_sigma);
  return std::clamp(params_.base_sec + tail, params_.min_sec, params_.max_sec);
}

double LatencyDistribution::mean_estimate() const noexcept {
  // E[lognormal] = exp(mu + sigma^2/2); clamping ignored (small effect).
  return params_.base_sec +
         std::exp(params_.lognorm_mu +
                  params_.lognorm_sigma * params_.lognorm_sigma / 2.0);
}

LatencyDistribution LatencyDistribution::CrossRegionSearchApi() {
  // base 0.30 s + lognormal tail with median ~85 ms -> mean ~0.40 s,
  // p99 ~0.55 s: the paper's 300-500 ms band.
  return LatencyDistribution({.base_sec = 0.30,
                              .lognorm_mu = -2.46,
                              .lognorm_sigma = 0.55,
                              .min_sec = 0.30,
                              .max_sec = 2.0});
}

LatencyDistribution LatencyDistribution::SelfHostedRag() {
  // Tight 300 ms average round trip.
  return LatencyDistribution({.base_sec = 0.27,
                              .lognorm_mu = -3.6,
                              .lognorm_sigma = 0.4,
                              .min_sec = 0.25,
                              .max_sec = 1.0});
}

LatencyDistribution LatencyDistribution::LocalService() {
  return LatencyDistribution({.base_sec = 0.004,
                              .lognorm_mu = -7.0,
                              .lognorm_sigma = 0.5,
                              .min_sec = 0.002,
                              .max_sec = 0.05});
}

}  // namespace cortex
