#include "net/remote_service.h"

#include <algorithm>
#include <cmath>

namespace cortex {

double RetryPolicy::BackoffSeconds(std::size_t attempt,
                                   Rng& rng) const noexcept {
  // attempt is 1-based: backoff after the attempt-th failure.
  const double base =
      std::min(initial_backoff_sec *
                   std::pow(backoff_multiplier,
                            static_cast<double>(attempt > 0 ? attempt - 1 : 0)),
               max_backoff_sec);
  const double jitter = base * jitter_fraction;
  return std::max(0.0, base + rng.Uniform(-jitter, jitter));
}

RemoteDataService::RemoteDataService(RemoteServiceOptions options)
    : options_(options),
      bucket_(options.rate_limit_per_min > 0.0
                  ? TokenBucket(options.rate_limit_per_min / 60.0,
                                options.burst)
                  : UnlimitedBucket()),
      limiter_enabled_(options.rate_limit_per_min > 0.0),
      rng_(options.seed) {}

FetchResult RemoteDataService::Fetch(double now, std::string_view /*query*/,
                                     std::string ground_truth_info,
                                     double cost_scale,
                                     double latency_scale) {
  FetchResult result;
  result.start_time = now;
  double t = now;
  for (std::size_t attempt = 1; attempt <= options_.retry.max_attempts;
       ++attempt) {
    result.attempts = attempt;
    ++total_calls_;
    if (bucket_.TryAcquire(t)) {
      // Only admitted requests are billed; throttled 429s are free.
      result.cost_dollars += options_.pricing.PerCall() * cost_scale;
      t += options_.latency.Sample(rng_) * latency_scale;
      if (rng_.Bernoulli(options_.transient_failure_probability)) {
        // Injected 5xx: the round trip was paid, the response is useless;
        // back off and retry like any other transient error.
        ++total_transient_failures_;
        ++total_retries_;
        t += options_.retry.BackoffSeconds(attempt, rng_);
        continue;
      }
      result.completion_time = t;
      result.success = true;
      result.info = std::move(ground_truth_info);
      break;
    }
    // Throttled: fast 429, then back off before retrying.
    ++total_retries_;
    t += options_.rejection_rtt_sec +
         options_.retry.BackoffSeconds(attempt, rng_);
  }
  if (!result.success) {
    result.completion_time = t;
  }
  result.retries = result.attempts - 1;
  total_cost_ += result.cost_dollars;
  return result;
}

void RemoteDataService::ResetCounters() noexcept {
  total_calls_ = 0;
  total_retries_ = 0;
  total_cost_ = 0.0;
}

RemoteServiceOptions RemoteDataService::GoogleSearchApi() {
  RemoteServiceOptions o;
  o.latency = LatencyDistribution::CrossRegionSearchApi();
  o.pricing = GoogleSearchPricing();
  o.rate_limit_per_min = 100.0;
  return o;
}

RemoteServiceOptions RemoteDataService::SelfHostedRag(bool rate_limited) {
  RemoteServiceOptions o;
  o.latency = LatencyDistribution::SelfHostedRag();
  o.pricing = SelfHostedPricing();
  o.rate_limit_per_min = rate_limited ? 100.0 : -1.0;
  return o;
}

}  // namespace cortex
