// Wide-area latency models for the remote data services (paper §2.2/§6.1:
// cross-region tool calls cost 300-500 ms end-to-end; the self-hosted RAG
// backend averages 300 ms).
#pragma once

#include "util/rng.h"

namespace cortex {

// A shifted log-normal: base one-way floor plus a heavy-ish tail, clamped
// to [min, max].  Parameterised to match published inter-region RTT shapes.
class LatencyDistribution {
 public:
  struct Params {
    double base_sec = 0.25;    // propagation + service floor
    double lognorm_mu = -3.0;  // tail component: exp(mu) ~ median extra
    double lognorm_sigma = 0.6;
    double min_sec = 0.05;
    double max_sec = 5.0;
  };

  explicit LatencyDistribution(Params params) : params_(params) {}

  double Sample(Rng& rng) const noexcept;
  double mean_estimate() const noexcept;
  const Params& params() const noexcept { return params_; }

  // Google Cloud Search API from another region: 300-500 ms typical.
  static LatencyDistribution CrossRegionSearchApi();
  // Self-deployed FAISS RAG service, ~300 ms average round trip.
  static LatencyDistribution SelfHostedRag();
  // Same-region/local service for ablations (~5 ms).
  static LatencyDistribution LocalService();

 private:
  Params params_;
};

}  // namespace cortex
