#include "net/rate_limiter.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace cortex {

TokenBucket::TokenBucket(double rate_per_sec, double burst)
    : rate_(rate_per_sec), burst_(burst), tokens_(burst) {
  CHECK_GT(rate_per_sec, 0.0);
  CHECK_GE(burst, 1.0);
}

void TokenBucket::Refill(double now) noexcept {
  if (now <= last_refill_) return;
  tokens_ = std::min(burst_, tokens_ + (now - last_refill_) * rate_);
  last_refill_ = now;
}

bool TokenBucket::TryAcquire(double now) noexcept {
  Refill(now);
  bool acquired = false;
  if (tokens_ >= 1.0) {
    tokens_ -= 1.0;
    ++accepted_;
    acquired = true;
  } else {
    ++rejected_;
    if (throttled_counter_ != nullptr) throttled_counter_->Inc();
  }
  if (tokens_gauge_ != nullptr) tokens_gauge_->Set(tokens_);
  return acquired;
}

double TokenBucket::NextAvailable(double now) const noexcept {
  // Compute without mutating: tokens after refill at `now`.
  const double tokens =
      std::min(burst_, tokens_ + std::max(0.0, now - last_refill_) * rate_);
  if (tokens >= 1.0) return now;
  return now + (1.0 - tokens) / rate_;
}

double TokenBucket::TokensAt(double now) const noexcept {
  return std::min(burst_, tokens_ + std::max(0.0, now - last_refill_) * rate_);
}

TokenBucket UnlimitedBucket() {
  return TokenBucket(std::numeric_limits<double>::max() / 4.0, 1e9);
}

}  // namespace cortex
