// RemoteDataService: the simulated cross-region knowledge source.
//
// Stands in for the Google Cloud Search API / self-hosted RAG backend of
// the paper's testbed.  Composes a WAN latency distribution, a token-bucket
// rate limiter (throttled calls fail fast and are retried with exponential
// backoff — the paper's 25% retry ratio under load emerges from this), and
// per-call billing.  Because the service is simulated, the *content* of a
// response is supplied by the workload's ground truth; the service decides
// only when the response arrives and what it costs.
#pragma once

#include <cstdint>
#include <string>

#include "net/cost_model.h"
#include "net/latency.h"
#include "net/rate_limiter.h"
#include "util/rng.h"

namespace cortex {

struct RetryPolicy {
  // Clients keep retrying under throttling (requests eventually succeed;
  // the cost shows up as queueing latency, not failures — §6.2's note that
  // absolute latencies exceed raw RTTs under rate limits).  The ceiling
  // exists only to bound pathological runs.
  std::size_t max_attempts = 256;
  double initial_backoff_sec = 0.5;
  double backoff_multiplier = 2.0;
  double max_backoff_sec = 8.0;
  double jitter_fraction = 0.25;  // +/- uniform jitter on each backoff

  double BackoffSeconds(std::size_t attempt, Rng& rng) const noexcept;
};

struct FetchResult {
  std::string info;           // the retrieved knowledge (ground truth text)
  double start_time = 0.0;    // when the first attempt was issued
  double completion_time = 0; // when the final response arrived
  std::size_t attempts = 0;   // total attempts (1 == no retries)
  std::size_t retries = 0;    // attempts - 1, throttled or failed tries
  bool success = false;       // false if max_attempts exhausted
  double cost_dollars = 0.0;  // billed API fees for all attempts

  double Latency() const noexcept { return completion_time - start_time; }
};

struct RemoteServiceOptions {
  LatencyDistribution latency = LatencyDistribution::CrossRegionSearchApi();
  ApiPricing pricing = GoogleSearchPricing();
  // Rate limit; <= 0 disables limiting entirely.
  double rate_limit_per_min = 100.0;
  double burst = 10.0;
  RetryPolicy retry;
  // Latency of a throttled rejection (fast 429 response).
  double rejection_rtt_sec = 0.08;
  // Transient failure injection: probability an admitted request dies with
  // a 5xx after the full round trip (and is retried like a throttle).
  double transient_failure_probability = 0.0;
  std::uint64_t seed = 99;
};

class RemoteDataService {
 public:
  explicit RemoteDataService(RemoteServiceOptions options = {});

  // Simulates a blocking fetch starting at `now`.  `ground_truth_info` is
  // the content this (simulated) service would return for the query.
  // `cost_scale`/`latency_scale` model per-query heterogeneity (premium
  // APIs, response-length-dependent service time).
  FetchResult Fetch(double now, std::string_view query,
                    std::string ground_truth_info, double cost_scale = 1.0,
                    double latency_scale = 1.0);

  // Running totals across all fetches.
  std::uint64_t total_calls() const noexcept { return total_calls_; }
  std::uint64_t total_retries() const noexcept { return total_retries_; }
  std::uint64_t total_transient_failures() const noexcept {
    return total_transient_failures_;
  }
  double total_cost_dollars() const noexcept { return total_cost_; }
  double RetryRatio() const noexcept {
    return total_calls_ ? static_cast<double>(total_retries_) /
                              static_cast<double>(total_calls_)
                        : 0.0;
  }

  bool rate_limited() const noexcept { return limiter_enabled_; }
  // Tokens currently available in the quota bucket (infinite-ish when the
  // limiter is disabled).  Lets clients shed optional traffic (prefetch)
  // when quota is scarce.
  double AvailableQuota(double now) const noexcept {
    return bucket_.TokensAt(now);
  }
  const RemoteServiceOptions& options() const noexcept { return options_; }

  void ResetCounters() noexcept;

  // Presets mirroring the paper's two testbeds.
  static RemoteServiceOptions GoogleSearchApi();
  static RemoteServiceOptions SelfHostedRag(bool rate_limited = false);

 private:
  RemoteServiceOptions options_;
  TokenBucket bucket_;
  bool limiter_enabled_;
  Rng rng_;
  std::uint64_t total_calls_ = 0;
  std::uint64_t total_retries_ = 0;
  std::uint64_t total_transient_failures_ = 0;
  double total_cost_ = 0.0;
};

}  // namespace cortex
