// Monetary cost accounting (paper Table 1, §2.2, §6.5).
//
// Two cost streams: per-call remote-API fees and GPU-hours.  The bench
// harnesses use this to regenerate Table 1 (price list), the §2.2 headline
// arithmetic, and Table 5 (cost/performance across configurations).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cortex {

struct ApiPricing {
  std::string provider;
  std::string operation;
  double dollars_per_1k_calls = 0.0;

  double PerCall() const noexcept { return dollars_per_1k_calls / 1000.0; }
};

// The paper's Table 1 price list.
std::vector<ApiPricing> StandardApiPricing();

// Google Search API: $5 per 1k requests.
ApiPricing GoogleSearchPricing();
// Self-hosted RAG service: no per-call fee (GPU cost is tracked separately).
ApiPricing SelfHostedPricing();

// H100 rental, $1.49/hour (paper §2.2, Hyperbolic pricing).
inline constexpr double kGpuDollarsPerHour = 1.49;

class CostTracker {
 public:
  void AddApiCall(const ApiPricing& pricing, std::uint64_t calls = 1) {
    api_calls_ += calls;
    api_dollars_ += pricing.PerCall() * static_cast<double>(calls);
  }
  void AddGpuSeconds(double seconds, double num_gpus = 1.0) {
    gpu_seconds_ += seconds * num_gpus;
  }

  std::uint64_t api_calls() const noexcept { return api_calls_; }
  double api_dollars() const noexcept { return api_dollars_; }
  double gpu_seconds() const noexcept { return gpu_seconds_; }
  double gpu_dollars() const noexcept {
    return gpu_seconds_ / 3600.0 * kGpuDollarsPerHour;
  }
  double total_dollars() const noexcept {
    return api_dollars() + gpu_dollars();
  }

  void Reset() { *this = CostTracker{}; }

 private:
  std::uint64_t api_calls_ = 0;
  double api_dollars_ = 0.0;
  double gpu_seconds_ = 0.0;
};

}  // namespace cortex
