#include "net/cost_model.h"

namespace cortex {

std::vector<ApiPricing> StandardApiPricing() {
  return {
      {"Google", "Search API", 5.0},
      {"OpenAI", "Web Search Preview", 25.0},
      {"OpenAI", "Web Search", 10.0},
  };
}

ApiPricing GoogleSearchPricing() { return {"Google", "Search API", 5.0}; }

ApiPricing SelfHostedPricing() { return {"Self-hosted", "RAG", 0.0}; }

}  // namespace cortex
