// Builds AgentTasks (scripted think->act->observe trajectories) from topics.
#pragma once

#include <span>

#include "llm/agent_model.h"
#include "util/rng.h"
#include "workload/topic_universe.h"

namespace cortex {

struct TaskFactoryOptions {
  double base_correctness = 0.78;
};

// One task whose i-th tool step asks for topics[i], using a paraphrase
// chosen by `rng`.  Registering the queries with the oracle is the
// caller's responsibility (done once per universe via
// RegisterAllParaphrases).
AgentTask MakeSearchTask(std::uint64_t task_id, const TopicUniverse& universe,
                         std::span<const std::uint64_t> topic_ids, Rng& rng,
                         const TaskFactoryOptions& options = {});

// A coding-agent task resolving a GitHub-style issue that needs the given
// files (topics).  Phrasing uses file-request templates.
AgentTask MakeCodingTask(std::uint64_t task_id, const TopicUniverse& universe,
                         std::span<const std::uint64_t> file_topic_ids,
                         Rng& rng, const TaskFactoryOptions& options = {});

}  // namespace cortex
