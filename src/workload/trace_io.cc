#include "workload/trace_io.h"

#include <fstream>
#include <ostream>
#include <stdexcept>

namespace cortex {

namespace {

void WriteU32(std::ostream& out, std::uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void WriteU64(std::ostream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void WriteF64(std::ostream& out, double v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void WriteString(std::ostream& out, const std::string& s) {
  WriteU64(out, s.size());
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::uint32_t ReadU32(std::istream& in) {
  std::uint32_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}
std::uint64_t ReadU64(std::istream& in) {
  std::uint64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}
double ReadF64(std::istream& in) {
  double v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}
std::string ReadString(std::istream& in) {
  const auto size = ReadU64(in);
  if (size > (1ULL << 30)) {
    throw std::runtime_error("trace: implausible string length");
  }
  std::string s(size, '\0');
  in.read(s.data(), static_cast<std::streamsize>(size));
  return s;
}

void CheckStream(const std::ios& stream, const char* what) {
  if (!stream.good()) {
    throw std::runtime_error(std::string("trace: stream failure while ") +
                             what);
  }
}

}  // namespace

void SaveWorkloadTrace(const WorkloadBundle& bundle, std::ostream& out) {
  WriteU32(out, kTraceMagic);
  WriteU32(out, kTraceVersion);
  WriteString(out, bundle.name);

  // --- Universe ---
  WriteU64(out, bundle.universe->size());
  for (const auto& t : bundle.universe->topics()) {
    WriteString(out, t.entity);
    WriteString(out, t.aspect);
    WriteString(out, t.qualifier);
    WriteF64(out, t.staticity);
    WriteString(out, t.answer);
    WriteF64(out, t.fetch_cost_scale);
    WriteF64(out, t.fetch_latency_scale);
    WriteU64(out, t.trap_of ? *t.trap_of + 1 : 0);  // 0 = none
    WriteU64(out, t.next_topic);
    WriteU64(out, t.paraphrases.size());
    for (const auto& p : t.paraphrases) WriteString(out, p);
  }

  // --- Tasks ---
  WriteU64(out, bundle.tasks.size());
  for (const auto& task : bundle.tasks) {
    WriteU64(out, task.id);
    WriteString(out, task.description);
    WriteString(out, task.final_think);
    WriteString(out, task.final_answer);
    WriteF64(out, task.base_correctness);
    WriteU64(out, task.steps.size());
    for (const auto& step : task.steps) {
      WriteString(out, step.think);
      WriteString(out, step.query);
      WriteString(out, step.expected_info);
    }
  }

  // --- Arrivals ---
  WriteU64(out, bundle.arrivals.size());
  for (double t : bundle.arrivals) WriteF64(out, t);

  CheckStream(out, "writing");
}

void SaveWorkloadTraceFile(const WorkloadBundle& bundle,
                           const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("trace: cannot open " + path);
  SaveWorkloadTrace(bundle, out);
}

WorkloadBundle LoadWorkloadTrace(std::istream& in) {
  if (ReadU32(in) != kTraceMagic) {
    throw std::runtime_error("trace: bad magic");
  }
  if (const auto version = ReadU32(in); version != kTraceVersion) {
    throw std::runtime_error("trace: unsupported version " +
                             std::to_string(version));
  }
  WorkloadBundle bundle;
  bundle.name = ReadString(in);

  const auto num_topics = ReadU64(in);
  if (num_topics > (1ULL << 24)) {
    throw std::runtime_error("trace: implausible topic count");
  }
  std::vector<Topic> topics;
  topics.reserve(num_topics);
  for (std::uint64_t i = 0; i < num_topics; ++i) {
    Topic t;
    t.id = i;
    t.entity = ReadString(in);
    t.aspect = ReadString(in);
    t.qualifier = ReadString(in);
    t.staticity = ReadF64(in);
    t.answer = ReadString(in);
    t.fetch_cost_scale = ReadF64(in);
    t.fetch_latency_scale = ReadF64(in);
    if (const auto trap = ReadU64(in); trap != 0) t.trap_of = trap - 1;
    t.next_topic = ReadU64(in);
    const auto num_paraphrases = ReadU64(in);
    if (num_paraphrases > (1ULL << 16)) {
      throw std::runtime_error("trace: implausible paraphrase count");
    }
    t.paraphrases.reserve(num_paraphrases);
    for (std::uint64_t p = 0; p < num_paraphrases; ++p) {
      t.paraphrases.push_back(ReadString(in));
    }
    CheckStream(in, "reading topic");
    topics.push_back(std::move(t));
  }
  bundle.universe = std::make_shared<TopicUniverse>(std::move(topics));
  bundle.oracle = std::make_shared<GroundTruthOracle>(bundle.universe.get());
  RegisterAllParaphrases(*bundle.oracle, *bundle.universe);

  const auto num_tasks = ReadU64(in);
  if (num_tasks > (1ULL << 28)) {
    throw std::runtime_error("trace: implausible task count");
  }
  bundle.tasks.reserve(num_tasks);
  for (std::uint64_t i = 0; i < num_tasks; ++i) {
    AgentTask task;
    task.id = ReadU64(in);
    task.description = ReadString(in);
    task.final_think = ReadString(in);
    task.final_answer = ReadString(in);
    task.base_correctness = ReadF64(in);
    const auto num_steps = ReadU64(in);
    if (num_steps > (1ULL << 16)) {
      throw std::runtime_error("trace: implausible step count");
    }
    task.steps.reserve(num_steps);
    for (std::uint64_t s = 0; s < num_steps; ++s) {
      ToolStep step;
      step.think = ReadString(in);
      step.query = ReadString(in);
      step.expected_info = ReadString(in);
      task.steps.push_back(std::move(step));
    }
    CheckStream(in, "reading task");
    bundle.tasks.push_back(std::move(task));
  }

  const auto num_arrivals = ReadU64(in);
  if (num_arrivals > (1ULL << 28)) {
    throw std::runtime_error("trace: implausible arrival count");
  }
  bundle.arrivals.reserve(num_arrivals);
  for (std::uint64_t i = 0; i < num_arrivals; ++i) {
    bundle.arrivals.push_back(ReadF64(in));
  }
  CheckStream(in, "reading arrivals");
  return bundle;
}

WorkloadBundle LoadWorkloadTraceFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("trace: cannot open " + path);
  return LoadWorkloadTrace(in);
}

}  // namespace cortex
