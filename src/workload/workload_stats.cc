#include "workload/workload_stats.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "util/stats.h"

namespace cortex {

double PopularityStats::HeadShare(std::size_t k) const noexcept {
  if (total_queries == 0) return 0.0;
  std::size_t head = 0;
  for (std::size_t i = 0; i < std::min(k, ranked.size()); ++i) {
    head += ranked[i].second;
  }
  return static_cast<double>(head) / static_cast<double>(total_queries);
}

PopularityStats ComputePopularity(const WorkloadBundle& bundle) {
  PopularityStats stats;
  std::unordered_map<std::uint64_t, std::size_t> counts;
  for (const auto& task : bundle.tasks) {
    for (const auto& step : task.steps) {
      const auto topic = bundle.oracle->TopicOf(step.query);
      if (topic) {
        ++counts[*topic];
        ++stats.total_queries;
      }
    }
  }
  stats.ranked.assign(counts.begin(), counts.end());
  std::sort(stats.ranked.begin(), stats.ranked.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  std::vector<double> ranks, freqs;
  for (std::size_t i = 0; i < stats.ranked.size(); ++i) {
    ranks.push_back(static_cast<double>(i + 1));
    freqs.push_back(static_cast<double>(stats.ranked[i].second));
  }
  stats.zipf_slope = LogLogSlope(ranks, freqs);
  return stats;
}

std::vector<std::vector<double>> TopicTimeSeries(const WorkloadBundle& bundle,
                                                 double bin_sec,
                                                 std::size_t num_topics) {
  std::vector<std::vector<double>> series(num_topics);
  if (bundle.arrivals.empty() || bundle.tasks.empty()) return series;
  const double span =
      *std::max_element(bundle.arrivals.begin(), bundle.arrivals.end());
  const auto num_bins = static_cast<std::size_t>(span / bin_sec) + 1;
  for (auto& s : series) s.assign(num_bins, 0.0);
  for (std::size_t i = 0; i < bundle.tasks.size(); ++i) {
    const auto& task = bundle.tasks[i];
    if (task.steps.empty()) continue;
    const auto topic = bundle.oracle->TopicOf(task.steps.front().query);
    if (!topic || *topic >= num_topics) continue;
    const auto bin = static_cast<std::size_t>(bundle.arrivals[i] / bin_sec);
    series[*topic][bin] += 1.0;
  }
  return series;
}

double Burstiness(const std::vector<double>& series) {
  if (series.empty()) return 1.0;
  double peak = 0.0, sum = 0.0;
  for (double v : series) {
    peak = std::max(peak, v);
    sum += v;
  }
  const double mean = sum / static_cast<double>(series.size());
  return mean > 0.0 ? peak / mean : 1.0;
}

std::vector<double> FileAccessFrequencies(const WorkloadBundle& bundle) {
  std::vector<double> freq(bundle.universe->size(), 0.0);
  if (bundle.tasks.empty()) return freq;
  for (const auto& task : bundle.tasks) {
    std::unordered_set<std::uint64_t> touched;
    for (const auto& step : task.steps) {
      const auto topic = bundle.oracle->TopicOf(step.query);
      if (topic) touched.insert(*topic);
    }
    for (auto t : touched) freq[t] += 1.0;
  }
  for (auto& f : freq) f /= static_cast<double>(bundle.tasks.size());
  return freq;
}

}  // namespace cortex
