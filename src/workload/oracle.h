// GroundTruthOracle: the workload's knowledge of which queries mean the
// same thing.  Implements the llm-layer EquivalenceOracle consumed by the
// judger, and additionally serves as the simulated remote services' source
// of truth (ExpectedInfo) and as the evaluation referee (Fig. 13's EM
// scoring checks served results against it).
#pragma once

#include <string>
#include <string_view>
#include <unordered_map>

#include "llm/judger_model.h"
#include "workload/topic_universe.h"

namespace cortex {

class GroundTruthOracle final : public EquivalenceOracle {
 public:
  explicit GroundTruthOracle(const TopicUniverse* universe);

  // Registers a query string as asking for `topic_id`.  Workload generators
  // register every query they emit (including prefetchable ones).
  void RegisterQuery(std::string query, std::uint64_t topic_id);

  // Topic behind a registered query; nullopt for unknown text.
  std::optional<std::uint64_t> TopicOf(std::string_view query) const;

  // Ground-truth retrieval result for the query ("" for unknown queries).
  std::string ExpectedInfo(std::string_view query) const;

  // True if `info` is the correct knowledge for `query`.
  bool InfoCorrect(std::string_view query, std::string_view info) const;

  // Retrieval cost/latency multipliers of the service behind the query's
  // topic (1.0 for unknown queries).  The simulated remote services apply
  // these; LCFU's cost-awareness is exercised through them.
  double FetchCostScale(std::string_view query) const;
  double FetchLatencyScale(std::string_view query) const;

  // EquivalenceOracle interface (consumed by the JudgerModel).
  bool Equivalent(std::string_view query,
                  std::string_view cached_query) const override;
  double Staticity(std::string_view query) const override;

  const TopicUniverse& universe() const noexcept { return *universe_; }
  std::size_t registered_queries() const noexcept { return registry_.size(); }

 private:
  const TopicUniverse* universe_;  // not owned; must outlive the oracle
  std::unordered_map<std::string, std::uint64_t> registry_;
};

// Registers every paraphrase of every topic (generators call this once).
void RegisterAllParaphrases(GroundTruthOracle& oracle,
                            const TopicUniverse& universe);

}  // namespace cortex
