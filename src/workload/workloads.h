// The three workload families of the paper's evaluation (§6.1):
//   * skewed search (Zipfian topic popularity; dataset profiles standing in
//     for Zilliz-GPT / HotpotQA / Musique / 2Wiki / StrategyQA),
//   * trend-driven search (bursty Google-Trends-style spikes),
//   * SWE-bench coding (file accesses with the Table-2 head frequencies).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "workload/oracle.h"
#include "workload/task_factory.h"
#include "workload/topic_universe.h"

namespace cortex {

// A generated workload plus its ground truth, ready for the driver.
struct WorkloadBundle {
  std::string name;
  std::shared_ptr<TopicUniverse> universe;
  std::shared_ptr<GroundTruthOracle> oracle;
  std::vector<AgentTask> tasks;
  // Non-empty for trace-shaped workloads (trend): per-task arrival times.
  std::vector<double> arrivals;

  // Sum of answer token sizes over all topics — the footprint against
  // which "cache ratio" capacities are computed (ratio 1.0 holds every
  // distinct piece of knowledge exactly once).
  double TotalKnowledgeTokens() const;

  // Every query phrasing the workload can emit (all paraphrases of all
  // topics).  Serving stacks fit the embedder's IDF weights on this —
  // modelling an embedding model adapted to the query domain.
  std::vector<std::string> AllQueries() const;
};

// ---------------------------------------------------------------------------
// Skewed search workload (Fig. 7)

struct SearchDatasetProfile {
  std::string name;
  TopicUniverseOptions universe;
  // The paper k-means the dataset's questions into 10 representative
  // clusters and makes the *clusters* Zipf-popular (§6.1): popularity is
  // zipf(zipf_exponent) over clusters, uniform within a cluster.
  std::size_t num_clusters = 10;
  double zipf_exponent = 0.99;
  // Question popularity within a cluster is itself skewed (the paper's
  // ~250 sampled questions are replayed into a skewed distribution).
  double intra_cluster_zipf = 1.4;
  std::size_t num_tasks = 1000;
  // Probability a task issues a second (third) correlated hop.
  double multi_hop_prob = 0.0;
  double third_hop_prob = 0.0;
  // When multi-hopping, probability the next hop follows the universe's
  // correlation structure (learnable by the prefetcher) vs a random topic.
  double hop_correlation = 0.8;
  double base_correctness = 0.78;
  std::uint64_t seed = 11;

  static SearchDatasetProfile ZillizGpt();
  static SearchDatasetProfile HotpotQa();
  static SearchDatasetProfile Musique();
  static SearchDatasetProfile TwoWiki();
  static SearchDatasetProfile StrategyQa();
  static std::vector<SearchDatasetProfile> AllFigure7();
};

WorkloadBundle BuildSkewedSearchWorkload(const SearchDatasetProfile& profile);

// ---------------------------------------------------------------------------
// Trend-driven workload (Fig. 8; trace dynamics of Figs. 2-3)

struct TrendProfile {
  std::string name = "google-trends-10min";
  std::size_t num_trend_topics = 4;
  std::size_t related_per_trend = 3;  // correlated topics spiking together
  double duration_sec = 600.0;        // 12h of trends compressed to 10 min
  double background_rate = 0.6;       // req/s of baseline Zipf traffic
  double peak_rate = 5.0;             // extra req/s at each spike's peak
  double spike_width_sec = 60.0;      // Gaussian spike std-dev
  TopicUniverseOptions universe;      // background topic universe
  double zipf_exponent = 0.99;
  double base_correctness = 0.78;
  std::uint64_t seed = 23;
};

WorkloadBundle BuildTrendWorkload(const TrendProfile& profile);

// ---------------------------------------------------------------------------
// SWE-bench coding workload (Fig. 9, Table 2)

struct SweBenchProfile {
  std::string name = "swebench-sqlfluff";
  std::size_t num_files = 120;
  std::size_t num_issues = 300;
  // Per-issue access probability of the head files (paper Table 2).
  std::vector<double> head_frequencies = {1.0,  0.28, 0.22, 0.14, 0.1,
                                          0.08, 0.04, 0.04, 0.04};
  // Tail files are drawn Zipf with this exponent.
  double tail_zipf = 0.9;
  // Additional tail files per issue (beyond head hits).
  std::size_t tail_files_per_issue = 3;
  double mean_file_tokens = 400.0;  // files are bigger than QA snippets
  std::size_t paraphrases_per_file = 8;
  double base_correctness = 0.7;
  std::uint64_t seed = 31;
};

WorkloadBundle BuildSweBenchWorkload(const SweBenchProfile& profile);

}  // namespace cortex
