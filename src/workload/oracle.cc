#include "workload/oracle.h"

#include "util/check.h"

namespace cortex {

GroundTruthOracle::GroundTruthOracle(const TopicUniverse* universe)
    : universe_(universe) {
  CHECK(universe != nullptr);
}

void GroundTruthOracle::RegisterQuery(std::string query,
                                      std::uint64_t topic_id) {
  CHECK_LT(topic_id, universe_->size());
  registry_.insert_or_assign(std::move(query), topic_id);
}

std::optional<std::uint64_t> GroundTruthOracle::TopicOf(
    std::string_view query) const {
  const auto it = registry_.find(std::string(query));
  if (it == registry_.end()) return std::nullopt;
  return it->second;
}

std::string GroundTruthOracle::ExpectedInfo(std::string_view query) const {
  const auto topic = TopicOf(query);
  return topic ? universe_->topic(*topic).answer : std::string{};
}

bool GroundTruthOracle::InfoCorrect(std::string_view query,
                                    std::string_view info) const {
  const auto topic = TopicOf(query);
  if (!topic) return false;
  return universe_->topic(*topic).answer == info;
}

double GroundTruthOracle::FetchCostScale(std::string_view query) const {
  const auto topic = TopicOf(query);
  return topic ? universe_->topic(*topic).fetch_cost_scale : 1.0;
}

double GroundTruthOracle::FetchLatencyScale(std::string_view query) const {
  const auto topic = TopicOf(query);
  return topic ? universe_->topic(*topic).fetch_latency_scale : 1.0;
}

bool GroundTruthOracle::Equivalent(std::string_view query,
                                   std::string_view cached_query) const {
  const auto a = TopicOf(query);
  const auto b = TopicOf(cached_query);
  return a && b && *a == *b;
}

double GroundTruthOracle::Staticity(std::string_view query) const {
  const auto topic = TopicOf(query);
  return topic ? universe_->topic(*topic).staticity : 5.0;
}

void RegisterAllParaphrases(GroundTruthOracle& oracle,
                            const TopicUniverse& universe) {
  for (const auto& topic : universe.topics()) {
    for (const auto& q : topic.paraphrases) {
      oracle.RegisterQuery(q, topic.id);
    }
  }
}

}  // namespace cortex
