#include "workload/vocab.h"

#include <array>

namespace cortex {

namespace {

constexpr std::array<std::string_view, 184> kEntities = {
    "mona_lisa",    "louvre",       "eiffel_tower", "amazon_river",
    "mount_everest", "pacific_ocean", "sahara",      "nile",
    "beethoven",    "mozart",       "einstein",     "newton",
    "darwin",       "curie",        "tesla",        "edison",
    "shakespeare",  "hemingway",    "tolstoy",      "austen",
    "python",       "kubernetes",   "linux",        "postgres",
    "bitcoin",      "ethereum",     "nasdaq",       "sp500",
    "apple",        "google",       "microsoft",    "nvidia",
    "openai",       "anthropic",    "deepmind",     "meta",
    "mars",         "jupiter",      "saturn",       "europa",
    "voyager",      "hubble",       "webb_telescope", "iss",
    "olympics",     "world_cup",    "wimbledon",    "tour_de_france",
    "picasso",      "van_gogh",     "rembrandt",    "monet",
    "rome",         "athens",       "cairo",        "kyoto",
    "tokyo",        "london",       "paris",        "berlin",
    "everest_base", "grand_canyon", "yellowstone",  "serengeti",
    "quantum_computing", "machine_learning", "neural_network", "blockchain",
    "photosynthesis", "mitochondria", "dna",         "crispr",
    "relativity",   "thermodynamics", "electromagnetism", "gravity",
    "renaissance",  "industrial_revolution", "cold_war", "silk_road",
    "great_wall",   "colosseum",    "machu_picchu", "stonehenge",
    "elizabeth_ii", "charles_iii",  "lincoln",      "churchill",
    "gandhi",       "mandela",      "cleopatra",    "napoleon",
    "gpt5",         "llama",        "gemini",       "claude_model",
    "transformer",  "attention",    "diffusion",    "reinforcement",
    "soccer",       "basketball",   "tennis",       "cricket",
    "graham_greene", "veronika",    "taylor_swift", "beyonce",
    "interstellar", "inception",    "oppenheimer",  "dune",
    "chess",        "go_game",      "poker",        "scrabble",
    "coffee",       "chocolate",    "sushi",        "pizza",
    "yoga",         "meditation",   "marathon",     "triathlon",
    "solar_panel",  "wind_turbine", "nuclear_fusion", "geothermal",
    "vaccine",      "antibiotic",   "insulin",      "aspirin",
    "volcano",      "earthquake",   "hurricane",    "tsunami",
    "coral_reef",   "rainforest",   "glacier",      "permafrost",
    "honeybee",     "monarch_butterfly", "blue_whale", "octopus",
    "falcon",       "condor",       "penguin",      "albatross",
    "redwood",      "baobab",       "bamboo",       "sequoia",
    "samurai",      "viking",       "aztec",        "sparta",
    "jazz",         "opera",        "hip_hop",      "symphony",
    "violin",       "piano",        "guitar",       "cello",
    "calculus",     "topology",     "prime_number", "fibonacci",
    "compiler",     "interpreter",  "garbage_collector", "scheduler",
    "tcp_protocol", "dns",          "http3",        "quic",
    "rust_lang",    "golang",       "typescript",   "haskell",
    "mercury",      "venus",        "neptune",      "pluto",
};

constexpr std::array<std::string_view, 48> kAspects = {
    "history",      "location",     "height",       "population",
    "nutrition",    "stock_price",  "founder",      "inventor",
    "release_date", "schedule",     "weather",      "forecast",
    "biography",    "discovery",    "architecture", "composition",
    "ingredients",  "recipe",       "rules",        "champion",
    "record",       "speed",        "depth",        "temperature",
    "origin",       "meaning",      "definition",   "symptoms",
    "treatment",    "causes",       "effects",      "benefits",
    "risks",        "cost",         "revenue",      "market_cap",
    "ceo",          "headquarters", "employees",    "competitors",
    "latest_news",  "controversy",  "review",       "rating",
    "specification", "performance",  "roadmap",      "alternatives",
};

// Paraphrase templates: all templates with the same {E}/{A} slots express
// the same retrieval intent, so instantiating several of them for one topic
// yields semantically equivalent, textually different queries.
constexpr std::array<std::string_view, 12> kQuestionTemplates = {
    "what is the {A} of {E}",
    "tell me about the {A} of {E}",
    "{E} {A}",
    "{A} of {E} please",
    "can you find the {A} of {E}",
    "I need information on {E} {A}",
    "looking for {E} {A} details",
    "give me {E} {A} facts",
    "search {E} {A}",
    "find {A} for {E}",
    "what's {E}'s {A}",
    "{E}: {A} overview",
};

constexpr std::array<std::string_view, 40> kCodeModules = {
    "core",       "parser",    "lexer",     "dialects",
    "rules",      "linter",    "templater", "cli",
    "config",     "errors",    "helpers",   "segments",
    "grammar",    "crawler",   "fixes",     "plugin",
    "formatter",  "diff",      "cache",     "utils",
    "base",       "ansi",      "bigquery",  "mysql",
    "postgres_dialect", "snowflake", "sqlite",  "teradata",
    "reflow",     "indent",    "aliasing",  "ambiguous",
    "capitalisation", "convention", "layout", "references",
    "structure",  "jinja",     "dbt",       "placeholder",
};

constexpr std::array<std::string_view, 8> kFileRequestTemplates = {
    "show the contents of {F}",
    "open {F} and display it",
    "read file {F}",
    "fetch the source of {F}",
    "retrieve {F} from the repository",
    "I need to inspect {F}",
    "load {F} for review",
    "print the implementation in {F}",
};

}  // namespace

std::span<const std::string_view> EntityWords() { return kEntities; }
std::span<const std::string_view> AspectWords() { return kAspects; }
std::span<const std::string_view> QuestionTemplates() {
  return kQuestionTemplates;
}
std::span<const std::string_view> CodeModuleWords() { return kCodeModules; }
std::span<const std::string_view> FileRequestTemplates() {
  return kFileRequestTemplates;
}

}  // namespace cortex
