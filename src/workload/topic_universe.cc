#include "workload/topic_universe.h"

#include <algorithm>
#include <array>
#include <unordered_set>

#include "llm/tags.h"
#include "util/check.h"
#include "workload/vocab.h"

namespace cortex {

namespace {

constexpr std::array<std::string_view, 8> kQualifiers = {
    "myths", "analysis", "guide", "comparison",
    "timeline", "breakdown", "summary", "update",
};

std::string ReplaceAll(std::string text, std::string_view what,
                       std::string_view with) {
  std::size_t pos = 0;
  while ((pos = text.find(what, pos)) != std::string::npos) {
    text.replace(pos, what.size(), with);
    pos += with.size();
  }
  return text;
}

// Conversational tails built purely from stopwords: they change the query
// string (defeating exact-match caching) without moving the embedding
// (the tokenizer drops them) — mirroring how users decorate the same
// question with filler.
constexpr std::array<std::string_view, 4> kStopwordTails = {
    "", " please", " for me", " can you",
};

std::string InstantiateTemplate(std::string_view tmpl, const Topic& t,
                                std::string_view tail) {
  std::string q = ReplaceAll(std::string(tmpl), "{E}", t.entity);
  q = ReplaceAll(q, "{A}", t.aspect);
  if (!t.qualifier.empty()) {
    q += ' ';
    q += t.qualifier;
  }
  q += tail;
  return q;
}

}  // namespace

std::string TopicUniverse::MakeAnswer(const Topic& t, Rng& rng) const {
  // Distinct topics must yield textually distinct answers (EM scoring), so
  // the fact id is embedded.  Padding words give realistic size variance
  // for the LCFU size term.
  std::string answer = "fact#" + std::to_string(t.id) + ": the " + t.aspect +
                       " of " + t.entity;
  if (!t.qualifier.empty()) answer += " (" + t.qualifier + ")";
  answer += " is documented as follows.";
  const double target =
      std::max(12.0, rng.LogNormal(std::log(options_.mean_answer_tokens), 0.5));
  const auto entities = EntityWords();
  while (ApproxTokenCount(answer) < static_cast<std::size_t>(target)) {
    answer += " see also ";
    answer += entities[rng.NextBelow(entities.size())];
  }
  return answer;
}

TopicUniverse::TopicUniverse(std::vector<Topic> topics)
    : topics_(std::move(topics)) {
  for (std::size_t i = 0; i < topics_.size(); ++i) {
    CHECK_EQ(topics_[i].id, i) << "topic ids must be dense and in order";
  }
}

TopicUniverse::TopicUniverse(TopicUniverseOptions options)
    : options_(options) {
  CHECK_GT(options_.num_topics, 0u);
  Rng rng(options_.seed);
  const auto entities = EntityWords();
  const auto aspects = AspectWords();
  const auto templates = QuestionTemplates();

  // Distinct topics must never share the full (entity, aspect, qualifier)
  // triple, or their query strings would collide and two different pieces
  // of knowledge would be indistinguishable even to an exact-match system.
  std::unordered_set<std::string> used_triples;
  auto triple_key = [](const Topic& t) {
    return t.entity + '\x1f' + t.aspect + '\x1f' + t.qualifier;
  };

  topics_.reserve(options_.num_topics);
  for (std::size_t i = 0; i < options_.num_topics; ++i) {
    Topic t;
    t.id = i;
    const bool make_trap =
        i > 0 && rng.Bernoulli(options_.trap_fraction);
    for (int attempt = 0; attempt < 64; ++attempt) {
      if (make_trap) {
        // Sibling of a random earlier topic: same entity and aspect,
        // distinguished only by a qualifier — maximally confusable.
        const auto& parent = topics_[rng.NextBelow(i)];
        t.entity = parent.entity;
        t.aspect = parent.aspect;
        t.qualifier =
            std::string(kQualifiers[rng.NextBelow(kQualifiers.size())]);
        t.trap_of = parent.id;
      } else {
        t.entity = std::string(entities[rng.NextBelow(entities.size())]);
        t.aspect = std::string(aspects[rng.NextBelow(aspects.size())]);
        t.qualifier.clear();
        t.trap_of.reset();
      }
      if (used_triples.insert(triple_key(t)).second) break;
    }

    // Staticity mix.
    const double mix = rng.NextDouble();
    if (mix < options_.static_fraction) {
      t.staticity = rng.Uniform(8.0, 10.0);
    } else if (mix < options_.static_fraction + options_.ephemeral_fraction) {
      t.staticity = rng.Uniform(1.0, 4.0);
    } else {
      t.staticity = rng.Uniform(4.0, 8.0);
    }

    t.answer = MakeAnswer(t, rng);

    // Retrieval-cost heterogeneity: premium-API topics plus a mild
    // response-length effect on latency.
    if (rng.Bernoulli(options_.premium_fraction)) {
      t.fetch_cost_scale = options_.premium_cost_scale;
      t.fetch_latency_scale = options_.premium_latency_scale;
    }
    t.fetch_latency_scale *=
        0.9 + 0.2 * static_cast<double>(ApproxTokenCount(t.answer)) /
                  std::max(1.0, options_.mean_answer_tokens);

    // Paraphrases: distinct templates first, then stopword-tail variants
    // once templates are exhausted (count may exceed the template pool).
    std::vector<std::size_t> order(templates.size());
    for (std::size_t j = 0; j < order.size(); ++j) order[j] = j;
    rng.Shuffle(order);
    const std::size_t count = std::min(
        options_.paraphrases_per_topic,
        templates.size() * kStopwordTails.size());
    t.paraphrases.reserve(count);
    for (std::size_t j = 0; j < count; ++j) {
      const auto tmpl = templates[order[j % templates.size()]];
      const auto tail = kStopwordTails[j / templates.size()];
      t.paraphrases.push_back(InstantiateTemplate(tmpl, t, tail));
    }
    topics_.push_back(std::move(t));
  }

  // Correlation structure: with probability correlation_strength, a topic's
  // successor is its neighbour (stable clusters of related interest);
  // otherwise a random topic.  Prefetching can learn the former.
  for (auto& t : topics_) {
    if (rng.Bernoulli(options_.correlation_strength)) {
      t.next_topic = (t.id + 1) % topics_.size();
    } else {
      t.next_topic = rng.NextBelow(topics_.size());
    }
  }
}

}  // namespace cortex
