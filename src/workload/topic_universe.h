// TopicUniverse: the synthetic knowledge world behind the workloads.
//
// Stands in for the paper's QA datasets (Zilliz-GPT, HotpotQA, Musique,
// 2Wiki, StrategyQA).  A *topic* is one unit of remote knowledge: it has a
// canonical entity+aspect, a ground-truth answer, a staticity score, and a
// set of paraphrase queries that all ask for it.  A controllable fraction
// of topics are *traps*: near-duplicates of another topic (same entity and
// aspect, different qualifier) whose queries embed close to the parent's
// but require a different answer — the "apple nutrition facts" vs "Apple
// stock price" failure mode that defeats similarity-only caching (§3.2).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/rng.h"

namespace cortex {

struct Topic {
  std::uint64_t id = 0;
  std::string entity;
  std::string aspect;
  std::string qualifier;  // empty unless this topic disambiguates a trap pair
  double staticity = 5.0;  // 1 (ephemeral) .. 10 (time-invariant fact)
  std::string answer;      // ground-truth retrieval result
  // Retrieval-cost heterogeneity: some knowledge lives behind premium APIs
  // (cf. Table 1's $5-$25/1k spread) and larger responses take longer to
  // serve (§6.1: "300-500 ms depending on response length").  LCFU's
  // advantage over LRU/LFU comes precisely from this heterogeneity.
  double fetch_cost_scale = 1.0;
  double fetch_latency_scale = 1.0;
  std::vector<std::string> paraphrases;  // equivalent query phrasings
  // If set, this topic is a near-miss sibling of the given topic.
  std::optional<std::uint64_t> trap_of;
  // Topic likely to be queried right after this one (prefetch structure).
  std::uint64_t next_topic = 0;
};

struct TopicUniverseOptions {
  std::size_t num_topics = 250;
  std::size_t paraphrases_per_topic = 8;
  // Fraction of topics generated as near-miss siblings of earlier topics.
  double trap_fraction = 0.15;
  // Staticity mix: P(static 8-10), P(ephemeral 1-4); remainder is 4-8.
  double static_fraction = 0.45;
  double ephemeral_fraction = 0.2;
  // Mean answer length in tokens (log-normal around this).
  double mean_answer_tokens = 60.0;
  // Probability that next_topic follows cluster structure rather than
  // being random (strength of query-to-query correlation, Fig. 3).
  double correlation_strength = 0.8;
  // Fraction of topics served by a premium (more expensive, slower) API.
  double premium_fraction = 0.25;
  double premium_cost_scale = 5.0;   // e.g. OpenAI $25/1k vs Google $5/1k
  double premium_latency_scale = 2.0;
  std::uint64_t seed = 1;
};

class TopicUniverse {
 public:
  explicit TopicUniverse(TopicUniverseOptions options = {});

  // Builds a universe from explicitly constructed topics (used by the
  // SWE-bench workload, whose topics are repository files, and by tests).
  // Topics must have dense ids 0..n-1 matching their position.
  explicit TopicUniverse(std::vector<Topic> topics);

  const std::vector<Topic>& topics() const noexcept { return topics_; }
  const Topic& topic(std::uint64_t id) const { return topics_.at(id); }
  std::size_t size() const noexcept { return topics_.size(); }

  const TopicUniverseOptions& options() const noexcept { return options_; }

 private:
  std::string MakeAnswer(const Topic& t, Rng& rng) const;

  TopicUniverseOptions options_;
  std::vector<Topic> topics_;
};

}  // namespace cortex
