#include "workload/workloads.h"

#include <algorithm>
#include <cmath>

#include "llm/tags.h"
#include "util/check.h"
#include "workload/vocab.h"

namespace cortex {

double WorkloadBundle::TotalKnowledgeTokens() const {
  double total = 0.0;
  for (const auto& t : universe->topics()) {
    total += static_cast<double>(ApproxTokenCount(t.answer));
  }
  return total;
}

std::vector<std::string> WorkloadBundle::AllQueries() const {
  std::vector<std::string> queries;
  for (const auto& t : universe->topics()) {
    queries.insert(queries.end(), t.paraphrases.begin(),
                   t.paraphrases.end());
  }
  return queries;
}

// ---------------------------------------------------------------------------
// Skewed search

SearchDatasetProfile SearchDatasetProfile::ZillizGpt() {
  SearchDatasetProfile p;
  p.name = "zilliz-gpt";
  p.universe.num_topics = 200;
  p.universe.paraphrases_per_topic = 20;
  p.universe.trap_fraction = 0.12;
  p.universe.seed = 101;
  p.multi_hop_prob = 0.1;
  p.base_correctness = 0.82;
  p.seed = 111;
  return p;
}

SearchDatasetProfile SearchDatasetProfile::HotpotQa() {
  SearchDatasetProfile p;
  p.name = "hotpotqa";
  p.universe.num_topics = 250;
  p.universe.paraphrases_per_topic = 16;
  p.universe.trap_fraction = 0.15;
  p.universe.seed = 102;
  p.multi_hop_prob = 0.6;
  p.base_correctness = 0.79;
  p.seed = 112;
  return p;
}

SearchDatasetProfile SearchDatasetProfile::Musique() {
  SearchDatasetProfile p;
  p.name = "musique";
  p.universe.num_topics = 250;
  p.universe.paraphrases_per_topic = 16;
  p.universe.trap_fraction = 0.18;
  p.universe.seed = 103;
  p.multi_hop_prob = 0.8;
  p.third_hop_prob = 0.3;
  p.base_correctness = 0.72;
  p.seed = 113;
  return p;
}

SearchDatasetProfile SearchDatasetProfile::TwoWiki() {
  SearchDatasetProfile p;
  p.name = "2wiki";
  p.universe.num_topics = 220;
  p.universe.paraphrases_per_topic = 16;
  p.universe.trap_fraction = 0.15;
  p.universe.seed = 104;
  p.multi_hop_prob = 0.5;
  p.base_correctness = 0.77;
  p.seed = 114;
  return p;
}

SearchDatasetProfile SearchDatasetProfile::StrategyQa() {
  SearchDatasetProfile p;
  p.name = "strategyqa";
  p.universe.num_topics = 230;
  p.universe.paraphrases_per_topic = 16;
  p.universe.trap_fraction = 0.2;
  p.universe.seed = 105;
  p.multi_hop_prob = 0.4;
  p.base_correctness = 0.79;
  p.seed = 115;
  return p;
}

std::vector<SearchDatasetProfile> SearchDatasetProfile::AllFigure7() {
  return {ZillizGpt(), HotpotQa(), Musique(), TwoWiki()};
}

WorkloadBundle BuildSkewedSearchWorkload(const SearchDatasetProfile& profile) {
  WorkloadBundle bundle;
  bundle.name = profile.name;
  bundle.universe = std::make_shared<TopicUniverse>(profile.universe);
  bundle.oracle = std::make_shared<GroundTruthOracle>(bundle.universe.get());
  RegisterAllParaphrases(*bundle.oracle, *bundle.universe);

  Rng rng(profile.seed);
  const std::size_t num_clusters =
      std::max<std::size_t>(1, std::min(profile.num_clusters,
                                        bundle.universe->size()));
  const ZipfSampler cluster_zipf(num_clusters, profile.zipf_exponent);
  const std::size_t universe_size = bundle.universe->size();
  // One intra-cluster sampler per cluster size (sizes differ by at most 1).
  auto intra_sampler = [&](std::size_t size) {
    return ZipfSampler(std::max<std::size_t>(1, size),
                       profile.intra_cluster_zipf);
  };
  std::vector<ZipfSampler> intra;
  intra.reserve(num_clusters);
  for (std::size_t c = 0; c < num_clusters; ++c) {
    const std::size_t begin = c * universe_size / num_clusters;
    const std::size_t end = (c + 1) * universe_size / num_clusters;
    intra.push_back(intra_sampler(end - begin));
  }
  auto sample_topic = [&]() -> std::uint64_t {
    const std::size_t c = cluster_zipf.Sample(rng);
    const std::size_t begin = c * universe_size / num_clusters;
    return begin + intra[c].Sample(rng);
  };
  TaskFactoryOptions task_opts{.base_correctness = profile.base_correctness};

  bundle.tasks.reserve(profile.num_tasks);
  for (std::size_t i = 0; i < profile.num_tasks; ++i) {
    std::vector<std::uint64_t> hops;
    const std::uint64_t head = sample_topic();
    hops.push_back(head);
    auto next_hop = [&](std::uint64_t from) {
      return rng.Bernoulli(profile.hop_correlation)
                 ? bundle.universe->topic(from).next_topic
                 : static_cast<std::uint64_t>(
                       rng.NextBelow(bundle.universe->size()));
    };
    if (rng.Bernoulli(profile.multi_hop_prob)) {
      hops.push_back(next_hop(hops.back()));
      if (rng.Bernoulli(profile.third_hop_prob)) {
        hops.push_back(next_hop(hops.back()));
      }
    }
    bundle.tasks.push_back(
        MakeSearchTask(i, *bundle.universe, hops, rng, task_opts));
  }
  return bundle;
}

// ---------------------------------------------------------------------------
// Trend-driven

WorkloadBundle BuildTrendWorkload(const TrendProfile& profile) {
  WorkloadBundle bundle;
  bundle.name = profile.name;

  // Build the universe, then force the trending topics (and their related
  // siblings) to be ephemeral: trend knowledge goes stale quickly, which is
  // what LCFU's staticity term exploits (Fig. 8 discussion).
  TopicUniverse base(profile.universe);
  std::vector<Topic> topics(base.topics());
  const std::size_t group = 1 + profile.related_per_trend;
  const std::size_t trend_span = profile.num_trend_topics * group;
  CHECK_LT(trend_span, topics.size())
      << "trend topics must leave room for a stable tail";
  Rng rng(profile.seed);
  for (std::size_t i = 0; i < trend_span; ++i) {
    topics[i].staticity = rng.Uniform(1.5, 3.0);
    // Chain related topics after their trend head so the follow-up queries
    // are learnable by the Markov prefetcher.
    topics[i].next_topic = (i % group == group - 1) ? i : i + 1;
  }
  bundle.universe = std::make_shared<TopicUniverse>(std::move(topics));
  bundle.oracle = std::make_shared<GroundTruthOracle>(bundle.universe.get());
  RegisterAllParaphrases(*bundle.oracle, *bundle.universe);

  // Spike centres spread over the trace; each trend topic spikes once.
  std::vector<double> centres(profile.num_trend_topics);
  for (std::size_t i = 0; i < centres.size(); ++i) {
    centres[i] = profile.duration_sec * (0.5 + static_cast<double>(i)) /
                 static_cast<double>(profile.num_trend_topics);
  }
  auto spike_rate = [&](std::size_t trend, double t) {
    const double z = (t - centres[trend]) / profile.spike_width_sec;
    return profile.peak_rate * std::exp(-0.5 * z * z);
  };

  const ZipfSampler zipf(bundle.universe->size(), profile.zipf_exponent);
  TaskFactoryOptions task_opts{.base_correctness = profile.base_correctness};

  // Thinning over a fine time grid: total rate = background + spikes.
  std::vector<std::pair<double, std::uint64_t>> arrivals;  // (time, topic)
  const double dt = 0.05;
  for (double t = 0.0; t < profile.duration_sec; t += dt) {
    double total = profile.background_rate;
    for (std::size_t s = 0; s < profile.num_trend_topics; ++s) {
      total += spike_rate(s, t);
    }
    if (!rng.Bernoulli(std::min(1.0, total * dt))) continue;
    // Attribute the arrival to a source proportionally.
    double u = rng.NextDouble() * total;
    std::uint64_t topic;
    if (u < profile.background_rate) {
      topic = zipf.Sample(rng);
    } else {
      u -= profile.background_rate;
      std::size_t s = 0;
      while (s + 1 < profile.num_trend_topics && u >= spike_rate(s, t)) {
        u -= spike_rate(s, t);
        ++s;
      }
      // Within a spike, queries hit the trend head or one of its related
      // topics (correlated interest, Fig. 3).
      const std::size_t offset = rng.NextBelow(group);
      topic = s * group + offset;
    }
    arrivals.emplace_back(t, topic);
  }

  bundle.tasks.reserve(arrivals.size());
  bundle.arrivals.reserve(arrivals.size());
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    const std::uint64_t topic = arrivals[i].second;
    std::vector<std::uint64_t> hops = {topic};
    // Trend queries frequently chain to a related follow-up.
    if (rng.Bernoulli(0.5)) {
      hops.push_back(bundle.universe->topic(topic).next_topic);
    }
    bundle.tasks.push_back(
        MakeSearchTask(i, *bundle.universe, hops, rng, task_opts));
    bundle.arrivals.push_back(arrivals[i].first);
  }
  return bundle;
}

// ---------------------------------------------------------------------------
// SWE-bench coding

WorkloadBundle BuildSweBenchWorkload(const SweBenchProfile& profile) {
  WorkloadBundle bundle;
  bundle.name = profile.name;

  Rng rng(profile.seed);
  const auto modules = CodeModuleWords();
  const auto templates = FileRequestTemplates();

  // Topics are repository files; the paraphrases are different ways an
  // agent phrases "fetch this file".
  std::vector<Topic> topics;
  topics.reserve(profile.num_files);
  for (std::size_t i = 0; i < profile.num_files; ++i) {
    Topic t;
    t.id = i;
    const auto mod = modules[i % modules.size()];
    t.entity = "src/sqlfluff/" + std::string(mod) + "/" +
               std::string(mod) + "_" + std::to_string(i) + ".py";
    t.aspect = "source";
    t.staticity = rng.Uniform(8.5, 10.0);  // files are stable across issues
    // File contents: sized like real modules, distinct per file.
    t.answer = "file#" + std::to_string(i) + " contents of " + t.entity + ":";
    const double target = std::max(
        60.0, rng.LogNormal(std::log(profile.mean_file_tokens), 0.6));
    while (ApproxTokenCount(t.answer) < static_cast<std::size_t>(target)) {
      t.answer += " def fn_" + std::to_string(rng.NextBelow(1000)) +
                  "(ctx) -> result";
    }
    const std::size_t count =
        std::min(profile.paraphrases_per_file, templates.size());
    for (std::size_t j = 0; j < count; ++j) {
      std::string q(templates[j]);
      const auto pos = q.find("{F}");
      q.replace(pos, 3, t.entity);
      t.paraphrases.push_back(std::move(q));
    }
    t.next_topic = (i + 1) % profile.num_files;
    topics.push_back(std::move(t));
  }
  bundle.universe = std::make_shared<TopicUniverse>(std::move(topics));
  bundle.oracle = std::make_shared<GroundTruthOracle>(bundle.universe.get());
  RegisterAllParaphrases(*bundle.oracle, *bundle.universe);

  const std::size_t num_head = profile.head_frequencies.size();
  const std::size_t num_tail = profile.num_files - num_head;
  const ZipfSampler tail_zipf(std::max<std::size_t>(num_tail, 1),
                              profile.tail_zipf);
  TaskFactoryOptions task_opts{.base_correctness = profile.base_correctness};

  bundle.tasks.reserve(profile.num_issues);
  for (std::size_t i = 0; i < profile.num_issues; ++i) {
    std::vector<std::uint64_t> files;
    for (std::size_t h = 0; h < num_head; ++h) {
      if (rng.Bernoulli(profile.head_frequencies[h])) {
        files.push_back(h);
      }
    }
    for (std::size_t k = 0; k < profile.tail_files_per_issue; ++k) {
      files.push_back(num_head + tail_zipf.Sample(rng));
    }
    if (files.empty()) files.push_back(0);
    bundle.tasks.push_back(
        MakeCodingTask(i, *bundle.universe, files, rng, task_opts));
  }
  return bundle;
}

}  // namespace cortex
