// Word lists used to synthesise query text.  The universe needs enough
// lexical diversity that feature-hashed embeddings behave like real ones:
// distinct topics are far apart unless they genuinely share content words.
#pragma once

#include <span>
#include <string_view>

namespace cortex {

// Entity-like content words (subjects of queries).
std::span<const std::string_view> EntityWords();
// Attribute/aspect content words ("nutrition", "stock", "schedule", ...).
std::span<const std::string_view> AspectWords();
// Question templates with {E} entity and {A} aspect placeholders; sets of
// mutually paraphrastic templates (same intent, different wording).
std::span<const std::string_view> QuestionTemplates();
// Source-file path fragments for the code workload.
std::span<const std::string_view> CodeModuleWords();
// Phrasings for "fetch file {F}" tool calls in the code workload.
std::span<const std::string_view> FileRequestTemplates();

}  // namespace cortex
