// Trace statistics used to regenerate the paper's workload-analysis
// artifacts: Fig. 2 (Zipfian popularity), Fig. 3 (bursty, correlated
// spikes), and Table 2 (SWE-bench file access frequencies).
#pragma once

#include <cstdint>
#include <vector>

#include "workload/workloads.h"

namespace cortex {

struct PopularityStats {
  // (topic id, request count), sorted descending by count.
  std::vector<std::pair<std::uint64_t, std::size_t>> ranked;
  // Least-squares slope of log(count) vs log(rank); Zipf(s) gives ~-s.
  double zipf_slope = 0.0;
  std::size_t total_queries = 0;

  // Head share: fraction of queries landing on the top-k topics.
  double HeadShare(std::size_t k) const noexcept;
};

// Counts every tool-call topic in the bundle's tasks.
PopularityStats ComputePopularity(const WorkloadBundle& bundle);

// Per-topic arrival counts over fixed time bins (requires bundle.arrivals).
// series[t][b] = queries for topic t in bin b.  Only the first
// `num_topics` topic ids are tracked.
std::vector<std::vector<double>> TopicTimeSeries(const WorkloadBundle& bundle,
                                                 double bin_sec,
                                                 std::size_t num_topics);

// Burstiness of one series: peak bin rate / mean bin rate (>= 1).
double Burstiness(const std::vector<double>& series);

// Per-file access frequency: fraction of tasks (issues) that touch each
// topic (file), indexed by topic id — Table 2's measurement.
std::vector<double> FileAccessFrequencies(const WorkloadBundle& bundle);

}  // namespace cortex
