#include "workload/task_factory.h"

#include "util/check.h"

namespace cortex {

namespace {

std::string PickParaphrase(const Topic& topic, Rng& rng) {
  CHECK(!topic.paraphrases.empty());
  return topic.paraphrases[rng.NextBelow(topic.paraphrases.size())];
}

}  // namespace

AgentTask MakeSearchTask(std::uint64_t task_id, const TopicUniverse& universe,
                         std::span<const std::uint64_t> topic_ids, Rng& rng,
                         const TaskFactoryOptions& options) {
  CHECK(!topic_ids.empty());
  AgentTask task;
  task.id = task_id;
  task.base_correctness = options.base_correctness;
  const Topic& first = universe.topic(topic_ids.front());
  task.description =
      "answer the user question about " + first.entity + " " + first.aspect;
  for (std::uint64_t id : topic_ids) {
    const Topic& t = universe.topic(id);
    ToolStep step;
    // Reasoning traces are verbose in practice (Search-R1 emits tens of
    // tokens of chain-of-thought per hop); length here calibrates the
    // agent's share of per-request latency (Fig. 11's ~0.6 s).
    step.think = "The user is asking about " + t.entity +
                 ". To answer I must establish the " + t.aspect + " of " +
                 t.entity +
                 ", which my context does not contain, so I will query the"
                 " external search tool and integrate the result.";
    step.query = PickParaphrase(t, rng);
    step.expected_info = t.answer;
    task.steps.push_back(std::move(step));
  }
  task.final_think =
      "The retrieved passages are consistent and sufficient, so I can"
      " compose the final answer without further tool calls.";
  task.final_answer = "fact#" + std::to_string(topic_ids.back());
  return task;
}

AgentTask MakeCodingTask(std::uint64_t task_id, const TopicUniverse& universe,
                         std::span<const std::uint64_t> file_topic_ids,
                         Rng& rng, const TaskFactoryOptions& options) {
  CHECK(!file_topic_ids.empty());
  AgentTask task;
  task.id = task_id;
  task.base_correctness = options.base_correctness;
  task.description = "resolve issue #" + std::to_string(task_id) +
                     " in the repository";
  for (std::uint64_t id : file_topic_ids) {
    const Topic& t = universe.topic(id);
    ToolStep step;
    step.think = "Working on this issue requires understanding " + t.entity +
                 ": the failure most likely originates in this module, so I"
                 " will retrieve its source and inspect the implicated"
                 " functions before drafting a fix.";
    step.query = PickParaphrase(t, rng);
    step.expected_info = t.answer;
    task.steps.push_back(std::move(step));
  }
  task.final_think =
      "All relevant files are in context and the root cause is clear and"
      " localised, so I can write the patch.";
  task.final_answer = "patch for issue #" + std::to_string(task_id);
  return task;
}

}  // namespace cortex
