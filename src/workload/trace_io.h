// Workload trace files: freeze a generated WorkloadBundle — topic universe,
// tasks, and arrival times — to disk and reload it byte-identically, so an
// interesting run can be archived, shared, and replayed independent of the
// generator's parameters and seeds.
//
// Binary format in the same style as core/snapshot.h (magic + version +
// length-prefixed records, native endianness).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "workload/workloads.h"

namespace cortex {

inline constexpr std::uint32_t kTraceMagic = 0x43545243;  // "CTRC"
inline constexpr std::uint32_t kTraceVersion = 1;

// Writes the full bundle.  Throws std::runtime_error on stream failure.
void SaveWorkloadTrace(const WorkloadBundle& bundle, std::ostream& out);
void SaveWorkloadTraceFile(const WorkloadBundle& bundle,
                           const std::string& path);

// Reads a bundle back; the oracle is rebuilt and all paraphrases
// re-registered, so the result is immediately servable.  Throws
// std::runtime_error on malformed input.
WorkloadBundle LoadWorkloadTrace(std::istream& in);
WorkloadBundle LoadWorkloadTraceFile(const std::string& path);

}  // namespace cortex
