// Text table printing for bench binaries: each experiment harness prints
// the paper's rows/series as an aligned ASCII table, and optionally CSV.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace cortex {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  // Adds a row; the row is padded/truncated to the header width.
  void AddRow(std::vector<std::string> cells);

  // Convenience: formats doubles with the given precision.
  static std::string Num(double value, int precision = 2);
  static std::string Percent(double ratio, int precision = 1);

  // Renders as an aligned ASCII table with a header separator.
  std::string Render() const;
  // Renders as CSV (RFC-4180-ish quoting).
  std::string RenderCsv() const;

  void Print(std::ostream& os, bool csv = false) const;

  std::size_t num_rows() const noexcept { return rows_.size(); }
  std::size_t num_cols() const noexcept { return headers_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cortex
