// Lightweight text tokenizer shared by the embedding model, the judger's
// lexical-overlap evidence, and the workload paraphrase generator.
//
// The pipeline is: lowercase -> split on non-alphanumerics -> drop stopwords
// -> suffix-strip stemming.  This mirrors what a production semantic cache
// would do before feature hashing (GPTCache-style preprocessing).
#pragma once

#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

namespace cortex {

struct TokenizerOptions {
  bool lowercase = true;
  bool drop_stopwords = true;
  bool stem = true;
  std::size_t min_token_length = 1;
};

class Tokenizer {
 public:
  explicit Tokenizer(TokenizerOptions options = {});

  // Content tokens of the text, in order (duplicates preserved).
  std::vector<std::string> Tokenize(std::string_view text) const;

  // Jaccard similarity of the two texts' token *sets* in [0, 1].
  double LexicalOverlap(std::string_view a, std::string_view b) const;

  // True if the token survives the stopword filter.
  bool IsStopword(std::string_view token) const;

  // Strip common English suffixes (plural s/es, ing, ed, 's).  Public so
  // tests can pin the behaviour.
  static std::string Stem(std::string token);

 private:
  TokenizerOptions options_;
  std::unordered_set<std::string> stopwords_;
};

}  // namespace cortex
