// Deterministic random number generation for Cortex simulations.
//
// Every stochastic component in the repository draws from a seeded Rng so
// that benches and tests are reproducible bit-for-bit across runs.  We use
// xoshiro256** seeded via SplitMix64 (the construction recommended by the
// xoshiro authors) rather than std::mt19937 because the standard engines do
// not guarantee identical distribution output across library versions.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "util/check.h"

namespace cortex {

// SplitMix64: a tiny 64-bit PRNG used for seeding and hashing.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t Next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// Stateless 64-bit mix; used as a hash for feature hashing and Markov keys.
constexpr std::uint64_t Mix64(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xoshiro256**: fast, high-quality 256-bit-state generator.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eedULL) noexcept { Reseed(seed); }

  void Reseed(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.Next();
  }

  std::uint64_t NextU64() noexcept {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform double in [0, 1).
  double NextDouble() noexcept {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * NextDouble();
  }

  // Uniform integer in [0, n). Requires n > 0.
  std::uint64_t NextBelow(std::uint64_t n) noexcept {
    DCHECK_GT(n, 0u);
    // Lemire's nearly-divisionless bounded generation.
    __uint128_t m = static_cast<__uint128_t>(NextU64()) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = -n % n;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(NextU64()) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) noexcept {
    DCHECK_LE(lo, hi);
    return lo + static_cast<std::int64_t>(
                    NextBelow(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  bool Bernoulli(double p) noexcept { return NextDouble() < p; }

  // Standard normal via Marsaglia polar method.
  double Normal(double mean = 0.0, double stddev = 1.0) noexcept;

  // Exponential with the given rate (mean 1/rate).
  double Exponential(double rate) noexcept {
    return -std::log(1.0 - NextDouble()) / rate;
  }

  // Log-normal parameterised by the mean/stddev of the underlying normal.
  double LogNormal(double mu, double sigma) noexcept {
    return std::exp(Normal(mu, sigma));
  }

  // Pareto with scale x_m and shape alpha (heavy-tailed latencies).
  double Pareto(double x_m, double alpha) noexcept {
    return x_m / std::pow(1.0 - NextDouble(), 1.0 / alpha);
  }

  // Pick a uniformly random element index of a non-empty span.
  template <typename T>
  std::size_t PickIndex(std::span<const T> items) noexcept {
    DCHECK(!items.empty());
    return static_cast<std::size_t>(NextBelow(items.size()));
  }

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[NextBelow(i)]);
    }
  }

  // Sample an index from unnormalised non-negative weights (linear scan).
  // Total mass must be > 0 (CHECKed): an all-zero weight vector has no
  // meaningful distribution — callers own their degenerate fallback.
  std::size_t WeightedIndex(std::span<const double> weights) noexcept;

 private:
  static constexpr std::uint64_t Rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

// Zipf(s) sampler over ranks {0, 1, ..., n-1} using precomputed CDF
// inversion (exact, O(log n) per sample).  Rank 0 is the most popular item.
class ZipfSampler {
 public:
  // n: universe size; s: skew exponent (the paper uses zipfian-0.99).
  ZipfSampler(std::size_t n, double s);

  std::size_t Sample(Rng& rng) const noexcept;

  // Probability mass of the given rank.
  double Pmf(std::size_t rank) const noexcept;

  std::size_t universe_size() const noexcept { return cdf_.size(); }
  double skew() const noexcept { return skew_; }

 private:
  std::vector<double> cdf_;  // cumulative probabilities, cdf_.back() == 1.0
  double skew_;
};

}  // namespace cortex
