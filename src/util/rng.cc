#include "util/rng.h"

#include <algorithm>

namespace cortex {

double Rng::Normal(double mean, double stddev) noexcept {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u, v, s;
  do {
    u = Uniform(-1.0, 1.0);
    v = Uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  have_spare_normal_ = true;
  return mean + stddev * u * factor;
}

std::size_t Rng::WeightedIndex(std::span<const double> weights) noexcept {
  DCHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += w;
  CHECK_GT(total, 0.0) << "weights must not be all-zero";
  double target = NextDouble() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // numerical edge: land on the last item
}

ZipfSampler::ZipfSampler(std::size_t n, double s) : cdf_(n), skew_(s) {
  CHECK_GT(n, 0u);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;
}

std::size_t ZipfSampler::Sample(Rng& rng) const noexcept {
  const double u = rng.NextDouble();
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(std::min<std::ptrdiff_t>(
      it - cdf_.begin(), static_cast<std::ptrdiff_t>(cdf_.size()) - 1));
}

double ZipfSampler::Pmf(std::size_t rank) const noexcept {
  DCHECK_LT(rank, cdf_.size());
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

}  // namespace cortex
