// Count-min sketch: fixed-memory approximate frequency counts with
// one-sided error (never under-counts).  Used by the cache's admission
// doorkeeper to estimate how often a query fingerprint has been seen
// recently without storing the queries themselves.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace cortex {

class CountMinSketch {
 public:
  // width: counters per row (error ~ total/width); depth: independent rows
  // (failure probability ~ exp(-depth)).
  CountMinSketch(std::size_t width = 1024, std::size_t depth = 4,
                 std::uint64_t seed = 0xC0FFEE);

  void Add(std::string_view item, std::uint32_t count = 1);
  // Estimated count; >= the true count, never less.
  std::uint32_t Estimate(std::string_view item) const;

  // Halves every counter — the TinyLFU aging step that keeps estimates
  // tracking the recent window instead of all of history.
  void Halve();

  std::uint64_t total_additions() const noexcept { return additions_; }
  std::size_t width() const noexcept { return width_; }
  std::size_t depth() const noexcept { return depth_; }

  void Reset();

 private:
  std::size_t Slot(std::string_view item, std::size_t row) const;

  std::size_t width_;
  std::size_t depth_;
  std::uint64_t seed_;
  std::vector<std::uint32_t> counters_;  // depth_ x width_, row-major
  std::uint64_t additions_ = 0;
};

}  // namespace cortex
