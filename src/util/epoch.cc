#include "util/epoch.h"

#include <chrono>
#include <thread>
#include <utility>

#include "util/check.h"

namespace cortex {

namespace {

std::atomic<std::uint64_t> g_domain_serial{1};

// Per-thread cache of claimed slots, keyed by (domain address, serial).
// Entries for destroyed domains go stale harmlessly: the serial check
// rejects them even if the address is recycled by a new domain.
struct SlotCacheEntry {
  const void* domain = nullptr;
  std::uint64_t serial = 0;
  std::size_t slot = 0;
};

thread_local std::vector<SlotCacheEntry> t_slot_cache;

// MRU entry in front of the vector scan: probe-heavy threads re-enter the
// same domain millions of times, and two plain thread_local reads beat a
// loop over the cache on every one of them.
thread_local SlotCacheEntry t_last_slot;

}  // namespace

EpochDomain::EpochDomain() : serial_(g_domain_serial.fetch_add(1)) {}

EpochDomain::~EpochDomain() {
  for (const Slot& s : slots_) {
    CHECK_EQ(s.epoch.load(std::memory_order_seq_cst), 0u)
        << "EpochDomain destroyed while a reader is inside a critical "
           "section";
  }
  // No reader can exist any more; run everything still pending.
  std::vector<RetiredItem> pending;
  {
    MutexLock lock(retire_mu_);
    pending.swap(retired_);
  }
  for (RetiredItem& item : pending) item.fn();
}

std::size_t EpochDomain::SlotForThisThread() {
  if (t_last_slot.domain == this && t_last_slot.serial == serial_) {
    return t_last_slot.slot;
  }
  for (const SlotCacheEntry& e : t_slot_cache) {
    if (e.domain == this && e.serial == serial_) {
      t_last_slot = e;
      return e.slot;
    }
  }
  for (std::size_t i = 0; i < kMaxSlots; ++i) {
    bool expected = false;
    if (slots_[i].claimed.compare_exchange_strong(
            expected, true, std::memory_order_acq_rel)) {
      t_slot_cache.push_back({this, serial_, i});
      t_last_slot = {this, serial_, i};
      return i;
    }
  }
  CHECK(false) << "EpochDomain: more than " << kMaxSlots
               << " distinct reader threads over this domain's lifetime";
  return 0;
}

void EpochDomain::Retire(std::function<void()> fn) {
  DCHECK(fn != nullptr);
  // seq_cst: orders this stamp after the caller's (seq_cst) unlink in
  // the single total order the grace-period proof runs in.
  const std::uint64_t e = epoch_.load(std::memory_order_seq_cst);
  MutexLock lock(retire_mu_);
  retired_.push_back({e, std::move(fn)});
}

bool EpochDomain::AllSlotsQuiescentOrAt(std::uint64_t epoch) const noexcept {
  for (const Slot& s : slots_) {
    const std::uint64_t v = s.epoch.load(std::memory_order_seq_cst);
    if (v != 0 && v != epoch) return false;
  }
  return true;
}

std::size_t EpochDomain::Flush() {
  std::vector<RetiredItem> due;
  {
    MutexLock lock(retire_mu_);
    std::uint64_t e = epoch_.load(std::memory_order_acquire);
    // Two advances per flush at most: enough to drain a quiescent domain
    // in one call without spinning the epoch counter unboundedly.
    for (int round = 0; round < 2; ++round) {
      if (!AllSlotsQuiescentOrAt(e)) break;
      // seq_cst so a reader's subsequent slot store (which follows its
      // epoch load) can never appear to precede this advance.
      epoch_.store(e + 1, std::memory_order_seq_cst);
      e = e + 1;
    }
    const std::uint64_t safe = e >= 2 ? e - 2 : 0;
    auto keep = retired_.begin();
    for (auto it = retired_.begin(); it != retired_.end(); ++it) {
      if (it->epoch <= safe) {
        due.push_back(std::move(*it));
      } else {
        if (keep != it) *keep = std::move(*it);
        ++keep;
      }
    }
    retired_.erase(keep, retired_.end());
  }
  // Run callbacks with no internal lock held: they may take locks or
  // Retire() more garbage.
  for (RetiredItem& item : due) item.fn();
  return due.size();
}

void EpochDomain::DrainBlocking() {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (pending_retired() > 0) {
    Flush();
    if (pending_retired() == 0) break;
    CHECK(std::chrono::steady_clock::now() < deadline)
        << "EpochDomain::DrainBlocking stalled: a reader has been inside "
           "a critical section for 30s";
    std::this_thread::yield();
  }
}

std::size_t EpochDomain::pending_retired() const {
  MutexLock lock(retire_mu_);
  return retired_.size();
}

EpochReadGuard::EpochReadGuard(EpochDomain& domain)
    : domain_(domain), slot_(domain.SlotForThisThread()) {
  std::atomic<std::uint64_t>& slot = domain_.slots_[slot_].epoch;
  CHECK_EQ(slot.load(std::memory_order_relaxed), 0u)
      << "nested EpochReadGuard on the same domain";
  // Publish-then-revalidate: the seq_cst store makes this thread's
  // presence visible before any subsequent load in the critical section
  // (StoreLoad), and the re-check bounds how stale the stamped epoch can
  // be — at most one advance behind, which the two-epoch grace period
  // already tolerates.
  std::uint64_t e = domain_.epoch_.load(std::memory_order_seq_cst);
  for (;;) {
    slot.store(e, std::memory_order_seq_cst);
    const std::uint64_t now = domain_.epoch_.load(std::memory_order_seq_cst);
    if (now == e) break;
    e = now;
  }
  lock_order_internal::OnAcquire(static_cast<int>(LockRank::kEpochCritical),
                                 "epoch.read");
}

EpochReadGuard::~EpochReadGuard() {
  lock_order_internal::OnRelease(static_cast<int>(LockRank::kEpochCritical));
  // Release: everything this reader did inside the section
  // happens-before a flusher that observes the slot clear.
  domain_.slots_[slot_].epoch.store(0, std::memory_order_release);
}

}  // namespace cortex
