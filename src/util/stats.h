// Streaming statistics and latency histograms used by the simulation
// metrics layer and the bench harnesses.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace cortex {

// Welford-style streaming mean/variance plus min/max.
class StreamingStats {
 public:
  void Add(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  std::size_t count() const noexcept { return count_; }
  double sum() const noexcept { return sum_; }
  double mean() const noexcept { return count_ ? mean_ : 0.0; }
  double variance() const noexcept {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  double stddev() const noexcept;
  double min() const noexcept { return count_ ? min_ : 0.0; }
  double max() const noexcept { return count_ ? max_ : 0.0; }

  void Merge(const StreamingStats& other) noexcept;
  void Reset() noexcept { *this = StreamingStats{}; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// HDR-style histogram over non-negative values with bounded relative error.
// Buckets grow geometrically, giving ~1% resolution across nine decades;
// percentile queries are exact to bucket resolution.
class Histogram {
 public:
  // growth: per-bucket geometric growth factor (default ~1% relative error).
  explicit Histogram(double min_value = 1e-6, double growth = 1.02);

  void Add(double value) noexcept;
  void Merge(const Histogram& other);

  std::size_t count() const noexcept { return count_; }
  double mean() const noexcept { return count_ ? sum_ / count_ : 0.0; }
  double min() const noexcept { return count_ ? min_ : 0.0; }
  double max() const noexcept { return count_ ? max_ : 0.0; }

  // q in [0, 1]; returns a value v such that ~q of samples are <= v.
  double Quantile(double q) const noexcept;
  double p50() const noexcept { return Quantile(0.50); }
  double p90() const noexcept { return Quantile(0.90); }
  double p99() const noexcept { return Quantile(0.99); }

  void Reset() noexcept;

  // One-line summary, e.g. "n=100 mean=1.2 p50=1.1 p99=3.4 max=5.0".
  std::string Summary() const;

 private:
  std::size_t BucketFor(double value) const noexcept;
  double BucketUpper(std::size_t bucket) const noexcept;

  double min_value_;
  double log_growth_;
  std::vector<std::uint64_t> buckets_;
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Ratio counter for hit rates, retry ratios, etc.
class RatioCounter {
 public:
  void AddHit() noexcept { ++hits_; }
  void AddMiss() noexcept { ++misses_; }
  void Add(bool hit) noexcept { hit ? ++hits_ : ++misses_; }

  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }
  std::uint64_t total() const noexcept { return hits_ + misses_; }
  double ratio() const noexcept {
    const auto t = total();
    return t ? static_cast<double>(hits_) / static_cast<double>(t) : 0.0;
  }
  void Reset() noexcept { hits_ = misses_ = 0; }

 private:
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

// Pearson correlation of two equal-length series (used by workload
// burst-correlation analysis for Figure 3).
double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b);

// Least-squares slope of log(y) vs log(x) — used to verify Zipf exponents.
double LogLogSlope(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace cortex
