// Ranked mutexes: deadlock prevention by construction.  Every mutex in
// the serving tier carries a LockRank, and a thread may only acquire a
// mutex whose rank is STRICTLY GREATER than every rank it already holds
// (so same-rank reacquisition — e.g. two shard mutexes at once — is also
// an inversion).  A per-thread stack of held ranks is maintained and a
// violation aborts via CHECK with both lock names in the message.
//
// The checker is debug-only by default (on when NDEBUG is not defined);
// release builds pay one relaxed atomic load per lock/unlock.  Tests
// force it on at runtime with SetLockOrderChecksForTesting(true) so the
// inversion death-test works in every build type.
//
// The lock-rank table for the serving tier lives in DESIGN.md §7.
#pragma once

#include <atomic>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "util/check.h"
#include "util/thread_annotations.h"

namespace cortex {

// Ranks are spaced out so future locks can slot in between.  Acquisition
// must follow strictly increasing rank; shard mutexes are leaves.
enum class LockRank : int {
  // Cluster-router locks rank below the node-side serving tier: a router
  // worker only ever holds router locks (node calls go over sockets), so
  // the two tables never interleave on one thread, but keeping the ranks
  // disjoint makes in-process cluster tests checkable too.
  kRouterQueue = 4,         // ClusterRouter acceptor->worker conn queue
  kRouterState = 6,         // ClusterRouter ring + migration-window state
  kRouterNodePool = 8,      // NodePool per-node idle-connection stacks
  kServerQueue = 10,        // CortexServer acceptor->worker conn queue
  kPipelineStage = 14,      // BatchPipeline staging queue + flush wakeup
  kPipelineGpu = 16,        // BatchPipeline gpu::BatchingServer admission
  kServerBucket = 20,       // CortexServer admission token bucket
  kEngineGroundTruth = 30,  // ConcurrentShardedEngine fetch_gt_
  kEngineHousekeeping = 40, // ConcurrentShardedEngine hk wakeup lock
  kEngineShard = 50,        // per-shard cache mutex (leaf)
  kTenantRegistry = 60,     // TenantRegistry quota/metric state (below
                            //   kLeaf so metric lookups stay legal)
  kEpochRetire = 70,        // EpochDomain retire-list mutex: above the
                            //   shard leaf so writers holding shard.mu
                            //   may retire garbage into the domain
  kLeaf = 1000,             // generic leaf for code outside the table
  // Pseudo-rank pushed by EpochReadGuard for the duration of an epoch
  // critical section.  It is ABOVE every real rank, so acquiring any
  // ranked mutex inside an epoch section is an inversion and aborts —
  // epoch sections must stay lock-free or reclamation can stall on a
  // blocked reader.  No mutex may be constructed with this rank.
  kEpochCritical = 2000,
};

namespace lock_order_internal {

// Defined in ranked_mutex.cc so the on/off default (from NDEBUG) is a
// single program-wide definition, not a per-TU inline initializer.
bool ChecksEnabled() noexcept;

struct HeldLock {
  int rank;
  const char* name;
};

inline thread_local std::vector<HeldLock> t_held_locks;

inline void OnAcquire(int rank, const char* name) {
  if (!ChecksEnabled()) return;
  if (!t_held_locks.empty()) {
    const HeldLock& top = t_held_locks.back();
    CHECK(top.rank < rank)
        << "lock-order inversion: acquiring '" << name << "' (rank " << rank
        << ") while holding '" << top.name << "' (rank " << top.rank
        << "); ranks must be strictly increasing (DESIGN.md §7)";
  }
  t_held_locks.push_back({rank, name});
}

inline void OnRelease(int rank) {
  if (!ChecksEnabled()) return;
  // Release in any order: drop the innermost held entry with this rank.
  for (auto it = t_held_locks.rbegin(); it != t_held_locks.rend(); ++it) {
    if (it->rank == rank) {
      t_held_locks.erase(std::next(it).base());
      return;
    }
  }
  CHECK(false) << "releasing rank " << rank
               << " which this thread does not hold";
}

}  // namespace lock_order_internal

// Force the checker on (or off) regardless of build type.  Only for
// tests; not thread-safe against concurrent lock activity, so call it
// before spawning threads.
void SetLockOrderChecksForTesting(bool enabled) noexcept;

class CAPABILITY("mutex") RankedMutex {
 public:
  explicit RankedMutex(LockRank rank, const char* name = "RankedMutex")
      : rank_(static_cast<int>(rank)), name_(name) {}

  RankedMutex(const RankedMutex&) = delete;
  RankedMutex& operator=(const RankedMutex&) = delete;

  void lock() ACQUIRE() {
    lock_order_internal::OnAcquire(rank_, name_);
    mu_.lock();
  }
  bool try_lock() TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    lock_order_internal::OnAcquire(rank_, name_);
    return true;
  }
  void unlock() RELEASE() {
    // Pop the rank first: if this thread does not actually hold the lock
    // the checker aborts before the (undefined) underlying unlock.
    lock_order_internal::OnRelease(rank_);
    mu_.unlock();
  }

  int rank() const noexcept { return rank_; }
  const char* name() const noexcept { return name_; }

 private:
  std::mutex mu_;
  const int rank_;
  const char* const name_;
};

class CAPABILITY("shared_mutex") RankedSharedMutex {
 public:
  explicit RankedSharedMutex(LockRank rank,
                             const char* name = "RankedSharedMutex")
      : rank_(static_cast<int>(rank)), name_(name) {}

  RankedSharedMutex(const RankedSharedMutex&) = delete;
  RankedSharedMutex& operator=(const RankedSharedMutex&) = delete;

  void lock() ACQUIRE() {
    lock_order_internal::OnAcquire(rank_, name_);
    mu_.lock();
  }
  void unlock() RELEASE() {
    lock_order_internal::OnRelease(rank_);
    mu_.unlock();
  }
  void lock_shared() ACQUIRE_SHARED() {
    lock_order_internal::OnAcquire(rank_, name_);
    mu_.lock_shared();
  }
  void unlock_shared() RELEASE_SHARED() {
    lock_order_internal::OnRelease(rank_);
    mu_.unlock_shared();
  }

  int rank() const noexcept { return rank_; }
  const char* name() const noexcept { return name_; }

 private:
  std::shared_mutex mu_;
  const int rank_;
  const char* const name_;
};

// RAII guards.  These (not std::lock_guard/std::unique_lock) are the
// idiom for ranked mutexes: SCOPED_CAPABILITY lets clang's analysis see
// the acquire/release pair, which std:: wrappers are opaque to.

class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(RankedMutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  RankedMutex& mu_;
};

class SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(RankedSharedMutex& mu) ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~WriterLock() RELEASE() { mu_.unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  RankedSharedMutex& mu_;
};

class SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(RankedSharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ~ReaderLock() RELEASE() { mu_.unlock_shared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  RankedSharedMutex& mu_;
};

}  // namespace cortex
