#include "util/ranked_mutex.h"

namespace cortex {

namespace {

// Single program-wide default: lock-order checking is on in debug
// builds, off under NDEBUG (release).  Tests override at runtime.
#if defined(NDEBUG)
std::atomic<bool> g_lock_order_checks{false};
#else
std::atomic<bool> g_lock_order_checks{true};
#endif

}  // namespace

namespace lock_order_internal {

bool ChecksEnabled() noexcept {
  return g_lock_order_checks.load(std::memory_order_relaxed);
}

}  // namespace lock_order_internal

void SetLockOrderChecksForTesting(bool enabled) noexcept {
  g_lock_order_checks.store(enabled, std::memory_order_relaxed);
}

}  // namespace cortex
