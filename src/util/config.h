// Minimal INI-style configuration files for the experiment driver tools.
//
//   # comment
//   [workload]
//   type = skewed
//   tasks = 1000
//
// Keys are addressed as "section.key" ("key" alone for entries before any
// section header).  Values are raw strings; typed getters parse on demand.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace cortex {

class Config {
 public:
  Config() = default;

  // Parses config text; throws std::invalid_argument with a line number on
  // malformed input.
  static Config FromString(std::string_view text);
  // Loads and parses a file; throws std::runtime_error if unreadable.
  static Config FromFile(const std::string& path);

  bool Has(std::string_view key) const;
  std::string GetString(std::string_view key,
                        std::string default_value = "") const;
  std::int64_t GetInt(std::string_view key, std::int64_t default_value) const;
  double GetDouble(std::string_view key, double default_value) const;
  bool GetBool(std::string_view key, bool default_value) const;

  // Explicit set (tools layer command-line overrides).
  void Set(std::string key, std::string value);

  // All keys, sorted (diagnostics, strict-mode validation).
  std::vector<std::string> Keys() const;
  std::size_t size() const noexcept { return values_.size(); }

 private:
  std::map<std::string, std::string, std::less<>> values_;
};

}  // namespace cortex
