#include "util/tokenizer.h"

#include <algorithm>
#include <cctype>

namespace cortex {

namespace {

constexpr const char* kStopwords[] = {
    "a",    "an",   "and",  "are",   "as",    "at",    "be",   "by",
    "did",  "do",   "does", "for",   "from",  "had",   "has",  "have",
    "how",  "i",    "in",   "is",    "it",    "its",   "me",   "my",
    "of",   "on",   "or",   "out",   "please", "s",    "so",   "tell",
    "that", "the",  "their", "them", "then",  "there", "these", "they",
    "this", "to",   "us",   "was",   "we",    "were",  "what", "when",
    "where", "which", "who", "whom", "why",   "will",  "with", "you",
    "your", "about", "can", "could", "would", "should",
};

}  // namespace

Tokenizer::Tokenizer(TokenizerOptions options) : options_(options) {
  for (const char* w : kStopwords) stopwords_.insert(w);
}

bool Tokenizer::IsStopword(std::string_view token) const {
  return stopwords_.contains(std::string(token));
}

std::string Tokenizer::Stem(std::string token) {
  auto ends_with = [&](std::string_view suffix) {
    return token.size() > suffix.size() &&
           token.compare(token.size() - suffix.size(), suffix.size(),
                         suffix) == 0;
  };
  // Possessive, then plural, then verbal suffixes — so inflection stacks
  // ("paintings" -> "painting" -> "paint") reduce to one stem.  Keep stems
  // >= 3 chars so short words ("red") are not mangled.
  if (ends_with("'s")) token.resize(token.size() - 2);
  if (ends_with("ies") && token.size() > 4) {
    token.resize(token.size() - 3);
    token.push_back('y');
  } else if (ends_with("es") && token.size() > 4) {
    token.resize(token.size() - 2);
  } else if (ends_with("s") && !ends_with("ss") && token.size() > 3) {
    token.resize(token.size() - 1);
  }
  if (ends_with("ing") && token.size() > 5) {
    token.resize(token.size() - 3);
  } else if (ends_with("ed") && token.size() > 4) {
    token.resize(token.size() - 2);
  }
  return token;
}

std::vector<std::string> Tokenizer::Tokenize(std::string_view text) const {
  std::vector<std::string> tokens;
  std::string current;
  auto flush = [&] {
    if (current.size() < options_.min_token_length) {
      current.clear();
      return;
    }
    if (options_.stem) current = Stem(std::move(current));
    if (!options_.drop_stopwords || !stopwords_.contains(current)) {
      tokens.push_back(std::move(current));
    }
    current.clear();
  };
  for (char c : text) {
    const auto uc = static_cast<unsigned char>(c);
    if (std::isalnum(uc) || c == '\'' || c == '_') {
      current.push_back(options_.lowercase
                            ? static_cast<char>(std::tolower(uc))
                            : c);
    } else if (!current.empty()) {
      flush();
    }
  }
  if (!current.empty()) flush();
  return tokens;
}

double Tokenizer::LexicalOverlap(std::string_view a,
                                 std::string_view b) const {
  const auto ta = Tokenize(a);
  const auto tb = Tokenize(b);
  if (ta.empty() && tb.empty()) return 1.0;
  if (ta.empty() || tb.empty()) return 0.0;
  std::unordered_set<std::string> sa(ta.begin(), ta.end());
  std::unordered_set<std::string> sb(tb.begin(), tb.end());
  std::size_t inter = 0;
  for (const auto& t : sa) {
    if (sb.contains(t)) ++inter;
  }
  const std::size_t uni = sa.size() + sb.size() - inter;
  return uni == 0 ? 0.0
                  : static_cast<double>(inter) / static_cast<double>(uni);
}

}  // namespace cortex
