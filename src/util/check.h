// CHECK / DCHECK: runtime invariant macros that print file:line, the
// failed condition, and an optional streamed message to stderr, then
// abort() — in ALL build types.  This replaces raw assert(), which
// compiles to nothing under NDEBUG, i.e. exactly in the release builds
// where the serving tier's races and contract violations live.
//
// Policy (DESIGN.md §7):
//   * CHECK*  — API-boundary contracts and states that would corrupt
//     memory or silently serve a wrong answer (null engine pointers,
//     capacity <= 0, mismatched histogram layouts).  Always on.
//   * DCHECK* — per-element invariants on hot paths that are already
//     implied by a CHECK at the boundary (per-vector dimension checks
//     inside an ANN scan).  On when CORTEX_DCHECK_IS_ON, which defaults
//     to 1 in debug builds and 0 under NDEBUG; the condition is NOT
//     evaluated when off, so it must be side-effect free.
//
// Usage:
//   CHECK(ptr != nullptr) << "engine requires a fetcher";
//   CHECK_LT(shard, shards_.size());
//   DCHECK_EQ(a.size(), b.size());
#pragma once

#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>
#include <string>

namespace cortex::check_internal {

// Accumulates the failure message; the destructor (end of the full
// expression, after user `<<` appends) prints and aborts.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition) {
    stream_ << file << ':' << line << ": CHECK failed: " << condition << ' ';
  }
  // Takes ownership of a heap message built by CheckOpMessage.
  CheckFailure(const char* file, int line, std::string* message) {
    stream_ << file << ':' << line << ": CHECK failed: " << *message << ' ';
    delete message;
  }

  CheckFailure(const CheckFailure&) = delete;
  CheckFailure& operator=(const CheckFailure&) = delete;

  // stderr + abort, not exceptions: a failed CHECK means program state is
  // already outside its invariants, and abort() preserves the core/stack
  // for the sanitizer and death-test harnesses.
  [[noreturn]] ~CheckFailure() {
    stream_ << '\n';
    const std::string message = stream_.str();
    std::fwrite(message.data(), 1, message.size(), stderr);
    std::fflush(stderr);
    std::abort();
  }

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

// `Voidify() & ostream` swallows the stream expression into a void so the
// macro can sit in the false branch of a ternary.  `&` binds looser than
// `<<`, so user appends happen first.
struct Voidify {
  void operator&(std::ostream&) const {}
};

// Never-executed sink for compiled-out DCHECKs; keeps `<< msg` operands
// type-checked without evaluating them.
inline std::ostream& NullStream() {
  static std::ostringstream sink;
  sink.setstate(std::ios_base::badbit);
  return sink;
}

struct EqOp {
  static constexpr const char* kName = "==";
  template <typename A, typename B>
  static bool Cmp(const A& a, const B& b) {
    return a == b;
  }
};
struct NeOp {
  static constexpr const char* kName = "!=";
  template <typename A, typename B>
  static bool Cmp(const A& a, const B& b) {
    return a != b;
  }
};
struct LtOp {
  static constexpr const char* kName = "<";
  template <typename A, typename B>
  static bool Cmp(const A& a, const B& b) {
    return a < b;
  }
};
struct LeOp {
  static constexpr const char* kName = "<=";
  template <typename A, typename B>
  static bool Cmp(const A& a, const B& b) {
    return a <= b;
  }
};
struct GtOp {
  static constexpr const char* kName = ">";
  template <typename A, typename B>
  static bool Cmp(const A& a, const B& b) {
    return a > b;
  }
};
struct GeOp {
  static constexpr const char* kName = ">=";
  template <typename A, typename B>
  static bool Cmp(const A& a, const B& b) {
    return a >= b;
  }
};

// Returns nullptr when the comparison holds, else a heap string
// "a_text op b_text (value_a vs. value_b)" consumed by CheckFailure.
template <typename Op, typename A, typename B>
inline std::string* CheckOpMessage(const char* a_text, const char* b_text,
                                   const A& a, const B& b) {
  if (__builtin_expect(Op::Cmp(a, b), 1)) return nullptr;
  std::ostringstream os;
  os << a_text << ' ' << Op::kName << ' ' << b_text << " (" << a << " vs. "
     << b << ')';
  return new std::string(os.str());
}

}  // namespace cortex::check_internal

#define CHECK(condition)                                                 \
  (__builtin_expect(static_cast<bool>(condition), 1))                    \
      ? (void)0                                                          \
      : ::cortex::check_internal::Voidify() &                            \
            ::cortex::check_internal::CheckFailure(__FILE__, __LINE__,   \
                                                   #condition)           \
                .stream()

// if/else (rather than ternary) so the comparison's operands are
// evaluated exactly once and the streamed values survive to the message.
#define CORTEX_CHECK_OP(OpClass, a, b)                                    \
  if (std::string* cortex_check_msg_ =                                    \
          ::cortex::check_internal::CheckOpMessage<                       \
              ::cortex::check_internal::OpClass>(#a, #b, (a), (b));       \
      cortex_check_msg_ == nullptr) {                                     \
  } else                                                                  \
    ::cortex::check_internal::Voidify() &                                 \
        ::cortex::check_internal::CheckFailure(__FILE__, __LINE__,        \
                                               cortex_check_msg_)         \
            .stream()

#define CHECK_EQ(a, b) CORTEX_CHECK_OP(EqOp, a, b)
#define CHECK_NE(a, b) CORTEX_CHECK_OP(NeOp, a, b)
#define CHECK_LT(a, b) CORTEX_CHECK_OP(LtOp, a, b)
#define CHECK_LE(a, b) CORTEX_CHECK_OP(LeOp, a, b)
#define CHECK_GT(a, b) CORTEX_CHECK_OP(GtOp, a, b)
#define CHECK_GE(a, b) CORTEX_CHECK_OP(GeOp, a, b)

// CORTEX_DCHECK_IS_ON may be forced per translation unit (define before
// including this header); otherwise it tracks NDEBUG.
#if !defined(CORTEX_DCHECK_IS_ON)
#if defined(NDEBUG)
#define CORTEX_DCHECK_IS_ON 0
#else
#define CORTEX_DCHECK_IS_ON 1
#endif
#endif

#if CORTEX_DCHECK_IS_ON

#define DCHECK(condition) CHECK(condition)
#define DCHECK_EQ(a, b) CHECK_EQ(a, b)
#define DCHECK_NE(a, b) CHECK_NE(a, b)
#define DCHECK_LT(a, b) CHECK_LT(a, b)
#define DCHECK_LE(a, b) CHECK_LE(a, b)
#define DCHECK_GT(a, b) CHECK_GT(a, b)
#define DCHECK_GE(a, b) CHECK_GE(a, b)

#else  // !CORTEX_DCHECK_IS_ON

// `while (false && ...)` never evaluates the condition or the streamed
// operands at runtime, but keeps them ODR-used and type-checked, so
// disabling DCHECK cannot introduce unused-variable warnings or hide
// compile errors.
#define CORTEX_DCHECK_DISCARD(boolexpr)                 \
  while (false && static_cast<bool>(boolexpr))          \
  ::cortex::check_internal::Voidify() &                 \
      ::cortex::check_internal::NullStream()

#define DCHECK(condition) CORTEX_DCHECK_DISCARD(condition)
#define DCHECK_EQ(a, b) CORTEX_DCHECK_DISCARD((a) == (b))
#define DCHECK_NE(a, b) CORTEX_DCHECK_DISCARD((a) != (b))
#define DCHECK_LT(a, b) CORTEX_DCHECK_DISCARD((a) < (b))
#define DCHECK_LE(a, b) CORTEX_DCHECK_DISCARD((a) <= (b))
#define DCHECK_GT(a, b) CORTEX_DCHECK_DISCARD((a) > (b))
#define DCHECK_GE(a, b) CORTEX_DCHECK_DISCARD((a) >= (b))

#endif  // CORTEX_DCHECK_IS_ON
