#include "util/stats.h"

#include <cmath>
#include <sstream>

#include "util/check.h"

namespace cortex {

double StreamingStats::stddev() const noexcept { return std::sqrt(variance()); }

void StreamingStats::Merge(const StreamingStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Histogram::Histogram(double min_value, double growth)
    : min_value_(min_value), log_growth_(std::log(growth)) {
  CHECK_GT(min_value, 0.0);
  CHECK_GT(growth, 1.0);
}

std::size_t Histogram::BucketFor(double value) const noexcept {
  if (value <= min_value_) return 0;
  const double b = std::log(value / min_value_) / log_growth_;
  return static_cast<std::size_t>(b) + 1;
}

double Histogram::BucketUpper(std::size_t bucket) const noexcept {
  if (bucket == 0) return min_value_;
  return min_value_ * std::exp(log_growth_ * static_cast<double>(bucket));
}

void Histogram::Add(double value) noexcept {
  value = std::max(value, 0.0);
  const std::size_t b = BucketFor(value);
  if (b >= buckets_.size()) buckets_.resize(b + 1, 0);
  ++buckets_[b];
  ++count_;
  sum_ += value;
  if (count_ == 1) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
}

void Histogram::Merge(const Histogram& other) {
  CHECK(min_value_ == other.min_value_ && log_growth_ == other.log_growth_)
      << "merging histograms with different bucket layouts";
  if (other.count_ == 0) return;
  if (other.buckets_.size() > buckets_.size()) {
    buckets_.resize(other.buckets_.size(), 0);
  }
  for (std::size_t i = 0; i < other.buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

double Histogram::Quantile(double q) const noexcept {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target && buckets_[i] > 0) {
      return std::min(BucketUpper(i), max_);
    }
  }
  return max_;
}

void Histogram::Reset() noexcept {
  buckets_.clear();
  count_ = 0;
  sum_ = 0.0;
  min_ = max_ = 0.0;
}

std::string Histogram::Summary() const {
  std::ostringstream os;
  os << "n=" << count_ << " mean=" << mean() << " p50=" << p50()
     << " p99=" << p99() << " max=" << max();
  return os.str();
}

double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b) {
  CHECK_EQ(a.size(), b.size());
  if (a.size() < 2) return 0.0;
  const auto n = static_cast<double>(a.size());
  double sa = 0, sb = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    sa += a[i];
    sb += b[i];
  }
  const double ma = sa / n, mb = sb / n;
  double cov = 0, va = 0, vb = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    cov += (a[i] - ma) * (b[i] - mb);
    va += (a[i] - ma) * (a[i] - ma);
    vb += (b[i] - mb) * (b[i] - mb);
  }
  if (va == 0.0 || vb == 0.0) return 0.0;
  return cov / std::sqrt(va * vb);
}

double LogLogSlope(const std::vector<double>& x,
                   const std::vector<double>& y) {
  CHECK_EQ(x.size(), y.size());
  std::vector<double> lx, ly;
  lx.reserve(x.size());
  ly.reserve(y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] > 0.0 && y[i] > 0.0) {
      lx.push_back(std::log(x[i]));
      ly.push_back(std::log(y[i]));
    }
  }
  if (lx.size() < 2) return 0.0;
  const auto n = static_cast<double>(lx.size());
  double sx = 0, sy = 0, sxy = 0, sxx = 0;
  for (std::size_t i = 0; i < lx.size(); ++i) {
    sx += lx[i];
    sy += ly[i];
    sxy += lx[i] * ly[i];
    sxx += lx[i] * lx[i];
  }
  const double denom = n * sxx - sx * sx;
  if (denom == 0.0) return 0.0;
  return (n * sxy - sx * sy) / denom;
}

}  // namespace cortex
