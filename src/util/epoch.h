// Epoch-based reclamation (EBR): lock-free read sections with deferred
// frees — the generalization of the PR 3 seqlock flight-recorder idiom
// into a reusable primitive (DESIGN.md §13).
//
// The shape is the classic three-epoch scheme:
//
//   * readers wrap each access to epoch-protected state in an
//     EpochReadGuard, which stamps a per-thread slot with the global
//     epoch on entry and clears it on exit — no lock, no RMW on a
//     shared line, just one seq_cst store each way;
//   * writers unlink state (e.g. swap an atomic snapshot pointer), then
//     Retire() a destructor callback, stamped with the current epoch;
//   * a housekeeping thread calls Flush(): the global epoch advances
//     only when every active reader slot carries the current epoch, so
//     once the epoch has advanced twice past a retired item no reader
//     can still hold a reference and the callback runs.
//
// Memory ordering (TSan-checked by tests/test_epoch.cc): the reader's
// guard-exit release-store of 0 (or a later seq_cst re-entry store)
// synchronizes-with the flusher's seq_cst slot scan, so every access
// inside the critical section happens-before the deferred free.  No
// std::atomic_thread_fence — TSan does not model fences.
//
// Contract for protected pointers: writers must unlink with a seq_cst
// store/exchange and readers must load the pointer with seq_cst, inside
// the guard.  The grace-period proof runs in the seq_cst total order: a
// reader whose slot was stamped at epoch e+1 before the writer's unlink
// is guaranteed to observe the NEW pointer, so only readers stamped <= e
// can hold state retired at e — and those block the second advance.  An
// acquire-only load could legally return the stale pointer and break
// reclamation.
//
// Lock discipline: EpochReadGuard pushes LockRank::kEpochCritical (the
// highest pseudo-rank) onto the per-thread held-lock stack, so acquiring
// ANY ranked mutex inside an epoch section aborts in checked builds and
// is flagged by cortex_analyzer.  Retire()/Flush() take the domain's
// internal kEpochRetire (70) mutex and are therefore themselves illegal
// inside a read section, but legal while holding a shard lock (50).
//
// Thread slots: a thread claims one slot per domain on its first guard
// and keeps it for the domain's lifetime (slots of exited threads stay
// claimed but quiescent, so they never stall reclamation).  A domain
// supports kMaxSlots distinct reader threads over its whole lifetime;
// exceeding that CHECK-aborts with a clear message.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "util/ranked_mutex.h"
#include "util/thread_annotations.h"

namespace cortex {

class EpochDomain {
 public:
  // Distinct reader threads a domain can ever see (claims are permanent).
  static constexpr std::size_t kMaxSlots = 512;

  EpochDomain();
  // Requires quiescence: CHECK-aborts if any reader is still inside a
  // critical section.  Pending retire callbacks run immediately (no
  // grace period needed once no reader can exist).
  ~EpochDomain();

  EpochDomain(const EpochDomain&) = delete;
  EpochDomain& operator=(const EpochDomain&) = delete;

  // Defers `fn` until two epoch advances from now.  Call AFTER the
  // retired state is unreachable for new readers (pointer swapped out).
  // Legal while holding a shard lock (rank < 70); illegal inside an
  // epoch read section (rank check aborts).
  void Retire(std::function<void()> fn);

  // Tries to advance the epoch (possible when every active reader slot
  // carries the current epoch), then runs every callback whose grace
  // period has elapsed.  Callbacks run with no internal lock held, so
  // they may Retire() again or take locks.  Returns callbacks run.
  std::size_t Flush();

  // Flushes until no retired item remains, yielding between rounds.
  // CHECK-aborts after ~30s — a reader parked inside a critical section
  // that long is a bug, not a wait.
  void DrainBlocking();

  // seq_cst, not acquire: limbo-list users stamp unlink epochs with this
  // value right after a seq_cst unlink (see the pointer contract above),
  // and the stamp must not read older than the epoch at the unlink's
  // position in the seq_cst total order — an earlier value would shave
  // one epoch off the grace period.
  std::uint64_t current_epoch() const noexcept {
    return epoch_.load(std::memory_order_seq_cst);
  }
  // Items retired at epoch <= safe_epoch() are past their grace period:
  // no reader can still hold a reference.  For callers that keep their
  // own limbo lists (e.g. slab row reuse) instead of Retire callbacks.
  std::uint64_t safe_epoch() const noexcept {
    const std::uint64_t e = current_epoch();
    return e >= 2 ? e - 2 : 0;
  }
  // Retired items whose callbacks have not yet run (tests/metrics).
  std::size_t pending_retired() const;

 private:
  friend class EpochReadGuard;

  struct alignas(64) Slot {
    // 0 = quiescent; otherwise the epoch the reader entered at.
    std::atomic<std::uint64_t> epoch{0};
    std::atomic<bool> claimed{false};
  };

  struct RetiredItem {
    std::uint64_t epoch = 0;
    std::function<void()> fn;
  };

  // The slot this thread owns in this domain, claiming one on first use.
  std::size_t SlotForThisThread();
  bool AllSlotsQuiescentOrAt(std::uint64_t epoch) const noexcept;

  // Identifies this domain instance across address reuse: a destroyed
  // domain's address may be recycled, and per-thread slot caches key on
  // (address, serial) so a stale cache entry can never alias a new
  // domain.
  const std::uint64_t serial_;
  // Starts at 1 so a slot value of 0 always means quiescent.
  std::atomic<std::uint64_t> epoch_{1};
  Slot slots_[kMaxSlots];  // per-slot atomics // cortex-analyzer: allow(guarded-by)

  mutable RankedMutex retire_mu_{LockRank::kEpochRetire, "epoch.retire_mu"};
  std::vector<RetiredItem> retired_ GUARDED_BY(retire_mu_);
};

// RAII epoch critical section.  Nesting on the same domain CHECK-aborts
// (the slot holds one epoch); nesting across distinct domains is fine.
class EpochReadGuard {
 public:
  explicit EpochReadGuard(EpochDomain& domain);
  ~EpochReadGuard();

  EpochReadGuard(const EpochReadGuard&) = delete;
  EpochReadGuard& operator=(const EpochReadGuard&) = delete;

 private:
  EpochDomain& domain_;
  std::size_t slot_;
};

}  // namespace cortex
