// Minimal command-line flag parsing for bench and example binaries.
// Supports `--name=value`, `--name value`, and boolean `--name`.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace cortex {

class Flags {
 public:
  // Parses argv; unknown positional arguments are kept in positional().
  // Throws std::invalid_argument on malformed input (e.g. "--=x").
  Flags(int argc, const char* const* argv);

  bool Has(std::string_view name) const;

  std::string GetString(std::string_view name,
                        std::string default_value = "") const;
  std::int64_t GetInt(std::string_view name, std::int64_t default_value) const;
  double GetDouble(std::string_view name, double default_value) const;
  // A bare `--flag` counts as true; "false"/"0"/"no" are false.
  bool GetBool(std::string_view name, bool default_value = false) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::optional<std::string> Lookup(std::string_view name) const;

  std::map<std::string, std::string, std::less<>> values_;
  std::vector<std::string> positional_;
};

}  // namespace cortex
