#include "util/config.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace cortex {

namespace {

std::string_view Trim(std::string_view s) {
  const auto first = s.find_first_not_of(" \t\r");
  if (first == std::string_view::npos) return {};
  const auto last = s.find_last_not_of(" \t\r");
  return s.substr(first, last - first + 1);
}

}  // namespace

Config Config::FromString(std::string_view text) {
  Config config;
  std::string section;
  std::size_t line_number = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const auto eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos
                                           : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_number;

    line = Trim(line);
    if (line.empty() || line.front() == '#' || line.front() == ';') continue;

    if (line.front() == '[') {
      if (line.back() != ']' || line.size() < 3) {
        throw std::invalid_argument("config line " +
                                    std::to_string(line_number) +
                                    ": malformed section header");
      }
      section = std::string(Trim(line.substr(1, line.size() - 2)));
      continue;
    }

    const auto eq = line.find('=');
    if (eq == std::string_view::npos) {
      throw std::invalid_argument("config line " +
                                  std::to_string(line_number) +
                                  ": expected key = value");
    }
    const auto key = Trim(line.substr(0, eq));
    const auto value = Trim(line.substr(eq + 1));
    if (key.empty()) {
      throw std::invalid_argument("config line " +
                                  std::to_string(line_number) +
                                  ": empty key");
    }
    const std::string full_key =
        section.empty() ? std::string(key) : section + "." + std::string(key);
    config.values_[full_key] = std::string(value);
  }
  return config;
}

Config Config::FromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("config: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return FromString(buffer.str());
}

bool Config::Has(std::string_view key) const {
  return values_.find(key) != values_.end();
}

std::string Config::GetString(std::string_view key,
                              std::string default_value) const {
  const auto it = values_.find(key);
  return it == values_.end() ? default_value : it->second;
}

std::int64_t Config::GetInt(std::string_view key,
                            std::int64_t default_value) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  try {
    return std::stoll(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("config key '" + std::string(key) +
                                "' expects an integer, got '" + it->second +
                                "'");
  }
}

double Config::GetDouble(std::string_view key, double default_value) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("config key '" + std::string(key) +
                                "' expects a number, got '" + it->second +
                                "'");
  }
}

bool Config::GetBool(std::string_view key, bool default_value) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw std::invalid_argument("config key '" + std::string(key) +
                              "' expects a boolean, got '" + v + "'");
}

void Config::Set(std::string key, std::string value) {
  values_[std::move(key)] = std::move(value);
}

std::vector<std::string> Config::Keys() const {
  std::vector<std::string> keys;
  keys.reserve(values_.size());
  for (const auto& [key, value] : values_) keys.push_back(key);
  return keys;
}

}  // namespace cortex
