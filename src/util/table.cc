#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace cortex {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::Num(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string TextTable::Percent(double ratio, int precision) {
  return Num(ratio * 100.0, precision) + "%";
}

std::string TextTable::Render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      os << ' ' << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    os << '\n';
  };
  emit_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string TextTable::RenderCsv() const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += "\"\"";
      else out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << quote(cells[c]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void TextTable::Print(std::ostream& os, bool csv) const {
  os << (csv ? RenderCsv() : Render());
}

}  // namespace cortex
