#include "util/count_min.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

#include "util/rng.h"

namespace cortex {

namespace {

std::uint64_t HashItem(std::string_view s, std::uint64_t seed) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL ^ seed;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return Mix64(h);
}

}  // namespace

CountMinSketch::CountMinSketch(std::size_t width, std::size_t depth,
                               std::uint64_t seed)
    : width_(width), depth_(depth), seed_(seed),
      counters_(width * depth, 0) {
  CHECK_GT(width, 0u);
  CHECK_GT(depth, 0u);
}

std::size_t CountMinSketch::Slot(std::string_view item,
                                 std::size_t row) const {
  return row * width_ +
         HashItem(item, seed_ + 0x9e3779b97f4a7c15ULL * (row + 1)) % width_;
}

void CountMinSketch::Add(std::string_view item, std::uint32_t count) {
  for (std::size_t row = 0; row < depth_; ++row) {
    auto& counter = counters_[Slot(item, row)];
    counter = counter > std::numeric_limits<std::uint32_t>::max() - count
                  ? std::numeric_limits<std::uint32_t>::max()
                  : counter + count;
  }
  additions_ += count;
}

std::uint32_t CountMinSketch::Estimate(std::string_view item) const {
  std::uint32_t best = std::numeric_limits<std::uint32_t>::max();
  for (std::size_t row = 0; row < depth_; ++row) {
    best = std::min(best, counters_[Slot(item, row)]);
  }
  return best;
}

void CountMinSketch::Halve() {
  for (auto& counter : counters_) counter >>= 1;
  additions_ >>= 1;
}

void CountMinSketch::Reset() {
  std::fill(counters_.begin(), counters_.end(), 0);
  additions_ = 0;
}

}  // namespace cortex
