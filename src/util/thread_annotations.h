// Clang thread-safety-analysis attribute macros (enforced with
// -Wthread-safety; CMake turns that on automatically under clang, and
// CORTEX_WERROR promotes violations to errors).  Under gcc every macro
// expands to nothing, so the annotations are pure documentation there.
//
// The names and semantics follow the "capability" vocabulary from the
// clang Thread Safety Analysis docs: a mutex is a capability; GUARDED_BY
// ties data to the capability that must be held to touch it; REQUIRES /
// ACQUIRE / RELEASE describe what a function expects or does.
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define CORTEX_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define CORTEX_THREAD_ANNOTATION(x)  // no-op
#endif

#define CAPABILITY(x) CORTEX_THREAD_ANNOTATION(capability(x))

#define SCOPED_CAPABILITY CORTEX_THREAD_ANNOTATION(scoped_lockable)

#define GUARDED_BY(x) CORTEX_THREAD_ANNOTATION(guarded_by(x))

#define PT_GUARDED_BY(x) CORTEX_THREAD_ANNOTATION(pt_guarded_by(x))

#define ACQUIRED_BEFORE(...) \
  CORTEX_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

#define ACQUIRED_AFTER(...) \
  CORTEX_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

#define REQUIRES(...) \
  CORTEX_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

#define REQUIRES_SHARED(...) \
  CORTEX_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

#define ACQUIRE(...) \
  CORTEX_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

#define ACQUIRE_SHARED(...) \
  CORTEX_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

#define RELEASE(...) \
  CORTEX_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

#define RELEASE_SHARED(...) \
  CORTEX_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

#define RELEASE_GENERIC(...) \
  CORTEX_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

#define TRY_ACQUIRE(...) \
  CORTEX_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

#define TRY_ACQUIRE_SHARED(...) \
  CORTEX_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

#define EXCLUDES(...) CORTEX_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

#define ASSERT_CAPABILITY(x) CORTEX_THREAD_ANNOTATION(assert_capability(x))

#define ASSERT_SHARED_CAPABILITY(x) \
  CORTEX_THREAD_ANNOTATION(assert_shared_capability(x))

#define RETURN_CAPABILITY(x) CORTEX_THREAD_ANNOTATION(lock_returned(x))

#define NO_THREAD_SAFETY_ANALYSIS \
  CORTEX_THREAD_ANNOTATION(no_thread_safety_analysis)
