#include "util/flags.h"

#include <stdexcept>

namespace cortex {

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (!arg.starts_with("--")) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    if (arg.empty()) {
      throw std::invalid_argument("bare '--' is not a valid flag");
    }
    const auto eq = arg.find('=');
    if (eq != std::string_view::npos) {
      if (eq == 0) throw std::invalid_argument("flag with empty name");
      values_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
    } else if (i + 1 < argc && std::string_view(argv[i + 1]).substr(0, 2) !=
                                   "--") {
      values_[std::string(arg)] = argv[++i];
    } else {
      values_[std::string(arg)] = "true";
    }
  }
}

std::optional<std::string> Flags::Lookup(std::string_view name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

bool Flags::Has(std::string_view name) const {
  return values_.find(name) != values_.end();
}

std::string Flags::GetString(std::string_view name,
                             std::string default_value) const {
  auto v = Lookup(name);
  return v ? *v : default_value;
}

std::int64_t Flags::GetInt(std::string_view name,
                           std::int64_t default_value) const {
  auto v = Lookup(name);
  if (!v) return default_value;
  try {
    return std::stoll(*v);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + std::string(name) +
                                " expects an integer, got '" + *v + "'");
  }
}

double Flags::GetDouble(std::string_view name, double default_value) const {
  auto v = Lookup(name);
  if (!v) return default_value;
  try {
    return std::stod(*v);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + std::string(name) +
                                " expects a number, got '" + *v + "'");
  }
}

bool Flags::GetBool(std::string_view name, bool default_value) const {
  auto v = Lookup(name);
  if (!v) return default_value;
  return !(*v == "false" || *v == "0" || *v == "no");
}

}  // namespace cortex
