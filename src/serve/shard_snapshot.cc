#include "serve/shard_snapshot.h"

#include <algorithm>
#include <cstddef>
#include <span>

#include "embedding/simd_kernels.h"
#include "util/check.h"

namespace cortex::serve {

SnapshotScanResult SnapshotScan(const ShardSnapshot& snap,
                                const Vector& query_embedding) {
  SnapshotScanResult out;
  out.have_snapshot = true;
  out.sine = snap.sine;
  const std::size_t n = snap.size();
  out.scanned = n;
  if (n == 0) return out;
  DCHECK_EQ(query_embedding.size(), snap.dim);

  const std::span<const float> q(query_embedding);
  std::vector<float> sims(n);
  double slack = kQuantSimSlack;
  switch (snap.format) {
    case RowFormat::kF32:
      simd::DotRows(q, snap.rows_f32.data(), n, sims.data());
      slack = 0.0;  // same precision as the locked path's float scan
      break;
    case RowFormat::kF16:
      simd::DotRowsF16(q, snap.rows_f16.data(), n, sims.data());
      break;
    case RowFormat::kI8: {
      // One query quantization per probe; the integer dot itself is exact.
      std::vector<std::int8_t> q8(snap.dim);
      const float q_scale = simd::QuantizeRowI8(q, q8.data());
      simd::DotRowsI8(q8.data(), q_scale, snap.rows_i8.data(),
                      snap.scales_i8.data(), n, snap.dim, sims.data());
      break;
    }
  }

  // Prefilter at tau_sim minus the quantization slack, then keep a pool
  // wide enough that the exact rerank's true top-k is always inside it
  // (FlatIndex's two-phase argument, with extra width for the larger
  // quantized error).
  const double floor = snap.sine.tau_sim - slack;
  std::vector<std::uint32_t> keep;
  keep.reserve(64);
  for (std::size_t i = 0; i < n; ++i) {
    if (static_cast<double>(sims[i]) >= floor) {
      keep.push_back(static_cast<std::uint32_t>(i));
    }
  }
  const std::size_t pool_size =
      std::min(keep.size(), std::max<std::size_t>(4 * snap.sine.top_k, 32));
  const auto ranked = [&](std::uint32_t a, std::uint32_t b) {
    return sims[a] != sims[b] ? sims[a] > sims[b]
                              : snap.records[a]->id < snap.records[b]->id;
  };
  std::partial_sort(keep.begin(),
                    keep.begin() + static_cast<std::ptrdiff_t>(pool_size),
                    keep.end(), ranked);
  out.pool.reserve(pool_size);
  for (std::size_t i = 0; i < pool_size; ++i) {
    out.pool.push_back({snap.records[keep[i]], sims[keep[i]]});
  }
  return out;
}

SemanticCache::LookupResult SnapshotValidate(SnapshotScanResult scan,
                                             Vector query_embedding,
                                             std::string_view query,
                                             double now,
                                             std::string_view tenant,
                                             const JudgerModel* judger) {
  SemanticCache::LookupResult result;
  result.query_embedding = std::move(query_embedding);
  if (!scan.have_snapshot || scan.pool.empty()) return result;
  const SineOptions& opt = scan.sine;

  // Exact rerank over the fp32 originals with the scalar double kernel —
  // the same rescoring FlatIndex::Search applies, so the candidate list
  // below is what the locked kFlat path would have produced.
  const auto& exact = simd::KernelsFor(simd::Variant::kScalar);
  struct Ranked {
    double sim;
    const PooledCandidate* c;
  };
  std::vector<Ranked> ranked;
  ranked.reserve(scan.pool.size());
  for (const PooledCandidate& c : scan.pool) {
    const double sim =
        exact.dot(result.query_embedding.data(), c.record->embedding.data(),
                  result.query_embedding.size());
    if (sim >= opt.tau_sim) ranked.push_back({sim, &c});
  }
  std::sort(ranked.begin(), ranked.end(), [](const Ranked& a, const Ranked& b) {
    return a.sim != b.sim ? a.sim > b.sim : a.c->record->id < b.c->record->id;
  });
  if (ranked.size() > opt.top_k) ranked.resize(opt.top_k);
  result.sine.ann_candidates = ranked.size();

  // Visibility mirrors SemanticCache::Probe's accessor: future-dated and
  // expired entries are skipped (never removed — this path is read-only),
  // and another tenant's private entries stay invisible.  The truncation
  // above deliberately ran FIRST: stage 1 has no tenant concept in the
  // locked path either, so invisible entries consume top_k slots there
  // too.
  const auto visible = [&](const ProbeRecord& r) {
    return r.created_at <= now && r.expiration_time > now &&
           (r.tenant.empty() || r.tenant == tenant);
  };

  if (!opt.use_judger) {
    // Agent_ANN ablation: top similarity wins outright.
    for (const Ranked& r : ranked) {
      if (r.sim < opt.ann_only_threshold) continue;
      const ProbeRecord& rec = *r.c->record;
      if (!visible(rec)) continue;
      result.sine.match = SineCandidate{rec.id, r.sim, 0.0};
      result.hit = CacheHit{rec.id, rec.value, rec.key, r.sim, 0.0};
      break;  // candidates are sorted best-first
    }
    return result;
  }

  CHECK(judger != nullptr) << "use_judger requires a judger model";
  for (const Ranked& r : ranked) {
    const ProbeRecord& rec = *r.c->record;
    if (!visible(rec)) continue;
    JudgeRequest req;
    req.query = query;
    req.cached_query = rec.key;
    req.cached_result = rec.value;
    req.embedding_similarity = r.sim;
    const double score = judger->Judge(req);
    ++result.sine.judger_calls;
    result.sine.judged.push_back({rec.id, r.sim, score});
    if (score >= opt.tau_lsm) {
      result.sine.match = SineCandidate{rec.id, r.sim, score};
      result.hit = CacheHit{rec.id, rec.value, rec.key, r.sim, score};
      break;
    }
  }
  return result;
}

}  // namespace cortex::serve
