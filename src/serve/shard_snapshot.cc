#include "serve/shard_snapshot.h"

#include <algorithm>
#include <cstddef>

#include "embedding/simd_kernels.h"
#include "util/check.h"

namespace cortex::serve {

double SnapshotSlack(RowFormat format) noexcept {
  // f32 scans at the same precision as the locked path's float scan; the
  // quantized formats need headroom for roundtrip error.
  return format == RowFormat::kF32 ? 0.0 : kQuantSimSlack;
}

void SnapshotScanRank(const ShardSnapshot& snap, std::span<const float> query,
                      ProbeScratch& scratch) {
  scratch.ranked.clear();
  const std::size_t n = snap.size();
  if (n == 0) return;
  DCHECK_EQ(query.size(), snap.dim);

  scratch.sims.resize(n);
  switch (snap.format) {
    case RowFormat::kF32:
      simd::DotRows(query, snap.rows_f32.data(), n, scratch.sims.data());
      break;
    case RowFormat::kF16:
      simd::DotRowsF16(query, snap.rows_f16.data(), n, scratch.sims.data());
      break;
    case RowFormat::kI8: {
      // One query quantization per probe; the integer dot itself is exact.
      scratch.q8.resize(snap.dim);
      const float q_scale = simd::QuantizeRowI8(query, scratch.q8.data());
      simd::DotRowsI8(scratch.q8.data(), q_scale, snap.rows_i8.data(),
                      snap.scales_i8.data(), n, snap.dim,
                      scratch.sims.data());
      break;
    }
  }
  SnapshotRankFromSims(snap, query, scratch.sims.data(), scratch);
}

void SnapshotRankFromSims(const ShardSnapshot& snap,
                          std::span<const float> query, const float* sims,
                          ProbeScratch& scratch) {
  scratch.ranked.clear();
  const std::size_t n = snap.size();
  if (n == 0) return;

  // Prefilter at tau_sim minus the quantization slack, then keep a pool
  // wide enough that the exact rerank's true top-k is always inside it
  // (FlatIndex's two-phase argument, with extra width for the larger
  // quantized error).
  const double floor = snap.sine.tau_sim - SnapshotSlack(snap.format);
  auto& keep = scratch.keep;
  keep.clear();
  for (std::size_t i = 0; i < n; ++i) {
    if (static_cast<double>(sims[i]) >= floor) {
      keep.push_back(static_cast<std::uint32_t>(i));
    }
  }
  const std::size_t pool_size =
      std::min(keep.size(), std::max<std::size_t>(4 * snap.sine.top_k, 32));
  const auto pooled = [&](std::uint32_t a, std::uint32_t b) {
    return sims[a] != sims[b] ? sims[a] > sims[b]
                              : snap.records[a]->id < snap.records[b]->id;
  };
  std::partial_sort(keep.begin(),
                    keep.begin() + static_cast<std::ptrdiff_t>(pool_size),
                    keep.end(), pooled);

  // Exact rerank over the fp32 originals with the scalar double kernel —
  // the same rescoring FlatIndex::Search applies, so the ranked list is
  // what the locked kFlat path would have produced.
  const auto& exact = simd::KernelsFor(simd::Variant::kScalar);
  for (std::size_t i = 0; i < pool_size; ++i) {
    const std::uint32_t idx = keep[i];
    const ProbeRecord* rec = snap.records[idx].get();
    const double sim =
        exact.dot(query.data(), rec->embedding.data(), query.size());
    if (sim >= snap.sine.tau_sim) scratch.ranked.push_back({sim, rec, idx});
  }
  std::sort(scratch.ranked.begin(), scratch.ranked.end(),
            [](const RankedCandidate& a, const RankedCandidate& b) {
              return a.sim != b.sim ? a.sim > b.sim
                                    : a.record->id < b.record->id;
            });
  if (scratch.ranked.size() > snap.sine.top_k) {
    scratch.ranked.resize(snap.sine.top_k);
  }
}

void SnapshotScanMq(const ShardSnapshot& snap, const float* queries,
                    std::size_t nq, std::size_t qstride,
                    ProbeScratch& scratch, float* sims_out) {
  const std::size_t n = snap.size();
  if (n == 0 || nq == 0) return;
  switch (snap.format) {
    case RowFormat::kF32:
      simd::DotRowsMq(queries, nq, qstride, snap.rows_f32.data(), n, snap.dim,
                      sims_out);
      break;
    case RowFormat::kF16:
      simd::DotRowsF16Mq(queries, nq, qstride, snap.rows_f16.data(), n,
                         snap.dim, sims_out);
      break;
    case RowFormat::kI8: {
      // Quantize every query once per batch; the per-(query,row) score is
      // then bitwise the sequential DotRowsI8 result.
      scratch.q8.resize(nq * snap.dim);
      scratch.q8_scales.resize(nq);
      for (std::size_t q = 0; q < nq; ++q) {
        scratch.q8_scales[q] = simd::QuantizeRowI8(
            std::span<const float>(queries + q * qstride, snap.dim),
            scratch.q8.data() + q * snap.dim);
      }
      simd::DotRowsI8Mq(scratch.q8.data(), scratch.q8_scales.data(), nq,
                        snap.dim, snap.rows_i8.data(), snap.scales_i8.data(),
                        n, snap.dim, sims_out);
      break;
    }
  }
}

SemanticCache::LookupResult SnapshotJudge(
    std::span<const RankedCandidate> ranked, const SineOptions& opt,
    Vector query_embedding, std::string_view query, double now,
    std::string_view tenant, const JudgerModel* judger) {
  SemanticCache::LookupResult result;
  result.query_embedding = std::move(query_embedding);
  result.sine.ann_candidates = ranked.size();
  if (ranked.empty()) return result;

  // Visibility mirrors SemanticCache::Probe's accessor: future-dated and
  // expired entries are skipped (never removed — this path is read-only),
  // and another tenant's private entries stay invisible.  The top_k
  // truncation deliberately ran FIRST: stage 1 has no tenant concept in
  // the locked path either, so invisible entries consume top_k slots
  // there too.
  const auto visible = [&](const ProbeRecord& r) {
    return r.created_at <= now && r.expiration_time > now &&
           (r.tenant.empty() || r.tenant == tenant);
  };

  if (!opt.use_judger) {
    // Agent_ANN ablation: top similarity wins outright.
    for (const RankedCandidate& r : ranked) {
      if (r.sim < opt.ann_only_threshold) continue;
      const ProbeRecord& rec = *r.record;
      if (!visible(rec)) continue;
      result.sine.match = SineCandidate{rec.id, r.sim, 0.0};
      result.hit = CacheHit{rec.id, rec.value, rec.key, r.sim, 0.0};
      break;  // candidates are sorted best-first
    }
    return result;
  }

  CHECK(judger != nullptr) << "use_judger requires a judger model";
  for (const RankedCandidate& r : ranked) {
    const ProbeRecord& rec = *r.record;
    if (!visible(rec)) continue;
    JudgeRequest req;
    req.query = query;
    req.cached_query = rec.key;
    req.cached_result = rec.value;
    req.embedding_similarity = r.sim;
    const double score = judger->Judge(req);
    ++result.sine.judger_calls;
    result.sine.judged.push_back({rec.id, r.sim, score});
    if (score >= opt.tau_lsm) {
      result.sine.match = SineCandidate{rec.id, r.sim, score};
      result.hit = CacheHit{rec.id, rec.value, rec.key, r.sim, score};
      break;
    }
  }
  return result;
}

}  // namespace cortex::serve
