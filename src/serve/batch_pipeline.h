// BatchPipeline: cross-request lookup batching for the serving tier
// (DESIGN.md §14).
//
// Worker threads hand parsed LOOKUP/TLOOKUP requests to Lookup(), which
// stages them on a bounded FIFO queue and blocks until the request's
// batch completes.  A small pool of pipeline threads drains the queue in
// groups under a work-conserving fill-or-deadline policy: when the
// pipeline is idle (no batch in flight) whatever is staged flushes
// immediately, so batching never adds latency the engine wasn't already
// busy for; while batches are processing, a flusher holds out for more
// arrivals until max_batch requests are staged (a "full flush") or the
// OLDEST staged request has waited batch_window_us (a "window flush") —
// under load every stage amortizes across the whole batch:
//
//   stage 1  one HashedEmbedder pass over the batch into a contiguous
//            64-byte-aligned query matrix;
//   stage 2  per probed shard, ONE epoch-guarded multi-query scan
//            (dot_*_mq kernels: slab bytes stream through cache once per
//            batch, not once per query) plus the exact per-query rerank;
//   stage 3  judger verdicts, then ONE gpu::BatchingServer admission for
//            the whole batch's verdicts (the single choke point allowed
//            to dispatch lookup work to the judger partition — enforced
//            by cortex_lint rule `gpu-choke-point`).
//
// Stages 1-2 and the per-request semantics live in
// ConcurrentShardedEngine::LookupBatch; results are bit-identical to
// sequential Lookup calls.  max_batch <= 1 (or num_threads == 0)
// degenerates to direct engine calls with no staging and no threads.
//
// Fairness: staging is strictly FIFO, and per-tenant admission
// (CortexServer::AdmitRequest) runs BEFORE staging — a tenant over quota
// is bounced without ever occupying a batch slot, so batching cannot be
// used to cut the admission line.
//
// Shutdown: Drain() flushes everything staged (in-flight batches always
// complete), after which Lookup() falls back to synchronous engine
// calls.  The destructor drains.
//
// Lock order (DESIGN.md §7): stage_mu_ (14) < gpu_mu_ (16) < the
// engine's locks (30-50); each staged request's completion latch is a
// kLeaf (1000) mutex held last.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <optional>
#include <string_view>
#include <thread>
#include <vector>

#include "gpu/batching_server.h"
#include "serve/concurrent_engine.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "util/ranked_mutex.h"
#include "util/thread_annotations.h"

namespace cortex::serve {

struct BatchPipelineOptions {
  // Flush a batch at this many staged requests.  <= 1 disables the
  // pipeline entirely (Lookup == engine->Lookup, no threads spawned).
  std::size_t max_batch = 16;
  // Window flush deadline: a staged request never waits longer than this
  // for its batch to fill.
  std::uint64_t batch_window_us = 200;
  // Pipeline drain threads.  0 disables like max_batch <= 1.
  std::size_t num_threads = 2;
  // Registry for cortex_pipeline_* instruments; when null the pipeline
  // publishes into the engine's registry.
  telemetry::MetricRegistry* registry = nullptr;
  // Judger inference partition model for stage-3 admission.
  BatchingServerOptions gpu;
};

class BatchPipeline {
 public:
  // The engine is borrowed and must outlive the pipeline.
  BatchPipeline(ConcurrentShardedEngine* engine,
                BatchPipelineOptions options = {});
  ~BatchPipeline();

  BatchPipeline(const BatchPipeline&) = delete;
  BatchPipeline& operator=(const BatchPipeline&) = delete;

  // Stages the lookup and blocks until its batch flushes; returns exactly
  // what engine->Lookup(query, trace, tenant) would have.  `query` and
  // `tenant` are borrowed only for the duration of the call.  When the
  // pipeline is disabled or drained, runs the engine call inline.
  // (Waits on the completion latch through a std::unique_lock, opaque to
  // clang's analysis; lock order stays machine-checked by RankedMutex.)
  std::optional<CacheHit> Lookup(std::string_view query,
                                 telemetry::RequestTrace* trace = nullptr,
                                 std::string_view tenant = {})
      NO_THREAD_SAFETY_ANALYSIS;

  // Completes every staged and in-flight request, then stops the
  // pipeline threads.  Afterwards Lookup() degenerates to synchronous
  // engine calls.  Idempotent; safe from any thread (not from inside a
  // staged Lookup).  (cv-wait through std::unique_lock, see Lookup.)
  void Drain() NO_THREAD_SAFETY_ANALYSIS;

  bool enabled() const noexcept { return enabled_; }
  const BatchPipelineOptions& options() const noexcept { return options_; }

 private:
  // One staged request, stack-allocated in the blocking Lookup() frame.
  // The request fields are frozen at construction (before the frame is
  // published to the queue); only the latch state below mutates after.
  struct Pending {
    Pending(std::string_view q, std::string_view t,
            telemetry::RequestTrace* tr, double staged) noexcept
        : query(q), tenant(t), trace(tr), staged_at(staged) {}

    const std::string_view query;
    const std::string_view tenant;
    telemetry::RequestTrace* const trace;
    const double staged_at;  // WallSeconds() at staging

    // Completion latch.  The pipeline thread sets the outputs and `done`
    // under `mu` and notifies while still holding it, so the waiter
    // cannot destroy this frame before the completer is finished with it.
    RankedMutex mu{LockRank::kLeaf, "pipeline.pending_mu"};
    std::condition_variable_any cv;
    bool done GUARDED_BY(mu) = false;
    std::optional<CacheHit> hit GUARDED_BY(mu);
  };

  // Waits on cvs through std::unique_lock, which clang's analysis cannot
  // see through — excluded from analysis, lock order still machine-checked
  // by RankedMutex.
  void PipelineLoop() NO_THREAD_SAFETY_ANALYSIS;
  // Runs one flushed batch through the engine + gpu admission and
  // completes every member.  Called without stage_mu_ held.
  void ProcessBatch(std::vector<Pending*>& batch, bool full_flush);

  ConcurrentShardedEngine* const engine_;
  const BatchPipelineOptions options_;
  const bool enabled_;

  RankedMutex stage_mu_{LockRank::kPipelineStage, "pipeline.stage_mu"};
  std::condition_variable_any stage_cv_;
  std::deque<Pending*> staged_ GUARDED_BY(stage_mu_);
  std::size_t in_flight_batches_ GUARDED_BY(stage_mu_) = 0;
  bool stop_ GUARDED_BY(stage_mu_) = false;
  bool drained_ GUARDED_BY(stage_mu_) = false;

  // Stage-3 admission.  BatchingServer is not thread-safe and requires
  // non-decreasing arrival times; both enforced here.
  RankedMutex gpu_mu_{LockRank::kPipelineGpu, "pipeline.gpu_mu"};
  BatchingServer gpu_ GUARDED_BY(gpu_mu_);
  double last_gpu_now_ GUARDED_BY(gpu_mu_) = 0.0;

  std::vector<std::thread> threads_;

  // cortex_pipeline_* instruments, resolved once at construction.
  telemetry::MetricRegistry* registry_ = nullptr;
  telemetry::Counter* requests_ = nullptr;
  telemetry::Counter* batches_ = nullptr;
  telemetry::Counter* full_flushes_ = nullptr;
  telemetry::Counter* window_flushes_ = nullptr;
  telemetry::AtomicHistogram* batch_size_ = nullptr;
  telemetry::AtomicHistogram* stage_wait_seconds_ = nullptr;
  telemetry::AtomicHistogram* gpu_queue_delay_seconds_ = nullptr;
  telemetry::AtomicHistogram* gpu_batch_occupancy_ = nullptr;
};

}  // namespace cortex::serve
