// BlockingClient: a minimal synchronous cortexd client — one request in
// flight at a time, used by cortex_loadgen's client threads and the
// serving-layer tests.  Not thread-safe by design — it owns no mutex, so
// cortex_analyzer's guarded-by check does not apply; give each thread its
// own client (the cluster router's NodePool does exactly that).
#pragma once

#include <optional>
#include <string>

#include "serve/protocol.h"

namespace cortex::serve {

class BlockingClient {
 public:
  BlockingClient() = default;
  ~BlockingClient();

  BlockingClient(const BlockingClient&) = delete;
  BlockingClient& operator=(const BlockingClient&) = delete;
  BlockingClient(BlockingClient&& other) noexcept;
  BlockingClient& operator=(BlockingClient&& other) noexcept;

  // Returns false and fills `error` on failure.
  bool ConnectTcp(const std::string& host, int port,
                  std::string* error = nullptr);
  bool ConnectUnix(const std::string& path, std::string* error = nullptr);
  bool connected() const noexcept { return fd_ >= 0; }
  void Close();

  // Caps how long a Call() blocks on the socket (send or receive); <= 0
  // restores "block forever".  Sticky across reconnects.  A timed-out call
  // fails with a "timed out" error and closes the connection — the caller
  // cannot tell how much of the exchange landed, so the stream is dead
  // (the cluster router treats this as a failover signal).
  void SetCallTimeout(double seconds);

  // Raises the largest response frame this client will accept (cluster
  // SNAPSHOT payloads dwarf the 1 MiB default).  Resets the frame decoder,
  // so only call between calls, not mid-stream.
  void SetMaxFrameBytes(std::size_t max_frame_bytes);

  // One-round HELLO/WELCOME version + role negotiation (protocol.h).
  // Optional — servers accept clients that never send HELLO — but peers
  // that do handshake fail fast on version mismatch instead of
  // desynchronizing later.  Returns false and closes on mismatch or
  // transport failure.
  bool Handshake(const std::string& role, std::string* error = nullptr);

  // Sends one request and blocks for its response.  nullopt on transport
  // or protocol failure (the connection is closed; `error` gets a reason).
  std::optional<Response> Call(const Request& request,
                               std::string* error = nullptr);

  // Raw frame round-trip, for tests that exercise malformed payloads.
  std::optional<std::string> CallRaw(std::string_view payload,
                                     std::string* error = nullptr);

 private:
  bool SendFrame(std::string_view payload, std::string* error);
  std::optional<std::string> ReadFrame(std::string* error);
  void ApplyTimeout();

  int fd_ = -1;
  double call_timeout_sec_ = 0.0;
  FrameDecoder decoder_;
};

}  // namespace cortex::serve
