// BlockingClient: a minimal synchronous cortexd client — one request in
// flight at a time, used by cortex_loadgen's client threads and the
// serving-layer tests.  Not thread-safe; give each thread its own client.
#pragma once

#include <optional>
#include <string>

#include "serve/protocol.h"

namespace cortex::serve {

class BlockingClient {
 public:
  BlockingClient() = default;
  ~BlockingClient();

  BlockingClient(const BlockingClient&) = delete;
  BlockingClient& operator=(const BlockingClient&) = delete;
  BlockingClient(BlockingClient&& other) noexcept;
  BlockingClient& operator=(BlockingClient&& other) noexcept;

  // Returns false and fills `error` on failure.
  bool ConnectTcp(const std::string& host, int port,
                  std::string* error = nullptr);
  bool ConnectUnix(const std::string& path, std::string* error = nullptr);
  bool connected() const noexcept { return fd_ >= 0; }
  void Close();

  // Sends one request and blocks for its response.  nullopt on transport
  // or protocol failure (the connection is closed; `error` gets a reason).
  std::optional<Response> Call(const Request& request,
                               std::string* error = nullptr);

  // Raw frame round-trip, for tests that exercise malformed payloads.
  std::optional<std::string> CallRaw(std::string_view payload,
                                     std::string* error = nullptr);

 private:
  bool SendFrame(std::string_view payload, std::string* error);
  std::optional<std::string> ReadFrame(std::string* error);

  int fd_ = -1;
  FrameDecoder decoder_;
};

}  // namespace cortex::serve
