#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace cortex::serve {

namespace {

void SetError(std::string* error, const std::string& message) {
  if (error) *error = message;
}

std::string Errno(std::string_view what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

BlockingClient::~BlockingClient() { Close(); }

BlockingClient::BlockingClient(BlockingClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      call_timeout_sec_(other.call_timeout_sec_),
      decoder_(std::move(other.decoder_)) {}

BlockingClient& BlockingClient::operator=(BlockingClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    call_timeout_sec_ = other.call_timeout_sec_;
    decoder_ = std::move(other.decoder_);
  }
  return *this;
}

void BlockingClient::SetCallTimeout(double seconds) {
  call_timeout_sec_ = seconds;
  ApplyTimeout();
}

void BlockingClient::SetMaxFrameBytes(std::size_t max_frame_bytes) {
  decoder_ = FrameDecoder(max_frame_bytes);
}

void BlockingClient::ApplyTimeout() {
  if (fd_ < 0) return;
  timeval tv{};
  if (call_timeout_sec_ > 0.0) {
    tv.tv_sec = static_cast<time_t>(call_timeout_sec_);
    tv.tv_usec = static_cast<suseconds_t>(
        (call_timeout_sec_ - static_cast<double>(tv.tv_sec)) * 1e6);
  }
  // Zeroed timeval = block forever (the setsockopt convention).
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

bool BlockingClient::Handshake(const std::string& role, std::string* error) {
  Request hello;
  hello.type = RequestType::kHello;
  hello.version = kProtocolVersion;
  hello.role = role;
  const auto response = Call(hello, error);
  if (!response) return false;
  if (response->type == ResponseType::kError) {
    SetError(error, "handshake rejected: " + response->message);
    Close();
    return false;
  }
  if (response->type != ResponseType::kWelcome ||
      response->id != kProtocolVersion) {
    SetError(error, "handshake failed: unexpected response");
    Close();
    return false;
  }
  return true;
}

void BlockingClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool BlockingClient::ConnectTcp(const std::string& host, int port,
                                std::string* error) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    SetError(error, Errno("socket"));
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    SetError(error, "bad host " + host);
    Close();
    return false;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    SetError(error, Errno("connect(" + host + ")"));
    Close();
    return false;
  }
  ApplyTimeout();
  return true;
}

bool BlockingClient::ConnectUnix(const std::string& path, std::string* error) {
  Close();
  sockaddr_un addr{};
  if (path.size() >= sizeof addr.sun_path) {
    SetError(error, "unix socket path too long");
    return false;
  }
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    SetError(error, Errno("socket"));
    return false;
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    SetError(error, Errno("connect(" + path + ")"));
    Close();
    return false;
  }
  ApplyTimeout();
  return true;
}

bool BlockingClient::SendFrame(std::string_view payload, std::string* error) {
  std::string out;
  AppendFrame(payload, out);
  std::string_view data = out;
  while (!data.empty()) {
    const ssize_t n = ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        SetError(error, "send timed out");
      } else {
        SetError(error, Errno("send"));
      }
      Close();
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

std::optional<std::string> BlockingClient::ReadFrame(std::string* error) {
  std::string payload;
  char buf[16 * 1024];
  for (;;) {
    switch (decoder_.Next(&payload)) {
      case FrameDecoder::Status::kFrame:
        return payload;
      case FrameDecoder::Status::kOversized:
        SetError(error, "oversized response frame");
        Close();
        return std::nullopt;
      case FrameDecoder::Status::kNeedMore:
        break;
    }
    const ssize_t n = ::read(fd_, buf, sizeof buf);
    if (n == 0) {
      SetError(error, "server closed the connection");
      Close();
      return std::nullopt;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        SetError(error, "read timed out");
      } else {
        SetError(error, Errno("read"));
      }
      Close();
      return std::nullopt;
    }
    decoder_.Feed(std::string_view(buf, static_cast<std::size_t>(n)));
  }
}

std::optional<Response> BlockingClient::Call(const Request& request,
                                             std::string* error) {
  if (fd_ < 0) {
    SetError(error, "not connected");
    return std::nullopt;
  }
  if (!SendFrame(EncodePayload(request), error)) return std::nullopt;
  const auto payload = ReadFrame(error);
  if (!payload) return std::nullopt;
  auto response = ParseResponse(*payload, error);
  if (!response) Close();
  return response;
}

std::optional<std::string> BlockingClient::CallRaw(std::string_view payload,
                                                   std::string* error) {
  if (fd_ < 0) {
    SetError(error, "not connected");
    return std::nullopt;
  }
  if (!SendFrame(payload, error)) return std::nullopt;
  return ReadFrame(error);
}

}  // namespace cortex::serve
