#include "serve/serving_world.h"

#include <exception>

#include "workload/trace_io.h"

namespace cortex::serve {

std::unique_ptr<ServingWorld> BuildServingWorld(const Flags& flags,
                                                std::string* error) {
  auto world = std::make_unique<ServingWorld>();

  const std::string trace = flags.GetString("trace");
  if (!trace.empty()) {
    try {
      world->bundle = LoadWorkloadTraceFile(trace);
    } catch (const std::exception& e) {
      if (error) *error = "failed to load trace " + trace + ": " + e.what();
      return nullptr;
    }
  } else {
    const std::string name = flags.GetString("workload", "musique");
    const auto tasks = static_cast<std::size_t>(flags.GetInt("tasks", 1000));
    if (name == "swebench") {
      SweBenchProfile profile;
      profile.num_issues = tasks;
      if (flags.Has("seed")) {
        profile.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 31));
      }
      world->bundle = BuildSweBenchWorkload(profile);
    } else {
      SearchDatasetProfile profile;
      if (name == "musique") {
        profile = SearchDatasetProfile::Musique();
      } else if (name == "zilliz") {
        profile = SearchDatasetProfile::ZillizGpt();
      } else if (name == "hotpotqa") {
        profile = SearchDatasetProfile::HotpotQa();
      } else if (name == "2wiki") {
        profile = SearchDatasetProfile::TwoWiki();
      } else if (name == "strategyqa") {
        profile = SearchDatasetProfile::StrategyQa();
      } else {
        if (error) {
          *error = "unknown --workload '" + name +
                   "' (musique|zilliz|hotpotqa|2wiki|strategyqa|swebench)";
        }
        return nullptr;
      }
      profile.num_tasks = tasks;
      if (flags.Has("seed")) {
        profile.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 11));
      }
      world->bundle = BuildSkewedSearchWorkload(profile);
    }
  }

  // Fit the embedder on the full query corpus, as every serving stack does
  // (Sine's thresholds are calibrated for the IDF-fitted model).
  const auto corpus = world->bundle.AllQueries();
  world->embedder.FitIdf(corpus);
  world->judger = std::make_unique<JudgerModel>(world->bundle.oracle.get());
  return world;
}

}  // namespace cortex::serve
