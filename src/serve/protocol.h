// The cortexd wire protocol: length-prefixed text frames over a byte
// stream (TCP or a Unix-domain socket).
//
// Framing: every message is a 4-byte big-endian payload length followed by
// the payload.  Frames above the negotiated maximum are a protocol error
// (the connection is dropped — a malicious length prefix must not make the
// server buffer gigabytes).
//
// Payload grammar (fields separated by a single TAB; the *last* field of
// INSERT / HIT / ERR takes the rest of the payload, so values may contain
// tabs; keys and queries may not):
//
//   request  = "LOOKUP" TAB query
//            | "INSERT" TAB staticity TAB key TAB value
//            | "TLOOKUP" TAB tenant TAB query      ; tenant-scoped lookup:
//                                                  ; matches the tenant's
//                                                  ; namespace + shared pool
//            | "TINSERT" TAB tenant TAB shareable TAB staticity
//                        TAB key TAB value         ; tenant-scoped insert;
//                                                  ; shareable is 0|1 (may
//                                                  ; this value graduate to
//                                                  ; the shared pool?)
//            | "STATS"
//            | "DUMPTRACE" [TAB max_traces]
//            | "PING"
//            | "HELLO" TAB version TAB role   ; optional one-round version +
//                                             ; role negotiation (see below)
//            | "SNAPSHOT"                     ; dump full engine state
//            | "RESTORE" TAB blob             ; load an engine snapshot (blob
//                                             ; is the last field: arbitrary
//                                             ; binary bytes)
//            | "MIGRATE" TAB name TAB endpoint  ; router-only: add node +
//                                               ; rebalance (live migration)
//            | "CLUSTER"                      ; router-only: ring/node status
//   response = "HIT" TAB similarity TAB judger_score TAB matched_key TAB value
//            | "MISS"
//            | "OK" TAB id               ; insert accepted
//            | "REJECT"                  ; insert refused (capacity/admission)
//            | "PONG"
//            | "STATS" *(TAB key "=" value)
//            | "TRACES" TAB count TAB text  ; flight-recorder dump (text is
//                                           ; the last field: may hold tabs
//                                           ; and newlines)
//            | "WELCOME" TAB version TAB role  ; HELLO accepted
//            | "SNAPSHOT" TAB count TAB blob   ; engine snapshot bytes (blob
//                                              ; is the last field)
//            | "BUSY"                    ; overload backpressure — retry later
//            | "ERR" TAB message
//
// HELLO handshake: a peer MAY open a connection with one HELLO frame naming
// its protocol version and role ("client", "router", "node").  A matching
// major version gets WELCOME echoing the server's version + role; a
// mismatch gets ERR and the connection should be closed — both sides fail
// fast instead of desynchronizing on unknown commands later.  Peers that
// skip HELLO (all pre-cluster clients) keep working unchanged.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cortex::serve {

inline constexpr std::size_t kFrameHeaderBytes = 4;
inline constexpr std::size_t kDefaultMaxFrameBytes = 1 << 20;  // 1 MiB

// Wire-protocol version negotiated by HELLO.  Bump on any grammar change
// that an old peer cannot safely ignore.  v2 added the tenant-scoped
// TLOOKUP/TINSERT verbs.
inline constexpr std::uint32_t kProtocolVersion = 2;

// Appends the 4-byte header + payload to `out`.
void AppendFrame(std::string_view payload, std::string& out);

// Incremental frame parser over a byte stream.  Feed() raw reads, then pop
// complete frames with Next() until it returns kNeedMore.  kOversized is
// sticky: the stream is poisoned and the connection must be closed.
class FrameDecoder {
 public:
  enum class Status { kFrame, kNeedMore, kOversized };

  explicit FrameDecoder(std::size_t max_frame_bytes = kDefaultMaxFrameBytes);

  void Feed(std::string_view bytes);
  Status Next(std::string* payload);

  // True when buffered bytes form an incomplete frame — at EOF this means
  // the peer truncated mid-frame.
  bool MidFrame() const noexcept;
  std::size_t buffered_bytes() const noexcept { return buffer_.size() - pos_; }

 private:
  std::size_t max_frame_bytes_;
  std::string buffer_;
  std::size_t pos_ = 0;
  bool poisoned_ = false;
};

// ---------------------------------------------------------------------------
// Requests

enum class RequestType {
  kLookup,
  kInsert,
  kStats,
  kDumpTrace,
  kPing,
  kHello,
  kSnapshot,
  kRestore,
  kMigrate,
  kCluster,
  kTenantLookup,
  kTenantInsert,
};

struct Request {
  RequestType type = RequestType::kPing;
  std::string query;      // LOOKUP / TLOOKUP
  std::string key;        // INSERT / TINSERT
  std::string value;      // INSERT / TINSERT
  double staticity = 5.0; // INSERT / TINSERT (paper's 1-10 scale)
  std::uint64_t max_traces = 16;  // DUMPTRACE
  std::uint32_t version = kProtocolVersion;  // HELLO
  std::string role;       // HELLO ("client" | "router" | "node")
  std::string blob;       // RESTORE: engine snapshot bytes
  std::string node_name;  // MIGRATE: name of the node joining the ring
  std::string endpoint;   // MIGRATE: "host:port" or "unix:PATH"
  std::string tenant;     // TLOOKUP / TINSERT: namespace id
  bool shareable = true;  // TINSERT: promotion privacy gate
};

std::string EncodePayload(const Request& request);
// Returns nullopt on grammar violations; `error` (optional) gets a
// human-readable reason.
std::optional<Request> ParseRequest(std::string_view payload,
                                    std::string* error = nullptr);

// ---------------------------------------------------------------------------
// Responses

enum class ResponseType {
  kHit,
  kMiss,
  kOk,
  kReject,
  kPong,
  kStats,
  kTraces,
  kWelcome,
  kSnapshotData,
  kBusy,
  kError,
};

struct Response {
  ResponseType type = ResponseType::kError;
  // kHit
  std::string matched_key;
  std::string value;
  double similarity = 0.0;
  double judger_score = 0.0;
  // kOk: the inserted SE id.  kTraces / kSnapshotData: the entry count.
  // kWelcome: the peer's protocol version.
  std::uint64_t id = 0;
  // kStats
  std::vector<std::pair<std::string, std::string>> stats;
  // kError: the reason.  kTraces: rendered flight-recorder text.
  // kWelcome: the peer's role.  kSnapshotData: engine snapshot bytes.
  std::string message;
};

std::string EncodePayload(const Response& response);
std::optional<Response> ParseResponse(std::string_view payload,
                                      std::string* error = nullptr);

}  // namespace cortex::serve
