// ShardSnapshot: the immutable per-shard state a lock-free probe reads.
//
// The serving engine's lock-free read path (DESIGN.md §13) never touches
// the shard's shared_mutex.  Instead, every write that changes what a
// probe could observe rebuilds a ShardSnapshot under the write lock and
// publishes it through a seq_cst atomic pointer; readers pin it with an
// EpochReadGuard (util/epoch.h) and the old snapshot is retired to the
// engine's EpochDomain.  Per the epoch contract, BOTH sides of the
// pointer hand-off are seq_cst: exchange on publish, load under the
// guard.
//
// A snapshot pairs each resident SE with
//   * a shared_ptr<const ProbeRecord> — the probe-relevant fields, copied
//     once per id (key/value/embedding are immutable per id in
//     SemanticCache, so records are shared across rebuilds);
//   * a row in the shard's scan slab, quantized per the engine's
//     probe_scan_format (f32 / f16 / i8).  Rows referenced by any live
//     snapshot are never freed or reused: removed rows sit in a limbo
//     list until the epoch grace period passes.
//
// Probing is two-phase, mirroring FlatIndex::Search's variant-stable
// ranking (ann/flat_index.cc):
//   1. SnapshotScan — inside the epoch guard: one gather-kernel pass over
//      the quantized rows, prefilter at tau_sim minus a quantization
//      slack, keep a pool of the best max(4*top_k, 32) candidates (the
//      pool retains the records' shared_ptrs, so phase 2 runs outside
//      the guard).
//   2. SnapshotValidate — outside the guard: rescore the pool with the
//      scalar double-precision fp32 kernel, filter/sort/truncate exactly
//      like FlatIndex, then run Sine's stage-2 (judger best-first
//      short-circuit, or the ann-only ablation).  Because the exact
//      rerank reads fp32 originals, the final top-k and hit decision are
//      bit-identical to the locked kFlat path whatever scan format or
//      SIMD variant ran phase 1.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/semantic_cache.h"
#include "core/sine.h"
#include "embedding/vector_slab.h"

namespace cortex::serve {

// Probe-relevant fields of one resident SE.  Immutable after
// construction; a record is replaced (never mutated) when its
// fingerprint — (created_at, expiration_time, tenant) — changes.
struct ProbeRecord {
  SeId id = 0;
  std::string key;
  std::string value;
  std::string tenant;
  double created_at = 0.0;
  double expiration_time = 0.0;
  Vector embedding;  // fp32 original, the exact-rerank source
};

struct ShardSnapshot {
  RowFormat format = RowFormat::kF32;
  std::size_t dim = 0;
  // Sine thresholds frozen at publish time (recalibration republishes).
  SineOptions sine;

  // Parallel arrays, one entry per resident SE (arbitrary order).  Row
  // pointers point into the shard's scan slab; the limbo protocol
  // guarantees they outlive every reader of this snapshot.
  std::vector<std::shared_ptr<const ProbeRecord>> records;
  std::vector<const float*> rows_f32;          // format == kF32
  std::vector<const std::uint16_t*> rows_f16;  // format == kF16
  std::vector<const std::int8_t*> rows_i8;     // format == kI8
  std::vector<float> scales_i8;                // format == kI8

  std::size_t size() const noexcept { return records.size(); }
};

// Quantized-similarity slack subtracted from tau_sim when prefiltering
// scan scores (phase 1).  f16 roundtrip error on unit vectors is ~1e-3
// and i8 ~2e-3; 0.02 absorbs both with a wide margin, and the exact
// rerank removes every false admit.  Unused (slack 0) for kF32.
inline constexpr double kQuantSimSlack = 0.02;

// One pooled phase-1 survivor.  The shared_ptr keeps the record alive
// after the epoch guard drops.
struct PooledCandidate {
  std::shared_ptr<const ProbeRecord> record;
  float approx_sim = 0.0f;
};

struct SnapshotScanResult {
  bool have_snapshot = false;
  SineOptions sine;
  std::vector<PooledCandidate> pool;
  std::size_t scanned = 0;  // rows the quantized kernel scored
};

// Phase 1.  MUST be called inside an EpochReadGuard with `snap` loaded
// (seq_cst) from the shard's snapshot pointer.  Takes no locks.
SnapshotScanResult SnapshotScan(const ShardSnapshot& snap,
                                const Vector& query_embedding);

// Phase 2.  Runs outside the guard; consumes the pool, reranks on fp32
// originals, applies visibility (created_at <= now, not expired, tenant
// match) and stage 2, and fills a LookupResult compatible with
// SemanticCache::CommitLookup.  `judger` may be null iff
// scan.sine.use_judger is false.
SemanticCache::LookupResult SnapshotValidate(SnapshotScanResult scan,
                                             Vector query_embedding,
                                             std::string_view query,
                                             double now,
                                             std::string_view tenant,
                                             const JudgerModel* judger);

}  // namespace cortex::serve
