// ShardSnapshot: the immutable per-shard state a lock-free probe reads.
//
// The serving engine's lock-free read path (DESIGN.md §13) never touches
// the shard's shared_mutex.  Instead, every write that changes what a
// probe could observe rebuilds a ShardSnapshot under the write lock and
// publishes it through a seq_cst atomic pointer; readers pin it with an
// EpochReadGuard (util/epoch.h) and the old snapshot is retired to the
// engine's EpochDomain.  Per the epoch contract, BOTH sides of the
// pointer hand-off are seq_cst: exchange on publish, load under the
// guard.
//
// A snapshot pairs each resident SE with
//   * a shared_ptr<const ProbeRecord> — the probe-relevant fields, copied
//     once per id (key/value/embedding are immutable per id in
//     SemanticCache, so records are shared across rebuilds);
//   * a row in the shard's scan slab, quantized per the engine's
//     probe_scan_format (f32 / f16 / i8).  Rows referenced by any live
//     snapshot are never freed or reused: removed rows sit in a limbo
//     list until the epoch grace period passes.
//
// Probing is two-phase, mirroring FlatIndex::Search's variant-stable
// ranking (ann/flat_index.cc):
//   1. scan — one gather-kernel pass over the quantized rows, prefilter
//      at tau_sim minus a quantization slack, keep a pool of the best
//      max(4*top_k, 32) candidates;
//   2. rerank — rescore the pool with the scalar double-precision fp32
//      kernel, filter/sort/truncate exactly like FlatIndex.  Because the
//      exact rerank reads fp32 originals, the final top-k and hit
//      decision are bit-identical to the locked kFlat path whatever scan
//      format or SIMD variant ran phase 1.
//
// Both phases run INSIDE the epoch guard and allocate nothing on the
// steady state: callers pass a ProbeScratch whose vectors amortize to
// the shard's high-water mark.  (The original design pooled shared_ptr
// copies so the rerank could run outside the guard; under contention the
// refcount RMWs on shared record control blocks dominated the probe and
// made the epoch path slower than the locked one — see the
// concurrency_probe bench.)  Stage 2 — visibility plus the judger
// best-first walk — is SnapshotJudge, shared verbatim between the
// sequential probe (borrowed records, still inside the guard) and the
// batched pipeline (records re-homed to shared_ptrs, judged outside the
// guard), so both paths produce identical results by construction.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/semantic_cache.h"
#include "core/sine.h"
#include "embedding/vector_slab.h"

namespace cortex::serve {

// Probe-relevant fields of one resident SE.  Immutable after
// construction; a record is replaced (never mutated) when its
// fingerprint — (created_at, expiration_time, tenant) — changes.
struct ProbeRecord {
  SeId id = 0;
  std::string key;
  std::string value;
  std::string tenant;
  double created_at = 0.0;
  double expiration_time = 0.0;
  Vector embedding;  // fp32 original, the exact-rerank source
};

struct ShardSnapshot {
  RowFormat format = RowFormat::kF32;
  std::size_t dim = 0;
  // Sine thresholds frozen at publish time (recalibration republishes).
  SineOptions sine;

  // Parallel arrays, one entry per resident SE (arbitrary order).  Row
  // pointers point into the shard's scan slab; the limbo protocol
  // guarantees they outlive every reader of this snapshot.
  std::vector<std::shared_ptr<const ProbeRecord>> records;
  std::vector<const float*> rows_f32;          // format == kF32
  std::vector<const std::uint16_t*> rows_f16;  // format == kF16
  std::vector<const std::int8_t*> rows_i8;     // format == kI8
  std::vector<float> scales_i8;                // format == kI8

  std::size_t size() const noexcept { return records.size(); }
};

// Quantized-similarity slack subtracted from tau_sim when prefiltering
// scan scores (phase 1).  f16 roundtrip error on unit vectors is ~1e-3
// and i8 ~2e-3; 0.02 absorbs both with a wide margin, and the exact
// rerank removes every false admit.  Unused (slack 0) for kF32.
inline constexpr double kQuantSimSlack = 0.02;

// Prefilter slack for a given scan format (kQuantSimSlack, or 0 for the
// exact f32 scan).
double SnapshotSlack(RowFormat format) noexcept;

// One exact-reranked survivor, sorted best-first.  `record` is BORROWED
// from the snapshot: it is valid only while the EpochReadGuard that
// pinned the snapshot is held.  `index` locates the owning shared_ptr in
// snap.records for callers (the batched pipeline) that must re-home
// survivors before dropping the guard.
struct RankedCandidate {
  double sim = 0.0;
  const ProbeRecord* record = nullptr;
  std::uint32_t index = 0;
};

// Reusable scan scratch.  Probe throughput is allocation-sensitive:
// keep one per thread (or per pipeline batch) and the vectors grow once
// to the shard's high-water mark, making steady-state probes
// allocation-free.
struct ProbeScratch {
  std::vector<float> sims;          // one score per snapshot row
  std::vector<std::int8_t> q8;      // quantized query/queries (kI8 scan)
  std::vector<float> q8_scales;     // per-query i8 scales (mq scan)
  std::vector<std::uint32_t> keep;  // prefilter survivors (row indices)
  std::vector<RankedCandidate> ranked;  // phase-2 output, best-first
};

// Phases 1+2 for one query: quantized scan into scratch.sims, then
// SnapshotRankFromSims.  MUST run inside an EpochReadGuard with `snap`
// loaded (seq_cst) from the shard's snapshot pointer.  Takes no locks.
void SnapshotScanRank(const ShardSnapshot& snap,
                      std::span<const float> query, ProbeScratch& scratch);

// Phase 2 from a precomputed score row (`sims[i]` scores snapshot row i,
// in the snapshot's scan format): prefilter at tau_sim minus the format
// slack, pool the best max(4*top_k, 32), exact-rerank on the fp32
// originals, sort (sim desc, id asc), truncate to top_k.  Result in
// scratch.ranked.  Same guard requirement as SnapshotScanRank.
void SnapshotRankFromSims(const ShardSnapshot& snap,
                          std::span<const float> query, const float* sims,
                          ProbeScratch& scratch);

// Multi-query phase 1: scores `nq` queries (row q at queries + q*qstride,
// qstride in floats) against every snapshot row in one multi-query
// kernel pass, writing sims_out[q * snap.size() + i].  Slab bytes are
// read once per BATCH instead of once per query — the bandwidth win the
// batching pipeline exists for.  Per-(query,row) scores are bitwise
// identical to the sequential scan.  Same guard requirement as above.
void SnapshotScanMq(const ShardSnapshot& snap, const float* queries,
                    std::size_t nq, std::size_t qstride,
                    ProbeScratch& scratch, float* sims_out);

// Stage 2 over an exact-ranked candidate list (sorted best-first,
// already truncated to top_k): applies visibility (created_at <= now,
// not expired, tenant match) and the judger best-first short-circuit (or
// the ann-only ablation), and fills a LookupResult compatible with
// SemanticCache::CommitLookup.  `judger` may be null iff opt.use_judger
// is false.  Takes no locks; safe inside an epoch guard (the judger is
// pure).
SemanticCache::LookupResult SnapshotJudge(
    std::span<const RankedCandidate> ranked, const SineOptions& opt,
    Vector query_embedding, std::string_view query, double now,
    std::string_view tenant, const JudgerModel* judger);

}  // namespace cortex::serve
