#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <thread>

namespace cortex::serve {

namespace {

std::string Errno(std::string_view what) {
  return std::string(what) + ": " + std::strerror(errno);
}

std::string FormatDouble(double v) {
  char buf[32];
  const int n = std::snprintf(buf, sizeof buf, "%.6g", v);
  return std::string(buf, static_cast<std::size_t>(n));
}

Response MakeResponse(ResponseType type) {
  Response r;
  r.type = type;
  return r;
}

telemetry::TraceOp TraceOpFor(RequestType type) {
  switch (type) {
    case RequestType::kLookup:
    case RequestType::kTenantLookup:
      return telemetry::TraceOp::kLookup;
    case RequestType::kInsert:
    case RequestType::kTenantInsert:
      return telemetry::TraceOp::kInsert;
    case RequestType::kStats:
      return telemetry::TraceOp::kStats;
    case RequestType::kDumpTrace:
      return telemetry::TraceOp::kDumpTrace;
    case RequestType::kPing:
      return telemetry::TraceOp::kPing;
    case RequestType::kHello:
    case RequestType::kSnapshot:
    case RequestType::kRestore:
    case RequestType::kMigrate:
    case RequestType::kCluster:
      return telemetry::TraceOp::kOther;
  }
  return telemetry::TraceOp::kOther;
}

telemetry::TraceOutcome TraceOutcomeFor(ResponseType type) {
  switch (type) {
    case ResponseType::kHit:
      return telemetry::TraceOutcome::kHit;
    case ResponseType::kMiss:
      return telemetry::TraceOutcome::kMiss;
    case ResponseType::kOk:
    case ResponseType::kPong:
    case ResponseType::kStats:
    case ResponseType::kTraces:
    case ResponseType::kWelcome:
    case ResponseType::kSnapshotData:
      return telemetry::TraceOutcome::kOk;
    case ResponseType::kReject:
      return telemetry::TraceOutcome::kReject;
    case ResponseType::kBusy:
      return telemetry::TraceOutcome::kBusy;
    case ResponseType::kError:
      return telemetry::TraceOutcome::kError;
  }
  return telemetry::TraceOutcome::kUnknown;
}

// Writes the whole buffer, tolerating partial writes; false on error.
bool SendAll(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

void SendOneFrame(int fd, const Response& response) {
  std::string out;
  AppendFrame(EncodePayload(response), out);
  SendAll(fd, out);
}

}  // namespace

CortexServer::CortexServer(ConcurrentShardedEngine* engine,
                           ServerOptions options)
    : engine_(engine),
      options_(std::move(options)),
      bucket_(options_.max_requests_per_sec > 0.0
                  ? TokenBucket(options_.max_requests_per_sec,
                                options_.rate_burst)
                  : UnlimitedBucket()),
      recorder_(options_.flight_recorder_capacity) {
  registry_ = options_.registry != nullptr ? options_.registry
                                           : engine_->registry();
  connections_accepted_ =
      registry_->GetCounter("cortex_server_connections_accepted");
  connections_rejected_ =
      registry_->GetCounter("cortex_server_connections_rejected");
  requests_served_ = registry_->GetCounter("cortex_server_requests_served");
  requests_busy_ = registry_->GetCounter("cortex_server_requests_busy");
  protocol_errors_ = registry_->GetCounter("cortex_server_protocol_errors");
  hellos_ = registry_->GetCounter("cortex_server_hellos");
  hello_rejects_ = registry_->GetCounter("cortex_server_hello_rejects");
  snapshots_streamed_ =
      registry_->GetCounter("cortex_server_snapshots_streamed");
  snapshot_bytes_ = registry_->GetCounter("cortex_server_snapshot_bytes");
  restores_applied_ = registry_->GetCounter("cortex_server_restores_applied");
  restore_entries_ = registry_->GetCounter("cortex_server_restore_entries");
  queue_depth_ = registry_->GetGauge("cortex_server_queue_depth");
  request_seconds_ =
      registry_->GetHistogram("cortex_server_request_seconds");
  {
    MutexLock lock(bucket_mu_);
    bucket_.BindTelemetry(registry_->GetGauge("cortex_ratelimit_tokens"),
                          registry_->GetCounter("cortex_ratelimit_throttled"));
  }
  if (options_.max_pipeline_batch > 1) {
    BatchPipelineOptions popts;
    popts.max_batch = options_.max_pipeline_batch;
    popts.batch_window_us = options_.batch_window_us;
    popts.num_threads = options_.pipeline_threads;
    popts.registry = registry_;
    pipeline_ = std::make_unique<BatchPipeline>(engine_, popts);
  }
}

CortexServer::~CortexServer() { Stop(); }

bool CortexServer::Start(std::string* error) {
  if (running_.load()) return true;

  if (!options_.unix_path.empty()) {
    sockaddr_un addr{};
    if (options_.unix_path.size() >= sizeof addr.sun_path) {
      if (error) *error = "unix socket path too long";
      return false;
    }
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      if (error) *error = Errno("socket");
      return false;
    }
    ::unlink(options_.unix_path.c_str());
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, options_.unix_path.c_str(),
                options_.unix_path.size() + 1);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
        0) {
      if (error) *error = Errno("bind(" + options_.unix_path + ")");
      ::close(listen_fd_);
      listen_fd_ = -1;
      return false;
    }
    bound_unix_path_ = options_.unix_path;
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      if (error) *error = Errno("socket");
      return false;
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
    if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
      if (error) *error = "bad host " + options_.host;
      ::close(listen_fd_);
      listen_fd_ = -1;
      return false;
    }
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
        0) {
      if (error) *error = Errno("bind(" + options_.host + ")");
      ::close(listen_fd_);
      listen_fd_ = -1;
      return false;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
    port_ = ntohs(bound.sin_port);
  }

  if (::listen(listen_fd_, 128) < 0) {
    if (error) *error = Errno("listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }

  stopping_.store(false);
  running_.store(true, std::memory_order_release);
  acceptor_ = std::thread([this] { AcceptLoop(); });
  workers_.reserve(options_.num_workers);
  for (std::size_t i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return true;
}

void CortexServer::Drain(double timeout_sec) {
  if (!running_.load(std::memory_order_acquire)) return;
  draining_.store(true, std::memory_order_release);
  const double deadline = telemetry::WallSeconds() + timeout_sec;
  for (;;) {
    std::size_t queued = 0;
    {
      MutexLock lock(queue_mu_);
      queued = conn_queue_.size();
    }
    if (queued == 0 &&
        active_connections_.load(std::memory_order_acquire) == 0) {
      break;
    }
    if (telemetry::WallSeconds() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  Stop();
}

void CortexServer::Stop() {
  if (!running_.exchange(false)) return;
  stopping_.store(true);
  queue_cv_.notify_all();
  if (acceptor_.joinable()) acceptor_.join();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  // Workers are gone, so nothing can stage new lookups; flush whatever
  // the pipeline still holds (its threads keep serving staged batches
  // until this returns).
  if (pipeline_ != nullptr) pipeline_->Drain();
  // Connections still queued never reached a worker; drop them.
  std::deque<int> leftover;
  {
    MutexLock lock(queue_mu_);
    leftover.swap(conn_queue_);
  }
  for (int fd : leftover) ::close(fd);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (!bound_unix_path_.empty()) {
    ::unlink(bound_unix_path_.c_str());
    bound_unix_path_.clear();
  }
}

void CortexServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire) &&
         !draining_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 100);
    if (rc <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    connections_accepted_->Inc();
    bool rejected = false;
    {
      MutexLock lock(queue_mu_);
      if (conn_queue_.size() >= options_.max_pending_connections) {
        rejected = true;
      } else {
        conn_queue_.push_back(fd);
        queue_depth_->Set(static_cast<double>(conn_queue_.size()));
      }
    }
    if (rejected) {
      // Connection-level backpressure: one BUSY frame, then disconnect.
      connections_rejected_->Inc();
      SendOneFrame(fd, MakeResponse(ResponseType::kBusy));
      ::close(fd);
    } else {
      queue_cv_.notify_one();
    }
  }
}

void CortexServer::WorkerLoop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<RankedMutex> lk(queue_mu_);
      queue_cv_.wait(lk, [this] {
        return stopping_.load(std::memory_order_acquire) ||
               !conn_queue_.empty();
      });
      if (stopping_.load(std::memory_order_acquire)) return;
      fd = conn_queue_.front();
      conn_queue_.pop_front();
      queue_depth_->Set(static_cast<double>(conn_queue_.size()));
    }
    ServeConnection(fd);
  }
}

void CortexServer::ServeConnection(int fd) {
  // Drain accounting: a connection counts as active from pickup to close,
  // so Drain() can wait for every in-flight response to flush.
  active_connections_.fetch_add(1, std::memory_order_acq_rel);
  struct ActiveGuard {
    std::atomic<std::int64_t>* n;  // cortex-lint: allow(atomic-counter)
    ~ActiveGuard() { n->fetch_sub(1, std::memory_order_acq_rel); }
  } guard{&active_connections_};

  FrameDecoder decoder(options_.max_frame_bytes);
  // Bounded per-connection request queue.  `overloaded` entries mark
  // frames that arrived past the bound: they are answered BUSY *in request
  // order* instead of being executed.
  struct PendingFrame {
    bool overloaded = false;
    std::string payload;
    double decoded_at = 0.0;  // WallSeconds() — anchors the queue-wait span
  };
  std::deque<PendingFrame> pending;
  std::string outbuf;
  char buf[16 * 1024];
  bool done = false;

  while (!done && !stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{fd, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 100);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (rc == 0) {
      // Draining and the connection has gone idle for a tick: every
      // response already owed has been flushed (outbuf is written at the
      // end of each iteration), so closing here never truncates a frame.
      if (draining_.load(std::memory_order_acquire)) break;
      continue;
    }
    if (pfd.revents & (POLLERR | POLLNVAL)) break;

    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n == 0) {
      // Peer closed.  Mid-frame bytes mean a truncated frame.
      if (decoder.MidFrame()) {
        protocol_errors_->Inc();
      }
      break;
    }
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      break;
    }
    decoder.Feed(std::string_view(buf, static_cast<std::size_t>(n)));

    outbuf.clear();
    std::string payload;
    for (;;) {
      const FrameDecoder::Status st = decoder.Next(&payload);
      if (st == FrameDecoder::Status::kNeedMore) break;
      if (st == FrameDecoder::Status::kOversized) {
        protocol_errors_->Inc();
        Response err = MakeResponse(ResponseType::kError);
        err.message = "frame exceeds " +
                      std::to_string(options_.max_frame_bytes) + " bytes";
        AppendFrame(EncodePayload(err), outbuf);
        done = true;  // the stream is unrecoverable past a bad length
        break;
      }
      if (pending.size() >= options_.max_pipeline) {
        // Request-level backpressure: the per-connection queue is full.
        pending.push_back({true, {}, 0.0});
        continue;
      }
      pending.push_back({false, std::move(payload), telemetry::WallSeconds()});
    }

    while (!pending.empty()) {
      const PendingFrame frame = std::move(pending.front());
      pending.pop_front();
      if (frame.overloaded) {
        requests_busy_->Inc();
        requests_served_->Inc();
        AppendFrame(EncodePayload(MakeResponse(ResponseType::kBusy)), outbuf);
        continue;
      }
      telemetry::RequestTrace trace;
      trace.start = frame.decoded_at;
      const double exec_t0 = telemetry::WallSeconds();
      trace.AddSpan(telemetry::TracePhase::kQueueWait, frame.decoded_at,
                    exec_t0 - frame.decoded_at);
      std::string parse_error;
      Response response;
      if (const auto request = ParseRequest(frame.payload, &parse_error)) {
        trace.op = TraceOpFor(request->type);
        if (request->type == RequestType::kLookup ||
            request->type == RequestType::kTenantLookup) {
          trace.SetQuery(request->query);
        } else if (request->type == RequestType::kInsert ||
                   request->type == RequestType::kTenantInsert) {
          trace.SetQuery(request->key);
        }
        if (AdmitRequest(*request)) {
          response = Execute(*request, &trace);
        } else {
          requests_busy_->Inc();
          response = MakeResponse(ResponseType::kBusy);
        }
      } else {
        protocol_errors_->Inc();
        response = MakeResponse(ResponseType::kError);
        response.message = parse_error;
      }
      requests_served_->Inc();
      trace.outcome = TraceOutcomeFor(response.type);
      trace.total = telemetry::WallSeconds() - trace.start;
      request_seconds_->Observe(trace.total);
      recorder_.Record(trace);
      AppendFrame(EncodePayload(response), outbuf);
    }

    if (!outbuf.empty() && !SendAll(fd, outbuf)) break;
  }
  ::close(fd);
}

bool CortexServer::AdmitRequest(const Request& request) {
  const bool metered = request.type == RequestType::kLookup ||
                       request.type == RequestType::kInsert ||
                       request.type == RequestType::kTenantLookup ||
                       request.type == RequestType::kTenantInsert;
  if (!metered) return true;
  if (options_.max_requests_per_sec > 0.0) {
    MutexLock lock(bucket_mu_);
    if (!bucket_.TryAcquire(engine_->Now())) return false;
  }
  // Tenant-scoped verbs additionally pass the per-tenant quota bucket, so
  // one hot tenant exhausts its own budget without starving the others.
  if (!request.tenant.empty()) {
    return engine_->tenant_registry()->AdmitRequest(request.tenant,
                                                    engine_->Now());
  }
  return true;
}

Response CortexServer::Execute(const Request& request,
                               telemetry::RequestTrace* trace) {
  switch (request.type) {
    case RequestType::kPing:
      return MakeResponse(ResponseType::kPong);
    case RequestType::kStats:
      return BuildStats();
    case RequestType::kDumpTrace:
      return BuildTraces(request.max_traces);
    case RequestType::kLookup: {
      // Admission already ran (AdmitRequest precedes Execute), so staging
      // into the pipeline cannot bypass rate or tenant quotas.
      const auto hit = pipeline_ != nullptr
                           ? pipeline_->Lookup(request.query, trace)
                           : engine_->Lookup(request.query, trace);
      if (!hit) return MakeResponse(ResponseType::kMiss);
      Response r = MakeResponse(ResponseType::kHit);
      r.matched_key = hit->matched_key;
      r.value = hit->value;
      r.similarity = hit->similarity;
      r.judger_score = hit->judger_score;
      return r;
    }
    case RequestType::kInsert: {
      InsertRequest insert;
      insert.key = request.key;
      insert.value = request.value;
      insert.staticity = request.staticity;
      insert.initial_frequency = 1;  // a demanded fetch has one confirmed use
      const auto id = engine_->Insert(std::move(insert), trace);
      if (!id) return MakeResponse(ResponseType::kReject);
      Response r = MakeResponse(ResponseType::kOk);
      r.id = *id;
      return r;
    }
    case RequestType::kTenantLookup: {
      const auto hit =
          pipeline_ != nullptr
              ? pipeline_->Lookup(request.query, trace, request.tenant)
              : engine_->Lookup(request.query, trace, request.tenant);
      if (!hit) return MakeResponse(ResponseType::kMiss);
      Response r = MakeResponse(ResponseType::kHit);
      r.matched_key = hit->matched_key;
      r.value = hit->value;
      r.similarity = hit->similarity;
      r.judger_score = hit->judger_score;
      return r;
    }
    case RequestType::kTenantInsert: {
      InsertRequest insert;
      insert.key = request.key;
      insert.value = request.value;
      insert.staticity = request.staticity;
      insert.initial_frequency = 1;
      insert.tenant = request.tenant;
      insert.shareable = request.shareable;
      const auto id = engine_->Insert(std::move(insert), trace);
      if (!id) return MakeResponse(ResponseType::kReject);
      Response r = MakeResponse(ResponseType::kOk);
      r.id = *id;
      return r;
    }
    case RequestType::kHello: {
      if (request.version != kProtocolVersion) {
        hello_rejects_->Inc();
        Response r = MakeResponse(ResponseType::kError);
        r.message = "protocol version mismatch: peer speaks v" +
                    std::to_string(request.version) + ", this node speaks v" +
                    std::to_string(kProtocolVersion);
        return r;
      }
      hellos_->Inc();
      Response r = MakeResponse(ResponseType::kWelcome);
      r.id = kProtocolVersion;
      r.message = "node";
      return r;
    }
    case RequestType::kSnapshot: {
      std::ostringstream out;
      SnapshotStats stats;
      try {
        stats = engine_->SaveSnapshot(out);
      } catch (const std::exception& e) {
        Response r = MakeResponse(ResponseType::kError);
        r.message = std::string("snapshot failed: ") + e.what();
        return r;
      }
      Response r = MakeResponse(ResponseType::kSnapshotData);
      r.id = stats.entries_written;
      r.message = std::move(out).str();
      snapshots_streamed_->Inc();
      snapshot_bytes_->Inc(r.message.size());
      return r;
    }
    case RequestType::kRestore: {
      std::istringstream in(request.blob);
      SnapshotStats stats;
      try {
        stats = engine_->LoadSnapshot(in);
      } catch (const std::exception& e) {
        Response r = MakeResponse(ResponseType::kError);
        r.message = std::string("restore failed: ") + e.what();
        return r;
      }
      restores_applied_->Inc();
      restore_entries_->Inc(stats.entries_restored);
      Response r = MakeResponse(ResponseType::kOk);
      r.id = stats.entries_restored;
      return r;
    }
    case RequestType::kMigrate:
    case RequestType::kCluster: {
      Response r = MakeResponse(ResponseType::kError);
      r.message = "router-only command";
      return r;
    }
  }
  Response r = MakeResponse(ResponseType::kError);
  r.message = "unhandled request type";
  return r;
}

Response CortexServer::BuildStats() {
  Response r = MakeResponse(ResponseType::kStats);
  const ConcurrentEngineStats engine = engine_->Stats();
  const ServerStats server = stats();
  const double hit_rate =
      engine.lookups ? static_cast<double>(engine.hits) /
                           static_cast<double>(engine.lookups)
                     : 0.0;
  r.stats = {
      {"shards", std::to_string(engine_->num_shards())},
      {"entries", std::to_string(engine_->TotalSize())},
      {"usage_tokens", FormatDouble(engine_->TotalUsageTokens())},
      {"lookups", std::to_string(engine.lookups)},
      {"hits", std::to_string(engine.hits)},
      {"hit_rate", FormatDouble(hit_rate)},
      {"inserts", std::to_string(engine.inserts)},
      {"insert_rejects", std::to_string(engine.insert_rejects)},
      {"expired_removed", std::to_string(engine.expired_removed)},
      {"housekeeping_runs", std::to_string(engine.housekeeping_runs)},
      {"recalibrations", std::to_string(engine.recalibrations)},
      {"connections_accepted", std::to_string(server.connections_accepted)},
      {"connections_rejected", std::to_string(server.connections_rejected)},
      {"requests_served", std::to_string(server.requests_served)},
      {"requests_busy", std::to_string(server.requests_busy)},
      {"protocol_errors", std::to_string(server.protocol_errors)},
  };
  // The full registry rides behind the legacy keys: every cortex_* metric
  // as flat key=value pairs (histograms expanded to _count/_mean/_p50/
  // _p99/_max), plus flight-recorder occupancy.
  registry_->Snapshot().AppendKeyValues(&r.stats);
  r.stats.emplace_back("flight_recorder_recorded",
                       std::to_string(recorder_.recorded()));
  r.stats.emplace_back("flight_recorder_dropped",
                       std::to_string(recorder_.dropped()));
  return r;
}

Response CortexServer::BuildTraces(std::uint64_t max_traces) {
  const auto traces =
      recorder_.Snapshot(static_cast<std::size_t>(max_traces));
  Response r = MakeResponse(ResponseType::kTraces);
  r.id = traces.size();
  r.message = telemetry::RenderTraceText(traces);
  return r;
}

ServerStats CortexServer::stats() const {
  ServerStats s;
  s.connections_accepted = connections_accepted_->Value();
  s.connections_rejected = connections_rejected_->Value();
  s.requests_served = requests_served_->Value();
  s.requests_busy = requests_busy_->Value();
  s.protocol_errors = protocol_errors_->Value();
  return s;
}

}  // namespace cortex::serve
