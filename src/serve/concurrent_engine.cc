#include "serve/concurrent_engine.h"

#include <chrono>
#include <limits>

#include "util/check.h"

namespace cortex::serve {

namespace {

std::function<double()> WallClockSinceNow() {
  const auto start = std::chrono::steady_clock::now();
  return [start] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
}

}  // namespace

ConcurrentShardedEngine::ConcurrentShardedEngine(
    const HashedEmbedder* embedder, const JudgerModel* judger,
    ConcurrentEngineOptions options)
    : embedder_(embedder), options_(std::move(options)) {
  CHECK(embedder != nullptr) << "engine requires an embedder";
  CHECK_GT(options_.num_shards, 0u);
  clock_ = options_.clock ? options_.clock : WallClockSinceNow();

  SemanticCacheOptions per_shard = options_.cache;
  per_shard.capacity_tokens = options_.cache.capacity_tokens /
                              static_cast<double>(options_.num_shards);
  shards_.reserve(options_.num_shards);
  for (std::size_t i = 0; i < options_.num_shards; ++i) {
    auto cache = std::make_unique<SemanticCache>(
        embedder, MakeIndex(options_.index_type, embedder->dimension()),
        judger, MakeEviction(options_.eviction), per_shard);
    shards_.push_back(std::make_unique<Shard>(
        std::move(cache), options_.recalibration,
        options_.recalibration_seed + i));
  }

  if (options_.housekeeping_interval_sec > 0.0) {
    housekeeper_ = std::thread([this] { HousekeepingLoop(); });
  }
}

ConcurrentShardedEngine::~ConcurrentShardedEngine() { StopHousekeeping(); }

void ConcurrentShardedEngine::StopHousekeeping() {
  {
    MutexLock lock(hk_mu_);
    hk_stop_ = true;
  }
  hk_cv_.notify_all();
  if (housekeeper_.joinable()) housekeeper_.join();
}

std::size_t ConcurrentShardedEngine::ShardFor(std::string_view query) const {
  return RouteToShard(*embedder_, tokenizer_, query, shards_.size());
}

std::optional<CacheHit> ConcurrentShardedEngine::Lookup(
    std::string_view query) {
  Shard& shard = *shards_[ShardFor(query)];
  const double now = clock_();

  // Probe (ANN search + judger — the expensive part) runs under the shared
  // lock, so lookups on the same shard proceed in parallel.
  SemanticCache::LookupResult result;
  {
    ReaderLock lock(shard.mu);
    result = shard.cache->Probe(query, now);
  }

  // Commit (counters, frequency bump, judgment log) is cheap; upgrade to
  // the exclusive lock.  The matched SE may have been evicted in between —
  // CommitLookup tolerates that, and the hit we already copied still
  // serves the client.
  {
    WriterLock lock(shard.mu);
    shard.cache->CommitLookup(result, now);
    // Log every judged candidate so recalibration sees scores on both
    // sides of the threshold (same policy as CortexEngine::Lookup).
    for (const auto& judged : result.sine.judged) {
      if (const SemanticElement* se = shard.cache->Get(judged.id)) {
        shard.recalibrator.LogJudgment({std::string(query), se->key,
                                        se->value, judged.judger_score});
      }
    }
  }

  lookups_.fetch_add(1, std::memory_order_relaxed);
  if (result.hit) hits_.fetch_add(1, std::memory_order_relaxed);
  return result.hit;
}

std::optional<SeId> ConcurrentShardedEngine::Insert(InsertRequest request) {
  Shard& shard = *shards_[ShardFor(request.key)];
  const double now = clock_();
  std::optional<SeId> id;
  {
    WriterLock lock(shard.mu);
    id = shard.cache->Insert(std::move(request), now);
  }
  (id ? inserts_ : insert_rejects_).fetch_add(1, std::memory_order_relaxed);
  return id;
}

bool ConcurrentShardedEngine::ContainsKey(std::string_view key) const {
  const Shard& shard = *shards_[ShardFor(key)];
  ReaderLock lock(shard.mu);
  return shard.cache->ContainsKey(key);
}

std::size_t ConcurrentShardedEngine::RemoveExpired() {
  const double now = clock_();
  std::size_t removed = 0;
  for (auto& shard : shards_) {
    WriterLock lock(shard->mu);
    removed += shard->cache->RemoveExpired(now);
  }
  expired_removed_.fetch_add(removed, std::memory_order_relaxed);
  return removed;
}

void ConcurrentShardedEngine::SetGroundTruthFetcher(
    std::function<std::string(std::string_view)> fn) {
  MutexLock lock(fetch_gt_mu_);
  fetch_gt_ = std::move(fn);
}

bool ConcurrentShardedEngine::RecalibrateShard(Shard& shard) {
  std::function<std::string(std::string_view)> fetch;
  {
    MutexLock lock(fetch_gt_mu_);
    fetch = fetch_gt_;
  }
  if (!fetch) return false;
  WriterLock lock(shard.mu);
  const RecalibrationRound round = shard.recalibrator.RunRound(fetch, shard.rng);
  recalibrations_.fetch_add(1, std::memory_order_relaxed);
  if (round.new_tau) {
    shard.cache->sine().set_tau_lsm(*round.new_tau);
    return true;
  }
  return false;
}

std::size_t ConcurrentShardedEngine::RecalibrateAllShards() {
  std::size_t changed = 0;
  for (auto& shard : shards_) {
    if (RecalibrateShard(*shard)) ++changed;
  }
  return changed;
}

void ConcurrentShardedEngine::HousekeepingLoop() {
  using namespace std::chrono_literals;
  // Start at -inf so the first tick always runs — the loop must not miss a
  // clock jump that happened before this thread got scheduled (tests with
  // injected clocks rely on this).
  double last_purge = -std::numeric_limits<double>::infinity();
  double last_recal = last_purge;
  std::unique_lock<RankedMutex> lk(hk_mu_);
  while (!hk_stop_) {
    // Poll on a short wall-clock cadence but trigger on the *engine*
    // clock, so tests with injected clocks control when ticks fire.
    hk_cv_.wait_for(lk, 20ms, [this] { return hk_stop_; });
    if (hk_stop_) break;
    lk.unlock();
    const double now = clock_();
    if (now - last_purge >= options_.housekeeping_interval_sec) {
      last_purge = now;
      RemoveExpired();
      housekeeping_runs_.fetch_add(1, std::memory_order_relaxed);
    }
    if (options_.recalibration_interval_sec > 0.0 &&
        now - last_recal >= options_.recalibration_interval_sec) {
      last_recal = now;
      RecalibrateAllShards();
    }
    lk.lock();
  }
}

ConcurrentEngineStats ConcurrentShardedEngine::Stats() const {
  ConcurrentEngineStats s;
  s.lookups = lookups_.load(std::memory_order_relaxed);
  s.hits = hits_.load(std::memory_order_relaxed);
  s.inserts = inserts_.load(std::memory_order_relaxed);
  s.insert_rejects = insert_rejects_.load(std::memory_order_relaxed);
  s.expired_removed = expired_removed_.load(std::memory_order_relaxed);
  s.housekeeping_runs = housekeeping_runs_.load(std::memory_order_relaxed);
  s.recalibrations = recalibrations_.load(std::memory_order_relaxed);
  return s;
}

CacheCounters ConcurrentShardedEngine::TotalCounters() const {
  CacheCounters total;
  for (const auto& shard : shards_) {
    ReaderLock lock(shard->mu);
    const auto& c = shard->cache->counters();
    total.lookups += c.lookups;
    total.hits += c.hits;
    total.insertions += c.insertions;
    total.evictions += c.evictions;
    total.expirations += c.expirations;
    total.rejected_too_large += c.rejected_too_large;
    total.dedup_refreshes += c.dedup_refreshes;
    total.admission_rejects += c.admission_rejects;
  }
  return total;
}

std::size_t ConcurrentShardedEngine::TotalSize() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    ReaderLock lock(shard->mu);
    total += shard->cache->size();
  }
  return total;
}

double ConcurrentShardedEngine::TotalUsageTokens() const {
  double total = 0.0;
  for (const auto& shard : shards_) {
    ReaderLock lock(shard->mu);
    total += shard->cache->usage_tokens();
  }
  return total;
}

double ConcurrentShardedEngine::tau_lsm(std::size_t shard) const {
  const Shard& s = *shards_.at(shard);
  ReaderLock lock(s.mu);
  return s.cache->sine().options().tau_lsm;
}

}  // namespace cortex::serve
