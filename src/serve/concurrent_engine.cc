#include "serve/concurrent_engine.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>
#include <string>

#include "util/check.h"

namespace cortex::serve {

namespace {

// Rounds `p` up to the next 64-byte boundary (the over-allocation in the
// batch matrices leaves room for this).
float* AlignTo64(float* p) noexcept {
  auto v = reinterpret_cast<std::uintptr_t>(p);
  v = (v + 63) & ~static_cast<std::uintptr_t>(63);
  return reinterpret_cast<float*>(v);
}

std::function<double()> WallClockSinceNow() {
  const auto start = std::chrono::steady_clock::now();
  return [start] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
}

}  // namespace

ConcurrentShardedEngine::ConcurrentShardedEngine(
    const HashedEmbedder* embedder, const JudgerModel* judger,
    ConcurrentEngineOptions options)
    : embedder_(embedder),
      judger_(judger),
      options_(std::move(options)),
      clock_(options_.clock ? options_.clock : WallClockSinceNow()) {
  CHECK(embedder != nullptr) << "engine requires an embedder";
  CHECK_GT(options_.num_shards, 0u);

  if (options_.registry != nullptr) {
    registry_ = options_.registry;
  } else {
    registry_owned_ = std::make_unique<telemetry::MetricRegistry>();
    registry_ = registry_owned_.get();
  }
  lookups_ = registry_->GetCounter("cortex_engine_lookups");
  hits_ = registry_->GetCounter("cortex_engine_hits");
  misses_ = registry_->GetCounter("cortex_engine_misses");
  judger_rejects_ = registry_->GetCounter("cortex_engine_judger_rejects");
  inserts_ = registry_->GetCounter("cortex_engine_inserts");
  insert_rejects_ = registry_->GetCounter("cortex_engine_insert_rejects");
  expired_removed_ = registry_->GetCounter("cortex_engine_expired_removed");
  housekeeping_runs_ =
      registry_->GetCounter("cortex_engine_housekeeping_runs");
  recalibrations_ = registry_->GetCounter("cortex_engine_recalibrations");
  probe_seconds_ = registry_->GetHistogram("cortex_engine_probe_seconds");
  commit_seconds_ = registry_->GetHistogram("cortex_engine_commit_seconds");
  insert_seconds_ = registry_->GetHistogram("cortex_engine_insert_seconds");
  cache_evictions_ = registry_->GetCounter("cortex_cache_evictions");
  cache_ttl_expiries_ = registry_->GetCounter("cortex_cache_ttl_expiries");
  cache_dedup_refreshes_ =
      registry_->GetCounter("cortex_cache_dedup_refreshes");
  cache_admission_rejects_ =
      registry_->GetCounter("cortex_cache_admission_rejects");
  cache_rejected_too_large_ =
      registry_->GetCounter("cortex_cache_rejected_too_large");
  cache_budget_rejects_ = registry_->GetCounter("cortex_cache_budget_rejects");
  cache_promotions_ = registry_->GetCounter("cortex_cache_promotions");
  cache_tokens_resident_ = registry_->GetGauge("cortex_cache_tokens_resident");
  cache_entries_ = registry_->GetGauge("cortex_cache_entries");
  tenant_registry_ =
      std::make_unique<tenant::TenantRegistry>(registry_, options_.tenants);

  SemanticCacheOptions per_shard = options_.cache;
  per_shard.capacity_tokens = options_.cache.capacity_tokens /
                              static_cast<double>(options_.num_shards);
  per_shard_capacity_ = per_shard.capacity_tokens;
  shards_.reserve(options_.num_shards);
  for (std::size_t i = 0; i < options_.num_shards; ++i) {
    auto cache = std::make_unique<SemanticCache>(
        embedder, MakeIndex(options_.index_type, embedder->dimension()),
        judger, MakeEviction(options_.eviction), per_shard);
    shards_.push_back(std::make_unique<Shard>(
        std::move(cache), options_.recalibration,
        options_.recalibration_seed + i, embedder->dimension(),
        options_.probe_scan_format));
    const std::string prefix =
        "cortex_engine_shard" + std::to_string(i) + "_";
    Shard& shard = *shards_.back();
    shard.hits = registry_->GetCounter(prefix + "hits");
    shard.misses = registry_->GetCounter(prefix + "misses");
    shard.judger_rejects = registry_->GetCounter(prefix + "judger_rejects");
    shard.evictions = registry_->GetCounter(prefix + "evictions");
  }

  if (options_.housekeeping_interval_sec > 0.0) {
    housekeeper_ = std::thread([this] { HousekeepingLoop(); });
  }
}

ConcurrentShardedEngine::~ConcurrentShardedEngine() {
  StopHousekeeping();
  // Retire every shard's final snapshot, then wait out the grace period.
  // No probes may be in flight once destruction starts (usual dtor
  // contract), so the drain completes promptly.
  for (auto& shard : shards_) {
    const ShardSnapshot* last =
        shard->snapshot.exchange(nullptr, std::memory_order_seq_cst);
    if (last != nullptr) epoch_.Retire([last] { delete last; });
  }
  epoch_.DrainBlocking();
}

void ConcurrentShardedEngine::StopHousekeeping() {
  {
    MutexLock lock(hk_mu_);
    hk_stop_ = true;
  }
  hk_cv_.notify_all();
  if (housekeeper_.joinable()) housekeeper_.join();
}

std::size_t ConcurrentShardedEngine::ShardFor(std::string_view query) const {
  return RouteToShard(*embedder_, tokenizer_, query, shards_.size());
}

void ConcurrentShardedEngine::ApplyCacheDeltas(Shard& shard,
                                               const CacheCounters& before,
                                               const CacheCounters& after,
                                               double usage_delta,
                                               double entries_delta) {
  const std::uint64_t evictions = after.evictions - before.evictions;
  if (evictions > 0) {
    cache_evictions_->Inc(evictions);
    shard.evictions->Inc(evictions);
  }
  if (after.expirations > before.expirations) {
    cache_ttl_expiries_->Inc(after.expirations - before.expirations);
  }
  if (after.dedup_refreshes > before.dedup_refreshes) {
    cache_dedup_refreshes_->Inc(after.dedup_refreshes -
                                before.dedup_refreshes);
  }
  if (after.admission_rejects > before.admission_rejects) {
    cache_admission_rejects_->Inc(after.admission_rejects -
                                  before.admission_rejects);
  }
  if (after.rejected_too_large > before.rejected_too_large) {
    cache_rejected_too_large_->Inc(after.rejected_too_large -
                                   before.rejected_too_large);
  }
  if (after.budget_rejects > before.budget_rejects) {
    cache_budget_rejects_->Inc(after.budget_rejects - before.budget_rejects);
  }
  if (after.promotions > before.promotions) {
    cache_promotions_->Inc(after.promotions - before.promotions);
  }
  if (usage_delta != 0.0) cache_tokens_resident_->Add(usage_delta);
  if (entries_delta != 0.0) cache_entries_->Add(entries_delta);
}

void ConcurrentShardedEngine::SyncProbeState(Shard& shard) {
  // Rows whose grace period has passed go back to the slab free list, so
  // this sync's adds can reuse them.  Limbo epochs are non-decreasing —
  // draining is a prefix pop.
  const std::uint64_t safe = epoch_.safe_epoch();
  while (!shard.limbo.empty() && shard.limbo.front().first <= safe) {
    shard.scan_slab.Free(shard.limbo.front().second);
    shard.limbo.pop_front();
  }

  // Reconcile resident rows against the cache store.  A record is stale
  // when its id vanished or its probe fingerprint — (created_at,
  // expiration_time, tenant) — changed (dedup refresh renews the TTL,
  // promotion retags the tenant; key/value/embedding are immutable per
  // id).  Stale rows are unlinked (not freed — a published snapshot may
  // still reference them) and re-added fresh.
  const auto& entries = shard.cache->entries();
  std::vector<std::uint32_t> unlinked;
  for (auto it = shard.resident.begin(); it != shard.resident.end();) {
    const auto e = entries.find(it->first);
    const ProbeRecord& rec = *it->second.record;
    if (e == entries.end() || e->second.created_at != rec.created_at ||
        e->second.expiration_time != rec.expiration_time ||
        e->second.tenant != rec.tenant) {
      unlinked.push_back(it->second.row);
      it = shard.resident.erase(it);
    } else {
      ++it;
    }
  }
  bool changed = !unlinked.empty();
  for (const auto& [id, se] : entries) {
    if (shard.resident.contains(id)) continue;
    auto record = std::make_shared<const ProbeRecord>(
        ProbeRecord{id, se.key, se.value, se.tenant, se.created_at,
                    se.expiration_time, se.embedding});
    const std::uint32_t row = shard.scan_slab.Add(se.embedding);
    shard.resident.emplace(id, Shard::ResidentRow{std::move(record), row});
    changed = true;
  }

  // Republish when membership changed OR the sine thresholds moved (they
  // are frozen into the snapshot at publish time).
  const ShardSnapshot* cur = shard.snapshot.load(std::memory_order_seq_cst);
  const SineOptions& live = shard.cache->sine().options();
  if (changed || cur == nullptr || cur->sine.tau_lsm != live.tau_lsm ||
      cur->sine.tau_sim != live.tau_sim) {
    auto* snap = new ShardSnapshot;
    snap->format = shard.scan_slab.format();
    snap->dim = shard.scan_slab.dim();
    snap->sine = live;
    const std::size_t n = shard.resident.size();
    snap->records.reserve(n);
    switch (snap->format) {
      case RowFormat::kF32:
        snap->rows_f32.reserve(n);
        break;
      case RowFormat::kF16:
        snap->rows_f16.reserve(n);
        break;
      case RowFormat::kI8:
        snap->rows_i8.reserve(n);
        snap->scales_i8.reserve(n);
        break;
    }
    for (const auto& [id, rr] : shard.resident) {
      snap->records.push_back(rr.record);
      switch (snap->format) {
        case RowFormat::kF32:
          snap->rows_f32.push_back(shard.scan_slab.Row(rr.row));
          break;
        case RowFormat::kF16:
          snap->rows_f16.push_back(shard.scan_slab.RowF16(rr.row));
          break;
        case RowFormat::kI8:
          snap->rows_i8.push_back(shard.scan_slab.RowI8(rr.row));
          snap->scales_i8.push_back(shard.scan_slab.RowScale(rr.row));
          break;
      }
    }
    const ShardSnapshot* old =
        shard.snapshot.exchange(snap, std::memory_order_seq_cst);
    if (old != nullptr) epoch_.Retire([old] { delete old; });
  }

  // Stamp unlinked rows AFTER the exchange: a reader that loaded the old
  // snapshot entered at an epoch <= the epoch at exchange time, so a
  // post-exchange stamp (like EpochDomain::Retire's own) is the earliest
  // that is provably safe — a pre-exchange stamp could be one epoch low
  // if the flusher advanced in between, reusing a row one grace period
  // early while a straggler still scans it.
  if (!unlinked.empty()) {
    const std::uint64_t unlink_epoch = epoch_.current_epoch();
    for (const std::uint32_t row : unlinked) {
      shard.limbo.emplace_back(unlink_epoch, row);
    }
  }

  // Bound deferred garbage between housekeeping ticks (and entirely when
  // the housekeeping thread is disabled).  kEpochRetire (70) ranks above
  // kEngineShard (50), so flushing while holding shard.mu is in order.
  if (epoch_.pending_retired() > 64) epoch_.Flush();
}

SemanticCache::LookupResult ConcurrentShardedEngine::LockFreeProbe(
    Shard& shard, std::string_view query, double now, std::string_view tenant,
    ProbeTiming* timing) {
  // Embed outside the epoch section — it needs no shard state.  Timing is
  // collected only when a trace asked for it; the untimed path (Peek, and
  // every probe-scaling bench iteration) runs clock-free.
  const bool timed = timing != nullptr;
  const double embed_t0 = timed ? telemetry::WallSeconds() : 0.0;
  Vector query_embedding = embedder_->Embed(query);
  const double scan_t0 = timed ? telemetry::WallSeconds() : 0.0;
  if (timed) timing->embed_seconds = scan_t0 - embed_t0;

  // Scan, exact rerank, and stage 2 all run inside ONE guard over
  // borrowed records.  The thread-local scratch makes the steady-state
  // probe allocation-free, and borrowing (instead of pooling shared_ptr
  // copies for an out-of-guard rerank) eliminates the contended refcount
  // RMWs on shared record control blocks that made the epoch path lose
  // to the locked one under concurrency.  The judger is a pure in-process
  // model, so holding the guard across it is cheap; a remote judger would
  // flip this trade-off.
  thread_local ProbeScratch scratch;
  SemanticCache::LookupResult result;
  double judge_t0 = scan_t0;
  {
    EpochReadGuard guard(epoch_);
    const ShardSnapshot* snap =
        shard.snapshot.load(std::memory_order_seq_cst);
    if (snap == nullptr) {
      result.query_embedding = std::move(query_embedding);
      if (timed) timing->ann_seconds = telemetry::WallSeconds() - scan_t0;
      return result;
    }
    SnapshotScanRank(*snap, query_embedding, scratch);
    if (timed) {
      judge_t0 = telemetry::WallSeconds();
      timing->ann_seconds = judge_t0 - scan_t0;
    }
    result = SnapshotJudge(scratch.ranked, snap->sine,
                           std::move(query_embedding), query, now, tenant,
                           judger_);
  }
  if (timed) timing->judger_seconds = telemetry::WallSeconds() - judge_t0;
  return result;
}

std::optional<CacheHit> ConcurrentShardedEngine::Peek(std::string_view query,
                                                      std::string_view tenant) {
  Shard& shard = *shards_[ShardFor(query)];
  const double now = clock_();
  SemanticCache::LookupResult result;
  if (options_.lock_free_probe) {
    result = LockFreeProbe(shard, query, now, tenant, nullptr);
  } else {
    ReaderLock lock(shard.mu);
    result = shard.cache->Probe(query, now, nullptr, tenant);
  }
  return std::move(result.hit);
}

std::optional<CacheHit> ConcurrentShardedEngine::Lookup(
    std::string_view query, telemetry::RequestTrace* trace,
    std::string_view tenant) {
  const std::size_t shard_idx = ShardFor(query);
  Shard& shard = *shards_[shard_idx];
  const double now = clock_();
  if (trace != nullptr) trace->shard = static_cast<std::uint32_t>(shard_idx);

  // Probe (scan + judger — the expensive part) never blocks on the shard
  // mutex in the default lock-free mode: it reads the epoch-protected
  // snapshot instead.  The locked fallback takes the shared lock and runs
  // the in-cache Probe.  Sub-phase timing is only collected when a trace
  // wants it.
  ProbeTiming probe_timing;
  SemanticCache::LookupResult result;
  const double probe_t0 = telemetry::WallSeconds();
  if (options_.lock_free_probe) {
    result = LockFreeProbe(shard, query, now, tenant,
                           trace != nullptr ? &probe_timing : nullptr);
  } else {
    ReaderLock lock(shard.mu);
    result = shard.cache->Probe(
        query, now, trace != nullptr ? &probe_timing : nullptr, tenant);
  }
  const double commit_t0 = telemetry::WallSeconds();
  probe_seconds_->Observe(commit_t0 - probe_t0);

  // Commit (counters, frequency bump, judgment log) is cheap; upgrade to
  // the exclusive lock.  The matched SE may have been evicted in between —
  // CommitLookup tolerates that, and the hit we already copied still
  // serves the client.
  {
    WriterLock lock(shard.mu);
    shard.cache->CommitLookup(result, now);
    // Log every judged candidate so recalibration sees scores on both
    // sides of the threshold (same policy as CortexEngine::Lookup).
    for (const auto& judged : result.sine.judged) {
      if (const SemanticElement* se = shard.cache->Get(judged.id)) {
        shard.recalibrator.LogJudgment({std::string(query), se->key,
                                        se->value, judged.judger_score});
      }
    }
  }
  const double commit_end = telemetry::WallSeconds();
  commit_seconds_->Observe(commit_end - commit_t0);

  lookups_->Inc();
  if (result.hit) {
    hits_->Inc();
    shard.hits->Inc();
  } else {
    misses_->Inc();
    shard.misses->Inc();
    // A judger reject is a miss where stage 1 surfaced candidates but
    // stage 2 turned every one of them down.
    if (!result.sine.judged.empty()) {
      judger_rejects_->Inc();
      shard.judger_rejects->Inc();
    }
  }
  if (!tenant.empty()) {
    tenant_registry_->OnLookup(std::string(tenant), result.hit.has_value());
  }

  if (trace != nullptr) {
    // Probe sub-phases run back-to-back inside the shared-lock section;
    // reconstruct their starts by accumulation from the probe start.
    double t = probe_t0;
    trace->AddSpan(telemetry::TracePhase::kEmbed, t,
                   probe_timing.embed_seconds);
    t += probe_timing.embed_seconds;
    trace->AddSpan(telemetry::TracePhase::kAnnProbe, t,
                   probe_timing.ann_seconds);
    t += probe_timing.ann_seconds;
    if (probe_timing.judger_seconds > 0.0) {
      trace->AddSpan(telemetry::TracePhase::kJudger, t,
                     probe_timing.judger_seconds);
    }
    trace->AddSpan(telemetry::TracePhase::kCommit, commit_t0,
                   commit_end - commit_t0);
  }
  return result.hit;
}

void ConcurrentShardedEngine::LookupBatch(
    std::span<BatchLookupRequest> batch) {
  if (batch.empty()) return;
  if (batch.size() == 1 || !options_.lock_free_probe) {
    // One element gains nothing from batching, and the locked fallback has
    // no snapshot to multi-scan — both degenerate to sequential lookups.
    for (BatchLookupRequest& r : batch) {
      r.hit = Lookup(r.query, r.trace, r.tenant);
    }
    return;
  }

  const double now = clock_();
  const std::size_t nq = batch.size();
  const std::size_t dim = embedder_->dimension();
  // Row stride rounded to 16 floats so every row of a 64-byte-aligned
  // matrix starts on a cache line.
  const std::size_t qstride = (dim + 15) & ~static_cast<std::size_t>(15);

  // ---- Stage 1a: one embedding pass into the aligned query matrix.
  thread_local std::vector<float> matrix_storage;
  thread_local std::vector<std::string_view> texts;
  matrix_storage.resize(nq * qstride + 16);
  float* const matrix = AlignTo64(matrix_storage.data());
  texts.clear();
  for (const BatchLookupRequest& r : batch) texts.push_back(r.query);
  const double embed_t0 = telemetry::WallSeconds();
  embedder_->EmbedBatch(texts, matrix, qstride);
  const double embed_share =
      (telemetry::WallSeconds() - embed_t0) / static_cast<double>(nq);

  // ---- Group request indices by shard.
  thread_local std::vector<std::vector<std::uint32_t>> groups;
  thread_local std::vector<std::uint32_t> request_shard;
  groups.resize(shards_.size());
  for (auto& g : groups) g.clear();
  request_shard.resize(nq);
  for (std::size_t i = 0; i < nq; ++i) {
    const std::size_t s = ShardFor(batch[i].query);
    request_shard[i] = static_cast<std::uint32_t>(s);
    groups[s].push_back(static_cast<std::uint32_t>(i));
  }

  // ---- Stage 1b: per shard, ONE epoch-guarded section runs the
  // multi-query scan (slab bytes read once per batch) plus each query's
  // exact rerank.  Survivors are re-homed to shared_ptr copies before the
  // guard drops — bounded at top_k per request, so the refcount traffic
  // that sank the old sequential design stays negligible — which lets
  // stage 2 run unguarded and back-to-back.
  struct Survivor {
    double sim;
    std::shared_ptr<const ProbeRecord> record;
  };
  std::vector<std::vector<Survivor>> survivors(nq);
  std::vector<SineOptions> sine(nq);
  std::vector<char> have_snapshot(nq, 0);
  std::vector<double> ann_share(nq, 0.0);
  thread_local std::vector<float> group_storage;
  thread_local std::vector<float> sims;
  thread_local ProbeScratch scratch;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const auto& group = groups[s];
    if (group.empty()) continue;
    Shard& shard = *shards_[s];
    const std::size_t gn = group.size();
    group_storage.resize(gn * qstride + 16);
    float* const gq = AlignTo64(group_storage.data());
    for (std::size_t j = 0; j < gn; ++j) {
      std::copy_n(matrix + group[j] * qstride, dim, gq + j * qstride);
    }
    const double scan_t0 = telemetry::WallSeconds();
    {
      EpochReadGuard guard(epoch_);
      const ShardSnapshot* snap =
          shard.snapshot.load(std::memory_order_seq_cst);
      if (snap != nullptr) {
        const std::size_t n = snap->size();
        sims.resize(gn * n);
        SnapshotScanMq(*snap, gq, gn, qstride, scratch, sims.data());
        for (std::size_t j = 0; j < gn; ++j) {
          const std::uint32_t i = group[j];
          have_snapshot[i] = 1;
          sine[i] = snap->sine;
          SnapshotRankFromSims(
              *snap, std::span<const float>(gq + j * qstride, dim),
              sims.data() + j * n, scratch);
          auto& out = survivors[i];
          out.reserve(scratch.ranked.size());
          for (const RankedCandidate& c : scratch.ranked) {
            out.push_back({c.sim, snap->records[c.index]});
          }
        }
      }
    }
    const double scan_share =
        (telemetry::WallSeconds() - scan_t0) / static_cast<double>(gn);
    for (const std::uint32_t i : group) ann_share[i] = scan_share;
  }

  // ---- Stage 2: judge every request in original batch order.  Same
  // SnapshotJudge the sequential probe runs, over the same exact-ranked
  // candidates, so verdicts and hit decisions are identical.
  std::vector<SemanticCache::LookupResult> results(nq);
  thread_local std::vector<RankedCandidate> ranked;
  for (std::size_t i = 0; i < nq; ++i) {
    BatchLookupRequest& r = batch[i];
    Vector query_embedding(matrix + i * qstride, matrix + i * qstride + dim);
    const double judge_t0 = telemetry::WallSeconds();
    if (have_snapshot[i]) {
      ranked.clear();
      for (const Survivor& sv : survivors[i]) {
        ranked.push_back({sv.sim, sv.record.get(), 0});
      }
      results[i] = SnapshotJudge(ranked, sine[i], std::move(query_embedding),
                                 r.query, now, r.tenant, judger_);
    } else {
      results[i].query_embedding = std::move(query_embedding);
    }
    r.judger_seconds = telemetry::WallSeconds() - judge_t0;
    r.judger_calls = results[i].sine.judger_calls;
  }

  // ---- Commit per shard: one exclusive section per PROBED SHARD instead
  // of one per request, members in request order.
  std::vector<double> commit_share(nq, 0.0);
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const auto& group = groups[s];
    if (group.empty()) continue;
    Shard& shard = *shards_[s];
    const double commit_t0 = telemetry::WallSeconds();
    {
      WriterLock lock(shard.mu);
      for (const std::uint32_t i : group) {
        shard.cache->CommitLookup(results[i], now);
        for (const auto& judged : results[i].sine.judged) {
          if (const SemanticElement* se = shard.cache->Get(judged.id)) {
            shard.recalibrator.LogJudgment({std::string(batch[i].query),
                                            se->key, se->value,
                                            judged.judger_score});
          }
        }
      }
    }
    const double share = (telemetry::WallSeconds() - commit_t0) /
                         static_cast<double>(group.size());
    for (const std::uint32_t i : group) commit_share[i] = share;
  }

  // ---- Per-request accounting, same shape as Lookup's.
  for (std::size_t i = 0; i < nq; ++i) {
    BatchLookupRequest& r = batch[i];
    SemanticCache::LookupResult& result = results[i];
    probe_seconds_->Observe(embed_share + ann_share[i] + r.judger_seconds);
    commit_seconds_->Observe(commit_share[i]);
    lookups_->Inc();
    Shard& shard = *shards_[request_shard[i]];
    if (result.hit) {
      hits_->Inc();
      shard.hits->Inc();
    } else {
      misses_->Inc();
      shard.misses->Inc();
      if (!result.sine.judged.empty()) {
        judger_rejects_->Inc();
        shard.judger_rejects->Inc();
      }
    }
    if (!r.tenant.empty()) {
      tenant_registry_->OnLookup(std::string(r.tenant),
                                 result.hit.has_value());
    }
    if (r.trace != nullptr) {
      r.trace->shard = request_shard[i];
      double t = embed_t0;
      r.trace->AddSpan(telemetry::TracePhase::kEmbed, t, embed_share);
      t += embed_share;
      r.trace->AddSpan(telemetry::TracePhase::kAnnProbe, t, ann_share[i]);
      t += ann_share[i];
      if (r.judger_seconds > 0.0) {
        r.trace->AddSpan(telemetry::TracePhase::kJudger, t,
                         r.judger_seconds);
      }
      r.trace->AddSpan(telemetry::TracePhase::kCommit,
                       t + r.judger_seconds, commit_share[i]);
    }
    r.hit = std::move(result.hit);
  }
}

std::optional<SeId> ConcurrentShardedEngine::Insert(
    InsertRequest request, telemetry::RequestTrace* trace) {
  const std::size_t shard_idx = ShardFor(request.key);
  Shard& shard = *shards_[shard_idx];
  const double now = clock_();
  if (trace != nullptr) trace->shard = static_cast<std::uint32_t>(shard_idx);

  // Fill in the tenant's per-shard budget before the cache sees the
  // request — budget *policy* lives in the TenantRegistry, budget
  // *enforcement* in the core eviction path.
  const std::string tenant = request.tenant;
  if (!tenant.empty()) {
    request.budget_tokens =
        tenant_registry_->BudgetTokens(tenant, per_shard_capacity_);
  }

  InsertTiming timing;
  CacheCounters before, after;
  double usage_delta = 0.0;
  double entries_delta = 0.0;
  std::uint64_t tenant_evictions_delta = 0;
  std::optional<SeId> id;
  const double insert_t0 = telemetry::WallSeconds();
  {
    WriterLock lock(shard.mu);
    before = shard.cache->counters();
    const double usage_before = shard.cache->usage_tokens();
    const auto size_before = shard.cache->size();
    const std::uint64_t tenant_evictions_before =
        tenant.empty() ? 0 : shard.cache->TenantUsageFor(tenant).evictions;
    id = shard.cache->Insert(std::move(request), now, &timing);
    after = shard.cache->counters();
    usage_delta = shard.cache->usage_tokens() - usage_before;
    entries_delta = static_cast<double>(shard.cache->size()) -
                    static_cast<double>(size_before);
    if (!tenant.empty()) {
      tenant_evictions_delta = shard.cache->TenantUsageFor(tenant).evictions -
                               tenant_evictions_before;
    }
    if (options_.lock_free_probe) SyncProbeState(shard);
  }
  const double insert_end = telemetry::WallSeconds();
  insert_seconds_->Observe(insert_end - insert_t0);
  ApplyCacheDeltas(shard, before, after, usage_delta, entries_delta);
  (id ? inserts_ : insert_rejects_)->Inc();
  if (!tenant.empty()) {
    tenant_registry_->OnInsert(tenant, id.has_value());
    tenant_registry_->OnEvictions(tenant, tenant_evictions_delta);
    if (after.promotions > before.promotions) {
      tenant_registry_->OnPromotion(tenant);
    }
  }

  if (trace != nullptr) {
    trace->AddSpan(telemetry::TracePhase::kInsert, insert_t0,
                   insert_end - insert_t0);
    if (timing.evict_seconds > 0.0) {
      trace->AddSpan(telemetry::TracePhase::kEviction, insert_t0,
                     timing.evict_seconds);
    }
  }
  return id;
}

bool ConcurrentShardedEngine::ContainsKey(std::string_view key,
                                          std::string_view tenant) const {
  const Shard& shard = *shards_[ShardFor(key)];
  ReaderLock lock(shard.mu);
  return shard.cache->ContainsKey(key, tenant);
}

std::size_t ConcurrentShardedEngine::RemoveExpired() {
  const double now = clock_();
  std::size_t removed = 0;
  for (auto& shard : shards_) {
    CacheCounters before, after;
    double usage_delta = 0.0;
    double entries_delta = 0.0;
    {
      WriterLock lock(shard->mu);
      before = shard->cache->counters();
      const double usage_before = shard->cache->usage_tokens();
      const auto size_before = shard->cache->size();
      removed += shard->cache->RemoveExpired(now);
      after = shard->cache->counters();
      usage_delta = shard->cache->usage_tokens() - usage_before;
      entries_delta = static_cast<double>(shard->cache->size()) -
                      static_cast<double>(size_before);
      if (options_.lock_free_probe) SyncProbeState(*shard);
    }
    ApplyCacheDeltas(*shard, before, after, usage_delta, entries_delta);
  }
  expired_removed_->Inc(removed);
  return removed;
}

namespace {

// Engine snapshot framing: a tiny header in front of one core/snapshot
// stream per shard.  Native endianness, same policy as core/snapshot.
inline constexpr std::uint32_t kEngineSnapshotMagic = 0x43525853;  // "CRXS"
inline constexpr std::uint32_t kEngineSnapshotVersion = 1;

void WriteRawU32(std::ostream& out, std::uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}
void WriteRawU64(std::ostream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}
std::uint32_t ReadRawU32(std::istream& in) {
  std::uint32_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof v);
  return v;
}
std::uint64_t ReadRawU64(std::istream& in) {
  std::uint64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof v);
  return v;
}

}  // namespace

std::uint64_t ForEachEngineSnapshotElement(
    std::istream& in, const std::function<void(SemanticElement)>& fn) {
  if (ReadRawU32(in) != kEngineSnapshotMagic) {
    throw std::runtime_error("engine snapshot: bad magic");
  }
  if (const auto version = ReadRawU32(in);
      version != kEngineSnapshotVersion) {
    throw std::runtime_error("engine snapshot: unsupported version " +
                             std::to_string(version));
  }
  const auto shard_count = ReadRawU64(in);
  if (!in.good() || shard_count > 4096) {
    throw std::runtime_error("engine snapshot: malformed header");
  }
  std::uint64_t visited = 0;
  for (std::uint64_t i = 0; i < shard_count; ++i) {
    visited += ForEachSnapshotElement(in, fn);
  }
  return visited;
}

void WriteEngineSnapshot(std::ostream& out,
                         const std::vector<SemanticElement>& elements) {
  WriteRawU32(out, kEngineSnapshotMagic);
  WriteRawU32(out, kEngineSnapshotVersion);
  WriteRawU64(out, 1);
  WriteSnapshotHeader(out, elements.size());
  for (const SemanticElement& se : elements) {
    WriteSnapshotElement(out, se);
  }
  if (!out.good()) {
    throw std::runtime_error("engine snapshot: stream failure while writing");
  }
}

SnapshotStats ConcurrentShardedEngine::SaveSnapshot(std::ostream& out) const {
  SnapshotStats stats;
  WriteRawU32(out, kEngineSnapshotMagic);
  WriteRawU32(out, kEngineSnapshotVersion);
  WriteRawU64(out, shards_.size());
  for (const auto& shard : shards_) {
    ReaderLock lock(shard->mu);
    const SnapshotStats shard_stats = SaveCacheSnapshot(*shard->cache, out);
    stats.entries_written += shard_stats.entries_written;
  }
  if (!out.good()) {
    throw std::runtime_error("engine snapshot: stream failure while writing");
  }
  return stats;
}

SnapshotStats ConcurrentShardedEngine::LoadSnapshot(std::istream& in) {
  if (ReadRawU32(in) != kEngineSnapshotMagic) {
    throw std::runtime_error("engine snapshot: bad magic");
  }
  if (const auto version = ReadRawU32(in);
      version != kEngineSnapshotVersion) {
    throw std::runtime_error("engine snapshot: unsupported version " +
                             std::to_string(version));
  }
  const auto shard_count = ReadRawU64(in);
  if (!in.good() || shard_count > 4096) {
    throw std::runtime_error("engine snapshot: malformed header");
  }
  SnapshotStats stats;
  const double now = clock_();
  for (std::uint64_t i = 0; i < shard_count; ++i) {
    ForEachSnapshotElement(in, [&](SemanticElement se) {
      if (se.ExpiredAt(now)) {
        ++stats.entries_expired;
        return;
      }
      if (RestoreElement(std::move(se))) {
        ++stats.entries_restored;
      } else {
        ++stats.entries_rejected;
      }
    });
  }
  return stats;
}

std::optional<SeId> ConcurrentShardedEngine::RestoreElement(
    SemanticElement se) {
  Shard& shard = *shards_[ShardFor(se.key)];
  const double now = clock_();
  CacheCounters before, after;
  double usage_delta = 0.0;
  double entries_delta = 0.0;
  std::optional<SeId> id;
  {
    WriterLock lock(shard.mu);
    before = shard.cache->counters();
    const double usage_before = shard.cache->usage_tokens();
    const auto size_before = shard.cache->size();
    id = shard.cache->RestoreElement(std::move(se), now);
    after = shard.cache->counters();
    usage_delta = shard.cache->usage_tokens() - usage_before;
    entries_delta = static_cast<double>(shard.cache->size()) -
                    static_cast<double>(size_before);
    if (options_.lock_free_probe) SyncProbeState(shard);
  }
  ApplyCacheDeltas(shard, before, after, usage_delta, entries_delta);
  return id;
}

void ConcurrentShardedEngine::SetGroundTruthFetcher(
    std::function<std::string(std::string_view)> fn) {
  MutexLock lock(fetch_gt_mu_);
  fetch_gt_ = std::move(fn);
}

bool ConcurrentShardedEngine::RecalibrateShard(Shard& shard) {
  std::function<std::string(std::string_view)> fetch;
  {
    MutexLock lock(fetch_gt_mu_);
    fetch = fetch_gt_;
  }
  if (!fetch) return false;
  WriterLock lock(shard.mu);
  const RecalibrationRound round = shard.recalibrator.RunRound(fetch, shard.rng);
  recalibrations_->Inc();
  if (round.new_tau) {
    shard.cache->sine().set_tau_lsm(*round.new_tau);
    // Thresholds are frozen into the published snapshot; republish so
    // lock-free probes judge against the recalibrated tau.
    if (options_.lock_free_probe) SyncProbeState(shard);
    return true;
  }
  return false;
}

std::size_t ConcurrentShardedEngine::RecalibrateAllShards() {
  std::size_t changed = 0;
  for (auto& shard : shards_) {
    if (RecalibrateShard(*shard)) ++changed;
  }
  return changed;
}

void ConcurrentShardedEngine::HousekeepingLoop() {
  using namespace std::chrono_literals;
  // Start at -inf so the first tick always runs — the loop must not miss a
  // clock jump that happened before this thread got scheduled (tests with
  // injected clocks rely on this).
  double last_purge = -std::numeric_limits<double>::infinity();
  double last_recal = last_purge;
  std::unique_lock<RankedMutex> lk(hk_mu_);
  while (!hk_stop_) {
    // Poll on a short wall-clock cadence but trigger on the *engine*
    // clock, so tests with injected clocks control when ticks fire.
    hk_cv_.wait_for(lk, 20ms, [this] { return hk_stop_; });
    if (hk_stop_) break;
    lk.unlock();
    const double now = clock_();
    if (now - last_purge >= options_.housekeeping_interval_sec) {
      last_purge = now;
      RemoveExpired();
      housekeeping_runs_->Inc();
    }
    if (options_.recalibration_interval_sec > 0.0 &&
        now - last_recal >= options_.recalibration_interval_sec) {
      last_recal = now;
      RecalibrateAllShards();
    }
    // Advance the reclamation epoch and run due retire callbacks (freed
    // snapshots; slab rows drain back on the next shard mutation).
    epoch_.Flush();
    lk.lock();
  }
}

ConcurrentEngineStats ConcurrentShardedEngine::Stats() const {
  ConcurrentEngineStats s;
  s.lookups = lookups_->Value();
  s.hits = hits_->Value();
  s.inserts = inserts_->Value();
  s.insert_rejects = insert_rejects_->Value();
  s.expired_removed = expired_removed_->Value();
  s.housekeeping_runs = housekeeping_runs_->Value();
  s.recalibrations = recalibrations_->Value();
  return s;
}

CacheCounters ConcurrentShardedEngine::TotalCounters() const {
  CacheCounters total;
  for (const auto& shard : shards_) {
    ReaderLock lock(shard->mu);
    const auto& c = shard->cache->counters();
    total.lookups += c.lookups;
    total.hits += c.hits;
    total.insertions += c.insertions;
    total.evictions += c.evictions;
    total.expirations += c.expirations;
    total.rejected_too_large += c.rejected_too_large;
    total.dedup_refreshes += c.dedup_refreshes;
    total.admission_rejects += c.admission_rejects;
    total.budget_rejects += c.budget_rejects;
    total.promotions += c.promotions;
  }
  return total;
}

std::size_t ConcurrentShardedEngine::TotalSize() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    ReaderLock lock(shard->mu);
    total += shard->cache->size();
  }
  return total;
}

double ConcurrentShardedEngine::TotalUsageTokens() const {
  double total = 0.0;
  for (const auto& shard : shards_) {
    ReaderLock lock(shard->mu);
    total += shard->cache->usage_tokens();
  }
  return total;
}

double ConcurrentShardedEngine::tau_lsm(std::size_t shard) const {
  const Shard& s = *shards_.at(shard);
  ReaderLock lock(s.mu);
  return s.cache->sine().options().tau_lsm;
}

}  // namespace cortex::serve
