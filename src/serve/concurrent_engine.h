// ConcurrentShardedEngine: the thread-safe engine front of the serving
// layer (cortexd).  Wraps the paper's sharded deployment (Fig. 4) for real
// parallel clients instead of the single-threaded virtual-clock sim:
//
//   * a lock-free lookup probe (on by default, DESIGN.md §13): each shard
//     publishes an immutable ShardSnapshot — quantized scan rows plus
//     probe-relevant record copies — through a seq_cst atomic pointer;
//     readers pin it with an EpochReadGuard and never touch the shard
//     mutex for the expensive part (scan + judger).  Writers rebuild and
//     republish under the exclusive lock and retire the old snapshot to
//     the engine's EpochDomain.  With lock_free_probe=false, lookups fall
//     back to taking the shared lock for the probe instead.  Either way
//     the cheap commit (counters, frequency bump) upgrades to the
//     exclusive lock; insert/evict/expire take the exclusive lock
//     outright;
//   * live telemetry (DESIGN.md §8): every request updates counters,
//     gauges, and latency histograms on a MetricRegistry — instrument
//     handles are resolved once at construction, so the hot path is pure
//     relaxed atomics and never touches the registry mutex or any lock;
//   * a background housekeeping thread that periodically runs RemoveExpired
//     on every shard and — when ground truth is reachable — per-shard
//     threshold recalibration ticks (Algorithm 1, ported from CortexEngine).
//
// Lock order (machine-checked in debug builds by RankedMutex, see the
// rank table in DESIGN.md §7): fetch_gt_mu_ (30) < hk_mu_ (40) < shard.mu
// (50).  Shard mutexes are leaves — no other lock is ever acquired while
// one is held, and at most one shard mutex is held at a time (cross-shard
// aggregates lock shard by shard, so totals are per-shard-consistent
// snapshots, not a global atomic view).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "core/snapshot.h"
#include "core/recalibrator.h"
#include "core/semantic_cache.h"
#include "core/sharded_cache.h"
#include "embedding/hashed_embedder.h"
#include "embedding/vector_slab.h"
#include "serve/shard_snapshot.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "tenant/registry.h"
#include "util/epoch.h"
#include "util/ranked_mutex.h"
#include "util/rng.h"
#include "util/thread_annotations.h"
#include "util/tokenizer.h"

namespace cortex::serve {

struct ConcurrentEngineOptions {
  std::size_t num_shards = 4;
  // Per-shard options; capacity_tokens is the TOTAL budget, divided evenly
  // across shards (same convention as ShardedCacheOptions).
  SemanticCacheOptions cache;
  IndexType index_type = IndexType::kFlat;
  EvictionKind eviction = EvictionKind::kLcfu;

  // Background housekeeping cadence in engine-clock seconds; <= 0 disables
  // the thread entirely (tests drive RemoveExpired by hand).
  double housekeeping_interval_sec = 1.0;
  // Recalibration tick cadence; <= 0 disables.  Ticks only do work once a
  // ground-truth fetcher is installed (SetGroundTruthFetcher).
  double recalibration_interval_sec = 0.0;
  RecalibratorOptions recalibration;
  std::uint64_t recalibration_seed = 97;

  // Engine clock in seconds.  Defaults to wall-clock seconds since engine
  // construction; tests inject a fake.  Must be monotonic non-decreasing
  // and safe to call from any thread.  Telemetry timing (histograms,
  // spans) deliberately ignores this clock and uses real wall time.
  std::function<double()> clock;

  // Metric registry to publish into; must outlive the engine.  When null
  // the engine owns a private registry (reachable via registry()).
  telemetry::MetricRegistry* registry = nullptr;

  // Multi-tenant quotas + telemetry (DESIGN.md §12).  The engine owns a
  // TenantRegistry built from these options; per-tenant cache budgets are
  // computed against each shard's capacity share.
  tenant::TenantRegistryOptions tenants;

  // Lock-free probe (DESIGN.md §13).  When true, Lookup's expensive probe
  // reads an epoch-protected ShardSnapshot and never takes the shard
  // mutex; when false it takes the shared lock and runs the in-cache
  // Probe (the pre-epoch path, kept for A/B benches and as a fallback).
  // The lock-free probe's stage 1 is an exact quantized scan + fp32
  // rerank — identical to the locked path under IndexType::kFlat, better
  // recall than it under IVF/HNSW (those prune, the scan does not).
  bool lock_free_probe = true;
  // Scan-tier row format for the snapshot slab: kI8 cuts scan bytes per
  // vector ~4x vs fp32; the fp32-rerank contract makes the final top-k
  // identical whatever format scans.
  RowFormat probe_scan_format = RowFormat::kI8;
};

// Lock-free snapshot of the engine-wide counters (a thin view over the
// registry's cortex_engine_* instruments).
struct ConcurrentEngineStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t inserts = 0;          // accepted (new id or dedup refresh)
  std::uint64_t insert_rejects = 0;   // too large / admission-rejected
  std::uint64_t expired_removed = 0;  // via housekeeping or RemoveExpired()
  std::uint64_t housekeeping_runs = 0;
  std::uint64_t recalibrations = 0;   // per-shard recalibration rounds run
};

// One request in a cross-request lookup batch (DESIGN.md §14).  `query`
// and `tenant` are borrowed for the duration of the LookupBatch call;
// the remaining fields are outputs.
struct BatchLookupRequest {
  std::string_view query;
  std::string_view tenant;
  telemetry::RequestTrace* trace = nullptr;

  std::optional<CacheHit> hit;
  // Judger-stage accounting for the batching pipeline's gpu admission:
  // verdicts this request consumed and the wall time they took.
  std::size_t judger_calls = 0;
  double judger_seconds = 0.0;
};

// ---------------------------------------------------------------------------
// Engine-snapshot blob helpers for peers that hold no engine.  The cluster
// router filters a migration stream by ring ownership: it iterates a node's
// SNAPSHOT blob element by element, keeps what the joining node should own,
// and re-packs the survivors as a single-shard engine snapshot — which any
// node's LoadSnapshot re-routes by key, so shard layouts never have to
// match across the wire.

// Invokes `fn` for every element of an engine snapshot stream.  Returns
// elements visited; throws std::runtime_error on malformed input.
std::uint64_t ForEachEngineSnapshotElement(
    std::istream& in, const std::function<void(SemanticElement)>& fn);

// Writes `elements` as a one-shard engine snapshot readable by
// LoadSnapshot on an engine of any shard count.
void WriteEngineSnapshot(std::ostream& out,
                         const std::vector<SemanticElement>& elements);

class ConcurrentShardedEngine {
 public:
  // embedder/judger are borrowed and must outlive the engine.  The
  // embedder must already be IDF-fitted (routing and matching both use the
  // weights) and must not be refit while the engine is live.
  ConcurrentShardedEngine(const HashedEmbedder* embedder,
                          const JudgerModel* judger,
                          ConcurrentEngineOptions options = {});
  ~ConcurrentShardedEngine();

  ConcurrentShardedEngine(const ConcurrentShardedEngine&) = delete;
  ConcurrentShardedEngine& operator=(const ConcurrentShardedEngine&) = delete;

  // Two-stage semantic lookup at the engine clock's now, scoped to
  // `tenant` (empty = shared pool only).  `trace`, when non-null, receives
  // embed / ANN probe / judger / commit spans and the shard id.
  std::optional<CacheHit> Lookup(std::string_view query,
                                 telemetry::RequestTrace* trace = nullptr,
                                 std::string_view tenant = {});

  // Batched lookup (the pipeline's engine entry point, DESIGN.md §14):
  // embeds every query in one pass into a contiguous 64-byte-aligned
  // matrix, scans each probed shard's snapshot ONCE for all of its
  // queries with the multi-query kernels under a single EpochReadGuard,
  // judges stage-2 verdicts back-to-back, then commits per shard in
  // request order.  Every request's hit/miss, similarities, verdicts,
  // and tenant visibility are identical to calling Lookup sequentially
  // (same snapshot, same exact-rerank, same stage-2 walk; commits do not
  // change probe-relevant state).  A one-element batch — or an engine
  // running with lock_free_probe=false — degenerates to sequential
  // Lookup calls.
  void LookupBatch(std::span<BatchLookupRequest> batch);

  // Read-only lookup: the same two-stage probe, but nothing commits — no
  // frequency bump, no judgment log, no stats.  With lock_free_probe this
  // touches no shard mutex at all, so concurrent Peeks scale with cores
  // (the probe-scaling leg of bench_concurrency measures exactly this);
  // it is also the right call for health checks and cache-warmness
  // queries that must not perturb eviction state.
  std::optional<CacheHit> Peek(std::string_view query,
                               std::string_view tenant = {});

  // Insert knowledge fetched by a client on a miss.  Returns the SE id, or
  // nullopt when rejected (value too large, admission doorkeeper, tenant
  // budget).  When request.tenant is set, the engine fills in the
  // tenant's per-shard budget from the TenantRegistry before the cache
  // sees the request.  `trace`, when non-null, receives insert / eviction
  // spans.
  std::optional<SeId> Insert(InsertRequest request,
                             telemetry::RequestTrace* trace = nullptr);

  bool ContainsKey(std::string_view key, std::string_view tenant = {}) const;

  // Manual full TTL purge across all shards (the housekeeping thread calls
  // this on its own cadence).  Returns entries removed.
  std::size_t RemoveExpired();

  // Multi-shard snapshot (cluster migration, warm restarts).  The format is
  // a small engine header followed by one bounded core/snapshot stream per
  // shard, written shard-by-shard under each shard's shared lock — the
  // engine keeps serving while a snapshot streams out, and the result is
  // per-shard-consistent (the same guarantee every cross-shard aggregate
  // gives).  Throws std::runtime_error on stream failure.
  SnapshotStats SaveSnapshot(std::ostream& out) const;

  // Restores a snapshot written by any engine, whatever its shard count:
  // every element is re-routed by ShardFor(key) here, so a 4-shard node can
  // load a 2-shard peer's state.  Entries dedup/expire under the usual
  // RestoreElement rules.  Throws std::runtime_error on malformed input.
  SnapshotStats LoadSnapshot(std::istream& in);

  // Re-admits one fully-populated SE into its owning shard, preserving
  // accumulated metadata (LoadSnapshot's per-element path).
  std::optional<SeId> RestoreElement(SemanticElement se);

  // Installs the ground-truth fetch used by recalibration ticks (query ->
  // ground-truth result; a real remote call in production, the workload
  // oracle here).  Must be thread-safe; it runs on the housekeeping thread
  // while the shard's exclusive lock is held.
  void SetGroundTruthFetcher(std::function<std::string(std::string_view)> fn);

  // Runs one recalibration round on every shard immediately (the
  // housekeeping thread's tick, callable by hand in tests/benches).
  // Returns the number of shards whose tau changed.
  std::size_t RecalibrateAllShards();

  double Now() const { return clock_(); }
  std::size_t num_shards() const noexcept { return shards_.size(); }
  std::size_t ShardFor(std::string_view query) const;

  // The registry this engine publishes into (the injected one, or the
  // engine-owned default).  Valid for the engine's lifetime.
  telemetry::MetricRegistry* registry() const noexcept { return registry_; }

  // Per-tenant quotas, budgets, and bounded-cardinality telemetry.  Owned
  // by the engine; valid for its lifetime.  The server consults it for
  // rate-quota admission; tests configure quotas through it.
  tenant::TenantRegistry* tenant_registry() const noexcept {
    return tenant_registry_.get();
  }

  // The capacity share one shard's cache enforces (total / num_shards) —
  // the base against which per-tenant budget fractions apply.
  double per_shard_capacity_tokens() const noexcept {
    return per_shard_capacity_;
  }

  ConcurrentEngineStats Stats() const;

  // Shard-by-shard locked aggregates (consistent per shard, not globally).
  CacheCounters TotalCounters() const;
  std::size_t TotalSize() const;
  double TotalUsageTokens() const;
  double tau_lsm(std::size_t shard) const;

  // Stops the housekeeping thread (idempotent; the destructor calls it).
  void StopHousekeeping();

 private:
  struct Shard {
    mutable RankedSharedMutex mu{LockRank::kEngineShard, "shard.mu"};
    std::unique_ptr<SemanticCache> cache GUARDED_BY(mu) PT_GUARDED_BY(mu);
    Recalibrator recalibrator GUARDED_BY(mu);
    Rng rng GUARDED_BY(mu);

    // --- Lock-free probe state (DESIGN.md §13) ---------------------------
    // The currently published snapshot.  Readers load it seq_cst inside an
    // EpochReadGuard; writers exchange it seq_cst under the exclusive lock
    // and retire the old value to the engine's EpochDomain (the epoch
    // contract requires seq_cst on both sides).  nullptr until the first
    // publish (readers treat that as an empty shard).
    std::atomic<const ShardSnapshot*> snapshot{nullptr};
    // Quantized scan rows.  Row contents are immutable once published in
    // a snapshot — a changed entry gets a NEW row; the old one parks in
    // `limbo` until the grace period passes, then returns to the free
    // list.  Rows never move (slab chunks are stable), so snapshot row
    // pointers stay valid throughout.
    VectorSlab scan_slab GUARDED_BY(mu);
    struct ResidentRow {
      std::shared_ptr<const ProbeRecord> record;
      std::uint32_t row = 0;
    };
    // id -> (record, slab row) for every SE currently in the cache store.
    std::unordered_map<SeId, ResidentRow> resident GUARDED_BY(mu);
    // (retire-epoch, row) for rows unlinked from the current snapshot;
    // epochs are non-decreasing, so draining is a prefix pop.
    std::deque<std::pair<std::uint64_t, std::uint32_t>> limbo GUARDED_BY(mu);

    // Per-shard registry handles (cortex_engine_shard<i>_*).  The
    // instruments are internally thread-safe; no lock needed to update.
    telemetry::Counter* hits = nullptr;
    telemetry::Counter* misses = nullptr;
    telemetry::Counter* judger_rejects = nullptr;
    telemetry::Counter* evictions = nullptr;

    Shard(std::unique_ptr<SemanticCache> c, RecalibratorOptions ropts,
          std::uint64_t seed, std::size_t dim, RowFormat format)
        : cache(std::move(c)),
          recalibrator(ropts),
          rng(seed),
          scan_slab(dim, format) {}
  };

  // Waits on hk_cv_ through a std::unique_lock, which clang's analysis
  // cannot see through — excluded from analysis, lock order still
  // machine-checked by RankedMutex.
  void HousekeepingLoop() NO_THREAD_SAFETY_ANALYSIS;
  bool RecalibrateShard(Shard& shard) EXCLUDES(fetch_gt_mu_);

  // Reconciles the shard's probe state against its cache store and, when
  // anything probe-relevant changed, publishes a fresh ShardSnapshot
  // (retiring the old one).  Callers hold the exclusive lock and invoke
  // this after EVERY mutation that can change probe results — insert,
  // restore, TTL purge, recalibration.  CommitLookup deliberately does
  // not: frequency/last_access are not probe-relevant.
  void SyncProbeState(Shard& shard) REQUIRES(shard.mu);
  // The epoch-protected probe (phases 1+2); returns the same LookupResult
  // the locked SemanticCache::Probe produces.  Takes no shard lock.
  SemanticCache::LookupResult LockFreeProbe(Shard& shard,
                                            std::string_view query,
                                            double now,
                                            std::string_view tenant,
                                            ProbeTiming* timing);

  // Publishes what changed inside a shard mutation (insert / purge):
  // cache-layer counter deltas plus resident-size gauge deltas.
  void ApplyCacheDeltas(Shard& shard, const CacheCounters& before,
                        const CacheCounters& after, double usage_delta,
                        double entries_delta);

  const HashedEmbedder* const embedder_;
  const JudgerModel* const judger_;
  const Tokenizer tokenizer_;
  const ConcurrentEngineOptions options_;
  const std::function<double()> clock_;

  // Grace-period tracker for snapshot/row reclamation.  Declared before
  // shards_ so it outlives every Retire callback; the destructor drains
  // it explicitly after retiring each shard's final snapshot.
  EpochDomain epoch_;

  std::unique_ptr<telemetry::MetricRegistry> registry_owned_;
  telemetry::MetricRegistry* registry_ = nullptr;
  // Set once in the constructor, internally synchronized (rank 60 mutex).
  std::unique_ptr<tenant::TenantRegistry> tenant_registry_;  // cortex-analyzer: allow(guarded-by)
  // Derived from options_ in the constructor, immutable afterwards.
  double per_shard_capacity_ = 0.0;  // cortex-analyzer: allow(guarded-by)

  // Engine-layer instruments (cortex_engine_*).
  telemetry::Counter* lookups_ = nullptr;
  telemetry::Counter* hits_ = nullptr;
  telemetry::Counter* misses_ = nullptr;
  telemetry::Counter* judger_rejects_ = nullptr;
  telemetry::Counter* inserts_ = nullptr;
  telemetry::Counter* insert_rejects_ = nullptr;
  telemetry::Counter* expired_removed_ = nullptr;
  telemetry::Counter* housekeeping_runs_ = nullptr;
  telemetry::Counter* recalibrations_ = nullptr;
  telemetry::AtomicHistogram* probe_seconds_ = nullptr;
  telemetry::AtomicHistogram* commit_seconds_ = nullptr;
  telemetry::AtomicHistogram* insert_seconds_ = nullptr;

  // Cache-layer instruments (cortex_cache_*), fed by before/after deltas
  // of each shard's CacheCounters so SemanticCache itself stays
  // telemetry-free.
  telemetry::Counter* cache_evictions_ = nullptr;
  telemetry::Counter* cache_ttl_expiries_ = nullptr;
  telemetry::Counter* cache_dedup_refreshes_ = nullptr;
  telemetry::Counter* cache_admission_rejects_ = nullptr;
  telemetry::Counter* cache_rejected_too_large_ = nullptr;
  telemetry::Counter* cache_budget_rejects_ = nullptr;
  telemetry::Counter* cache_promotions_ = nullptr;
  telemetry::Gauge* cache_tokens_resident_ = nullptr;
  telemetry::Gauge* cache_entries_ = nullptr;

  // Shard set is created in the constructor and structurally immutable
  // afterwards; all mutable per-shard state is guarded by shard.mu.
  std::vector<std::unique_ptr<Shard>> shards_;  // cortex-analyzer: allow(guarded-by)

  RankedMutex fetch_gt_mu_{LockRank::kEngineGroundTruth,
                           "engine.fetch_gt_mu"};
  std::function<std::string(std::string_view)> fetch_gt_
      GUARDED_BY(fetch_gt_mu_);

  RankedMutex hk_mu_{LockRank::kEngineHousekeeping, "engine.hk_mu"};
  // condition_variable_any: waits through RankedMutex's lock/unlock, so
  // the held-rank stack stays correct across the wait.
  std::condition_variable_any hk_cv_;
  bool hk_stop_ GUARDED_BY(hk_mu_) = false;
  std::thread housekeeper_;
};

}  // namespace cortex::serve
