// ConcurrentShardedEngine: the thread-safe engine front of the serving
// layer (cortexd).  Wraps the paper's sharded deployment (Fig. 4) for real
// parallel clients instead of the single-threaded virtual-clock sim:
//
//   * per-shard std::shared_mutex — lookups take the shared lock for the
//     expensive read-only probe (ANN search + judger) and upgrade to the
//     exclusive lock only for the cheap commit (counters, frequency bump);
//     insert/evict/expire take the exclusive lock outright;
//   * engine-wide atomic counters, readable without any lock;
//   * a background housekeeping thread that periodically runs RemoveExpired
//     on every shard and — when ground truth is reachable — per-shard
//     threshold recalibration ticks (Algorithm 1, ported from CortexEngine).
//
// Lock order (machine-checked in debug builds by RankedMutex, see the
// rank table in DESIGN.md §7): fetch_gt_mu_ (30) < hk_mu_ (40) < shard.mu
// (50).  Shard mutexes are leaves — no other lock is ever acquired while
// one is held, and at most one shard mutex is held at a time (cross-shard
// aggregates lock shard by shard, so totals are per-shard-consistent
// snapshots, not a global atomic view).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string_view>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "core/recalibrator.h"
#include "core/semantic_cache.h"
#include "core/sharded_cache.h"
#include "embedding/hashed_embedder.h"
#include "util/ranked_mutex.h"
#include "util/rng.h"
#include "util/thread_annotations.h"
#include "util/tokenizer.h"

namespace cortex::serve {

struct ConcurrentEngineOptions {
  std::size_t num_shards = 4;
  // Per-shard options; capacity_tokens is the TOTAL budget, divided evenly
  // across shards (same convention as ShardedCacheOptions).
  SemanticCacheOptions cache;
  IndexType index_type = IndexType::kFlat;
  EvictionKind eviction = EvictionKind::kLcfu;

  // Background housekeeping cadence in engine-clock seconds; <= 0 disables
  // the thread entirely (tests drive RemoveExpired by hand).
  double housekeeping_interval_sec = 1.0;
  // Recalibration tick cadence; <= 0 disables.  Ticks only do work once a
  // ground-truth fetcher is installed (SetGroundTruthFetcher).
  double recalibration_interval_sec = 0.0;
  RecalibratorOptions recalibration;
  std::uint64_t recalibration_seed = 97;

  // Engine clock in seconds.  Defaults to wall-clock seconds since engine
  // construction; tests inject a fake.  Must be monotonic non-decreasing
  // and safe to call from any thread.
  std::function<double()> clock;
};

// Lock-free snapshot of the engine-wide atomics.
struct ConcurrentEngineStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t inserts = 0;          // accepted (new id or dedup refresh)
  std::uint64_t insert_rejects = 0;   // too large / admission-rejected
  std::uint64_t expired_removed = 0;  // via housekeeping or RemoveExpired()
  std::uint64_t housekeeping_runs = 0;
  std::uint64_t recalibrations = 0;   // per-shard recalibration rounds run
};

class ConcurrentShardedEngine {
 public:
  // embedder/judger are borrowed and must outlive the engine.  The
  // embedder must already be IDF-fitted (routing and matching both use the
  // weights) and must not be refit while the engine is live.
  ConcurrentShardedEngine(const HashedEmbedder* embedder,
                          const JudgerModel* judger,
                          ConcurrentEngineOptions options = {});
  ~ConcurrentShardedEngine();

  ConcurrentShardedEngine(const ConcurrentShardedEngine&) = delete;
  ConcurrentShardedEngine& operator=(const ConcurrentShardedEngine&) = delete;

  // Two-stage semantic lookup at the engine clock's now.
  std::optional<CacheHit> Lookup(std::string_view query);

  // Insert knowledge fetched by a client on a miss.  Returns the SE id, or
  // nullopt when rejected (value too large, admission doorkeeper).
  std::optional<SeId> Insert(InsertRequest request);

  bool ContainsKey(std::string_view key) const;

  // Manual full TTL purge across all shards (the housekeeping thread calls
  // this on its own cadence).  Returns entries removed.
  std::size_t RemoveExpired();

  // Installs the ground-truth fetch used by recalibration ticks (query ->
  // ground-truth result; a real remote call in production, the workload
  // oracle here).  Must be thread-safe; it runs on the housekeeping thread
  // while the shard's exclusive lock is held.
  void SetGroundTruthFetcher(std::function<std::string(std::string_view)> fn);

  // Runs one recalibration round on every shard immediately (the
  // housekeeping thread's tick, callable by hand in tests/benches).
  // Returns the number of shards whose tau changed.
  std::size_t RecalibrateAllShards();

  double Now() const { return clock_(); }
  std::size_t num_shards() const noexcept { return shards_.size(); }
  std::size_t ShardFor(std::string_view query) const;

  ConcurrentEngineStats Stats() const;

  // Shard-by-shard locked aggregates (consistent per shard, not globally).
  CacheCounters TotalCounters() const;
  std::size_t TotalSize() const;
  double TotalUsageTokens() const;
  double tau_lsm(std::size_t shard) const;

  // Stops the housekeeping thread (idempotent; the destructor calls it).
  void StopHousekeeping();

 private:
  struct Shard {
    mutable RankedSharedMutex mu{LockRank::kEngineShard, "shard.mu"};
    std::unique_ptr<SemanticCache> cache GUARDED_BY(mu) PT_GUARDED_BY(mu);
    Recalibrator recalibrator GUARDED_BY(mu);
    Rng rng GUARDED_BY(mu);

    Shard(std::unique_ptr<SemanticCache> c, RecalibratorOptions ropts,
          std::uint64_t seed)
        : cache(std::move(c)), recalibrator(ropts), rng(seed) {}
  };

  // Waits on hk_cv_ through a std::unique_lock, which clang's analysis
  // cannot see through — excluded from analysis, lock order still
  // machine-checked by RankedMutex.
  void HousekeepingLoop() NO_THREAD_SAFETY_ANALYSIS;
  bool RecalibrateShard(Shard& shard) EXCLUDES(fetch_gt_mu_);

  const HashedEmbedder* embedder_;
  Tokenizer tokenizer_;
  ConcurrentEngineOptions options_;
  std::function<double()> clock_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<std::uint64_t> lookups_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> inserts_{0};
  std::atomic<std::uint64_t> insert_rejects_{0};
  std::atomic<std::uint64_t> expired_removed_{0};
  std::atomic<std::uint64_t> housekeeping_runs_{0};
  std::atomic<std::uint64_t> recalibrations_{0};

  RankedMutex fetch_gt_mu_{LockRank::kEngineGroundTruth,
                           "engine.fetch_gt_mu"};
  std::function<std::string(std::string_view)> fetch_gt_
      GUARDED_BY(fetch_gt_mu_);

  RankedMutex hk_mu_{LockRank::kEngineHousekeeping, "engine.hk_mu"};
  // condition_variable_any: waits through RankedMutex's lock/unlock, so
  // the held-rank stack stays correct across the wait.
  std::condition_variable_any hk_cv_;
  bool hk_stop_ GUARDED_BY(hk_mu_) = false;
  std::thread housekeeper_;
};

}  // namespace cortex::serve
