// CortexServer: the multi-threaded serving front of cortexd.
//
// Threading model:
//   * one acceptor thread accepts connections and pushes them onto a
//     bounded queue (overflow => the client gets one BUSY frame and is
//     disconnected — connection-level backpressure);
//   * a fixed pool of worker threads pops connections and serves each one
//     to completion (read frames -> execute -> write responses);
//   * per connection, decoded-but-unprocessed requests are bounded by
//     max_pipeline — requests beyond the bound are answered BUSY without
//     being executed (request-level backpressure);
//   * a server-wide token bucket (net/rate_limiter) caps the sustained
//     LOOKUP/INSERT rate — requests over quota are answered BUSY.
//
// Shutdown is graceful: Stop() closes the listener, wakes every worker,
// lets in-flight request batches finish, and joins all threads.  Drain()
// goes further for restarts during cluster rebalance: it stops accepting,
// lets every live connection answer the requests already on the wire, and
// only then stops — no response is ever truncated mid-frame.  cortexd
// calls Drain() from its SIGINT handler path.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <string>
#include <thread>
#include <vector>

#include <memory>

#include "net/rate_limiter.h"
#include "serve/batch_pipeline.h"
#include "serve/concurrent_engine.h"
#include "serve/protocol.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "util/ranked_mutex.h"
#include "util/thread_annotations.h"

namespace cortex::serve {

struct ServerOptions {
  // Listen on a Unix-domain socket when non-empty; otherwise TCP.
  std::string unix_path;
  std::string host = "127.0.0.1";
  int port = 0;  // 0 = kernel-assigned; read back via port()

  std::size_t num_workers = 4;
  // Bounded acceptor->worker connection queue.
  std::size_t max_pending_connections = 64;
  // Bounded per-connection decoded-request queue.
  std::size_t max_pipeline = 64;
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;

  // Sustained LOOKUP+INSERT admission rate (req/s); <= 0 disables the
  // bucket.  PING/STATS are never rate limited.
  double max_requests_per_sec = 0.0;
  double rate_burst = 128.0;

  // Cross-request batching pipeline (DESIGN.md §14).  > 1 stages
  // LOOKUP/TLOOKUP requests into batches of up to max_pipeline_batch,
  // flushed early once the oldest staged request has waited
  // batch_window_us; 1 disables the pipeline (today's direct path).
  // Admission (rate bucket + tenant quotas) always runs BEFORE staging.
  std::size_t max_pipeline_batch = 1;
  std::uint64_t batch_window_us = 200;
  std::size_t pipeline_threads = 2;

  // Flight recorder: how many completed request traces to retain for
  // DUMPTRACE.
  std::size_t flight_recorder_capacity = 256;
  // Registry to publish cortex_server_* instruments into; when null the
  // server shares the engine's registry (the usual arrangement — one
  // registry, one STATS dump).
  telemetry::MetricRegistry* registry = nullptr;
};

// Thin snapshot view over the registry's cortex_server_* counters (kept so
// existing callers — cortexd's final printout, tests — stay source
// compatible; the registry is the single source of truth).
struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_rejected = 0;  // queue-full BUSY disconnects
  std::uint64_t requests_served = 0;       // executed (any response)
  std::uint64_t requests_busy = 0;         // BUSY responses (rate/pipeline)
  std::uint64_t protocol_errors = 0;       // parse failures, truncation,
                                           // oversized frames
};

class CortexServer {
 public:
  // The engine is borrowed and must outlive the server.
  CortexServer(ConcurrentShardedEngine* engine, ServerOptions options = {});
  ~CortexServer();

  CortexServer(const CortexServer&) = delete;
  CortexServer& operator=(const CortexServer&) = delete;

  // Binds, listens, and spawns the acceptor + workers.  Returns false and
  // fills `error` on failure.
  bool Start(std::string* error = nullptr);
  void Stop();

  // Graceful shutdown: stop accepting, let every live connection finish
  // answering the requests already received (each worker flushes its
  // responses and closes once its connection goes idle), then Stop().
  // Waits up to `timeout_sec` for active connections to wind down before
  // forcing the stop.  Idempotent; safe from any thread.
  void Drain(double timeout_sec = 5.0);

  bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }
  bool draining() const noexcept {
    return draining_.load(std::memory_order_acquire);
  }
  // Resolved TCP port (0 when serving a Unix socket or not started).
  int port() const noexcept { return port_; }
  const ServerOptions& options() const noexcept { return options_; }
  ServerStats stats() const;

  // The registry this server publishes into (options().registry or the
  // engine's).  Valid for the server's lifetime.
  telemetry::MetricRegistry* registry() const noexcept { return registry_; }
  const telemetry::FlightRecorder& flight_recorder() const noexcept {
    return recorder_;
  }

 private:
  void AcceptLoop() EXCLUDES(queue_mu_);
  // Waits on queue_cv_ through a std::unique_lock, which clang's analysis
  // cannot see through — excluded from analysis, lock order still
  // machine-checked by RankedMutex.
  void WorkerLoop() NO_THREAD_SAFETY_ANALYSIS;
  void ServeConnection(int fd);
  // Executes one parsed request against the engine; `trace` collects the
  // request's spans.
  Response Execute(const Request& request, telemetry::RequestTrace* trace);
  Response BuildStats();
  Response BuildTraces(std::uint64_t max_traces);
  // Token-bucket gate over LOOKUP/INSERT (the rate-limiter critical
  // section; PING/STATS bypass it).
  bool AdmitRequest(const Request& request) EXCLUDES(bucket_mu_);

  ConcurrentShardedEngine* const engine_;
  const ServerOptions options_;
  // Non-null iff max_pipeline_batch > 1.  Constructed before the worker
  // threads and destroyed after they join; workers only call its
  // thread-safe Lookup().
  std::unique_ptr<BatchPipeline> pipeline_;  // cortex-analyzer: allow(guarded-by)

  // Listener state is written only during Start()/Stop(), strictly
  // before the worker threads exist / after they have joined, so no lock
  // guards it (cortex_analyzer verifies the rest of this class).
  int listen_fd_ = -1;         // cortex-analyzer: allow(guarded-by)
  int port_ = 0;               // cortex-analyzer: allow(guarded-by)
  std::string bound_unix_path_;  // cortex-analyzer: allow(guarded-by)

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> draining_{false};
  // Drain-coordination state, not a stat (Drain() spins on it reaching
  // zero) — the registry is for observability, not control flow.
  std::atomic<std::int64_t> active_connections_{0};  // cortex-lint: allow(atomic-counter)

  // Lock order (ranks checked in debug builds, table in DESIGN.md §7):
  // queue_mu_ (10) < bucket_mu_ (20) < the engine's locks (30-50).
  RankedMutex queue_mu_{LockRank::kServerQueue, "server.queue_mu"};
  // condition_variable_any: waits through RankedMutex's lock/unlock, so
  // the held-rank stack stays correct across the wait.
  std::condition_variable_any queue_cv_;
  std::deque<int> conn_queue_ GUARDED_BY(queue_mu_);

  RankedMutex bucket_mu_{LockRank::kServerBucket, "server.bucket_mu"};
  TokenBucket bucket_ GUARDED_BY(bucket_mu_);

  std::thread acceptor_;
  std::vector<std::thread> workers_;

  // Registry handles (cortex_server_*), resolved once in the constructor;
  // hot-path updates are pure atomics.
  telemetry::MetricRegistry* registry_ = nullptr;
  telemetry::Counter* connections_accepted_ = nullptr;
  telemetry::Counter* connections_rejected_ = nullptr;
  telemetry::Counter* requests_served_ = nullptr;
  telemetry::Counter* requests_busy_ = nullptr;
  telemetry::Counter* protocol_errors_ = nullptr;
  telemetry::Counter* hellos_ = nullptr;
  telemetry::Counter* hello_rejects_ = nullptr;
  telemetry::Counter* snapshots_streamed_ = nullptr;
  telemetry::Counter* snapshot_bytes_ = nullptr;
  telemetry::Counter* restores_applied_ = nullptr;
  telemetry::Counter* restore_entries_ = nullptr;
  telemetry::Gauge* queue_depth_ = nullptr;
  telemetry::AtomicHistogram* request_seconds_ = nullptr;

  telemetry::FlightRecorder recorder_;
};

}  // namespace cortex::serve
