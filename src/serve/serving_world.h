// ServingWorld: the workload + model stack a serving process needs.
//
// cortexd and cortex_loadgen are separate processes, but the simulated
// models (oracle-backed judger, hashed embedder) live in-process.  Both
// sides therefore rebuild the *same* world from the same flags — workload
// generation is fully deterministic given (name, tasks, seed), and traces
// loaded from disk are byte-identical — so the server judges with the same
// oracle the load generator fetches ground truth from, exactly like the
// sim stack wires it.
#pragma once

#include <memory>
#include <string>

#include "embedding/hashed_embedder.h"
#include "llm/judger_model.h"
#include "util/flags.h"
#include "workload/workloads.h"

namespace cortex::serve {

struct ServingWorld {
  WorkloadBundle bundle;
  HashedEmbedder embedder;  // IDF-fitted on the bundle's query corpus
  std::unique_ptr<JudgerModel> judger;
};

// Understood flags:
//   --trace=PATH          load a frozen workload trace (workload/trace_io)
//   --workload=NAME       musique (default) | zilliz | hotpotqa | 2wiki |
//                         strategyqa | swebench
//   --tasks=N             task count for generated workloads (default 1000)
//   --seed=S              generator seed override
// Returns nullptr and fills `error` on unknown names or unreadable traces.
std::unique_ptr<ServingWorld> BuildServingWorld(const Flags& flags,
                                                std::string* error);

}  // namespace cortex::serve
