#include "serve/batch_pipeline.h"

#include <algorithm>
#include <chrono>
#include <mutex>

#include "util/check.h"

namespace cortex::serve {

BatchPipeline::BatchPipeline(ConcurrentShardedEngine* engine,
                             BatchPipelineOptions options)
    : engine_(engine),
      options_(options),
      enabled_(options_.max_batch > 1 && options_.num_threads > 0),
      gpu_(options_.gpu) {
  CHECK(engine != nullptr) << "pipeline requires an engine";
  registry_ = options_.registry != nullptr ? options_.registry
                                           : engine_->registry();
  requests_ = registry_->GetCounter("cortex_pipeline_requests");
  batches_ = registry_->GetCounter("cortex_pipeline_batches");
  full_flushes_ = registry_->GetCounter("cortex_pipeline_full_flushes");
  window_flushes_ = registry_->GetCounter("cortex_pipeline_window_flushes");
  batch_size_ = registry_->GetHistogram("cortex_pipeline_batch_size");
  stage_wait_seconds_ =
      registry_->GetHistogram("cortex_pipeline_stage_wait_seconds");
  gpu_queue_delay_seconds_ =
      registry_->GetHistogram("cortex_pipeline_gpu_queue_delay_seconds");
  gpu_batch_occupancy_ =
      registry_->GetHistogram("cortex_pipeline_gpu_batch_occupancy");

  if (!enabled_) return;
  threads_.reserve(options_.num_threads);
  for (std::size_t i = 0; i < options_.num_threads; ++i) {
    threads_.emplace_back([this] { PipelineLoop(); });
  }
}

BatchPipeline::~BatchPipeline() { Drain(); }

std::optional<CacheHit> BatchPipeline::Lookup(std::string_view query,
                                              telemetry::RequestTrace* trace,
                                              std::string_view tenant) {
  if (enabled_) {
    Pending item(query, tenant, trace, telemetry::WallSeconds());
    bool staged = false;
    {
      MutexLock lock(stage_mu_);
      if (!drained_ && !stop_) {
        staged_.push_back(&item);
        staged = true;
      }
    }
    if (staged) {
      stage_cv_.notify_all();
      std::unique_lock<RankedMutex> lk(item.mu);
      item.cv.wait(lk, [&item] { return item.done; });
      return std::move(item.hit);
    }
  }
  // Disabled or drained: the degenerate path IS the sequential engine
  // call, so batch size 1 and "pipeline off" are the same code.
  return engine_->Lookup(query, trace, tenant);
}

void BatchPipeline::PipelineLoop() {
  const double window_sec =
      static_cast<double>(options_.batch_window_us) * 1e-6;
  std::unique_lock<RankedMutex> lk(stage_mu_);
  while (true) {
    stage_cv_.wait(lk, [this] { return stop_ || !staged_.empty(); });
    if (staged_.empty()) {
      if (stop_) return;
      continue;
    }
    // Work-conserving fill-or-deadline: with the pipeline idle (no batch
    // in flight) flush whatever is staged immediately — batching must
    // never add latency the engine wasn't already busy for.  While other
    // batches are processing, hold out for more arrivals, up to max_batch
    // or the oldest request's window deadline: the wait costs nothing
    // (the engine is saturated) and deepens this batch.
    const double deadline = staged_.front()->staged_at + window_sec;
    while (!stop_ && !drained_ && in_flight_batches_ > 0 &&
           staged_.size() < options_.max_batch) {
      const double remaining = deadline - telemetry::WallSeconds();
      if (remaining <= 0.0) break;
      stage_cv_.wait_for(lk, std::chrono::duration<double>(remaining));
    }
    if (staged_.empty()) continue;  // another thread flushed it
    const bool full_flush = staged_.size() >= options_.max_batch;
    const std::size_t take = std::min(staged_.size(), options_.max_batch);
    std::vector<Pending*> batch(staged_.begin(),
                                staged_.begin() +
                                    static_cast<std::ptrdiff_t>(take));
    staged_.erase(staged_.begin(),
                  staged_.begin() + static_cast<std::ptrdiff_t>(take));
    ++in_flight_batches_;
    lk.unlock();
    ProcessBatch(batch, full_flush);
    lk.lock();
    --in_flight_batches_;
    // Wake window-waiting flushers (the pipeline just went idle) and
    // Drain(), which waits for staged-empty AND in-flight-zero.
    if (in_flight_batches_ == 0) stage_cv_.notify_all();
  }
}

void BatchPipeline::ProcessBatch(std::vector<Pending*>& batch,
                                 bool full_flush) {
  const double start = telemetry::WallSeconds();
  std::vector<BatchLookupRequest> requests(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    requests[i].query = batch[i]->query;
    requests[i].tenant = batch[i]->tenant;
    requests[i].trace = batch[i]->trace;
    // The staging delay is the batch's queue-wait; record it per request
    // before the engine adds its own probe spans.
    const double wait = start - batch[i]->staged_at;
    stage_wait_seconds_->Observe(wait);
    if (batch[i]->trace != nullptr) {
      batch[i]->trace->AddSpan(telemetry::TracePhase::kQueueWait,
                               batch[i]->staged_at, wait);
    }
  }

  engine_->LookupBatch(requests);

  // Stage 3: one admission to the judger inference partition for the whole
  // batch's verdicts (this is the ONLY allowed BatchingServer dispatch
  // site in the serving tier — cortex_lint `gpu-choke-point`).
  std::size_t judger_calls = 0;
  double judger_seconds = 0.0;
  for (const BatchLookupRequest& r : requests) {
    judger_calls += r.judger_calls;
    judger_seconds += r.judger_seconds;
  }
  if (judger_calls > 0) {
    MutexLock lock(gpu_mu_);
    // Dispatch requires non-decreasing arrival times across batches.
    const double now = std::max(telemetry::WallSeconds(), last_gpu_now_);
    last_gpu_now_ = now;
    const DispatchResult d = gpu_.Dispatch(now, judger_seconds);
    gpu_queue_delay_seconds_->Observe(d.queue_delay);
    gpu_batch_occupancy_->Observe(static_cast<double>(d.batch_occupancy));
  }

  requests_->Inc(batch.size());
  batches_->Inc();
  (full_flush ? full_flushes_ : window_flushes_)->Inc();
  batch_size_->Observe(static_cast<double>(batch.size()));

  for (std::size_t i = 0; i < batch.size(); ++i) {
    Pending* item = batch[i];
    // Notify while holding the latch: the waiter owns the Pending frame
    // and may destroy it the instant it observes done == true, which it
    // cannot do until this unlock.
    MutexLock lock(item->mu);
    item->hit = std::move(requests[i].hit);
    item->done = true;
    item->cv.notify_one();
  }
}

void BatchPipeline::Drain() {
  if (!enabled_) return;
  {
    std::unique_lock<RankedMutex> lk(stage_mu_);
    if (!drained_) {
      drained_ = true;  // new Lookups fall through to the engine
      stage_cv_.notify_all();
      // Every already-staged request must complete.
      stage_cv_.wait(lk, [this] {
        return staged_.empty() && in_flight_batches_ == 0;
      });
    }
    if (stop_) return;  // another Drain already joined the threads
    stop_ = true;
  }
  stage_cv_.notify_all();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

}  // namespace cortex::serve
