#include "serve/protocol.h"

#include <charconv>
#include <cstdio>

#include "tenant/tenant.h"

namespace cortex::serve {

namespace {

void SetError(std::string* error, std::string_view message) {
  if (error) *error = std::string(message);
}

// Splits off the field before the next TAB; returns nullopt when there is
// no separator left.
std::optional<std::string_view> TakeField(std::string_view& rest) {
  const std::size_t tab = rest.find('\t');
  if (tab == std::string_view::npos) return std::nullopt;
  std::string_view field = rest.substr(0, tab);
  rest.remove_prefix(tab + 1);
  return field;
}

bool ParseDouble(std::string_view s, double* out) {
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

bool ParseU64(std::string_view s, std::uint64_t* out) {
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

std::string FormatDouble(double v) {
  char buf[32];
  const int n = std::snprintf(buf, sizeof buf, "%.6g", v);
  return std::string(buf, static_cast<std::size_t>(n));
}

}  // namespace

void AppendFrame(std::string_view payload, std::string& out) {
  const auto len = static_cast<std::uint32_t>(payload.size());
  out.push_back(static_cast<char>((len >> 24) & 0xff));
  out.push_back(static_cast<char>((len >> 16) & 0xff));
  out.push_back(static_cast<char>((len >> 8) & 0xff));
  out.push_back(static_cast<char>(len & 0xff));
  out.append(payload);
}

FrameDecoder::FrameDecoder(std::size_t max_frame_bytes)
    : max_frame_bytes_(max_frame_bytes) {}

void FrameDecoder::Feed(std::string_view bytes) {
  if (poisoned_) return;
  buffer_.append(bytes);
}

FrameDecoder::Status FrameDecoder::Next(std::string* payload) {
  if (poisoned_) return Status::kOversized;
  const std::size_t available = buffer_.size() - pos_;
  if (available < kFrameHeaderBytes) return Status::kNeedMore;
  const auto* p = reinterpret_cast<const unsigned char*>(buffer_.data() + pos_);
  const std::uint32_t len = (std::uint32_t{p[0]} << 24) |
                            (std::uint32_t{p[1]} << 16) |
                            (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
  if (len > max_frame_bytes_) {
    poisoned_ = true;
    return Status::kOversized;
  }
  if (available - kFrameHeaderBytes < len) return Status::kNeedMore;
  payload->assign(buffer_, pos_ + kFrameHeaderBytes, len);
  pos_ += kFrameHeaderBytes + len;
  // Compact once the consumed prefix dominates, so long-lived connections
  // do not grow the buffer without bound.
  if (pos_ > 4096 && pos_ * 2 > buffer_.size()) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
  return Status::kFrame;
}

bool FrameDecoder::MidFrame() const noexcept {
  return !poisoned_ && buffered_bytes() > 0;
}

// ---------------------------------------------------------------------------

std::string EncodePayload(const Request& request) {
  switch (request.type) {
    case RequestType::kLookup:
      return "LOOKUP\t" + request.query;
    case RequestType::kInsert:
      return "INSERT\t" + FormatDouble(request.staticity) + "\t" +
             request.key + "\t" + request.value;
    case RequestType::kStats:
      return "STATS";
    case RequestType::kDumpTrace:
      return "DUMPTRACE\t" + std::to_string(request.max_traces);
    case RequestType::kPing:
      return "PING";
    case RequestType::kHello:
      return "HELLO\t" + std::to_string(request.version) + "\t" +
             request.role;
    case RequestType::kSnapshot:
      return "SNAPSHOT";
    case RequestType::kRestore:
      return "RESTORE\t" + request.blob;
    case RequestType::kMigrate:
      return "MIGRATE\t" + request.node_name + "\t" + request.endpoint;
    case RequestType::kCluster:
      return "CLUSTER";
    case RequestType::kTenantLookup:
      return "TLOOKUP\t" + request.tenant + "\t" + request.query;
    case RequestType::kTenantInsert:
      return "TINSERT\t" + request.tenant + "\t" +
             (request.shareable ? "1" : "0") + "\t" +
             FormatDouble(request.staticity) + "\t" + request.key + "\t" +
             request.value;
  }
  return {};
}

std::optional<Request> ParseRequest(std::string_view payload,
                                    std::string* error) {
  if (payload.empty()) {
    SetError(error, "empty request");
    return std::nullopt;
  }
  Request request;
  std::string_view rest = payload;
  const std::size_t tab = rest.find('\t');
  const std::string_view verb = rest.substr(0, tab);
  rest = tab == std::string_view::npos ? std::string_view{}
                                       : rest.substr(tab + 1);

  if (verb == "PING") {
    request.type = RequestType::kPing;
    return request;
  }
  if (verb == "STATS") {
    request.type = RequestType::kStats;
    return request;
  }
  if (verb == "DUMPTRACE") {
    request.type = RequestType::kDumpTrace;
    // Bare DUMPTRACE keeps the default budget.
    if (tab != std::string_view::npos &&
        !ParseU64(rest, &request.max_traces)) {
      SetError(error, "DUMPTRACE needs a numeric max_traces");
      return std::nullopt;
    }
    return request;
  }
  if (verb == "LOOKUP") {
    if (tab == std::string_view::npos || rest.empty()) {
      SetError(error, "LOOKUP needs a query");
      return std::nullopt;
    }
    request.type = RequestType::kLookup;
    request.query = std::string(rest);
    return request;
  }
  if (verb == "HELLO") {
    const auto version = TakeField(rest);
    std::uint64_t parsed_version = 0;
    if (!version || !ParseU64(*version, &parsed_version) ||
        parsed_version > 0xffffffffULL) {
      SetError(error, "HELLO needs a numeric version");
      return std::nullopt;
    }
    if (rest.empty()) {
      SetError(error, "HELLO needs a role");
      return std::nullopt;
    }
    request.type = RequestType::kHello;
    request.version = static_cast<std::uint32_t>(parsed_version);
    request.role = std::string(rest);
    return request;
  }
  if (verb == "SNAPSHOT") {
    request.type = RequestType::kSnapshot;
    return request;
  }
  if (verb == "RESTORE") {
    if (tab == std::string_view::npos) {
      SetError(error, "RESTORE needs a snapshot blob");
      return std::nullopt;
    }
    request.type = RequestType::kRestore;
    request.blob = std::string(rest);
    return request;
  }
  if (verb == "MIGRATE") {
    const auto name = TakeField(rest);
    if (!name || name->empty()) {
      SetError(error, "MIGRATE needs a node name");
      return std::nullopt;
    }
    if (rest.empty()) {
      SetError(error, "MIGRATE needs an endpoint");
      return std::nullopt;
    }
    request.type = RequestType::kMigrate;
    request.node_name = std::string(*name);
    request.endpoint = std::string(rest);
    return request;
  }
  if (verb == "CLUSTER") {
    request.type = RequestType::kCluster;
    return request;
  }
  if (verb == "INSERT") {
    const auto staticity = TakeField(rest);
    if (!staticity || !ParseDouble(*staticity, &request.staticity)) {
      SetError(error, "INSERT needs a numeric staticity");
      return std::nullopt;
    }
    const auto key = TakeField(rest);
    if (!key || key->empty()) {
      SetError(error, "INSERT needs a key");
      return std::nullopt;
    }
    if (rest.empty()) {
      SetError(error, "INSERT needs a value");
      return std::nullopt;
    }
    request.type = RequestType::kInsert;
    request.key = std::string(*key);
    request.value = std::string(rest);
    return request;
  }
  if (verb == "TLOOKUP") {
    const auto tenant = TakeField(rest);
    if (!tenant || !tenant::ValidTenantId(*tenant)) {
      SetError(error, "TLOOKUP needs a valid tenant id");
      return std::nullopt;
    }
    if (rest.empty()) {
      SetError(error, "TLOOKUP needs a query");
      return std::nullopt;
    }
    request.type = RequestType::kTenantLookup;
    request.tenant = std::string(*tenant);
    request.query = std::string(rest);
    return request;
  }
  if (verb == "TINSERT") {
    const auto tenant = TakeField(rest);
    if (!tenant || !tenant::ValidTenantId(*tenant)) {
      SetError(error, "TINSERT needs a valid tenant id");
      return std::nullopt;
    }
    const auto shareable = TakeField(rest);
    if (!shareable || (*shareable != "0" && *shareable != "1")) {
      SetError(error, "TINSERT needs shareable 0|1");
      return std::nullopt;
    }
    const auto staticity = TakeField(rest);
    if (!staticity || !ParseDouble(*staticity, &request.staticity)) {
      SetError(error, "TINSERT needs a numeric staticity");
      return std::nullopt;
    }
    const auto key = TakeField(rest);
    if (!key || key->empty()) {
      SetError(error, "TINSERT needs a key");
      return std::nullopt;
    }
    if (rest.empty()) {
      SetError(error, "TINSERT needs a value");
      return std::nullopt;
    }
    request.type = RequestType::kTenantInsert;
    request.tenant = std::string(*tenant);
    request.shareable = *shareable == "1";
    request.key = std::string(*key);
    request.value = std::string(rest);
    return request;
  }
  SetError(error, "unknown verb");
  return std::nullopt;
}

std::string EncodePayload(const Response& response) {
  switch (response.type) {
    case ResponseType::kHit:
      return "HIT\t" + FormatDouble(response.similarity) + "\t" +
             FormatDouble(response.judger_score) + "\t" +
             response.matched_key + "\t" + response.value;
    case ResponseType::kMiss:
      return "MISS";
    case ResponseType::kOk:
      return "OK\t" + std::to_string(response.id);
    case ResponseType::kReject:
      return "REJECT";
    case ResponseType::kPong:
      return "PONG";
    case ResponseType::kStats: {
      std::string out = "STATS";
      for (const auto& [k, v] : response.stats) {
        out += "\t" + k + "=" + v;
      }
      return out;
    }
    case ResponseType::kTraces:
      return "TRACES\t" + std::to_string(response.id) + "\t" +
             response.message;
    case ResponseType::kWelcome:
      return "WELCOME\t" + std::to_string(response.id) + "\t" +
             response.message;
    case ResponseType::kSnapshotData:
      return "SNAPSHOT\t" + std::to_string(response.id) + "\t" +
             response.message;
    case ResponseType::kBusy:
      return "BUSY";
    case ResponseType::kError:
      return "ERR\t" + response.message;
  }
  return {};
}

std::optional<Response> ParseResponse(std::string_view payload,
                                      std::string* error) {
  if (payload.empty()) {
    SetError(error, "empty response");
    return std::nullopt;
  }
  Response response;
  std::string_view rest = payload;
  const std::size_t tab = rest.find('\t');
  const std::string_view verb = rest.substr(0, tab);
  rest = tab == std::string_view::npos ? std::string_view{}
                                       : rest.substr(tab + 1);

  if (verb == "MISS") {
    response.type = ResponseType::kMiss;
    return response;
  }
  if (verb == "PONG") {
    response.type = ResponseType::kPong;
    return response;
  }
  if (verb == "BUSY") {
    response.type = ResponseType::kBusy;
    return response;
  }
  if (verb == "REJECT") {
    response.type = ResponseType::kReject;
    return response;
  }
  if (verb == "OK") {
    if (!ParseU64(rest, &response.id)) {
      SetError(error, "OK needs a numeric id");
      return std::nullopt;
    }
    response.type = ResponseType::kOk;
    return response;
  }
  if (verb == "HIT") {
    const auto similarity = TakeField(rest);
    const auto score = similarity ? TakeField(rest) : std::nullopt;
    const auto key = score ? TakeField(rest) : std::nullopt;
    if (!similarity || !ParseDouble(*similarity, &response.similarity) ||
        !score || !ParseDouble(*score, &response.judger_score) || !key) {
      SetError(error, "malformed HIT");
      return std::nullopt;
    }
    response.type = ResponseType::kHit;
    response.matched_key = std::string(*key);
    response.value = std::string(rest);
    return response;
  }
  if (verb == "STATS") {
    response.type = ResponseType::kStats;
    while (!rest.empty()) {
      auto field = TakeField(rest);
      std::string_view pair = field ? *field : rest;
      if (!field) rest = {};
      const std::size_t eq = pair.find('=');
      if (eq == std::string_view::npos) {
        SetError(error, "malformed STATS pair");
        return std::nullopt;
      }
      response.stats.emplace_back(std::string(pair.substr(0, eq)),
                                  std::string(pair.substr(eq + 1)));
    }
    return response;
  }
  if (verb == "TRACES" || verb == "SNAPSHOT") {
    // Tolerate a count-only frame ("TRACES\t0"): the text field is simply
    // empty.
    const std::size_t count_tab = rest.find('\t');
    const std::string_view count = rest.substr(0, count_tab);
    if (!ParseU64(count, &response.id)) {
      SetError(error, std::string("malformed ") + std::string(verb));
      return std::nullopt;
    }
    response.type = verb == "TRACES" ? ResponseType::kTraces
                                     : ResponseType::kSnapshotData;
    if (count_tab != std::string_view::npos) {
      response.message = std::string(rest.substr(count_tab + 1));
    }
    return response;
  }
  if (verb == "WELCOME") {
    const auto version = TakeField(rest);
    if (!version || !ParseU64(*version, &response.id)) {
      SetError(error, "malformed WELCOME");
      return std::nullopt;
    }
    response.type = ResponseType::kWelcome;
    response.message = std::string(rest);
    return response;
  }
  if (verb == "ERR") {
    response.type = ResponseType::kError;
    response.message = std::string(rest);
    return response;
  }
  SetError(error, "unknown verb");
  return std::nullopt;
}

}  // namespace cortex::serve
