// HnswIndex: Hierarchical Navigable Small World graph ANN
// (Malkov & Yashunin, 2018) — the graph-based index family the paper cites
// alongside FAISS/DiskANN.
//
// Deletion support: HNSW graphs do not support cheap structural deletes, so
// Remove() tombstones the node (it keeps routing but is filtered from
// results); when tombstones exceed half the graph the index compacts by
// rebuilding from live nodes.  This mirrors how production systems (e.g.
// hnswlib + periodic rebuilds) run HNSW under churn, which a cache induces
// constantly via eviction.
//
// Storage: node vectors live in an aligned VectorSlab instead of one heap
// std::vector<float> per node, and neighbour expansion scores a whole
// adjacency list per batched-kernel call (gather + software prefetch)
// rather than chasing one allocation per candidate.  Tombstoned nodes keep
// their slab row (they still route); rows are reclaimed at compaction.
#pragma once

#include <atomic>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ann/vector_index.h"
#include "embedding/vector_slab.h"
#include "util/rng.h"

namespace cortex {

struct HnswOptions {
  std::size_t M = 12;                // max links per node on upper layers
  std::size_t ef_construction = 64;  // beam width during insertion
  std::size_t ef_search = 32;        // beam width during queries
  // Diversity-aware neighbour pruning (Malkov & Yashunin, Alg. 4): keep a
  // candidate only if it is closer to the new node than to any neighbour
  // already kept.  Prevents clustered corpora from producing graphs whose
  // links all point into one clump.
  bool heuristic_selection = true;
  double tombstone_rebuild_ratio = 0.5;
  std::uint64_t seed = 7;
};

class HnswIndex final : public VectorIndex {
 public:
  HnswIndex(std::size_t dimension, HnswOptions options = {});

  void Add(VectorId id, std::span<const float> vector) override;
  bool Remove(VectorId id) override;
  std::vector<SearchResult> Search(std::span<const float> query,
                                   std::size_t k,
                                   double min_similarity) const override;
  bool Contains(VectorId id) const override;
  std::optional<Vector> Get(VectorId id) const override;
  std::size_t size() const override { return live_count_; }
  std::size_t dimension() const override { return dimension_; }
  std::uint64_t distance_computations() const override {
    return distcomp_.load(std::memory_order_relaxed);
  }

  std::size_t graph_size() const noexcept { return nodes_.size(); }
  std::size_t tombstone_count() const noexcept {
    return nodes_.size() - live_count_;
  }
  int max_level() const noexcept { return max_level_; }

 private:
  struct Node {
    VectorId id = 0;
    std::uint32_t row = 0;  // slot in vectors_
    bool deleted = false;
    // links[l] = neighbour slots at layer l; size() == level + 1.
    std::vector<std::vector<std::uint32_t>> links;
  };

  using Slot = std::uint32_t;
  static constexpr Slot kInvalidSlot = ~Slot{0};

  std::span<const float> SlotVector(Slot s) const noexcept {
    return vectors_.RowSpan(nodes_[s].row);
  }
  // Similarity of `a` to node `b`; counts into `comps` (flushed to the
  // atomic distcomp_ once per public operation, not per candidate).
  double Sim(std::span<const float> a, Slot b,
             std::uint64_t& comps) const noexcept;
  // Batched: sims[i] = dot(query, slots[i]) in one gather-kernel call.
  void SimBatch(std::span<const float> query, const Slot* slots,
                std::size_t n, float* sims, std::uint64_t& comps) const;
  int RandomLevel();
  // Beam search at a single layer; returns up to `ef` (slot, sim) pairs,
  // best-first.  Visits tombstoned nodes (for routing) but they are included
  // in results and must be filtered by callers that need live nodes only.
  std::vector<std::pair<Slot, double>> SearchLayer(
      std::span<const float> query, Slot entry, std::size_t ef, int layer,
      std::uint64_t& comps) const;
  // Greedy descent from the top layer to `target_layer + 1`.
  Slot GreedyDescend(std::span<const float> query, Slot entry, int from_level,
                     int target_layer, std::uint64_t& comps) const;
  // Prunes `candidates` (best-first by similarity to `target`) down to at
  // most max_links, using heuristic diversity selection when enabled.
  void SelectNeighbors(std::span<const float> target,
                       std::vector<std::pair<Slot, double>>& candidates,
                       std::size_t max_links, std::uint64_t& comps) const;
  void PruneLinks(Slot slot, int layer, std::uint64_t& comps);
  void RebuildIfNeeded();
  void InsertNode(Slot slot, std::uint64_t& comps);

  std::size_t dimension_;
  HnswOptions options_;
  Rng rng_;
  double level_lambda_;  // 1 / ln(M)

  VectorSlab vectors_;
  std::vector<Node> nodes_;
  std::unordered_map<VectorId, Slot> id_to_slot_;
  std::size_t live_count_ = 0;
  Slot entry_point_ = kInvalidSlot;
  int max_level_ = -1;
  // Atomic so concurrent const Search() calls (shared-lock readers in the
  // serving tier) stay race-free.
  mutable std::atomic<std::uint64_t> distcomp_{0};
};

}  // namespace cortex
