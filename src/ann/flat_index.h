// FlatIndex: exact brute-force search.  O(n·d) per query; the recall
// reference point for IVF/HNSW and the default for cache-sized corpora.
#pragma once

#include <atomic>
#include <unordered_map>
#include <vector>

#include "ann/vector_index.h"

namespace cortex {

class FlatIndex final : public VectorIndex {
 public:
  explicit FlatIndex(std::size_t dimension);

  void Add(VectorId id, std::span<const float> vector) override;
  bool Remove(VectorId id) override;
  std::vector<SearchResult> Search(std::span<const float> query,
                                   std::size_t k,
                                   double min_similarity) const override;
  std::vector<std::vector<SearchResult>> SearchBatch(
      const float* queries, std::size_t nq, std::size_t qstride,
      std::size_t k, double min_similarity) const override;
  bool Contains(VectorId id) const override;
  std::optional<Vector> Get(VectorId id) const override;
  std::size_t size() const override { return id_to_slot_.size(); }
  std::size_t dimension() const override { return dimension_; }
  std::uint64_t distance_computations() const override {
    return distcomp_.load(std::memory_order_relaxed);
  }

 private:
  // Shared tail of Search/SearchBatch: candidate selection, two-phase
  // exact rerank, filter/sort/truncate from one query's scan scores.
  std::vector<SearchResult> RankFromSims(std::span<const float> query,
                                         const float* sims, std::size_t k,
                                         double min_similarity) const;

  std::size_t dimension_;
  // Contiguous storage with swap-erase removal for cache-friendly scans.
  std::vector<float> data_;            // size() * dimension_
  std::vector<VectorId> slot_to_id_;   // slot -> id
  std::unordered_map<VectorId, std::size_t> id_to_slot_;
  // Atomic: Search() runs concurrently under the serving tier's shared
  // (read) locks, and a stats counter must not be the reason it can't.
  mutable std::atomic<std::uint64_t> distcomp_{0};
};

}  // namespace cortex
