#include "ann/flat_index.h"

#include <algorithm>

#include "util/check.h"

namespace cortex {

FlatIndex::FlatIndex(std::size_t dimension) : dimension_(dimension) {
  CHECK_GT(dimension, 0u);
}

void FlatIndex::Add(VectorId id, std::span<const float> vector) {
  CHECK_EQ(vector.size(), dimension_);
  const auto it = id_to_slot_.find(id);
  if (it != id_to_slot_.end()) {
    std::copy(vector.begin(), vector.end(),
              data_.begin() + static_cast<std::ptrdiff_t>(it->second *
                                                          dimension_));
    return;
  }
  const std::size_t slot = slot_to_id_.size();
  data_.insert(data_.end(), vector.begin(), vector.end());
  slot_to_id_.push_back(id);
  id_to_slot_.emplace(id, slot);
}

bool FlatIndex::Remove(VectorId id) {
  const auto it = id_to_slot_.find(id);
  if (it == id_to_slot_.end()) return false;
  const std::size_t slot = it->second;
  const std::size_t last = slot_to_id_.size() - 1;
  if (slot != last) {
    std::copy_n(data_.begin() + static_cast<std::ptrdiff_t>(last * dimension_),
                dimension_,
                data_.begin() + static_cast<std::ptrdiff_t>(slot * dimension_));
    slot_to_id_[slot] = slot_to_id_[last];
    id_to_slot_[slot_to_id_[slot]] = slot;
  }
  data_.resize(last * dimension_);
  slot_to_id_.pop_back();
  id_to_slot_.erase(it);
  return true;
}

std::vector<SearchResult> FlatIndex::Search(std::span<const float> query,
                                            std::size_t k,
                                            double min_similarity) const {
  CHECK_EQ(query.size(), dimension_);
  if (k == 0 || slot_to_id_.empty()) return {};
  std::vector<SearchResult> results;
  results.reserve(slot_to_id_.size());
  for (std::size_t slot = 0; slot < slot_to_id_.size(); ++slot) {
    const std::span<const float> v(data_.data() + slot * dimension_,
                                   dimension_);
    distcomp_.fetch_add(1, std::memory_order_relaxed);
    const double sim = CosineSimilarity(query, v);
    if (sim >= min_similarity) {
      results.push_back({slot_to_id_[slot], sim});
    }
  }
  const std::size_t top = std::min(k, results.size());
  std::partial_sort(results.begin(),
                    results.begin() + static_cast<std::ptrdiff_t>(top),
                    results.end(), [](const auto& a, const auto& b) {
                      return a.similarity > b.similarity;
                    });
  results.resize(top);
  return results;
}

bool FlatIndex::Contains(VectorId id) const {
  return id_to_slot_.contains(id);
}

std::optional<Vector> FlatIndex::Get(VectorId id) const {
  const auto it = id_to_slot_.find(id);
  if (it == id_to_slot_.end()) return std::nullopt;
  const auto begin =
      data_.begin() + static_cast<std::ptrdiff_t>(it->second * dimension_);
  return Vector(begin, begin + static_cast<std::ptrdiff_t>(dimension_));
}

}  // namespace cortex
