#include "ann/flat_index.h"

#include <algorithm>

#include "embedding/simd_kernels.h"
#include "util/check.h"

namespace cortex {

FlatIndex::FlatIndex(std::size_t dimension) : dimension_(dimension) {
  CHECK_GT(dimension, 0u);
}

void FlatIndex::Add(VectorId id, std::span<const float> vector) {
  CHECK_EQ(vector.size(), dimension_);
  DCHECK(NearlyUnitNorm(vector))
      << "FlatIndex scores by inner product; vectors must be unit-norm";
  const auto it = id_to_slot_.find(id);
  if (it != id_to_slot_.end()) {
    std::copy(vector.begin(), vector.end(),
              data_.begin() + static_cast<std::ptrdiff_t>(it->second *
                                                          dimension_));
    return;
  }
  const std::size_t slot = slot_to_id_.size();
  data_.insert(data_.end(), vector.begin(), vector.end());
  slot_to_id_.push_back(id);
  id_to_slot_.emplace(id, slot);
}

bool FlatIndex::Remove(VectorId id) {
  const auto it = id_to_slot_.find(id);
  if (it == id_to_slot_.end()) return false;
  const std::size_t slot = it->second;
  const std::size_t last = slot_to_id_.size() - 1;
  if (slot != last) {
    std::copy_n(data_.begin() + static_cast<std::ptrdiff_t>(last * dimension_),
                dimension_,
                data_.begin() + static_cast<std::ptrdiff_t>(slot * dimension_));
    slot_to_id_[slot] = slot_to_id_[last];
    id_to_slot_[slot_to_id_[slot]] = slot;
  }
  data_.resize(last * dimension_);
  slot_to_id_.pop_back();
  id_to_slot_.erase(it);
  return true;
}

std::vector<SearchResult> FlatIndex::Search(std::span<const float> query,
                                            std::size_t k,
                                            double min_similarity) const {
  CHECK_EQ(query.size(), dimension_);
  if (k == 0 || slot_to_id_.empty()) return {};
  const std::size_t n = slot_to_id_.size();
  // One batched kernel call scans the whole row-major block.  Vectors are
  // unit-norm (DCHECKed on Add), so the inner product IS the cosine — no
  // per-candidate norm recomputation.
  std::vector<float> sims(n);
  simd::DotBatch(query, data_.data(), n, dimension_, sims.data());
  auto results = RankFromSims(query, sims.data(), k, min_similarity);
  // The counter tracks scan work (one per candidate scored); the k-bounded
  // rerank is constant overhead and intentionally excluded.
  distcomp_.fetch_add(n, std::memory_order_relaxed);
  return results;
}

std::vector<std::vector<SearchResult>> FlatIndex::SearchBatch(
    const float* queries, std::size_t nq, std::size_t qstride, std::size_t k,
    double min_similarity) const {
  CHECK_GE(qstride, dimension_);
  std::vector<std::vector<SearchResult>> out(nq);
  if (k == 0 || slot_to_id_.empty() || nq == 0) return out;
  const std::size_t n = slot_to_id_.size();
  // One multi-query pass: the row block streams through cache once per
  // batch.  Per-(query,row) scores are bitwise the sequential DotBatch
  // scores, and RankFromSims orders by a total order, so out[q] ==
  // Search(query q).
  std::vector<float> sims(nq * n);
  simd::DotBatchMq(queries, nq, qstride, data_.data(), n, dimension_,
                   dimension_, sims.data());
  for (std::size_t q = 0; q < nq; ++q) {
    out[q] = RankFromSims(
        std::span<const float>(queries + q * qstride, dimension_),
        sims.data() + q * n, k, min_similarity);
  }
  distcomp_.fetch_add(nq * n, std::memory_order_relaxed);
  return out;
}

std::vector<SearchResult> FlatIndex::RankFromSims(
    std::span<const float> query, const float* sims, std::size_t k,
    double min_similarity) const {
  const std::size_t n = slot_to_id_.size();
  std::vector<SearchResult> results;
  results.reserve(n);
  for (std::size_t slot = 0; slot < n; ++slot) {
    const double sim = static_cast<double>(sims[slot]);
    if (sim >= min_similarity) {
      results.push_back({slot_to_id_[slot], sim});
    }
  }
  // Two-phase ranking: the float batch scores select a pool of k + slack
  // candidates, then the pool is rescored with the scalar double-precision
  // kernel and tie-broken by id.  The final top-k is therefore identical no
  // matter which SIMD variant ran the scan (variants differ by ~1 float
  // ulp, which the slack absorbs), and reported similarities are exact.
  const auto ranked = [](const SearchResult& a, const SearchResult& b) {
    return a.similarity != b.similarity ? a.similarity > b.similarity
                                        : a.id < b.id;
  };
  const std::size_t pool =
      std::min(results.size(), k + std::max<std::size_t>(k, 8));
  std::partial_sort(results.begin(),
                    results.begin() + static_cast<std::ptrdiff_t>(pool),
                    results.end(), ranked);
  results.resize(pool);
  const auto& exact = simd::KernelsFor(simd::Variant::kScalar);
  for (auto& r : results) {
    r.similarity = exact.dot(
        query.data(),
        data_.data() + id_to_slot_.at(r.id) * dimension_, dimension_);
  }
  std::erase_if(results, [min_similarity](const SearchResult& r) {
    return r.similarity < min_similarity;
  });
  std::sort(results.begin(), results.end(), ranked);
  results.resize(std::min(k, results.size()));
  return results;
}

bool FlatIndex::Contains(VectorId id) const {
  return id_to_slot_.contains(id);
}

std::optional<Vector> FlatIndex::Get(VectorId id) const {
  const auto it = id_to_slot_.find(id);
  if (it == id_to_slot_.end()) return std::nullopt;
  const auto begin =
      data_.begin() + static_cast<std::ptrdiff_t>(it->second * dimension_);
  return Vector(begin, begin + static_cast<std::ptrdiff_t>(dimension_));
}

}  // namespace cortex
