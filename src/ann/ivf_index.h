// IvfIndex: inverted-file ANN (FAISS IVF-Flat equivalent).
//
// Vectors are bucketed by their nearest coarse centroid (trained with
// k-means); a query probes only the `nprobe` closest lists.  Until enough
// vectors have accumulated to train the quantiser, the index transparently
// degrades to an exact flat scan — a cache starts empty, so this warm-up
// path matters.  The quantiser is retrained automatically when the corpus
// has grown or churned substantially since the last training.
//
// Storage: vectors live in an aligned VectorSlab (stable row slots,
// free-list reuse on Remove) and inverted lists carry (id, row) pairs, so a
// probe batches whole lists through the SIMD dot kernels without a hash
// lookup per candidate.
#pragma once

#include <atomic>
#include <memory>
#include <unordered_map>
#include <vector>

#include "ann/kmeans.h"
#include "ann/vector_index.h"
#include "embedding/vector_slab.h"

namespace cortex {

struct IvfOptions {
  std::size_t num_lists = 16;   // coarse centroids (nlist)
  std::size_t num_probes = 4;   // lists scanned per query (nprobe)
  // Train once size reaches max(num_lists * this, 2 * num_lists).
  std::size_t train_points_per_list = 8;
  // Retrain when size deviates from the trained size by this factor.
  double retrain_growth_factor = 2.0;
  std::uint64_t seed = 42;
};

class IvfIndex final : public VectorIndex {
 public:
  IvfIndex(std::size_t dimension, IvfOptions options = {});

  void Add(VectorId id, std::span<const float> vector) override;
  bool Remove(VectorId id) override;
  std::vector<SearchResult> Search(std::span<const float> query,
                                   std::size_t k,
                                   double min_similarity) const override;
  std::vector<std::vector<SearchResult>> SearchBatch(
      const float* queries, std::size_t nq, std::size_t qstride,
      std::size_t k, double min_similarity) const override;
  bool Contains(VectorId id) const override;
  std::optional<Vector> Get(VectorId id) const override;
  std::size_t size() const override { return entries_.size(); }
  std::size_t dimension() const override { return dimension_; }
  std::uint64_t distance_computations() const override {
    return distcomp_.load(std::memory_order_relaxed);
  }

  bool is_trained() const noexcept { return trained_; }
  // Forces (re)training on the current contents.  Exposed for tests.
  void Train();

 private:
  struct Entry {
    std::uint32_t row = 0;  // slot in vectors_
    std::size_t list = 0;   // meaningful only when trained_
  };
  struct ListEntry {
    VectorId id = 0;
    std::uint32_t row = 0;
  };

  void MaybeTrain();
  void AssignToList(VectorId id, Entry& e);
  // Scores `candidates` against `query` in one batched kernel call,
  // appending those >= min_similarity to `results`.
  void ScanList(std::span<const float> query,
                const std::vector<ListEntry>& candidates,
                double min_similarity, std::vector<SearchResult>& results,
                std::vector<const float*>& row_ptrs,
                std::vector<float>& sims) const;
  // Shared tail of Search/SearchBatch: two-phase exact rerank + final
  // filter/sort/truncate over one query's candidate set.
  std::vector<SearchResult> FinalizeResults(std::span<const float> query,
                                            std::vector<SearchResult> results,
                                            std::size_t k,
                                            double min_similarity) const;

  std::size_t dimension_;
  IvfOptions options_;
  VectorSlab vectors_;
  std::unordered_map<VectorId, Entry> entries_;
  std::vector<float> centroids_;                 // num_lists * dimension
  std::vector<std::vector<ListEntry>> lists_;    // inverted lists
  bool trained_ = false;
  std::size_t trained_at_size_ = 0;
  // Atomic so concurrent const Search() calls (shared-lock readers in the
  // serving tier) stay race-free; bumped once per Search, not per vector.
  mutable std::atomic<std::uint64_t> distcomp_{0};
};

}  // namespace cortex
