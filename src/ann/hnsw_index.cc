#include "ann/hnsw_index.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "embedding/simd_kernels.h"
#include "embedding/vector_ops.h"
#include "util/check.h"

namespace cortex {

HnswIndex::HnswIndex(std::size_t dimension, HnswOptions options)
    : dimension_(dimension),
      options_(options),
      rng_(options.seed),
      level_lambda_(1.0 / std::log(static_cast<double>(
                              std::max<std::size_t>(options.M, 2)))),
      vectors_(dimension) {
  CHECK_GT(dimension, 0u);
  CHECK_GE(options.M, 2u);
}

double HnswIndex::Sim(std::span<const float> a, Slot b,
                      std::uint64_t& comps) const noexcept {
  ++comps;
  return simd::DotUnit(a, SlotVector(b));
}

void HnswIndex::SimBatch(std::span<const float> query, const Slot* slots,
                         std::size_t n, float* sims,
                         std::uint64_t& comps) const {
  comps += n;
  // Small gather buffer: adjacency lists are capped at 2M links.
  const float* ptrs[64];
  std::size_t done = 0;
  while (done < n) {
    const std::size_t chunk = std::min<std::size_t>(n - done, 64);
    for (std::size_t i = 0; i < chunk; ++i) {
      ptrs[i] = vectors_.Row(nodes_[slots[done + i]].row);
    }
    simd::DotRows(query, ptrs, chunk, sims + done);
    done += chunk;
  }
}

int HnswIndex::RandomLevel() {
  const double u = rng_.NextDouble();
  const int level =
      static_cast<int>(-std::log(std::max(u, 1e-12)) * level_lambda_);
  return std::min(level, 24);  // clamp against pathological draws
}

HnswIndex::Slot HnswIndex::GreedyDescend(std::span<const float> query,
                                         Slot entry, int from_level,
                                         int target_layer,
                                         std::uint64_t& comps) const {
  Slot current = entry;
  double current_sim = Sim(query, current, comps);
  std::vector<float> sims;
  for (int layer = from_level; layer > target_layer; --layer) {
    bool improved = true;
    while (improved) {
      improved = false;
      if (layer >= static_cast<int>(nodes_[current].links.size())) continue;
      const auto& nbs =
          nodes_[current].links[static_cast<std::size_t>(layer)];
      if (nbs.empty()) continue;
      sims.resize(nbs.size());
      SimBatch(query, nbs.data(), nbs.size(), sims.data(), comps);
      for (std::size_t i = 0; i < nbs.size(); ++i) {
        const double s = static_cast<double>(sims[i]);
        if (s > current_sim) {
          current_sim = s;
          current = nbs[i];
          improved = true;
        }
      }
    }
  }
  return current;
}

std::vector<std::pair<HnswIndex::Slot, double>> HnswIndex::SearchLayer(
    std::span<const float> query, Slot entry, std::size_t ef, int layer,
    std::uint64_t& comps) const {
  // Max-heap of candidates to expand; min-heap of current best `ef` results.
  using Scored = std::pair<double, Slot>;
  std::priority_queue<Scored> candidates;  // best-first
  std::priority_queue<Scored, std::vector<Scored>, std::greater<>>
      best;  // worst-first, capped at ef
  std::unordered_set<Slot> visited;

  const double entry_sim = Sim(query, entry, comps);
  candidates.emplace(entry_sim, entry);
  best.emplace(entry_sim, entry);
  visited.insert(entry);

  // Scratch reused across expansions: each expanded node's unvisited
  // neighbours are scored in one batched gather-kernel call.
  std::vector<Slot> fresh;
  std::vector<float> sims;
  while (!candidates.empty()) {
    const auto [sim, slot] = candidates.top();
    candidates.pop();
    if (best.size() >= ef && sim < best.top().first) break;
    if (layer >= static_cast<int>(nodes_[slot].links.size())) continue;
    fresh.clear();
    for (Slot nb : nodes_[slot].links[static_cast<std::size_t>(layer)]) {
      if (visited.insert(nb).second) fresh.push_back(nb);
    }
    if (fresh.empty()) continue;
    sims.resize(fresh.size());
    SimBatch(query, fresh.data(), fresh.size(), sims.data(), comps);
    for (std::size_t i = 0; i < fresh.size(); ++i) {
      const double s = static_cast<double>(sims[i]);
      if (best.size() < ef || s > best.top().first) {
        candidates.emplace(s, fresh[i]);
        best.emplace(s, fresh[i]);
        if (best.size() > ef) best.pop();
      }
    }
  }

  std::vector<std::pair<Slot, double>> out;
  out.reserve(best.size());
  while (!best.empty()) {
    out.emplace_back(best.top().second, best.top().first);
    best.pop();
  }
  std::reverse(out.begin(), out.end());  // best-first
  return out;
}

void HnswIndex::SelectNeighbors(
    std::span<const float> target,
    std::vector<std::pair<Slot, double>>& candidates, std::size_t max_links,
    std::uint64_t& comps) const {
  if (candidates.size() <= max_links) return;
  if (!options_.heuristic_selection) {
    // Simple top-M (candidates arrive best-first from SearchLayer).
    candidates.resize(max_links);
    return;
  }
  // Alg. 4: accept a candidate only if it is closer to the target than to
  // every neighbour already accepted — otherwise it is redundant (the
  // accepted neighbour already routes toward it).
  std::vector<std::pair<Slot, double>> selected;
  selected.reserve(max_links);
  for (const auto& [slot, sim_to_target] : candidates) {
    bool diverse = true;
    for (const auto& [kept, kept_sim] : selected) {
      if (Sim(SlotVector(kept), slot, comps) > sim_to_target) {
        diverse = false;
        break;
      }
    }
    if (diverse) {
      selected.emplace_back(slot, sim_to_target);
      if (selected.size() == max_links) break;
    }
  }
  // Back-fill with the best remaining candidates if diversity pruning left
  // slots unused (keeps connectivity on tiny or degenerate inputs).
  if (selected.size() < max_links) {
    for (const auto& candidate : candidates) {
      if (selected.size() == max_links) break;
      bool already = false;
      for (const auto& s : selected) {
        if (s.first == candidate.first) {
          already = true;
          break;
        }
      }
      if (!already) selected.push_back(candidate);
    }
  }
  candidates = std::move(selected);
  (void)target;
}

void HnswIndex::PruneLinks(Slot slot, int layer, std::uint64_t& comps) {
  auto& links = nodes_[slot].links[static_cast<std::size_t>(layer)];
  const std::size_t max_links = layer == 0 ? options_.M * 2 : options_.M;
  if (links.size() <= max_links) return;
  std::vector<float> sims(links.size());
  SimBatch(SlotVector(slot), links.data(), links.size(), sims.data(), comps);
  std::vector<std::pair<Slot, double>> scored;
  scored.reserve(links.size());
  for (std::size_t i = 0; i < links.size(); ++i) {
    scored.emplace_back(links[i], static_cast<double>(sims[i]));
  }
  std::sort(scored.begin(), scored.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  scored.resize(max_links);
  links.clear();
  for (const auto& [nb, s] : scored) links.push_back(nb);
}

void HnswIndex::InsertNode(Slot slot, std::uint64_t& comps) {
  Node& node = nodes_[slot];
  const int node_level = static_cast<int>(node.links.size()) - 1;

  if (entry_point_ == kInvalidSlot) {
    entry_point_ = slot;
    max_level_ = node_level;
    return;
  }

  const std::span<const float> vec = SlotVector(slot);
  Slot entry = entry_point_;
  if (max_level_ > node_level) {
    entry = GreedyDescend(vec, entry, max_level_, node_level, comps);
  }

  for (int layer = std::min(node_level, max_level_); layer >= 0; --layer) {
    auto candidates =
        SearchLayer(vec, entry, options_.ef_construction, layer, comps);
    entry = candidates.front().first;
    SelectNeighbors(vec, candidates, options_.M, comps);
    auto& links = node.links[static_cast<std::size_t>(layer)];
    for (const auto& [nb, s] : candidates) {
      if (nb == slot) continue;
      links.push_back(nb);
      nodes_[nb].links[static_cast<std::size_t>(layer)].push_back(slot);
      PruneLinks(nb, layer, comps);
    }
  }

  if (node_level > max_level_) {
    max_level_ = node_level;
    entry_point_ = slot;
  }
}

void HnswIndex::Add(VectorId id, std::span<const float> vector) {
  CHECK_EQ(vector.size(), dimension_);
  DCHECK(NearlyUnitNorm(vector))
      << "HnswIndex scores by inner product; vectors must be unit-norm";
  const auto it = id_to_slot_.find(id);
  if (it != id_to_slot_.end() && !nodes_[it->second].deleted) {
    // Replace: tombstone the old node and insert fresh (graph links for the
    // old vector are no longer meaningful).  The old slab row stays — the
    // tombstone keeps routing through it until the next compaction.
    nodes_[it->second].deleted = true;
    --live_count_;
  }

  const auto slot = static_cast<Slot>(nodes_.size());
  Node node;
  node.id = id;
  node.row = vectors_.Add(vector);
  node.links.resize(static_cast<std::size_t>(RandomLevel()) + 1);
  nodes_.push_back(std::move(node));
  id_to_slot_[id] = slot;
  ++live_count_;
  std::uint64_t comps = 0;
  InsertNode(slot, comps);
  distcomp_.fetch_add(comps, std::memory_order_relaxed);
  RebuildIfNeeded();
}

bool HnswIndex::Remove(VectorId id) {
  const auto it = id_to_slot_.find(id);
  if (it == id_to_slot_.end() || nodes_[it->second].deleted) return false;
  nodes_[it->second].deleted = true;
  --live_count_;
  id_to_slot_.erase(it);
  RebuildIfNeeded();
  return true;
}

void HnswIndex::RebuildIfNeeded() {
  if (nodes_.empty() || live_count_ == nodes_.size()) return;
  const double tombstone_ratio =
      static_cast<double>(nodes_.size() - live_count_) /
      static_cast<double>(nodes_.size());
  if (tombstone_ratio < options_.tombstone_rebuild_ratio) return;

  // Copy live vectors out of the slab, then rebuild both graph and slab
  // from scratch (tombstoned rows are reclaimed wholesale by Clear).
  std::vector<Node> old = std::move(nodes_);
  std::vector<std::pair<VectorId, Vector>> live;
  live.reserve(live_count_);
  for (const auto& n : old) {
    if (n.deleted) continue;
    const auto row = vectors_.RowSpan(n.row);
    live.emplace_back(n.id, Vector(row.begin(), row.end()));
  }
  vectors_.Clear();
  nodes_.clear();
  id_to_slot_.clear();
  live_count_ = 0;
  entry_point_ = kInvalidSlot;
  max_level_ = -1;
  std::uint64_t comps = 0;
  for (auto& [id, vec] : live) {
    const auto slot = static_cast<Slot>(nodes_.size());
    Node node;
    node.id = id;
    node.row = vectors_.Add(vec);
    node.links.resize(static_cast<std::size_t>(RandomLevel()) + 1);
    nodes_.push_back(std::move(node));
    id_to_slot_[id] = slot;
    ++live_count_;
    InsertNode(slot, comps);
  }
  distcomp_.fetch_add(comps, std::memory_order_relaxed);
}

std::vector<SearchResult> HnswIndex::Search(std::span<const float> query,
                                            std::size_t k,
                                            double min_similarity) const {
  CHECK_EQ(query.size(), dimension_);
  if (k == 0 || live_count_ == 0) return {};
  std::uint64_t comps = 0;
  const Slot entry =
      GreedyDescend(query, entry_point_, max_level_, 0, comps);
  const std::size_t ef = std::max(options_.ef_search, k);
  auto found = SearchLayer(query, entry, ef + tombstone_count(), 0, comps);

  // Rerank the beam output with the scalar double-precision kernel and
  // break ties by id (see FlatIndex::Search): the reported top-k does not
  // depend on which SIMD variant ran the beam, and similarities are exact.
  const auto& exact = simd::KernelsFor(simd::Variant::kScalar);
  std::vector<SearchResult> results;
  results.reserve(found.size());
  for (const auto& [slot, sim] : found) {
    if (nodes_[slot].deleted) continue;
    const double s =
        exact.dot(query.data(), SlotVector(slot).data(), dimension_);
    if (s < min_similarity) continue;
    results.push_back({nodes_[slot].id, s});
  }
  distcomp_.fetch_add(comps, std::memory_order_relaxed);
  std::sort(results.begin(), results.end(),
            [](const SearchResult& a, const SearchResult& b) {
              return a.similarity != b.similarity
                         ? a.similarity > b.similarity
                         : a.id < b.id;
            });
  results.resize(std::min(k, results.size()));
  return results;
}

bool HnswIndex::Contains(VectorId id) const {
  const auto it = id_to_slot_.find(id);
  return it != id_to_slot_.end() && !nodes_[it->second].deleted;
}

std::optional<Vector> HnswIndex::Get(VectorId id) const {
  const auto it = id_to_slot_.find(id);
  if (it == id_to_slot_.end() || nodes_[it->second].deleted) {
    return std::nullopt;
  }
  const auto row = SlotVector(it->second);
  return Vector(row.begin(), row.end());
}

}  // namespace cortex
