#include "ann/kmeans.h"

#include <algorithm>
#include <limits>

#include "embedding/simd_kernels.h"
#include "util/check.h"

namespace cortex {

namespace {

std::span<const float> Row(std::span<const float> data, std::size_t i,
                           std::size_t dim) {
  return data.subspan(i * dim, dim);
}

}  // namespace

std::size_t NearestCentroid(std::span<const float> point,
                            std::span<const float> centroids, std::size_t k,
                            std::size_t dimension) noexcept {
  // Batched argmin over the contiguous centroid block, in stack-sized
  // chunks so arbitrary k needs no heap allocation per call.
  float dists[256];
  std::size_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  std::size_t done = 0;
  while (done < k) {
    const std::size_t chunk = std::min<std::size_t>(k - done, 256);
    simd::L2SqBatch(point, centroids.data() + done * dimension, chunk,
                    dimension, dists);
    for (std::size_t i = 0; i < chunk; ++i) {
      const double d = static_cast<double>(dists[i]);
      if (d < best_d) {
        best_d = d;
        best = done + i;
      }
    }
    done += chunk;
  }
  return best;
}

KMeansResult KMeans(std::span<const float> data, std::size_t n,
                    std::size_t dimension, std::size_t k,
                    const KMeansOptions& options) {
  CHECK_GE(k, 1u);
  CHECK_GE(n, k);
  CHECK_EQ(data.size(), n * dimension);
  Rng rng(options.seed);
  KMeansResult result;
  result.k = k;
  result.dimension = dimension;
  result.centroids.resize(k * dimension);
  result.assignments.assign(n, 0);

  // --- k-means++ seeding ---
  std::vector<double> min_dist(n, std::numeric_limits<double>::infinity());
  std::size_t first = static_cast<std::size_t>(rng.NextBelow(n));
  std::copy_n(Row(data, first, dimension).begin(), dimension,
              result.centroids.begin());
  for (std::size_t c = 1; c < k; ++c) {
    const std::span<const float> prev(
        result.centroids.data() + (c - 1) * dimension, dimension);
    for (std::size_t i = 0; i < n; ++i) {
      min_dist[i] =
          std::min(min_dist[i], L2DistanceSquared(Row(data, i, dimension),
                                                  prev));
    }
    // D² mass can be all-zero when every point coincides with an existing
    // centroid (duplicate inputs); WeightedIndex CHECKs against zero total
    // mass, so fall back to a uniform pick explicitly.
    double mass = 0.0;
    for (double d : min_dist) mass += d;
    const std::size_t chosen =
        mass > 0.0 ? rng.WeightedIndex(min_dist)
                   : static_cast<std::size_t>(rng.NextBelow(n));
    std::copy_n(Row(data, chosen, dimension).begin(), dimension,
                result.centroids.begin() +
                    static_cast<std::ptrdiff_t>(c * dimension));
  }

  // --- Lloyd iterations ---
  std::vector<double> sums(k * dimension);
  std::vector<std::size_t> counts(k);
  double prev_inertia = std::numeric_limits<double>::infinity();
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations_run = iter + 1;
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0);
    double inertia = 0.0;
    // Track the globally worst-assigned point to re-seed empty clusters.
    std::size_t worst_point = 0;
    double worst_dist = -1.0;
    for (std::size_t i = 0; i < n; ++i) {
      const auto point = Row(data, i, dimension);
      const std::size_t c =
          NearestCentroid(point, result.centroids, k, dimension);
      result.assignments[i] = c;
      const double d = L2DistanceSquared(
          point, std::span<const float>(result.centroids.data() + c * dimension,
                                        dimension));
      inertia += d;
      if (d > worst_dist) {
        worst_dist = d;
        worst_point = i;
      }
      ++counts[c];
      for (std::size_t j = 0; j < dimension; ++j) {
        sums[c * dimension + j] += point[j];
      }
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed from the farthest point.
        std::copy_n(Row(data, worst_point, dimension).begin(), dimension,
                    result.centroids.begin() +
                        static_cast<std::ptrdiff_t>(c * dimension));
        continue;
      }
      for (std::size_t j = 0; j < dimension; ++j) {
        result.centroids[c * dimension + j] = static_cast<float>(
            sums[c * dimension + j] / static_cast<double>(counts[c]));
      }
    }
    result.inertia = inertia;
    if (prev_inertia - inertia <= options.tolerance * prev_inertia) break;
    prev_inertia = inertia;
  }
  return result;
}

}  // namespace cortex
