// VectorIndex: approximate-nearest-neighbour search over unit vectors.
//
// This is Cortex's stand-in for FAISS.  Unlike a retrieval-only index, a
// cache front-end must support online mutation, so every implementation
// provides Add *and* Remove (eviction deletes keys).  All indexes score by
// cosine similarity; inputs are expected to be L2-normalised (the Embedder
// guarantees this), in which case cosine == inner product.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "embedding/vector_ops.h"

namespace cortex {

using VectorId = std::uint64_t;

struct SearchResult {
  VectorId id = 0;
  // Cosine similarity to the query, in [-1, 1].
  double similarity = 0.0;

  friend bool operator==(const SearchResult&, const SearchResult&) = default;
};

class VectorIndex {
 public:
  virtual ~VectorIndex() = default;

  // Inserts (id, vector).  Ids must be unique; re-adding an existing id
  // replaces its vector.  The vector is copied.
  virtual void Add(VectorId id, std::span<const float> vector) = 0;

  // Removes the id; returns false if absent.
  virtual bool Remove(VectorId id) = 0;

  // Top-k ids by cosine similarity, filtered to similarity >= min_similarity,
  // sorted by descending similarity.  k == 0 returns empty.
  virtual std::vector<SearchResult> Search(std::span<const float> query,
                                           std::size_t k,
                                           double min_similarity) const = 0;

  // Multi-query search: query q lives at queries + q*qstride (qstride in
  // floats, >= dimension()); result q is exactly Search(query q, k,
  // min_similarity).  The base implementation loops Search; Flat and IVF
  // override it with the multi-query kernels so index bytes are read once
  // per batch instead of once per query — the result stays identical
  // because both phases' pool selection orders by the total order
  // (similarity desc, id asc) on unique ids.
  virtual std::vector<std::vector<SearchResult>> SearchBatch(
      const float* queries, std::size_t nq, std::size_t qstride,
      std::size_t k, double min_similarity) const {
    std::vector<std::vector<SearchResult>> out(nq);
    for (std::size_t q = 0; q < nq; ++q) {
      out[q] = Search(std::span<const float>(queries + q * qstride,
                                             dimension()),
                      k, min_similarity);
    }
    return out;
  }

  virtual bool Contains(VectorId id) const = 0;
  virtual std::optional<Vector> Get(VectorId id) const = 0;
  virtual std::size_t size() const = 0;
  virtual std::size_t dimension() const = 0;

  // Approximate count of vector-distance computations performed so far;
  // benches use this to compare Flat vs IVF vs HNSW work.
  virtual std::uint64_t distance_computations() const = 0;
};

}  // namespace cortex
