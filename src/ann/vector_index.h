// VectorIndex: approximate-nearest-neighbour search over unit vectors.
//
// This is Cortex's stand-in for FAISS.  Unlike a retrieval-only index, a
// cache front-end must support online mutation, so every implementation
// provides Add *and* Remove (eviction deletes keys).  All indexes score by
// cosine similarity; inputs are expected to be L2-normalised (the Embedder
// guarantees this), in which case cosine == inner product.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "embedding/vector_ops.h"

namespace cortex {

using VectorId = std::uint64_t;

struct SearchResult {
  VectorId id = 0;
  // Cosine similarity to the query, in [-1, 1].
  double similarity = 0.0;

  friend bool operator==(const SearchResult&, const SearchResult&) = default;
};

class VectorIndex {
 public:
  virtual ~VectorIndex() = default;

  // Inserts (id, vector).  Ids must be unique; re-adding an existing id
  // replaces its vector.  The vector is copied.
  virtual void Add(VectorId id, std::span<const float> vector) = 0;

  // Removes the id; returns false if absent.
  virtual bool Remove(VectorId id) = 0;

  // Top-k ids by cosine similarity, filtered to similarity >= min_similarity,
  // sorted by descending similarity.  k == 0 returns empty.
  virtual std::vector<SearchResult> Search(std::span<const float> query,
                                           std::size_t k,
                                           double min_similarity) const = 0;

  virtual bool Contains(VectorId id) const = 0;
  virtual std::optional<Vector> Get(VectorId id) const = 0;
  virtual std::size_t size() const = 0;
  virtual std::size_t dimension() const = 0;

  // Approximate count of vector-distance computations performed so far;
  // benches use this to compare Flat vs IVF vs HNSW work.
  virtual std::uint64_t distance_computations() const = 0;
};

}  // namespace cortex
