// Product quantization (Jégou et al., 2011 — the paper's citation [35]).
//
// A vector of dimension D is split into M subspaces of D/M dimensions; each
// subspace is vector-quantized with its own k-means codebook of K entries,
// so a vector compresses to M bytes (K <= 256).  Search uses asymmetric
// distance computation (ADC): the query stays exact, per-subspace distance
// tables are built once per query, and each candidate costs M table lookups
// instead of D multiplications.
//
// PqIndex implements VectorIndex with this compression: ~D*4/M x less
// memory per entry at the cost of quantization error in the scores.  Like
// IvfIndex it trains lazily once enough vectors accumulate (exact scan
// before that) and keeps exact copies only transiently for (re)training.
#pragma once

#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "ann/vector_index.h"
#include "util/rng.h"

namespace cortex {

struct PqOptions {
  std::size_t num_subspaces = 8;       // M; must divide the dimension
  std::size_t codebook_size = 256;     // K <= 256 (codes are bytes)
  std::size_t train_points = 256;      // train once this many vectors exist
  std::size_t kmeans_iterations = 12;
  std::uint64_t seed = 99;
};

// The trained quantizer itself, usable standalone.
class ProductQuantizer {
 public:
  ProductQuantizer(std::size_t dimension, PqOptions options = {});

  // Trains codebooks on `n` row-major vectors.  Requires n >= codebook size
  // (smaller codebooks are used when the corpus is tiny).
  void Train(std::span<const float> data, std::size_t n);
  bool trained() const noexcept { return trained_; }

  // Encodes a vector into M codes.
  std::vector<std::uint8_t> Encode(std::span<const float> vector) const;
  // Reconstructs the centroid approximation of a code.
  Vector Decode(std::span<const std::uint8_t> code) const;

  // Builds the per-query ADC table: table[m * K + k] = dot(query_m, c_mk).
  // With unit vectors, summing table entries over a code approximates the
  // cosine similarity.
  std::vector<float> BuildDotTable(std::span<const float> query) const;
  double DotFromTable(std::span<const float> table,
                      std::span<const std::uint8_t> code) const;

  std::size_t dimension() const noexcept { return dimension_; }
  std::size_t num_subspaces() const noexcept { return options_.num_subspaces; }
  std::size_t codebook_size() const noexcept { return trained_k_; }
  std::size_t subdim() const noexcept { return subdim_; }

  // Mean squared reconstruction error over a sample (diagnostics/tests).
  double ReconstructionError(std::span<const float> data,
                             std::size_t n) const;

 private:
  std::size_t dimension_;
  std::size_t subdim_;
  PqOptions options_;
  bool trained_ = false;
  std::size_t trained_k_ = 0;
  // codebooks_[m]: trained_k_ x subdim_ row-major centroids for subspace m.
  std::vector<std::vector<float>> codebooks_;
};

class PqIndex final : public VectorIndex {
 public:
  PqIndex(std::size_t dimension, PqOptions options = {});

  void Add(VectorId id, std::span<const float> vector) override;
  bool Remove(VectorId id) override;
  std::vector<SearchResult> Search(std::span<const float> query,
                                   std::size_t k,
                                   double min_similarity) const override;
  bool Contains(VectorId id) const override;
  std::optional<Vector> Get(VectorId id) const override;
  std::size_t size() const override { return codes_.size(); }
  std::size_t dimension() const override { return dimension_; }
  std::uint64_t distance_computations() const override {
    return distcomp_.load(std::memory_order_relaxed);
  }

  bool is_trained() const noexcept { return pq_.trained(); }
  // Compressed bytes per resident vector once trained.
  std::size_t bytes_per_vector() const noexcept {
    return pq_.num_subspaces();
  }

 private:
  void MaybeTrain();

  std::size_t dimension_;
  PqOptions options_;
  ProductQuantizer pq_;
  // Exact vectors are kept for Get()/retraining (a deployment chasing the
  // memory savings would spill them to disk); *search* runs on the codes.
  std::unordered_map<VectorId, Vector> exact_;
  std::unordered_map<VectorId, std::vector<std::uint8_t>> codes_;
  // Atomic so concurrent const Search() calls (shared-lock readers in the
  // serving tier) stay race-free.
  mutable std::atomic<std::uint64_t> distcomp_{0};
};

}  // namespace cortex
