#include "ann/pq.h"

#include <algorithm>

#include "ann/kmeans.h"
#include "embedding/simd_kernels.h"
#include "embedding/vector_ops.h"
#include "util/check.h"

namespace cortex {

// ---------------------------------------------------------------------------
// ProductQuantizer

ProductQuantizer::ProductQuantizer(std::size_t dimension, PqOptions options)
    : dimension_(dimension), options_(options) {
  CHECK_GT(dimension, 0u);
  CHECK_GT(options.num_subspaces, 0u);
  CHECK_EQ(dimension % options.num_subspaces, 0u)
      << "dimension must divide evenly into subspaces";
  CHECK_GE(options.codebook_size, 2u);
  CHECK_LE(options.codebook_size, 256u);
  subdim_ = dimension / options.num_subspaces;
}

void ProductQuantizer::Train(std::span<const float> data, std::size_t n) {
  CHECK_EQ(data.size(), n * dimension_);
  if (n < 2) return;
  const std::size_t k = std::min(options_.codebook_size, n);
  codebooks_.assign(options_.num_subspaces, {});

  std::vector<float> sub(n * subdim_);
  for (std::size_t m = 0; m < options_.num_subspaces; ++m) {
    for (std::size_t i = 0; i < n; ++i) {
      std::copy_n(data.begin() +
                      static_cast<std::ptrdiff_t>(i * dimension_ + m * subdim_),
                  subdim_,
                  sub.begin() + static_cast<std::ptrdiff_t>(i * subdim_));
    }
    KMeansOptions kopts;
    kopts.max_iterations = options_.kmeans_iterations;
    kopts.seed = options_.seed + m;
    codebooks_[m] = KMeans(sub, n, subdim_, k, kopts).centroids;
  }
  trained_k_ = k;
  trained_ = true;
}

std::vector<std::uint8_t> ProductQuantizer::Encode(
    std::span<const float> vector) const {
  CHECK(trained_);
  DCHECK_EQ(vector.size(), dimension_);
  std::vector<std::uint8_t> code(options_.num_subspaces);
  for (std::size_t m = 0; m < options_.num_subspaces; ++m) {
    const auto sub = vector.subspan(m * subdim_, subdim_);
    code[m] = static_cast<std::uint8_t>(
        NearestCentroid(sub, codebooks_[m], trained_k_, subdim_));
  }
  return code;
}

Vector ProductQuantizer::Decode(std::span<const std::uint8_t> code) const {
  CHECK(trained_);
  DCHECK_EQ(code.size(), options_.num_subspaces);
  Vector out(dimension_);
  for (std::size_t m = 0; m < options_.num_subspaces; ++m) {
    std::copy_n(codebooks_[m].begin() +
                    static_cast<std::ptrdiff_t>(code[m] * subdim_),
                subdim_,
                out.begin() + static_cast<std::ptrdiff_t>(m * subdim_));
  }
  return out;
}

std::vector<float> ProductQuantizer::BuildDotTable(
    std::span<const float> query) const {
  CHECK(trained_);
  DCHECK_EQ(query.size(), dimension_);
  std::vector<float> table(options_.num_subspaces * trained_k_);
  for (std::size_t m = 0; m < options_.num_subspaces; ++m) {
    const auto qsub = query.subspan(m * subdim_, subdim_);
    // Each codebook is a contiguous trained_k_ x subdim_ block: one batched
    // kernel call fills the whole sub-table.
    simd::DotBatch(qsub, codebooks_[m].data(), trained_k_, subdim_,
                   table.data() + m * trained_k_);
  }
  return table;
}

double ProductQuantizer::DotFromTable(
    std::span<const float> table, std::span<const std::uint8_t> code) const {
  double acc = 0.0;
  for (std::size_t m = 0; m < options_.num_subspaces; ++m) {
    acc += table[m * trained_k_ + code[m]];
  }
  return acc;
}

double ProductQuantizer::ReconstructionError(std::span<const float> data,
                                             std::size_t n) const {
  CHECK(trained_);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto row = data.subspan(i * dimension_, dimension_);
    const Vector approx = Decode(Encode(row));
    total += L2DistanceSquared(row, approx);
  }
  return n ? total / static_cast<double>(n) : 0.0;
}

// ---------------------------------------------------------------------------
// PqIndex

PqIndex::PqIndex(std::size_t dimension, PqOptions options)
    : dimension_(dimension), options_(options), pq_(dimension, options) {}

void PqIndex::MaybeTrain() {
  if (pq_.trained() || exact_.size() < options_.train_points) return;
  std::vector<float> data;
  data.reserve(exact_.size() * dimension_);
  std::vector<VectorId> ids;
  for (const auto& [id, v] : exact_) {
    data.insert(data.end(), v.begin(), v.end());
    ids.push_back(id);
  }
  pq_.Train(data, ids.size());
  for (VectorId id : ids) {
    codes_[id] = pq_.Encode(exact_.at(id));
  }
}

void PqIndex::Add(VectorId id, std::span<const float> vector) {
  CHECK_EQ(vector.size(), dimension_);
  DCHECK(NearlyUnitNorm(vector))
      << "PqIndex scores by inner product; vectors must be unit-norm";
  exact_[id] = Vector(vector.begin(), vector.end());
  if (pq_.trained()) {
    codes_[id] = pq_.Encode(vector);
  } else {
    codes_[id] = {};  // placeholder until training back-fills
  }
  MaybeTrain();
}

bool PqIndex::Remove(VectorId id) {
  const bool existed = exact_.erase(id) > 0;
  codes_.erase(id);
  return existed;
}

std::vector<SearchResult> PqIndex::Search(std::span<const float> query,
                                          std::size_t k,
                                          double min_similarity) const {
  CHECK_EQ(query.size(), dimension_);
  if (k == 0 || exact_.empty()) return {};
  std::vector<SearchResult> results;
  results.reserve(exact_.size());
  std::uint64_t comps = 0;

  if (!pq_.trained()) {
    // Warm-up: exact scan.  Vectors are unit-norm (DCHECKed on Add), so the
    // dot kernel gives the cosine directly; batch via the gather kernel.
    std::vector<VectorId> ids;
    std::vector<const float*> rows;
    ids.reserve(exact_.size());
    rows.reserve(exact_.size());
    for (const auto& [id, v] : exact_) {
      ids.push_back(id);
      rows.push_back(v.data());
    }
    std::vector<float> sims(ids.size());
    simd::DotRows(query, rows.data(), rows.size(), sims.data());
    comps += ids.size();
    for (std::size_t i = 0; i < ids.size(); ++i) {
      const double sim = static_cast<double>(sims[i]);
      if (sim >= min_similarity) results.push_back({ids[i], sim});
    }
    // Two-phase ranking (see FlatIndex::Search): rescore a k + slack pool
    // with the scalar double-precision kernel so the exact-scan top-k is
    // identical across SIMD variants.
    const std::size_t pool =
        std::min(results.size(), k + std::max<std::size_t>(k, 8));
    std::partial_sort(results.begin(),
                      results.begin() + static_cast<std::ptrdiff_t>(pool),
                      results.end(), [](const auto& a, const auto& b) {
                        return a.similarity != b.similarity
                                   ? a.similarity > b.similarity
                                   : a.id < b.id;
                      });
    results.resize(pool);
    const auto& exact = simd::KernelsFor(simd::Variant::kScalar);
    for (auto& r : results) {
      const auto& v = exact_.at(r.id);
      r.similarity = exact.dot(query.data(), v.data(), dimension_);
    }
    std::erase_if(results, [min_similarity](const SearchResult& r) {
      return r.similarity < min_similarity;
    });
  } else {
    // ADC: one table build, then M lookups per candidate.  Unit vectors
    // make the dot product a cosine approximation.
    const auto table = pq_.BuildDotTable(query);
    const double qnorm = L2Norm(query);
    for (const auto& [id, code] : codes_) {
      ++comps;
      double sim = pq_.DotFromTable(table, code);
      if (qnorm > 0.0) sim /= qnorm;  // codes decode to ~unit vectors
      if (sim >= min_similarity) results.push_back({id, sim});
    }
  }
  distcomp_.fetch_add(comps, std::memory_order_relaxed);

  const std::size_t top = std::min(k, results.size());
  // Ties broken by id so the ranking is a total order — identical output
  // no matter which kernel variant produced the (bit-equal) scores.
  std::partial_sort(results.begin(),
                    results.begin() + static_cast<std::ptrdiff_t>(top),
                    results.end(), [](const auto& a, const auto& b) {
                      return a.similarity != b.similarity
                                 ? a.similarity > b.similarity
                                 : a.id < b.id;
                    });
  results.resize(top);
  return results;
}

bool PqIndex::Contains(VectorId id) const { return exact_.contains(id); }

std::optional<Vector> PqIndex::Get(VectorId id) const {
  const auto it = exact_.find(id);
  if (it == exact_.end()) return std::nullopt;
  return it->second;
}

}  // namespace cortex
