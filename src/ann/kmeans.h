// Lloyd's k-means with k-means++ seeding; the coarse quantiser for IvfIndex.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "embedding/vector_ops.h"
#include "util/rng.h"

namespace cortex {

struct KMeansResult {
  // k * dimension row-major centroids.
  std::vector<float> centroids;
  // Cluster assignment per input point.
  std::vector<std::size_t> assignments;
  std::size_t k = 0;
  std::size_t dimension = 0;
  std::size_t iterations_run = 0;
  double inertia = 0.0;  // sum of squared distances to assigned centroids

  std::span<const float> Centroid(std::size_t c) const {
    return {centroids.data() + c * dimension, dimension};
  }
};

struct KMeansOptions {
  std::size_t max_iterations = 25;
  // Stop early when inertia improves by less than this relative amount.
  double tolerance = 1e-4;
  std::uint64_t seed = 42;
};

// Clusters `n` points of `dimension` floats stored row-major in `data`.
// Requires k >= 1 and n >= k.  Empty clusters are re-seeded from the point
// farthest from its centroid.
KMeansResult KMeans(std::span<const float> data, std::size_t n,
                    std::size_t dimension, std::size_t k,
                    const KMeansOptions& options = {});

// Index of the nearest centroid to `point` (L2).
std::size_t NearestCentroid(std::span<const float> point,
                            std::span<const float> centroids,
                            std::size_t k, std::size_t dimension) noexcept;

}  // namespace cortex
