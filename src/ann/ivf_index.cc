#include "ann/ivf_index.h"

#include <algorithm>
#include <limits>

#include "embedding/simd_kernels.h"
#include "util/check.h"

namespace cortex {

IvfIndex::IvfIndex(std::size_t dimension, IvfOptions options)
    : dimension_(dimension), options_(options), vectors_(dimension) {
  CHECK_GT(dimension, 0u);
  CHECK_GT(options.num_lists, 0u);
  options_.num_probes = std::min(options_.num_probes, options_.num_lists);
}

void IvfIndex::Add(VectorId id, std::span<const float> vector) {
  CHECK_EQ(vector.size(), dimension_);
  DCHECK(NearlyUnitNorm(vector))
      << "IvfIndex scores by inner product; vectors must be unit-norm";
  auto [it, inserted] = entries_.try_emplace(id);
  if (inserted) {
    it->second.row = vectors_.Add(vector);
  } else {
    vectors_.Overwrite(it->second.row, vector);
    if (trained_) {
      // Replacing: remove from its current list first.
      auto& list = lists_[it->second.list];
      list.erase(std::remove_if(list.begin(), list.end(),
                                [id](const ListEntry& e) { return e.id == id; }),
                 list.end());
    }
  }
  if (trained_) {
    AssignToList(id, it->second);
  }
  MaybeTrain();
}

void IvfIndex::AssignToList(VectorId id, Entry& e) {
  e.list = NearestCentroid(vectors_.RowSpan(e.row), centroids_,
                           options_.num_lists, dimension_);
  lists_[e.list].push_back({id, e.row});
}

bool IvfIndex::Remove(VectorId id) {
  const auto it = entries_.find(id);
  if (it == entries_.end()) return false;
  if (trained_) {
    auto& list = lists_[it->second.list];
    list.erase(std::remove_if(list.begin(), list.end(),
                              [id](const ListEntry& e) { return e.id == id; }),
               list.end());
  }
  vectors_.Free(it->second.row);
  entries_.erase(it);
  return true;
}

void IvfIndex::MaybeTrain() {
  const std::size_t train_threshold =
      std::max(options_.num_lists * options_.train_points_per_list,
               2 * options_.num_lists);
  if (!trained_) {
    if (entries_.size() >= train_threshold) Train();
    return;
  }
  // Retrain when the corpus drifted far from what the quantiser saw.
  const auto size = entries_.size();
  if (size >= train_threshold &&
      (size > trained_at_size_ * options_.retrain_growth_factor ||
       size * options_.retrain_growth_factor < trained_at_size_)) {
    Train();
  }
}

void IvfIndex::Train() {
  const std::size_t n = entries_.size();
  if (n < options_.num_lists) return;
  std::vector<float> data;
  data.reserve(n * dimension_);
  std::vector<VectorId> ids;
  ids.reserve(n);
  for (const auto& [id, e] : entries_) {
    const auto row = vectors_.RowSpan(e.row);
    data.insert(data.end(), row.begin(), row.end());
    ids.push_back(id);
  }
  KMeansOptions kopts;
  kopts.seed = options_.seed;
  const auto km =
      KMeans(data, n, dimension_, options_.num_lists, kopts);
  centroids_ = km.centroids;
  lists_.assign(options_.num_lists, {});
  for (std::size_t i = 0; i < n; ++i) {
    auto& e = entries_.at(ids[i]);
    e.list = km.assignments[i];
    lists_[e.list].push_back({ids[i], e.row});
  }
  trained_ = true;
  trained_at_size_ = n;
}

void IvfIndex::ScanList(std::span<const float> query,
                        const std::vector<ListEntry>& candidates,
                        double min_similarity,
                        std::vector<SearchResult>& results,
                        std::vector<const float*>& row_ptrs,
                        std::vector<float>& sims) const {
  const std::size_t n = candidates.size();
  if (n == 0) return;
  row_ptrs.resize(n);
  sims.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    row_ptrs[i] = vectors_.Row(candidates[i].row);
  }
  simd::DotRows(query, row_ptrs.data(), n, sims.data());
  for (std::size_t i = 0; i < n; ++i) {
    const double sim = static_cast<double>(sims[i]);
    if (sim >= min_similarity) results.push_back({candidates[i].id, sim});
  }
}

std::vector<SearchResult> IvfIndex::Search(std::span<const float> query,
                                           std::size_t k,
                                           double min_similarity) const {
  CHECK_EQ(query.size(), dimension_);
  if (k == 0 || entries_.empty()) return {};

  std::vector<SearchResult> results;
  std::vector<const float*> row_ptrs;
  std::vector<float> sims;
  std::uint64_t comps = 0;

  if (!trained_) {
    // Warm-up: exact scan, still batched through the kernel layer.
    std::vector<ListEntry> all;
    all.reserve(entries_.size());
    for (const auto& [id, e] : entries_) all.push_back({id, e.row});
    ScanList(query, all, min_similarity, results, row_ptrs, sims);
    comps += all.size();
  } else {
    // Rank lists by centroid distance (one batched kernel call over the
    // contiguous centroid block), probe the closest nprobe.
    std::vector<float> cdists(options_.num_lists);
    simd::L2SqBatch(query, centroids_.data(), options_.num_lists, dimension_,
                    cdists.data());
    comps += options_.num_lists;
    std::vector<std::pair<double, std::size_t>> ranked;
    ranked.reserve(options_.num_lists);
    for (std::size_t c = 0; c < options_.num_lists; ++c) {
      ranked.emplace_back(static_cast<double>(cdists[c]), c);
    }
    const std::size_t probes = std::min(options_.num_probes, ranked.size());
    std::partial_sort(ranked.begin(),
                      ranked.begin() + static_cast<std::ptrdiff_t>(probes),
                      ranked.end());
    for (std::size_t p = 0; p < probes; ++p) {
      const auto& list = lists_[ranked[p].second];
      ScanList(query, list, min_similarity, results, row_ptrs, sims);
      comps += list.size();
    }
  }
  // comps tracks scan work only; the k-bounded rerank is excluded.
  distcomp_.fetch_add(comps, std::memory_order_relaxed);
  return FinalizeResults(query, std::move(results), k, min_similarity);
}

std::vector<std::vector<SearchResult>> IvfIndex::SearchBatch(
    const float* queries, std::size_t nq, std::size_t qstride, std::size_t k,
    double min_similarity) const {
  CHECK_GE(qstride, dimension_);
  std::vector<std::vector<SearchResult>> out(nq);
  if (k == 0 || entries_.empty() || nq == 0) return out;

  std::vector<std::vector<SearchResult>> cand(nq);
  std::vector<const float*> row_ptrs;
  std::vector<float> sims;
  std::uint64_t comps = 0;

  if (!trained_) {
    // Warm-up: one exact multi-query scan over the whole corpus.
    std::vector<ListEntry> all;
    all.reserve(entries_.size());
    for (const auto& [id, e] : entries_) all.push_back({id, e.row});
    const std::size_t n = all.size();
    row_ptrs.resize(n);
    for (std::size_t i = 0; i < n; ++i) row_ptrs[i] = vectors_.Row(all[i].row);
    sims.resize(nq * n);
    simd::DotRowsMq(queries, nq, qstride, row_ptrs.data(), n, dimension_,
                    sims.data());
    for (std::size_t q = 0; q < nq; ++q) {
      for (std::size_t i = 0; i < n; ++i) {
        const double sim = static_cast<double>(sims[q * n + i]);
        if (sim >= min_similarity) cand[q].push_back({all[i].id, sim});
      }
    }
    comps += nq * n;
  } else {
    // Rank centroids for every query in one multi-query pass, then invert
    // the probe sets so each inverted list is scanned ONCE for all the
    // queries that probe it.
    const std::size_t nlists = options_.num_lists;
    std::vector<float> cdists(nq * nlists);
    simd::L2SqBatchMq(queries, nq, qstride, centroids_.data(), nlists,
                      dimension_, dimension_, cdists.data());
    comps += nq * nlists;
    const std::size_t probes = std::min(options_.num_probes, nlists);
    std::vector<std::vector<std::uint32_t>> probers(nlists);
    std::vector<std::pair<double, std::size_t>> ranked(nlists);
    for (std::size_t q = 0; q < nq; ++q) {
      for (std::size_t c = 0; c < nlists; ++c) {
        ranked[c] = {static_cast<double>(cdists[q * nlists + c]), c};
      }
      std::partial_sort(ranked.begin(),
                        ranked.begin() + static_cast<std::ptrdiff_t>(probes),
                        ranked.end());
      for (std::size_t p = 0; p < probes; ++p) {
        probers[ranked[p].second].push_back(static_cast<std::uint32_t>(q));
      }
    }
    std::vector<float> qbuf;
    for (std::size_t l = 0; l < nlists; ++l) {
      if (probers[l].empty() || lists_[l].empty()) continue;
      const auto& list = lists_[l];
      const std::size_t pq = probers[l].size();
      const std::size_t n = list.size();
      qbuf.resize(pq * dimension_);
      for (std::size_t j = 0; j < pq; ++j) {
        std::copy_n(queries + probers[l][j] * qstride, dimension_,
                    qbuf.begin() + static_cast<std::ptrdiff_t>(j * dimension_));
      }
      row_ptrs.resize(n);
      for (std::size_t i = 0; i < n; ++i) {
        row_ptrs[i] = vectors_.Row(list[i].row);
      }
      sims.resize(pq * n);
      simd::DotRowsMq(qbuf.data(), pq, dimension_, row_ptrs.data(), n,
                      dimension_, sims.data());
      for (std::size_t j = 0; j < pq; ++j) {
        auto& qc = cand[probers[l][j]];
        for (std::size_t i = 0; i < n; ++i) {
          const double sim = static_cast<double>(sims[j * n + i]);
          if (sim >= min_similarity) qc.push_back({list[i].id, sim});
        }
      }
      comps += pq * n;
    }
  }

  // Candidate sets match the sequential probes element-for-element (only
  // the append order differs), and FinalizeResults selects by the total
  // order (similarity desc, id asc) — so out[q] == Search(query q).
  for (std::size_t q = 0; q < nq; ++q) {
    out[q] = FinalizeResults(
        std::span<const float>(queries + q * qstride, dimension_),
        std::move(cand[q]), k, min_similarity);
  }
  distcomp_.fetch_add(comps, std::memory_order_relaxed);
  return out;
}

std::vector<SearchResult> IvfIndex::FinalizeResults(
    std::span<const float> query, std::vector<SearchResult> results,
    std::size_t k, double min_similarity) const {
  // Two-phase ranking (see FlatIndex::Search): float batch scores select a
  // pool, the scalar double-precision kernel reranks it, ties break by id —
  // the final top-k is identical across SIMD variants.
  const auto ranked = [](const SearchResult& a, const SearchResult& b) {
    return a.similarity != b.similarity ? a.similarity > b.similarity
                                        : a.id < b.id;
  };
  const std::size_t pool =
      std::min(results.size(), k + std::max<std::size_t>(k, 8));
  std::partial_sort(results.begin(),
                    results.begin() + static_cast<std::ptrdiff_t>(pool),
                    results.end(), ranked);
  results.resize(pool);
  const auto& exact = simd::KernelsFor(simd::Variant::kScalar);
  for (auto& r : results) {
    const auto row = vectors_.RowSpan(entries_.at(r.id).row);
    r.similarity = exact.dot(query.data(), row.data(), dimension_);
  }
  std::erase_if(results, [min_similarity](const SearchResult& r) {
    return r.similarity < min_similarity;
  });
  std::sort(results.begin(), results.end(), ranked);
  results.resize(std::min(k, results.size()));
  return results;
}

bool IvfIndex::Contains(VectorId id) const { return entries_.contains(id); }

std::optional<Vector> IvfIndex::Get(VectorId id) const {
  const auto it = entries_.find(id);
  if (it == entries_.end()) return std::nullopt;
  const auto row = vectors_.RowSpan(it->second.row);
  return Vector(row.begin(), row.end());
}

}  // namespace cortex
