#include "ann/ivf_index.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace cortex {

IvfIndex::IvfIndex(std::size_t dimension, IvfOptions options)
    : dimension_(dimension), options_(options) {
  CHECK_GT(dimension, 0u);
  CHECK_GT(options.num_lists, 0u);
  options_.num_probes = std::min(options_.num_probes, options_.num_lists);
}

void IvfIndex::Add(VectorId id, std::span<const float> vector) {
  CHECK_EQ(vector.size(), dimension_);
  auto [it, inserted] = entries_.try_emplace(id);
  if (!inserted && trained_) {
    // Replacing: remove from its current list first.
    auto& list = lists_[it->second.list];
    list.erase(std::remove(list.begin(), list.end(), id), list.end());
  }
  it->second.vector.assign(vector.begin(), vector.end());
  if (trained_) {
    AssignToList(id, it->second);
  }
  MaybeTrain();
}

void IvfIndex::AssignToList(VectorId id, Entry& e) {
  e.list = NearestCentroid(e.vector, centroids_, options_.num_lists,
                           dimension_);
  lists_[e.list].push_back(id);
}

bool IvfIndex::Remove(VectorId id) {
  const auto it = entries_.find(id);
  if (it == entries_.end()) return false;
  if (trained_) {
    auto& list = lists_[it->second.list];
    list.erase(std::remove(list.begin(), list.end(), id), list.end());
  }
  entries_.erase(it);
  return true;
}

void IvfIndex::MaybeTrain() {
  const std::size_t train_threshold =
      std::max(options_.num_lists * options_.train_points_per_list,
               2 * options_.num_lists);
  if (!trained_) {
    if (entries_.size() >= train_threshold) Train();
    return;
  }
  // Retrain when the corpus drifted far from what the quantiser saw.
  const auto size = entries_.size();
  if (size >= train_threshold &&
      (size > trained_at_size_ * options_.retrain_growth_factor ||
       size * options_.retrain_growth_factor < trained_at_size_)) {
    Train();
  }
}

void IvfIndex::Train() {
  const std::size_t n = entries_.size();
  if (n < options_.num_lists) return;
  std::vector<float> data;
  data.reserve(n * dimension_);
  std::vector<VectorId> ids;
  ids.reserve(n);
  for (const auto& [id, e] : entries_) {
    data.insert(data.end(), e.vector.begin(), e.vector.end());
    ids.push_back(id);
  }
  KMeansOptions kopts;
  kopts.seed = options_.seed;
  const auto km =
      KMeans(data, n, dimension_, options_.num_lists, kopts);
  centroids_ = km.centroids;
  lists_.assign(options_.num_lists, {});
  for (std::size_t i = 0; i < n; ++i) {
    auto& e = entries_.at(ids[i]);
    e.list = km.assignments[i];
    lists_[e.list].push_back(ids[i]);
  }
  trained_ = true;
  trained_at_size_ = n;
}

std::vector<SearchResult> IvfIndex::Search(std::span<const float> query,
                                           std::size_t k,
                                           double min_similarity) const {
  CHECK_EQ(query.size(), dimension_);
  if (k == 0 || entries_.empty()) return {};

  std::vector<SearchResult> results;
  auto scan = [&](VectorId id, const Vector& v) {
    distcomp_.fetch_add(1, std::memory_order_relaxed);
    const double sim = CosineSimilarity(query, v);
    if (sim >= min_similarity) results.push_back({id, sim});
  };

  if (!trained_) {
    // Warm-up: exact scan.
    for (const auto& [id, e] : entries_) scan(id, e.vector);
  } else {
    // Rank lists by centroid distance, probe the closest nprobe.
    std::vector<std::pair<double, std::size_t>> ranked;
    ranked.reserve(options_.num_lists);
    for (std::size_t c = 0; c < options_.num_lists; ++c) {
      distcomp_.fetch_add(1, std::memory_order_relaxed);
      ranked.emplace_back(
          L2DistanceSquared(query,
                            std::span<const float>(
                                centroids_.data() + c * dimension_,
                                dimension_)),
          c);
    }
    const std::size_t probes = std::min(options_.num_probes, ranked.size());
    std::partial_sort(ranked.begin(),
                      ranked.begin() + static_cast<std::ptrdiff_t>(probes),
                      ranked.end());
    for (std::size_t p = 0; p < probes; ++p) {
      for (VectorId id : lists_[ranked[p].second]) {
        scan(id, entries_.at(id).vector);
      }
    }
  }

  const std::size_t top = std::min(k, results.size());
  std::partial_sort(results.begin(),
                    results.begin() + static_cast<std::ptrdiff_t>(top),
                    results.end(), [](const auto& a, const auto& b) {
                      return a.similarity > b.similarity;
                    });
  results.resize(top);
  return results;
}

bool IvfIndex::Contains(VectorId id) const { return entries_.contains(id); }

std::optional<Vector> IvfIndex::Get(VectorId id) const {
  const auto it = entries_.find(id);
  if (it == entries_.end()) return std::nullopt;
  return it->second.vector;
}

}  // namespace cortex
