#include "embedding/simd_kernels.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string_view>

#include "util/check.h"

// The one sanctioned home for CPU intrinsics (cortex_lint: simd-intrinsics).
#if (defined(__x86_64__) || defined(__amd64__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define CORTEX_SIMD_HAVE_X86 1
// GCC 12's maskless AVX-512 intrinsics (and even _mm512_castps512_ps256)
// pass an uninitialized __m256 as the masked-builtin pass-through operand,
// tripping -Werror=uninitialized when inlined (GCC PR105593).  The value is
// fully overwritten (mask = -1), so the warning is a false positive;
// suppress it for the header only.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#include <immintrin.h>
#pragma GCC diagnostic pop
#endif
#if defined(__aarch64__)
#define CORTEX_SIMD_HAVE_NEON 1
#include <arm_neon.h>
#endif

namespace cortex::simd {
namespace {

// Prefetch the head of a row (the hardware prefetcher streams the rest of a
// long row once the access pattern is established).
inline void PrefetchBytes(const void* p, std::size_t row_bytes) noexcept {
  const std::size_t bytes = std::min<std::size_t>(row_bytes, std::size_t{256});
  const char* c = static_cast<const char*>(p);
  for (std::size_t off = 0; off < bytes; off += 64) {
    __builtin_prefetch(c + off);
  }
}

inline void PrefetchRow(const float* p, std::size_t dim) noexcept {
  PrefetchBytes(p, dim * sizeof(float));
}

// ---------------------------------------------------------------------------
// Scalar reference kernels.
//
// Bit-identical to the historical vector_ops loops (double accumulation in
// index order), so CORTEX_SIMD=scalar reproduces pre-SIMD results exactly.

double DotScalar(const float* a, const float* b, std::size_t dim) {
  double acc = 0.0;
  for (std::size_t i = 0; i < dim; ++i) {
    acc += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return acc;
}

double L2SqScalar(const float* a, const float* b, std::size_t dim) {
  double acc = 0.0;
  for (std::size_t i = 0; i < dim; ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    acc += d * d;
  }
  return acc;
}

void DotBatchScalar(const float* query, const float* rows, std::size_t n,
                    std::size_t stride, std::size_t dim, float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<float>(DotScalar(query, rows + i * stride, dim));
  }
}

void DotRowsScalar(const float* query, const float* const* rows,
                   std::size_t n, std::size_t dim, float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<float>(DotScalar(query, rows[i], dim));
  }
}

void L2SqBatchScalar(const float* query, const float* rows, std::size_t n,
                     std::size_t stride, std::size_t dim, float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<float>(L2SqScalar(query, rows + i * stride, dim));
  }
}

// Exact i32 dot of two int8 rows.  q, r in [-127, 127], so each product
// fits 14 bits and the sum stays far below 2^31 for any realistic dim.
inline std::int32_t DotI8SumScalar(const std::int8_t* a, const std::int8_t* b,
                                   std::size_t dim) noexcept {
  std::int32_t acc = 0;
  for (std::size_t i = 0; i < dim; ++i) {
    acc += static_cast<std::int32_t>(a[i]) * static_cast<std::int32_t>(b[i]);
  }
  return acc;
}

// The one true descale expression: every variant computes the integer sum
// exactly, then evaluates THIS — so int8 scores are bit-identical.
inline float DescaleI8(float query_scale, float row_scale,
                       std::int32_t sum) noexcept {
  return (query_scale * row_scale) * static_cast<float>(sum);
}

void DotBatchI8Scalar(const std::int8_t* query, float query_scale,
                      const std::int8_t* rows, const float* scales,
                      std::size_t n, std::size_t stride, std::size_t dim,
                      float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = DescaleI8(query_scale, scales[i],
                       DotI8SumScalar(query, rows + i * stride, dim));
  }
}

void DotRowsI8Scalar(const std::int8_t* query, float query_scale,
                     const std::int8_t* const* rows, const float* scales,
                     std::size_t n, std::size_t dim, float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] =
        DescaleI8(query_scale, scales[i], DotI8SumScalar(query, rows[i], dim));
  }
}

double DotF16Scalar(const float* q, const std::uint16_t* r,
                    std::size_t dim) noexcept {
  double acc = 0.0;
  for (std::size_t i = 0; i < dim; ++i) {
    acc += static_cast<double>(q[i]) * static_cast<double>(F16ToF32(r[i]));
  }
  return acc;
}

void DotBatchF16Scalar(const float* query, const std::uint16_t* rows,
                       std::size_t n, std::size_t stride, std::size_t dim,
                       float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<float>(DotF16Scalar(query, rows + i * stride, dim));
  }
}

void DotRowsF16Scalar(const float* query, const std::uint16_t* const* rows,
                      std::size_t n, std::size_t dim, float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<float>(DotF16Scalar(query, rows[i], dim));
  }
}

// Multi-query scalar kernels: rows outer, queries inner — the same loop
// interchange every variant applies, scoring with the single-query
// primitive so each (query, row) score matches the sequential kernel
// bit-for-bit.
void DotBatchMqScalar(const float* queries, std::size_t nq,
                      std::size_t qstride, const float* rows, std::size_t n,
                      std::size_t stride, std::size_t dim, float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    const float* row = rows + i * stride;
    for (std::size_t q = 0; q < nq; ++q) {
      out[q * n + i] =
          static_cast<float>(DotScalar(queries + q * qstride, row, dim));
    }
  }
}

void L2SqBatchMqScalar(const float* queries, std::size_t nq,
                       std::size_t qstride, const float* rows, std::size_t n,
                       std::size_t stride, std::size_t dim, float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    const float* row = rows + i * stride;
    for (std::size_t q = 0; q < nq; ++q) {
      out[q * n + i] =
          static_cast<float>(L2SqScalar(queries + q * qstride, row, dim));
    }
  }
}

void DotRowsMqScalar(const float* queries, std::size_t nq,
                     std::size_t qstride, const float* const* rows,
                     std::size_t n, std::size_t dim, float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t q = 0; q < nq; ++q) {
      out[q * n + i] =
          static_cast<float>(DotScalar(queries + q * qstride, rows[i], dim));
    }
  }
}

void DotRowsI8MqScalar(const std::int8_t* queries, const float* query_scales,
                       std::size_t nq, std::size_t qstride,
                       const std::int8_t* const* rows, const float* scales,
                       std::size_t n, std::size_t dim, float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t q = 0; q < nq; ++q) {
      out[q * n + i] =
          DescaleI8(query_scales[q], scales[i],
                    DotI8SumScalar(queries + q * qstride, rows[i], dim));
    }
  }
}

void DotRowsF16MqScalar(const float* queries, std::size_t nq,
                        std::size_t qstride, const std::uint16_t* const* rows,
                        std::size_t n, std::size_t dim, float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t q = 0; q < nq; ++q) {
      out[q * n + i] = static_cast<float>(
          DotF16Scalar(queries + q * qstride, rows[i], dim));
    }
  }
}

constexpr KernelSet kScalarKernels = {
    DotScalar,        L2SqScalar,      DotBatchScalar,
    DotRowsScalar,    L2SqBatchScalar, DotBatchI8Scalar,
    DotRowsI8Scalar,  DotBatchF16Scalar, DotRowsF16Scalar,
    DotBatchMqScalar, L2SqBatchMqScalar, DotRowsMqScalar,
    DotRowsI8MqScalar, DotRowsF16MqScalar,
};

// ---------------------------------------------------------------------------
// AVX2 + FMA (x86-64).  Compiled via function-level target attributes so the
// binary needs no global -mavx2; the bodies execute only after the runtime
// CPU check passes.  Unaligned loads throughout — correctness never depends
// on slab alignment (alignment is a performance property).

#if CORTEX_SIMD_HAVE_X86

#define CORTEX_TARGET_AVX2 __attribute__((target("avx2,fma")))
// fp16 row decode needs VCVTPH2PS; F16C predates AVX2 on every x86 core,
// and VariantSupported checks it at runtime anyway.
#define CORTEX_TARGET_AVX2F16 __attribute__((target("avx2,fma,f16c")))
#define CORTEX_TARGET_AVX512 __attribute__((target("avx512f")))

CORTEX_TARGET_AVX2 inline float HSum8(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  lo = _mm_add_ps(lo, hi);
  __m128 shuf = _mm_movehdup_ps(lo);
  __m128 sums = _mm_add_ps(lo, shuf);
  shuf = _mm_movehl_ps(shuf, sums);
  sums = _mm_add_ss(sums, shuf);
  return _mm_cvtss_f32(sums);
}

CORTEX_TARGET_AVX2 double DotAvx2(const float* a, const float* b,
                                  std::size_t dim) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= dim; i += 16) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8),
                           _mm256_loadu_ps(b + i + 8), acc1);
  }
  for (; i + 8 <= dim; i += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
  }
  float total = HSum8(_mm256_add_ps(acc0, acc1));
  for (; i < dim; ++i) total += a[i] * b[i];
  return static_cast<double>(total);
}

CORTEX_TARGET_AVX2 double L2SqAvx2(const float* a, const float* b,
                                   std::size_t dim) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= dim; i += 16) {
    const __m256 d0 =
        _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    const __m256 d1 = _mm256_sub_ps(_mm256_loadu_ps(a + i + 8),
                                    _mm256_loadu_ps(b + i + 8));
    acc0 = _mm256_fmadd_ps(d0, d0, acc0);
    acc1 = _mm256_fmadd_ps(d1, d1, acc1);
  }
  for (; i + 8 <= dim; i += 8) {
    const __m256 d =
        _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    acc0 = _mm256_fmadd_ps(d, d, acc0);
  }
  float total = HSum8(_mm256_add_ps(acc0, acc1));
  for (; i < dim; ++i) {
    const float d = a[i] - b[i];
    total += d * d;
  }
  return static_cast<double>(total);
}

// 4-row register blocking: one query load feeds four row FMAs, quadrupling
// arithmetic per byte of query traffic.
CORTEX_TARGET_AVX2 void Dot4Avx2(const float* q, const float* r0,
                                 const float* r1, const float* r2,
                                 const float* r3, std::size_t dim,
                                 float* out) {
  __m256 a0 = _mm256_setzero_ps();
  __m256 a1 = _mm256_setzero_ps();
  __m256 a2 = _mm256_setzero_ps();
  __m256 a3 = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= dim; i += 8) {
    const __m256 qv = _mm256_loadu_ps(q + i);
    a0 = _mm256_fmadd_ps(qv, _mm256_loadu_ps(r0 + i), a0);
    a1 = _mm256_fmadd_ps(qv, _mm256_loadu_ps(r1 + i), a1);
    a2 = _mm256_fmadd_ps(qv, _mm256_loadu_ps(r2 + i), a2);
    a3 = _mm256_fmadd_ps(qv, _mm256_loadu_ps(r3 + i), a3);
  }
  float t0 = HSum8(a0), t1 = HSum8(a1), t2 = HSum8(a2), t3 = HSum8(a3);
  for (; i < dim; ++i) {
    const float qq = q[i];
    t0 += qq * r0[i];
    t1 += qq * r1[i];
    t2 += qq * r2[i];
    t3 += qq * r3[i];
  }
  out[0] = t0;
  out[1] = t1;
  out[2] = t2;
  out[3] = t3;
}

void DotBatchAvx2(const float* query, const float* rows, std::size_t n,
                  std::size_t stride, std::size_t dim, float* out) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    if (i + 8 <= n) PrefetchRow(rows + (i + 4) * stride, 4 * stride);
    const float* base = rows + i * stride;
    Dot4Avx2(query, base, base + stride, base + 2 * stride, base + 3 * stride,
             dim, out + i);
  }
  for (; i < n; ++i) {
    out[i] = static_cast<float>(DotAvx2(query, rows + i * stride, dim));
  }
}

void DotRowsAvx2(const float* query, const float* const* rows, std::size_t n,
                 std::size_t dim, float* out) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    for (std::size_t p = i + 4; p < std::min(i + 8, n); ++p) {
      PrefetchRow(rows[p], dim);
    }
    Dot4Avx2(query, rows[i], rows[i + 1], rows[i + 2], rows[i + 3], dim,
             out + i);
  }
  for (; i < n; ++i) {
    out[i] = static_cast<float>(DotAvx2(query, rows[i], dim));
  }
}

void L2SqBatchAvx2(const float* query, const float* rows, std::size_t n,
                   std::size_t stride, std::size_t dim, float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    if (i + 1 < n) PrefetchRow(rows + (i + 1) * stride, dim);
    out[i] = static_cast<float>(L2SqAvx2(query, rows + i * stride, dim));
  }
}

// Integer int8 dot: widen to i16, VPMADDWD pairs into i32 lanes.  Exact,
// so it agrees bit-for-bit with DotI8SumScalar.
CORTEX_TARGET_AVX2 inline std::int32_t HSumI32x8(__m256i v) {
  __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  lo = _mm_add_epi32(lo, hi);
  lo = _mm_add_epi32(lo, _mm_shuffle_epi32(lo, _MM_SHUFFLE(1, 0, 3, 2)));
  lo = _mm_add_epi32(lo, _mm_shuffle_epi32(lo, _MM_SHUFFLE(2, 3, 0, 1)));
  return _mm_cvtsi128_si32(lo);
}

CORTEX_TARGET_AVX2 std::int32_t DotI8SumAvx2(const std::int8_t* a,
                                             const std::int8_t* b,
                                             std::size_t dim) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 16 <= dim; i += 16) {
    const __m256i av = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i)));
    const __m256i bv = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i)));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(av, bv));
  }
  std::int32_t sum = HSumI32x8(acc);
  for (; i < dim; ++i) {
    sum += static_cast<std::int32_t>(a[i]) * static_cast<std::int32_t>(b[i]);
  }
  return sum;
}

void DotBatchI8Avx2(const std::int8_t* query, float query_scale,
                    const std::int8_t* rows, const float* scales,
                    std::size_t n, std::size_t stride, std::size_t dim,
                    float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    if (i + 1 < n) PrefetchBytes(rows + (i + 1) * stride, dim);
    out[i] = DescaleI8(query_scale, scales[i],
                       DotI8SumAvx2(query, rows + i * stride, dim));
  }
}

void DotRowsI8Avx2(const std::int8_t* query, float query_scale,
                   const std::int8_t* const* rows, const float* scales,
                   std::size_t n, std::size_t dim, float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    if (i + 1 < n) PrefetchBytes(rows[i + 1], dim);
    out[i] =
        DescaleI8(query_scale, scales[i], DotI8SumAvx2(query, rows[i], dim));
  }
}

CORTEX_TARGET_AVX2F16 float DotF16Avx2(const float* q, const std::uint16_t* r,
                                       std::size_t dim) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= dim; i += 16) {
    const __m256 r0 = _mm256_cvtph_ps(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(r + i)));
    const __m256 r1 = _mm256_cvtph_ps(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(r + i + 8)));
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(q + i), r0, acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(q + i + 8), r1, acc1);
  }
  for (; i + 8 <= dim; i += 8) {
    const __m256 rv = _mm256_cvtph_ps(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(r + i)));
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(q + i), rv, acc0);
  }
  float total = HSum8(_mm256_add_ps(acc0, acc1));
  for (; i < dim; ++i) total += q[i] * F16ToF32(r[i]);
  return total;
}

void DotBatchF16Avx2(const float* query, const std::uint16_t* rows,
                     std::size_t n, std::size_t stride, std::size_t dim,
                     float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    if (i + 1 < n) PrefetchBytes(rows + (i + 1) * stride, dim * 2);
    out[i] = DotF16Avx2(query, rows + i * stride, dim);
  }
}

void DotRowsF16Avx2(const float* query, const std::uint16_t* const* rows,
                    std::size_t n, std::size_t dim, float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    if (i + 1 < n) PrefetchBytes(rows[i + 1], dim * 2);
    out[i] = DotF16Avx2(query, rows[i], dim);
  }
}

// Multi-query AVX2: identical row-block boundaries to the single-query
// kernels, with the query loop moved inside the block so a 4-row tile is
// read from memory once per batch and stays L1-resident across queries.
void DotBatchMqAvx2(const float* queries, std::size_t nq, std::size_t qstride,
                    const float* rows, std::size_t n, std::size_t stride,
                    std::size_t dim, float* out) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    if (i + 8 <= n) PrefetchRow(rows + (i + 4) * stride, 4 * stride);
    const float* base = rows + i * stride;
    for (std::size_t q = 0; q < nq; ++q) {
      Dot4Avx2(queries + q * qstride, base, base + stride, base + 2 * stride,
               base + 3 * stride, dim, out + q * n + i);
    }
  }
  for (; i < n; ++i) {
    const float* row = rows + i * stride;
    for (std::size_t q = 0; q < nq; ++q) {
      out[q * n + i] =
          static_cast<float>(DotAvx2(queries + q * qstride, row, dim));
    }
  }
}

void L2SqBatchMqAvx2(const float* queries, std::size_t nq,
                     std::size_t qstride, const float* rows, std::size_t n,
                     std::size_t stride, std::size_t dim, float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    if (i + 1 < n) PrefetchRow(rows + (i + 1) * stride, dim);
    const float* row = rows + i * stride;
    for (std::size_t q = 0; q < nq; ++q) {
      out[q * n + i] =
          static_cast<float>(L2SqAvx2(queries + q * qstride, row, dim));
    }
  }
}

void DotRowsMqAvx2(const float* queries, std::size_t nq, std::size_t qstride,
                   const float* const* rows, std::size_t n, std::size_t dim,
                   float* out) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    for (std::size_t p = i + 4; p < std::min(i + 8, n); ++p) {
      PrefetchRow(rows[p], dim);
    }
    for (std::size_t q = 0; q < nq; ++q) {
      Dot4Avx2(queries + q * qstride, rows[i], rows[i + 1], rows[i + 2],
               rows[i + 3], dim, out + q * n + i);
    }
  }
  for (; i < n; ++i) {
    for (std::size_t q = 0; q < nq; ++q) {
      out[q * n + i] =
          static_cast<float>(DotAvx2(queries + q * qstride, rows[i], dim));
    }
  }
}

void DotRowsI8MqAvx2(const std::int8_t* queries, const float* query_scales,
                     std::size_t nq, std::size_t qstride,
                     const std::int8_t* const* rows, const float* scales,
                     std::size_t n, std::size_t dim, float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    if (i + 1 < n) PrefetchBytes(rows[i + 1], dim);
    for (std::size_t q = 0; q < nq; ++q) {
      out[q * n + i] =
          DescaleI8(query_scales[q], scales[i],
                    DotI8SumAvx2(queries + q * qstride, rows[i], dim));
    }
  }
}

void DotRowsF16MqAvx2(const float* queries, std::size_t nq,
                      std::size_t qstride, const std::uint16_t* const* rows,
                      std::size_t n, std::size_t dim, float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    if (i + 1 < n) PrefetchBytes(rows[i + 1], dim * 2);
    for (std::size_t q = 0; q < nq; ++q) {
      out[q * n + i] = DotF16Avx2(queries + q * qstride, rows[i], dim);
    }
  }
}

constexpr KernelSet kAvx2Kernels = {
    DotAvx2,        L2SqAvx2,      DotBatchAvx2,
    DotRowsAvx2,    L2SqBatchAvx2, DotBatchI8Avx2,
    DotRowsI8Avx2,  DotBatchF16Avx2, DotRowsF16Avx2,
    DotBatchMqAvx2, L2SqBatchMqAvx2, DotRowsMqAvx2,
    DotRowsI8MqAvx2, DotRowsF16MqAvx2,
};

// ---------------------------------------------------------------------------
// AVX-512F (x86-64): 16-lane FMA, same shape as the AVX2 kernels.

CORTEX_TARGET_AVX512 inline float HSum16(__m512 v) {
  return _mm512_reduce_add_ps(v);
}

CORTEX_TARGET_AVX512 double DotAvx512(const float* a, const float* b,
                                      std::size_t dim) {
  __m512 acc0 = _mm512_setzero_ps();
  __m512 acc1 = _mm512_setzero_ps();
  std::size_t i = 0;
  for (; i + 32 <= dim; i += 32) {
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i),
                           acc0);
    acc1 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i + 16),
                           _mm512_loadu_ps(b + i + 16), acc1);
  }
  for (; i + 16 <= dim; i += 16) {
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i),
                           acc0);
  }
  float total = HSum16(_mm512_add_ps(acc0, acc1));
  for (; i < dim; ++i) total += a[i] * b[i];
  return static_cast<double>(total);
}

CORTEX_TARGET_AVX512 double L2SqAvx512(const float* a, const float* b,
                                       std::size_t dim) {
  __m512 acc = _mm512_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= dim; i += 16) {
    const __m512 d =
        _mm512_sub_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i));
    acc = _mm512_fmadd_ps(d, d, acc);
  }
  float total = HSum16(acc);
  for (; i < dim; ++i) {
    const float d = a[i] - b[i];
    total += d * d;
  }
  return static_cast<double>(total);
}

CORTEX_TARGET_AVX512 void Dot4Avx512(const float* q, const float* r0,
                                     const float* r1, const float* r2,
                                     const float* r3, std::size_t dim,
                                     float* out) {
  __m512 a0 = _mm512_setzero_ps();
  __m512 a1 = _mm512_setzero_ps();
  __m512 a2 = _mm512_setzero_ps();
  __m512 a3 = _mm512_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= dim; i += 16) {
    const __m512 qv = _mm512_loadu_ps(q + i);
    a0 = _mm512_fmadd_ps(qv, _mm512_loadu_ps(r0 + i), a0);
    a1 = _mm512_fmadd_ps(qv, _mm512_loadu_ps(r1 + i), a1);
    a2 = _mm512_fmadd_ps(qv, _mm512_loadu_ps(r2 + i), a2);
    a3 = _mm512_fmadd_ps(qv, _mm512_loadu_ps(r3 + i), a3);
  }
  float t0 = HSum16(a0);
  float t1 = HSum16(a1);
  float t2 = HSum16(a2);
  float t3 = HSum16(a3);
  for (; i < dim; ++i) {
    const float qq = q[i];
    t0 += qq * r0[i];
    t1 += qq * r1[i];
    t2 += qq * r2[i];
    t3 += qq * r3[i];
  }
  out[0] = t0;
  out[1] = t1;
  out[2] = t2;
  out[3] = t3;
}

void DotBatchAvx512(const float* query, const float* rows, std::size_t n,
                    std::size_t stride, std::size_t dim, float* out) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    if (i + 8 <= n) PrefetchRow(rows + (i + 4) * stride, 4 * stride);
    const float* base = rows + i * stride;
    Dot4Avx512(query, base, base + stride, base + 2 * stride,
               base + 3 * stride, dim, out + i);
  }
  for (; i < n; ++i) {
    out[i] = static_cast<float>(DotAvx512(query, rows + i * stride, dim));
  }
}

void DotRowsAvx512(const float* query, const float* const* rows,
                   std::size_t n, std::size_t dim, float* out) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    for (std::size_t p = i + 4; p < std::min(i + 8, n); ++p) {
      PrefetchRow(rows[p], dim);
    }
    Dot4Avx512(query, rows[i], rows[i + 1], rows[i + 2], rows[i + 3], dim,
               out + i);
  }
  for (; i < n; ++i) {
    out[i] = static_cast<float>(DotAvx512(query, rows[i], dim));
  }
}

void L2SqBatchAvx512(const float* query, const float* rows, std::size_t n,
                     std::size_t stride, std::size_t dim, float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    if (i + 1 < n) PrefetchRow(rows + (i + 1) * stride, dim);
    out[i] = static_cast<float>(L2SqAvx512(query, rows + i * stride, dim));
  }
}

// AVX512F-only (no BW/VNNI assumed): widen int8 to i32 lanes, VPMULLD,
// reduce.  Exact i32 arithmetic, so bit-identical to scalar.
CORTEX_TARGET_AVX512 std::int32_t DotI8SumAvx512(const std::int8_t* a,
                                                 const std::int8_t* b,
                                                 std::size_t dim) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 16 <= dim; i += 16) {
    const __m512i av = _mm512_cvtepi8_epi32(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i)));
    const __m512i bv = _mm512_cvtepi8_epi32(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i)));
    acc = _mm512_add_epi32(acc, _mm512_mullo_epi32(av, bv));
  }
  std::int32_t sum = static_cast<std::int32_t>(_mm512_reduce_add_epi32(acc));
  for (; i < dim; ++i) {
    sum += static_cast<std::int32_t>(a[i]) * static_cast<std::int32_t>(b[i]);
  }
  return sum;
}

void DotBatchI8Avx512(const std::int8_t* query, float query_scale,
                      const std::int8_t* rows, const float* scales,
                      std::size_t n, std::size_t stride, std::size_t dim,
                      float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    if (i + 1 < n) PrefetchBytes(rows + (i + 1) * stride, dim);
    out[i] = DescaleI8(query_scale, scales[i],
                       DotI8SumAvx512(query, rows + i * stride, dim));
  }
}

void DotRowsI8Avx512(const std::int8_t* query, float query_scale,
                     const std::int8_t* const* rows, const float* scales,
                     std::size_t n, std::size_t dim, float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    if (i + 1 < n) PrefetchBytes(rows[i + 1], dim);
    out[i] =
        DescaleI8(query_scale, scales[i], DotI8SumAvx512(query, rows[i], dim));
  }
}

CORTEX_TARGET_AVX512 float DotF16Avx512(const float* q,
                                        const std::uint16_t* r,
                                        std::size_t dim) {
  __m512 acc = _mm512_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= dim; i += 16) {
    const __m512 rv = _mm512_cvtph_ps(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(r + i)));
    acc = _mm512_fmadd_ps(_mm512_loadu_ps(q + i), rv, acc);
  }
  float total = HSum16(acc);
  for (; i < dim; ++i) total += q[i] * F16ToF32(r[i]);
  return total;
}

void DotBatchF16Avx512(const float* query, const std::uint16_t* rows,
                       std::size_t n, std::size_t stride, std::size_t dim,
                       float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    if (i + 1 < n) PrefetchBytes(rows + (i + 1) * stride, dim * 2);
    out[i] = DotF16Avx512(query, rows + i * stride, dim);
  }
}

void DotRowsF16Avx512(const float* query, const std::uint16_t* const* rows,
                      std::size_t n, std::size_t dim, float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    if (i + 1 < n) PrefetchBytes(rows[i + 1], dim * 2);
    out[i] = DotF16Avx512(query, rows[i], dim);
  }
}

// Multi-query AVX-512: same interchange as the AVX2 mq kernels.
void DotBatchMqAvx512(const float* queries, std::size_t nq,
                      std::size_t qstride, const float* rows, std::size_t n,
                      std::size_t stride, std::size_t dim, float* out) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    if (i + 8 <= n) PrefetchRow(rows + (i + 4) * stride, 4 * stride);
    const float* base = rows + i * stride;
    for (std::size_t q = 0; q < nq; ++q) {
      Dot4Avx512(queries + q * qstride, base, base + stride,
                 base + 2 * stride, base + 3 * stride, dim, out + q * n + i);
    }
  }
  for (; i < n; ++i) {
    const float* row = rows + i * stride;
    for (std::size_t q = 0; q < nq; ++q) {
      out[q * n + i] =
          static_cast<float>(DotAvx512(queries + q * qstride, row, dim));
    }
  }
}

void L2SqBatchMqAvx512(const float* queries, std::size_t nq,
                       std::size_t qstride, const float* rows, std::size_t n,
                       std::size_t stride, std::size_t dim, float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    if (i + 1 < n) PrefetchRow(rows + (i + 1) * stride, dim);
    const float* row = rows + i * stride;
    for (std::size_t q = 0; q < nq; ++q) {
      out[q * n + i] =
          static_cast<float>(L2SqAvx512(queries + q * qstride, row, dim));
    }
  }
}

void DotRowsMqAvx512(const float* queries, std::size_t nq,
                     std::size_t qstride, const float* const* rows,
                     std::size_t n, std::size_t dim, float* out) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    for (std::size_t p = i + 4; p < std::min(i + 8, n); ++p) {
      PrefetchRow(rows[p], dim);
    }
    for (std::size_t q = 0; q < nq; ++q) {
      Dot4Avx512(queries + q * qstride, rows[i], rows[i + 1], rows[i + 2],
                 rows[i + 3], dim, out + q * n + i);
    }
  }
  for (; i < n; ++i) {
    for (std::size_t q = 0; q < nq; ++q) {
      out[q * n + i] =
          static_cast<float>(DotAvx512(queries + q * qstride, rows[i], dim));
    }
  }
}

void DotRowsI8MqAvx512(const std::int8_t* queries, const float* query_scales,
                       std::size_t nq, std::size_t qstride,
                       const std::int8_t* const* rows, const float* scales,
                       std::size_t n, std::size_t dim, float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    if (i + 1 < n) PrefetchBytes(rows[i + 1], dim);
    for (std::size_t q = 0; q < nq; ++q) {
      out[q * n + i] =
          DescaleI8(query_scales[q], scales[i],
                    DotI8SumAvx512(queries + q * qstride, rows[i], dim));
    }
  }
}

void DotRowsF16MqAvx512(const float* queries, std::size_t nq,
                        std::size_t qstride, const std::uint16_t* const* rows,
                        std::size_t n, std::size_t dim, float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    if (i + 1 < n) PrefetchBytes(rows[i + 1], dim * 2);
    for (std::size_t q = 0; q < nq; ++q) {
      out[q * n + i] = DotF16Avx512(queries + q * qstride, rows[i], dim);
    }
  }
}

constexpr KernelSet kAvx512Kernels = {
    DotAvx512,        L2SqAvx512,      DotBatchAvx512,
    DotRowsAvx512,    L2SqBatchAvx512, DotBatchI8Avx512,
    DotRowsI8Avx512,  DotBatchF16Avx512, DotRowsF16Avx512,
    DotBatchMqAvx512, L2SqBatchMqAvx512, DotRowsMqAvx512,
    DotRowsI8MqAvx512, DotRowsF16MqAvx512,
};

#endif  // CORTEX_SIMD_HAVE_X86

// ---------------------------------------------------------------------------
// NEON (aarch64): baseline ISA, no runtime feature check needed.

#if CORTEX_SIMD_HAVE_NEON

double DotNeon(const float* a, const float* b, std::size_t dim) {
  float32x4_t acc0 = vdupq_n_f32(0.0f);
  float32x4_t acc1 = vdupq_n_f32(0.0f);
  std::size_t i = 0;
  for (; i + 8 <= dim; i += 8) {
    acc0 = vfmaq_f32(acc0, vld1q_f32(a + i), vld1q_f32(b + i));
    acc1 = vfmaq_f32(acc1, vld1q_f32(a + i + 4), vld1q_f32(b + i + 4));
  }
  for (; i + 4 <= dim; i += 4) {
    acc0 = vfmaq_f32(acc0, vld1q_f32(a + i), vld1q_f32(b + i));
  }
  float total = vaddvq_f32(vaddq_f32(acc0, acc1));
  for (; i < dim; ++i) total += a[i] * b[i];
  return static_cast<double>(total);
}

double L2SqNeon(const float* a, const float* b, std::size_t dim) {
  float32x4_t acc = vdupq_n_f32(0.0f);
  std::size_t i = 0;
  for (; i + 4 <= dim; i += 4) {
    const float32x4_t d = vsubq_f32(vld1q_f32(a + i), vld1q_f32(b + i));
    acc = vfmaq_f32(acc, d, d);
  }
  float total = vaddvq_f32(acc);
  for (; i < dim; ++i) {
    const float d = a[i] - b[i];
    total += d * d;
  }
  return static_cast<double>(total);
}

void Dot4Neon(const float* q, const float* r0, const float* r1,
              const float* r2, const float* r3, std::size_t dim, float* out) {
  float32x4_t a0 = vdupq_n_f32(0.0f);
  float32x4_t a1 = vdupq_n_f32(0.0f);
  float32x4_t a2 = vdupq_n_f32(0.0f);
  float32x4_t a3 = vdupq_n_f32(0.0f);
  std::size_t i = 0;
  for (; i + 4 <= dim; i += 4) {
    const float32x4_t qv = vld1q_f32(q + i);
    a0 = vfmaq_f32(a0, qv, vld1q_f32(r0 + i));
    a1 = vfmaq_f32(a1, qv, vld1q_f32(r1 + i));
    a2 = vfmaq_f32(a2, qv, vld1q_f32(r2 + i));
    a3 = vfmaq_f32(a3, qv, vld1q_f32(r3 + i));
  }
  float t0 = vaddvq_f32(a0), t1 = vaddvq_f32(a1);
  float t2 = vaddvq_f32(a2), t3 = vaddvq_f32(a3);
  for (; i < dim; ++i) {
    const float qq = q[i];
    t0 += qq * r0[i];
    t1 += qq * r1[i];
    t2 += qq * r2[i];
    t3 += qq * r3[i];
  }
  out[0] = t0;
  out[1] = t1;
  out[2] = t2;
  out[3] = t3;
}

void DotBatchNeon(const float* query, const float* rows, std::size_t n,
                  std::size_t stride, std::size_t dim, float* out) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    if (i + 8 <= n) PrefetchRow(rows + (i + 4) * stride, 4 * stride);
    const float* base = rows + i * stride;
    Dot4Neon(query, base, base + stride, base + 2 * stride, base + 3 * stride,
             dim, out + i);
  }
  for (; i < n; ++i) {
    out[i] = static_cast<float>(DotNeon(query, rows + i * stride, dim));
  }
}

void DotRowsNeon(const float* query, const float* const* rows, std::size_t n,
                 std::size_t dim, float* out) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    for (std::size_t p = i + 4; p < std::min(i + 8, n); ++p) {
      PrefetchRow(rows[p], dim);
    }
    Dot4Neon(query, rows[i], rows[i + 1], rows[i + 2], rows[i + 3], dim,
             out + i);
  }
  for (; i < n; ++i) {
    out[i] = static_cast<float>(DotNeon(query, rows[i], dim));
  }
}

void L2SqBatchNeon(const float* query, const float* rows, std::size_t n,
                   std::size_t stride, std::size_t dim, float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    if (i + 1 < n) PrefetchRow(rows + (i + 1) * stride, dim);
    out[i] = static_cast<float>(L2SqNeon(query, rows + i * stride, dim));
  }
}

// Exact int8 dot: SMULL to i16x8, pairwise-accumulate into i32x4.
std::int32_t DotI8SumNeon(const std::int8_t* a, const std::int8_t* b,
                          std::size_t dim) {
  int32x4_t acc = vdupq_n_s32(0);
  std::size_t i = 0;
  for (; i + 16 <= dim; i += 16) {
    const int8x16_t av = vld1q_s8(a + i);
    const int8x16_t bv = vld1q_s8(b + i);
    acc = vpadalq_s16(acc, vmull_s8(vget_low_s8(av), vget_low_s8(bv)));
    acc = vpadalq_s16(acc, vmull_s8(vget_high_s8(av), vget_high_s8(bv)));
  }
  std::int32_t sum = vaddvq_s32(acc);
  for (; i < dim; ++i) {
    sum += static_cast<std::int32_t>(a[i]) * static_cast<std::int32_t>(b[i]);
  }
  return sum;
}

void DotBatchI8Neon(const std::int8_t* query, float query_scale,
                    const std::int8_t* rows, const float* scales,
                    std::size_t n, std::size_t stride, std::size_t dim,
                    float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    if (i + 1 < n) PrefetchBytes(rows + (i + 1) * stride, dim);
    out[i] = DescaleI8(query_scale, scales[i],
                       DotI8SumNeon(query, rows + i * stride, dim));
  }
}

void DotRowsI8Neon(const std::int8_t* query, float query_scale,
                   const std::int8_t* const* rows, const float* scales,
                   std::size_t n, std::size_t dim, float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    if (i + 1 < n) PrefetchBytes(rows[i + 1], dim);
    out[i] =
        DescaleI8(query_scale, scales[i], DotI8SumNeon(query, rows[i], dim));
  }
}

// FCVTL is baseline ARMv8-A: decode four halves per step.
float DotF16Neon(const float* q, const std::uint16_t* r, std::size_t dim) {
  float32x4_t acc = vdupq_n_f32(0.0f);
  std::size_t i = 0;
  for (; i + 4 <= dim; i += 4) {
    const float32x4_t rv =
        vcvt_f32_f16(vreinterpret_f16_u16(vld1_u16(r + i)));
    acc = vfmaq_f32(acc, vld1q_f32(q + i), rv);
  }
  float total = vaddvq_f32(acc);
  for (; i < dim; ++i) total += q[i] * F16ToF32(r[i]);
  return total;
}

void DotBatchF16Neon(const float* query, const std::uint16_t* rows,
                     std::size_t n, std::size_t stride, std::size_t dim,
                     float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    if (i + 1 < n) PrefetchBytes(rows + (i + 1) * stride, dim * 2);
    out[i] = DotF16Neon(query, rows + i * stride, dim);
  }
}

void DotRowsF16Neon(const float* query, const std::uint16_t* const* rows,
                    std::size_t n, std::size_t dim, float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    if (i + 1 < n) PrefetchBytes(rows[i + 1], dim * 2);
    out[i] = DotF16Neon(query, rows[i], dim);
  }
}

// Multi-query NEON: same interchange as the x86 mq kernels.
void DotBatchMqNeon(const float* queries, std::size_t nq, std::size_t qstride,
                    const float* rows, std::size_t n, std::size_t stride,
                    std::size_t dim, float* out) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    if (i + 8 <= n) PrefetchRow(rows + (i + 4) * stride, 4 * stride);
    const float* base = rows + i * stride;
    for (std::size_t q = 0; q < nq; ++q) {
      Dot4Neon(queries + q * qstride, base, base + stride, base + 2 * stride,
               base + 3 * stride, dim, out + q * n + i);
    }
  }
  for (; i < n; ++i) {
    const float* row = rows + i * stride;
    for (std::size_t q = 0; q < nq; ++q) {
      out[q * n + i] =
          static_cast<float>(DotNeon(queries + q * qstride, row, dim));
    }
  }
}

void L2SqBatchMqNeon(const float* queries, std::size_t nq,
                     std::size_t qstride, const float* rows, std::size_t n,
                     std::size_t stride, std::size_t dim, float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    if (i + 1 < n) PrefetchRow(rows + (i + 1) * stride, dim);
    const float* row = rows + i * stride;
    for (std::size_t q = 0; q < nq; ++q) {
      out[q * n + i] =
          static_cast<float>(L2SqNeon(queries + q * qstride, row, dim));
    }
  }
}

void DotRowsMqNeon(const float* queries, std::size_t nq, std::size_t qstride,
                   const float* const* rows, std::size_t n, std::size_t dim,
                   float* out) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    for (std::size_t p = i + 4; p < std::min(i + 8, n); ++p) {
      PrefetchRow(rows[p], dim);
    }
    for (std::size_t q = 0; q < nq; ++q) {
      Dot4Neon(queries + q * qstride, rows[i], rows[i + 1], rows[i + 2],
               rows[i + 3], dim, out + q * n + i);
    }
  }
  for (; i < n; ++i) {
    for (std::size_t q = 0; q < nq; ++q) {
      out[q * n + i] =
          static_cast<float>(DotNeon(queries + q * qstride, rows[i], dim));
    }
  }
}

void DotRowsI8MqNeon(const std::int8_t* queries, const float* query_scales,
                     std::size_t nq, std::size_t qstride,
                     const std::int8_t* const* rows, const float* scales,
                     std::size_t n, std::size_t dim, float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    if (i + 1 < n) PrefetchBytes(rows[i + 1], dim);
    for (std::size_t q = 0; q < nq; ++q) {
      out[q * n + i] =
          DescaleI8(query_scales[q], scales[i],
                    DotI8SumNeon(queries + q * qstride, rows[i], dim));
    }
  }
}

void DotRowsF16MqNeon(const float* queries, std::size_t nq,
                      std::size_t qstride, const std::uint16_t* const* rows,
                      std::size_t n, std::size_t dim, float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    if (i + 1 < n) PrefetchBytes(rows[i + 1], dim * 2);
    for (std::size_t q = 0; q < nq; ++q) {
      out[q * n + i] = DotF16Neon(queries + q * qstride, rows[i], dim);
    }
  }
}

constexpr KernelSet kNeonKernels = {
    DotNeon,        L2SqNeon,      DotBatchNeon,
    DotRowsNeon,    L2SqBatchNeon, DotBatchI8Neon,
    DotRowsI8Neon,  DotBatchF16Neon, DotRowsF16Neon,
    DotBatchMqNeon, L2SqBatchMqNeon, DotRowsMqNeon,
    DotRowsI8MqNeon, DotRowsF16MqNeon,
};

#endif  // CORTEX_SIMD_HAVE_NEON

// ---------------------------------------------------------------------------
// Dispatch.

struct Dispatch {
  Variant variant;
  const KernelSet* kernels;
};

Dispatch ResolveFromEnv() {
  const char* env = std::getenv("CORTEX_SIMD");
  if (env == nullptr || *env == '\0') {
    const Variant best = BestSupportedVariant();
    return {best, &KernelsFor(best)};
  }
  const std::string_view want(env);
  Variant v = Variant::kScalar;
  if (want == "scalar") {
    v = Variant::kScalar;
  } else if (want == "avx2") {
    v = Variant::kAvx2;
  } else if (want == "avx512") {
    v = Variant::kAvx512;
  } else if (want == "neon") {
    v = Variant::kNeon;
  } else {
    CHECK(false) << "CORTEX_SIMD='" << want
                 << "' is not one of scalar|avx2|avx512|neon";
  }
  CHECK(VariantSupported(v))
      << "CORTEX_SIMD=" << VariantName(v)
      << " requested but not supported on this CPU/build";
  return {v, &KernelsFor(v)};
}

Dispatch& ActiveDispatch() noexcept {
  // Resolved once, on first use; ForceVariant (tests only) may swap it.
  static Dispatch dispatch = ResolveFromEnv();
  return dispatch;
}

}  // namespace

std::uint16_t F32ToF16(float f) noexcept {
  std::uint32_t x;
  std::memcpy(&x, &f, sizeof x);
  const std::uint16_t sign = static_cast<std::uint16_t>((x >> 16) & 0x8000u);
  x &= 0x7fffffffu;
  if (x >= 0x47800000u) {  // too large for a finite half, or inf/nan
    if (x > 0x7f800000u) return sign | 0x7e00u;  // quiet NaN
    return sign | 0x7c00u;                       // +-inf
  }
  if (x < 0x38800000u) {  // maps to a subnormal half (or zero)
    if (x < 0x33000000u) return sign;  // below half of the smallest subnormal
    const std::uint32_t shift = 113u - (x >> 23);
    const std::uint32_t mant = (x & 0x7fffffu) | 0x800000u;
    std::uint16_t h = static_cast<std::uint16_t>(mant >> (shift + 13));
    // Round to nearest, ties to even.
    const std::uint32_t rem = mant & ((1u << (shift + 13)) - 1u);
    const std::uint32_t half = 1u << (shift + 12);
    if (rem > half || (rem == half && (h & 1u))) ++h;
    return sign | h;
  }
  // Normal range; a mantissa round-up may carry into the exponent (and at
  // the top, into infinity) — the carry arithmetic is exactly right.
  std::uint32_t h = (((x >> 23) - 112u) << 10) | ((x >> 13) & 0x3ffu);
  const std::uint32_t rem = x & 0x1fffu;
  if (rem > 0x1000u || (rem == 0x1000u && (h & 1u))) ++h;
  return static_cast<std::uint16_t>(sign | h);
}

float F16ToF32(std::uint16_t h) noexcept {
  const float sign = (h & 0x8000u) ? -1.0f : 1.0f;
  const std::uint32_t exp = (h >> 10) & 0x1fu;
  const std::uint32_t mant = h & 0x3ffu;
  if (exp == 0) {
    // Subnormal: mant * 2^-24, exact in binary32.
    return sign * static_cast<float>(mant) * 0x1p-24f;
  }
  if (exp == 31) {
    if (mant != 0) return std::numeric_limits<float>::quiet_NaN();
    return sign * std::numeric_limits<float>::infinity();
  }
  std::uint32_t bits = (static_cast<std::uint32_t>(h & 0x8000u) << 16) |
                       ((exp + 112u) << 23) | (mant << 13);
  float f;
  std::memcpy(&f, &bits, sizeof f);
  return f;
}

float QuantizeRowI8(std::span<const float> v, std::int8_t* out) noexcept {
  float amax = 0.0f;
  for (const float x : v) amax = std::max(amax, std::fabs(x));
  if (amax == 0.0f) {
    for (std::size_t i = 0; i < v.size(); ++i) out[i] = 0;
    return 0.0f;
  }
  const float inv = 127.0f / amax;
  for (std::size_t i = 0; i < v.size(); ++i) {
    const long q = std::lrintf(v[i] * inv);
    out[i] = static_cast<std::int8_t>(std::clamp<long>(q, -127, 127));
  }
  return amax / 127.0f;
}

const char* VariantName(Variant v) noexcept {
  switch (v) {
    case Variant::kScalar:
      return "scalar";
    case Variant::kAvx2:
      return "avx2";
    case Variant::kAvx512:
      return "avx512";
    case Variant::kNeon:
      return "neon";
  }
  return "unknown";
}

bool VariantSupported(Variant v) noexcept {
  switch (v) {
    case Variant::kScalar:
      return true;
    case Variant::kAvx2:
#if CORTEX_SIMD_HAVE_X86
      // f16c: the fp16 row kernels decode with VCVTPH2PS.  Every AVX2
      // core ships F16C (it predates AVX2), so this costs no coverage.
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma") &&
             __builtin_cpu_supports("f16c");
#else
      return false;
#endif
    case Variant::kAvx512:
#if CORTEX_SIMD_HAVE_X86
      return __builtin_cpu_supports("avx512f");
#else
      return false;
#endif
    case Variant::kNeon:
#if CORTEX_SIMD_HAVE_NEON
      return true;
#else
      return false;
#endif
  }
  return false;
}

std::vector<Variant> SupportedVariants() {
  std::vector<Variant> out;
  for (const Variant v : {Variant::kScalar, Variant::kAvx2, Variant::kAvx512,
                          Variant::kNeon}) {
    if (VariantSupported(v)) out.push_back(v);
  }
  return out;
}

Variant BestSupportedVariant() noexcept {
  if (VariantSupported(Variant::kAvx512)) return Variant::kAvx512;
  if (VariantSupported(Variant::kAvx2)) return Variant::kAvx2;
  if (VariantSupported(Variant::kNeon)) return Variant::kNeon;
  return Variant::kScalar;
}

const KernelSet& KernelsFor(Variant v) {
  CHECK(VariantSupported(v))
      << "kernel variant " << VariantName(v) << " not supported here";
  switch (v) {
    case Variant::kScalar:
      return kScalarKernels;
#if CORTEX_SIMD_HAVE_X86
    case Variant::kAvx2:
      return kAvx2Kernels;
    case Variant::kAvx512:
      return kAvx512Kernels;
#endif
#if CORTEX_SIMD_HAVE_NEON
    case Variant::kNeon:
      return kNeonKernels;
#endif
    default:
      return kScalarKernels;
  }
}

Variant ActiveVariant() noexcept { return ActiveDispatch().variant; }

const KernelSet& ActiveKernels() noexcept { return *ActiveDispatch().kernels; }

bool ForceVariant(Variant v) noexcept {
  if (!VariantSupported(v)) return false;
  ActiveDispatch() = {v, &KernelsFor(v)};
  return true;
}

}  // namespace cortex::simd
