#include "embedding/simd_kernels.h"

#include <algorithm>
#include <cstdlib>
#include <string_view>

#include "util/check.h"

// The one sanctioned home for CPU intrinsics (cortex_lint: simd-intrinsics).
#if (defined(__x86_64__) || defined(__amd64__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define CORTEX_SIMD_HAVE_X86 1
// GCC 12's maskless AVX-512 intrinsics (and even _mm512_castps512_ps256)
// pass an uninitialized __m256 as the masked-builtin pass-through operand,
// tripping -Werror=uninitialized when inlined (GCC PR105593).  The value is
// fully overwritten (mask = -1), so the warning is a false positive;
// suppress it for the header only.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#include <immintrin.h>
#pragma GCC diagnostic pop
#endif
#if defined(__aarch64__)
#define CORTEX_SIMD_HAVE_NEON 1
#include <arm_neon.h>
#endif

namespace cortex::simd {
namespace {

// Prefetch the head of a row (the hardware prefetcher streams the rest of a
// long row once the access pattern is established).
inline void PrefetchRow(const float* p, std::size_t dim) noexcept {
  const std::size_t bytes =
      std::min<std::size_t>(dim * sizeof(float), std::size_t{256});
  const char* c = reinterpret_cast<const char*>(p);
  for (std::size_t off = 0; off < bytes; off += 64) {
    __builtin_prefetch(c + off);
  }
}

// ---------------------------------------------------------------------------
// Scalar reference kernels.
//
// Bit-identical to the historical vector_ops loops (double accumulation in
// index order), so CORTEX_SIMD=scalar reproduces pre-SIMD results exactly.

double DotScalar(const float* a, const float* b, std::size_t dim) {
  double acc = 0.0;
  for (std::size_t i = 0; i < dim; ++i) {
    acc += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return acc;
}

double L2SqScalar(const float* a, const float* b, std::size_t dim) {
  double acc = 0.0;
  for (std::size_t i = 0; i < dim; ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    acc += d * d;
  }
  return acc;
}

void DotBatchScalar(const float* query, const float* rows, std::size_t n,
                    std::size_t stride, std::size_t dim, float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<float>(DotScalar(query, rows + i * stride, dim));
  }
}

void DotRowsScalar(const float* query, const float* const* rows,
                   std::size_t n, std::size_t dim, float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<float>(DotScalar(query, rows[i], dim));
  }
}

void L2SqBatchScalar(const float* query, const float* rows, std::size_t n,
                     std::size_t stride, std::size_t dim, float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<float>(L2SqScalar(query, rows + i * stride, dim));
  }
}

constexpr KernelSet kScalarKernels = {
    DotScalar, L2SqScalar, DotBatchScalar, DotRowsScalar, L2SqBatchScalar,
};

// ---------------------------------------------------------------------------
// AVX2 + FMA (x86-64).  Compiled via function-level target attributes so the
// binary needs no global -mavx2; the bodies execute only after the runtime
// CPU check passes.  Unaligned loads throughout — correctness never depends
// on slab alignment (alignment is a performance property).

#if CORTEX_SIMD_HAVE_X86

#define CORTEX_TARGET_AVX2 __attribute__((target("avx2,fma")))
#define CORTEX_TARGET_AVX512 __attribute__((target("avx512f")))

CORTEX_TARGET_AVX2 inline float HSum8(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  lo = _mm_add_ps(lo, hi);
  __m128 shuf = _mm_movehdup_ps(lo);
  __m128 sums = _mm_add_ps(lo, shuf);
  shuf = _mm_movehl_ps(shuf, sums);
  sums = _mm_add_ss(sums, shuf);
  return _mm_cvtss_f32(sums);
}

CORTEX_TARGET_AVX2 double DotAvx2(const float* a, const float* b,
                                  std::size_t dim) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= dim; i += 16) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8),
                           _mm256_loadu_ps(b + i + 8), acc1);
  }
  for (; i + 8 <= dim; i += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
  }
  float total = HSum8(_mm256_add_ps(acc0, acc1));
  for (; i < dim; ++i) total += a[i] * b[i];
  return static_cast<double>(total);
}

CORTEX_TARGET_AVX2 double L2SqAvx2(const float* a, const float* b,
                                   std::size_t dim) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= dim; i += 16) {
    const __m256 d0 =
        _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    const __m256 d1 = _mm256_sub_ps(_mm256_loadu_ps(a + i + 8),
                                    _mm256_loadu_ps(b + i + 8));
    acc0 = _mm256_fmadd_ps(d0, d0, acc0);
    acc1 = _mm256_fmadd_ps(d1, d1, acc1);
  }
  for (; i + 8 <= dim; i += 8) {
    const __m256 d =
        _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    acc0 = _mm256_fmadd_ps(d, d, acc0);
  }
  float total = HSum8(_mm256_add_ps(acc0, acc1));
  for (; i < dim; ++i) {
    const float d = a[i] - b[i];
    total += d * d;
  }
  return static_cast<double>(total);
}

// 4-row register blocking: one query load feeds four row FMAs, quadrupling
// arithmetic per byte of query traffic.
CORTEX_TARGET_AVX2 void Dot4Avx2(const float* q, const float* r0,
                                 const float* r1, const float* r2,
                                 const float* r3, std::size_t dim,
                                 float* out) {
  __m256 a0 = _mm256_setzero_ps();
  __m256 a1 = _mm256_setzero_ps();
  __m256 a2 = _mm256_setzero_ps();
  __m256 a3 = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= dim; i += 8) {
    const __m256 qv = _mm256_loadu_ps(q + i);
    a0 = _mm256_fmadd_ps(qv, _mm256_loadu_ps(r0 + i), a0);
    a1 = _mm256_fmadd_ps(qv, _mm256_loadu_ps(r1 + i), a1);
    a2 = _mm256_fmadd_ps(qv, _mm256_loadu_ps(r2 + i), a2);
    a3 = _mm256_fmadd_ps(qv, _mm256_loadu_ps(r3 + i), a3);
  }
  float t0 = HSum8(a0), t1 = HSum8(a1), t2 = HSum8(a2), t3 = HSum8(a3);
  for (; i < dim; ++i) {
    const float qq = q[i];
    t0 += qq * r0[i];
    t1 += qq * r1[i];
    t2 += qq * r2[i];
    t3 += qq * r3[i];
  }
  out[0] = t0;
  out[1] = t1;
  out[2] = t2;
  out[3] = t3;
}

void DotBatchAvx2(const float* query, const float* rows, std::size_t n,
                  std::size_t stride, std::size_t dim, float* out) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    if (i + 8 <= n) PrefetchRow(rows + (i + 4) * stride, 4 * stride);
    const float* base = rows + i * stride;
    Dot4Avx2(query, base, base + stride, base + 2 * stride, base + 3 * stride,
             dim, out + i);
  }
  for (; i < n; ++i) {
    out[i] = static_cast<float>(DotAvx2(query, rows + i * stride, dim));
  }
}

void DotRowsAvx2(const float* query, const float* const* rows, std::size_t n,
                 std::size_t dim, float* out) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    for (std::size_t p = i + 4; p < std::min(i + 8, n); ++p) {
      PrefetchRow(rows[p], dim);
    }
    Dot4Avx2(query, rows[i], rows[i + 1], rows[i + 2], rows[i + 3], dim,
             out + i);
  }
  for (; i < n; ++i) {
    out[i] = static_cast<float>(DotAvx2(query, rows[i], dim));
  }
}

void L2SqBatchAvx2(const float* query, const float* rows, std::size_t n,
                   std::size_t stride, std::size_t dim, float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    if (i + 1 < n) PrefetchRow(rows + (i + 1) * stride, dim);
    out[i] = static_cast<float>(L2SqAvx2(query, rows + i * stride, dim));
  }
}

constexpr KernelSet kAvx2Kernels = {
    DotAvx2, L2SqAvx2, DotBatchAvx2, DotRowsAvx2, L2SqBatchAvx2,
};

// ---------------------------------------------------------------------------
// AVX-512F (x86-64): 16-lane FMA, same shape as the AVX2 kernels.

CORTEX_TARGET_AVX512 inline float HSum16(__m512 v) {
  return _mm512_reduce_add_ps(v);
}

CORTEX_TARGET_AVX512 double DotAvx512(const float* a, const float* b,
                                      std::size_t dim) {
  __m512 acc0 = _mm512_setzero_ps();
  __m512 acc1 = _mm512_setzero_ps();
  std::size_t i = 0;
  for (; i + 32 <= dim; i += 32) {
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i),
                           acc0);
    acc1 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i + 16),
                           _mm512_loadu_ps(b + i + 16), acc1);
  }
  for (; i + 16 <= dim; i += 16) {
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i),
                           acc0);
  }
  float total = HSum16(_mm512_add_ps(acc0, acc1));
  for (; i < dim; ++i) total += a[i] * b[i];
  return static_cast<double>(total);
}

CORTEX_TARGET_AVX512 double L2SqAvx512(const float* a, const float* b,
                                       std::size_t dim) {
  __m512 acc = _mm512_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= dim; i += 16) {
    const __m512 d =
        _mm512_sub_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i));
    acc = _mm512_fmadd_ps(d, d, acc);
  }
  float total = HSum16(acc);
  for (; i < dim; ++i) {
    const float d = a[i] - b[i];
    total += d * d;
  }
  return static_cast<double>(total);
}

CORTEX_TARGET_AVX512 void Dot4Avx512(const float* q, const float* r0,
                                     const float* r1, const float* r2,
                                     const float* r3, std::size_t dim,
                                     float* out) {
  __m512 a0 = _mm512_setzero_ps();
  __m512 a1 = _mm512_setzero_ps();
  __m512 a2 = _mm512_setzero_ps();
  __m512 a3 = _mm512_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= dim; i += 16) {
    const __m512 qv = _mm512_loadu_ps(q + i);
    a0 = _mm512_fmadd_ps(qv, _mm512_loadu_ps(r0 + i), a0);
    a1 = _mm512_fmadd_ps(qv, _mm512_loadu_ps(r1 + i), a1);
    a2 = _mm512_fmadd_ps(qv, _mm512_loadu_ps(r2 + i), a2);
    a3 = _mm512_fmadd_ps(qv, _mm512_loadu_ps(r3 + i), a3);
  }
  float t0 = HSum16(a0);
  float t1 = HSum16(a1);
  float t2 = HSum16(a2);
  float t3 = HSum16(a3);
  for (; i < dim; ++i) {
    const float qq = q[i];
    t0 += qq * r0[i];
    t1 += qq * r1[i];
    t2 += qq * r2[i];
    t3 += qq * r3[i];
  }
  out[0] = t0;
  out[1] = t1;
  out[2] = t2;
  out[3] = t3;
}

void DotBatchAvx512(const float* query, const float* rows, std::size_t n,
                    std::size_t stride, std::size_t dim, float* out) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    if (i + 8 <= n) PrefetchRow(rows + (i + 4) * stride, 4 * stride);
    const float* base = rows + i * stride;
    Dot4Avx512(query, base, base + stride, base + 2 * stride,
               base + 3 * stride, dim, out + i);
  }
  for (; i < n; ++i) {
    out[i] = static_cast<float>(DotAvx512(query, rows + i * stride, dim));
  }
}

void DotRowsAvx512(const float* query, const float* const* rows,
                   std::size_t n, std::size_t dim, float* out) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    for (std::size_t p = i + 4; p < std::min(i + 8, n); ++p) {
      PrefetchRow(rows[p], dim);
    }
    Dot4Avx512(query, rows[i], rows[i + 1], rows[i + 2], rows[i + 3], dim,
               out + i);
  }
  for (; i < n; ++i) {
    out[i] = static_cast<float>(DotAvx512(query, rows[i], dim));
  }
}

void L2SqBatchAvx512(const float* query, const float* rows, std::size_t n,
                     std::size_t stride, std::size_t dim, float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    if (i + 1 < n) PrefetchRow(rows + (i + 1) * stride, dim);
    out[i] = static_cast<float>(L2SqAvx512(query, rows + i * stride, dim));
  }
}

constexpr KernelSet kAvx512Kernels = {
    DotAvx512, L2SqAvx512, DotBatchAvx512, DotRowsAvx512, L2SqBatchAvx512,
};

#endif  // CORTEX_SIMD_HAVE_X86

// ---------------------------------------------------------------------------
// NEON (aarch64): baseline ISA, no runtime feature check needed.

#if CORTEX_SIMD_HAVE_NEON

double DotNeon(const float* a, const float* b, std::size_t dim) {
  float32x4_t acc0 = vdupq_n_f32(0.0f);
  float32x4_t acc1 = vdupq_n_f32(0.0f);
  std::size_t i = 0;
  for (; i + 8 <= dim; i += 8) {
    acc0 = vfmaq_f32(acc0, vld1q_f32(a + i), vld1q_f32(b + i));
    acc1 = vfmaq_f32(acc1, vld1q_f32(a + i + 4), vld1q_f32(b + i + 4));
  }
  for (; i + 4 <= dim; i += 4) {
    acc0 = vfmaq_f32(acc0, vld1q_f32(a + i), vld1q_f32(b + i));
  }
  float total = vaddvq_f32(vaddq_f32(acc0, acc1));
  for (; i < dim; ++i) total += a[i] * b[i];
  return static_cast<double>(total);
}

double L2SqNeon(const float* a, const float* b, std::size_t dim) {
  float32x4_t acc = vdupq_n_f32(0.0f);
  std::size_t i = 0;
  for (; i + 4 <= dim; i += 4) {
    const float32x4_t d = vsubq_f32(vld1q_f32(a + i), vld1q_f32(b + i));
    acc = vfmaq_f32(acc, d, d);
  }
  float total = vaddvq_f32(acc);
  for (; i < dim; ++i) {
    const float d = a[i] - b[i];
    total += d * d;
  }
  return static_cast<double>(total);
}

void Dot4Neon(const float* q, const float* r0, const float* r1,
              const float* r2, const float* r3, std::size_t dim, float* out) {
  float32x4_t a0 = vdupq_n_f32(0.0f);
  float32x4_t a1 = vdupq_n_f32(0.0f);
  float32x4_t a2 = vdupq_n_f32(0.0f);
  float32x4_t a3 = vdupq_n_f32(0.0f);
  std::size_t i = 0;
  for (; i + 4 <= dim; i += 4) {
    const float32x4_t qv = vld1q_f32(q + i);
    a0 = vfmaq_f32(a0, qv, vld1q_f32(r0 + i));
    a1 = vfmaq_f32(a1, qv, vld1q_f32(r1 + i));
    a2 = vfmaq_f32(a2, qv, vld1q_f32(r2 + i));
    a3 = vfmaq_f32(a3, qv, vld1q_f32(r3 + i));
  }
  float t0 = vaddvq_f32(a0), t1 = vaddvq_f32(a1);
  float t2 = vaddvq_f32(a2), t3 = vaddvq_f32(a3);
  for (; i < dim; ++i) {
    const float qq = q[i];
    t0 += qq * r0[i];
    t1 += qq * r1[i];
    t2 += qq * r2[i];
    t3 += qq * r3[i];
  }
  out[0] = t0;
  out[1] = t1;
  out[2] = t2;
  out[3] = t3;
}

void DotBatchNeon(const float* query, const float* rows, std::size_t n,
                  std::size_t stride, std::size_t dim, float* out) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    if (i + 8 <= n) PrefetchRow(rows + (i + 4) * stride, 4 * stride);
    const float* base = rows + i * stride;
    Dot4Neon(query, base, base + stride, base + 2 * stride, base + 3 * stride,
             dim, out + i);
  }
  for (; i < n; ++i) {
    out[i] = static_cast<float>(DotNeon(query, rows + i * stride, dim));
  }
}

void DotRowsNeon(const float* query, const float* const* rows, std::size_t n,
                 std::size_t dim, float* out) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    for (std::size_t p = i + 4; p < std::min(i + 8, n); ++p) {
      PrefetchRow(rows[p], dim);
    }
    Dot4Neon(query, rows[i], rows[i + 1], rows[i + 2], rows[i + 3], dim,
             out + i);
  }
  for (; i < n; ++i) {
    out[i] = static_cast<float>(DotNeon(query, rows[i], dim));
  }
}

void L2SqBatchNeon(const float* query, const float* rows, std::size_t n,
                   std::size_t stride, std::size_t dim, float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    if (i + 1 < n) PrefetchRow(rows + (i + 1) * stride, dim);
    out[i] = static_cast<float>(L2SqNeon(query, rows + i * stride, dim));
  }
}

constexpr KernelSet kNeonKernels = {
    DotNeon, L2SqNeon, DotBatchNeon, DotRowsNeon, L2SqBatchNeon,
};

#endif  // CORTEX_SIMD_HAVE_NEON

// ---------------------------------------------------------------------------
// Dispatch.

struct Dispatch {
  Variant variant;
  const KernelSet* kernels;
};

Dispatch ResolveFromEnv() {
  const char* env = std::getenv("CORTEX_SIMD");
  if (env == nullptr || *env == '\0') {
    const Variant best = BestSupportedVariant();
    return {best, &KernelsFor(best)};
  }
  const std::string_view want(env);
  Variant v = Variant::kScalar;
  if (want == "scalar") {
    v = Variant::kScalar;
  } else if (want == "avx2") {
    v = Variant::kAvx2;
  } else if (want == "avx512") {
    v = Variant::kAvx512;
  } else if (want == "neon") {
    v = Variant::kNeon;
  } else {
    CHECK(false) << "CORTEX_SIMD='" << want
                 << "' is not one of scalar|avx2|avx512|neon";
  }
  CHECK(VariantSupported(v))
      << "CORTEX_SIMD=" << VariantName(v)
      << " requested but not supported on this CPU/build";
  return {v, &KernelsFor(v)};
}

Dispatch& ActiveDispatch() noexcept {
  // Resolved once, on first use; ForceVariant (tests only) may swap it.
  static Dispatch dispatch = ResolveFromEnv();
  return dispatch;
}

}  // namespace

const char* VariantName(Variant v) noexcept {
  switch (v) {
    case Variant::kScalar:
      return "scalar";
    case Variant::kAvx2:
      return "avx2";
    case Variant::kAvx512:
      return "avx512";
    case Variant::kNeon:
      return "neon";
  }
  return "unknown";
}

bool VariantSupported(Variant v) noexcept {
  switch (v) {
    case Variant::kScalar:
      return true;
    case Variant::kAvx2:
#if CORTEX_SIMD_HAVE_X86
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
      return false;
#endif
    case Variant::kAvx512:
#if CORTEX_SIMD_HAVE_X86
      return __builtin_cpu_supports("avx512f");
#else
      return false;
#endif
    case Variant::kNeon:
#if CORTEX_SIMD_HAVE_NEON
      return true;
#else
      return false;
#endif
  }
  return false;
}

std::vector<Variant> SupportedVariants() {
  std::vector<Variant> out;
  for (const Variant v : {Variant::kScalar, Variant::kAvx2, Variant::kAvx512,
                          Variant::kNeon}) {
    if (VariantSupported(v)) out.push_back(v);
  }
  return out;
}

Variant BestSupportedVariant() noexcept {
  if (VariantSupported(Variant::kAvx512)) return Variant::kAvx512;
  if (VariantSupported(Variant::kAvx2)) return Variant::kAvx2;
  if (VariantSupported(Variant::kNeon)) return Variant::kNeon;
  return Variant::kScalar;
}

const KernelSet& KernelsFor(Variant v) {
  CHECK(VariantSupported(v))
      << "kernel variant " << VariantName(v) << " not supported here";
  switch (v) {
    case Variant::kScalar:
      return kScalarKernels;
#if CORTEX_SIMD_HAVE_X86
    case Variant::kAvx2:
      return kAvx2Kernels;
    case Variant::kAvx512:
      return kAvx512Kernels;
#endif
#if CORTEX_SIMD_HAVE_NEON
    case Variant::kNeon:
      return kNeonKernels;
#endif
    default:
      return kScalarKernels;
  }
}

Variant ActiveVariant() noexcept { return ActiveDispatch().variant; }

const KernelSet& ActiveKernels() noexcept { return *ActiveDispatch().kernels; }

bool ForceVariant(Variant v) noexcept {
  if (!VariantSupported(v)) return false;
  ActiveDispatch() = {v, &KernelsFor(v)};
  return true;
}

}  // namespace cortex::simd
