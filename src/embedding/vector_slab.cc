#include "embedding/vector_slab.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "util/check.h"

namespace cortex {

void VectorSlab::AlignedFree::operator()(float* p) const noexcept {
  std::free(p);
}

VectorSlab::VectorSlab(std::size_t dim) : dim_(dim) {
  CHECK_GT(dim, 0u);
  // Pad rows to a 64-byte (16-float) boundary so every row starts aligned.
  stride_ = (dim + 15) / 16 * 16;
}

std::uint32_t VectorSlab::Add(std::span<const float> v) {
  DCHECK_EQ(v.size(), dim_);
  std::uint32_t row;
  if (!free_.empty()) {
    row = free_.back();
    free_.pop_back();
  } else {
    row = next_row_++;
    if (row / kRowsPerChunk == chunks_.size()) {
      const std::size_t bytes = kRowsPerChunk * stride_ * sizeof(float);
      // aligned_alloc requires size % alignment == 0; stride is a multiple
      // of 16 floats, so bytes is a multiple of 64.
      auto* mem = static_cast<float*>(std::aligned_alloc(64, bytes));
      CHECK(mem != nullptr) << "VectorSlab chunk allocation failed";
      std::memset(mem, 0, bytes);  // padding lanes stay deterministic
      chunks_.emplace_back(mem);
    }
  }
  Overwrite(row, v);
  ++live_;
  return row;
}

void VectorSlab::Overwrite(std::uint32_t row, std::span<const float> v) {
  DCHECK_EQ(v.size(), dim_);
  DCHECK_LT(row, next_row_);
  float* dst = chunks_[row / kRowsPerChunk].get() +
               static_cast<std::size_t>(row % kRowsPerChunk) * stride_;
  std::copy(v.begin(), v.end(), dst);
}

void VectorSlab::Free(std::uint32_t row) {
  DCHECK_LT(row, next_row_);
  DCHECK_GT(live_, 0u);
  free_.push_back(row);
  --live_;
}

void VectorSlab::Clear() {
  chunks_.clear();
  free_.clear();
  next_row_ = 0;
  live_ = 0;
}

}  // namespace cortex
