#include "embedding/vector_slab.h"

#include <cstdlib>
#include <cstring>

#include "embedding/simd_kernels.h"
#include "util/check.h"

namespace cortex {

const char* RowFormatName(RowFormat f) noexcept {
  switch (f) {
    case RowFormat::kF32:
      return "f32";
    case RowFormat::kF16:
      return "f16";
    case RowFormat::kI8:
      return "i8";
  }
  return "unknown";
}

std::size_t RowFormatElemBytes(RowFormat f) noexcept {
  switch (f) {
    case RowFormat::kF32:
      return sizeof(float);
    case RowFormat::kF16:
      return sizeof(std::uint16_t);
    case RowFormat::kI8:
      return sizeof(std::int8_t);
  }
  return sizeof(float);
}

void VectorSlab::AlignedFree::operator()(std::byte* p) const noexcept {
  std::free(p);
}

VectorSlab::VectorSlab(std::size_t dim, RowFormat format)
    : dim_(dim), format_(format), elem_bytes_(RowFormatElemBytes(format)) {
  CHECK_GT(dim, 0u);
  // Pad rows to a 64-byte boundary whatever the element width (16 floats,
  // 32 halves, or 64 int8 lanes per 64-byte line).
  const std::size_t elems_per_line = 64 / elem_bytes_;
  stride_ = (dim + elems_per_line - 1) / elems_per_line * elems_per_line;
}

std::uint32_t VectorSlab::Add(std::span<const float> v) {
  DCHECK_EQ(v.size(), dim_);
  std::uint32_t row;
  if (!free_.empty()) {
    row = free_.back();
    free_.pop_back();
  } else {
    row = next_row_++;
    if (row / kRowsPerChunk == chunks_.size()) {
      const std::size_t bytes = kRowsPerChunk * stride_ * elem_bytes_;
      // aligned_alloc requires size % alignment == 0; stride covers whole
      // 64-byte lines, so bytes is a multiple of 64.
      auto* mem = static_cast<std::byte*>(std::aligned_alloc(64, bytes));
      CHECK(mem != nullptr) << "VectorSlab chunk allocation failed";
      std::memset(mem, 0, bytes);  // padding lanes stay deterministic
      chunks_.emplace_back(mem);
    }
    if (format_ == RowFormat::kI8 && scales_.size() < next_row_) {
      scales_.resize(next_row_, 0.0f);
    }
  }
  Overwrite(row, v);
  ++live_;
  return row;
}

void VectorSlab::Overwrite(std::uint32_t row, std::span<const float> v) {
  DCHECK_EQ(v.size(), dim_);
  DCHECK_LT(row, next_row_);
  std::byte* dst = MutableRawRow(row);
  switch (format_) {
    case RowFormat::kF32:
      std::memcpy(dst, v.data(), dim_ * sizeof(float));
      break;
    case RowFormat::kF16: {
      auto* h = reinterpret_cast<std::uint16_t*>(dst);
      for (std::size_t i = 0; i < dim_; ++i) h[i] = simd::F32ToF16(v[i]);
      break;
    }
    case RowFormat::kI8:
      scales_[row] =
          simd::QuantizeRowI8(v, reinterpret_cast<std::int8_t*>(dst));
      break;
  }
}

void VectorSlab::Free(std::uint32_t row) {
  DCHECK_LT(row, next_row_);
  DCHECK_GT(live_, 0u);
  free_.push_back(row);
  --live_;
}

void VectorSlab::Clear() {
  chunks_.clear();
  free_.clear();
  scales_.clear();
  next_row_ = 0;
  live_ = 0;
}

void VectorSlab::DecodeRow(std::uint32_t row, std::span<float> out) const {
  DCHECK_EQ(out.size(), dim_);
  switch (format_) {
    case RowFormat::kF32:
      std::memcpy(out.data(), Row(row), dim_ * sizeof(float));
      break;
    case RowFormat::kF16: {
      const std::uint16_t* h = RowF16(row);
      for (std::size_t i = 0; i < dim_; ++i) out[i] = simd::F16ToF32(h[i]);
      break;
    }
    case RowFormat::kI8: {
      const std::int8_t* q = RowI8(row);
      const float scale = scales_[row];
      for (std::size_t i = 0; i < dim_; ++i) {
        out[i] = scale * static_cast<float>(q[i]);
      }
      break;
    }
  }
}

}  // namespace cortex
