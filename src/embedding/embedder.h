// Embedder: the interface the cache uses to turn a query string into a
// semantic fingerprint (the paper uses Qwen3-Embedding-0.6B; Cortex ships a
// deterministic hashed-token embedder with the same contract).
#pragma once

#include <string_view>

#include "embedding/vector_ops.h"

namespace cortex {

class Embedder {
 public:
  virtual ~Embedder() = default;

  // Embeds the text into a unit-length vector of dimension().
  virtual Vector Embed(std::string_view text) const = 0;

  virtual std::size_t dimension() const noexcept = 0;
};

}  // namespace cortex
