#include "embedding/vector_ops.h"

#include <cmath>

#include "embedding/simd_kernels.h"
#include "util/check.h"

namespace cortex {

// The scalar entry points are thin wrappers over the runtime-dispatched
// kernel layer (simd_kernels.h), so every caller — embedder, kmeans, PQ,
// indexes — picks up the SIMD variant selected at startup for free.

double Dot(std::span<const float> a, std::span<const float> b) noexcept {
  DCHECK_EQ(a.size(), b.size());
  return simd::DotUnit(a, b);
}

double L2Norm(std::span<const float> v) noexcept {
  return std::sqrt(Dot(v, v));
}

double L2DistanceSquared(std::span<const float> a,
                         std::span<const float> b) noexcept {
  DCHECK_EQ(a.size(), b.size());
  return simd::L2Sq(a, b);
}

double CosineSimilarity(std::span<const float> a,
                        std::span<const float> b) noexcept {
  const double na = L2Norm(a);
  const double nb = L2Norm(b);
  if (na == 0.0 || nb == 0.0) return 0.0;
  return Dot(a, b) / (na * nb);
}

bool NearlyUnitNorm(std::span<const float> v, double tolerance) noexcept {
  return std::abs(L2Norm(v) - 1.0) <= tolerance;
}

void Normalize(std::span<float> v) noexcept {
  const double n = L2Norm(v);
  if (n == 0.0) return;
  const auto inv = static_cast<float>(1.0 / n);
  for (auto& x : v) x *= inv;
}

void AddInPlace(std::span<float> a, std::span<const float> b) noexcept {
  DCHECK_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) a[i] += b[i];
}

void ScaleInPlace(std::span<float> a, float s) noexcept {
  for (auto& x : a) x *= s;
}

}  // namespace cortex
