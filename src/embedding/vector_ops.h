// Dense vector math used by the embedder and the ANN indexes.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace cortex {

using Vector = std::vector<float>;

double Dot(std::span<const float> a, std::span<const float> b) noexcept;
double L2Norm(std::span<const float> v) noexcept;
double L2DistanceSquared(std::span<const float> a,
                         std::span<const float> b) noexcept;

// Cosine similarity in [-1, 1]; zero vectors compare as 0.
double CosineSimilarity(std::span<const float> a,
                        std::span<const float> b) noexcept;

// True when ||v|| is within `tolerance` of 1.  The ANN indexes DCHECK this
// on Add: their Search paths score by raw inner product, which equals
// cosine only for unit vectors.
bool NearlyUnitNorm(std::span<const float> v,
                    double tolerance = 1e-3) noexcept;

// In-place L2 normalisation; zero vectors are left untouched.
void Normalize(std::span<float> v) noexcept;

// a += b (sizes must match).
void AddInPlace(std::span<float> a, std::span<const float> b) noexcept;
// a *= s.
void ScaleInPlace(std::span<float> a, float s) noexcept;

}  // namespace cortex
