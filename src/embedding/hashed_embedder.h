// HashedEmbedder: deterministic bag-of-features text embedding.
//
// Stands in for the paper's Qwen3-Embedding-0.6B.  Each content token (and,
// at lower weight, each adjacent-token bigram) is feature-hashed into a few
// signed slots of a dense vector; the result is L2-normalised.  Properties
// the cache relies on, and which this model provides by construction:
//
//   * paraphrases that share content words embed close together (word order
//     and function words barely move the vector);
//   * queries about different topics that share a surface token ("apple
//     nutrition facts" vs "apple stock price") land *near* each other in
//     cosine space but not identical — exactly the false-positive regime
//     that makes the semantic judger load-bearing (paper §3.2, Fig. 13).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>

#include "embedding/embedder.h"
#include "util/tokenizer.h"

namespace cortex {

struct HashedEmbedderOptions {
  std::size_t dimension = 256;
  // Number of signed slots each feature is hashed into.
  std::size_t slots_per_feature = 4;
  // Relative weight of adjacent-token bigram features (order sensitivity).
  double bigram_weight = 0.1;
  // Sublinear term-frequency: weight = 1 + log(tf) instead of tf.
  bool sublinear_tf = true;
  // Seed for the feature-hash family; changing it yields a different model.
  std::uint64_t hash_seed = 0x9e3779b97f4a7c15ULL;
};

class HashedEmbedder final : public Embedder {
 public:
  explicit HashedEmbedder(HashedEmbedderOptions options = {});

  Vector Embed(std::string_view text) const override;
  std::size_t dimension() const noexcept override {
    return options_.dimension;
  }

  // Embeds `text` into caller-provided storage of exactly dimension()
  // floats (zero-filled here first).  Embed() routes through this, so the
  // written floats are bit-identical to an Embed() of the same text.
  void EmbedInto(std::string_view text, std::span<float> out) const;

  // Batched embedding for the cross-request pipeline (DESIGN.md §14):
  // row q lands at out + q*stride (stride >= dimension(), in elements).
  // Each row is bit-identical to Embed(texts[q]).
  void EmbedBatch(std::span<const std::string_view> texts, float* out,
                  std::size_t stride) const;

  // Fits inverse-document-frequency weights from a corpus of texts.
  // Generic words that appear in many documents ("read file X" vs "show X")
  // are down-weighted so the discriminative content tokens dominate the
  // vector — the property real sentence encoders have and pure feature
  // hashing lacks.  Callable repeatedly; each call refits from scratch.
  void FitIdf(std::span<const std::string> corpus);
  bool has_idf() const noexcept { return !idf_.empty(); }
  // Weight of a token under the fitted model (1.0 when unfitted/unseen).
  double IdfWeight(std::string_view token) const;

 private:
  void AddFeature(std::span<float> v, std::string_view feature,
                  double weight) const noexcept;

  HashedEmbedderOptions options_;
  Tokenizer tokenizer_;
  std::unordered_map<std::string, double> idf_;
  double default_idf_ = 1.0;  // weight for tokens unseen during fitting
};

}  // namespace cortex
