#include "embedding/hashed_embedder.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/rng.h"

namespace cortex {

HashedEmbedder::HashedEmbedder(HashedEmbedderOptions options)
    : options_(options) {}

namespace {

std::uint64_t HashString(std::string_view s, std::uint64_t seed) noexcept {
  // FNV-1a folded through Mix64 for avalanche.
  std::uint64_t h = 0xcbf29ce484222325ULL ^ seed;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return Mix64(h);
}

}  // namespace

void HashedEmbedder::AddFeature(std::span<float> v, std::string_view feature,
                                double weight) const noexcept {
  std::uint64_t h = HashString(feature, options_.hash_seed);
  for (std::size_t k = 0; k < options_.slots_per_feature; ++k) {
    h = Mix64(h + k + 1);
    const std::size_t slot = h % options_.dimension;
    const float sign = (h >> 63) ? 1.0f : -1.0f;
    v[slot] += sign * static_cast<float>(weight);
  }
}

void HashedEmbedder::FitIdf(std::span<const std::string> corpus) {
  idf_.clear();
  std::unordered_map<std::string, std::size_t> df;
  for (const auto& text : corpus) {
    const auto tokens = tokenizer_.Tokenize(text);
    std::unordered_map<std::string, bool> seen;
    for (const auto& t : tokens) {
      if (seen.emplace(t, true).second) ++df[t];
    }
  }
  if (df.empty()) return;
  const double n = static_cast<double>(corpus.size());
  for (const auto& [token, count] : df) {
    idf_[token] = std::log(1.0 + n / static_cast<double>(count));
  }
  // Unseen tokens are treated as maximally rare.
  default_idf_ = std::log(1.0 + n);
}

double HashedEmbedder::IdfWeight(std::string_view token) const {
  if (idf_.empty()) return 1.0;
  const auto it = idf_.find(std::string(token));
  return it == idf_.end() ? default_idf_ : it->second;
}

Vector HashedEmbedder::Embed(std::string_view text) const {
  Vector v(options_.dimension, 0.0f);
  EmbedInto(text, v);
  return v;
}

void HashedEmbedder::EmbedBatch(std::span<const std::string_view> texts,
                                float* out, std::size_t stride) const {
  for (std::size_t q = 0; q < texts.size(); ++q) {
    EmbedInto(texts[q], std::span<float>(out + q * stride,
                                         options_.dimension));
  }
}

void HashedEmbedder::EmbedInto(std::string_view text,
                               std::span<float> v) const {
  std::fill(v.begin(), v.end(), 0.0f);
  const auto tokens = tokenizer_.Tokenize(text);
  if (tokens.empty()) {
    // Degenerate input (all stopwords / punctuation): hash the raw text so
    // identical inputs still embed identically instead of to the zero vector.
    AddFeature(v, text, 1.0);
    Normalize(v);
    return;
  }

  std::unordered_map<std::string, int> tf;
  for (const auto& t : tokens) ++tf[t];
  for (const auto& [token, count] : tf) {
    double w = options_.sublinear_tf
                   ? 1.0 + std::log(static_cast<double>(count))
                   : static_cast<double>(count);
    w *= IdfWeight(token);
    AddFeature(v, token, w);
  }

  if (options_.bigram_weight > 0.0) {
    for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
      const std::string bigram = tokens[i] + '\x1f' + tokens[i + 1];
      AddFeature(v, bigram, options_.bigram_weight);
    }
  }

  Normalize(v);
}

}  // namespace cortex
