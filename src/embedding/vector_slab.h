// VectorSlab: a chunked arena of 64-byte-aligned, fixed-dimension float
// rows with stable row slots and a free list.
//
// The ANN indexes used to hold one heap-allocated std::vector<float> per
// entry, so neighbour expansion chased a pointer per candidate.  A slab
// keeps rows contiguous (within a chunk) and aligned, which is what the
// batched SIMD kernels (embedding/simd_kernels.h) want to stream.
//
// Row slots are stable for the life of the entry: chunks never move once
// allocated, so `Row()` pointers stay valid across Add/Free of other rows
// (required by HNSW, whose graph stores slots, and by the serving tier's
// concurrent readers — mutation happens under the engine's write lock).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace cortex {

class VectorSlab {
 public:
  explicit VectorSlab(std::size_t dim);

  VectorSlab(VectorSlab&&) noexcept = default;
  VectorSlab& operator=(VectorSlab&&) noexcept = default;

  // Copies `v` (size dim) into a free row and returns its slot.
  std::uint32_t Add(std::span<const float> v);
  // Replaces the contents of an allocated row.
  void Overwrite(std::uint32_t row, std::span<const float> v);
  // Returns the row to the free list (contents become stale; the slot may
  // be handed out again by a later Add).
  void Free(std::uint32_t row);
  // Drops every row and chunk.
  void Clear();

  const float* Row(std::uint32_t row) const noexcept {
    return chunks_[row / kRowsPerChunk].get() +
           static_cast<std::size_t>(row % kRowsPerChunk) * stride_;
  }
  std::span<const float> RowSpan(std::uint32_t row) const noexcept {
    return {Row(row), dim_};
  }

  std::size_t dim() const noexcept { return dim_; }
  // Floats between consecutive rows of a chunk (dim rounded up to 16).
  std::size_t stride() const noexcept { return stride_; }
  // Rows currently allocated (Add minus Free).
  std::size_t size() const noexcept { return live_; }

 private:
  static constexpr std::size_t kRowsPerChunk = 256;

  struct AlignedFree {
    void operator()(float* p) const noexcept;
  };

  std::size_t dim_;
  std::size_t stride_;
  std::vector<std::unique_ptr<float[], AlignedFree>> chunks_;
  std::vector<std::uint32_t> free_;
  std::uint32_t next_row_ = 0;
  std::size_t live_ = 0;
};

}  // namespace cortex
