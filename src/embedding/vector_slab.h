// VectorSlab: a chunked arena of 64-byte-aligned, fixed-dimension vector
// rows with stable row slots and a free list.
//
// The ANN indexes used to hold one heap-allocated std::vector<float> per
// entry, so neighbour expansion chased a pointer per candidate.  A slab
// keeps rows contiguous (within a chunk) and aligned, which is what the
// batched SIMD kernels (embedding/simd_kernels.h) want to stream.
//
// Row slots are stable for the life of the entry: chunks never move once
// allocated, so row pointers stay valid across Add/Free of other rows
// (required by HNSW, whose graph stores slots, and by the serving tier's
// epoch-protected concurrent readers — mutation happens under the
// engine's write lock, and freed slots are only reused after an epoch
// grace period, see DESIGN.md §13).
//
// Row storage format (DESIGN.md §13): callers always Add/Overwrite fp32
// spans; the slab encodes per its RowFormat —
//   * kF32 — 4 bytes/elem, the default; Row()/RowSpan() expose floats;
//   * kF16 — IEEE binary16, 2 bytes/elem, software round-to-nearest-even
//     encode so stored bytes never depend on the active SIMD variant;
//   * kI8  — symmetric per-row int8 (scale = amax/127), 1 byte/elem plus
//     one float scale per row, ~4x less scan bandwidth than fp32.
// Quantized tiers are for SCANNING; exact reranks read fp32 originals
// kept elsewhere (the two-phase contract in ann/ and serve/).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "util/check.h"

namespace cortex {

enum class RowFormat : std::uint8_t {
  kF32 = 0,
  kF16 = 1,
  kI8 = 2,
};

const char* RowFormatName(RowFormat f) noexcept;
// Bytes per stored element (4 / 2 / 1).
std::size_t RowFormatElemBytes(RowFormat f) noexcept;

class VectorSlab {
 public:
  explicit VectorSlab(std::size_t dim, RowFormat format = RowFormat::kF32);

  VectorSlab(VectorSlab&&) noexcept = default;
  VectorSlab& operator=(VectorSlab&&) noexcept = default;

  // Encodes `v` (size dim, fp32) into a free row and returns its slot.
  std::uint32_t Add(std::span<const float> v);
  // Replaces the contents of an allocated row.
  void Overwrite(std::uint32_t row, std::span<const float> v);
  // Returns the row to the free list (contents become stale; the slot may
  // be handed out again by a later Add).
  void Free(std::uint32_t row);
  // Drops every row and chunk.
  void Clear();

  // fp32 accessors — kF32 slabs only (DCHECKed).
  const float* Row(std::uint32_t row) const noexcept {
    DCHECK(format_ == RowFormat::kF32);
    return reinterpret_cast<const float*>(RawRow(row));
  }
  std::span<const float> RowSpan(std::uint32_t row) const noexcept {
    return {Row(row), dim_};
  }

  // Format-specific raw accessors for the quantized scan kernels.
  const std::uint16_t* RowF16(std::uint32_t row) const noexcept {
    return reinterpret_cast<const std::uint16_t*>(RawRow(row));
  }
  const std::int8_t* RowI8(std::uint32_t row) const noexcept {
    return reinterpret_cast<const std::int8_t*>(RawRow(row));
  }
  // Per-row quantization scale; 1.0 for non-i8 formats.
  float RowScale(std::uint32_t row) const noexcept {
    return format_ == RowFormat::kI8 ? scales_[row] : 1.0f;
  }
  // Decodes any format back to fp32 (tests, diagnostics).
  void DecodeRow(std::uint32_t row, std::span<float> out) const;

  RowFormat format() const noexcept { return format_; }
  std::size_t dim() const noexcept { return dim_; }
  // Elements between consecutive rows of a chunk (dim padded so every row
  // starts on a 64-byte boundary).
  std::size_t stride() const noexcept { return stride_; }
  // Payload bytes one row costs in this format, including the i8 scale —
  // the scan-tier bytes/vector number the benches report.
  std::size_t row_bytes() const noexcept {
    return dim_ * RowFormatElemBytes(format_) +
           (format_ == RowFormat::kI8 ? sizeof(float) : 0);
  }
  // Rows currently allocated (Add minus Free).
  std::size_t size() const noexcept { return live_; }

 private:
  static constexpr std::size_t kRowsPerChunk = 256;

  struct AlignedFree {
    void operator()(std::byte* p) const noexcept;
  };

  const std::byte* RawRow(std::uint32_t row) const noexcept {
    return chunks_[row / kRowsPerChunk].get() +
           static_cast<std::size_t>(row % kRowsPerChunk) * stride_ *
               elem_bytes_;
  }
  std::byte* MutableRawRow(std::uint32_t row) noexcept {
    return const_cast<std::byte*>(RawRow(row));
  }

  std::size_t dim_;
  RowFormat format_;
  std::size_t elem_bytes_;
  std::size_t stride_;
  std::vector<std::unique_ptr<std::byte[], AlignedFree>> chunks_;
  std::vector<std::uint32_t> free_;
  // Per-row i8 scales, indexed by slot (empty for other formats).
  std::vector<float> scales_;
  std::uint32_t next_row_ = 0;
  std::size_t live_ = 0;
};

}  // namespace cortex
