// SIMD distance-kernel layer with runtime CPU dispatch.
//
// Every semantic-cache lookup funnels through Sine's stage-one ANN probe,
// so per-candidate similarity cost is the hottest multiplier in the serving
// path.  This layer provides the vectorized kernels FAISS supplies in the
// paper's stack: single-query dot / squared-L2, plus *batched* kernels that
// score one query against N rows per call with register blocking and
// software prefetch.
//
// Dispatch: the best variant compiled into the binary AND supported by the
// running CPU is resolved once on first use (AVX-512 > AVX2+FMA on x86-64,
// NEON on aarch64, scalar everywhere).  The CORTEX_SIMD env var
// (scalar|avx2|avx512|neon) pins a variant for testing and A/B runs; tests
// may also swap variants in-process via ForceVariant().
//
// Numerics: the scalar kernels accumulate in double and are bit-identical
// to the historical vector_ops loops, so CORTEX_SIMD=scalar reproduces
// pre-SIMD results exactly.  SIMD variants accumulate in float lanes and
// agree with scalar to ~1e-6 relative (test_vector_ops locks this in).
//
// This is the ONLY place in the tree allowed to include <immintrin.h> /
// <arm_neon.h> (enforced by scripts/cortex_lint.py rule `simd-intrinsics`).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace cortex::simd {

enum class Variant : std::uint8_t {
  kScalar = 0,
  kAvx2 = 1,    // AVX2 + FMA, x86-64
  kAvx512 = 2,  // AVX-512F, x86-64
  kNeon = 3,    // aarch64
};

const char* VariantName(Variant v) noexcept;

// Raw kernel table.  `stride` is the float distance between consecutive
// rows (>= dim; slab rows are padded for alignment); every kernel reads
// exactly `dim` floats per row — padding is never touched.
struct KernelSet {
  double (*dot)(const float* a, const float* b, std::size_t dim);
  double (*l2sq)(const float* a, const float* b, std::size_t dim);
  // out[i] = dot(query, rows + i*stride) for i in [0, n).
  void (*dot_batch)(const float* query, const float* rows, std::size_t n,
                    std::size_t stride, std::size_t dim, float* out);
  // out[i] = dot(query, rows[i]); rows scattered (slab/graph gather path),
  // with software prefetch of upcoming rows.
  void (*dot_rows)(const float* query, const float* const* rows,
                   std::size_t n, std::size_t dim, float* out);
  // out[i] = ||query - (rows + i*stride)||^2.
  void (*l2sq_batch)(const float* query, const float* rows, std::size_t n,
                     std::size_t stride, std::size_t dim, float* out);
};

// True when `v` is both compiled into this binary and runnable on this CPU.
bool VariantSupported(Variant v) noexcept;
// All supported variants, scalar first.
std::vector<Variant> SupportedVariants();
// The fastest supported variant.
Variant BestSupportedVariant() noexcept;

// The active dispatch decision: BestSupportedVariant() unless CORTEX_SIMD
// pins one.  Resolved once on first use; CHECK-fails on an unknown or
// unsupported CORTEX_SIMD value.
Variant ActiveVariant() noexcept;
const KernelSet& ActiveKernels() noexcept;

// Kernel table for a specific variant; CHECK-fails unless supported.
const KernelSet& KernelsFor(Variant v);

// Test/bench hook: swaps the active table in-process.  Returns false (and
// changes nothing) when the variant is unsupported.  Not thread-safe —
// call only while no concurrent searches run.
bool ForceVariant(Variant v) noexcept;

// ---------------------------------------------------------------------------
// Dispatching convenience wrappers (the names the rest of the tree uses).

// Inner product.  On the unit vectors the VectorIndex contract guarantees,
// this IS the cosine similarity — callers must not renormalize.
inline double DotUnit(std::span<const float> a,
                      std::span<const float> b) noexcept {
  return ActiveKernels().dot(a.data(), b.data(), a.size());
}

inline double L2Sq(std::span<const float> a,
                   std::span<const float> b) noexcept {
  return ActiveKernels().l2sq(a.data(), b.data(), a.size());
}

// Scores `query` against n contiguous rows (row i at rows + i*dim).
inline void DotBatch(std::span<const float> query, const float* rows,
                     std::size_t n, std::size_t dim, float* out) noexcept {
  ActiveKernels().dot_batch(query.data(), rows, n, dim, dim, out);
}

// Strided flavour for padded slab storage.
inline void DotBatchStrided(std::span<const float> query, const float* rows,
                            std::size_t n, std::size_t stride,
                            float* out) noexcept {
  ActiveKernels().dot_batch(query.data(), rows, n, stride, query.size(), out);
}

// Gather flavour: row pointers, e.g. HNSW neighbour expansion.
inline void DotRows(std::span<const float> query, const float* const* rows,
                    std::size_t n, float* out) noexcept {
  ActiveKernels().dot_rows(query.data(), rows, n, query.size(), out);
}

inline void L2SqBatch(std::span<const float> query, const float* rows,
                      std::size_t n, std::size_t stride, float* out) noexcept {
  ActiveKernels().l2sq_batch(query.data(), rows, n, stride, query.size(),
                             out);
}

}  // namespace cortex::simd
